// Chrome-trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "gpusim/device.hpp"
#include "gpusim/trace_export.hpp"
#include "nn/encoder.hpp"

namespace {

TEST(TraceExport, EmitsOneEventPerKernelPlusMetadata) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  {
    auto l = dev.launch({.name = "alpha", .ctas = 4});
    l.load_bytes(1024);
  }
  {
    auto l = dev.launch({.name = "beta", .ctas = 8});
    l.store_bytes(2048);
  }
  std::stringstream ss;
  et::gpusim::write_chrome_trace(ss, dev, "unit-test");
  const std::string json = ss.str();

  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"gld_transactions\":32"), std::string::npos);
  // 2 metadata + 2 kernel events.
  std::size_t events = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\"", pos)) != std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_EQ(events, 4u);
  // Braces/brackets balance (cheap well-formedness check).
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceExport, KernelsLaidOutBackToBack) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const auto model = [] {
    et::nn::ModelConfig cfg;
    cfg.d_model = 32;
    cfg.num_heads = 2;
    cfg.d_ff = 64;
    return cfg;
  }();
  const auto w = et::nn::make_dense_encoder_weights(model, 1);
  et::tensor::MatrixF x(16, 32);
  dev.set_traffic_only(true);
  (void)et::nn::encoder_forward(
      ctx, x, w, et::nn::options_for(et::nn::Pipeline::kET, model, 16));

  std::stringstream ss;
  et::gpusim::write_chrome_trace(ss, dev);
  const std::string json = ss.str();
  // Every launch appears, and the first event starts at ts 0.
  EXPECT_NE(json.find("\"ts\":0,"), std::string::npos);
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"cat\":\"kernel\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, dev.launch_count());
}

TEST(TraceExport, EscapesSpecialCharacters) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  { auto l = dev.launch({.name = "weird\"name\\here"}); }
  std::stringstream ss;
  et::gpusim::write_chrome_trace(ss, dev);
  EXPECT_NE(ss.str().find("weird\\\"name\\\\here"), std::string::npos);
}

}  // namespace
