// The paged KV subsystem (core::BlockAllocator + core::PrefixTrie +
// core::PagedKVPool; docs/serving.md "Paged KV and prefix sharing"),
// pinned at three levels:
//
//   1. allocator/trie unit semantics — refcount lifecycle, LIFO
//      determinism, first-wins registration, stale-advertisement
//      invalidation;
//   2. a seeded randomized property/fuzz sweep over interleaved
//      acquire / append / share / CoW-split / rollback / release
//      sequences, asserting the block-level invariants after EVERY op:
//      refcount conservation (refs == table references), two-table ⇒
//      refcount ≥ 2, free-list ∩ live = ∅, byte accounting == Σ resident
//      blocks — plus a shadow content model proving gathers never read a
//      row CoW should have protected;
//   3. oracles against the contiguous reference — gathers across block
//      sizes {1, 3, 16} and the PR-5 dense/condensed/folded V-plane
//      widths, and full decode transcripts through the batched scheduler
//      (prompts, sharing on/off, OOM-as-kv_cache_full, fault storms at a
//      block boundary) bit-identical to the sequential path.
//
// Content checks are BIT-exact: a shared prefix row is only sound if the
// producer's bytes equal what the consumer would have written, so any
// aliasing bug shows up as a flipped float, not a tolerance miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/block_allocator.hpp"
#include "core/kv_cache.hpp"
#include "core/prefix_trie.hpp"
#include "differential.hpp"

namespace {

using et::core::BlockAllocator;
using et::core::BlockId;
using et::core::kNoPrefixGroup;
using et::core::PagedKVCache;
using et::core::PagedKVOptions;
using et::core::PagedKVPool;
using et::core::PagedKVSlot;
using et::core::PrefixTrie;
using et::diff::splitmix64;
using et::diff::unit_float;

constexpr std::size_t kKWidth = 8;

// ---------------------------------------------------------------------------
// BlockAllocator: refcount lifecycle and accounting.
// ---------------------------------------------------------------------------

TEST(BlockAllocator, ValidatesGeometry) {
  const std::vector<std::size_t> vw{4};
  EXPECT_THROW(BlockAllocator(0, 2, kKWidth, vw), std::invalid_argument);
  EXPECT_THROW(BlockAllocator(4, 0, kKWidth, vw), std::invalid_argument);
  EXPECT_THROW(BlockAllocator(4, 2, 0, vw), std::invalid_argument);
  EXPECT_THROW(BlockAllocator(4, 2, kKWidth, {}), std::invalid_argument);
  EXPECT_THROW(BlockAllocator(4, 2, kKWidth, {4, 0}), std::invalid_argument);
}

TEST(BlockAllocator, AllocatesLifoBlockZeroFirstAndExhaustsToNullopt) {
  BlockAllocator alloc(3, 2, kKWidth, {4, 6});
  EXPECT_EQ(alloc.allocate(), BlockId{0});
  EXPECT_EQ(alloc.allocate(), BlockId{1});
  EXPECT_EQ(alloc.allocate(), BlockId{2});
  EXPECT_EQ(alloc.allocate(), std::nullopt);  // typed OOM, not a throw
  EXPECT_TRUE(alloc.release(1));
  EXPECT_EQ(alloc.allocate(), BlockId{1});  // LIFO reuse
}

TEST(BlockAllocator, RefcountLifecycleAndMisuseThrows) {
  BlockAllocator alloc(2, 2, kKWidth, {4});
  const BlockId b = *alloc.allocate();
  EXPECT_EQ(alloc.ref_count(b), 1u);
  alloc.add_ref(b);
  EXPECT_EQ(alloc.ref_count(b), 2u);
  EXPECT_FALSE(alloc.release(b));  // still referenced
  EXPECT_TRUE(alloc.release(b));   // now free
  EXPECT_EQ(alloc.ref_count(b), 0u);
  EXPECT_THROW(alloc.release(b), std::logic_error);
  EXPECT_THROW(alloc.add_ref(b), std::logic_error);
}

TEST(BlockAllocator, ByteAccountingMatchesTheDocumentedFormula) {
  const std::vector<std::size_t> vw{16, 4, 8};  // dense/condensed/folded-ish
  BlockAllocator alloc(5, 3, kKWidth, vw);
  std::size_t row_bytes = 0;
  for (const std::size_t w : vw) row_bytes += (kKWidth + w) * sizeof(float);
  EXPECT_EQ(alloc.bytes_per_block(), 3 * row_bytes);
  EXPECT_EQ(alloc.memory_bytes(), 5 * 3 * row_bytes);
  EXPECT_EQ(alloc.resident_bytes(), 0u);
  (void)alloc.allocate();
  (void)alloc.allocate();
  EXPECT_EQ(alloc.resident_bytes(), 2 * 3 * row_bytes);
  EXPECT_EQ(alloc.free_blocks() + alloc.resident_blocks(), alloc.num_blocks());
}

// ---------------------------------------------------------------------------
// PrefixTrie: registration, lookup, invalidation.
// ---------------------------------------------------------------------------

std::vector<std::int32_t> tokens(std::initializer_list<int> t) {
  return std::vector<std::int32_t>(t.begin(), t.end());
}

TEST(PrefixTrie, LookupWalksFullChunksThenPartialLeaf) {
  PrefixTrie trie(3);
  const auto prompt = tokens({1, 2, 3, 4, 5, 6, 7, 8});
  trie.insert(7, std::span(prompt).first(3), 10);  // block 10: rows 0-2
  trie.insert(7, std::span(prompt).first(6), 11);  // block 11: rows 3-5
  trie.insert(7, std::span(prompt).first(8), 12);  // block 12: rows 6-7 partial
  EXPECT_EQ(trie.size(), 3u);

  const auto m = trie.lookup(7, prompt, 8);
  EXPECT_EQ(m.tokens, 8u);
  EXPECT_EQ(m.blocks, (std::vector<BlockId>{10, 11, 12}));

  // A cap mid-block takes that block partially and stops the walk.
  const auto capped = trie.lookup(7, prompt, 4);
  EXPECT_EQ(capped.tokens, 4u);
  EXPECT_EQ(capped.blocks, (std::vector<BlockId>{10, 11}));

  // Divergence in the partial leaf shares only the agreeing tokens.
  const auto div = tokens({1, 2, 3, 4, 5, 6, 7, 99});
  const auto pm = trie.lookup(7, div, 8);
  EXPECT_EQ(pm.tokens, 7u);
  EXPECT_EQ(pm.blocks, (std::vector<BlockId>{10, 11, 12}));

  // Divergence inside a full chunk stops before it.
  const auto early = tokens({1, 2, 3, 9, 9, 9});
  EXPECT_EQ(trie.lookup(7, early, 6).tokens, 3u);
}

TEST(PrefixTrie, GroupsAreDisjointAndNoGroupNeverMatches) {
  PrefixTrie trie(2);
  const auto prompt = tokens({5, 6, 7, 8});
  trie.insert(1, std::span(prompt).first(2), 3);
  EXPECT_EQ(trie.lookup(1, prompt, 4).tokens, 2u);
  EXPECT_EQ(trie.lookup(2, prompt, 4).tokens, 0u);
  EXPECT_EQ(trie.lookup(kNoPrefixGroup, prompt, 4).tokens, 0u);
  trie.insert(kNoPrefixGroup, std::span(prompt).first(2), 4);  // ignored
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, FirstRegistrationWinsAndMissingParentSkips) {
  PrefixTrie trie(2);
  const auto prompt = tokens({1, 2, 3, 4, 5});
  trie.insert(1, std::span(prompt).first(2), 10);
  trie.insert(1, std::span(prompt).first(2), 20);  // duplicate chunk: kept 10
  EXPECT_EQ(trie.lookup(1, prompt, 2).blocks, (std::vector<BlockId>{10}));
  // rows 2-3 with no registered parent for rows 0-1 of a DIFFERENT prompt.
  const auto other = tokens({9, 9, 3, 4});
  trie.insert(1, other, 30);  // parent chunk {9,9} missing — skipped
  EXPECT_EQ(trie.size(), 1u);
  // One partial leaf per parent, first wins: a second, diverging partial
  // under the same {1,2} parent is skipped.
  trie.insert(1, std::span(prompt).first(3), 40);
  const auto diverge = tokens({1, 2, 9});
  trie.insert(1, diverge, 50);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(trie.lookup(1, prompt, 5).blocks, (std::vector<BlockId>{10, 40}));
  EXPECT_EQ(trie.lookup(1, diverge, 3).tokens, 2u);  // partial is NOT {9}
}

TEST(PrefixTrie, InvalidateErasesStaleAdvertisementsAndSubtrees) {
  PrefixTrie trie(2);
  const auto prompt = tokens({1, 2, 3, 4, 5, 6});
  trie.insert(1, std::span(prompt).first(2), 10);
  trie.insert(1, std::span(prompt).first(4), 11);
  trie.insert(1, std::span(prompt).first(6), 12);
  // A writer overwrote block 10 from row 1 on: its node (2 rows > 1) is
  // stale, and the children that extended it are unreachable prefixes.
  trie.invalidate(10, 1);
  EXPECT_EQ(trie.size(), 0u);

  trie.insert(1, std::span(prompt).first(2), 10);
  trie.insert(1, std::span(prompt).first(3), 13);  // partial: 1 row of blk 13
  // Writing row 1 of block 13 leaves its 1-row advertisement valid.
  trie.invalidate(13, 1);
  EXPECT_EQ(trie.size(), 2u);
  trie.erase_block(13);
  EXPECT_EQ(trie.size(), 1u);
}

// ---------------------------------------------------------------------------
// PagedKVPool slot mechanics: append contract, sharing, CoW, rollback.
// ---------------------------------------------------------------------------

/// Deterministic row content, shared by writers and the shadow oracle.
/// Prompt rows are a pure function of (group, token, position) — the
/// bit-identical-embed contract that makes aliasing sound; generated
/// rows salt with a per-tenure uid so two slots NEVER agree by accident.
void fill_row(std::vector<float>& row, std::uint64_t key, std::size_t layer) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = unit_float(splitmix64(key ^ (layer << 48) ^ (c + 1)));
  }
}

std::uint64_t prompt_key(std::uint64_t group,
                         const std::vector<std::int32_t>& prompt,
                         std::size_t pos) {
  return splitmix64(group ^ (static_cast<std::uint64_t>(prompt[pos]) << 20) ^
                    (pos << 4) ^ 0xabcdefull);
}

std::uint64_t gen_key(std::uint64_t uid, std::size_t pos) {
  return splitmix64(uid ^ (pos << 4) ^ 0x777ull);
}

/// Append one logical position across every layer of `slot`, mirroring
/// the scheduler's serial-prepare + append protocol. Returns false on
/// block exhaustion (the slot was left untouched).
bool append_position(PagedKVPool& pool, std::size_t s, std::uint64_t key) {
  PagedKVSlot& slot = pool.slot(s);
  if (!slot.prepare_append()) return false;
  const BlockAllocator& alloc = pool.allocator();
  std::vector<float> k(alloc.k_width());
  for (std::size_t l = 0; l < alloc.num_layers(); ++l) {
    std::vector<float> v(alloc.v_width(l));
    fill_row(k, key, 1000 + l);
    fill_row(v, key, 2000 + l);
    slot.append(l, k, v);
  }
  return true;
}

TEST(PagedKVPool, AppendContractMatchesContiguousCache) {
  PagedKVPool pool(1, 4, kKWidth, {4}, PagedKVOptions{.block_tokens = 2});
  const std::size_t s = pool.acquire();
  PagedKVCache& cache = pool.caches(s)[0];
  std::vector<float> k(kKWidth, 1.0f), v(4, 2.0f), bad(3, 0.0f);
  EXPECT_THROW(cache.append(k, bad), std::invalid_argument);
  for (int i = 0; i < 4; ++i) cache.append(k, v);
  EXPECT_TRUE(cache.full());
  EXPECT_THROW(cache.append(k, v), std::length_error);
  EXPECT_EQ(cache.used(), 4u);  // checks precede writes and cursor moves
  pool.release(s);
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_THROW(pool.release(s), std::invalid_argument);
}

TEST(PagedKVPool, ContiguousModeMatchesKVCachePoolFootprintAndDisablesSharing) {
  const std::vector<std::size_t> vw{16, 4, 8};
  const et::core::KVCachePool reference(3, 8, kKWidth, vw);
  PagedKVPool paged(3, 8, kKWidth, vw,
                    PagedKVOptions{.block_tokens = 0,  // contiguous layout
                                   .enable_prefix_sharing = true});
  EXPECT_EQ(paged.block_tokens(), 8u);
  EXPECT_FALSE(paged.sharing_enabled());
  EXPECT_EQ(paged.memory_bytes(), reference.memory_bytes());
}

TEST(PagedKVPool, PrefixSharingAliasesBlocksAndCountsBytesOnce) {
  PagedKVPool pool(3, 12, kKWidth, {4, 6},
                   PagedKVOptions{.block_tokens = 3});
  std::vector<std::int32_t> prompt{1, 2, 3, 4, 5, 6, 7, 8};
  const std::size_t a = pool.acquire(9, prompt);
  EXPECT_EQ(pool.slot(a).shared_rows(), 0u);  // empty trie: nothing to alias
  for (std::size_t p = 0; p < prompt.size(); ++p) {
    ASSERT_TRUE(append_position(pool, a, prompt_key(9, prompt, p)));
  }
  pool.flush_registrations();
  EXPECT_EQ(pool.trie().size(), 3u);  // rows 0-2, 3-5, 6-7(partial)

  const std::size_t bytes_a = pool.used_bytes();
  const std::size_t b = pool.acquire(9, prompt);
  // Cap at n-1 = 7: full blocks 0,1 plus one row of the partial block.
  EXPECT_EQ(pool.slot(b).shared_rows(), 7u);
  EXPECT_EQ(pool.slot(b).table().size(), 3u);
  EXPECT_EQ(pool.used_bytes(), bytes_a);  // aliased blocks count ONCE
  EXPECT_EQ(pool.stats().prefix_hits, 1u);
  EXPECT_EQ(pool.stats().prefix_shared_tokens, 7u);
  for (const BlockId blk : pool.slot(b).table()) {
    EXPECT_GE(pool.allocator().ref_count(blk), 2u);
  }

  // Decode b through the shared region: appends skip the write (cursor
  // only) until position 7, whose block is aliased — CoW splits it.
  for (std::size_t p = 0; p < prompt.size(); ++p) {
    ASSERT_TRUE(append_position(pool, b, prompt_key(9, prompt, p)));
  }
  EXPECT_EQ(pool.stats().cow_splits, 1u);
  EXPECT_NE(pool.slot(a).table()[2], pool.slot(b).table()[2]);
  EXPECT_EQ(pool.slot(a).table()[0], pool.slot(b).table()[0]);

  // Both gathers must see the full, correct prompt — bit-exact.
  for (const std::size_t s : {a, b}) {
    for (std::size_t l = 0; l < 2; ++l) {
      const auto kp = pool.slot(s).k_prefix(l);
      ASSERT_EQ(kp.rows(), prompt.size());
      for (std::size_t p = 0; p < prompt.size(); ++p) {
        std::vector<float> want(kKWidth);
        fill_row(want, prompt_key(9, prompt, p), 1000 + l);
        for (std::size_t c = 0; c < kKWidth; ++c) {
          ASSERT_EQ(kp(p, c), want[c]) << "slot " << s << " row " << p;
        }
      }
    }
  }

  // Releasing the producer keeps the still-aliased blocks alive; the
  // drain invariant holds once every reference is gone.
  pool.release(a);
  EXPECT_GT(pool.used_bytes(), 0u);
  pool.release(b);
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(pool.trie().size(), 0u);  // non-owning: freed ⇒ un-advertised
}

TEST(PagedKVPool, RollbackAtBlockBoundaryReleasesThePartialBlock) {
  PagedKVPool pool(1, 12, kKWidth, {4},
                   PagedKVOptions{.block_tokens = 4});
  const std::size_t s = pool.acquire();
  for (std::size_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(append_position(pool, s, gen_key(1, p)));
  }
  ASSERT_EQ(pool.slot(s).table().size(), 2u);
  const std::size_t per_block = pool.allocator().bytes_per_block();

  // Mid-block rollback keeps ceil(5/4) = 2 blocks.
  pool.slot(s).rollback(5);
  EXPECT_EQ(pool.slot(s).table().size(), 2u);
  // EXACTLY on the boundary: rows [0,4) need one block — the regression
  // this suite pins is keeping (and leaking) the boundary block here.
  pool.slot(s).rollback(4);
  EXPECT_EQ(pool.slot(s).table().size(), 1u);
  EXPECT_EQ(pool.used_bytes(), per_block);
  EXPECT_EQ(pool.slot(s).tokens(), 4u);

  // Refill after the rollback: content lands in a fresh block and the
  // gather reflects the new frontier.
  ASSERT_TRUE(append_position(pool, s, gen_key(2, 4)));
  EXPECT_EQ(pool.slot(s).table().size(), 2u);
  const auto kp = pool.slot(s).k_prefix(0);
  std::vector<float> want(kKWidth);
  fill_row(want, gen_key(2, 4), 1000);
  for (std::size_t c = 0; c < kKWidth; ++c) EXPECT_EQ(kp(4, c), want[c]);

  pool.slot(s).rollback(0);
  EXPECT_EQ(pool.used_bytes(), 0u);
  pool.release(s);
}

TEST(PagedKVPool, RollbackNeverTrimsSeededSharedBlocks) {
  PagedKVPool pool(2, 8, kKWidth, {4}, PagedKVOptions{.block_tokens = 2});
  std::vector<std::int32_t> prompt{1, 2, 3, 4, 5, 6};
  const std::size_t a = pool.acquire(3, prompt);
  for (std::size_t p = 0; p < prompt.size(); ++p) {
    ASSERT_TRUE(append_position(pool, a, prompt_key(3, prompt, p)));
  }
  pool.flush_registrations();
  const std::size_t b = pool.acquire(3, prompt);
  ASSERT_EQ(pool.slot(b).shared_rows(), 5u);
  ASSERT_EQ(pool.slot(b).table().size(), 3u);
  // A rollback to zero (fault storm during prefill) must keep the seeded
  // blocks: later skip-appends rely on their resident rows.
  pool.slot(b).rollback(0);
  EXPECT_EQ(pool.slot(b).table().size(), 3u);
  EXPECT_EQ(pool.slot(b).tokens(), 0u);
  for (std::size_t p = 0; p < prompt.size(); ++p) {
    ASSERT_TRUE(append_position(pool, b, prompt_key(3, prompt, p)));
  }
  const auto kp = pool.slot(b).k_prefix(0);
  for (std::size_t p = 0; p < prompt.size(); ++p) {
    std::vector<float> want(kKWidth);
    fill_row(want, prompt_key(3, prompt, p), 1000);
    for (std::size_t c = 0; c < kKWidth; ++c) ASSERT_EQ(kp(p, c), want[c]);
  }
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.used_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Gather oracle: paged k/v_prefix == contiguous KVCache, across block
// sizes and the PR-5 V-plane widths.
// ---------------------------------------------------------------------------

TEST(PagedGatherOracle, PrefixGathersMatchContiguousAcrossBlockSizes) {
  const std::vector<std::size_t> vw{16, 4, 8};  // dense/condensed/folded-ish
  constexpr std::size_t kCtx = 11;
  for (const std::size_t bt : {std::size_t{1}, std::size_t{3},
                               std::size_t{16}}) {
    SCOPED_TRACE("block_tokens=" + std::to_string(bt));
    PagedKVPool pool(2, kCtx, kKWidth, vw, PagedKVOptions{.block_tokens = bt});
    std::vector<et::core::KVCache> reference;
    for (const std::size_t w : vw) reference.emplace_back(kCtx, kKWidth, w);
    const std::size_t s = pool.acquire();
    for (std::size_t p = 0; p < kCtx; ++p) {
      PagedKVSlot& slot = pool.slot(s);
      ASSERT_TRUE(slot.prepare_append());
      std::vector<float> k(kKWidth);
      for (std::size_t l = 0; l < vw.size(); ++l) {
        std::vector<float> v(vw[l]);
        fill_row(k, gen_key(7, p), 1000 + l);
        fill_row(v, gen_key(7, p), 2000 + l);
        slot.append(l, k, v);
        reference[l].append(k, v);
      }
    }
    for (std::size_t l = 0; l < vw.size(); ++l) {
      const auto pk = pool.slot(s).k_prefix(l);
      const auto rk = reference[l].k_prefix();
      const auto pv = pool.slot(s).v_prefix(l);
      const auto rv = reference[l].v_prefix();
      ASSERT_EQ(pk.rows(), rk.rows());
      for (std::size_t r = 0; r < rk.rows(); ++r) {
        for (std::size_t c = 0; c < rk.cols(); ++c) {
          ASSERT_EQ(pk(r, c), rk(r, c)) << "layer " << l << " row " << r;
        }
        for (std::size_t c = 0; c < rv.cols(); ++c) {
          ASSERT_EQ(pv(r, c), rv(r, c)) << "layer " << l << " row " << r;
        }
      }
    }
    pool.release(s);
  }
}

// ---------------------------------------------------------------------------
// Property/fuzz sweep: interleaved acquire/append/share/CoW/rollback/
// release with every invariant checked after every op.
// ---------------------------------------------------------------------------

struct ShadowSlot {
  bool live = false;
  std::uint64_t group = kNoPrefixGroup;
  std::vector<std::int32_t> prompt;
  std::uint64_t uid = 0;          // salts generated (post-prompt) rows
  std::size_t rows = 0;           // expected cursor
};

class PagedFuzz {
 public:
  PagedFuzz(std::uint64_t seed, PagedKVOptions opts)
      : pool_(kSlots, kCtx, kKWidth, {6, 3}, opts), rng_(seed) {
    shadows_.resize(kSlots);
  }

  void step() {
    switch (next() % 6) {
      case 0: acquire(); break;
      case 1: acquire(); break;  // double weight: keep slots occupied
      case 2: append(); break;
      case 3: append(); break;
      case 4: rollback(); break;
      case 5: release(); break;
    }
    pool_.flush_registrations();  // the scheduler's serial cadence
    check_invariants();
  }

  const PagedKVPool& pool() const { return pool_; }

 private:
  static constexpr std::size_t kSlots = 4;
  static constexpr std::size_t kCtx = 10;

  std::uint64_t next() { return state_ = splitmix64(state_ + rng_); }

  /// Shared-group prompts draw from 2 groups × 2 tails over a common
  /// 5-token head, so lookups hit full-chunk, partial-leaf and divergent
  /// cases; a third of acquisitions opt out of sharing entirely.
  void acquire() {
    if (!pool_.has_free()) return;
    const std::uint64_t pick = next();
    std::uint64_t group = kNoPrefixGroup;
    std::vector<std::int32_t> prompt;
    if (pick % 3 != 0) {
      group = 1 + (pick >> 8) % 2;
      const std::int32_t tail = static_cast<std::int32_t>((pick >> 16) % 2);
      prompt = {10, 11, 12, 13, 14, 20 + tail, 30 + tail};
    }
    const std::size_t s = pool_.acquire(group, prompt);
    ShadowSlot& sh = shadows_[s];
    sh.live = true;
    sh.group = group;
    sh.prompt = prompt;
    sh.uid = next();
    sh.rows = 0;
    // Seeded rows are the producer's bytes — which the shadow predicts
    // identically for prompt positions, so no shadow state is needed:
    // expected content is always derivable from (group, prompt, pos).
  }

  void append() {
    const std::size_t s = pick_live();
    if (s == kSlots) return;
    ShadowSlot& sh = shadows_[s];
    if (sh.rows >= kCtx) return;
    const std::uint64_t key = row_key(sh, sh.rows);
    if (!append_position(pool_, s, key)) {
      // Block exhaustion: the scheduler retires kv_cache_full — release.
      pool_.release(s);
      sh.live = false;
      return;
    }
    ++sh.rows;
  }

  void rollback() {
    const std::size_t s = pick_live();
    if (s == kSlots) return;
    ShadowSlot& sh = shadows_[s];
    const std::size_t n = sh.rows == 0 ? 0 : next() % (sh.rows + 1);
    pool_.slot(s).rollback(n);
    sh.rows = n;
  }

  void release() {
    const std::size_t s = pick_live();
    if (s == kSlots) return;
    pool_.release(s);
    shadows_[s].live = false;
  }

  std::size_t pick_live() {
    std::vector<std::size_t> live;
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (shadows_[s].live) live.push_back(s);
    }
    if (live.empty()) return kSlots;
    return live[next() % live.size()];
  }

  std::uint64_t row_key(const ShadowSlot& sh, std::size_t pos) const {
    if (sh.group != kNoPrefixGroup && pos < sh.prompt.size()) {
      return prompt_key(sh.group, sh.prompt, pos);
    }
    return gen_key(sh.uid, pos);
  }

  void check_invariants() {
    const BlockAllocator& alloc = pool_.allocator();
    // Refcount conservation: refs(b) == #table references, exactly — the
    // trie holds none, so two tables ⇒ refcount ≥ 2 follows.
    std::map<BlockId, std::size_t> table_refs;
    for (std::size_t s = 0; s < kSlots; ++s) {
      for (const BlockId b : pool_.slot(s).table()) ++table_refs[b];
    }
    std::size_t resident = 0;
    for (BlockId b = 0; b < alloc.num_blocks(); ++b) {
      const auto it = table_refs.find(b);
      ASSERT_EQ(alloc.ref_count(b), it == table_refs.end() ? 0u : it->second)
          << "block " << b;
      resident += alloc.ref_count(b) > 0 ? 1 : 0;
    }
    // free ∩ live = ∅, and free + resident partitions the pool.
    std::set<BlockId> free_set(alloc.free_list().begin(),
                               alloc.free_list().end());
    ASSERT_EQ(free_set.size(), alloc.free_list().size());  // no duplicates
    for (const auto& [b, n] : table_refs) {
      ASSERT_EQ(free_set.count(b), 0u) << "block " << b << " free AND live";
    }
    ASSERT_EQ(free_set.size() + resident, alloc.num_blocks());
    // Byte accounting == Σ resident blocks, recomputed from geometry.
    std::size_t row_bytes = 0;
    for (std::size_t l = 0; l < alloc.num_layers(); ++l) {
      row_bytes += (alloc.k_width() + alloc.v_width(l)) * sizeof(float);
    }
    ASSERT_EQ(pool_.used_bytes(),
              resident * alloc.block_tokens() * row_bytes);
    ASSERT_EQ(pool_.memory_bytes(),
              alloc.num_blocks() * alloc.block_tokens() * row_bytes);
    // Every block the trie would hand out is resident (non-owning but
    // never dangling), for every prompt the workload can produce.
    for (const std::uint64_t g : {1ull, 2ull}) {
      for (const std::int32_t tail : {0, 1}) {
        const std::vector<std::int32_t> p{10, 11, 12, 13, 14,
                                          20 + tail, 30 + tail};
        const auto m = pool_.trie().lookup(g, p, p.size());
        for (const BlockId b : m.blocks) {
          ASSERT_GT(alloc.ref_count(b), 0u) << "trie advertises free block";
        }
      }
    }
    // Shadow content oracle: every live slot's gather is bit-exact, so
    // no CoW split ever failed to protect an aliased row.
    for (std::size_t s = 0; s < kSlots; ++s) {
      const ShadowSlot& sh = shadows_[s];
      if (!sh.live) continue;
      ASSERT_EQ(pool_.slot(s).tokens(), sh.rows);
      for (std::size_t l = 0; l < alloc.num_layers(); ++l) {
        const auto kp = pool_.slot(s).k_prefix(l);
        const auto vp = pool_.slot(s).v_prefix(l);
        for (std::size_t p = 0; p < sh.rows; ++p) {
          // Rows the slot skipped (below its shared frontier) hold the
          // PRODUCER'S bytes — identical to the shadow's prediction by
          // the prompt_key construction, which is the whole sharing
          // contract.
          std::vector<float> wk(alloc.k_width()), wv(alloc.v_width(l));
          fill_row(wk, row_key(sh, p), 1000 + l);
          fill_row(wv, row_key(sh, p), 2000 + l);
          for (std::size_t c = 0; c < wk.size(); ++c) {
            ASSERT_EQ(kp(p, c), wk[c])
                << "slot " << s << " layer " << l << " row " << p;
          }
          for (std::size_t c = 0; c < wv.size(); ++c) {
            ASSERT_EQ(vp(p, c), wv[c])
                << "slot " << s << " layer " << l << " row " << p;
          }
        }
      }
    }
  }

  PagedKVPool pool_;
  std::uint64_t rng_;
  std::uint64_t state_ = 0x1234;
  std::vector<ShadowSlot> shadows_;
};

TEST(PagedKVFuzz, InvariantsHoldAcrossSeededInterleavings) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    for (const std::size_t bt : {std::size_t{1}, std::size_t{3},
                                 std::size_t{4}}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " block_tokens=" + std::to_string(bt));
      PagedFuzz fuzz(seed, PagedKVOptions{.block_tokens = bt});
      for (int i = 0; i < 400; ++i) fuzz.step();
    }
  }
}

TEST(PagedKVFuzz, TightPoolsHitExhaustionAndStayConsistent) {
  // 6 physical blocks for 4 slots × up to 10 rows forces the OOM path
  // (prepare_append == false) to fire regularly mid-sequence.
  for (const std::uint64_t seed : {3ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    PagedFuzz fuzz(seed,
                   PagedKVOptions{.block_tokens = 2, .num_blocks = 6});
    for (int i = 0; i < 400; ++i) fuzz.step();
  }
}

// ---------------------------------------------------------------------------
// Decode-level oracles through the scheduler.
// ---------------------------------------------------------------------------

constexpr std::int32_t kVocab = 97;
constexpr std::size_t kMaxContext = 12;

std::vector<et::nn::EncoderWeights> make_layers(std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  return layers;
}

et::nn::EncoderOptions make_opt() {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, kMaxContext,
                                 /*causal=*/true);
  opt.attn.precision = et::numeric::Precision::kFp32;
  return opt;
}

/// Same-group requests share a 5-token system prompt and the SAME embed
/// seed (the bit-identical-embed contract sharing relies on).
std::vector<et::diff::Request> prompt_workload() {
  std::vector<et::diff::Request> reqs;
  for (int i = 0; i < 5; ++i) {
    et::diff::Request r;
    r.max_new_tokens = 5;
    r.seed = 500;  // one embedding identity across the group
    r.prompt = {7, 8, 9, 10, 11, 40 + i};
    r.prefix_group = 77;
    reqs.push_back(r);
  }
  et::diff::Request lone;  // opts out of sharing, different embedding
  lone.max_new_tokens = 5;
  lone.seed = 41;
  lone.prompt = {7, 8, 9};
  reqs.push_back(lone);
  return reqs;
}

TEST(PagedDecodeOracle, PromptDecodeMatchesSequentialAcrossBlockSizes) {
  const auto layers = make_layers(900);
  const auto opt = make_opt();
  const auto requests = prompt_workload();
  et::gpusim::Device ref_dev;
  const auto ref = et::diff::run_sequential(ref_dev, layers, opt, kMaxContext,
                                            requests, kVocab);
  for (const std::size_t bt : {std::size_t{1}, std::size_t{3},
                               std::size_t{16}}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("block_tokens=" + std::to_string(bt) +
                   " threads=" + std::to_string(threads));
      et::gpusim::Device dev;
      const auto batched = et::diff::run_batched(
          dev, layers, opt, /*max_batch=*/3, kMaxContext, requests, kVocab,
          threads, PagedKVOptions{.block_tokens = bt});
      et::diff::expect_bit_identical(ref, batched.outcomes);
    }
  }
}

TEST(PagedDecodeOracle, SharingOnOffTranscriptsBitIdentical) {
  const auto layers = make_layers(901);
  const auto opt = make_opt();
  const auto requests = prompt_workload();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    et::gpusim::Device on_dev, off_dev;
    const auto on = et::diff::run_batched(
        on_dev, layers, opt, 3, kMaxContext, requests, kVocab, threads,
        PagedKVOptions{.block_tokens = 3, .enable_prefix_sharing = true});
    const auto off = et::diff::run_batched(
        off_dev, layers, opt, 3, kMaxContext, requests, kVocab, threads,
        PagedKVOptions{.block_tokens = 3, .enable_prefix_sharing = false});
    et::diff::expect_bit_identical(on.outcomes, off.outcomes);
    // Sharing must not change the tick structure either.
    EXPECT_EQ(on.ticks, off.ticks);
    EXPECT_EQ(on.batched_ticks, off.batched_ticks);
  }
}

TEST(PagedDecodeOracle, BlockExhaustionIsDeterministicKvCacheFull) {
  const auto layers = make_layers(902);
  const auto opt = make_opt();
  const auto requests = prompt_workload();
  // 8 blocks × 3 rows = 24 KV rows for 6 requests wanting ~11 each:
  // somebody runs out, and WHO must not depend on threads or repetition.
  const PagedKVOptions kv{.block_tokens = 3, .num_blocks = 8};
  et::gpusim::Device base_dev;
  const auto base = et::diff::run_batched(base_dev, layers, opt, 3,
                                          kMaxContext, requests, kVocab, 1,
                                          kv);
  bool any_full = false;
  for (const auto& o : base.outcomes) {
    any_full = any_full ||
               o.result.stop_reason == et::nn::StopReason::kKvCacheFull;
  }
  EXPECT_TRUE(any_full) << "workload did not exercise block exhaustion";
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    et::gpusim::Device dev;
    const auto rerun = et::diff::run_batched(dev, layers, opt, 3, kMaxContext,
                                             requests, kVocab, threads, kv);
    et::diff::expect_bit_identical(base.outcomes, rerun.outcomes);
  }
}

/// run_batched, but keeping the scheduler so the pool can be inspected
/// after the drain.
et::diff::BatchedRun scheduler_run(et::gpusim::Device& dev,
                                   const std::vector<et::nn::EncoderWeights>&
                                       layers,
                                   const et::nn::EncoderOptions& opt,
                                   const std::vector<et::diff::Request>& reqs,
                                   const PagedKVOptions& kv,
                                   std::size_t threads, std::size_t* used_bytes,
                                   std::size_t* free_blocks) {
  et::core::ExecContext ctx(dev, threads);
  et::diff::BatchedRun run;
  run.outcomes.resize(reqs.size());
  et::nn::BatchedGenerationScheduler sched(
      et::nn::Model(&layers, opt, kMaxContext), /*max_batch=*/3, kv);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    et::nn::GenerationRequest req;
    req.first_token = reqs[i].first_token;
    req.prompt_tokens = reqs[i].prompt;
    req.prefix_group = reqs[i].prefix_group;
    req.max_new_tokens = reqs[i].max_new_tokens;
    req.embed = et::diff::make_embed(opt.attn.d_model, reqs[i].seed);
    req.select =
        et::diff::make_select(kVocab, &run.outcomes[i].hidden_hashes);
    req.eos_token = reqs[i].eos_token;
    (void)sched.submit(std::move(req));
  }
  const auto results = sched.run(ctx);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    run.outcomes[i].result = results[i];
  }
  *used_bytes = sched.pool().used_bytes();
  *free_blocks = sched.pool().allocator().free_blocks();
  return run;
}

TEST(PagedDecodeOracle, FaultStormsDrainEveryBlockDeterministically) {
  // A fault mid-decode (block_tokens=3, prompt rows cross block
  // boundaries at 3 and 6) triggers the fault-atomic rollback plus
  // kernel-fault retirement; afterwards EVERY block — including boundary
  // partials and CoW copies — must be back on the free list, and the
  // faulted transcript must not depend on the thread count.
  const auto layers = make_layers(903);
  const auto opt = make_opt();
  const auto requests = prompt_workload();
  const PagedKVOptions kv{.block_tokens = 3};
  // Arm the slot-attributed incremental attention kernel (a fault on a
  // shared batched kernel is absorbed by the per-slot fallback tick and
  // retires nobody); `faults` different strikes land at different cursor
  // positions, including mid-block and at boundaries.
  for (const std::size_t faults : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("faults=" + std::to_string(faults));
    et::gpusim::Device ref_dev;
    ref_dev.fault_injector().arm_kernel("incremental_otf_attention", faults);
    std::size_t ref_used = 1, ref_free = 0;
    const auto ref = scheduler_run(ref_dev, layers, opt, requests, kv, 1,
                                   &ref_used, &ref_free);
    EXPECT_EQ(ref_used, 0u) << "blocks leaked across the fault drain";
    bool any_fault = false;
    for (const auto& o : ref.outcomes) {
      any_fault = any_fault ||
                  o.result.stop_reason == et::nn::StopReason::kKernelFault;
    }
    EXPECT_TRUE(any_fault) << "fault did not strike within the run";
    for (const std::size_t threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      et::gpusim::Device dev;
      dev.fault_injector().arm_kernel("incremental_otf_attention", faults);
      std::size_t used = 1, free_blocks = 0;
      const auto rerun = scheduler_run(dev, layers, opt, requests, kv,
                                       threads, &used, &free_blocks);
      et::diff::expect_bit_identical(ref.outcomes, rerun.outcomes);
      EXPECT_EQ(used, 0u);
      EXPECT_EQ(free_blocks, ref_free);
    }
  }
}

}  // namespace
