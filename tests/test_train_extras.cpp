// LR schedules, perplexity, and the fixed-penalty regularizer baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "data/metrics.hpp"
#include "pruning/reweighted.hpp"
#include "tensor/random.hpp"
#include "train/lr_schedule.hpp"

namespace {

TEST(WarmupLinearDecay, RampsAndDecays) {
  et::train::WarmupLinearDecay sched(1.0f, 10, 110);
  EXPECT_NEAR(sched.lr(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.lr(4), 0.5f, 1e-6f);
  EXPECT_NEAR(sched.lr(9), 1.0f, 1e-6f);
  EXPECT_NEAR(sched.lr(60), 0.5f, 1e-6f);   // halfway through decay
  EXPECT_NEAR(sched.lr(110), 0.0f, 1e-6f);  // fully decayed
  EXPECT_NEAR(sched.lr(500), 0.0f, 1e-6f);  // clamped past the end
}

TEST(WarmupLinearDecay, FloorRespected) {
  et::train::WarmupLinearDecay sched(1.0f, 5, 50, 0.2f);
  EXPECT_NEAR(sched.lr(50), 0.2f, 1e-6f);
  EXPECT_GT(sched.lr(20), 0.2f);
}

TEST(NoamSchedule, PeaksAtWarmup) {
  et::train::NoamSchedule sched(512, 100);
  float prev = 0.0f;
  for (std::size_t s = 0; s < 99; ++s) {
    const float lr = sched.lr(s);
    EXPECT_GT(lr, prev);
    prev = lr;
  }
  // Monotone decay after warmup.
  EXPECT_GT(sched.lr(99), sched.lr(200));
  EXPECT_GT(sched.lr(200), sched.lr(2000));
}

TEST(Perplexity, UniformModelGivesVocabSize) {
  // NLL of a uniform model over V tokens is ln(V) per token.
  const double nll = std::log(96.0) * 50;
  EXPECT_NEAR(et::data::perplexity(nll, 50), 96.0, 1e-9);
  EXPECT_EQ(et::data::perplexity(0.0, 0), 0.0);
  EXPECT_NEAR(et::data::perplexity(0.0, 10), 1.0, 1e-12);
}

TEST(FixedPenalty, BetaStaysOneWithoutReweighting) {
  et::train::Param p(32, 32);
  et::tensor::fill_normal(p.w, 1);
  // Make tile (0,0) tiny: under reweighting its gradient would explode.
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) p.w(i, j) *= 1e-4f;
  }
  et::pruning::ReweightedConfig cfg;
  cfg.lambda = 1e-2f;
  cfg.reweighted = false;
  et::pruning::GroupLassoRegularizer reg({&p}, cfg);
  reg.update_penalties();  // must be a no-op
  p.zero_grad();
  reg.add_gradients();

  // With β = 1 everywhere, gradient magnitude is λ·w/‖tile‖ — the
  // *relative* shrinkage per element is λ/‖tile‖ for every tile; compare
  // against the reweighted variant where the weak tile's β is huge.
  const double weak_grad_fixed = std::abs(p.g(0, 0));

  et::pruning::ReweightedConfig rcfg = cfg;
  rcfg.reweighted = true;
  et::pruning::GroupLassoRegularizer rew({&p}, rcfg);
  rew.update_penalties();
  p.zero_grad();
  rew.add_gradients();
  const double weak_grad_rew = std::abs(p.g(0, 0));

  EXPECT_GT(weak_grad_rew, 10.0 * weak_grad_fixed)
      << "reweighting must push weak tiles much harder";
}

}  // namespace
