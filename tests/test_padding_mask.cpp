// BERT-style padding masks and configuration validation.
#include <gtest/gtest.h>

#include "core/attention.hpp"
#include "nn/encoder.hpp"
#include "nn/reference.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::core::AttentionConfig;
using et::tensor::MatrixF;

AttentionConfig base_cfg() {
  AttentionConfig cfg;
  cfg.seq_len = 24;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = false;
  return cfg;
}

TEST(PaddingMask, ValidPrefixRowsMatchTruncatedRun) {
  // With padding masked out, the first valid_len output rows must equal
  // the output of running only the valid prefix.
  auto cfg = base_cfg();
  cfg.valid_len = 16;
  const auto w = et::core::make_dense_weights(cfg, 1);
  MatrixF x(24, 32);
  et::tensor::fill_normal(x, 2);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF padded_out = et::core::otf_attention(ctx, x, w, cfg);

  auto short_cfg = cfg;
  short_cfg.seq_len = 16;
  short_cfg.valid_len = 0;
  const MatrixF truncated = et::tensor::slice_rows(x, 0, 16);
  const MatrixF short_out =
      et::core::otf_attention(ctx, truncated, w, short_cfg);

  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      ASSERT_NEAR(padded_out(r, c), short_out(r, c), 1e-4f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(PaddingMask, PaddingContentIsIrrelevant) {
  auto cfg = base_cfg();
  cfg.valid_len = 12;
  const auto w = et::core::make_dense_weights(cfg, 3);
  MatrixF a(24, 32), b;
  et::tensor::fill_normal(a, 4);
  b = a;
  // Scramble the padding region of b.
  for (std::size_t r = 12; r < 24; ++r) {
    for (std::size_t c = 0; c < 32; ++c) b(r, c) = 1e3f;
  }
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF ya = et::core::otf_attention(ctx, a, w, cfg);
  const MatrixF yb = et::core::otf_attention(ctx, b, w, cfg);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      ASSERT_NEAR(ya(r, c), yb(r, c), 1e-4f) << r << "," << c;
    }
  }
}

TEST(PaddingMask, AllImplementationsAgree) {
  auto cfg = base_cfg();
  cfg.valid_len = 10;
  const auto w = et::core::make_dense_weights(cfg, 5);
  MatrixF x(24, 32);
  et::tensor::fill_normal(x, 6);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF otf = et::core::otf_attention(ctx, x, w, cfg);
  const MatrixF fused = et::core::fused_attention(ctx, x, w, cfg);
  const MatrixF partial = et::core::partial_otf_attention(ctx, x, w, cfg);
  const MatrixF ref = et::nn::reference_attention(x, w, cfg);
  EXPECT_TRUE(allclose(otf, ref, 1e-4, 1e-3));
  EXPECT_TRUE(allclose(fused, ref, 1e-4, 1e-3));
  EXPECT_TRUE(allclose(partial, ref, 1e-4, 1e-3));
}

TEST(PaddingMask, ComposesWithCausalMask) {
  auto cfg = base_cfg();
  cfg.causal_mask = true;
  cfg.valid_len = 12;
  const auto w = et::core::make_dense_weights(cfg, 7);
  MatrixF x(24, 32);
  et::tensor::fill_normal(x, 8);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::core::otf_attention(ctx, x, w, cfg);
  const MatrixF ref = et::nn::reference_attention(x, w, cfg);
  EXPECT_TRUE(allclose(out, ref, 1e-4, 1e-3));
}

TEST(ConfigValidation, RejectsBadConfigs) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  MatrixF x(8, 30);
  {
    AttentionConfig cfg;
    cfg.seq_len = 8;
    cfg.d_model = 30;  // not divisible by 4 heads
    cfg.num_heads = 4;
    const auto w = et::core::make_dense_weights(base_cfg(), 9);
    EXPECT_THROW((void)et::core::otf_attention(ctx, x, w, cfg),
                 std::invalid_argument);
  }
  {
    auto cfg = base_cfg();
    cfg.valid_len = 99;  // > seq_len
    const auto w = et::core::make_dense_weights(cfg, 10);
    MatrixF x2(24, 32);
    EXPECT_THROW((void)et::core::otf_attention(ctx, x2, w, cfg),
                 std::invalid_argument);
  }
  {
    auto cfg = base_cfg();
    cfg.num_heads = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
}

}  // namespace
