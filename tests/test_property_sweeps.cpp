// Randomized property sweeps across seeds and shapes — the long-tail net
// behind the targeted unit tests.
#include <gtest/gtest.h>

#include <random>

#include "core/attention.hpp"
#include "core/kv_cache.hpp"
#include "gpusim/device.hpp"
#include "kernels/gemm.hpp"
#include "nn/reference.hpp"
#include "numeric/half.hpp"
#include "pruning/criteria.hpp"
#include "sparse/formats.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"
#include "tensor/reference_gemm.hpp"

namespace {

using et::tensor::MatrixF;

// ---------------------------------------------------------------------------
// Exhaustive binary16 identity: every finite half value must survive
// half -> float -> half bit-exactly (the conversion pair is lossless on
// its own domain).
// ---------------------------------------------------------------------------
TEST(HalfExhaustive, FloatRoundTripIsIdentityOnAllFiniteBits) {
  et::numeric::reset_overflow_count();
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto h = et::numeric::half::from_bits(
        static_cast<std::uint16_t>(bits));
    if (!h.is_finite()) continue;
    const float f = static_cast<float>(h);
    const auto back = et::numeric::half(f);
    ASSERT_EQ(back.bits(), h.bits()) << "bits " << bits;
  }
  EXPECT_EQ(et::numeric::overflow_count(), 0u);
}

TEST(HalfExhaustive, OrderingMatchesFloatOrdering) {
  // For random pairs of finite halves, the half comparison agrees with
  // the float comparison (total order on non-NaN values).
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint32_t> dist(0, 0xffff);
  for (int n = 0; n < 20000; ++n) {
    const auto a = et::numeric::half::from_bits(
        static_cast<std::uint16_t>(dist(rng)));
    const auto b = et::numeric::half::from_bits(
        static_cast<std::uint16_t>(dist(rng)));
    if (a.is_nan() || b.is_nan()) continue;
    ASSERT_EQ(a < b, static_cast<float>(a) < static_cast<float>(b));
  }
}

// ---------------------------------------------------------------------------
// Format round trips over random shapes and seeds.
// ---------------------------------------------------------------------------
class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, AllFormatsRoundTripOnRandomShapes) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::size_t> tiles(1, 5);
  std::uniform_real_distribution<double> ratio_dist(0.1, 0.9);

  const std::size_t rows = 16 * tiles(rng);
  const std::size_t cols = 16 * tiles(rng);
  const double ratio = ratio_dist(rng);
  MatrixF w(rows, cols);
  et::tensor::fill_normal(w, static_cast<std::uint64_t>(GetParam()) + 100);

  const auto check = [&](et::sparse::PruneMethod m,
                         const et::sparse::Mask& mask) {
    MatrixF masked = w;
    et::sparse::apply_mask(masked, mask);
    const auto any = et::sparse::make_weight(m, w, mask);
    EXPECT_TRUE(allclose(to_dense(any), masked, 0.0, 0.0))
        << to_string(m) << " " << rows << "x" << cols << " @ " << ratio;
  };
  check(et::sparse::PruneMethod::kRow, et::pruning::row_mask(w, ratio));
  check(et::sparse::PruneMethod::kColumn,
        et::pruning::column_mask(w, ratio));
  check(et::sparse::PruneMethod::kTile, et::pruning::tile_mask(w, ratio));
  check(et::sparse::PruneMethod::kIrregular,
        et::pruning::magnitude_mask(w, ratio));
}

TEST_P(SeedSweep, GemmTransposeSymmetry) {
  // (A·Bᵀ)ᵀ == B·Aᵀ for random shapes.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7);
  std::uniform_int_distribution<std::size_t> dim(1, 40);
  MatrixF a(dim(rng), dim(rng));
  MatrixF b(dim(rng), a.cols());
  et::tensor::fill_normal(a, static_cast<std::uint64_t>(GetParam()) + 1);
  et::tensor::fill_normal(b, static_cast<std::uint64_t>(GetParam()) + 2);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF ab = et::kernels::gemm_nt(ctx, a, b);
  const MatrixF ba = et::kernels::gemm_nt(ctx, b, a);
  EXPECT_TRUE(allclose(transpose(ab), ba, 1e-4, 1e-4));
}

TEST_P(SeedSweep, AttentionRowsAreConvexCombinationsUnderIdentityV) {
  // With W_V = I and W_O = I, each output row of attention is a convex
  // combination of input rows: its entries stay within the column-wise
  // min/max of X (pre-output-projection property made checkable by
  // choosing identity weights).
  et::core::AttentionConfig cfg;
  cfg.seq_len = 12;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = false;
  auto w = et::core::make_dense_weights(cfg, GetParam());
  MatrixF eye(16, 16);
  for (std::size_t i = 0; i < 16; ++i) eye(i, i) = 1.0f;
  w.wv = et::sparse::DenseWeight(eye);
  w.wo = et::sparse::DenseWeight(eye);

  MatrixF x(12, 16);
  et::tensor::fill_normal(x, static_cast<std::uint64_t>(GetParam()) + 9);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::core::otf_attention(ctx, x, w, cfg);
  for (std::size_t c = 0; c < 16; ++c) {
    float lo = 1e30f, hi = -1e30f;
    for (std::size_t r = 0; r < 12; ++r) {
      lo = std::min(lo, x(r, c));
      hi = std::max(hi, x(r, c));
    }
    for (std::size_t r = 0; r < 12; ++r) {
      ASSERT_GE(out(r, c), lo - 1e-4f) << "col " << c;
      ASSERT_LE(out(r, c), hi + 1e-4f) << "col " << c;
    }
  }
}

TEST_P(SeedSweep, MaskRatiosWithinTolerance) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 13);
  std::uniform_real_distribution<double> ratio_dist(0.05, 0.95);
  const double ratio = ratio_dist(rng);
  MatrixF w(64, 64);
  et::tensor::fill_normal(w, static_cast<std::uint64_t>(GetParam()) + 50);
  EXPECT_NEAR(et::sparse::pruning_ratio(et::pruning::magnitude_mask(w, ratio)),
              ratio, 0.01);
  EXPECT_NEAR(et::sparse::pruning_ratio(et::pruning::tile_mask(w, ratio)),
              ratio, 0.1);
}

TEST_P(SeedSweep, PrecomputeIdentityAcrossSeeds) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = 10;
  cfg.d_model = 24;
  cfg.num_heads = 3;
  cfg.precision = et::numeric::Precision::kFp32;
  auto w = et::core::make_dense_weights(cfg, GetParam() * 31);
  MatrixF x(10, 24);
  et::tensor::fill_normal(x, static_cast<std::uint64_t>(GetParam()) + 77);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF without = et::core::otf_attention(ctx, x, w, cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  const MatrixF with_pre = et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(with_pre, without, 1e-3, 1e-3));
}

TEST_P(SeedSweep, IncrementalPrefixDecodeMatchesFullOtf) {
  // Prefix-decode equivalence over random shapes: running a causal
  // sequence through the KV-cached incremental path one position at a
  // time must reproduce the full-sequence OTF forward position by
  // position — the invariant the generation stack (and its batched
  // scheduler) is built on.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 17);
  const std::size_t heads =
      std::uniform_int_distribution<std::size_t>(0, 2)(rng) + 1;  // 1..3
  const std::size_t d_k =
      8 * std::uniform_int_distribution<std::size_t>(1, 2)(rng);  // 8 or 16
  const std::size_t d_model = heads * d_k;
  const std::size_t seq =
      std::uniform_int_distribution<std::size_t>(2, 14)(rng);

  et::core::AttentionConfig cfg;
  cfg.seq_len = seq;
  cfg.d_model = d_model;
  cfg.num_heads = heads;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = true;
  const auto w =
      et::core::make_dense_weights(cfg, static_cast<std::uint64_t>(GetParam()));
  MatrixF x(seq, d_model);
  et::tensor::fill_normal(x, static_cast<std::uint64_t>(GetParam()) + 200);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF full = et::core::otf_attention(ctx, x, w, cfg);

  et::core::KVCache cache(seq, d_model);
  for (std::size_t t = 0; t < seq; ++t) {
    const MatrixF step = et::core::incremental_attention(
        ctx, et::tensor::slice_rows(x, t, 1), w, cfg, cache);
    for (std::size_t c = 0; c < d_model; ++c) {
      ASSERT_NEAR(step(0, c), full(t, c), 1e-4f)
          << "heads " << heads << " d_model " << d_model << " seq " << seq
          << " position " << t << " col " << c;
    }
  }
  EXPECT_EQ(cache.used(), seq);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 11));

}  // namespace
