// Pruned-weight formats: structure validation, condensation, round trips.
#include <gtest/gtest.h>

#include "pruning/criteria.hpp"
#include "sparse/formats.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::sparse::ColPrunedWeight;
using et::sparse::IrregularWeight;
using et::sparse::Mask;
using et::sparse::PruneMethod;
using et::sparse::RowPrunedWeight;
using et::sparse::TilePrunedWeight;
using et::tensor::MatrixF;

MatrixF random_weight(std::size_t r, std::size_t c, std::uint64_t seed) {
  MatrixF w(r, c);
  et::tensor::fill_normal(w, seed);
  return w;
}

MatrixF masked(const MatrixF& w, const Mask& m) {
  MatrixF out = w;
  et::sparse::apply_mask(out, m);
  return out;
}

TEST(Mask, PruningRatio) {
  Mask m(4, 4, 1);
  EXPECT_EQ(et::sparse::pruning_ratio(m), 0.0);
  for (std::size_t c = 0; c < 4; ++c) m(0, c) = 0;
  EXPECT_NEAR(et::sparse::pruning_ratio(m), 0.25, 1e-9);
}

TEST(Mask, StructureChecks) {
  Mask row(4, 4, 1);
  for (std::size_t c = 0; c < 4; ++c) row(2, c) = 0;
  EXPECT_TRUE(et::sparse::is_row_structured(row));
  EXPECT_FALSE(et::sparse::is_col_structured(row));

  Mask col(4, 4, 1);
  for (std::size_t r = 0; r < 4; ++r) col(r, 1) = 0;
  EXPECT_TRUE(et::sparse::is_col_structured(col));
  EXPECT_FALSE(et::sparse::is_row_structured(col));

  Mask tile(32, 32, 1);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) tile(16 + i, j) = 0;
  }
  EXPECT_TRUE(et::sparse::is_tile_structured(tile, 16, 16));
  tile(16, 0) = 1;
  EXPECT_FALSE(et::sparse::is_tile_structured(tile, 16, 16));
}

TEST(RowPruned, CondenseAndRoundTrip) {
  const MatrixF w = random_weight(8, 6, 1);
  const Mask m = et::pruning::row_mask(w, 0.5);
  const auto rp = RowPrunedWeight::from_masked(w, m);
  EXPECT_EQ(rp.condensed().rows(), 4u);
  EXPECT_EQ(rp.condensed().cols(), 6u);
  EXPECT_NEAR(rp.pruning_ratio(), 0.5, 1e-9);
  EXPECT_TRUE(allclose(rp.to_dense(), masked(w, m), 0.0, 0.0));
}

TEST(RowPruned, RejectsUnstructuredMask) {
  const MatrixF w = random_weight(4, 4, 2);
  Mask m(4, 4, 1);
  m(0, 0) = 0;  // not a whole row
  EXPECT_THROW((void)RowPrunedWeight::from_masked(w, m),
               std::invalid_argument);
}

TEST(ColPruned, CondenseAndRoundTrip) {
  const MatrixF w = random_weight(6, 8, 3);
  const Mask m = et::pruning::column_mask(w, 0.25);
  const auto cp = ColPrunedWeight::from_masked(w, m);
  EXPECT_EQ(cp.condensed().cols(), 6u);
  EXPECT_NEAR(cp.pruning_ratio(), 0.25, 1e-9);
  EXPECT_TRUE(allclose(cp.to_dense(), masked(w, m), 0.0, 0.0));
}

TEST(TilePruned, BcsrStructure) {
  const MatrixF w = random_weight(64, 48, 4);
  const Mask m = et::pruning::tile_mask(w, 0.5);
  const auto tp = TilePrunedWeight::from_masked(w, m);
  EXPECT_EQ(tp.tile_rows(), 4u);
  EXPECT_EQ(tp.tile_cols(), 3u);
  EXPECT_EQ(tp.nnz_tiles(), 6u);  // 12 tiles, half pruned
  EXPECT_EQ(tp.row_ptr().size(), 5u);
  EXPECT_EQ(tp.row_ptr().back(), tp.nnz_tiles());
  EXPECT_TRUE(allclose(tp.to_dense(), masked(w, m), 0.0, 0.0));
}

TEST(TilePruned, RejectsNonTileMask) {
  const MatrixF w = random_weight(32, 32, 5);
  Mask m(32, 32, 1);
  m(0, 0) = 0;
  EXPECT_THROW((void)TilePrunedWeight::from_masked(w, m),
               std::invalid_argument);
}

TEST(TilePruned, RejectsUnalignedDims) {
  const MatrixF w = random_weight(30, 32, 6);
  const Mask m(30, 32, 1);
  EXPECT_THROW((void)TilePrunedWeight::from_masked(w, m),
               std::invalid_argument);
}

TEST(Irregular, RoundTripArbitraryMask) {
  const MatrixF w = random_weight(32, 32, 7);
  const Mask m = et::pruning::magnitude_mask(w, 0.7);
  const auto iw = IrregularWeight::from_masked(w, m);
  EXPECT_NEAR(iw.pruning_ratio(), 0.7, 0.01);
  EXPECT_TRUE(allclose(iw.to_dense(), masked(w, m), 0.0, 0.0));
  EXPECT_GT(iw.occupied_tiles(), 0u);
  EXPECT_LE(iw.occupied_tiles(), 4u);
}

TEST(Irregular, EmptyTilesDropped) {
  MatrixF w(32, 32, 0.0f);
  w(0, 0) = 1.0f;  // single nonzero in tile (0,0)
  Mask m(32, 32, 0);
  m(0, 0) = 1;
  const auto iw = IrregularWeight::from_masked(w, m);
  EXPECT_EQ(iw.occupied_tiles(), 1u);
  EXPECT_EQ(iw.nnz(), 1u);
  EXPECT_LT(iw.storage_bytes(), 32u * 32u * 4u)
      << "bitmap format beats dense storage at high sparsity";
}

TEST(AnyWeight, MakeWeightDispatch) {
  const MatrixF w = random_weight(32, 32, 8);
  const Mask all(32, 32, 1);
  EXPECT_EQ(method_of(et::sparse::make_weight(PruneMethod::kDense, w, all)),
            PruneMethod::kDense);
  EXPECT_EQ(method_of(et::sparse::make_weight(
                PruneMethod::kRow, w, et::pruning::row_mask(w, 0.5))),
            PruneMethod::kRow);
  EXPECT_EQ(method_of(et::sparse::make_weight(
                PruneMethod::kColumn, w, et::pruning::column_mask(w, 0.5))),
            PruneMethod::kColumn);
  EXPECT_EQ(method_of(et::sparse::make_weight(
                PruneMethod::kTile, w, et::pruning::tile_mask(w, 0.5))),
            PruneMethod::kTile);
  EXPECT_EQ(
      method_of(et::sparse::make_weight(
          PruneMethod::kIrregular, w, et::pruning::magnitude_mask(w, 0.5))),
      PruneMethod::kIrregular);
}

TEST(AnyWeight, ToDenseConsistentAcrossFormats) {
  const MatrixF w = random_weight(32, 32, 9);
  const Mask m = et::pruning::tile_mask(w, 0.5);
  // A tile mask is a valid irregular mask too.
  const auto tile = et::sparse::make_weight(PruneMethod::kTile, w, m);
  const auto irr = et::sparse::make_weight(PruneMethod::kIrregular, w, m);
  EXPECT_TRUE(allclose(to_dense(tile), to_dense(irr), 0.0, 0.0));
  EXPECT_NEAR(pruning_ratio(tile), pruning_ratio(irr), 1e-9);
}

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, AllCriteriaHitRequestedRatio) {
  const double ratio = GetParam();
  const MatrixF w = random_weight(64, 64, 10);
  EXPECT_NEAR(et::sparse::pruning_ratio(et::pruning::magnitude_mask(w, ratio)),
              ratio, 0.01);
  EXPECT_NEAR(et::sparse::pruning_ratio(et::pruning::row_mask(w, ratio)),
              ratio, 0.02);
  EXPECT_NEAR(et::sparse::pruning_ratio(et::pruning::column_mask(w, ratio)),
              ratio, 0.02);
  EXPECT_NEAR(et::sparse::pruning_ratio(et::pruning::tile_mask(w, ratio)),
              ratio, 0.07);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.7, 0.8, 0.9,
                                           0.95));

}  // namespace
