// Extensions beyond the paper's evaluation: serialization round trips,
// cross-attention + decoder stacks, the §7 folded-attention training
// layer, and other-hardware behaviour.
#include <gtest/gtest.h>

#include <sstream>

#include "core/attention.hpp"
#include "nn/decoder.hpp"
#include "nn/reference.hpp"
#include "nn/serialize.hpp"
#include "pruning/criteria.hpp"
#include "pruning/strategy.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"
#include "train/folded_attention.hpp"
#include "train/model.hpp"

namespace {

using et::tensor::MatrixF;

et::nn::ModelConfig tiny_model() {
  et::nn::ModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  return cfg;
}

// ------------------------------------------------------- serialization ----

TEST(Serialize, DenseRoundTrip) {
  const auto w = et::nn::make_dense_encoder_weights(tiny_model(), 3);
  std::stringstream ss;
  et::nn::save_encoder_stack(ss, {w});
  const auto loaded = et::nn::load_encoder_stack(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(allclose(to_dense(loaded[0].attn.wq), to_dense(w.attn.wq), 0.0,
                       0.0));
  EXPECT_TRUE(allclose(to_dense(loaded[0].w_ff2), to_dense(w.w_ff2), 0.0,
                       0.0));
  EXPECT_EQ(loaded[0].b_ff1, w.b_ff1);
  EXPECT_EQ(loaded[0].ln2_gamma, w.ln2_gamma);
}

TEST(Serialize, PrunedFormatsRoundTripExactly) {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.d_ff = 128;
  cfg.num_layers = 1;
  et::train::TransformerModel model(cfg, 4);

  for (const auto strategy :
       {et::pruning::Strategy::kIrregular, et::pruning::Strategy::kColumn,
        et::pruning::Strategy::kTile,
        et::pruning::Strategy::kAttentionAware}) {
    const auto masks = et::pruning::compute_layer_masks(model.layers()[0],
                                                        strategy, 0.5);
    const auto w =
        et::pruning::deploy_layer(model.layers()[0], masks, strategy);
    std::stringstream ss;
    et::nn::save_encoder_stack(ss, {w});
    const auto loaded = et::nn::load_encoder_stack(ss);
    ASSERT_EQ(loaded.size(), 1u);
    // The format survives, not just the values.
    EXPECT_EQ(method_of(loaded[0].attn.wq), method_of(w.attn.wq))
        << to_string(strategy);
    EXPECT_EQ(method_of(loaded[0].attn.wv), method_of(w.attn.wv));
    EXPECT_TRUE(allclose(to_dense(loaded[0].attn.wv), to_dense(w.attn.wv),
                         0.0, 0.0));
    EXPECT_TRUE(allclose(to_dense(loaded[0].attn.wo), to_dense(w.attn.wo),
                         0.0, 0.0));
    EXPECT_NEAR(pruning_ratio(loaded[0].attn.wq),
                pruning_ratio(w.attn.wq), 1e-12);
  }
}

TEST(Serialize, PrecomputedVoRoundTrip) {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.d_ff = 128;
  cfg.num_layers = 1;
  et::train::TransformerModel model(cfg, 5);
  et::pruning::StrategyOptions opt;
  opt.precompute_vo = true;
  const auto masks = et::pruning::compute_layer_masks(
      model.layers()[0], et::pruning::Strategy::kAttentionAware, 0.5, opt);
  const auto w = et::pruning::deploy_layer(
      model.layers()[0], masks, et::pruning::Strategy::kAttentionAware, opt);
  ASSERT_TRUE(w.attn.has_precomputed());

  std::stringstream ss;
  et::nn::save_encoder_stack(ss, {w});
  const auto loaded = et::nn::load_encoder_stack(ss);
  ASSERT_TRUE(loaded[0].attn.has_precomputed());
  EXPECT_EQ(loaded[0].attn.vo.kept_cols, w.attn.vo.kept_cols);
  EXPECT_TRUE(allclose(loaded[0].attn.vo.weight, w.attn.vo.weight, 0.0, 0.0));
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is not an ETW file at all";
  EXPECT_THROW((void)et::nn::load_encoder_stack(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  const auto w = et::nn::make_dense_encoder_weights(tiny_model(), 6);
  std::stringstream ss;
  et::nn::save_encoder_stack(ss, {w});
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)et::nn::load_encoder_stack(cut), std::runtime_error);
}

// ------------------------------------------------------ cross-attention ----

TEST(CrossAttention, MatchesReference) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = 12;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 7);
  MatrixF x(12, 32), memory(20, 32);
  et::tensor::fill_normal(x, 8);
  et::tensor::fill_normal(memory, 9);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::core::otf_cross_attention(ctx, x, memory, w, cfg);
  const MatrixF ref = et::nn::reference_cross_attention(x, memory, w, cfg);
  EXPECT_TRUE(allclose(out, ref, 1e-4, 1e-3))
      << "max diff " << max_abs_diff(out, ref);
}

TEST(CrossAttention, SelfMemoryEqualsSelfAttention) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = 16;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 10);
  MatrixF x(16, 32);
  et::tensor::fill_normal(x, 11);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF cross = et::core::otf_cross_attention(ctx, x, x, w, cfg);
  const MatrixF self = et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(cross, self, 1e-5, 1e-5));
}

TEST(CrossAttention, PrecomputePathWorks) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = 8;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = false;
  auto w = et::core::make_dense_weights(cfg, 12);
  MatrixF x(8, 32), memory(24, 32);
  et::tensor::fill_normal(x, 13);
  et::tensor::fill_normal(memory, 14);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF without = et::core::otf_cross_attention(ctx, x, memory, w,
                                                        cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  const MatrixF with_pre = et::core::otf_cross_attention(ctx, x, memory, w,
                                                         cfg);
  EXPECT_TRUE(allclose(with_pre, without, 1e-3, 1e-3));
}

// -------------------------------------------------------------- decoder ----

TEST(Decoder, MatchesReference) {
  const auto model = tiny_model();
  const auto w = et::nn::make_dense_decoder_weights(model, 15);
  MatrixF x(10, model.d_model), memory(14, model.d_model);
  et::tensor::fill_normal(x, 16, 0.0f, 0.5f);
  et::tensor::fill_normal(memory, 17, 0.0f, 0.5f);

  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 10);
  opt.attn.precision = et::numeric::Precision::kFp32;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::nn::decoder_forward(ctx, x, memory, w, opt);
  const MatrixF ref = et::nn::reference_decoder(x, memory, w, opt.attn);
  EXPECT_TRUE(allclose(out, ref, 2e-3, 2e-3))
      << "max diff " << max_abs_diff(out, ref);
}

TEST(Decoder, Seq2SeqRunsAndCountsKernels) {
  const auto model = tiny_model();
  std::vector<et::nn::EncoderWeights> enc = {
      et::nn::make_dense_encoder_weights(model, 18)};
  std::vector<et::nn::DecoderWeights> dec = {
      et::nn::make_dense_decoder_weights(model, 19)};
  MatrixF source(16, model.d_model), target(8, model.d_model);
  et::tensor::fill_normal(source, 20, 0.0f, 0.5f);
  et::tensor::fill_normal(target, 21, 0.0f, 0.5f);

  auto enc_opt = et::nn::options_for(et::nn::Pipeline::kET, model, 16);
  enc_opt.attn.precision = et::numeric::Precision::kFp32;
  auto dec_opt = enc_opt;
  dec_opt.attn.seq_len = 8;
  dec_opt.attn.causal_mask = true;

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::nn::seq2seq_forward(ctx, source, target, enc, dec,
                                              enc_opt, dec_opt);
  EXPECT_EQ(out.rows(), 8u);
  EXPECT_EQ(out.cols(), model.d_model);
  EXPECT_GT(dev.time_us_matching("otf_cross_attention"), 0.0);
  for (float v : out.flat()) ASSERT_TRUE(std::isfinite(v));
}

TEST(Decoder, PrunedCrossAttentionWeights) {
  // Decoder attention weights prune like encoder ones.
  const auto model = tiny_model();
  auto w = et::nn::make_dense_decoder_weights(model, 22);
  const auto& wq =
      std::get<et::sparse::DenseWeight>(w.cross_attn.wq).matrix();
  w.cross_attn.wq = et::sparse::make_weight(
      et::sparse::PruneMethod::kTile, wq, et::pruning::tile_mask(wq, 0.5));
  MatrixF x(8, model.d_model), memory(12, model.d_model);
  et::tensor::fill_normal(x, 23, 0.0f, 0.5f);
  et::tensor::fill_normal(memory, 24, 0.0f, 0.5f);
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 8);
  opt.attn.precision = et::numeric::Precision::kFp32;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::nn::decoder_forward(ctx, x, memory, w, opt);
  EXPECT_GT(dev.time_us_matching("bcsr"), 0.0) << "tile kernel in use";
  for (float v : out.flat()) ASSERT_TRUE(std::isfinite(v));
}

// ----------------------------------------------------- folded training ----

TEST(FoldedAttention, FoldReproducesStandardForward) {
  et::train::MultiHeadAttention mha(16, 2, 30, /*causal=*/true);
  // fold() requires zero V/O biases (documented).
  std::fill(mha.wv.bias.begin(), mha.wv.bias.end(), 0.0f);
  std::fill(mha.wo.bias.begin(), mha.wo.bias.end(), 0.0f);
  auto folded = et::train::FoldedMultiHeadAttention::fold(mha);

  MatrixF x(6, 16);
  et::tensor::fill_normal(x, 31);
  const MatrixF a = mha.forward(x);
  const MatrixF b = folded.forward(x);
  EXPECT_TRUE(allclose(b, a, 1e-4, 1e-4)) << max_abs_diff(a, b);
}

TEST(FoldedAttention, GradientCheckOnWvo) {
  et::train::FoldedMultiHeadAttention layer(16, 2, 32, /*causal=*/false);
  MatrixF x(5, 16);
  et::tensor::fill_normal(x, 33);
  MatrixF coeffs(5, 16);
  et::tensor::fill_normal(coeffs, 34);
  const auto loss = [&](const MatrixF& y) {
    float s = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
      s += y.flat()[i] * coeffs.flat()[i];
    }
    return s;
  };

  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(coeffs);

  const float eps = 1e-3f;
  for (const std::size_t i : {0u, 123u, 400u}) {
    const float orig = layer.wvo.w.flat()[i];
    layer.wvo.w.flat()[i] = orig + eps;
    const float up = loss(layer.forward(x));
    layer.wvo.w.flat()[i] = orig - eps;
    const float down = loss(layer.forward(x));
    layer.wvo.w.flat()[i] = orig;
    EXPECT_NEAR(layer.wvo.g.flat()[i], (up - down) / (2 * eps), 2e-2f)
        << "wvo entry " << i;
  }
}

TEST(FoldedAttention, TrainsToReduceLoss) {
  // Regress a fixed target through the folded layer alone.
  et::train::FoldedMultiHeadAttention layer(16, 2, 35, /*causal=*/false);
  MatrixF x(4, 16), target(4, 16);
  et::tensor::fill_normal(x, 36);
  et::tensor::fill_normal(target, 37, 0.0f, 0.3f);
  et::train::AdamW opt({.lr = 5e-3f, .weight_decay = 0.0f});

  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    layer.zero_grad();
    const MatrixF y = layer.forward(x);
    MatrixF dy(4, 16);
    float loss = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const float diff = y.flat()[i] - target.flat()[i];
      loss += diff * diff;
      dy.flat()[i] = 2.0f * diff;
    }
    (void)layer.backward(dy);
    std::vector<et::train::Param*> params;
    layer.collect(params);
    opt.step(params);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.2f * first) << first << " -> " << last;
}

TEST(FoldedAttention, ParameterCountIsHTimesD2) {
  et::train::FoldedMultiHeadAttention layer(32, 4, 38, true);
  EXPECT_EQ(layer.wvo.w.rows(), 4u * 32u);
  EXPECT_EQ(layer.wvo.w.cols(), 32u);
}

// ------------------------------------------------------- other hardware ----

TEST(OtherHardware, A100FasterAndShiftsCrossover) {
  const auto model = tiny_model();
  const auto w = et::nn::make_dense_encoder_weights(model, 40);
  MatrixF x(64, model.d_model);
  const auto run = [&](const et::gpusim::DeviceSpec& spec) {
    et::gpusim::Device dev(spec);
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    (void)et::nn::encoder_forward(
        ctx, x, w, et::nn::options_for(et::nn::Pipeline::kET, model, 64));
    return dev.total_time_us();
  };
  EXPECT_LT(run(et::gpusim::a100()), run(et::gpusim::v100s()));
}

}  // namespace

namespace {

TEST(Serialize, DecoderStackRoundTrip) {
  et::nn::ModelConfig model;
  model.num_layers = 2;
  model.d_model = 32;
  model.num_heads = 2;
  model.d_ff = 64;
  std::vector<et::nn::DecoderWeights> layers = {
      et::nn::make_dense_decoder_weights(model, 60),
      et::nn::make_dense_decoder_weights(model, 61)};
  std::stringstream ss;
  et::nn::save_decoder_stack(ss, layers);
  const auto loaded = et::nn::load_decoder_stack(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(et::tensor::allclose(to_dense(loaded[1].cross_attn.wk),
                                   to_dense(layers[1].cross_attn.wk), 0.0,
                                   0.0));
  EXPECT_EQ(loaded[0].ln3_gamma, layers[0].ln3_gamma);
  // Loaded weights forward identically.
  MatrixF x(6, 32), memory(9, 32);
  et::tensor::fill_normal(x, 62, 0.0f, 0.5f);
  et::tensor::fill_normal(memory, 63, 0.0f, 0.5f);
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 6);
  opt.attn.precision = et::numeric::Precision::kFp32;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF a =
      et::nn::decoder_stack_forward(ctx, x, memory, layers, opt);
  const MatrixF b =
      et::nn::decoder_stack_forward(ctx, x, memory, loaded, opt);
  EXPECT_TRUE(et::tensor::allclose(a, b, 1e-6, 1e-6));
}

TEST(Serialize, EncoderRejectsDecoderFile) {
  et::nn::ModelConfig model;
  model.d_model = 32;
  model.num_heads = 2;
  model.d_ff = 64;
  std::vector<et::nn::DecoderWeights> layers = {
      et::nn::make_dense_decoder_weights(model, 70)};
  std::stringstream ss;
  et::nn::save_decoder_stack(ss, layers);
  EXPECT_THROW((void)et::nn::load_encoder_stack(ss), std::runtime_error);
}

}  // namespace
