// Checkpoint integrity: the v2 ("ETW2"/"ETD2") format detects truncation
// and bit flips per named section, rejects implausible header fields, and
// still loads legacy v1 streams (with a warning). Every corruption test
// asserts the error message names the bad section — a corrupted
// checkpoint must point at *what* is bad, not just fail. See
// docs/robustness.md.
#include <gtest/gtest.h>

#include <cstring>
#include <iostream>
#include <sstream>

#include "nn/serialize.hpp"
#include "tensor/compare.hpp"

namespace {

using et::tensor::MatrixF;

et::nn::ModelConfig tiny_model() {
  et::nn::ModelConfig model;
  model.num_layers = 2;
  model.d_model = 32;
  model.num_heads = 2;
  model.d_ff = 64;
  return model;
}

std::vector<et::nn::EncoderWeights> tiny_stack(std::uint64_t seed) {
  return {et::nn::make_dense_encoder_weights(tiny_model(), seed),
          et::nn::make_dense_encoder_weights(tiny_model(), seed + 1)};
}

std::string serialize(const std::vector<et::nn::EncoderWeights>& layers) {
  std::stringstream ss;
  et::nn::save_encoder_stack(ss, layers);
  return ss.str();
}

/// Byte offset of the section *header* (the u32 name-length field) for
/// `name`. The name bytes could in principle also occur inside a float
/// payload, so require the preceding u32 to equal the name length.
std::size_t section_header_pos(const std::string& blob,
                               const std::string& name) {
  std::size_t pos = blob.find(name);
  while (pos != std::string::npos) {
    if (pos >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, blob.data() + pos - 4, 4);
      if (len == name.size()) return pos - 4;
    }
    pos = blob.find(name, pos + 1);
  }
  ADD_FAILURE() << "section '" << name << "' not found in stream";
  return 0;  // keep later indexing in-bounds; the failure is already flagged
}

/// First payload byte: header is u32 name_len + name + u64 size + u32 crc.
std::size_t section_payload_pos(const std::string& blob,
                                const std::string& name) {
  return section_header_pos(blob, name) + 4 + name.size() + 8 + 4;
}

template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the load to throw";
  return {};
}

bool weights_equal(const et::nn::EncoderWeights& a,
                   const et::nn::EncoderWeights& b) {
  using et::sparse::to_dense;
  return allclose(to_dense(a.attn.wq), to_dense(b.attn.wq), 0.0, 0.0) &&
         allclose(to_dense(a.attn.wo), to_dense(b.attn.wo), 0.0, 0.0) &&
         allclose(to_dense(a.w_ff1), to_dense(b.w_ff1), 0.0, 0.0) &&
         allclose(to_dense(a.w_ff2), to_dense(b.w_ff2), 0.0, 0.0) &&
         a.b_ff1 == b.b_ff1 && a.b_ff2 == b.b_ff2 &&
         a.ln1_gamma == b.ln1_gamma && a.ln1_beta == b.ln1_beta &&
         a.ln2_gamma == b.ln2_gamma && a.ln2_beta == b.ln2_beta;
}

// ------------------------------------------------------- happy paths ----

TEST(CheckpointIntegrity, V2StackRoundTripsAndLeadsWithMagic) {
  const auto layers = tiny_stack(100);
  const std::string blob = serialize(layers);
  ASSERT_GE(blob.size(), 4u);
  EXPECT_EQ(blob.substr(0, 4), "ETW2");

  std::stringstream ss(blob);
  const auto loaded = et::nn::load_encoder_stack(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(weights_equal(loaded[0], layers[0]));
  EXPECT_TRUE(weights_equal(loaded[1], layers[1]));
}

TEST(CheckpointIntegrity, SingleLayerSectionsRoundTrip) {
  const auto w = et::nn::make_dense_encoder_weights(tiny_model(), 101);
  std::stringstream ss;
  et::nn::save_encoder_weights(ss, w);
  EXPECT_TRUE(weights_equal(et::nn::load_encoder_weights(ss), w));
}

// -------------------------------------------------------- truncation ----

TEST(CheckpointIntegrity, TruncationNamesTheSectionItHit) {
  const std::string blob = serialize(tiny_stack(102));
  // Cut inside layer1's attention payload: earlier sections load clean,
  // then the reader must fail *on that section by name*.
  const std::size_t cut = section_payload_pos(blob, "layer1/attention") + 10;
  ASSERT_LT(cut, blob.size());
  std::stringstream ss(blob.substr(0, cut));
  const std::string msg =
      error_of([&] { (void)et::nn::load_encoder_stack(ss); });
  EXPECT_NE(msg.find("layer1/attention"), std::string::npos) << msg;
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
}

TEST(CheckpointIntegrity, TruncationInsideHeaderNamesTheSection) {
  const std::string blob = serialize(tiny_stack(103));
  // Cut mid-header (inside the section name bytes) of layer0/ffn.
  const std::size_t cut = section_header_pos(blob, "layer0/ffn") + 6;
  std::stringstream ss(blob.substr(0, cut));
  const std::string msg =
      error_of([&] { (void)et::nn::load_encoder_stack(ss); });
  EXPECT_NE(msg.find("layer0/ffn"), std::string::npos) << msg;
}

// --------------------------------------------------------- bit flips ----

TEST(CheckpointIntegrity, FlippedPayloadByteNamesEachSectionType) {
  const std::string blob = serialize(tiny_stack(104));
  for (const std::string section :
       {"layer0/attention", "layer0/ffn", "layer0/layernorm",
        "layer1/layernorm"}) {
    std::string bad = blob;
    bad[section_payload_pos(bad, section)] ^= 0x40;
    std::stringstream ss(bad);
    const std::string msg =
        error_of([&] { (void)et::nn::load_encoder_stack(ss); });
    EXPECT_NE(msg.find(section), std::string::npos) << msg;
    EXPECT_NE(msg.find("CRC32"), std::string::npos) << msg;
  }
}

TEST(CheckpointIntegrity, FlippedHeaderByteIsCorruptedHeaderNotGarbageLoad) {
  const std::string blob = serialize(tiny_stack(105));
  std::string bad = blob;
  bad[section_header_pos(bad, "layer0/ffn")] ^= 0x10;  // name-length field
  std::stringstream ss(bad);
  const std::string msg =
      error_of([&] { (void)et::nn::load_encoder_stack(ss); });
  EXPECT_NE(msg.find("layer0/ffn"), std::string::npos) << msg;
  EXPECT_NE(msg.find("corrupted header"), std::string::npos) << msg;
}

TEST(CheckpointIntegrity, FlippedSizeFieldNeverBecomesHugeAllocation) {
  const std::string blob = serialize(tiny_stack(106));
  std::string bad = blob;
  // Flip the top byte of the u64 payload-size field: a naive reader would
  // try to allocate ~2^56 bytes.
  const std::size_t size_field =
      section_header_pos(bad, "layer0/attention") + 4 +
      std::string("layer0/attention").size();
  bad[size_field + 7] ^= 0x01;
  std::stringstream ss(bad);
  const std::string msg =
      error_of([&] { (void)et::nn::load_encoder_stack(ss); });
  EXPECT_NE(msg.find("layer0/attention"), std::string::npos) << msg;
  EXPECT_NE(msg.find("implausible section size"), std::string::npos) << msg;
}

// ------------------------------------------------------ layer counts ----

TEST(CheckpointIntegrity, OffByOneLayerCountNamesTheMissingSection) {
  std::string blob = serialize({et::nn::make_dense_encoder_weights(
      tiny_model(), 107)});
  // Layer count is the u64 after magic + version. 1 -> 2: the reader asks
  // for layer1's sections past the end of the stream.
  ASSERT_EQ(blob[8], 1);
  blob[8] = 2;
  std::stringstream ss(blob);
  const std::string msg =
      error_of([&] { (void)et::nn::load_encoder_stack(ss); });
  EXPECT_NE(msg.find("layer1/attention"), std::string::npos) << msg;
}

TEST(CheckpointIntegrity, ImplausibleLayerCountRejectedBeforeAllocating) {
  std::string blob = serialize({et::nn::make_dense_encoder_weights(
      tiny_model(), 108)});
  for (std::size_t i = 8; i < 16; ++i) blob[i] = static_cast<char>(0xff);
  std::stringstream ss(blob);
  const std::string msg =
      error_of([&] { (void)et::nn::load_encoder_stack(ss); });
  EXPECT_NE(msg.find("implausible layer count"), std::string::npos) << msg;
}

// ---------------------------------------------------- legacy formats ----

TEST(CheckpointIntegrity, LegacyEtw1LoadsEqualWithWarning) {
  const auto layers = tiny_stack(109);
  std::stringstream ss;
  et::nn::save_encoder_stack_v1(ss, layers);
  EXPECT_EQ(ss.str().substr(0, 4), "ETW1");

  std::stringstream warning;
  auto* old = std::cerr.rdbuf(warning.rdbuf());
  const auto loaded = et::nn::load_encoder_stack(ss);
  std::cerr.rdbuf(old);

  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(weights_equal(loaded[0], layers[0]));
  EXPECT_TRUE(weights_equal(loaded[1], layers[1]));
  EXPECT_NE(warning.str().find("legacy ETW1"), std::string::npos);
}

TEST(CheckpointIntegrity, Etw1ResaveUpgradesToEtw2) {
  const auto layers = tiny_stack(110);
  std::stringstream v1;
  et::nn::save_encoder_stack_v1(v1, layers);

  std::stringstream warning;  // swallow the legacy warning
  auto* old = std::cerr.rdbuf(warning.rdbuf());
  const auto migrated = et::nn::load_encoder_stack(v1);
  std::cerr.rdbuf(old);

  std::stringstream v2;
  et::nn::save_encoder_stack(v2, migrated);
  EXPECT_EQ(v2.str().substr(0, 4), "ETW2");
  const auto reloaded = et::nn::load_encoder_stack(v2);
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(weights_equal(reloaded[0], layers[0]));
  EXPECT_TRUE(weights_equal(reloaded[1], layers[1]));
}

// ------------------------------------------------------------ decoder ----

TEST(CheckpointIntegrity, DecoderV2RoundTripAndCorruptionNaming) {
  const auto model = tiny_model();
  std::vector<et::nn::DecoderWeights> layers = {
      et::nn::make_dense_decoder_weights(model, 111),
      et::nn::make_dense_decoder_weights(model, 112)};
  std::stringstream ss;
  et::nn::save_decoder_stack(ss, layers);
  const std::string blob = ss.str();
  EXPECT_EQ(blob.substr(0, 4), "ETD2");

  const auto loaded = et::nn::load_decoder_stack(ss);
  ASSERT_EQ(loaded.size(), 2u);
  using et::sparse::to_dense;
  EXPECT_TRUE(allclose(to_dense(loaded[1].cross_attn.wk),
                       to_dense(layers[1].cross_attn.wk), 0.0, 0.0));
  EXPECT_EQ(loaded[0].ln3_gamma, layers[0].ln3_gamma);

  std::string bad = blob;
  bad[section_payload_pos(bad, "layer0/cross_attention")] ^= 0x20;
  std::stringstream corrupted(bad);
  const std::string msg =
      error_of([&] { (void)et::nn::load_decoder_stack(corrupted); });
  EXPECT_NE(msg.find("layer0/cross_attention"), std::string::npos) << msg;
  EXPECT_NE(msg.find("CRC32"), std::string::npos) << msg;
}

TEST(CheckpointIntegrity, LegacyEtd1LoadsEqualWithWarning) {
  const auto model = tiny_model();
  std::vector<et::nn::DecoderWeights> layers = {
      et::nn::make_dense_decoder_weights(model, 113)};
  std::stringstream ss;
  et::nn::save_decoder_stack_v1(ss, layers);
  EXPECT_EQ(ss.str().substr(0, 4), "ETD1");

  std::stringstream warning;
  auto* old = std::cerr.rdbuf(warning.rdbuf());
  const auto loaded = et::nn::load_decoder_stack(ss);
  std::cerr.rdbuf(old);

  ASSERT_EQ(loaded.size(), 1u);
  using et::sparse::to_dense;
  EXPECT_TRUE(allclose(to_dense(loaded[0].self_attn.wq),
                       to_dense(layers[0].self_attn.wq), 0.0, 0.0));
  EXPECT_EQ(loaded[0].ln3_beta, layers[0].ln3_beta);
  EXPECT_NE(warning.str().find("legacy ETD1"), std::string::npos);
}

}  // namespace
