// core::ThreadPool unit tests: the deterministic-partition contract
// (docs/threading.md), exception propagation out of worker chunks, and
// the nested-parallelism guard. These are the pool-level halves of the
// guarantees the differential threads axis (test_parallel_exec.cpp)
// checks end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace {

using et::core::ThreadPool;

/// The chunk partition as a list of (chunk, begin, end) triples, in chunk
/// order (run_chunked may execute them in any order, so sort).
std::vector<std::array<std::size_t, 3>> partition_of(ThreadPool& pool,
                                                     std::size_t n,
                                                     std::size_t grain) {
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> chunks;
  const auto errors =
      pool.run_chunked(n, grain, [&](std::size_t c, std::size_t b,
                                     std::size_t e) {
        const std::lock_guard<std::mutex> lock(mu);
        chunks.push_back({c, b, e});
      });
  EXPECT_TRUE(errors.empty());
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

// -------------------------------------------------------------------------
// Deterministic partitioning.
// -------------------------------------------------------------------------

TEST(ThreadPool, PartitionDependsOnlyOnSizeAndGrain) {
  // The same (n, grain) must yield the same chunk list at every thread
  // count — the partition is the thread-count-independent half of the
  // determinism contract.
  for (const std::size_t n : {1u, 7u, 64u, 65u, 1000u}) {
    for (const std::size_t grain : {1u, 3u, 64u}) {
      ThreadPool serial(1);
      ThreadPool two(2);
      ThreadPool eight(8);
      const auto ref = partition_of(serial, n, grain);
      EXPECT_EQ(partition_of(two, n, grain), ref)
          << "n=" << n << " grain=" << grain;
      EXPECT_EQ(partition_of(eight, n, grain), ref)
          << "n=" << n << " grain=" << grain;
      // And the partition tiles [0, n) exactly: contiguous, disjoint.
      ASSERT_EQ(ref.size(), ThreadPool::chunk_count(n, grain));
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < ref.size(); ++c) {
        EXPECT_EQ(ref[c][0], c);
        EXPECT_EQ(ref[c][1], expect_begin);
        expect_begin = ref[c][2];
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 937;  // prime: uneven tail chunk
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, AutoGrainCapsChunkCount) {
  EXPECT_EQ(ThreadPool::grain_for(10), 1u);
  EXPECT_EQ(ThreadPool::grain_for(64), 1u);
  EXPECT_EQ(ThreadPool::grain_for(65), 2u);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 129u, 100000u}) {
    const std::size_t g = ThreadPool::grain_for(n);
    EXPECT_LE(ThreadPool::chunk_count(n, g), ThreadPool::kMaxAutoChunks);
    EXPECT_GE(g * ThreadPool::chunk_count(n, g), n);
  }
}

TEST(ThreadPool, ChunkOrderedReductionIsThreadCountInvariant) {
  // Floating-point sums reassociated across chunks differ in the last
  // ulp; reduced IN CHUNK ORDER they cannot. Build per-chunk partial sums
  // and fold them in chunk index order at several thread counts.
  constexpr std::size_t kN = 512;
  std::vector<float> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = 1.0f / static_cast<float>(i + 1);
  }
  const auto sum_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    const std::size_t grain = 31;  // uneven on purpose
    std::vector<float> partial(ThreadPool::chunk_count(kN, grain), 0.0f);
    pool.for_chunks(kN, grain,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
                      float s = 0.0f;
                      for (std::size_t i = b; i < e; ++i) s += x[i];
                      partial[c] = s;
                    });
    float total = 0.0f;
    for (const float s : partial) total += s;
    return total;
  };
  const float ref = sum_with(1);
  EXPECT_EQ(sum_with(2), ref);   // bitwise, not allclose
  EXPECT_EQ(sum_with(8), ref);
}

// -------------------------------------------------------------------------
// Exception propagation.
// -------------------------------------------------------------------------

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [](std::size_t i) {
                            if (i == 57) {
                              throw std::runtime_error("chunk body failed");
                            }
                          },
                          /*grain=*/10),
        std::runtime_error);
  }
}

TEST(ThreadPool, LowestChunkExceptionWinsAndAllChunksRun) {
  // Multiple failing chunks: for_chunks must rethrow the exception a
  // serial loop would have hit first, and every chunk still executes
  // (error behavior is thread-count-invariant, not first-failure-wins).
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<std::size_t> ran{0};
    const auto errors = pool.run_chunked(
        100, 10, [&](std::size_t chunk, std::size_t, std::size_t) {
          ++ran;
          if (chunk == 3) throw std::invalid_argument("chunk 3");
          if (chunk == 7) throw std::runtime_error("chunk 7");
        });
    EXPECT_EQ(ran.load(), 10u) << "threads=" << threads;
    ASSERT_EQ(errors.size(), 2u);
    EXPECT_EQ(errors[0].chunk, 3u);
    EXPECT_EQ(errors[1].chunk, 7u);
    try {
      std::rethrow_exception(errors[0].error);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(), "chunk 3");
    }
  }
}

// -------------------------------------------------------------------------
// Nested-parallelism guard.
// -------------------------------------------------------------------------

TEST(ThreadPool, InParallelRegionFlagTracksChunkBodies) {
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(8, [&](std::size_t) {
    if (ThreadPool::in_parallel_region()) ++inside;
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, NestedParallelForRunsSeriallyInline) {
  // A parallel_for issued from inside a chunk body must run inline on the
  // issuing thread (no deadlock on the single in-flight job, no second
  // partition) and still visit every index exactly once.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    const auto outer_thread = std::this_thread::get_id();
    pool.parallel_for(kInner, [&, o](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread)
          << "nested chunk escaped the issuing thread";
      ++visits[o * kInner + i];
    });
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkersAndStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::size_t sum = 0;  // no atomics needed: everything runs inline
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
