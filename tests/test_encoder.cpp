// Encoder layer / stack: numerics vs the double-precision reference and
// pipeline-structure properties (launch counts, latency ordering).
#include <gtest/gtest.h>

#include "nn/encoder.hpp"
#include "nn/embedding.hpp"
#include "nn/model_config.hpp"
#include "nn/positional.hpp"
#include "nn/reference.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::gpusim::Device;
using et::nn::EncoderOptions;
using et::nn::EncoderWeights;
using et::nn::ModelConfig;
using et::nn::Pipeline;
using et::tensor::MatrixF;

ModelConfig tiny_model() {
  ModelConfig cfg;
  cfg.name = "tiny";
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  return cfg;
}

TEST(Encoder, AllPipelinesMatchReference) {
  const auto model = tiny_model();
  const auto w = et::nn::make_dense_encoder_weights(model, 3);
  MatrixF x(16, model.d_model);
  et::tensor::fill_normal(x, 4);

  for (const auto pipeline :
       {Pipeline::kModular, Pipeline::kTensorRT, Pipeline::kFasterTransformer,
        Pipeline::kET}) {
    auto opt = et::nn::options_for(pipeline, model, 16, /*causal=*/true);
    // Use FP32 for the numerical comparison; the precision policies are
    // exercised separately.
    opt.attn.precision = et::numeric::Precision::kFp32;
    Device dev;
    et::core::ExecContext ctx(dev);
    const MatrixF y = et::nn::encoder_forward(ctx, x, w, opt);
    const MatrixF ref = et::nn::reference_encoder(x, w, opt.attn);
    EXPECT_TRUE(allclose(y, ref, 1e-3, 1e-3))
        << to_string(pipeline) << " max diff " << max_abs_diff(y, ref);
  }
}

TEST(Encoder, StackAppliesLayersInOrder) {
  const auto model = tiny_model();
  std::vector<EncoderWeights> layers;
  layers.push_back(et::nn::make_dense_encoder_weights(model, 5));
  layers.push_back(et::nn::make_dense_encoder_weights(model, 6));
  MatrixF x(8, model.d_model);
  et::tensor::fill_normal(x, 7);
  auto opt = et::nn::options_for(Pipeline::kET, model, 8);
  opt.attn.precision = et::numeric::Precision::kFp32;

  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF stacked = et::nn::encoder_stack_forward(ctx, x, layers, opt);
  const MatrixF manual = et::nn::encoder_forward(
      ctx, et::nn::encoder_forward(ctx, x, layers[0], opt), layers[1], opt);
  EXPECT_TRUE(allclose(stacked, manual, 1e-6, 1e-6));
}

TEST(Encoder, ModularHasMostKernelLaunches) {
  const auto model = tiny_model();
  const auto w = et::nn::make_dense_encoder_weights(model, 8);
  MatrixF x(16, model.d_model);

  std::size_t launches[4];
  const Pipeline pipes[] = {Pipeline::kModular, Pipeline::kTensorRT,
                            Pipeline::kFasterTransformer, Pipeline::kET};
  for (int i = 0; i < 4; ++i) {
    Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    (void)et::nn::encoder_forward(ctx, x, w,
                                  et::nn::options_for(pipes[i], model, 16));
    launches[i] = dev.launch_count();
  }
  EXPECT_GT(launches[0], launches[1]);   // PyTorch > TensorRT
  EXPECT_GE(launches[1], launches[2]);   // TensorRT >= FasterTransformer
  EXPECT_GT(launches[2], launches[3]);   // FasterTransformer > E.T.
}

TEST(Encoder, LatencyOrderingMatchesFig7AtDense) {
  // Unpruned BERT_BASE encoder at seq 128: PyTorch slowest, E.T. at least
  // as fast as FasterTransformer.
  const auto model = et::nn::bert_base();
  const auto w = et::nn::make_dense_encoder_weights(model, 9);
  MatrixF x(128, model.d_model);

  const auto run = [&](Pipeline p) {
    Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    (void)et::nn::encoder_forward(ctx, x, w,
                                  et::nn::options_for(p, model, 128));
    return dev.total_time_us();
  };
  const double pytorch = run(Pipeline::kModular);
  const double trt = run(Pipeline::kTensorRT);
  const double ft = run(Pipeline::kFasterTransformer);
  const double et_time = run(Pipeline::kET);

  EXPECT_GT(pytorch, trt);
  EXPECT_GE(trt, ft);
  EXPECT_GE(ft, et_time);
}

TEST(Encoder, OptionsForSetsPaperPrecisions) {
  const auto model = tiny_model();
  EXPECT_EQ(et::nn::options_for(Pipeline::kModular, model, 16).attn.precision,
            et::numeric::Precision::kFp32);
  EXPECT_EQ(et::nn::options_for(Pipeline::kTensorRT, model, 16).attn.precision,
            et::numeric::Precision::kMixed);
  const auto et_opt = et::nn::options_for(Pipeline::kET, model, 16);
  EXPECT_EQ(et_opt.attn.precision, et::numeric::Precision::kPureFp16);
  EXPECT_TRUE(et_opt.attn.scale_before_multiply);
  EXPECT_FALSE(
      et::nn::options_for(Pipeline::kTensorRT, model, 16).attn
          .scale_before_multiply);
}

TEST(Positional, MatchesEquation1And2) {
  const auto pe = et::nn::positional_encoding(4, 8);
  EXPECT_FLOAT_EQ(pe(0, 0), 0.0f);  // sin(0)
  EXPECT_FLOAT_EQ(pe(0, 1), 1.0f);  // cos(0)
  EXPECT_NEAR(pe(1, 0), std::sin(1.0), 1e-6);
  EXPECT_NEAR(pe(1, 1), std::cos(1.0), 1e-6);
  EXPECT_NEAR(pe(2, 2), std::sin(2.0 / std::pow(10000.0, 2.0 / 8.0)), 1e-6);
}

TEST(Embedding, LooksUpRows) {
  MatrixF table(10, 4);
  et::tensor::fill_uniform(table, 10);
  const std::int32_t toks[] = {3, 7, 3};
  const MatrixF x = et::nn::embed_tokens(table, toks);
  EXPECT_EQ(x.rows(), 3u);
  EXPECT_EQ(x(0, 2), table(3, 2));
  EXPECT_EQ(x(1, 0), table(7, 0));
  EXPECT_EQ(x(2, 2), x(0, 2));
}

TEST(ModelConfig, ParameterCounts) {
  // BERT_BASE encoder stack is ~85M of the 110M total (the rest is
  // embeddings); sanity-check the order of magnitude.
  const auto count = et::nn::parameter_count(et::nn::bert_base());
  EXPECT_GT(count, 80'000'000u);
  EXPECT_LT(count, 90'000'000u);
  EXPECT_GT(et::nn::parameter_count(et::nn::bert_large()),
            2 * et::nn::parameter_count(et::nn::distilbert()));
}

}  // namespace
