// Parameterized cross-equivalence sweeps: every attention implementation
// must compute the same function across shapes, masks, precisions and
// pruned weight formats.
#include <gtest/gtest.h>

#include <tuple>

#include "core/adaptive.hpp"
#include "core/attention.hpp"
#include "nn/reference.hpp"
#include "pruning/criteria.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::core::AttentionConfig;
using et::core::AttentionImpl;
using et::core::AttentionWeights;
using et::gpusim::Device;
using et::numeric::Precision;
using et::sparse::PruneMethod;
using et::tensor::MatrixF;

MatrixF run_impl(AttentionImpl impl, Device& dev, const MatrixF& x,
                 const AttentionWeights& w, const AttentionConfig& cfg) {
  et::core::ExecContext ctx(dev);
  switch (impl) {
    case AttentionImpl::kModular:
      return et::core::modular_attention(ctx, x, w, cfg);
    case AttentionImpl::kFused:
      return et::core::fused_attention(ctx, x, w, cfg);
    case AttentionImpl::kOtf:
      return et::core::otf_attention(ctx, x, w, cfg);
    case AttentionImpl::kPartialOtf:
      return et::core::partial_otf_attention(ctx, x, w, cfg);
    case AttentionImpl::kFlash:
      return et::core::flash_attention(ctx, x, w, cfg);
  }
  return {};
}

// ---------------------------------------------------------------------------
// Shape sweep: (seq, d_model, heads, causal) × implementation.
// ---------------------------------------------------------------------------
class ShapeSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, bool, AttentionImpl>> {};

TEST_P(ShapeSweep, MatchesReference) {
  const auto [seq, d, heads, causal, impl] = GetParam();
  AttentionConfig cfg;
  cfg.seq_len = seq;
  cfg.d_model = d;
  cfg.num_heads = heads;
  cfg.causal_mask = causal;
  cfg.precision = Precision::kFp32;
  const auto w = et::core::make_dense_weights(cfg, 40 + seq + d);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 50 + seq);

  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = run_impl(impl, dev, x, w, cfg);
  const MatrixF ref = et::nn::reference_attention(x, w, cfg);
  EXPECT_TRUE(allclose(out, ref, 1e-4, 1e-3))
      << "impl " << static_cast<int>(impl) << " seq " << seq << " d " << d
      << " heads " << heads << " max diff " << max_abs_diff(out, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Combine(::testing::Values(8, 17, 32),      // seq (incl. odd)
                       ::testing::Values(32, 48),         // d_model
                       ::testing::Values(2, 4),           // heads
                       ::testing::Bool(),                 // causal
                       ::testing::Values(AttentionImpl::kModular,
                                         AttentionImpl::kFused,
                                         AttentionImpl::kOtf,
                                         AttentionImpl::kPartialOtf,
                                         AttentionImpl::kFlash)));

// ---------------------------------------------------------------------------
// Pruned-weight sweep: the OTF operator over every format × ratio must
// equal the dense operator over the masked weights.
// ---------------------------------------------------------------------------
class PrunedWeightSweep
    : public ::testing::TestWithParam<std::tuple<PruneMethod, double>> {};

TEST_P(PrunedWeightSweep, OtfMatchesMaskedDense) {
  const auto [method, ratio] = GetParam();
  AttentionConfig cfg;
  cfg.seq_len = 16;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = Precision::kFp32;
  auto dense_w = et::core::make_dense_weights(cfg, 60);
  MatrixF x(16, 32);
  et::tensor::fill_normal(x, 61);

  // Prune W_Q with the given method; leave the rest dense.
  const MatrixF wq = std::get<et::sparse::DenseWeight>(dense_w.wq).matrix();
  et::sparse::Mask mask(32, 32, 1);
  switch (method) {
    case PruneMethod::kRow: mask = et::pruning::row_mask(wq, ratio); break;
    case PruneMethod::kColumn:
      mask = et::pruning::column_mask(wq, ratio);
      break;
    case PruneMethod::kTile: mask = et::pruning::tile_mask(wq, ratio); break;
    case PruneMethod::kIrregular:
      mask = et::pruning::magnitude_mask(wq, ratio);
      break;
    case PruneMethod::kDense: break;
  }

  AttentionWeights pruned = dense_w;
  pruned.wq = et::sparse::make_weight(method, wq, mask);
  AttentionWeights masked = dense_w;
  MatrixF wq_masked = wq;
  et::sparse::apply_mask(wq_masked, mask);
  masked.wq = et::sparse::DenseWeight(wq_masked);

  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF a = et::core::otf_attention(ctx, x, pruned, cfg);
  const MatrixF b = et::core::otf_attention(ctx, x, masked, cfg);
  EXPECT_TRUE(allclose(a, b, 1e-4, 1e-4))
      << to_string(method) << " @ " << ratio;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PrunedWeightSweep,
    ::testing::Combine(::testing::Values(PruneMethod::kRow,
                                         PruneMethod::kColumn,
                                         PruneMethod::kTile,
                                         PruneMethod::kIrregular),
                       ::testing::Values(0.25, 0.5, 0.75)));

// ---------------------------------------------------------------------------
// Precision sweep: reduced-precision outputs stay near the FP32 result.
// ---------------------------------------------------------------------------
class PrecisionSweep : public ::testing::TestWithParam<Precision> {};

TEST_P(PrecisionSweep, CloseToFp32) {
  const Precision p = GetParam();
  AttentionConfig cfg;
  cfg.seq_len = 16;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.causal_mask = true;
  const auto w = et::core::make_dense_weights(cfg, 70);
  MatrixF x(16, 32);
  et::tensor::fill_normal(x, 71);

  Device dev;
  et::core::ExecContext ctx(dev);
  cfg.precision = Precision::kFp32;
  const MatrixF exact = et::core::otf_attention(ctx, x, w, cfg);
  cfg.precision = p;
  cfg.scale_before_multiply = true;
  const MatrixF approx = et::core::otf_attention(ctx, x, w, cfg);
  // Attention outputs are O(0.1-1); binary16 keeps ~3 decimal digits.
  EXPECT_TRUE(allclose(approx, exact, 0.05, 0.05))
      << to_string(p) << " max diff " << max_abs_diff(approx, exact);
}

INSTANTIATE_TEST_SUITE_P(Precisions, PrecisionSweep,
                         ::testing::Values(Precision::kMixed,
                                           Precision::kPureFp16,
                                           Precision::kBf16Mixed));

// ---------------------------------------------------------------------------
// Adaptive consistency: whatever the dispatcher picks computes the same
// function as the reference, at every length.
// ---------------------------------------------------------------------------
class AdaptiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveSweep, AdaptiveMatchesReference) {
  const std::size_t seq = static_cast<std::size_t>(GetParam());
  AttentionConfig cfg;
  cfg.seq_len = seq;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = Precision::kFp32;
  const auto w = et::core::make_dense_weights(cfg, 80);
  MatrixF x(seq, 32);
  et::tensor::fill_normal(x, 81);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::core::adaptive_attention(ctx, x, w, cfg);
  const MatrixF ref = et::nn::reference_attention(x, w, cfg);
  EXPECT_TRUE(allclose(out, ref, 1e-4, 1e-3));
}

INSTANTIATE_TEST_SUITE_P(Lengths, AdaptiveSweep,
                         ::testing::Values(16, 64, 200, 240, 288));

}  // namespace
