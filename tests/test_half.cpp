// binary16 / bfloat16 emulation: rounding, special values, overflow
// accounting (the §3.3 mechanism).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "numeric/bfloat16.hpp"
#include "numeric/half.hpp"
#include "numeric/precision.hpp"

namespace {

using et::numeric::bfloat16;
using et::numeric::half;
using et::numeric::overflow_count;
using et::numeric::Precision;
using et::numeric::reset_overflow_count;

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(static_cast<float>(half(static_cast<float>(i))),
              static_cast<float>(i))
        << "integer " << i;
  }
}

TEST(Half, PowersOfTwoRoundTrip) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(static_cast<float>(half(v)), v) << "2^" << e;
  }
}

TEST(Half, MaxFiniteIs65504) {
  EXPECT_EQ(static_cast<float>(half(65504.0f)), 65504.0f);
  EXPECT_TRUE(half(65504.0f).is_finite());
}

TEST(Half, OverflowProducesInfAndCounts) {
  reset_overflow_count();
  const half h(70000.0f);
  EXPECT_TRUE(h.is_inf());
  EXPECT_FALSE(h.signbit());
  EXPECT_EQ(overflow_count(), 1u);

  const half hneg(-1.0e6f);
  EXPECT_TRUE(hneg.is_inf());
  EXPECT_TRUE(hneg.signbit());
  EXPECT_EQ(overflow_count(), 2u);
  reset_overflow_count();
  EXPECT_EQ(overflow_count(), 0u);
}

TEST(Half, RoundingBoundaryAt65520) {
  // 65519.99 rounds down to 65504; 65520 is the tie that rounds to inf.
  reset_overflow_count();
  EXPECT_TRUE(half(65519.0f).is_finite());
  EXPECT_EQ(overflow_count(), 0u);
  EXPECT_TRUE(half(65520.0f).is_inf());
  EXPECT_EQ(overflow_count(), 1u);
  reset_overflow_count();
}

TEST(Half, InfAndNanPropagateWithoutCounting) {
  reset_overflow_count();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(half(inf).is_inf());
  EXPECT_TRUE(half(-inf).is_inf());
  EXPECT_TRUE(half(std::nanf("")).is_nan());
  EXPECT_EQ(overflow_count(), 0u) << "inf/NaN inputs are not overflows";
}

TEST(Half, SubnormalsRepresentable) {
  // Smallest positive subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(static_cast<float>(half(tiny)), tiny);
  // Below half of it rounds to zero.
  EXPECT_EQ(static_cast<float>(half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Half, SignedZero) {
  EXPECT_EQ(half(0.0f).bits(), 0u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
}

TEST(Half, RoundToNearestEvenTies) {
  // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: ties to even (1).
  const float tie = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(static_cast<float>(half(tie)), 1.0f);
  // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even
  // (1+2^-9, whose mantissa LSB is 0).
  const float tie2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(static_cast<float>(half(tie2)), 1.0f + std::ldexp(1.0f, -9));
}

#ifdef __FLT16_MAX__
TEST(Half, MatchesHardwareFloat16OnRandomValues) {
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<float> dist(-70000.0f, 70000.0f);
  for (int i = 0; i < 20000; ++i) {
    const float v = dist(rng);
    const float ours = static_cast<float>(half(v));
    const float theirs = static_cast<float>(static_cast<_Float16>(v));
    EXPECT_EQ(ours, theirs) << "value " << v;
  }
  reset_overflow_count();
}
#endif

TEST(Half, ArithmeticRoundsPerOperation) {
  // 2048 + 1 is not representable (spacing is 2 at that magnitude).
  const half a(2048.0f);
  const half b(1.0f);
  EXPECT_EQ(static_cast<float>(a + b), 2048.0f);
  const half c(2.0f);
  EXPECT_EQ(static_cast<float>(a + c), 2050.0f);
}

TEST(Bfloat16, WiderRangeNoOverflowWhereHalfOverflows) {
  reset_overflow_count();
  const bfloat16 big(1.0e20f);
  EXPECT_TRUE(big.is_finite());
  EXPECT_EQ(overflow_count(), 0u);
  EXPECT_NEAR(static_cast<float>(big), 1.0e20f, 1.0e18f);
}

TEST(Bfloat16, LowerPrecisionThanHalfNearOne) {
  // bf16 has 8 candidate mantissa bits vs half's 10.
  const float v = 1.0f + std::ldexp(1.0f, -9);  // representable in half
  EXPECT_EQ(static_cast<float>(half(v)), v);
  EXPECT_NE(static_cast<float>(bfloat16(v)), v);
}

TEST(PrecisionPolicy, AccumulatorBytes) {
  EXPECT_EQ(et::numeric::accumulator_bytes(Precision::kPureFp16), 2u);
  EXPECT_EQ(et::numeric::accumulator_bytes(Precision::kMixed), 4u);
  EXPECT_EQ(et::numeric::accumulator_bytes(Precision::kFp32), 4u);
  EXPECT_EQ(et::numeric::storage_bytes(Precision::kMixed), 2u);
}

TEST(PrecisionPolicy, PureFp16FmaOverflows) {
  reset_overflow_count();
  float acc = 0.0f;
  for (int i = 0; i < 16; ++i) {
    acc = et::numeric::fma_step(Precision::kPureFp16, 250.0f, 250.0f, acc);
  }
  EXPECT_TRUE(std::isinf(acc)) << "16 × 62500 overflows binary16";
  EXPECT_GT(overflow_count(), 0u);
  reset_overflow_count();
}

TEST(PrecisionPolicy, MixedFmaDoesNotOverflow) {
  reset_overflow_count();
  float acc = 0.0f;
  for (int i = 0; i < 16; ++i) {
    acc = et::numeric::fma_step(Precision::kMixed, 250.0f, 250.0f, acc);
  }
  EXPECT_FALSE(std::isinf(acc));
  EXPECT_NEAR(acc, 16.0f * 62500.0f, 200.0f);
  EXPECT_EQ(overflow_count(), 0u);
  reset_overflow_count();
}

class HalfSweep : public ::testing::TestWithParam<float> {};

TEST_P(HalfSweep, RoundTripWithinHalfUlp) {
  const float v = GetParam();
  const float r = static_cast<float>(half(v));
  // |v - round(v)| must be at most half the spacing at v's magnitude.
  const float spacing = std::ldexp(
      1.0f, std::max(-24, std::ilogb(std::abs(v) > 0 ? v : 1.0f) - 10));
  EXPECT_LE(std::abs(v - r), spacing * 0.5f + 1e-12f) << v;
}

INSTANTIATE_TEST_SUITE_P(Values, HalfSweep,
                         ::testing::Values(0.1f, -0.1f, 3.14159f, 1e-3f,
                                           -2.71828f, 123.456f, -999.9f,
                                           6e-5f, 1e-7f, 40000.0f));

}  // namespace
