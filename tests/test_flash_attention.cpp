// The streaming flash operator: tiled online-softmax attention that never
// materializes Q·Kᵀ in simulated global memory. Pins the contracts the
// operator was added for — bounded error against the modular baseline at
// every tile boundary, bit-identical output at any thread count, O(N)
// score-side traffic against partial-OTF's O(N²), a sequence-independent
// shared-memory footprint, and graceful degradation through the adaptive
// chain when the Br×Bc tile does not fit or the kernel faults.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/adaptive.hpp"
#include "core/attention.hpp"
#include "nn/reference.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::core::AttentionConfig;
using et::core::AttentionImpl;
using et::core::AttentionWeights;
using et::gpusim::Device;
using et::numeric::Precision;
using et::tensor::MatrixF;

AttentionConfig base_cfg(std::size_t seq, bool causal = true) {
  AttentionConfig cfg;
  cfg.seq_len = seq;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = Precision::kFp32;
  cfg.causal_mask = causal;
  return cfg;
}

MatrixF random_input(const AttentionConfig& cfg, std::uint64_t seed = 91) {
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, seed);
  return x;
}

// --------------------------------------------------------- numerics ----

TEST(FlashAttention, BoundedErrorVsModularAcrossTileBoundaries) {
  // Lengths straddling every tiling edge: below/at/above the default
  // Br=Bc=64 tile, multiple K/V blocks, and a ragged final block.
  for (const std::size_t seq : {15u, 16u, 63u, 64u, 65u, 96u, 129u, 200u}) {
    for (const bool causal : {false, true}) {
      const auto cfg = base_cfg(seq, causal);
      const auto w = et::core::make_dense_weights(cfg, 5);
      const MatrixF x = random_input(cfg, 90 + seq);
      Device dev;
      et::core::ExecContext ctx(dev);
      const MatrixF flash = et::core::flash_attention(ctx, x, w, cfg);
      const MatrixF modular = et::core::modular_attention(ctx, x, w, cfg);
      EXPECT_TRUE(allclose(flash, modular, 1e-4, 1e-3))
          << "seq " << seq << " causal " << causal << " max diff "
          << max_abs_diff(flash, modular);
    }
  }
}

TEST(FlashAttention, TinyTilesStressManyBlockBoundaries) {
  // Force 8×8 tiles so a seq-65 input crosses nine row tiles and nine
  // K/V blocks — the online-softmax rescale runs dozens of times per row.
  auto cfg = base_cfg(65);
  cfg.flash_block_rows = 8;
  cfg.flash_block_cols = 8;
  const auto w = et::core::make_dense_weights(cfg, 6);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF flash = et::core::flash_attention(ctx, x, w, cfg);
  const MatrixF modular = et::core::modular_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(flash, modular, 1e-4, 1e-3))
      << "max diff " << max_abs_diff(flash, modular);
}

TEST(FlashAttention, ZeroTileDimensionsAreRejected) {
  auto cfg = base_cfg(32);
  cfg.flash_block_rows = 0;
  const auto w = et::core::make_dense_weights(cfg, 6);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  EXPECT_THROW((void)et::core::flash_attention(ctx, x, w, cfg),
               std::invalid_argument);
}

TEST(FlashAttention, BitIdenticalAcrossThreadCounts) {
  // Each query row lives in exactly one Br tile and its K/V loop runs
  // serially inside that tile, so the math cannot depend on how tiles are
  // distributed over workers.
  auto cfg = base_cfg(129, /*causal=*/true);
  cfg.flash_block_rows = 16;  // 9 tiles: enough to spread over 8 threads
  const auto w = et::core::make_dense_weights(cfg, 7);
  const MatrixF x = random_input(cfg);

  Device dev1;
  et::core::ExecContext ctx1(dev1, 1);
  const MatrixF want = et::core::flash_attention(ctx1, x, w, cfg);
  for (const std::size_t threads : {2u, 8u}) {
    Device dev;
    et::core::ExecContext ctx(dev, threads);
    const MatrixF got = et::core::flash_attention(ctx, x, w, cfg);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.flat()[i], want.flat()[i])
          << "threads " << threads << " index " << i;
    }
  }
}

TEST(FlashAttention, ValidLenMatchesOtf) {
  // Padding mask: rows beyond valid_len are skipped as whole K/V blocks
  // where possible; the result must equal the Eq. 6 kernel's.
  auto cfg = base_cfg(96, /*causal=*/false);
  cfg.valid_len = 41;
  cfg.flash_block_cols = 16;
  const auto w = et::core::make_dense_weights(cfg, 8);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF flash = et::core::flash_attention(ctx, x, w, cfg);
  const MatrixF otf = et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(flash, otf, 1e-4, 1e-3))
      << "max diff " << max_abs_diff(flash, otf);
}

TEST(FlashAttention, ReducedPrecisionStaysNearFp32) {
  for (const Precision p :
       {Precision::kMixed, Precision::kPureFp16, Precision::kBf16Mixed}) {
    auto cfg = base_cfg(80);
    const auto w = et::core::make_dense_weights(cfg, 9);
    const MatrixF x = random_input(cfg);
    Device dev;
    et::core::ExecContext ctx(dev);
    cfg.precision = Precision::kFp32;
    const MatrixF exact = et::core::flash_attention(ctx, x, w, cfg);
    cfg.precision = p;
    cfg.scale_before_multiply = true;
    const MatrixF approx = et::core::flash_attention(ctx, x, w, cfg);
    EXPECT_TRUE(allclose(approx, exact, 0.05, 0.05))
        << to_string(p) << " max diff " << max_abs_diff(approx, exact);
  }
}

TEST(FlashAttention, PrecomputedVoIsAnIdentity) {
  // Eq. 5 holds for the streaming operator too: folding W_V·W_O in must
  // not change the function (§3.1), only remove the output linear.
  const auto cfg = base_cfg(70);
  auto w = et::core::make_dense_weights(cfg, 10);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF without = et::core::flash_attention(ctx, x, w, cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  ASSERT_TRUE(w.has_precomputed());
  const MatrixF with = et::core::flash_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(with, without, 1e-3, 1e-3))
      << "max diff " << max_abs_diff(with, without);
}

TEST(FlashAttention, CondensedVMatchesScatteredV) {
  auto cfg = base_cfg(48);
  auto w = et::core::make_dense_weights(cfg, 11);
  const MatrixF x = random_input(cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  // Balanced per-head mask: prune the last 8 rows of each 16-row head.
  et::sparse::Mask mask(32, 32, 1);
  for (std::size_t h = 0; h < 2; ++h) {
    for (std::size_t r = 8; r < 16; ++r) {
      for (std::size_t c = 0; c < 32; ++c) mask(h * 16 + r, c) = 0;
    }
  }
  AttentionWeights pruned = w;
  pruned.wv = et::sparse::RowPrunedWeight::from_masked(wv, mask);
  ASSERT_TRUE(pruned.v_condensable(cfg.num_heads));
  AttentionWeights padded = w;
  MatrixF wv_masked = wv;
  et::sparse::apply_mask(wv_masked, mask);
  padded.wv = et::sparse::DenseWeight(wv_masked);

  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF a = et::core::flash_attention(ctx, x, pruned, cfg);
  const MatrixF b = et::core::flash_attention(ctx, x, padded, cfg);
  EXPECT_TRUE(allclose(a, b, 1e-4, 1e-3)) << max_abs_diff(a, b);
}

TEST(FlashCrossAttention, MatchesReference) {
  auto cfg = base_cfg(24, /*causal=*/false);
  const auto w = et::core::make_dense_weights(cfg, 12);
  const MatrixF x = random_input(cfg);
  MatrixF memory(70, cfg.d_model);  // kv length well past one Bc block
  et::tensor::fill_normal(memory, 13);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF flash =
      et::core::flash_cross_attention(ctx, x, memory, w, cfg);
  const MatrixF ref =
      et::nn::reference_cross_attention(x, memory, w, cfg);
  EXPECT_TRUE(allclose(flash, ref, 1e-4, 1e-3))
      << "max diff " << max_abs_diff(flash, ref);
}

// ------------------------------------------------ resource contracts ----

TEST(FlashAttention, SharedBytesAreSequenceIndependent) {
  AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = Precision::kMixed;
  cfg.seq_len = 64;
  const auto at64 = et::core::flash_shared_bytes(cfg);
  cfg.seq_len = 4096;
  const auto at4096 = et::core::flash_shared_bytes(cfg);
  EXPECT_EQ(at64, at4096)
      << "the Br×Bc working set must not grow with the sequence";
  EXPECT_EQ(et::core::flash_shared_bytes(cfg, 16),
            et::core::flash_shared_bytes(cfg, 8192))
      << "nor with an explicit cross-attention kv length";
  // The Eq. 6 footprint does grow — that asymmetry is why flash survives
  // lengths that force OTF off the scratchpad.
  cfg.seq_len = 64;
  const auto otf64 = et::core::otf_shared_bytes(cfg);
  cfg.seq_len = 4096;
  EXPECT_GT(et::core::otf_shared_bytes(cfg), otf64);
}

TEST(FlashAttention, ScoreTrafficIsLinearWherePartialOtfIsQuadratic) {
  AttentionConfig cfg;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.precision = Precision::kMixed;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 14);

  const auto score_bytes = [&](AttentionImpl impl, std::size_t seq) {
    cfg.seq_len = seq;
    MatrixF x(seq, cfg.d_model);
    Device dev;
    dev.set_traffic_only(true);
    et::core::ExecContext ctx(dev);
    et::core::AdaptivePolicy policy;
    policy.forced = impl;
    (void)et::core::adaptive_attention(ctx, x, w, cfg, policy);
    return dev.total_score_bytes();
  };

  const auto flash256 = score_bytes(AttentionImpl::kFlash, 256);
  const auto flash512 = score_bytes(AttentionImpl::kFlash, 512);
  const auto partial256 = score_bytes(AttentionImpl::kPartialOtf, 256);
  const auto partial512 = score_bytes(AttentionImpl::kPartialOtf, 512);
  const auto otf512 = score_bytes(AttentionImpl::kOtf, 512);

  EXPECT_EQ(flash512, 2 * flash256) << "flash spills only per-row stats";
  EXPECT_EQ(partial512, 4 * partial256) << "partial materializes N×N";
  EXPECT_LT(flash512, partial512);
  EXPECT_EQ(otf512, 0u) << "full OTF never touches DRAM with scores";
  EXPECT_GT(flash512, 0u) << "flash is honest about its (m, l) spill";
}

// -------------------------------------------------- degradation chain ----

TEST(FlashAttention, SharedOverflowDegradesToOtfBitIdentical) {
  // 20 KB of shared memory: the 28 KB Br×Bc tile overflows at launch, the
  // 5 KB Eq. 6 row does not. Forcing flash must degrade — observably —
  // and return exactly what a clean OTF run returns.
  et::gpusim::DeviceSpec spec;
  spec.shared_mem_per_cta_bytes = 20 * 1024;
  const auto cfg = base_cfg(32);
  const auto w = et::core::make_dense_weights(cfg, 15);
  const MatrixF x = random_input(cfg);

  Device clean(spec);
  et::core::ExecContext clean_ctx(clean);
  const MatrixF want = et::core::otf_attention(clean_ctx, x, w, cfg);

  Device dev(spec);
  et::core::ExecContext ctx(dev);
  ASSERT_FALSE(dev.fits_shared(et::core::flash_shared_bytes(cfg)));
  et::core::AdaptivePolicy policy;
  policy.forced = AttentionImpl::kFlash;
  const MatrixF got = et::core::adaptive_attention(ctx, x, w, cfg, policy);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.flat()[i], want.flat()[i]) << "bit-identical at " << i;
  }
  ASSERT_EQ(dev.fallback_log().size(), 1u);
  EXPECT_EQ(dev.fallback_log()[0].from_impl, "flash");
  EXPECT_EQ(dev.fallback_log()[0].to_impl, "otf");
  EXPECT_EQ(dev.fallback_log()[0].cause, "shared_mem_overflow");
}

TEST(FlashAttention, KernelFaultDegradesToOtfBitIdentical) {
  const auto cfg = base_cfg(32);
  const auto w = et::core::make_dense_weights(cfg, 16);
  const MatrixF x = random_input(cfg);

  Device clean;
  et::core::ExecContext clean_ctx(clean);
  const MatrixF want = et::core::otf_attention(clean_ctx, x, w, cfg);

  Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_kernel("flash_attention");
  const MatrixF got = et::core::adaptive_attention(ctx, x, w, cfg);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.flat()[i], want.flat()[i]) << "bit-identical at " << i;
  }
  ASSERT_EQ(dev.fallback_log().size(), 1u);
  EXPECT_EQ(dev.fallback_log()[0].from_impl, "flash");
  EXPECT_EQ(dev.fallback_log()[0].to_impl, "otf");
}

// ------------------------------------------------------- selection API ----

TEST(FlashAttention, FromStringRoundTripsEveryOperator) {
  for (const AttentionImpl impl :
       {AttentionImpl::kModular, AttentionImpl::kFused, AttentionImpl::kOtf,
        AttentionImpl::kPartialOtf, AttentionImpl::kFlash}) {
    const auto parsed = et::core::from_string(to_string(impl));
    ASSERT_TRUE(parsed.has_value()) << to_string(impl);
    EXPECT_EQ(*parsed, impl);
  }
  EXPECT_FALSE(et::core::from_string("banana").has_value());
  EXPECT_FALSE(et::core::from_string("").has_value());
  EXPECT_FALSE(et::core::from_string("Flash").has_value())
      << "operator names are exact, not case-folded";
}

}  // namespace
