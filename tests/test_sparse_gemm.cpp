// Sparse linear kernels: correctness against the oracle and the latency
// ordering claims of §4/§5 (tile fast, irregular slow).
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "kernels/linear.hpp"
#include "kernels/sparse_gemm.hpp"
#include "pruning/criteria.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"
#include "tensor/reference_gemm.hpp"

namespace {

using et::gpusim::Device;
using et::sparse::PruneMethod;
using et::tensor::MatrixF;

struct Fixture {
  MatrixF x{32, 64};
  MatrixF w{48, 64};
  Fixture() {
    et::tensor::fill_normal(x, 21);
    et::tensor::fill_normal(w, 22);
  }
  [[nodiscard]] MatrixF masked(const et::sparse::Mask& m) const {
    MatrixF out = w;
    et::sparse::apply_mask(out, m);
    return out;
  }
};

TEST(BcsrGemm, MatchesReference) {
  Fixture f;
  const auto mask = et::pruning::tile_mask(f.w, 0.5);
  const auto tp = et::sparse::TilePrunedWeight::from_masked(f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF y = et::kernels::bcsr_gemm_nt(ctx, f.x, tp);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(y, ref, 1e-3, 1e-3))
      << "max diff " << max_abs_diff(y, ref);
}

TEST(BcsrGemm, FullyDenseMaskEqualsDenseGemm) {
  Fixture f;
  const et::sparse::Mask all(48, 64, 1);
  const auto tp = et::sparse::TilePrunedWeight::from_masked(f.w, all);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF sparse_y = et::kernels::bcsr_gemm_nt(ctx, f.x, tp);
  const MatrixF dense_y = et::kernels::gemm_nt(ctx, f.x, f.w);
  EXPECT_TRUE(allclose(sparse_y, dense_y, 1e-3, 1e-3));
}

TEST(BcsrGemm, TrafficScalesWithDensity) {
  Fixture f;
  Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  const auto run = [&](double ratio) {
    const auto tp = et::sparse::TilePrunedWeight::from_masked(
        f.w, et::pruning::tile_mask(f.w, ratio));
    dev.reset();
    (void)et::kernels::bcsr_gemm_nt(ctx, f.x, tp,
                                    et::numeric::Precision::kMixed);
    return dev.history()[0];
  };
  const auto dense = run(0.0);
  const auto sparse = run(0.9);
  EXPECT_LT(sparse.tensor_ops, dense.tensor_ops / 5);
  EXPECT_LT(sparse.global_load_bytes, dense.global_load_bytes);
}

TEST(IrregularGemm, MatchesReference) {
  Fixture f;
  const auto mask = et::pruning::magnitude_mask(f.w, 0.6);
  const auto iw = et::sparse::IrregularWeight::from_masked(f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF y = et::kernels::irregular_gemm_nt(ctx, f.x, iw);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(y, ref, 1e-3, 1e-3));
}

TEST(IrregularGemm, MuchSlowerThanTileAtSameSparsity) {
  // The Table 1 strawman: irregular pruning saves FLOPs but cannot use
  // tensor cores and gathers randomly, so it is far slower than tile
  // pruning at the same ratio. Use a realistic linear-layer size.
  MatrixF x(128, 768), w(768, 768);
  et::tensor::fill_normal(x, 31);
  et::tensor::fill_normal(w, 32);
  Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);

  const auto tile_mask = et::pruning::tile_mask(w, 0.7);
  const auto tp = et::sparse::TilePrunedWeight::from_masked(w, tile_mask);
  (void)et::kernels::bcsr_gemm_nt(ctx, x, tp,
                                  et::numeric::Precision::kMixed);
  const double tile_us = dev.total_time_us();
  dev.reset();

  const auto irr_mask = et::pruning::magnitude_mask(w, 0.7);
  const auto iw = et::sparse::IrregularWeight::from_masked(w, irr_mask);
  (void)et::kernels::irregular_gemm_nt(ctx, x, iw,
                                       et::numeric::Precision::kMixed);
  const double irr_us = dev.total_time_us();

  EXPECT_GT(irr_us, 5.0 * tile_us)
      << "tile " << tile_us << "us vs irregular " << irr_us << "us";
}

TEST(Linear, DenseDispatch) {
  Fixture f;
  Device dev;
  et::core::ExecContext ctx(dev);
  const auto res = et::kernels::linear(
      ctx, f.x, et::sparse::DenseWeight(f.w));
  EXPECT_FALSE(res.condensed);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.w);
  EXPECT_TRUE(allclose(res.y, ref, 1e-3, 1e-3));
}

TEST(Linear, RowPrunedScattered) {
  Fixture f;
  const auto mask = et::pruning::row_mask(f.w, 0.5);
  const auto w = et::sparse::make_weight(PruneMethod::kRow, f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  const auto res = et::kernels::linear(ctx, f.x, w);
  EXPECT_FALSE(res.condensed);
  EXPECT_EQ(res.y.cols(), 48u);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(res.y, ref, 1e-3, 1e-3));
  // gemm + scatter = 2 kernels
  EXPECT_EQ(dev.launch_count(), 2u);
}

TEST(Linear, RowPrunedCondensed) {
  Fixture f;
  const auto mask = et::pruning::row_mask(f.w, 0.5);
  const auto w = et::sparse::make_weight(PruneMethod::kRow, f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::LinearOptions opt;
  opt.scatter_row_pruned_output = false;
  const auto res = et::kernels::linear(ctx, f.x, w, opt);
  EXPECT_TRUE(res.condensed);
  EXPECT_EQ(res.y.cols(), 24u);
  EXPECT_EQ(res.nonzero_cols.size(), 24u);
  EXPECT_EQ(dev.launch_count(), 1u) << "no scatter kernel";
  // full_width reconstruction matches the scattered path.
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(res.full_width(48), ref, 1e-3, 1e-3));
}

TEST(Linear, ColumnPrunedNeedsGather) {
  Fixture f;
  const auto mask = et::pruning::column_mask(f.w, 0.5);
  const auto w = et::sparse::make_weight(PruneMethod::kColumn, f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  const auto res = et::kernels::linear(ctx, f.x, w);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(res.y, ref, 1e-3, 1e-3));
  EXPECT_EQ(dev.launch_count(), 2u) << "gather + gemm";
  EXPECT_NE(dev.history()[0].name.find("gather"), std::string::npos);
}

TEST(Linear, TilePrunedSingleKernel) {
  Fixture f;
  const auto mask = et::pruning::tile_mask(f.w, 0.5);
  const auto w = et::sparse::make_weight(PruneMethod::kTile, f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  const auto res = et::kernels::linear(ctx, f.x, w);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(res.y, ref, 1e-3, 1e-3));
  EXPECT_EQ(dev.launch_count(), 1u)
      << "tile pruning has no pre/post-processing (§4.2)";
}

class PrunedLinearSweep
    : public ::testing::TestWithParam<std::tuple<PruneMethod, double>> {};

TEST_P(PrunedLinearSweep, MatchesMaskedDenseReference) {
  const auto [method, ratio] = GetParam();
  Fixture f;
  et::sparse::Mask mask(48, 64, 1);
  switch (method) {
    case PruneMethod::kRow: mask = et::pruning::row_mask(f.w, ratio); break;
    case PruneMethod::kColumn:
      mask = et::pruning::column_mask(f.w, ratio);
      break;
    case PruneMethod::kTile: mask = et::pruning::tile_mask(f.w, ratio); break;
    case PruneMethod::kIrregular:
      mask = et::pruning::magnitude_mask(f.w, ratio);
      break;
    case PruneMethod::kDense: break;
  }
  const auto w = et::sparse::make_weight(method, f.w, mask);
  Device dev;
  et::core::ExecContext ctx(dev);
  const auto res = et::kernels::linear(ctx, f.x, w);
  const MatrixF ref = et::tensor::reference_gemm_nt(f.x, f.masked(mask));
  EXPECT_TRUE(allclose(res.y, ref, 1e-3, 1e-3))
      << to_string(method) << " at ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndRatios, PrunedLinearSweep,
    ::testing::Combine(::testing::Values(PruneMethod::kRow,
                                         PruneMethod::kColumn,
                                         PruneMethod::kTile,
                                         PruneMethod::kIrregular),
                       ::testing::Values(0.25, 0.5, 0.75)));

}  // namespace
