// The CTA execution engine, and the audit it enables: the measured
// on-the-fly attention kernel must agree with the analytic accounting the
// benchmarks rely on.
#include <gtest/gtest.h>

#include "core/otf_measured.hpp"
#include "gpusim/cta_engine.hpp"
#include "nn/reference.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::gpusim::CtaContext;
using et::gpusim::CtaLaunchConfig;
using et::gpusim::Device;
using et::tensor::MatrixF;

TEST(CtaEngine, CountsLoadsStoresPerElement) {
  Device dev;
  MatrixF src(4, 4, 2.0f), dst(4, 4);
  CtaLaunchConfig cfg;
  cfg.name = "copy";
  cfg.num_ctas = 4;  // one CTA per row
  cfg.element_bytes = 2;
  const auto stats = run_cta_kernel(dev, cfg, [&](CtaContext& ctx) {
    for (std::size_t c = 0; c < 4; ++c) {
      ctx.store(dst, ctx.cta_id(), c, ctx.load(src, ctx.cta_id(), c));
    }
  });
  EXPECT_EQ(stats.global_load_bytes, 16u * 2u);
  EXPECT_EQ(stats.global_store_bytes, 16u * 2u);
  EXPECT_EQ(dst(3, 3), 2.0f);
  EXPECT_GT(stats.time_us, 0.0);
}

TEST(CtaEngine, SharedHighWaterAcrossCtas) {
  Device dev;
  CtaLaunchConfig cfg;
  cfg.name = "alloc";
  cfg.num_ctas = 3;
  const auto stats = run_cta_kernel(dev, cfg, [](CtaContext& ctx) {
    // CTA i allocates (i+1) KB of floats.
    (void)ctx.shared().alloc_floats((ctx.cta_id() + 1) * 256);
  });
  EXPECT_EQ(stats.shared_bytes_per_cta, 3u * 1024u);
}

TEST(CtaEngine, SharedOverflowThrows) {
  Device dev;
  CtaLaunchConfig cfg;
  cfg.name = "hog";
  cfg.num_ctas = 1;
  EXPECT_THROW(run_cta_kernel(dev, cfg,
                              [&](CtaContext& ctx) {
                                (void)ctx.shared().alloc_floats(
                                    dev.spec().shared_mem_per_cta_bytes);
                              }),
               et::gpusim::SharedMemOverflow);
}

TEST(CtaEngine, AtomicAddCountsReadModifyWrite) {
  Device dev;
  MatrixF acc(1, 1, 0.0f);
  CtaLaunchConfig cfg;
  cfg.name = "reduce";
  cfg.num_ctas = 10;
  cfg.element_bytes = 4;
  const auto stats = run_cta_kernel(dev, cfg, [&](CtaContext& ctx) {
    ctx.atomic_add(acc, 0, 0, 1.0f);
  });
  EXPECT_EQ(acc(0, 0), 10.0f);
  EXPECT_EQ(stats.global_load_bytes, 40u);
  EXPECT_EQ(stats.global_store_bytes, 40u);
}

// ---------------------------------------------------------------------------
// The audit: measured OTF vs analytic OTF.
// ---------------------------------------------------------------------------

struct OtfPair {
  et::gpusim::KernelStats analytic;
  et::gpusim::KernelStats measured;
  MatrixF analytic_out;
  MatrixF measured_out;
};

OtfPair run_both(std::size_t seq, std::size_t d, std::size_t heads) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = seq;
  cfg.d_model = d;
  cfg.num_heads = heads;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = true;
  const auto w = et::core::make_dense_weights(cfg, 90);
  MatrixF x(seq, d);
  et::tensor::fill_normal(x, 91);

  OtfPair out;
  Device a, m;
  et::core::ExecContext a_ctx(a);
  out.analytic_out = et::core::otf_attention(a_ctx, x, w, cfg);
  out.measured_out = et::core::otf_attention_measured(m, x, w, cfg);
  for (const auto& k : a.history()) {
    if (k.name == "otf_attention") out.analytic = k;
  }
  for (const auto& k : m.history()) {
    if (k.name == "otf_attention_measured") out.measured = k;
  }
  return out;
}

TEST(OtfAudit, OutputsIdentical) {
  const auto pair = run_both(32, 64, 4);
  EXPECT_TRUE(allclose(pair.measured_out, pair.analytic_out, 1e-4, 1e-4))
      << max_abs_diff(pair.measured_out, pair.analytic_out);
}

TEST(OtfAudit, TrafficAccountingAgrees) {
  const auto pair = run_both(64, 128, 4);
  ASSERT_GT(pair.analytic.global_load_bytes, 0u);
  ASSERT_GT(pair.measured.global_load_bytes, 0u);
  // The analytic model claims: Q once + K,V once per 16-row tile; the
  // measured kernel must land within 25% of that.
  const double load_ratio =
      static_cast<double>(pair.measured.global_load_bytes) /
      static_cast<double>(pair.analytic.global_load_bytes);
  EXPECT_GT(load_ratio, 0.75) << "measured loads far below the claim";
  EXPECT_LT(load_ratio, 1.25) << "measured loads far above the claim";
  // Stores: only Z leaves the kernel in both accountings. The analytic
  // model books the full d_model width; the measured kernel writes the
  // same bytes.
  EXPECT_EQ(pair.measured.global_store_bytes,
            pair.analytic.global_store_bytes);
}

TEST(OtfAudit, SharedMemoryFootprintNearEq6) {
  const auto pair = run_both(128, 64, 4);
  et::core::AttentionConfig cfg;
  cfg.seq_len = 128;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.precision = et::numeric::Precision::kFp32;
  const std::size_t eq6 = et::core::otf_shared_bytes(cfg);
  // Measured footprint = Eq. 6 terms + staging chunks + output
  // accumulator; it must be the same order and within the device budget.
  EXPECT_GE(pair.measured.shared_bytes_per_cta, eq6 / 2);
  EXPECT_LE(pair.measured.shared_bytes_per_cta, 3 * eq6);
}

TEST(OtfAudit, NoIntermediateEverStoredGlobally) {
  // The defining property: across the whole sweep, measured stores equal
  // exactly seq × d_model elements (the output), never the seq² scores.
  for (const std::size_t seq : {16u, 48u, 96u}) {
    const auto pair = run_both(seq, 32, 2);
    EXPECT_EQ(pair.measured.global_store_bytes, seq * 32u * 4u) << seq;
  }
}

TEST(OtfAudit, TensorOpCountMatchesAnalytic) {
  const auto pair = run_both(64, 64, 4);
  // Both count 2·s²·d for Q·Kᵀ plus 2·s²·d for S·V.
  EXPECT_EQ(pair.measured.tensor_ops + pair.measured.fp_ops,
            pair.measured.total_ops());
  const double ratio = static_cast<double>(pair.measured.tensor_ops) /
                       static_cast<double>(2ull * 2ull * 64 * 64 * 64);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

}  // namespace
