// The core contribution: all attention implementations compute the same
// function; the pre-computed linear transformation is an identity (Eq. 5);
// scale reordering fixes pure-FP16 overflow (§3.3); the adaptive dispatch
// honors the §3.2 crossover and the Eq. 6 capacity limit.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/attention.hpp"
#include "nn/reference.hpp"
#include "pruning/criteria.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::core::AttentionConfig;
using et::core::AttentionWeights;
using et::gpusim::Device;
using et::numeric::Precision;
using et::tensor::MatrixF;

AttentionConfig small_cfg(bool causal = true) {
  AttentionConfig cfg;
  cfg.seq_len = 24;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = Precision::kFp32;
  cfg.causal_mask = causal;
  return cfg;
}

MatrixF random_input(const AttentionConfig& cfg, std::uint64_t seed = 77) {
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, seed);
  return x;
}

TEST(Attention, AllImplementationsMatchReference) {
  const auto cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 5);
  const MatrixF x = random_input(cfg);
  const MatrixF ref = et::nn::reference_attention(x, w, cfg);

  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF modular = et::core::modular_attention(ctx, x, w, cfg);
  const MatrixF fused = et::core::fused_attention(ctx, x, w, cfg);
  const MatrixF ft = et::core::fused_attention(ctx, x, w, cfg, true);
  const MatrixF otf = et::core::otf_attention(ctx, x, w, cfg);
  const MatrixF partial = et::core::partial_otf_attention(ctx, x, w, cfg);
  const MatrixF flash = et::core::flash_attention(ctx, x, w, cfg);

  EXPECT_TRUE(allclose(modular, ref, 1e-4, 1e-3));
  EXPECT_TRUE(allclose(fused, ref, 1e-4, 1e-3));
  EXPECT_TRUE(allclose(ft, ref, 1e-4, 1e-3));
  EXPECT_TRUE(allclose(otf, ref, 1e-4, 1e-3))
      << "max diff " << max_abs_diff(otf, ref);
  EXPECT_TRUE(allclose(partial, ref, 1e-4, 1e-3));
  EXPECT_TRUE(allclose(flash, ref, 1e-4, 1e-3))
      << "max diff " << max_abs_diff(flash, ref);
}

TEST(Attention, BidirectionalMaskMatchesReference) {
  const auto cfg = small_cfg(/*causal=*/false);
  const auto w = et::core::make_dense_weights(cfg, 6);
  const MatrixF x = random_input(cfg);
  const MatrixF ref = et::nn::reference_attention(x, w, cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  EXPECT_TRUE(allclose(et::core::otf_attention(ctx, x, w, cfg), ref, 1e-4,
                       1e-3));
}

TEST(Attention, PrecomputeIsExactIdentity) {
  // Eq. 5: the pre-computed path "yields the same results as the original
  // design" (§3.1).
  const auto cfg = small_cfg();
  auto w = et::core::make_dense_weights(cfg, 7);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF without = et::core::otf_attention(ctx, x, w, cfg);

  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  ASSERT_TRUE(w.has_precomputed());
  const MatrixF with = et::core::otf_attention(ctx, x, w, cfg);

  EXPECT_TRUE(allclose(with, without, 1e-3, 1e-3))
      << "max diff " << max_abs_diff(with, without);
}

TEST(Attention, PrecomputeWithRowPrunedWoMatchesMaskedBaseline) {
  const auto cfg = small_cfg();
  auto w = et::core::make_dense_weights(cfg, 8);
  const MatrixF x = random_input(cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();

  const auto wo_mask = et::pruning::row_mask(wo, 0.5);
  auto wo_row = et::sparse::RowPrunedWeight::from_masked(wo, wo_mask);

  // Baseline: dense path with the masked W_O.
  AttentionWeights masked = w;
  MatrixF wo_masked = wo;
  et::sparse::apply_mask(wo_masked, wo_mask);
  masked.wo = et::sparse::DenseWeight(wo_masked);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF ref = et::core::otf_attention(ctx, x, masked, cfg);

  // Pre-computed path with only the kept rows folded in.
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads, wo_row.kept_rows());
  const MatrixF pre = et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(pre, ref, 1e-3, 1e-3))
      << "max diff " << max_abs_diff(pre, ref);
}

TEST(Attention, PrecomputeSkipsOutputLinearKernel) {
  const auto cfg = small_cfg();
  auto w = et::core::make_dense_weights(cfg, 9);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  (void)et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_GT(dev.time_us_matching("out_linear"), 0.0);
  dev.reset();
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  (void)et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_EQ(dev.time_us_matching("out_linear"), 0.0);
  EXPECT_GT(dev.time_us_matching("vo_linear"), 0.0);
}

TEST(Attention, CondensedVMatchesScatteredV) {
  // Attention-aware row-pruned W_V: E.T. consumes the condensed V; result
  // must equal running with the zero-padded V.
  auto cfg = small_cfg();
  auto w = et::core::make_dense_weights(cfg, 10);
  const MatrixF x = random_input(cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();

  // Balanced per-head mask: prune the last 8 rows of each 16-row head.
  et::sparse::Mask mask(32, 32, 1);
  for (std::size_t h = 0; h < 2; ++h) {
    for (std::size_t r = 8; r < 16; ++r) {
      for (std::size_t c = 0; c < 32; ++c) mask(h * 16 + r, c) = 0;
    }
  }
  AttentionWeights pruned = w;
  pruned.wv = et::sparse::RowPrunedWeight::from_masked(wv, mask);
  ASSERT_TRUE(pruned.v_condensable(cfg.num_heads));

  AttentionWeights padded = w;
  MatrixF wv_masked = wv;
  et::sparse::apply_mask(wv_masked, mask);
  padded.wv = et::sparse::DenseWeight(wv_masked);

  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF a = et::core::otf_attention(ctx, x, pruned, cfg);
  const MatrixF b = et::core::otf_attention(ctx, x, padded, cfg);
  EXPECT_TRUE(allclose(a, b, 1e-4, 1e-3)) << max_abs_diff(a, b);
}

TEST(Attention, UnbalancedRowPrunedVIsNotCondensable) {
  auto cfg = small_cfg();
  auto w = et::core::make_dense_weights(cfg, 11);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  et::sparse::Mask mask(32, 32, 1);
  for (std::size_t c = 0; c < 32; ++c) mask(0, c) = 0;  // head 0 only
  w.wv = et::sparse::RowPrunedWeight::from_masked(wv, mask);
  EXPECT_FALSE(w.v_condensable(cfg.num_heads));
  // Still numerically correct via the scatter path.
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF out = et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_EQ(out.rows(), cfg.seq_len);
}

TEST(Attention, ScaleReorderIsExactInFp32) {
  auto cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 12);
  const MatrixF x = random_input(cfg);
  Device dev;
  et::core::ExecContext ctx(dev);
  cfg.scale_before_multiply = true;
  const MatrixF before = et::core::otf_attention(ctx, x, w, cfg);
  cfg.scale_before_multiply = false;
  const MatrixF after = et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_TRUE(allclose(before, after, 1e-5, 1e-5));
}

TEST(Attention, PureFp16OverflowsWithoutReorderOnly) {
  // Fig. 4 in miniature: activations/weights large enough that unscaled
  // Q·Kᵀ products exceed 65504, while scaled ones do not.
  AttentionConfig cfg;
  cfg.seq_len = 16;
  cfg.d_model = 256;
  cfg.num_heads = 2;
  cfg.precision = Precision::kPureFp16;
  cfg.causal_mask = false;

  AttentionWeights w = et::core::make_dense_weights(cfg, 13);
  // Scale weights up to "trained-model" magnitudes.
  for (auto* any : {&w.wq, &w.wk}) {
    auto& m = std::get<et::sparse::DenseWeight>(*any);
    MatrixF big = m.matrix();
    for (auto& v : big.flat()) v *= 15.0f;
    *any = et::sparse::DenseWeight(std::move(big));
  }
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 14, 0.0f, 4.0f);

  Device dev;
  et::core::ExecContext ctx(dev);
  cfg.scale_before_multiply = false;
  et::numeric::reset_overflow_count();
  (void)et::core::otf_attention(ctx, x, w, cfg);
  const auto overflows_after = et::numeric::overflow_count();
  EXPECT_GT(overflows_after, 0u) << "unreordered pure FP16 must overflow";

  cfg.scale_before_multiply = true;
  et::numeric::reset_overflow_count();
  (void)et::core::otf_attention(ctx, x, w, cfg);
  EXPECT_EQ(et::numeric::overflow_count(), 0u)
      << "the §3.3 reorder keeps everything in range";
}

TEST(Attention, SharedBytesFollowEq6) {
  AttentionConfig cfg;
  cfg.seq_len = 384;
  cfg.d_model = 1024;
  cfg.num_heads = 16;
  cfg.precision = Precision::kMixed;
  // The §3.2 worked example: BERT_LARGE at seq 384 needs ~7 KB...
  // (16·64 + 16·384) accumulator entries = 7168 floats.
  const auto bytes = et::core::otf_shared_bytes(cfg);
  EXPECT_GE(bytes, 7168u * 4u);
  EXPECT_LT(bytes, 96u * 1024u) << "fits the V100S budget as the paper says";
  // Pure FP16 halves the accumulator footprint (§3.3 overhead (i)).
  AttentionConfig fp16 = cfg;
  fp16.precision = Precision::kPureFp16;
  EXPECT_LT(et::core::otf_shared_bytes(fp16), bytes);
}

TEST(Adaptive, ThresholdDispatch) {
  Device dev;
  et::core::ExecContext ctx(dev);
  auto cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 15);
  const MatrixF x = random_input(cfg);
  // Within one 16-row OTF tile the two kernels stream K/V identically, so
  // OTF keeps the short-sequence regime...
  cfg.seq_len = 16;
  EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg),
            et::core::AttentionImpl::kOtf);
  // ...and flash takes everything longer when its Br×Bc tile fits — on
  // both sides of the legacy otf/partial crossover at 224.
  cfg.seq_len = 128;
  EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg),
            et::core::AttentionImpl::kFlash);
  cfg.seq_len = 225;
  EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg),
            et::core::AttentionImpl::kFlash);
}

TEST(Adaptive, ForcedOverrideBypassesSelection) {
  Device dev;
  et::core::ExecContext ctx(dev);
  auto cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 15);
  const MatrixF x = random_input(cfg);
  cfg.seq_len = 128;  // selection would say kFlash
  et::core::AdaptivePolicy policy;
  for (const auto impl :
       {et::core::AttentionImpl::kModular, et::core::AttentionImpl::kFused,
        et::core::AttentionImpl::kOtf, et::core::AttentionImpl::kPartialOtf,
        et::core::AttentionImpl::kFlash}) {
    policy.forced = impl;
    EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg, policy), impl);
  }
}

TEST(Adaptive, FlashInfeasibleRestoresLegacyCrossover) {
  // Shared memory sized so the flash Br×Bc tile (28 KB for this config in
  // FP32) does not fit but the Eq. 6 OTF row does: the dispatcher must
  // fall back to the paper's original otf/partial decision at 224.
  et::gpusim::DeviceSpec spec;
  spec.shared_mem_per_cta_bytes = 20 * 1024;
  Device dev(spec);
  et::core::ExecContext ctx(dev);
  auto cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 15);
  const MatrixF x = random_input(cfg);
  ASSERT_FALSE(dev.fits_shared(et::core::flash_shared_bytes(cfg)));
  cfg.seq_len = 128;
  ASSERT_TRUE(dev.fits_shared(et::core::otf_shared_bytes(cfg)));
  EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg),
            et::core::AttentionImpl::kOtf);
  cfg.seq_len = 225;
  EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg),
            et::core::AttentionImpl::kPartialOtf);
}

TEST(Adaptive, SharedMemoryCapacityForcesPartial) {
  // A device with tiny shared memory cannot host the full OTF kernel.
  et::gpusim::DeviceSpec spec;
  spec.shared_mem_per_cta_bytes = 1024;
  Device dev(spec);
  et::core::ExecContext ctx(dev);
  auto cfg = small_cfg();
  cfg.seq_len = 64;
  const auto w = et::core::make_dense_weights(cfg, 16);
  const MatrixF x = random_input(cfg);
  EXPECT_EQ(et::core::choose_attention_impl(dev, x, w, cfg),
            et::core::AttentionImpl::kPartialOtf);
}

TEST(Adaptive, AutoTuneAgreesWithThresholdAtExtremes) {
  Device dev;
  et::core::ExecContext ctx(dev);
  AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = Precision::kPureFp16;
  const auto w = et::core::make_dense_weights(cfg, 17);
  et::core::AdaptivePolicy policy;
  policy.auto_tune = true;

  // On a full-sized scratchpad the latency replay rediscovers the fixed
  // thresholds: flash wins at every length past one OTF row tile.
  cfg.seq_len = 64;
  MatrixF x64(64, 768);
  EXPECT_EQ(et::core::choose_attention_impl(dev, x64, w, cfg, policy),
            et::core::AttentionImpl::kFlash);

  cfg.seq_len = 512;
  MatrixF x512(512, 768);
  EXPECT_EQ(et::core::choose_attention_impl(dev, x512, w, cfg, policy),
            et::core::AttentionImpl::kFlash);
}

TEST(Adaptive, AutoTuneWithoutFlashRediscoversLegacyCrossover) {
  // 16 KB of shared memory: the 18 KB flash tile is infeasible for
  // BERT_BASE pure-FP16, the Eq. 6 row fits at seq 64 (5 KB) but not at
  // seq 512 (19 KB) — the replay must land exactly where the paper's
  // fixed thresholds did before flash existed.
  et::gpusim::DeviceSpec spec;
  spec.shared_mem_per_cta_bytes = 16 * 1024;
  Device dev(spec);
  et::core::ExecContext ctx(dev);
  AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = Precision::kPureFp16;
  const auto w = et::core::make_dense_weights(cfg, 17);
  ASSERT_FALSE(dev.fits_shared(et::core::flash_shared_bytes(cfg)));
  et::core::AdaptivePolicy policy;
  policy.auto_tune = true;

  cfg.seq_len = 64;
  MatrixF x64(64, 768);
  EXPECT_EQ(et::core::choose_attention_impl(dev, x64, w, cfg, policy),
            et::core::AttentionImpl::kOtf);

  cfg.seq_len = 512;
  MatrixF x512(512, 768);
  EXPECT_EQ(et::core::choose_attention_impl(dev, x512, w, cfg, policy),
            et::core::AttentionImpl::kPartialOtf);
}

TEST(Attention, OtfStoresLessLoadsMore) {
  // Fig. 11's claim in kernel form: the fused OTF kernel stores much less
  // and loads somewhat more than the TensorRT-like sequence.
  AttentionConfig cfg;
  cfg.seq_len = 128;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = Precision::kMixed;
  const auto w = et::core::make_dense_weights(cfg, 18);
  MatrixF x(cfg.seq_len, cfg.d_model);

  Device trt, otf;
  et::core::ExecContext trt_ctx(trt), otf_ctx(otf);
  trt.set_traffic_only(true);
  otf.set_traffic_only(true);
  (void)et::core::fused_attention(trt_ctx, x, w, cfg);
  (void)et::core::otf_attention(otf_ctx, x, w, cfg);

  // Compare the attention region only (steps ②–⑥) — both pipelines share
  // the projection and output GEMMs.
  const auto region = [](const Device& dev) {
    std::uint64_t loads = 0, stores = 0;
    std::size_t launches = 0;
    for (const auto& k : dev.history()) {
      if (k.name.find("linear") != std::string::npos) continue;
      loads += k.global_load_bytes;
      stores += k.global_store_bytes;
      ++launches;
    }
    return std::tuple{loads, stores, launches};
  };
  const auto [trt_ld, trt_st, trt_n] = region(trt);
  const auto [otf_ld, otf_st, otf_n] = region(otf);

  EXPECT_LT(otf_st, trt_st / 2)
      << "OTF never writes Q·Kᵀ or S to global memory";
  EXPECT_GT(otf_ld, trt_ld) << "the price: K and V re-read per row tile";
  EXPECT_LT(otf_n, trt_n) << "one kernel instead of four";
}

}  // namespace
