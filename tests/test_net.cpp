// net::ApiServer loopback integration suite (ctest label `net`): the
// frame codec, tenant auth/rate/quota enforcement, framed
// request/stream/cancel round-trips against a real TCP socket on
// 127.0.0.1, disconnect-propagates-cancel, graceful shutdown, and the
// hot-swap capstone — a mid-storm model swap must drop zero in-flight
// requests, keep pre-swap transcripts bit-identical to the old version,
// decode post-swap submissions on the new version, and return the
// registry gauges to steady state once the old engine drains.
//
// Determinism note: the serving engines under the server keep the repo's
// logical-tick spine, so every transcript assertion is exact (references
// computed in-process on the same pinned weights). Only arrival timing
// crosses the socket, and each test forces the orderings it relies on —
// e.g. waiting for a first streamed token before swapping — instead of
// sleeping and hoping.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/auth.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "serving/registry.hpp"

namespace {

using et::net::ApiServer;
using et::net::ApiServerConfig;
using et::net::Client;
using et::net::Frame;
using et::net::FrameReader;
using et::net::FrameType;
using et::net::NetStatus;
using et::net::Tenant;
using et::net::TenantTable;
using et::serving::ModelPin;
using et::serving::ModelRegistry;
using et::serving::Priority;

// ---------------------------------------------------------------------------
// Frame codec (no sockets).
// ---------------------------------------------------------------------------

Frame round_trip(const Frame& in) {
  const std::string wire = encode_frame(in);
  FrameReader reader;
  // Feed byte by byte: the parser must reassemble whatever chunk
  // boundaries TCP hands it.
  for (char c : wire) reader.feed(&c, 1);
  auto f = reader.next();
  EXPECT_TRUE(f.has_value());
  EXPECT_FALSE(reader.error()) << reader.error_detail();
  return f.value_or(Frame{});
}

TEST(FrameCodec, EveryTypeRoundTripsByteByByte) {
  const Frame hello = round_trip(et::net::make_hello("key-123"));
  EXPECT_EQ(hello.type, FrameType::kHello);
  EXPECT_EQ(hello.text, "key-123");

  const Frame ok = round_trip(et::net::make_hello_ok("bulk", Priority::kBulk));
  EXPECT_EQ(ok.type, FrameType::kHelloOk);
  EXPECT_EQ(ok.text, "bulk");
  EXPECT_EQ(ok.code, static_cast<std::uint8_t>(Priority::kBulk));

  const Frame submit =
      round_trip(et::net::make_submit(42, "model-a", {3, 1, 4, 1, 5}, 16, 7));
  EXPECT_EQ(submit.type, FrameType::kSubmit);
  EXPECT_EQ(submit.stream_id, 42u);
  EXPECT_EQ(submit.text, "model-a");
  EXPECT_EQ(submit.prompt, (std::vector<std::int32_t>{3, 1, 4, 1, 5}));
  EXPECT_EQ(submit.max_new_tokens, 16u);
  EXPECT_EQ(submit.eos_token, 7);

  const Frame token = round_trip(et::net::make_token(42, 3, -9));
  EXPECT_EQ(token.type, FrameType::kToken);
  EXPECT_EQ(token.stream_id, 42u);
  EXPECT_EQ(token.index, 3u);
  EXPECT_EQ(token.token, -9);

  const Frame done =
      round_trip(et::net::make_done(42, et::nn::StopReason::kEos, 11));
  EXPECT_EQ(done.type, FrameType::kDone);
  EXPECT_EQ(static_cast<et::nn::StopReason>(done.code),
            et::nn::StopReason::kEos);
  EXPECT_EQ(done.index, 11u);

  const Frame reject = round_trip(
      et::net::make_reject(42, NetStatus::kRateLimited, "bucket empty"));
  EXPECT_EQ(reject.type, FrameType::kReject);
  EXPECT_EQ(static_cast<NetStatus>(reject.code), NetStatus::kRateLimited);
  EXPECT_EQ(reject.text, "bucket empty");

  EXPECT_EQ(round_trip(et::net::make_cancel(42)).stream_id, 42u);
  EXPECT_EQ(round_trip(et::net::make_error("boom")).text, "boom");
}

TEST(FrameCodec, TwoFramesInOneFeedPopInOrder) {
  const std::string wire =
      encode_frame(et::net::make_token(1, 0, 5)) +
      encode_frame(et::net::make_done(1, et::nn::StopReason::kMaxTokens, 1));
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  const auto a = reader.next();
  const auto b = reader.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->type, FrameType::kToken);
  EXPECT_EQ(b->type, FrameType::kDone);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.error());
}

TEST(FrameCodec, MalformedInputIsAPermanentError) {
  {  // oversized length prefix must not allocate, just error
    FrameReader reader;
    const std::uint32_t huge = et::net::kMaxFramePayload + 1;
    char hdr[4];
    std::memcpy(hdr, &huge, 4);
    reader.feed(hdr, 4);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error());
    EXPECT_NE(reader.error_detail().find("exceeds"), std::string::npos);
  }
  {  // unknown type byte
    FrameReader reader;
    const char frame[] = {5, 0, 0, 0, 99, 0, 0, 0, 0};
    reader.feed(frame, sizeof frame);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error());
    EXPECT_NE(reader.error_detail().find("unknown frame type"),
              std::string::npos);
  }
  {  // truncated payload: a submit frame cut off before its fields
    FrameReader reader;
    const char frame[] = {2, 0, 0, 0, 3, 9};
    reader.feed(frame, sizeof frame);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error());
    EXPECT_NE(reader.error_detail().find("truncated"), std::string::npos);
    // Permanent: even a well-formed follow-up frame stays unread.
    const std::string good = encode_frame(et::net::make_cancel(1));
    reader.feed(good.data(), good.size());
    EXPECT_FALSE(reader.next().has_value());
  }
}

TEST(TokenBucket, DeterministicRefillAndConsume) {
  Tenant t;
  t.bucket_capacity = 2;
  t.refill_per_tick = 1;
  et::net::TenantState s;
  s.bucket = 2;
  EXPECT_TRUE(et::net::try_consume(t, s));
  EXPECT_TRUE(et::net::try_consume(t, s));
  EXPECT_FALSE(et::net::try_consume(t, s));  // empty
  et::net::refill_bucket(t, s);
  EXPECT_TRUE(et::net::try_consume(t, s));
  // Refill clamps at capacity.
  for (int i = 0; i < 5; ++i) et::net::refill_bucket(t, s);
  EXPECT_EQ(s.bucket, 2u);

  Tenant unlimited;  // default: no rate limit
  et::net::TenantState us;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(et::net::try_consume(unlimited, us));
  }
}

// ---------------------------------------------------------------------------
// Loopback fixture.
// ---------------------------------------------------------------------------

struct Stack {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

// Deliberately roomy: several tests race a client round-trip (cancel,
// shutdown, disconnect) against a live generation, and the in-flight
// window is measured in engine ticks, not wall-clock — a tick of this
// tiny model takes microseconds, so a short generation would complete
// before the racing frame even lands. A ~1000-token generation keeps the
// stream alive for hundreds of ticks, orders of magnitude beyond any
// loopback round-trip.
constexpr std::size_t kMaxContext = 2048;

// Even a ~1000-tick window is a few milliseconds of wall-clock on this
// model, so a scheduler stall on a loaded machine can still let a
// generation finish before the racing frame (cancel, duplicate submit,
// disconnect RST, shutdown) is processed. Those races are therefore run
// in bounded retry loops: a lost race is detected and retried, and the
// test fails only if the mechanism under test never fires. At an
// (empirically pessimistic) 25% per-attempt loss rate, 25 attempts put
// a spurious failure beyond 1e-15.
constexpr int kRaceRetries = 25;

Stack make_stack(std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  Stack s;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    s.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  s.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg,
                              /*max_seq=*/kMaxContext, /*causal=*/true);
  s.opt.attn.precision = et::numeric::Precision::kFp32;
  return s;
}

/// Tenant table the suite uses; deterministic on purpose:
///  - "fast":    no rate limit, no quota (the happy-path tenant);
///  - "limited": burst of 3 that NEVER refills (exact reject counts);
///  - "small":   in-flight quota of 2, no rate limit.
TenantTable test_tenants() {
  Tenant fast{"fast", "key-fast", Priority::kInteractive};
  Tenant limited{"limited", "key-limited", Priority::kNormal,
                 /*bucket_capacity=*/3, /*refill_per_tick=*/0};
  Tenant small{"small", "key-small", Priority::kBulk};
  small.max_inflight = 2;
  return TenantTable({fast, limited, small});
}

/// One server over one registry ("m" v1 seed 100, v2 seed 200), started
/// on an ephemeral loopback port. serve_model pins the newest version
/// (v2); the hot-swap test flips to v1 first so its storm swaps 1 -> 2.
struct NetHarness {
  et::gpusim::Device dev{et::gpusim::v100s()};
  std::unique_ptr<et::core::ExecContext> ctx;
  ModelRegistry registry;
  std::unique_ptr<ApiServer> server;

  explicit NetHarness(std::size_t threads = 1, std::size_t max_batch = 4,
                      std::size_t queue_capacity = 64) {
    ctx = std::make_unique<et::core::ExecContext>(dev, threads);
    for (const auto& [version, seed] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{{1, 100},
                                                              {2, 200}}) {
      Stack s = make_stack(seed);
      registry.add("m", version, std::move(s.layers), s.opt, kMaxContext);
    }
    ApiServerConfig cfg;
    cfg.port = 0;
    cfg.max_connections = 8;
    cfg.default_model = "m";
    cfg.engine.max_batch = max_batch;
    cfg.engine.queue_capacity = queue_capacity;
    server = std::make_unique<ApiServer>(cfg, test_tenants(), registry);
    server->serve_model("m");
    server->start(*ctx);
  }

  ~NetHarness() {
    if (server) server->shutdown(/*drain_ticks=*/1000);
  }

  Client connect(const std::string& key) {
    Client c;
    c.connect(server->port());
    const auto ok = c.hello(key);
    EXPECT_TRUE(ok.has_value());
    if (ok.has_value()) {
      EXPECT_EQ(ok->type, FrameType::kHelloOk);
    }
    return c;
  }

  double metric(const std::string& name) const {
    return server->scalar_value(name);
  }

  bool wait_metric(const std::string& name, double want,
                   int timeout_ms = 10000) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (metric(name) == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }
};

/// The in-process reference transcript for (version, first_token): the
/// same pinned weights and decode head driven through a plain serving
/// engine — what the wire transcript must equal bit for bit.
std::vector<std::int32_t> reference(ModelRegistry& reg, std::uint64_t version,
                                    std::int32_t first_token,
                                    std::size_t tokens) {
  const ModelPin pin = reg.acquire("m", version);
  if (pin == nullptr) {
    ADD_FAILURE() << "version " << version << " not loaded";
    return {};
  }
  et::gpusim::Device dev(et::gpusim::v100s());
  et::core::ExecContext ctx(dev, 1);
  et::serving::ServerConfig cfg;
  cfg.max_batch = 4;
  et::serving::InferenceServer server(pin->model(), cfg);
  et::serving::Request req;
  req.first_token = first_token;
  req.max_new_tokens = tokens;
  req.embed = pin->embed_fn();
  req.select = pin->select_fn();
  const auto h = server.submit(std::move(req));
  return server.wait(h, ctx).tokens;
}

/// Collected outcome of one wire stream.
struct StreamResult {
  std::vector<std::int32_t> tokens;
  bool done = false;
  et::nn::StopReason stop = et::nn::StopReason::kMaxTokens;
  bool rejected = false;
  NetStatus reject_status = NetStatus::kQueueFull;
};

/// Pump a client until every listed stream is terminal (done or
/// rejected), checking per-stream token ordering along the way.
std::map<std::uint64_t, StreamResult> pump_streams(
    Client& client, const std::vector<std::uint64_t>& streams) {
  std::map<std::uint64_t, StreamResult> out;
  for (auto id : streams) out[id];
  std::size_t open = streams.size();
  while (open > 0) {
    const auto f = client.next();
    if (!f.has_value()) {
      ADD_FAILURE() << "connection lost: " << client.error_detail();
      break;
    }
    auto it = out.find(f->stream_id);
    if (it == out.end()) {
      ADD_FAILURE() << "frame for unknown stream " << f->stream_id;
      break;
    }
    StreamResult& r = it->second;
    if (f->type == FrameType::kToken) {
      EXPECT_EQ(f->index, r.tokens.size()) << "token index gap";
      r.tokens.push_back(f->token);
    } else if (f->type == FrameType::kDone) {
      r.done = true;
      r.stop = static_cast<et::nn::StopReason>(f->code);
      EXPECT_EQ(f->index, r.tokens.size()) << "done count mismatch";
      --open;
    } else if (f->type == FrameType::kReject) {
      r.rejected = true;
      r.reject_status = static_cast<NetStatus>(f->code);
      --open;
    } else {
      ADD_FAILURE() << "unexpected frame " << std::string(to_string(f->type));
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Auth.
// ---------------------------------------------------------------------------
TEST(NetAuth, GoodKeyAuthenticatesWithTierEcho) {
  NetHarness h;
  Client c;
  c.connect(h.server->port());
  const auto ok = c.hello("key-limited");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->type, FrameType::kHelloOk);
  EXPECT_EQ(ok->text, "limited");
  EXPECT_EQ(static_cast<Priority>(ok->code), Priority::kNormal);
}

TEST(NetAuth, BadKeyIsRejectedAndDisconnected) {
  NetHarness h;
  Client c;
  c.connect(h.server->port());
  const auto r = c.hello("key-wrong");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, FrameType::kReject);
  EXPECT_EQ(static_cast<NetStatus>(r->code), NetStatus::kBadKey);
  EXPECT_FALSE(c.next().has_value());  // server hung up
  EXPECT_TRUE(h.wait_metric("net_auth_failures", 1.0));
}

TEST(NetAuth, SubmitBeforeHelloIsRejected) {
  NetHarness h;
  Client c;
  c.connect(h.server->port());
  c.submit(1, "", {3}, 4);
  const auto r = c.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, FrameType::kReject);
  EXPECT_EQ(static_cast<NetStatus>(r->code), NetStatus::kNotAuthed);
  EXPECT_FALSE(c.next().has_value());
}

// ---------------------------------------------------------------------------
// Streaming round-trips.
// ---------------------------------------------------------------------------

class NetStreamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetStreamTest, WireTranscriptMatchesInProcessReference) {
  NetHarness h(/*threads=*/GetParam());
  Client c = h.connect("key-fast");
  c.submit(7, "m", {3}, 6);
  const auto out = pump_streams(c, {7});
  const StreamResult& r = out.at(7);
  ASSERT_TRUE(r.done);
  EXPECT_EQ(r.stop, et::nn::StopReason::kMaxTokens);
  // The harness serves the newest version (v2) — pin the expectation.
  EXPECT_EQ(r.tokens, reference(h.registry, 2, 3, 6));
}

TEST_P(NetStreamTest, OneConnectionMultiplexesConcurrentStreams) {
  NetHarness h(/*threads=*/GetParam());
  Client c = h.connect("key-fast");
  const std::vector<std::uint64_t> ids = {1, 2, 3, 4};
  for (auto id : ids) {
    c.submit(id, "", {static_cast<std::int32_t>(id)}, 5);
  }
  auto out = pump_streams(c, ids);
  for (auto id : ids) {
    const StreamResult& r = out.at(id);
    ASSERT_TRUE(r.done) << "stream " << id;
    EXPECT_EQ(r.tokens,
              reference(h.registry, 2, static_cast<std::int32_t>(id), 5))
        << "stream " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, NetStreamTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}),
                         [](const auto& pinfo) {
                           return "threads_" + std::to_string(pinfo.param);
                         });

// ---------------------------------------------------------------------------
// Admission enforcement on the wire.
// ---------------------------------------------------------------------------
TEST(NetAdmission, RateLimitRejectsBeyondTheBucket) {
  NetHarness h;
  // "limited" has a burst of 3 and a refill of ZERO: of 5 submissions,
  // exactly 3 are admitted and 2 are rate-limited, whatever the timing.
  Client c = h.connect("key-limited");
  const std::vector<std::uint64_t> ids = {1, 2, 3, 4, 5};
  for (auto id : ids) c.submit(id, "", {1}, 2);
  auto out = pump_streams(c, ids);
  std::size_t done = 0;
  std::size_t limited = 0;
  for (const auto& [id, r] : out) {
    if (r.done) ++done;
    if (r.rejected) {
      EXPECT_EQ(r.reject_status, NetStatus::kRateLimited) << "stream " << id;
      ++limited;
    }
  }
  EXPECT_EQ(done, 3u);
  EXPECT_EQ(limited, 2u);
  EXPECT_EQ(h.metric("net_rate_limited"), 2.0);
  EXPECT_EQ(h.metric("tenant_limited_rejected"), 2.0);
  EXPECT_EQ(h.metric("tenant_limited_completed"), 3.0);
}

TEST(NetAdmission, InflightQuotaRejectsAndRecovers) {
  NetHarness h;
  // "small" may hold 2 generations in flight. Long generations keep the
  // first two occupying the quota when the third arrives.
  Client c = h.connect("key-small");
  c.submit(1, "", {1}, 400);
  c.submit(2, "", {2}, 400);
  c.submit(3, "", {3}, 2);
  auto out = pump_streams(c, {1, 2, 3});
  EXPECT_TRUE(out.at(1).done);
  EXPECT_TRUE(out.at(2).done);
  ASSERT_TRUE(out.at(3).rejected);
  EXPECT_EQ(out.at(3).reject_status, NetStatus::kQuotaExceeded);
  // Quota is released with completion: a fresh submit now succeeds.
  c.submit(4, "", {3}, 2);
  auto again = pump_streams(c, {4});
  EXPECT_TRUE(again.at(4).done);
  EXPECT_EQ(h.metric("net_quota_rejected"), 1.0);
}

TEST(NetAdmission, QueueFullRejectReusesEngineRejectReason) {
  // A 1-slot engine with a 2-deep queue: a burst of 8 long submissions
  // must bounce most of them with the engine's own typed queue_full
  // reject on the wire. With 200-token generations the engine cannot
  // complete anything while the burst lands, so at least half the burst
  // is rejected and admitted + rejected always covers all 8.
  NetHarness h(/*threads=*/1, /*max_batch=*/1, /*queue_capacity=*/2);
  Client c = h.connect("key-fast");
  std::vector<std::uint64_t> ids;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    ids.push_back(id);
    c.submit(id, "", {static_cast<std::int32_t>(id)}, 200);
  }
  auto out = pump_streams(c, ids);
  std::size_t done = 0;
  std::size_t queue_full = 0;
  for (const auto& [id, r] : out) {
    if (r.done) ++done;
    if (r.rejected) {
      EXPECT_EQ(r.reject_status, NetStatus::kQueueFull) << "stream " << id;
      ++queue_full;
    }
  }
  EXPECT_EQ(done + queue_full, 8u);
  EXPECT_GE(queue_full, 4u);
  EXPECT_EQ(h.metric("net_requests_rejected"),
            static_cast<double>(queue_full));
}

TEST(NetAdmission, UnknownModelIsATypedReject) {
  NetHarness h;
  Client c = h.connect("key-fast");
  c.submit(1, "never-loaded", {1}, 2);
  auto out = pump_streams(c, {1});
  ASSERT_TRUE(out.at(1).rejected);
  EXPECT_EQ(out.at(1).reject_status, NetStatus::kUnknownModel);
}

TEST(NetAdmission, DuplicateStreamIdIsAProtocolError) {
  // The duplicate is only an error while the first stream is LIVE. A
  // scheduler stall can let the ~1000-tick generation finish before the
  // duplicate submit is inspected — then it is legitimately admitted as
  // a fresh stream (two kDones, no error). That is a lost race, not a
  // failure: retry on a fresh pair of submissions. The test fails only
  // if the server never flags a duplicate across every attempt.
  NetHarness h;
  Client c = h.connect("key-fast");
  bool saw_error = false;
  for (int attempt = 0; attempt < kRaceRetries && !saw_error; ++attempt) {
    const auto sid = static_cast<std::uint64_t>(100 + attempt);
    c.submit(sid, "", {1}, 1000);
    c.submit(sid, "", {2}, 1000);  // same id while the first is live
    std::size_t dones = 0;
    for (;;) {
      const auto f = c.next();
      if (!f.has_value()) break;  // disconnected after the error
      if (f->type == FrameType::kError) {
        saw_error = true;
        EXPECT_NE(f->text.find("duplicate stream_id"), std::string::npos);
        break;
      }
      if (f->type == FrameType::kDone && ++dones == 2) break;  // lost race
    }
  }
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(h.wait_metric("net_protocol_errors", 1.0));
  // The dropped connection's live stream was cancelled, not leaked.
  EXPECT_TRUE(h.wait_metric("net_streams_live", 0.0));
}

// ---------------------------------------------------------------------------
// Cancel paths.
// ---------------------------------------------------------------------------
TEST(NetCancel, ClientCancelFinishesWithCancelledStop) {
  // The cancel frame races the ~1000-tick generation; if a scheduler
  // stall lets the generation complete first the cancel is a no-op on a
  // finished stream (kDone kMaxTokens) — a lost race, retried on a
  // fresh stream. The test fails only if no attempt ever lands a
  // cancel on a live decode.
  NetHarness h;
  Client c = h.connect("key-fast");
  bool cancelled = false;
  for (int attempt = 0; attempt < kRaceRetries && !cancelled; ++attempt) {
    const auto sid = static_cast<std::uint64_t>(1 + attempt);
    c.submit(sid, "", {1}, 1000);
    // Wait for streaming to start so the cancel hits a live decode.
    const auto first = c.next();
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->type, FrameType::kToken);
    c.cancel(sid);
    // Drain to the done frame: kCancelled, streamed tokens kept.
    std::size_t tokens = 1;
    for (;;) {
      const auto f = c.next();
      ASSERT_TRUE(f.has_value()) << c.error_detail();
      if (f->type == FrameType::kToken) {
        ++tokens;
        continue;
      }
      ASSERT_EQ(f->type, FrameType::kDone);
      if (static_cast<et::nn::StopReason>(f->code) ==
          et::nn::StopReason::kCancelled) {
        cancelled = true;
        EXPECT_EQ(f->index, tokens);
        EXPECT_LT(tokens, 1000u);
      }
      break;
    }
  }
  EXPECT_TRUE(cancelled);
  EXPECT_TRUE(h.wait_metric("net_requests_cancelled", 1.0));
}

TEST(NetCancel, DisconnectCancelsEveryLiveStream) {
  // The RST from the abrupt close races the ~1000-tick generations; a
  // scheduler stall waking the reader thread can let one (or both)
  // streams complete first, in which case there is nothing live left to
  // disconnect-cancel. Each attempt either cancels both streams (the
  // mechanism under test) or is detected as a lost race and retried on
  // a fresh connection. Either way the server must go fully idle.
  NetHarness h;
  bool both_cancelled = false;
  for (int attempt = 0; attempt < kRaceRetries && !both_cancelled;
       ++attempt) {
    const double base = h.metric("net_disconnect_cancels");
    {
      Client c = h.connect("key-fast");
      const auto a = static_cast<std::uint64_t>(2 * attempt + 1);
      c.submit(a, "", {1}, 1000);
      c.submit(a + 1, "", {2}, 1000);
      // Ensure the streams are admitted and decoding before vanishing.
      const auto f = c.next();
      ASSERT_TRUE(f.has_value());
      c.close();  // abrupt disconnect, no cancel frames
    }
    // Whatever the race outcome, the connection must be reaped and the
    // slots released — the server goes fully idle.
    ASSERT_TRUE(h.wait_metric("net_connections_open", 0.0));
    ASSERT_TRUE(h.wait_metric("net_streams_live", 0.0));
    both_cancelled = h.metric("net_disconnect_cancels") == base + 2.0;
  }
  EXPECT_TRUE(both_cancelled);
}

// ---------------------------------------------------------------------------
// Connection pool bound.
// ---------------------------------------------------------------------------
TEST(NetPool, ConnectionsBeyondTheCapAreTurnedAway) {
  NetHarness h;  // max_connections = 8
  std::vector<Client> held;
  for (int i = 0; i < 8; ++i) held.push_back(h.connect("key-fast"));
  Client extra;
  extra.connect(h.server->port());
  const auto f = extra.next();  // kError then close, no reader thread
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kError);
  EXPECT_NE(f->text.find("max_connections"), std::string::npos);
  EXPECT_FALSE(extra.next().has_value());
  EXPECT_TRUE(h.wait_metric("net_connections_rejected", 1.0));
  // The pool recovers: close one held connection, the next connect works.
  held.pop_back();
  EXPECT_TRUE(h.wait_metric("net_connections_open", 7.0));
  Client again = h.connect("key-fast");
  EXPECT_TRUE(again.connected());
}

// ---------------------------------------------------------------------------
// Graceful shutdown.
// ---------------------------------------------------------------------------
TEST(NetShutdown, DrainLetsInflightWorkFinish) {
  NetHarness h;
  Client c = h.connect("key-fast");
  c.submit(1, "", {3}, 10);
  const auto first = c.next();  // admitted and streaming
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->type, FrameType::kToken);
  const auto dr = h.server->shutdown(/*drain_ticks=*/1000);
  EXPECT_EQ(dr.cancelled, 0u);  // budget was enough: nothing cancelled
  EXPECT_FALSE(h.server->running());
  // The client still got its complete, bit-exact stream.
  std::vector<std::int32_t> tokens = {first->token};
  for (;;) {
    const auto f = c.next();
    ASSERT_TRUE(f.has_value()) << c.error_detail();
    if (f->type == FrameType::kToken) {
      tokens.push_back(f->token);
      continue;
    }
    ASSERT_EQ(f->type, FrameType::kDone);
    EXPECT_EQ(static_cast<et::nn::StopReason>(f->code),
              et::nn::StopReason::kMaxTokens);
    break;
  }
  EXPECT_EQ(tokens, reference(h.registry, 2, 3, 10));
}

TEST(NetShutdown, ExhaustedDrainBudgetCancelsTheRemainder) {
  // The shutdown races the ~1000-tick generation (which fits the
  // context, so it cannot bail early with a kv-full stop): normally the
  // 2-tick budget exhausts and cancels it, but a scheduler stall can
  // let the generation finish first (cancelled == 0, a clean drain).
  // shutdown() is one-shot, so a lost race retries on a fresh harness.
  bool exhausted = false;
  for (int attempt = 0; attempt < kRaceRetries && !exhausted; ++attempt) {
    NetHarness h;
    Client c = h.connect("key-fast");
    c.submit(1, "", {3}, 1000);
    const auto first = c.next();
    ASSERT_TRUE(first.has_value());
    const auto dr = h.server->shutdown(/*drain_ticks=*/2);
    if (dr.cancelled != 1u) continue;  // finished before the budget ran out
    exhausted = true;
    // The wire still ends with a terminal done (cancelled), not silence.
    for (;;) {
      const auto f = c.next();
      ASSERT_TRUE(f.has_value()) << c.error_detail();
      if (f->type == FrameType::kToken) continue;
      ASSERT_EQ(f->type, FrameType::kDone);
      EXPECT_EQ(static_cast<et::nn::StopReason>(f->code),
                et::nn::StopReason::kCancelled);
      break;
    }
    // Idempotent: a second shutdown reports the same result.
    const auto again = h.server->shutdown(9);
    EXPECT_EQ(again.cancelled, 1u);
  }
  EXPECT_TRUE(exhausted);
}

TEST(NetShutdown, SubmitDuringDrainIsRejectedAsDraining) {
  // Stream 1's ~1000-tick generation holds the drain window open while
  // short probes hunt for the typed kDraining reject. If a scheduler
  // stall lets stream 1 finish before the drain flag goes up, the
  // server drains clean and the probes just hit a closed socket — a
  // lost race, retried on a fresh harness (shutdown is one-shot).
  bool saw_draining = false;
  for (int attempt = 0; attempt < kRaceRetries && !saw_draining;
       ++attempt) {
    NetHarness h;
    Client c = h.connect("key-fast");
    c.submit(1, "", {1}, 1000);
    const auto first = c.next();
    ASSERT_TRUE(first.has_value());
    // Shut down concurrently, then keep submitting short probes: once
    // the drain flag is up, a probe gets the typed kDraining reject.
    // Probes that beat the flag simply complete and we try again.
    std::thread closer([&h] { h.server->shutdown(/*drain_ticks=*/100000); });
    std::uint64_t sid = 2;
    try {
      while (!saw_draining) {
        c.submit(sid, "", {2}, 1);
        for (;;) {
          const auto f = c.next();
          if (!f.has_value()) throw std::runtime_error("eof");
          if (f->stream_id != sid) continue;  // stream 1 traffic
          if (f->type == FrameType::kReject) {
            EXPECT_EQ(static_cast<NetStatus>(f->code), NetStatus::kDraining);
            saw_draining = true;
            break;
          }
          if (f->type == FrameType::kDone) break;  // beat the flag; retry
        }
        ++sid;
      }
    } catch (const std::exception&) {
      // Connection torn down before a probe landed: stream 1 finished
      // and the drain completed clean — retry on a fresh harness.
    }
    // Don't sit through the rest of stream 1's long generation: cancel
    // it so the drain (and the closer thread) finish promptly.
    if (c.connected()) c.cancel(1);
    closer.join();
  }
  EXPECT_TRUE(saw_draining);
}

// ---------------------------------------------------------------------------
// The hot-swap capstone.
// ---------------------------------------------------------------------------

class NetSwapTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetSwapTest, HotSwapUnderLoadDropsNothingAndSplitsVersions) {
  NetHarness h(/*threads=*/GetParam(), /*max_batch=*/4);
  // The harness serves newest (v2); flip to v1 so the storm swaps 1 -> 2.
  // The flip is enqueued before the client even connects, so command
  // FIFO order guarantees it lands first.
  h.server->swap_model("m", 1);

  Client c = h.connect("key-fast");
  constexpr std::size_t kTokens = 12;
  const std::vector<std::uint64_t> pre = {1, 2, 3, 4};
  for (auto id : pre) {
    c.submit(id, "", {static_cast<std::int32_t>(10 + id)}, kTokens);
  }
  // Force the ordering the test is about: every pre-swap stream must be
  // admitted (streaming) before the swap lands. max_batch=4 gives each a
  // slot, so each produces a first token — though a scheduler stall can
  // let an early stream run to completion before a late one starts, so a
  // kDone here is also proof of pre-swap admission.
  std::map<std::uint64_t, StreamResult> results;
  for (auto id : pre) results[id];
  std::set<std::uint64_t> streaming;
  std::size_t finished_early = 0;
  while (streaming.size() < pre.size()) {
    const auto f = c.next();
    ASSERT_TRUE(f.has_value()) << c.error_detail();
    StreamResult& r = results[f->stream_id];
    if (f->type == FrameType::kToken) {
      ASSERT_EQ(f->index, r.tokens.size());
      r.tokens.push_back(f->token);
    } else {
      ASSERT_EQ(f->type, FrameType::kDone);
      r.done = true;
      r.stop = static_cast<et::nn::StopReason>(f->code);
      ASSERT_EQ(f->index, r.tokens.size());
      ++finished_early;
    }
    streaming.insert(f->stream_id);
  }

  // Swap mid-storm, then submit the post-swap wave on the same wire.
  h.server->swap_model("m", 2);
  const std::vector<std::uint64_t> post = {11, 12, 13, 14};
  for (auto id : post) {
    results[id];
    c.submit(id, "", {static_cast<std::int32_t>(10 + (id - 10))}, kTokens);
  }

  // Drain everything to terminal frames: ZERO streams may be dropped.
  std::size_t open = pre.size() + post.size() - finished_early;
  while (open > 0) {
    const auto f = c.next();
    ASSERT_TRUE(f.has_value()) << c.error_detail();
    auto it = results.find(f->stream_id);
    ASSERT_NE(it, results.end());
    if (f->type == FrameType::kToken) {
      ASSERT_EQ(f->index, it->second.tokens.size());
      it->second.tokens.push_back(f->token);
    } else {
      ASSERT_EQ(f->type, FrameType::kDone)
          << "stream " << f->stream_id << " got "
          << std::string(to_string(f->type));
      it->second.done = true;
      it->second.stop = static_cast<et::nn::StopReason>(f->code);
      ASSERT_EQ(f->index, it->second.tokens.size());
      --open;
    }
  }

  // Requests admitted pre-swap completed on the OLD version,
  // bit-identical to an undisturbed v1 run; post-swap submissions used
  // the NEW version. Same first_token on both sides of the swap, so any
  // cross-talk would show up as the wrong transcript.
  for (auto id : pre) {
    const StreamResult& r = results.at(id);
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.stop, et::nn::StopReason::kMaxTokens);
    EXPECT_EQ(r.tokens,
              reference(h.registry, 1, static_cast<std::int32_t>(10 + id),
                        kTokens))
        << "pre-swap stream " << id << " not bit-identical to v1";
  }
  for (auto id : post) {
    const StreamResult& r = results.at(id);
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.stop, et::nn::StopReason::kMaxTokens);
    EXPECT_EQ(r.tokens,
              reference(h.registry, 2,
                        static_cast<std::int32_t>(10 + (id - 10)), kTokens))
        << "post-swap stream " << id << " not on v2";
  }

  // Steady state after the drain: the old engine is destroyed, its pin
  // released — one active engine, one pin, gauges back to baseline.
  EXPECT_TRUE(h.wait_metric("net_engines_draining", 0.0));
  EXPECT_TRUE(h.wait_metric("net_streams_live", 0.0));
  EXPECT_TRUE(h.wait_metric("active_pins", 1.0));
  EXPECT_EQ(h.metric("models_loaded"), 2.0);
  EXPECT_EQ(h.metric("net_engines_active"), 1.0);
  EXPECT_GE(h.metric("swaps"), 2.0);  // the setup flip + the storm swap
  EXPECT_EQ(h.metric("net_requests_completed"), 8.0);
  EXPECT_EQ(h.metric("net_requests_cancelled"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Threads, NetSwapTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}),
                         [](const auto& pinfo) {
                           return "threads_" + std::to_string(pinfo.param);
                         });

}  // namespace
