// The quantized decode path, pinned from both ends:
//
//   Property side — the INT8 scheme itself: symmetric per-row weight
//   quantization reconstructs within half a quantization step, pruned
//   zeros survive exactly, and the paged-KV int8 planes store per-row
//   reconstruction scales that rebuild every row within half a step (and
//   a CoW split copies scales verbatim — never re-quantizes).
//
//   Differential side — int8 is DETERMINISTIC even though it is lossy:
//   the batched scheduler's int8 tick must be bit-identical to the
//   sequential int8 reference at every thread count (per-ROW activation
//   scales make stacking rows a no-op for each row's math), and the fused
//   int8_batched_linear launch must match separate int8_linear calls bit
//   for bit. Against the FP32 reference the comparison is the harness's
//   one bounded-error mode: a scripted (precision-independent) token path
//   with every hidden state within a documented number of quantization
//   steps (docs/quantization.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/block_allocator.hpp"
#include "differential.hpp"
#include "quant/quantize.hpp"

namespace {

constexpr std::int32_t kVocab = 97;
constexpr std::size_t kDModel = 32;
constexpr std::size_t kHeads = 2;
constexpr std::size_t kMaxContext = 8;

// Empirical ceiling for the 2-layer stack below, with margin; the point
// is that the bound EXISTS and is small relative to the 127-step range,
// not its exact value. Bit-identity tests carry the determinism load.
constexpr double kMaxHiddenSteps = 24.0;

struct Stack {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

Stack make_dense_stack(std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = kDModel;
  cfg.num_heads = kHeads;
  cfg.d_ff = 2 * kDModel;
  Stack s;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    s.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  s.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, kMaxContext,
                              /*causal=*/true);
  s.opt.attn.precision = et::numeric::Precision::kFp32;
  return s;
}

std::vector<et::diff::Request> make_requests(std::size_t n) {
  std::vector<et::diff::Request> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].first_token = static_cast<std::int32_t>(3 * i + 1);
    reqs[i].max_new_tokens = 5 + (i % 3);
    reqs[i].seed = 0xABCDull + i;
  }
  return reqs;
}

et::tensor::MatrixF random_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  et::tensor::MatrixF m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = et::diff::unit_float(
          et::diff::splitmix64(seed ^ (r * 8191 + c)));
    }
  }
  return m;
}

// ---------------------------------------------------------------------
// Property side: the scheme.

TEST(QuantProperty, WeightRoundTripWithinHalfStep) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    const auto w = random_matrix(48, 32, seed);
    const auto qw = et::quant::quantize_weight(w);
    // Round-to-nearest against the row amax: every element reconstructs
    // within half a quantization step.
    EXPECT_LE(et::quant::max_quantization_error_steps(w, qw), 0.5)
        << "seed " << seed;
  }
}

TEST(QuantProperty, ZerosAndZeroRowsSurviveExactly) {
  auto w = random_matrix(16, 16, 42);
  // A pruned-looking pattern: one all-zero row and scattered exact zeros.
  for (std::size_t c = 0; c < w.cols(); ++c) w(3, c) = 0.0f;
  w(0, 5) = 0.0f;
  w(7, 0) = 0.0f;
  const auto qw = et::quant::quantize_weight(w);
  const auto back = et::quant::dequantize(qw);
  for (std::size_t c = 0; c < w.cols(); ++c) {
    EXPECT_EQ(back(3, c), 0.0f) << "zero row col " << c;
  }
  EXPECT_EQ(back(0, 5), 0.0f);
  EXPECT_EQ(back(7, 0), 0.0f);
  // Zero rows get the sentinel scale 1.0, never a 0/0.
  EXPECT_EQ(qw.row_scale[3], 1.0f);
}

TEST(QuantProperty, KvBlockScalesReconstructEveryRow) {
  const std::size_t k_width = 16;
  const std::vector<std::size_t> v_widths = {16, 8};
  et::core::BlockAllocator alloc(/*num_blocks=*/4, /*block_tokens=*/4,
                                 k_width, v_widths,
                                 et::core::KvPrecision::kInt8);
  const auto block = alloc.allocate();
  ASSERT_TRUE(block.has_value());
  std::vector<float> dst(k_width);
  for (std::size_t layer = 0; layer < v_widths.size(); ++layer) {
    for (std::size_t off = 0; off < alloc.block_tokens(); ++off) {
      const auto row =
          random_matrix(1, k_width, 0xBEEF + layer * 16 + off);
      alloc.store_k_row(layer, *block, off, row.flat());
      // The stored reconstruction scale is the symmetric-scheme scale:
      // row amax / 127.
      float amax = 0.0f;
      for (float v : row.flat()) amax = std::max(amax, std::abs(v));
      const float scale = alloc.k_row_scale(layer, *block, off);
      EXPECT_FLOAT_EQ(scale, amax / 127.0f);
      // And reconstruction lands within half a step of the original.
      alloc.load_k_row(layer, *block, off, dst);
      for (std::size_t c = 0; c < k_width; ++c) {
        EXPECT_NEAR(dst[c], row(0, c), 0.5f * scale)
            << "layer " << layer << " off " << off << " col " << c;
      }
    }
  }
}

TEST(QuantProperty, CowSplitCopiesScalesWithoutRequantizing) {
  const std::size_t k_width = 8;
  et::core::BlockAllocator alloc(/*num_blocks=*/4, /*block_tokens=*/2,
                                 k_width, {8},
                                 et::core::KvPrecision::kInt8);
  const auto a = alloc.allocate();
  const auto b = alloc.allocate();
  ASSERT_TRUE(a.has_value() && b.has_value());
  const auto row = random_matrix(1, k_width, 7);
  alloc.store_k_row(0, *a, 0, row.flat());
  alloc.store_v_row(0, *a, 0, row.flat());
  alloc.copy_rows(*a, *b, 1);
  EXPECT_EQ(alloc.k_row_scale(0, *a, 0), alloc.k_row_scale(0, *b, 0));
  EXPECT_EQ(alloc.v_row_scale(0, *a, 0), alloc.v_row_scale(0, *b, 0));
  std::vector<float> from_a(k_width), from_b(k_width);
  alloc.load_k_row(0, *a, 0, from_a);
  alloc.load_k_row(0, *b, 0, from_b);
  EXPECT_EQ(from_a, from_b);  // bit-equal reconstruction: no requantize
}

TEST(QuantProperty, BatchedLinearMatchesSeparateCallsBitForBit) {
  et::gpusim::Device dev(et::gpusim::v100s());
  et::core::ExecContext ctx(dev, 1);
  const auto x = random_matrix(5, kDModel, 11);
  const auto wa = et::quant::quantize_weight(random_matrix(24, kDModel, 21));
  const auto wb = et::quant::quantize_weight(random_matrix(32, kDModel, 22));
  const auto wc = et::quant::quantize_weight(random_matrix(16, kDModel, 23));
  const auto fused =
      et::quant::int8_batched_linear(ctx, x, {&wa, &wb, &wc}, "fused");
  const et::quant::QuantizedWeight* ws[] = {&wa, &wb, &wc};
  for (std::size_t p = 0; p < 3; ++p) {
    const auto solo = et::quant::int8_linear(ctx, x, *ws[p], "solo");
    ASSERT_EQ(fused[p].rows(), solo.rows());
    ASSERT_EQ(fused[p].cols(), solo.cols());
    for (std::size_t r = 0; r < solo.rows(); ++r) {
      for (std::size_t c = 0; c < solo.cols(); ++c) {
        EXPECT_EQ(fused[p](r, c), solo(r, c)) << "panel " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Differential side: int8 decode across schedulers and thread counts.

TEST(QuantDiff, Int8BatchedMatchesInt8SequentialAtEveryThreadCount) {
  const Stack s = make_dense_stack(0x51ull);
  const auto reqs = make_requests(4);
  et::gpusim::Device ref_dev(et::gpusim::v100s());
  const auto reference = et::diff::run_sequential(
      ref_dev, s.layers, s.opt, kMaxContext, reqs, kVocab, /*threads=*/1,
      et::nn::WeightFormat::kInt8, /*scripted=*/true);
  // The int8-KV run is lossy relative to the fp32-KV one (rows round-trip
  // through the per-row scales) but must itself be deterministic: pin its
  // 1-thread transcript and hold every thread count to it bit for bit.
  et::core::PagedKVOptions kv;
  kv.precision = et::core::KvPrecision::kInt8;
  et::gpusim::Device kv_ref_dev(et::gpusim::v100s());
  const auto kv_reference = et::diff::run_batched(
      kv_ref_dev, s.layers, s.opt, /*max_batch=*/4, kMaxContext, reqs,
      kVocab, /*threads=*/1, kv, et::nn::WeightFormat::kInt8,
      /*scripted=*/true);
  for (const std::size_t threads : {1ull, 2ull, 8ull}) {
    et::gpusim::Device dev(et::gpusim::v100s());
    const auto batched = et::diff::run_batched(
        dev, s.layers, s.opt, /*max_batch=*/4, kMaxContext, reqs, kVocab,
        threads, {}, et::nn::WeightFormat::kInt8, /*scripted=*/true);
    et::diff::expect_bit_identical(reference, batched.outcomes);
    et::gpusim::Device dev2(et::gpusim::v100s());
    const auto batched_i8kv = et::diff::run_batched(
        dev2, s.layers, s.opt, /*max_batch=*/4, kMaxContext, reqs, kVocab,
        threads, kv, et::nn::WeightFormat::kInt8, /*scripted=*/true);
    et::diff::expect_bit_identical(kv_reference.outcomes,
                                   batched_i8kv.outcomes);
  }
}

TEST(QuantDiff, Int8SequentialIsThreadCountInvariant) {
  const Stack s = make_dense_stack(0x52ull);
  const auto reqs = make_requests(3);
  et::gpusim::Device d1(et::gpusim::v100s());
  const auto t1 = et::diff::run_sequential(
      d1, s.layers, s.opt, kMaxContext, reqs, kVocab, 1,
      et::nn::WeightFormat::kInt8, /*scripted=*/true);
  for (const std::size_t threads : {2ull, 8ull}) {
    et::gpusim::Device dn(et::gpusim::v100s());
    const auto tn = et::diff::run_sequential(
        dn, s.layers, s.opt, kMaxContext, reqs, kVocab, threads,
        et::nn::WeightFormat::kInt8, /*scripted=*/true);
    et::diff::expect_bit_identical(t1, tn);
  }
}

TEST(QuantDiff, Int8TracksFp32WithinDocumentedSteps) {
  const Stack s = make_dense_stack(0x53ull);
  const auto reqs = make_requests(4);
  // Scripted select: the fp32 and int8 runs decode the SAME token path,
  // so their logged hidden states are comparable step for step.
  et::gpusim::Device fp_dev(et::gpusim::v100s());
  const auto fp32 = et::diff::run_sequential(
      fp_dev, s.layers, s.opt, kMaxContext, reqs, kVocab, /*threads=*/1,
      /*format=*/{}, /*scripted=*/true);
  et::gpusim::Device i8_dev(et::gpusim::v100s());
  const auto int8 = et::diff::run_sequential(
      i8_dev, s.layers, s.opt, kMaxContext, reqs, kVocab, /*threads=*/1,
      et::nn::WeightFormat::kInt8, /*scripted=*/true);
  et::diff::expect_within_steps(fp32, int8, kMaxHiddenSteps);
  // The batched int8 run sits within the same bound of the same fp32
  // reference (it is bit-identical to sequential int8, so this is the
  // transitive check kept explicit) — at 1 thread and at 8.
  for (const std::size_t threads : {1ull, 8ull}) {
    et::gpusim::Device b_dev(et::gpusim::v100s());
    const auto batched = et::diff::run_batched(
        b_dev, s.layers, s.opt, /*max_batch=*/4, kMaxContext, reqs, kVocab,
        threads, {}, et::nn::WeightFormat::kInt8, /*scripted=*/true);
    et::diff::expect_within_steps(fp32, batched.outcomes, kMaxHiddenSteps);
  }
}

// A lossy KV cache is the one place int8 decode is allowed to drift from
// its own fp32-KV twin (K/V rows round-trip through the per-row scales).
// The drift must still sit inside the documented hidden-state bound
// against the full-fp32 reference.
TEST(QuantDiff, Int8KvStaysWithinDocumentedStepsOfFp32) {
  const Stack s = make_dense_stack(0x54ull);
  const auto reqs = make_requests(3);
  et::gpusim::Device fp_dev(et::gpusim::v100s());
  const auto fp32 = et::diff::run_sequential(
      fp_dev, s.layers, s.opt, kMaxContext, reqs, kVocab, /*threads=*/1,
      /*format=*/{}, /*scripted=*/true);
  et::core::PagedKVOptions kv;
  kv.precision = et::core::KvPrecision::kInt8;
  et::gpusim::Device b_dev(et::gpusim::v100s());
  const auto batched = et::diff::run_batched(
      b_dev, s.layers, s.opt, /*max_batch=*/4, kMaxContext, reqs, kVocab,
      /*threads=*/1, kv, et::nn::WeightFormat::kInt8, /*scripted=*/true);
  et::diff::expect_within_steps(fp32, batched.outcomes, kMaxHiddenSteps);
}

}  // namespace
