// Pruning algorithms: criteria behaviour, the reweighted group-lasso
// dynamics, strategy mask structure, deployment, and the SVD baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "pruning/criteria.hpp"
#include "pruning/reweighted.hpp"
#include "pruning/strategy.hpp"
#include "pruning/svd.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::pruning::Strategy;
using et::pruning::StrategyOptions;
using et::tensor::MatrixF;
using et::train::TrainModelConfig;

TrainModelConfig tiny_cfg() {
  TrainModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.d_ff = 128;
  cfg.num_layers = 1;
  return cfg;
}

TEST(Criteria, MagnitudeKeepsLargest) {
  MatrixF w(2, 2);
  w(0, 0) = 0.1f;
  w(0, 1) = -5.0f;
  w(1, 0) = 0.2f;
  w(1, 1) = 3.0f;
  const auto m = et::pruning::magnitude_mask(w, 0.5);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(1, 0), 0);
  EXPECT_EQ(m(0, 1), 1);
  EXPECT_EQ(m(1, 1), 1);
}

TEST(Criteria, RowMaskKeepsHighNormRows) {
  MatrixF w(4, 4, 0.1f);
  for (std::size_t c = 0; c < 4; ++c) w(2, c) = 10.0f;
  const auto m = et::pruning::row_mask(w, 0.25);
  EXPECT_EQ(m(2, 0), 1) << "the large row must survive";
  EXPECT_TRUE(et::sparse::is_row_structured(m));
}

TEST(Criteria, TileMaskIsTileStructured) {
  MatrixF w(64, 64);
  et::tensor::fill_normal(w, 1);
  const auto m = et::pruning::tile_mask(w, 0.6);
  EXPECT_TRUE(et::sparse::is_tile_structured(m, 16, 16));
}

TEST(Criteria, RatioZeroAndNearOne) {
  MatrixF w(32, 32);
  et::tensor::fill_normal(w, 2);
  EXPECT_EQ(et::sparse::pruning_ratio(et::pruning::magnitude_mask(w, 0.0)),
            0.0);
  const auto nearly = et::pruning::magnitude_mask(w, 0.999);
  EXPECT_LT(et::sparse::pruning_ratio(nearly), 1.0)
      << "at least one weight survives";
}

TEST(Reweighted, PenaltyTargetsSmallTiles) {
  et::train::Param p(32, 32);
  et::tensor::fill_normal(p.w, 3);
  // Make tile (0,0) tiny and tile (1,1) huge.
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      p.w(i, j) *= 1e-3f;
      p.w(16 + i, 16 + j) *= 10.0f;
    }
  }
  et::pruning::GroupLassoRegularizer reg({&p}, {});
  reg.update_penalties();
  p.zero_grad();
  reg.add_gradients();

  // Gradient-to-weight ratio must be far larger on the small tile: the
  // reweighting pushes near-dead tiles to zero without disturbing strong
  // ones.
  double small_ratio = 0.0, big_ratio = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (p.w(i, j) != 0.0f) {
        small_ratio = std::max(
            small_ratio, static_cast<double>(std::abs(p.g(i, j) / p.w(i, j))));
      }
      big_ratio = std::max(
          big_ratio, static_cast<double>(
                         std::abs(p.g(16 + i, 16 + j) / p.w(16 + i, 16 + j))));
    }
  }
  EXPECT_GT(small_ratio, 100.0 * big_ratio);
}

TEST(Reweighted, GradientMatchesFiniteDifference) {
  et::train::Param p(16, 16);
  et::tensor::fill_normal(p.w, 4);
  et::pruning::ReweightedConfig cfg;
  cfg.lambda = 0.01f;
  et::pruning::GroupLassoRegularizer reg({&p}, cfg);
  reg.update_penalties();
  p.zero_grad();
  reg.add_gradients();

  const float eps = 1e-3f;
  for (const std::size_t i : {0u, 77u, 200u}) {
    const float orig = p.w.flat()[i];
    p.w.flat()[i] = orig + eps;
    const double up = reg.penalty();
    p.w.flat()[i] = orig - eps;
    const double down = reg.penalty();
    p.w.flat()[i] = orig;
    EXPECT_NEAR(p.g.flat()[i], (up - down) / (2 * eps), 1e-3);
  }
}

TEST(Reweighted, DrivesWeakTilesTowardZero) {
  // Gradient descent on the penalty alone shrinks a weak tile's norm much
  // faster (relatively) than a strong tile's.
  et::train::Param p(32, 32);
  et::tensor::fill_normal(p.w, 5);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) p.w(i, j) *= 0.05f;
  }
  et::pruning::ReweightedConfig cfg;
  cfg.lambda = 5e-2f;
  et::pruning::GroupLassoRegularizer reg({&p}, cfg);

  const double weak0 = et::tensor::tile_l2_norm(p.w, 16, 16, 0, 0);
  const double strong0 = et::tensor::tile_l2_norm(p.w, 16, 16, 1, 1);
  for (int epoch = 0; epoch < 30; ++epoch) {
    reg.update_penalties();
    p.zero_grad();
    reg.add_gradients();
    for (std::size_t i = 0; i < p.w.size(); ++i) {
      p.w.flat()[i] -= 1.0f * p.g.flat()[i];
    }
  }
  const double weak1 = et::tensor::tile_l2_norm(p.w, 16, 16, 0, 0);
  const double strong1 = et::tensor::tile_l2_norm(p.w, 16, 16, 1, 1);
  EXPECT_LT(weak1 / weak0, 0.5);
  EXPECT_GT(strong1 / strong0, 0.9);
}

TEST(Strategy, MaskShapesPerStrategy) {
  auto cfg = tiny_cfg();
  et::train::TransformerModel model(cfg, 6);
  const auto& layer = model.layers()[0];

  const auto tile =
      et::pruning::compute_layer_masks(layer, Strategy::kTile, 0.5);
  EXPECT_TRUE(et::sparse::is_tile_structured(tile.wq, 16, 16));
  EXPECT_TRUE(et::sparse::is_tile_structured(tile.ff1, 16, 16));

  const auto col =
      et::pruning::compute_layer_masks(layer, Strategy::kColumn, 0.5);
  EXPECT_TRUE(et::sparse::is_col_structured(col.wq));

  const auto aa =
      et::pruning::compute_layer_masks(layer, Strategy::kAttentionAware, 0.5);
  EXPECT_TRUE(et::sparse::is_tile_structured(aa.wq, 16, 16));
  EXPECT_TRUE(et::sparse::is_row_structured(aa.wv));
  // dk = 16 here, so every head has exactly one 16-row group and a 50%
  // ratio rounds to zero pruned groups... use d checked below instead.
}

TEST(Strategy, AttentionAwareVBalancedAcrossHeads) {
  auto cfg = tiny_cfg();
  cfg.d_model = 128;  // dk = 32 -> two 16-groups per head
  cfg.d_ff = 256;
  et::train::TransformerModel model(cfg, 7);
  const auto& layer = model.layers()[0];
  const auto aa =
      et::pruning::compute_layer_masks(layer, Strategy::kAttentionAware, 0.5);

  // Exactly one of the two groups pruned in every head.
  const std::size_t dk = 32;
  for (std::size_t h = 0; h < 4; ++h) {
    std::size_t dead_rows = 0;
    for (std::size_t r = 0; r < dk; ++r) {
      if (aa.wv(h * dk + r, 0) == 0) ++dead_rows;
    }
    EXPECT_EQ(dead_rows, 16u) << "head " << h;
  }
}

TEST(Strategy, WoIntersectionAddsSparsity) {
  auto cfg = tiny_cfg();
  cfg.d_model = 128;
  cfg.d_ff = 256;
  et::train::TransformerModel model(cfg, 8);
  const auto& layer = model.layers()[0];
  const auto aa = et::pruning::compute_layer_masks(
      layer, Strategy::kAttentionAware, 0.5);
  const auto tile_only = et::pruning::tile_mask(layer.mha.wo.weight.w, 0.5);
  EXPECT_GT(et::sparse::pruning_ratio(aa.wo),
            et::sparse::pruning_ratio(tile_only))
      << "dead Z columns kill extra W_O tiles (§5.3.3)";
}

TEST(Strategy, OverallRatioNearTarget) {
  auto cfg = tiny_cfg();
  cfg.d_model = 128;
  cfg.d_ff = 256;
  et::train::TransformerModel model(cfg, 9);
  for (const auto strategy : {Strategy::kIrregular, Strategy::kColumn,
                              Strategy::kTile}) {
    const auto masks =
        et::pruning::compute_model_masks(model, strategy, 0.6);
    EXPECT_NEAR(masks.overall_ratio(), 0.6, 0.05)
        << et::pruning::to_string(strategy);
  }
}

TEST(Strategy, AttachZeroesWeightsAndPinsThem) {
  auto cfg = tiny_cfg();
  et::train::TransformerModel model(cfg, 10);
  auto masks =
      et::pruning::compute_model_masks(model, Strategy::kIrregular, 0.5);
  et::pruning::attach_masks(model, masks);
  auto& p = model.layers()[0].mha.wq.weight;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < p.w.size(); ++i) {
    if (masks.layers[0].wq.flat()[i] == 0) {
      EXPECT_EQ(p.w.flat()[i], 0.0f);
      ++zeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(p.w.size()),
              0.5, 0.01);
}

TEST(Strategy, DeployProducesExpectedFormats) {
  auto cfg = tiny_cfg();
  cfg.d_model = 128;
  cfg.d_ff = 256;
  et::train::TransformerModel model(cfg, 11);
  const auto& layer = model.layers()[0];

  {
    const auto masks =
        et::pruning::compute_layer_masks(layer, Strategy::kTile, 0.5);
    const auto w = et::pruning::deploy_layer(layer, masks, Strategy::kTile);
    EXPECT_EQ(method_of(w.attn.wq), et::sparse::PruneMethod::kTile);
    EXPECT_EQ(method_of(w.w_ff1), et::sparse::PruneMethod::kTile);
    EXPECT_FALSE(w.attn.has_precomputed());
  }
  {
    const auto masks = et::pruning::compute_layer_masks(
        layer, Strategy::kAttentionAware, 0.5);
    const auto w =
        et::pruning::deploy_layer(layer, masks, Strategy::kAttentionAware);
    EXPECT_EQ(method_of(w.attn.wv), et::sparse::PruneMethod::kRow);
    EXPECT_TRUE(w.attn.v_condensable(cfg.num_heads));
    EXPECT_EQ(method_of(w.attn.wo), et::sparse::PruneMethod::kTile);
  }
  {
    StrategyOptions opt;
    opt.precompute_vo = true;
    const auto masks = et::pruning::compute_layer_masks(
        layer, Strategy::kAttentionAware, 0.5, opt);
    const auto w = et::pruning::deploy_layer(layer, masks,
                                             Strategy::kAttentionAware, opt);
    EXPECT_TRUE(w.attn.has_precomputed());
    EXPECT_EQ(w.attn.vo.kept(), 64u);  // 50% of 128 rows kept
    EXPECT_EQ(method_of(w.attn.wv), et::sparse::PruneMethod::kDense);
  }
}

TEST(Svd, ApproximationImprovesWithRank) {
  MatrixF w(48, 32);
  et::tensor::fill_normal(w, 12);
  const auto err = [&](std::size_t rank) {
    const MatrixF approx = et::pruning::low_rank_approx(w, rank);
    double e = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double d = w.flat()[i] - approx.flat()[i];
      e += d * d;
    }
    return std::sqrt(e);
  };
  const double e4 = err(4);
  const double e16 = err(16);
  const double e32 = err(32);
  EXPECT_GT(e4, e16);
  EXPECT_GT(e16, e32);
  EXPECT_NEAR(e32, 0.0, 1e-2) << "full rank reconstructs exactly";
}

TEST(Svd, RankForRatioBudget) {
  // 768×768 at 80% compression: k = 0.2·768²/1536 ≈ 76.
  EXPECT_EQ(et::pruning::rank_for_ratio(768, 768, 0.8), 76u);
  EXPECT_GE(et::pruning::rank_for_ratio(16, 16, 0.99), 1u);
}

}  // namespace
