// serving::ModelRegistry: named, versioned, CRC-validated model
// instances with pin-based lifetime — the subsystem the network server's
// hot swap stands on. The suite pins:
//   - checkpoint integrity at load (ETW2 round-trips; a corrupted byte is
//     a load error naming the bad section; legacy ETW1 is refused unless
//     the --allow-unchecksummed gate is set);
//   - pin semantics (a pin keeps the instance alive across unload; one
//     acquire is one pin no matter how many copies; release accounting
//     returns to zero);
//   - the server-side decode head (same version => bit-identical
//     transcripts; different weights => different transcripts — the
//     property every hot-swap bit-identity test rests on);
//   - gauge registration order (registry gauges append AFTER existing
//     metrics, so older scalar snapshots stay a prefix);
//   - a seeded chaos storm of load/acquire/swap/unload/release ops, with
//     conservation checks and run-to-run reproducibility, plus a
//     multi-threaded pin soak for the sanitizer presets.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "differential.hpp"
#include "nn/serialize.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

namespace {

using et::serving::ModelPin;
using et::serving::ModelRegistry;

struct Stack {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

Stack make_stack(std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  Stack s;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    s.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  s.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, /*max_seq=*/16,
                              /*causal=*/true);
  s.opt.attn.precision = et::numeric::Precision::kFp32;
  return s;
}

void add_stack(ModelRegistry& reg, const std::string& name,
               std::uint64_t version, std::uint64_t seed) {
  Stack s = make_stack(seed);
  reg.add(name, version, std::move(s.layers), s.opt, /*max_context=*/16);
}

/// RAII temp checkpoint path.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& stem) {
    path = std::string(::testing::TempDir()) + stem;
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// Decode a short transcript on a pinned model through the serving
/// engine — the exact path the network server drives.
std::vector<std::int32_t> transcript(const ModelPin& pin,
                                     std::int32_t first_token,
                                     std::size_t tokens,
                                     std::size_t threads = 1) {
  et::gpusim::Device dev(et::gpusim::v100s());
  et::core::ExecContext ctx(dev, threads);
  et::serving::ServerConfig cfg;
  cfg.max_batch = 2;
  et::serving::InferenceServer server(pin->model(), cfg);
  et::serving::Request req;
  req.first_token = first_token;
  req.max_new_tokens = tokens;
  req.embed = pin->embed_fn();
  req.select = pin->select_fn();
  const auto h = server.submit(std::move(req));
  return server.wait(h, ctx).tokens;
}

// ---------------------------------------------------------------------------
// Load / acquire / versions.
// ---------------------------------------------------------------------------
TEST(Registry, AcquireNewestAndSpecificVersions) {
  ModelRegistry reg;
  add_stack(reg, "m", 1, 11);
  add_stack(reg, "m", 3, 33);
  add_stack(reg, "m", 2, 22);
  EXPECT_EQ(reg.models_loaded(), 3u);
  EXPECT_EQ(reg.versions("m"), (std::vector<std::uint64_t>{1, 2, 3}));

  const ModelPin newest = reg.acquire("m");
  ASSERT_NE(newest, nullptr);
  EXPECT_EQ(newest->version(), 3u);  // newest = highest version
  const ModelPin v1 = reg.acquire("m", 1);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(reg.acquire("nope"), nullptr);
  EXPECT_EQ(reg.acquire("m", 9), nullptr);
  EXPECT_EQ(reg.active_pins(), 2u);
}

TEST(Registry, DuplicateVersionThrows) {
  ModelRegistry reg;
  add_stack(reg, "m", 1, 7);
  Stack s = make_stack(8);
  EXPECT_THROW(reg.add("m", 1, std::move(s.layers), s.opt, 16),
               std::invalid_argument);
}

TEST(Registry, Etw2CheckpointRoundTripsAndServes) {
  TempFile f("registry_etw2.etw");
  Stack s = make_stack(5);
  et::nn::save_encoder_stack(f.path, s.layers);

  ModelRegistry reg;
  reg.load_file("disk", 1, f.path, s.opt, /*max_context=*/16);
  const ModelPin pin = reg.acquire("disk");
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->name(), "disk");

  // The loaded instance actually decodes, and matches the in-memory
  // registration of the same weights bit for bit.
  ModelRegistry ref;
  add_stack(ref, "mem", 1, 5);
  const ModelPin mem = ref.acquire("mem");
  const auto a = transcript(pin, 3, 6);
  const auto b = transcript(mem, 3, 6);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a, b);
}

TEST(Registry, CorruptedCheckpointIsALoadError) {
  TempFile f("registry_corrupt.etw");
  Stack s = make_stack(5);
  et::nn::save_encoder_stack(f.path, s.layers);
  {
    // Flip one byte deep in the weight payload.
    std::fstream fs(f.path,
                    std::ios::in | std::ios::out | std::ios::binary);
    fs.seekp(200);
    char b = 0;
    fs.read(&b, 1);
    fs.seekp(200);
    b = static_cast<char>(b ^ 0x40);
    fs.write(&b, 1);
  }
  ModelRegistry reg;
  try {
    reg.load_file("bad", 1, f.path, s.opt, 16);
    FAIL() << "corrupted checkpoint loaded";
  } catch (const std::runtime_error& e) {
    // The CRC failure names the corrupted section.
    EXPECT_NE(std::string(e.what()).find("section"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(reg.models_loaded(), 0u);
}

TEST(Registry, LegacyEtw1NeedsTheUnchecksummedGate) {
  TempFile f("registry_etw1.etw");
  Stack s = make_stack(5);
  {
    std::ofstream os(f.path, std::ios::binary);
    et::nn::save_encoder_stack_v1(os, s.layers);
  }
  ModelRegistry strict;
  try {
    strict.load_file("legacy", 1, f.path, s.opt, 16);
    FAIL() << "unchecksummed checkpoint loaded without the gate";
  } catch (const std::runtime_error& e) {
    // The error must name the escape hatch.
    EXPECT_NE(std::string(e.what()).find("--allow-unchecksummed"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(strict.models_loaded(), 0u);

  ModelRegistry lax(/*allow_unchecksummed=*/true);
  lax.load_file("legacy", 1, f.path, s.opt, 16);
  EXPECT_EQ(lax.models_loaded(), 1u);
  EXPECT_NE(lax.acquire("legacy"), nullptr);
}

// ---------------------------------------------------------------------------
// Pin lifetime.
// ---------------------------------------------------------------------------
TEST(Registry, PinKeepsInstanceAliveAcrossUnload) {
  ModelRegistry reg;
  add_stack(reg, "m", 1, 9);
  ModelPin pin = reg.acquire("m");
  ASSERT_NE(pin, nullptr);
  std::weak_ptr<const et::serving::LoadedModel> watch = pin;

  EXPECT_TRUE(reg.unload("m", 1));
  EXPECT_EQ(reg.models_loaded(), 0u);
  EXPECT_EQ(reg.acquire("m"), nullptr);
  // The pinned instance is still fully usable after unload...
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(transcript(pin, 2, 4).size(), 4u);
  EXPECT_EQ(reg.active_pins(), 1u);
  // ...and destroyed exactly when the last pin drops.
  pin.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(reg.active_pins(), 0u);
  EXPECT_FALSE(reg.unload("m", 1));  // already gone
}

TEST(Registry, CopyingAPinDoesNotChangeTheCount) {
  ModelRegistry reg;
  add_stack(reg, "m", 1, 9);
  ModelPin pin = reg.acquire("m");
  EXPECT_EQ(reg.active_pins(), 1u);
  ModelPin copy1 = pin;   // NOLINT(performance-unnecessary-copy-initialization)
  ModelPin copy2 = copy1; // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(reg.active_pins(), 1u);
  pin.reset();
  copy1.reset();
  EXPECT_EQ(reg.active_pins(), 1u);  // copy2 still holds the acquire
  copy2.reset();
  EXPECT_EQ(reg.active_pins(), 0u);
}

// ---------------------------------------------------------------------------
// Decode head: version sensitivity and determinism.
// ---------------------------------------------------------------------------
TEST(Registry, TranscriptsDistinguishModelVersions) {
  ModelRegistry reg;
  add_stack(reg, "m", 1, 100);  // different seeds => different weights
  add_stack(reg, "m", 2, 200);
  const ModelPin v1 = reg.acquire("m", 1);
  const ModelPin v2 = reg.acquire("m", 2);

  const auto t1 = transcript(v1, 3, 8);
  const auto t2 = transcript(v2, 3, 8);
  ASSERT_EQ(t1.size(), 8u);
  ASSERT_EQ(t2.size(), 8u);
  // The hidden state flows through the weights, and the select head
  // hashes its exact float bits — different versions MUST diverge (this
  // is what makes hot-swap bit-identity checks meaningful).
  EXPECT_NE(t1, t2);
  // Same version, fresh engine, any thread count: bit-identical.
  EXPECT_EQ(transcript(v1, 3, 8), t1);
  EXPECT_EQ(transcript(v1, 3, 8, /*threads=*/8), t1);
}

// ---------------------------------------------------------------------------
// Metrics binding.
// ---------------------------------------------------------------------------
TEST(Registry, GaugesAppendAfterExistingMetricsAndRefresh) {
  ModelRegistry reg;
  add_stack(reg, "m", 1, 9);

  et::serving::MetricsRegistry metrics;
  metrics.counter("pre_existing").inc(7);
  reg.bind_metrics(metrics);

  const auto fields = metrics.scalars();
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].name, "pre_existing");  // older snapshot = a prefix
  EXPECT_EQ(fields[1].name, "models_loaded");
  EXPECT_EQ(fields[2].name, "swaps");
  EXPECT_EQ(fields[3].name, "active_pins");

  ModelPin pin = reg.acquire("m");
  reg.note_swap();
  reg.refresh_gauges();
  EXPECT_EQ(metrics.find_gauge("models_loaded")->value(), 1.0);
  EXPECT_EQ(metrics.find_gauge("swaps")->value(), 1.0);
  EXPECT_EQ(metrics.find_gauge("active_pins")->value(), 1.0);
  pin.reset();
  reg.refresh_gauges();
  EXPECT_EQ(metrics.find_gauge("active_pins")->value(), 0.0);
}

// ---------------------------------------------------------------------------
// Seeded chaos storm (the fuzz-ish registry soak).
// ---------------------------------------------------------------------------

struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state = et::diff::splitmix64(state); }
  std::size_t below(std::size_t n) { return next() % n; }
};

/// Drive a seeded storm of load / acquire / release / swap-bump / unload
/// ops against the registry, mirroring every op in plain bookkeeping.
/// Returns an op-outcome trace for run-to-run comparison.
std::vector<std::uint64_t> run_storm(std::uint64_t seed, std::size_t ops) {
  Rng rng{seed};
  ModelRegistry reg;
  const std::vector<std::string> names = {"a", "b", "c"};
  std::vector<std::pair<std::string, std::uint64_t>> loaded;  // mirror
  std::vector<ModelPin> pins;
  std::uint64_t next_version = 1;
  std::vector<std::uint64_t> trace;

  for (std::size_t i = 0; i < ops; ++i) {
    const std::string& name = names[rng.below(names.size())];
    switch (rng.below(5)) {
      case 0: {  // load a fresh version
        const std::uint64_t v = next_version++;
        add_stack(reg, name, v, rng.next());
        loaded.emplace_back(name, v);
        trace.push_back(1000 + v);
        break;
      }
      case 1: {  // acquire newest
        ModelPin p = reg.acquire(name);
        trace.push_back(p ? 2000 + p->version() : 2000);
        if (p) pins.push_back(std::move(p));
        break;
      }
      case 2: {  // release a random pin
        if (!pins.empty()) {
          const std::size_t k = rng.below(pins.size());
          trace.push_back(3000 + pins[k]->version());
          pins.erase(pins.begin() + static_cast<std::ptrdiff_t>(k));
        }
        break;
      }
      case 3: {  // a swap event at the bookkeeping level
        reg.note_swap();
        trace.push_back(4000);
        break;
      }
      case 4: {  // unload a random loaded version
        if (!loaded.empty()) {
          const std::size_t k = rng.below(loaded.size());
          const bool ok = reg.unload(loaded[k].first, loaded[k].second);
          trace.push_back(5000 + (ok ? 1 : 0));
          loaded.erase(loaded.begin() + static_cast<std::ptrdiff_t>(k));
        }
        break;
      }
    }
    // Conservation every op: the registry's books match the mirror.
    if (reg.models_loaded() != loaded.size() ||
        reg.active_pins() != pins.size()) {
      ADD_FAILURE() << "op " << i << ": models_loaded="
                    << reg.models_loaded() << " (want " << loaded.size()
                    << "), active_pins=" << reg.active_pins() << " (want "
                    << pins.size() << ")";
      break;
    }
  }
  // Steady state: dropping every pin returns the pin gauge to zero, and
  // pinned-but-unloaded instances die with their last pin.
  pins.clear();
  EXPECT_EQ(reg.active_pins(), 0u);
  EXPECT_EQ(reg.models_loaded(), loaded.size());
  trace.push_back(9000 + reg.swaps());
  return trace;
}

TEST(RegistryChaos, SeededStormConservesAndReproduces) {
  const auto t1 = run_storm(/*seed=*/0xE7, /*ops=*/400);
  const auto t2 = run_storm(/*seed=*/0xE7, /*ops=*/400);
  EXPECT_EQ(t1, t2) << "same seed must replay the same storm";
  const auto t3 = run_storm(/*seed=*/0x5EED, /*ops=*/400);
  EXPECT_NE(t1, t3) << "different seeds should explore different paths";
}

TEST(RegistryChaos, ConcurrentPinSoak) {
  // Pins are acquired and released from many threads while the main
  // thread loads, swaps and unloads — the registry's one-mutex contract
  // under the sanitizer presets. Totals must conserve at the end.
  ModelRegistry reg;
  add_stack(reg, "hot", 1, 1);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&reg, t] {
      Rng rng{0xAB00 + t};
      for (std::size_t i = 0; i < 300; ++i) {
        ModelPin p = reg.acquire("hot");
        if (p != nullptr && rng.below(2) == 0) {
          ModelPin copy = p;  // copies must not disturb the count
          copy.reset();
        }
      }
    });
  }
  for (std::uint64_t v = 2; v < 10; ++v) {
    add_stack(reg, "hot", v, v);
    reg.note_swap();
    reg.unload("hot", v - 1);
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.active_pins(), 0u);
  EXPECT_EQ(reg.models_loaded(), 1u);  // only version 9 remains
  EXPECT_EQ(reg.versions("hot"), (std::vector<std::uint64_t>{9}));
  EXPECT_EQ(reg.swaps(), 8u);
}

}  // namespace
