// The fault-injection framework and the resilient execution layer built
// on it: injector rules fire deterministically, adaptive_attention walks
// the flash → otf → partial_otf → fused → modular degradation chain with
// observable (profiled) fallbacks and bit-identical output, and generate()
// turns KV-cache exhaustion and mid-step kernel faults into graceful stop
// reasons instead of exceptions. See docs/robustness.md.
#include <gtest/gtest.h>

#include <sstream>

#include "core/adaptive.hpp"
#include "core/kv_cache.hpp"
#include "gpusim/profiler.hpp"
#include "nn/generation.hpp"
#include "tensor/random.hpp"

namespace {

using et::core::AttentionConfig;
using et::core::AttentionImpl;
using et::gpusim::FaultCause;
using et::gpusim::KernelFault;
using et::tensor::MatrixF;

et::gpusim::Launch make_launch(et::gpusim::Device& dev, const char* name,
                               std::size_t shared = 0) {
  return dev.launch({.name = name, .ctas = 1, .shared_bytes_per_cta = shared});
}

// ------------------------------------------------- injector mechanics ----

TEST(FaultInjector, NthLaunchFaultsExactlyOnce) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_nth_launch(2);
  make_launch(dev, "k0").finish();
  make_launch(dev, "k1").finish();
  try {
    (void)make_launch(dev, "k2");
    FAIL() << "launch 2 must fault";
  } catch (const KernelFault& f) {
    EXPECT_EQ(f.kernel(), "k2");
    EXPECT_EQ(f.cause(), FaultCause::kLaunchIndex);
  }
  // One-shot: subsequent launches are healthy again.
  make_launch(dev, "k3").finish();
  EXPECT_EQ(dev.fault_injector().faults_injected(), 1u);
  EXPECT_EQ(dev.fault_injector().launches_seen(), 4u);
  ASSERT_EQ(dev.fault_injector().fault_log().size(), 1u);
  EXPECT_EQ(dev.fault_injector().fault_log()[0].launch_index, 2u);
}

TEST(FaultInjector, NamedKernelFaultWithBudget) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_kernel("otf", /*max_faults=*/2);
  EXPECT_THROW((void)make_launch(dev, "otf_attention"), KernelFault);
  make_launch(dev, "bmm_qk").finish();  // non-matching name unaffected
  EXPECT_THROW((void)make_launch(dev, "partial_otf_qk"), KernelFault);
  // Budget exhausted: the same name now launches fine.
  make_launch(dev, "otf_attention").finish();
  EXPECT_EQ(dev.fault_injector().faults_injected(), 2u);
}

TEST(FaultInjector, AllocationThreshold) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_alloc_above(1024);
  make_launch(dev, "small", 1024).finish();  // at the threshold: fine
  try {
    (void)make_launch(dev, "big", 2048);
    FAIL() << "allocation above threshold must fault";
  } catch (const KernelFault& f) {
    EXPECT_EQ(f.cause(), FaultCause::kAllocation);
  }
}

TEST(FaultInjector, RandomFractionIsSeededAndDeterministic) {
  const auto faulted_indices = [](std::uint64_t seed) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.fault_injector().arm_random(0.3, seed);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < 100; ++i) {
      try {
        make_launch(dev, "k").finish();
      } catch (const KernelFault&) {
        out.push_back(i);
      }
    }
    return out;
  };
  const auto a = faulted_indices(7);
  EXPECT_EQ(a, faulted_indices(7)) << "same seed, same faults";
  EXPECT_NE(a, faulted_indices(8)) << "different seed, different faults";
  EXPECT_GT(a.size(), 10u);
  EXPECT_LT(a.size(), 60u);
}

TEST(FaultInjector, DisarmStopsFaulting) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_kernel("k");
  EXPECT_TRUE(dev.fault_injector().armed());
  EXPECT_THROW((void)make_launch(dev, "k"), KernelFault);
  dev.fault_injector().disarm();
  EXPECT_FALSE(dev.fault_injector().armed());
  make_launch(dev, "k").finish();
  EXPECT_EQ(dev.launch_count(), 1u);
}

TEST(SharedMemOverflow, CarriesKernelAndSizes) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const std::size_t cap = dev.spec().shared_mem_per_cta_bytes;
  try {
    (void)make_launch(dev, "greedy", cap + 1);
    FAIL() << "must overflow";
  } catch (const et::gpusim::SharedMemOverflow& o) {
    EXPECT_EQ(o.kernel(), "greedy");
    EXPECT_EQ(o.requested(), cap + 1);
    EXPECT_EQ(o.capacity(), cap);
  }
}

// ----------------------------------------------- degradation chain ----

AttentionConfig small_cfg() {
  AttentionConfig cfg;
  cfg.seq_len = 32;  // > one 16-row tile and the Br×Bc tile fits => flash
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  return cfg;
}

TEST(AdaptiveFallback, FlashFaultFallsBackToOtf) {
  const AttentionConfig cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 11);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 12);

  ASSERT_EQ(et::core::choose_attention_impl(et::gpusim::Device(), x, w, cfg),
            AttentionImpl::kFlash);

  et::gpusim::Device clean;
  et::core::ExecContext clean_ctx(clean);
  const MatrixF want = et::core::otf_attention(clean_ctx, x, w, cfg);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_kernel("flash_attention");
  const MatrixF got = et::core::adaptive_attention(ctx, x, w, cfg);

  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.flat()[i], want.flat()[i]) << "bit-identical at " << i;
  }
  ASSERT_EQ(dev.fallback_log().size(), 1u);
  EXPECT_EQ(dev.fallback_log()[0].from_impl, "flash");
  EXPECT_EQ(dev.fallback_log()[0].to_impl, "otf");
  EXPECT_EQ(dev.fallback_log()[0].kernel, "flash_attention");
  EXPECT_EQ(dev.fallback_log()[0].cause, "kernel_name");
}

TEST(AdaptiveFallback, OtfFaultFallsBackToPartialOtf) {
  // Pin the chain's entry at otf through the forced policy (the same
  // mechanism et_cli --attention uses): a fault there must degrade to
  // partial_otf, not restart selection.
  const AttentionConfig cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 11);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 12);

  et::gpusim::Device clean;
  et::core::ExecContext clean_ctx(clean);
  const MatrixF want = et::core::partial_otf_attention(clean_ctx, x, w, cfg);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::core::AdaptivePolicy policy;
  policy.forced = AttentionImpl::kOtf;
  dev.fault_injector().arm_kernel("otf_attention");
  const MatrixF got = et::core::adaptive_attention(ctx, x, w, cfg, policy);

  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.flat()[i], want.flat()[i]) << "bit-identical at " << i;
  }
  ASSERT_EQ(dev.fallback_log().size(), 1u);
  EXPECT_EQ(dev.fallback_log()[0].from_impl, "otf");
  EXPECT_EQ(dev.fallback_log()[0].to_impl, "partial_otf");
  EXPECT_EQ(dev.fallback_log()[0].kernel, "otf_attention");
  EXPECT_EQ(dev.fallback_log()[0].cause, "kernel_name");
}

TEST(AdaptiveFallback, FullChainDegradesToModularBitIdentical) {
  // Fault every fast path; the chain must land on the modular baseline
  // and return exactly what an unfaulted modular run returns.
  const AttentionConfig cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 13);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 14);

  et::gpusim::Device clean;
  et::core::ExecContext clean_ctx(clean);
  const MatrixF want = et::core::modular_attention(clean_ctx, x, w, cfg);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_kernel("flash_attention");
  dev.fault_injector().arm_kernel("otf_attention");
  dev.fault_injector().arm_kernel("partial_otf");
  dev.fault_injector().arm_kernel("trt_");
  const MatrixF got = et::core::adaptive_attention(ctx, x, w, cfg);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.flat()[i], want.flat()[i]) << "bit-identical at " << i;
  }
  ASSERT_EQ(dev.fallback_log().size(), 4u);
  EXPECT_EQ(dev.fallback_log()[0].from_impl, "flash");
  EXPECT_EQ(dev.fallback_log()[0].to_impl, "otf");
  EXPECT_EQ(dev.fallback_log()[1].from_impl, "otf");
  EXPECT_EQ(dev.fallback_log()[2].from_impl, "partial_otf");
  EXPECT_EQ(dev.fallback_log()[3].from_impl, "fused");
  EXPECT_EQ(dev.fallback_log()[3].to_impl, "modular");
}

TEST(AdaptiveFallback, FaultInModularBaselinePropagates) {
  const AttentionConfig cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 15);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 16);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  // Matches every kernel in every implementation: nothing can recover.
  dev.fault_injector().arm_kernel("");
  EXPECT_THROW((void)et::core::adaptive_attention(ctx, x, w, cfg),
               KernelFault);
}

TEST(AdaptiveFallback, ProfilerReportsFallbacks) {
  const AttentionConfig cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 17);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 18);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.fault_injector().arm_kernel("flash_attention");
  (void)et::core::adaptive_attention(ctx, x, w, cfg);

  const auto report = et::gpusim::profile(dev);
  ASSERT_EQ(report.fallbacks.size(), 1u);
  std::ostringstream os;
  et::gpusim::print_report(os, report);
  EXPECT_NE(os.str().find("fallbacks (1)"), std::string::npos);
  EXPECT_NE(os.str().find("flash -> otf"), std::string::npos);
}

TEST(AdaptiveFallback, HealthyRunRecordsNoFallback) {
  const AttentionConfig cfg = small_cfg();
  const auto w = et::core::make_dense_weights(cfg, 19);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 20);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  (void)et::core::adaptive_attention(ctx, x, w, cfg);
  EXPECT_TRUE(dev.fallback_log().empty());
  EXPECT_EQ(dev.fault_injector().faults_injected(), 0u);
}

// ----------------------------------------------- config validation ----

TEST(AttentionConfigValidation, EveryOperatorRejectsBadHeadSplit) {
  AttentionConfig good = small_cfg();
  const auto w = et::core::make_dense_weights(good, 21);
  MatrixF x(good.seq_len, good.d_model);

  AttentionConfig bad = good;
  bad.num_heads = 3;  // 32 % 3 != 0
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  EXPECT_THROW((void)et::core::modular_attention(ctx, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::fused_attention(ctx, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::otf_attention(ctx, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::partial_otf_attention(ctx, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::flash_attention(ctx, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::adaptive_attention(ctx, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::otf_cross_attention(ctx, x, x, w, bad),
               std::invalid_argument);
  EXPECT_THROW((void)et::core::flash_cross_attention(ctx, x, x, w, bad),
               std::invalid_argument);
  et::core::KVCache cache(4, good.d_model);
  MatrixF row(1, good.d_model);
  EXPECT_THROW((void)et::core::incremental_attention(ctx, row, w, bad, cache),
               std::invalid_argument);
}

TEST(AttentionConfigValidation, RejectsZeroDimsAndBadValidLen) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const AttentionConfig good = small_cfg();
  const auto w = et::core::make_dense_weights(good, 22);
  MatrixF x(good.seq_len, good.d_model);

  AttentionConfig zero = good;
  zero.num_heads = 0;
  EXPECT_THROW((void)et::core::adaptive_attention(ctx, x, w, zero),
               std::invalid_argument);
  AttentionConfig pad = good;
  pad.valid_len = good.seq_len + 1;
  EXPECT_THROW((void)et::core::otf_attention(ctx, x, w, pad),
               std::invalid_argument);
}

// ------------------------------------------------- graceful generate ----

struct TinyStack {
  et::nn::ModelConfig model;
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;

  explicit TinyStack(std::size_t num_layers = 2) {
    model.num_layers = num_layers;
    model.d_model = 32;
    model.num_heads = 2;
    model.d_ff = 64;
    for (std::size_t l = 0; l < num_layers; ++l) {
      layers.push_back(et::nn::make_dense_encoder_weights(model, 30 + l));
    }
    opt = et::nn::options_for(et::nn::Pipeline::kET, model, 1, true);
    opt.attn.precision = et::numeric::Precision::kFp32;
  }
};

et::nn::EmbedFn test_embed(std::size_t d_model) {
  return [d_model](std::int32_t token, std::size_t position) {
    MatrixF row(1, d_model);
    for (std::size_t c = 0; c < d_model; ++c) {
      row(0, c) = 0.01f * static_cast<float>((token + 1) % 7) +
                  0.001f * static_cast<float>((position + c) % 11);
    }
    return row;
  };
}

et::nn::SelectFn test_select() {
  return [](const MatrixF& h) {
    return static_cast<std::int32_t>(h(0, 0) > 0.0f ? 1 : 2);
  };
}

TEST(Generate, CompletesWithMaxTokens) {
  TinyStack s;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&s.layers, s.opt, /*max_context=*/16));
  const auto result = et::nn::generate(ctx, session, 0, 5,
                                       test_embed(s.model.d_model),
                                       test_select());
  EXPECT_EQ(result.stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(result.tokens.size(), 5u);
}

TEST(Generate, StopsCleanlyWhenKvCacheFills) {
  TinyStack s;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&s.layers, s.opt, /*max_context=*/3));
  const auto result = et::nn::generate(ctx, session, 0, 10,
                                       test_embed(s.model.d_model),
                                       test_select());
  EXPECT_EQ(result.stop_reason, et::nn::StopReason::kKvCacheFull);
  // All three steps that fit the cache produced (and kept) their tokens.
  EXPECT_EQ(result.tokens.size(), 3u);
  EXPECT_EQ(session.context_length(), 3u);
}

TEST(Generate, CapacityOneCacheReturnsInsteadOfThrowing) {
  // The acceptance scenario: a capacity-1 cache must yield exactly one
  // token and a kv_cache_full stop, never a std::length_error.
  TinyStack s;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&s.layers, s.opt, /*max_context=*/1));
  const auto result = et::nn::generate(ctx, session, 0, 10,
                                       test_embed(s.model.d_model),
                                       test_select());
  EXPECT_EQ(result.stop_reason, et::nn::StopReason::kKvCacheFull);
  EXPECT_EQ(result.tokens.size(), 1u);
}

TEST(Generate, KernelFaultMidGenerationKeepsEarlierTokens) {
  TinyStack s;
  // Count the launches one healthy step costs, to aim the fault at the
  // middle of the third step.
  std::size_t launches_per_step = 0;
  {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    et::nn::GenerationSession session(et::nn::Model(&s.layers, s.opt, 16));
    (void)session.step(ctx, test_embed(s.model.d_model)(0, 0));
    launches_per_step = dev.launch_count();
  }

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&s.layers, s.opt, 16));
  dev.fault_injector().arm_nth_launch(2 * launches_per_step +
                                      launches_per_step / 2);
  const auto result = et::nn::generate(ctx, session, 0, 10,
                                       test_embed(s.model.d_model),
                                       test_select());
  EXPECT_EQ(result.stop_reason, et::nn::StopReason::kKernelFault);
  EXPECT_FALSE(result.fault_kernel.empty());
  EXPECT_EQ(result.tokens.size(), 2u) << "tokens before the fault survive";
  // The faulted step rolled its cache appends back: two clean steps.
  EXPECT_EQ(session.context_length(), 2u);
}

TEST(GenerationSession, StepIsAtomicUnderFaults) {
  TinyStack s;
  const auto embed = test_embed(s.model.d_model);

  // Reference: two clean steps.
  et::gpusim::Device ref_dev;
  et::core::ExecContext ref_dev_ctx(ref_dev);
  et::nn::GenerationSession ref(et::nn::Model(&s.layers, s.opt, 8));
  (void)ref.step(ref_dev_ctx, embed(0, 0));
  const MatrixF want = ref.step(ref_dev_ctx, embed(1, 1));

  // Launches one healthy step costs, to aim a fault inside layer 1.
  std::size_t launches_per_step = 0;
  {
    et::gpusim::Device probe;
    et::core::ExecContext probe_ctx(probe);
    et::nn::GenerationSession scratch(et::nn::Model(&s.layers, s.opt, 8));
    (void)scratch.step(probe_ctx, embed(0, 0));
    launches_per_step = probe.launch_count();
  }
  const std::size_t per_layer = launches_per_step / s.layers.size();

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&s.layers, s.opt, 8));
  (void)session.step(ctx, embed(0, 0));
  ASSERT_EQ(session.context_length(), 1u);

  // Fault partway through layer 1 of the next step: layer 0 has already
  // appended its K/V row when the fault fires, so a missing rollback
  // would leave the caches at inconsistent lengths.
  dev.fault_injector().arm_nth_launch(per_layer + 1);
  EXPECT_THROW((void)session.step(ctx, embed(1, 1)), KernelFault);
  EXPECT_EQ(session.context_length(), 1u)
      << "failed step must roll back every layer's cache";

  // Retrying the same step now succeeds and matches the clean run bit for
  // bit — the failed attempt left no trace in the session.
  const MatrixF got = session.step(ctx, embed(1, 1));
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.flat()[i], want.flat()[i]);
  }
  EXPECT_EQ(session.context_length(), 2u);
}

TEST(KVCache, TruncateRollsBackAppends) {
  et::core::KVCache cache(4, 2);
  const float r[] = {1, 2};
  cache.append(r, r);
  cache.append(r, r);
  cache.truncate(1);
  EXPECT_EQ(cache.used(), 1u);
  cache.truncate(3);  // beyond used: no-op
  EXPECT_EQ(cache.used(), 1u);
}

}  // namespace
