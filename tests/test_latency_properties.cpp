// Properties the latency model must satisfy for the paper's comparative
// claims to be trustworthy: monotonicity in problem size, monotone benefit
// of sparsity, stable orderings, and a crossover that actually exists.
#include <gtest/gtest.h>

#include "core/attention.hpp"
#include "pruning/criteria.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "train/model.hpp"

namespace {

using et::nn::Pipeline;
using et::pruning::Strategy;
using et::tensor::MatrixF;

double encoder_us(Pipeline p, const et::nn::EncoderWeights& w,
                  const et::nn::ModelConfig& model, std::size_t seq) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  MatrixF x(seq, model.d_model);
  (void)et::nn::encoder_forward(ctx, x, w,
                                et::nn::options_for(p, model, seq));
  return dev.total_time_us();
}

class PipelineSweep : public ::testing::TestWithParam<Pipeline> {};

TEST_P(PipelineSweep, LatencyMonotoneInSequenceLength) {
  const auto model = et::nn::bert_base();
  const auto w = et::nn::make_dense_encoder_weights(model, 1);
  double prev = 0.0;
  for (const std::size_t seq : {32u, 64u, 128u, 256u, 512u}) {
    const double us = encoder_us(GetParam(), w, model, seq);
    EXPECT_GT(us, prev) << "seq " << seq;
    prev = us;
  }
}

TEST_P(PipelineSweep, KernelCountIndependentOfSequenceLength) {
  const auto model = et::nn::bert_base();
  const auto w = et::nn::make_dense_encoder_weights(model, 2);
  // E.T. switches full->partial OTF across this range (+1 kernel), so
  // compare within the short regime only for it.
  const bool is_et = GetParam() == Pipeline::kET;
  std::size_t counts[2];
  const std::size_t seqs[2] = {64u, is_et ? 192u : 384u};
  for (int i = 0; i < 2; ++i) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    MatrixF x(seqs[i], model.d_model);
    (void)et::nn::encoder_forward(
        ctx, x, w, et::nn::options_for(GetParam(), model, seqs[i]));
    counts[i] = dev.launch_count();
  }
  EXPECT_EQ(counts[0], counts[1]);
}

INSTANTIATE_TEST_SUITE_P(Pipelines, PipelineSweep,
                         ::testing::Values(Pipeline::kModular,
                                           Pipeline::kTensorRT,
                                           Pipeline::kFasterTransformer,
                                           Pipeline::kET));

class SparsitySweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(SparsitySweep, EtLatencyNonIncreasingWithRatio) {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.d_ff = 3072;
  cfg.num_layers = 1;
  et::train::TransformerModel model(cfg, 3);
  const auto bert = et::nn::bert_base();

  double prev = 1e18;
  for (const double ratio : {0.4, 0.6, 0.8, 0.95}) {
    const auto masks = et::pruning::compute_layer_masks(model.layers()[0],
                                                        GetParam(), ratio);
    const auto w =
        et::pruning::deploy_layer(model.layers()[0], masks, GetParam());
    const double us = encoder_us(Pipeline::kET, w, bert, 128);
    EXPECT_LE(us, prev * 1.02)  // small tolerance for rounding in masks
        << to_string(GetParam()) << " @ " << ratio;
    prev = us;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, SparsitySweep,
                         ::testing::Values(Strategy::kColumn, Strategy::kTile,
                                           Strategy::kAttentionAware,
                                           Strategy::kIrregular));

TEST(LatencyProperties, PipelineOrderingStableAcrossSeqLens) {
  const auto model = et::nn::bert_base();
  const auto w = et::nn::make_dense_encoder_weights(model, 4);
  for (const std::size_t seq : {64u, 128u, 256u}) {
    const double pytorch = encoder_us(Pipeline::kModular, w, model, seq);
    const double trt = encoder_us(Pipeline::kTensorRT, w, model, seq);
    const double ft = encoder_us(Pipeline::kFasterTransformer, w, model, seq);
    const double et_us = encoder_us(Pipeline::kET, w, model, seq);
    EXPECT_GT(pytorch, trt) << seq;
    EXPECT_GE(trt, ft) << seq;
    EXPECT_GE(ft, et_us) << seq;
  }
}

TEST(LatencyProperties, FullPartialCrossoverExistsOnce) {
  // full OTF wins short, partial wins long, and the sign changes exactly
  // once over the sweep — the premise of the §3.2 adaptive design.
  et::core::AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 5);

  int sign_changes = 0;
  bool prev_full_wins = true;
  bool first = true;
  for (std::size_t seq = 64; seq <= 512; seq += 32) {
    cfg.seq_len = seq;
    MatrixF x(seq, 768);
    et::gpusim::Device d1, d2;
    et::core::ExecContext ctx1(d1), ctx2(d2);
    d1.set_traffic_only(true);
    d2.set_traffic_only(true);
    (void)et::core::otf_attention(ctx1, x, w, cfg);
    (void)et::core::partial_otf_attention(ctx2, x, w, cfg);
    const bool full_wins = d1.total_time_us() <= d2.total_time_us();
    if (!first && full_wins != prev_full_wins) ++sign_changes;
    if (first && !full_wins) {
      ADD_FAILURE() << "full OTF must win at seq 64";
    }
    prev_full_wins = full_wins;
    first = false;
  }
  EXPECT_EQ(sign_changes, 1) << "exactly one crossover";
}

TEST(LatencyProperties, PrecomputeRemovesOneGemmLatency) {
  // With tile-pruned Q/K (so the dense fused-QKV shortcut is out of play),
  // the precomputed path trades the W_V and W_O GEMMs for one bigger
  // GEMM: exactly one fewer kernel launch.
  et::core::AttentionConfig cfg;
  cfg.seq_len = 64;
  cfg.d_model = 128;
  cfg.num_heads = 4;
  auto w = et::core::make_dense_weights(cfg, 6);
  const MatrixF wq = std::get<et::sparse::DenseWeight>(w.wq).matrix();
  w.wq = et::sparse::make_weight(et::sparse::PruneMethod::kTile, wq,
                                 et::pruning::tile_mask(wq, 0.5));
  MatrixF x(64, 128);

  et::gpusim::Device without, with_pre;
  et::core::ExecContext without_ctx(without), with_pre_ctx(with_pre);
  without.set_traffic_only(true);
  with_pre.set_traffic_only(true);
  (void)et::core::otf_attention(without_ctx, x, w, cfg);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  (void)et::core::otf_attention(with_pre_ctx, x, w, cfg);
  EXPECT_EQ(with_pre.launch_count() + 1, without.launch_count());
}

TEST(LatencyProperties, SharedMemViolationSurfacesAsException) {
  // Directly calling the full OTF operator past the device's capacity must
  // throw, not silently mis-model. 8 KB fits the small-tile GEMMs and the
  // (shrunken) partial-OTF row tiles, but not Eq. 6's full score row.
  et::gpusim::DeviceSpec tiny;
  tiny.shared_mem_per_cta_bytes = 8 * 1024;
  et::gpusim::Device dev(tiny);
  et::core::ExecContext ctx(dev);
  et::core::AttentionConfig cfg;
  cfg.seq_len = 256;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  const auto w = et::core::make_dense_weights(cfg, 7);
  MatrixF x(256, 64);
  ASSERT_FALSE(dev.fits_shared(et::core::otf_shared_bytes(cfg)));
  EXPECT_THROW((void)et::core::otf_attention(ctx, x, w, cfg),
               et::gpusim::SharedMemOverflow);
  // The adaptive dispatcher routes around it.
  EXPECT_NO_THROW((void)et::core::adaptive_attention(ctx, x, w, cfg));
}

}  // namespace
