// Differential-testing harness for batched generation (docs/serving.md):
// the same workload is decoded twice — N independent nn::generate runs
// (the sequential reference) and one BatchedGenerationScheduler run — and
// the two transcripts must match BIT FOR BIT.
//
// Bit-identity is checkable because the embed/select closures are
// deterministic hash functions: embed() derives every input row from
// (seed, token, position, column), and select() folds the raw IEEE-754
// bits of the hidden state into a 64-bit hash before reducing it to a
// token. Each request logs those hashes, so two runs agree on the hash
// stream iff every hidden state they produced is bit-identical — a float
// that differs in its last ulp flips the hash, the token stream, and the
// test. Tolerance-based comparison would hide exactly the class of bug
// (reordered reductions, batch-dependent math) this harness exists to
// catch.
//
// The quantized decode path adds ONE deliberately-lossy axis: int8
// weights vs the fp32 reference. For that comparison only, the harness
// offers a scripted select (token path independent of the hidden state,
// so both precisions decode the same sequence) plus expect_within_steps,
// a bounded-error check measured in quantization steps. Every lossless
// axis — int8-vs-int8 across thread counts, schedulers, or reruns —
// stays on expect_bit_identical.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exec_context.hpp"
#include "nn/batched_generation.hpp"
#include "nn/generation.hpp"
#include "serving/server.hpp"

namespace et::diff {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Map a hash to [-0.5, 0.5) — modest magnitudes keep the decode
/// numerically tame across many steps.
inline float unit_float(std::uint64_t h) {
  return static_cast<float>(h >> 40) / static_cast<float>(1ull << 24) - 0.5f;
}

/// Deterministic embedding: row entries depend only on
/// (seed, token, position, column) — no shared state, safe to call from
/// interleaved batched ticks in any order.
inline nn::EmbedFn make_embed(std::size_t d_model, std::uint64_t seed) {
  return [d_model, seed](std::int32_t token, std::size_t position) {
    tensor::MatrixF row(1, d_model);
    const std::uint64_t base =
        splitmix64(seed ^ (static_cast<std::uint64_t>(token) << 32) ^
                   static_cast<std::uint64_t>(position));
    for (std::size_t c = 0; c < d_model; ++c) {
      row(0, c) = unit_float(splitmix64(base + c));
    }
    return row;
  };
}

/// Bit-sensitive selection: hashes the exact float bits of the hidden
/// state (appending each hash to `log` when given), then reduces to a
/// token in [0, vocab).
inline nn::SelectFn make_select(std::int32_t vocab,
                                std::vector<std::uint64_t>* log = nullptr) {
  return [vocab, log](const tensor::MatrixF& hidden) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (float v : hidden.flat()) {
      h = splitmix64(h ^ std::bit_cast<std::uint32_t>(v));
    }
    if (log != nullptr) log->push_back(h);
    return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  };
}

/// Precision-independent scripted selection for the lossy sweep axis: the
/// token emitted at step s is a pure hash of (seed, s) — never of the
/// hidden state — so an FP32 run and an INT8 run of the same request
/// follow the SAME token path and their logged hidden states line up step
/// for step. Still logs the bit-hash stream (int8-vs-int8 comparisons
/// across threads or schedulers stay exactly checkable) and, when
/// `values` is given, a copy of each observed hidden state for
/// expect_within_steps.
inline nn::SelectFn make_scripted_select(
    std::int32_t vocab, std::uint64_t seed,
    std::vector<std::uint64_t>* log = nullptr,
    std::vector<tensor::MatrixF>* values = nullptr) {
  auto step = std::make_shared<std::size_t>(0);
  return [vocab, seed, log, values, step](const tensor::MatrixF& hidden) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (float v : hidden.flat()) {
      h = splitmix64(h ^ std::bit_cast<std::uint32_t>(v));
    }
    if (log != nullptr) log->push_back(h);
    if (values != nullptr) values->push_back(hidden);
    const std::uint64_t t =
        splitmix64(seed ^ static_cast<std::uint64_t>((*step)++));
    return static_cast<std::int32_t>(t % static_cast<std::uint64_t>(vocab));
  };
}

/// One generation job in harness terms; expanded to a GenerationRequest
/// (batched run) or a generate() call (sequential run) with per-request
/// embed/select closures derived from `seed`.
struct Request {
  std::int32_t first_token = 0;
  std::size_t max_new_tokens = 8;
  std::int32_t eos_token = nn::kNoEosToken;
  std::uint64_t seed = 0;
  /// Optional multi-token prompt (overrides first_token when non-empty)
  /// — the prefix-sharing axis of the sweep. Requests sharing a
  /// prefix_group MUST also share `seed` (identical embed closures); the
  /// harness mirrors the production contract, it does not check it.
  std::vector<std::int32_t> prompt;
  std::uint64_t prefix_group = core::kNoPrefixGroup;
};

/// A request's transcript: the API-visible result plus the hidden-state
/// bit-hash stream select() observed.
struct Outcome {
  nn::GenerationResult result;
  std::vector<std::uint64_t> hidden_hashes;
  /// Populated only by scripted-select runs: the raw hidden states, for
  /// bounded-error comparison against a different-precision run.
  std::vector<tensor::MatrixF> hidden_values;
};

/// Sequential reference: one fresh GenerationSession + nn::generate per
/// request, in submission order. `threads` sizes the ExecContext pool;
/// the default of 1 is the canonical serial reference, and any other
/// value must reproduce it bit for bit (the ExecContext determinism
/// contract — the threads axis of the differential sweep). `format`
/// forwards to the nn::Model handle (kInt8 runs the quantized decode);
/// `scripted` swaps in the precision-independent select and logs hidden
/// values for bounded-error comparison.
inline std::vector<Outcome> run_sequential(
    gpusim::Device& dev, const std::vector<nn::EncoderWeights>& layers,
    const nn::EncoderOptions& opt, std::size_t max_context,
    const std::vector<Request>& requests, std::int32_t vocab,
    std::size_t threads = 1, std::optional<nn::WeightFormat> format = {},
    bool scripted = false) {
  core::ExecContext ctx(dev, threads);
  const nn::Model model(&layers, opt, max_context, format);
  std::vector<Outcome> outcomes(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    nn::GenerationSession session(model);
    nn::DecodeParams params;
    params.first_token = r.first_token;
    params.prompt_tokens = r.prompt;
    params.max_new_tokens = r.max_new_tokens;
    params.embed = make_embed(opt.attn.d_model, r.seed);
    params.select =
        scripted ? make_scripted_select(vocab, r.seed,
                                        &outcomes[i].hidden_hashes,
                                        &outcomes[i].hidden_values)
                 : make_select(vocab, &outcomes[i].hidden_hashes);
    params.eos_token = r.eos_token;
    outcomes[i].result = nn::generate(ctx, session, params);
  }
  return outcomes;
}

struct BatchedRun {
  std::vector<Outcome> outcomes;
  std::size_t ticks = 0;
  std::size_t batched_ticks = 0;
  std::size_t per_slot_fallback_ticks = 0;
};

/// Batched run: submit everything up front, drain the scheduler. The
/// device is caller-provided so tests can arm its FaultInjector first.
/// `threads` sizes the ExecContext pool the scheduler ticks run on; every
/// thread count must produce the same transcript bit for bit.
inline BatchedRun run_batched(gpusim::Device& dev,
                              const std::vector<nn::EncoderWeights>& layers,
                              const nn::EncoderOptions& opt,
                              std::size_t max_batch, std::size_t max_context,
                              const std::vector<Request>& requests,
                              std::int32_t vocab, std::size_t threads = 1,
                              core::PagedKVOptions kv = {},
                              std::optional<nn::WeightFormat> format = {},
                              bool scripted = false) {
  core::ExecContext ctx(dev, threads);
  BatchedRun run;
  run.outcomes.resize(requests.size());
  nn::BatchedGenerationScheduler sched(
      nn::Model(&layers, opt, max_context, format), max_batch, kv);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    nn::GenerationRequest req;
    req.first_token = r.first_token;
    req.prompt_tokens = r.prompt;
    req.prefix_group = r.prefix_group;
    req.max_new_tokens = r.max_new_tokens;
    req.embed = make_embed(opt.attn.d_model, r.seed);
    req.select =
        scripted ? make_scripted_select(vocab, r.seed,
                                        &run.outcomes[i].hidden_hashes,
                                        &run.outcomes[i].hidden_values)
                 : make_select(vocab, &run.outcomes[i].hidden_hashes);
    req.eos_token = r.eos_token;
    const std::size_t id = sched.submit(std::move(req));
    EXPECT_EQ(id, i);
  }
  const auto results = sched.run(ctx);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    run.outcomes[i].result = results[i];
  }
  run.ticks = sched.ticks();
  run.batched_ticks = sched.batched_ticks();
  run.per_slot_fallback_ticks = sched.per_slot_fallback_ticks();
  return run;
}

/// One scripted arrival for the serving runtime: `request` becomes a
/// serving::Request submitted right before the server's tick number
/// `tick` runs (ticks the script skips still execute, so queued work
/// drains between arrivals).
struct Arrival {
  std::size_t tick = 0;
  Request request;
  serving::Priority priority = serving::Priority::kNormal;
  std::size_t queue_budget = serving::kNoBudget;
  std::size_t total_budget = serving::kNoBudget;
  std::size_t retry_budget = 0;    ///< kernel-fault retries allowed
  std::size_t retry_backoff = 0;   ///< ticks between fault and re-admission
};

struct ServedRun {
  std::vector<Outcome> outcomes;  // indexed by arrival order
  std::vector<serving::RequestHandle> handles;
  std::size_t ticks = 0;
  std::string metrics_json;  ///< full snapshot at drain (determinism probe)
  /// The same snapshot as named fields, for comparisons that must exempt
  /// specific scalars (the sharing-differential exempts the four
  /// sharing-observability gauges and nothing else).
  std::vector<serving::ScalarField> scalars;
};

/// Drive an InferenceServer through a scripted arrival sequence and
/// drain it. Outcomes are indexed by arrival order (== handle id order).
/// `threads` sizes the ExecContext pool; every thread count must
/// reproduce the same transcripts bit for bit — the serving axis of the
/// differential sweep (docs/serving.md).
inline ServedRun run_served(gpusim::Device& dev,
                            const std::vector<nn::EncoderWeights>& layers,
                            const nn::EncoderOptions& opt,
                            std::size_t max_context,
                            const serving::ServerConfig& cfg,
                            const std::vector<Arrival>& arrivals,
                            std::int32_t vocab, std::size_t threads = 1) {
  core::ExecContext ctx(dev, threads);
  serving::InferenceServer server(nn::Model(&layers, opt, max_context), cfg);
  ServedRun run;
  run.outcomes.resize(arrivals.size());
  std::size_t next = 0;  // arrivals must be sorted by tick
  while (next < arrivals.size() || !server.idle()) {
    while (next < arrivals.size() && arrivals[next].tick <= server.now()) {
      const Arrival& a = arrivals[next];
      serving::Request req;
      req.first_token = a.request.first_token;
      req.prompt_tokens = a.request.prompt;
      req.prefix_group = a.request.prefix_group;
      req.max_new_tokens = a.request.max_new_tokens;
      req.embed = make_embed(opt.attn.d_model, a.request.seed);
      req.select = make_select(vocab, &run.outcomes[next].hidden_hashes);
      req.eos_token = a.request.eos_token;
      req.priority = a.priority;
      req.queue_budget_ticks = a.queue_budget;
      req.total_budget_ticks = a.total_budget;
      req.retry_budget = a.retry_budget;
      req.retry_backoff_ticks = a.retry_backoff;
      run.handles.push_back(server.submit(req));
      ++next;
    }
    server.tick(ctx);
  }
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    run.outcomes[i].result = server.result(run.handles[i]);
  }
  run.ticks = server.now();
  run.metrics_json = server.metrics().json(0);
  run.scalars = server.metrics().scalars();
  return run;
}

/// The four scalars prefix sharing is ALLOWED to change — its own
/// observability gauges. Everything else in the snapshot (every counter,
/// stop-reason tally, latency histogram moment, the kv_bytes capacity
/// gauge...) must be bit-identical with sharing on or off: sharing buys
/// memory, never different behavior.
inline const std::vector<std::string>& sharing_only_scalars() {
  static const std::vector<std::string> names = {
      "kv_bytes_used_peak", "prefix_hits", "prefix_shared_tokens",
      "cow_splits"};
  return names;
}

/// Compare two scalar snapshots field by field, exempting `except` by
/// name. Field NAMES and ORDER must match exactly (both runs come from
/// the same server build); exempted fields may differ in value only.
inline void expect_scalars_identical_except(
    const std::vector<serving::ScalarField>& a,
    const std::vector<serving::ScalarField>& b,
    const std::vector<std::string>& except) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].name, b[i].name) << "scalar order diverged at " << i;
    bool exempt = false;
    for (const std::string& n : except) exempt = exempt || n == a[i].name;
    if (!exempt) {
      EXPECT_EQ(a[i].value, b[i].value) << "scalar " << a[i].name;
    }
  }
}

/// The differential assertion: token streams, stop reasons, fault
/// kernels AND hidden-state bit hashes all equal.
inline void expect_bit_identical(const std::vector<Outcome>& sequential,
                                 const std::vector<Outcome>& batched) {
  ASSERT_EQ(sequential.size(), batched.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto& s = sequential[i];
    const auto& b = batched[i];
    EXPECT_EQ(s.result.tokens, b.result.tokens) << "request " << i;
    EXPECT_EQ(s.result.stop_reason, b.result.stop_reason)
        << "request " << i << ": sequential "
        << to_string(s.result.stop_reason) << " vs batched "
        << to_string(b.result.stop_reason);
    EXPECT_EQ(s.result.fault_kernel, b.result.fault_kernel) << "request " << i;
    EXPECT_EQ(s.hidden_hashes, b.hidden_hashes)
        << "request " << i << ": hidden states are not bit-identical";
  }
}

/// The bounded-error assertion for the ONE lossy axis (int8 weights vs
/// the fp32 reference, both run with the scripted select so their token
/// paths are identical by construction): token streams and stop reasons
/// still match EXACTLY, and every hidden state matches within `max_steps`
/// quantization steps, where one step is amax(reference state)/127 — the
/// resolution of the symmetric int8 scheme (docs/quantization.md
/// documents the bound). Never use this where expect_bit_identical
/// applies; tolerance would hide the bugs the harness exists to catch.
inline void expect_within_steps(const std::vector<Outcome>& reference,
                                const std::vector<Outcome>& lossy,
                                double max_steps) {
  ASSERT_EQ(reference.size(), lossy.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const auto& r = reference[i];
    const auto& l = lossy[i];
    EXPECT_EQ(r.result.tokens, l.result.tokens)
        << "request " << i << ": scripted token paths diverged";
    EXPECT_EQ(r.result.stop_reason, l.result.stop_reason) << "request " << i;
    ASSERT_EQ(r.hidden_values.size(), l.hidden_values.size())
        << "request " << i << " (were both runs scripted?)";
    for (std::size_t s = 0; s < r.hidden_values.size(); ++s) {
      const tensor::MatrixF& rv = r.hidden_values[s];
      const tensor::MatrixF& lv = l.hidden_values[s];
      ASSERT_EQ(rv.rows(), lv.rows());
      ASSERT_EQ(rv.cols(), lv.cols());
      float amax = 0.0f;
      for (float v : rv.flat()) amax = std::max(amax, std::abs(v));
      const double step = amax > 0.0f ? amax / 127.0 : 1.0;
      double worst = 0.0;
      for (std::size_t rr = 0; rr < rv.rows(); ++rr) {
        for (std::size_t cc = 0; cc < rv.cols(); ++cc) {
          worst = std::max(
              worst, std::abs(static_cast<double>(rv(rr, cc)) - lv(rr, cc)) /
                         step);
        }
      }
      EXPECT_LE(worst, max_steps)
          << "request " << i << " decode step " << s << ": hidden state is "
          << worst << " quantization steps from the fp32 reference";
    }
  }
}

}  // namespace et::diff
