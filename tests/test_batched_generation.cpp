// BatchedGenerationScheduler: slot-based batched decoding must be
// BIT-IDENTICAL to N independent nn::generate runs — across shapes,
// pruned formats, retirement causes (eos / max_tokens / kv_cache_full /
// kernel_fault) and injected faults mid-batch. See tests/differential.hpp
// for the harness and docs/serving.md for the methodology.
#include <gtest/gtest.h>

#include <ostream>

#include "differential.hpp"
#include "gpusim/profiler.hpp"
#include "pruning/criteria.hpp"
#include "tensor/random.hpp"

namespace {

using et::diff::Outcome;
using et::diff::Request;

constexpr std::int32_t kVocab = 257;

struct Model {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

Model make_model(std::size_t num_layers, std::size_t d_model,
                 std::size_t num_heads, std::size_t max_context,
                 std::uint64_t seed, bool prune_wq) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = num_layers;
  cfg.d_model = d_model;
  cfg.num_heads = num_heads;
  cfg.d_ff = 2 * d_model;

  Model m;
  for (std::size_t l = 0; l < num_layers; ++l) {
    auto w = et::nn::make_dense_encoder_weights(cfg, seed + l);
    if (prune_wq) {
      const auto& wq =
          std::get<et::sparse::DenseWeight>(w.attn.wq).matrix();
      w.attn.wq = et::sparse::make_weight(et::sparse::PruneMethod::kTile, wq,
                                          et::pruning::tile_mask(wq, 0.5));
    }
    m.layers.push_back(std::move(w));
  }
  m.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, max_context,
                              /*causal=*/true);
  m.opt.attn.precision = et::numeric::Precision::kFp32;
  return m;
}

// ---------------------------------------------------------------------------
// Differential sweep: batch-of-N vs N sequential runs, bit for bit.
// ---------------------------------------------------------------------------
struct SweepCase {
  std::size_t num_heads;
  std::size_t max_new_tokens;
  bool prune_wq;
  std::size_t num_requests;
  std::size_t max_batch;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << "heads=" << c.num_heads << " tokens=" << c.max_new_tokens
            << (c.prune_wq ? " tile-pruned" : " dense") << " requests="
            << c.num_requests << " max_batch=" << c.max_batch;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
#ifdef ET_DIFF_SWEEP_DENSE
  // Dense sweep (-DET_DIFF_SWEEP_DENSE=ON): the full cross product.
  for (std::size_t heads : {1, 2, 4}) {
    for (std::size_t tokens : {1, 3, 5, 9}) {
      for (bool prune : {false, true}) {
        cases.push_back({heads, tokens, prune, 4, 3});
        cases.push_back({heads, tokens, prune, 5, 2});
      }
    }
  }
#else
  // Default sweep: every dimension varied at least once, batch > requests
  // (idle slots), batch < requests (backfill), the per-slot N=1 path, and
  // the tile-pruned projection path.
  cases.push_back({2, 5, false, 4, 3});
  cases.push_back({1, 1, false, 3, 3});
  cases.push_back({4, 9, false, 5, 2});
  cases.push_back({2, 3, false, 2, 4});
  cases.push_back({2, 4, false, 1, 2});
  cases.push_back({2, 5, true, 4, 3});
  cases.push_back({4, 3, true, 3, 2});
#endif
  return cases;
}

class DifferentialSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DifferentialSweep, BatchedEqualsSequentialBitForBit) {
  const SweepCase& c = GetParam();
  const std::size_t max_context = c.max_new_tokens + 2;
  const Model m = make_model(2, c.num_heads * 16, c.num_heads, max_context,
                             40 + c.num_heads, c.prune_wq);

  std::vector<Request> requests;
  for (std::size_t i = 0; i < c.num_requests; ++i) {
    requests.push_back({static_cast<std::int32_t>(i + 1), c.max_new_tokens,
                        et::nn::kNoEosToken, 90 + i});
  }

  et::gpusim::Device seq_dev, batch_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto batched = et::diff::run_batched(
      batch_dev, m.layers, m.opt, c.max_batch, max_context, requests, kVocab);

  et::diff::expect_bit_identical(sequential, batched.outcomes);
  for (const auto& o : batched.outcomes) {
    EXPECT_EQ(o.result.stop_reason, et::nn::StopReason::kMaxTokens);
    EXPECT_EQ(o.result.tokens.size(), c.max_new_tokens);
  }
  EXPECT_GE(batched.ticks, c.max_new_tokens);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DifferentialSweep,
                         ::testing::ValuesIn(sweep_cases()));

// ---------------------------------------------------------------------------
// Retirement causes beyond the happy path.
// ---------------------------------------------------------------------------
TEST(BatchedGeneration, KvCacheFullStopsBothPathsIdentically) {
  const std::size_t max_context = 4;
  const Model m = make_model(2, 32, 2, max_context, 7, false);
  const std::vector<Request> requests = {
      {1, 10, et::nn::kNoEosToken, 1},
      {2, 10, et::nn::kNoEosToken, 2},
      {3, 2, et::nn::kNoEosToken, 3},  // finishes before the cache fills
  };

  et::gpusim::Device seq_dev, batch_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto batched = et::diff::run_batched(batch_dev, m.layers, m.opt, 3,
                                             max_context, requests, kVocab);

  et::diff::expect_bit_identical(sequential, batched.outcomes);
  EXPECT_EQ(batched.outcomes[0].result.stop_reason,
            et::nn::StopReason::kKvCacheFull);
  EXPECT_EQ(batched.outcomes[0].result.tokens.size(), max_context);
  EXPECT_EQ(batched.outcomes[2].result.stop_reason,
            et::nn::StopReason::kMaxTokens);
}

TEST(BatchedGeneration, EosRetiresSlotIdenticallyToSequential) {
  // vocab 3 makes the eos token land within a handful of steps; the
  // emission itself is kept and both paths must agree on where it fell.
  const std::int32_t vocab = 3, eos = 1;
  const std::size_t max_context = 40;
  const Model m = make_model(2, 32, 2, max_context, 11, false);
  const std::vector<Request> requests = {
      {5, 32, eos, 21}, {6, 32, eos, 22}, {7, 32, eos, 23}};

  et::gpusim::Device seq_dev, batch_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, vocab);
  const auto batched = et::diff::run_batched(batch_dev, m.layers, m.opt, 3,
                                             max_context, requests, vocab);

  et::diff::expect_bit_identical(sequential, batched.outcomes);
  for (const auto& o : batched.outcomes) {
    ASSERT_EQ(o.result.stop_reason, et::nn::StopReason::kEos);
    EXPECT_EQ(o.result.tokens.back(), eos);
  }
}

TEST(BatchedGeneration, BackfillAdmitsQueuedRequestsAsSlotsRetire) {
  // 7 requests of staggered lengths through 2 slots: retirement frees a
  // slot mid-run and the queue backfills it — results still bit-identical
  // and ordered by submission id.
  const std::size_t max_context = 16;
  const Model m = make_model(2, 32, 2, max_context, 13, false);
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 7; ++i) {
    requests.push_back({static_cast<std::int32_t>(i), 2 + i % 4,
                        et::nn::kNoEosToken, 70 + i});
  }

  et::gpusim::Device seq_dev, batch_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto batched = et::diff::run_batched(batch_dev, m.layers, m.opt, 2,
                                             max_context, requests, kVocab);

  et::diff::expect_bit_identical(sequential, batched.outcomes);
  EXPECT_GT(batched.batched_ticks, 0u);
}

// ---------------------------------------------------------------------------
// Faults mid-batch (satellite of docs/robustness.md's truncate-on-fault).
// ---------------------------------------------------------------------------
TEST(BatchedGenerationFaults, SharedKernelFaultFallsBackPerSlotBitIdentically) {
  // One fault in the shared batched q/k/v GEMM: the tick rolls every slot
  // back and degrades to per-slot stepping. No slot retires, nothing
  // diverges — the fallback only costs time.
  const std::size_t max_context = 8;
  const Model m = make_model(2, 32, 2, max_context, 17, false);
  const std::vector<Request> requests = {
      {1, 5, et::nn::kNoEosToken, 31}, {2, 5, et::nn::kNoEosToken, 32},
      {3, 5, et::nn::kNoEosToken, 33}};

  et::gpusim::Device seq_dev, batch_dev;
  batch_dev.fault_injector().arm_kernel("gen_qkv_batched", 1);

  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto batched = et::diff::run_batched(batch_dev, m.layers, m.opt, 3,
                                             max_context, requests, kVocab);

  et::diff::expect_bit_identical(sequential, batched.outcomes);
  EXPECT_GE(batched.per_slot_fallback_ticks, 1u);
  ASSERT_FALSE(batch_dev.fallback_log().empty());
  const auto& fb = batch_dev.fallback_log().front();
  EXPECT_EQ(fb.from_impl, "batched_decode");
  EXPECT_EQ(fb.to_impl, "per_slot_decode");
  EXPECT_EQ(fb.slot, et::gpusim::kNoSlot);
}

TEST(BatchedGenerationFaults, NthLaunchFaultRetiresOnlyTheFaultedSlot) {
  // Satellite 3: locate (from a clean run's slot-attributed history) the
  // launch index of slot 1's attention kernel in its SECOND tick, arm the
  // injector to fault exactly that launch on a fresh device, and decode
  // again. Only slot 1 may stop (kernel_fault, tokens a strict prefix);
  // slots 0 and 2 must still be bit-identical to the sequential runs.
  const std::size_t max_context = 10;
  const Model m = make_model(2, 32, 2, max_context, 19, false);
  const std::vector<Request> requests = {
      {1, 6, et::nn::kNoEosToken, 51}, {2, 6, et::nn::kNoEosToken, 52},
      {3, 6, et::nn::kNoEosToken, 53}};

  et::gpusim::Device seq_dev, clean_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto clean = et::diff::run_batched(clean_dev, m.layers, m.opt, 3,
                                           max_context, requests, kVocab);
  et::diff::expect_bit_identical(sequential, clean.outcomes);

  // Faulted launches never reach the history, so on a clean run the
  // 0-based launch-attempt index equals the history index.
  std::vector<std::size_t> slot1_attention;
  const auto& history = clean_dev.history();
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].slot == 1 &&
        history[i].name == "incremental_otf_attention") {
      slot1_attention.push_back(i);
    }
  }
  ASSERT_GE(slot1_attention.size(), m.layers.size() + 1);
  const std::size_t target = slot1_attention[m.layers.size()];

  et::gpusim::Device fault_dev;
  fault_dev.fault_injector().arm_nth_launch(target);
  const auto faulted = et::diff::run_batched(fault_dev, m.layers, m.opt, 3,
                                             max_context, requests, kVocab);

  const auto& hit = faulted.outcomes[1].result;
  EXPECT_EQ(hit.stop_reason, et::nn::StopReason::kKernelFault);
  EXPECT_NE(hit.fault_kernel.find("incremental_otf_attention"),
            std::string::npos);
  // One tick completed before the fault: the surviving prefix.
  ASSERT_EQ(hit.tokens.size(), 1u);
  EXPECT_EQ(hit.tokens[0], sequential[1].result.tokens[0]);
  EXPECT_EQ(faulted.outcomes[1].hidden_hashes,
            std::vector<std::uint64_t>(sequential[1].hidden_hashes.begin(),
                                       sequential[1].hidden_hashes.begin() +
                                           1));

  // The other slots never notice.
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(faulted.outcomes[i].result.tokens,
              sequential[i].result.tokens)
        << "request " << i;
    EXPECT_EQ(faulted.outcomes[i].hidden_hashes, sequential[i].hidden_hashes)
        << "request " << i;
    EXPECT_EQ(faulted.outcomes[i].result.stop_reason,
              et::nn::StopReason::kMaxTokens);
  }

  // The retirement is observable: a slot-attributed fallback event.
  bool saw_retire = false;
  for (const auto& fb : fault_dev.fallback_log()) {
    if (fb.to_impl == "retire_slot" && fb.slot == 1) saw_retire = true;
  }
  EXPECT_TRUE(saw_retire);
}

// ---------------------------------------------------------------------------
// Scheduler API contract.
// ---------------------------------------------------------------------------
TEST(BatchedGenerationApi, RejectsZeroMaxBatchButAcceptsPrecomputedVo) {
  const Model m = make_model(1, 32, 2, 8, 23, false);
  EXPECT_THROW(et::nn::BatchedGenerationScheduler(
                   et::nn::Model(&m.layers, m.opt, 8), 0),
               std::invalid_argument);

  Model pre = make_model(1, 32, 2, 8, 23, false);
  const auto& wv =
      std::get<et::sparse::DenseWeight>(pre.layers[0].attn.wv).matrix();
  const auto& wo =
      std::get<et::sparse::DenseWeight>(pre.layers[0].attn.wo).matrix();
  pre.layers[0].attn.vo =
      et::core::precompute_vo(wv, wo, pre.opt.attn.num_heads);
  // Regression for the OLD contract: pre-computed W_VO used to be
  // rejected at scheduler construction. The cached decode path now
  // consumes the fold (condensed V-plane, no output projection), so the
  // same weights must construct AND decode.
  const et::nn::Model handle(&pre.layers, pre.opt, 8);
  EXPECT_TRUE(handle.has_precomputed());
  et::nn::BatchedGenerationScheduler sched(handle, 2);
  et::nn::GenerationRequest req;
  req.max_new_tokens = 3;
  req.embed = et::diff::make_embed(32, 5);
  req.select = et::diff::make_select(kVocab);
  const std::size_t id = sched.submit(std::move(req));
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  (void)sched.run(ctx);
  EXPECT_EQ(sched.result(id).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(sched.result(id).tokens.size(), 3u);
}

TEST(BatchedGenerationApi, ZeroTokenRequestCompletesWithoutASlot) {
  const Model m = make_model(1, 32, 2, 8, 27, false);
  et::nn::BatchedGenerationScheduler sched(et::nn::Model(&m.layers, m.opt, 8),
                                           2);
  et::nn::GenerationRequest req;
  req.max_new_tokens = 0;
  req.embed = et::diff::make_embed(32, 1);
  req.select = et::diff::make_select(kVocab);
  const std::size_t id = sched.submit(std::move(req));
  EXPECT_TRUE(sched.finished(id));
  EXPECT_TRUE(sched.idle());
  EXPECT_TRUE(sched.result(id).tokens.empty());
  EXPECT_EQ(sched.result(id).stop_reason, et::nn::StopReason::kMaxTokens);
}

TEST(BatchedGenerationApi, ResultThrowsUntilTheRequestFinishes) {
  const Model m = make_model(1, 32, 2, 8, 29, false);
  et::nn::BatchedGenerationScheduler sched(et::nn::Model(&m.layers, m.opt, 8),
                                           2);
  et::nn::GenerationRequest req;
  req.max_new_tokens = 2;
  req.embed = et::diff::make_embed(32, 2);
  req.select = et::diff::make_select(kVocab);
  const std::size_t id = sched.submit(std::move(req));
  EXPECT_FALSE(sched.finished(id));
  EXPECT_THROW((void)sched.result(id), std::logic_error);
  EXPECT_EQ(sched.pending(), 1u);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  (void)sched.run(ctx);
  EXPECT_TRUE(sched.finished(id));
  EXPECT_EQ(sched.result(id).tokens.size(), 2u);
}

TEST(BatchedGenerationApi, SingleActiveSlotTakesThePerSlotPath) {
  // Below AdaptivePolicy::batched_decode_min_slots the batched launch
  // isn't worth it; the scheduler must step per slot and count no
  // batched ticks.
  const std::size_t max_context = 8;
  const Model m = make_model(1, 32, 2, max_context, 31, false);
  const std::vector<Request> requests = {{4, 3, et::nn::kNoEosToken, 41}};

  et::gpusim::Device seq_dev, batch_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto batched = et::diff::run_batched(batch_dev, m.layers, m.opt, 2,
                                             max_context, requests, kVocab);

  et::diff::expect_bit_identical(sequential, batched.outcomes);
  EXPECT_EQ(batched.batched_ticks, 0u);
  EXPECT_EQ(batched.ticks, 3u);
}

// ---------------------------------------------------------------------------
// Per-slot profiler attribution over a real batched run.
// ---------------------------------------------------------------------------
TEST(BatchedGeneration, ProfilerAttributesAttentionToSlots) {
  const std::size_t max_context = 8;
  const Model m = make_model(2, 32, 2, max_context, 37, false);
  const std::vector<Request> requests = {
      {1, 4, et::nn::kNoEosToken, 61}, {2, 4, et::nn::kNoEosToken, 62}};

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  (void)et::diff::run_batched(dev, m.layers, m.opt, 2, max_context, requests,
                              kVocab);

  // Every slot did attention work; the shared batched kernels stay
  // unattributed.
  EXPECT_GT(dev.time_us_for_slot(0), 0.0);
  EXPECT_GT(dev.time_us_for_slot(1), 0.0);
  const auto report = et::gpusim::profile(dev);
  ASSERT_FALSE(report.slots.empty());
  bool saw_shared = false, saw_slot0 = false, saw_slot1 = false;
  for (const auto& s : report.slots) {
    if (s.slot == et::gpusim::kNoSlot) saw_shared = true;
    if (s.slot == 0) saw_slot0 = true;
    if (s.slot == 1) saw_slot1 = true;
  }
  EXPECT_TRUE(saw_shared);
  EXPECT_TRUE(saw_slot0);
  EXPECT_TRUE(saw_slot1);
}

}  // namespace
