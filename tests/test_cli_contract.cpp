// CLI contract for examples/et_cli: strict argument handling (unknown
// flags and junk values name the offending token on stderr and exit
// nonzero — never silently dropped or read as zero), --help in sync with
// the --serve flag set, and the --serve --json field names locked to
// serving::MetricsRegistry::scalars() — the same list
// bench/ablation_serving rows iterate, so the two outputs cannot drift.
//
// The binary under test is injected at build time (ET_CLI_PATH) and
// driven through popen; runs stay tiny so the whole suite is fast.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "nn/encoder.hpp"
#include "serving/server.hpp"

#ifndef ET_CLI_PATH
#error "ET_CLI_PATH must be defined to the et_cli binary path"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_cli(const std::string& args) {
  const std::string cmd = std::string(ET_CLI_PATH) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

// Spawn et_cli directly (popen cannot deliver signals), wait for the
// readiness marker on its combined stdout/stderr, send `sig`, then
// collect the rest of the output and the exit status. If the marker
// never appears within the deadline the child is SIGKILLed so the test
// fails with output instead of hanging.
RunResult run_until_marker_then_signal(const std::string& args,
                                       const std::string& marker, int sig) {
  RunResult r;
  int fds[2];
  if (::pipe(fds) != 0) return r;
  const pid_t pid = ::fork();
  if (pid < 0) return r;
  if (pid == 0) {
    ::dup2(fds[1], 1);
    ::dup2(fds[1], 2);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string cmd = std::string(ET_CLI_PATH) + " " + args;
    ::execl("/bin/sh", "sh", "-c", ("exec " + cmd).c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(fds[1]);
  bool signalled = false;
  const int deadline_ms = 60000;
  int waited_ms = 0;
  char buf[512];
  for (;;) {
    pollfd p{fds[0], POLLIN, 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc == 0) {
      waited_ms += 100;
      if (waited_ms >= deadline_ms) break;  // wedged: fail with output
      continue;
    }
    if (rc < 0) break;
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n <= 0) break;  // EOF: child exited
    r.output.append(buf, static_cast<std::size_t>(n));
    if (!signalled && r.output.find(marker) != std::string::npos) {
      ::kill(pid, sig);
      signalled = true;
    }
  }
  if (!signalled) ::kill(pid, SIGKILL);
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

TEST(CliContract, UnknownFlagExitsNonzeroNamingTheToken) {
  const auto r = run_cli("--bogus-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--bogus-flag"), std::string::npos) << r.output;
}

TEST(CliContract, JunkNumericValueExitsNonzeroNamingTheToken) {
  for (const char* flag :
       {"--seq", "--requests", "--queue-cap", "--arrive", "--deadline",
        "--queue-budget", "--retries", "--backoff-ticks", "--threads",
        "--tokens", "--batch"}) {
    const auto r = run_cli(std::string(flag) + " banana");
    EXPECT_EQ(r.exit_code, 2) << flag;
    EXPECT_NE(r.output.find("banana"), std::string::npos)
        << flag << ": " << r.output;
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << flag << ": " << r.output;
  }
  // Trailing junk must be rejected too — '12x' is not 12.
  const auto trailing = run_cli("--seq 12x");
  EXPECT_EQ(trailing.exit_code, 2);
  EXPECT_NE(trailing.output.find("12x"), std::string::npos);
  // A ratio outside [0, 1) is named as bad, not clamped.
  const auto ratio = run_cli("--ratio 1.5");
  EXPECT_EQ(ratio.exit_code, 2);
  EXPECT_NE(ratio.output.find("1.5"), std::string::npos);
}

TEST(CliContract, MissingValueExitsNonzeroNamingTheFlag) {
  const auto r = run_cli("--requests");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--requests"), std::string::npos) << r.output;
}

TEST(CliContract, HelpListsEveryServeFlagAndExitsZero) {
  const auto r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag :
       {"--serve", "--requests", "--queue-cap", "--arrive", "--deadline",
        "--queue-budget", "--retries", "--backoff-ticks", "--preempt",
        "--batch", "--tokens", "--threads", "--json", "--weights",
        "--kv-precision", "--attention"}) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "--help is missing " << flag;
  }
}

TEST(CliContract, WeightsFlagSelectsLayoutAndRejectsJunk) {
  const auto bad = run_cli("--weights banana");
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("banana"), std::string::npos) << bad.output;

  // Every layout serves and reports itself in the JSON config line.
  for (const char* layout : {"dense", "precomputed", "pruned", "int8"}) {
    const auto r = run_cli(std::string("--serve --json --requests 2 "
                                       "--batch 1 --tokens 2 --weights ") +
                           layout);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find(std::string("\"weights\": \"") + layout + "\""),
              std::string::npos)
        << r.output;
  }
  // The batched-scheduler mode carries the same field.
  const auto batch =
      run_cli("--batch 2 --json --tokens 2 --weights precomputed");
  ASSERT_EQ(batch.exit_code, 0) << batch.output;
  EXPECT_NE(batch.output.find("\"weights\": \"precomputed\""),
            std::string::npos)
      << batch.output;

  // The fold rebuilds from dense projections, so combining it with a
  // pruning strategy must fail loudly, naming the flag.
  const auto conflict = run_cli(
      "--serve --model transformer --weights precomputed --strategy tile "
      "--ratio 0.5 --requests 2 --tokens 2");
  EXPECT_EQ(conflict.exit_code, 2);
  EXPECT_NE(conflict.output.find("--weights"), std::string::npos)
      << conflict.output;
}

TEST(CliContract, KvPrecisionFlagValidatesEchoesAndReachesThePool) {
  // Junk names both the flag and the token and exits 2.
  const auto bad = run_cli("--serve --kv-precision banana");
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("--kv-precision"), std::string::npos) << bad.output;
  EXPECT_NE(bad.output.find("banana"), std::string::npos) << bad.output;

  // The flag configures the paged KV pool, which only the serving modes
  // own — without one it would silently do nothing, so it exits 2 naming
  // the flag.
  const auto orphan = run_cli("--kv-precision int8 --seq 64");
  EXPECT_EQ(orphan.exit_code, 2);
  EXPECT_NE(orphan.output.find("--kv-precision"), std::string::npos)
      << orphan.output;

  // Default is lossless fp32, echoed in the --serve config line.
  const auto d = run_cli("--serve --json --requests 2 --batch 1 --tokens 2");
  ASSERT_EQ(d.exit_code, 0) << d.output;
  EXPECT_NE(d.output.find("\"kv_precision\": \"fp32\""), std::string::npos)
      << d.output;

  // int8 echoes itself — in --serve, --batch and --listen/--json alike —
  // and measurably shrinks the pool: the kv_bytes gauge in the metrics
  // snapshot must differ from the fp32 run, proving the flag reaches the
  // BlockAllocator rather than just the echo.
  const std::string serve_flags =
      "--serve --json --requests 2 --batch 1 --tokens 2 --kv-precision ";
  const auto i8 = run_cli(serve_flags + "int8");
  ASSERT_EQ(i8.exit_code, 0) << i8.output;
  EXPECT_NE(i8.output.find("\"kv_precision\": \"int8\""), std::string::npos)
      << i8.output;
  const auto kv_bytes = [](const std::string& s) {
    const auto pos = s.find("\"kv_bytes\":");
    return s.substr(pos, s.find(',', pos) - pos);
  };
  ASSERT_NE(d.output.find("\"kv_bytes\":"), std::string::npos) << d.output;
  EXPECT_NE(kv_bytes(d.output), kv_bytes(i8.output))
      << "fp32: " << d.output << "\nint8: " << i8.output;

  const auto batch =
      run_cli("--batch 2 --json --tokens 2 --kv-precision int8");
  ASSERT_EQ(batch.exit_code, 0) << batch.output;
  EXPECT_NE(batch.output.find("\"kv_precision\": \"int8\""), std::string::npos)
      << batch.output;

  // Quantized serving stays deterministic: byte-identical reruns.
  const auto again = run_cli(serve_flags + "int8");
  ASSERT_EQ(again.exit_code, 0) << again.output;
  EXPECT_EQ(i8.output, again.output);
}

TEST(CliContract, AttentionFlagPinsOperatorAndRejectsJunk) {
  // Junk names both the flag and the token and exits 2 — --attention is
  // operator selection, distinct from the pruning --strategy flag.
  const auto bad = run_cli("--attention banana");
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("--attention"), std::string::npos) << bad.output;
  EXPECT_NE(bad.output.find("banana"), std::string::npos) << bad.output;
  // A *strategy* name is not an operator name: cross-flag confusion must
  // be caught, not silently accepted.
  const auto crossed = run_cli("--attention attention-aware");
  EXPECT_EQ(crossed.exit_code, 2);
  EXPECT_NE(crossed.output.find("attention-aware"), std::string::npos)
      << crossed.output;

  // Every operator name (and "auto") runs the encoder demo and echoes
  // itself into the --json config line.
  for (const char* op :
       {"modular", "fused", "otf", "partial_otf", "flash", "auto"}) {
    const auto r = run_cli(std::string("--json --seq 64 --attention ") + op);
    ASSERT_EQ(r.exit_code, 0) << op << ": " << r.output;
    EXPECT_NE(r.output.find(std::string("\"attention\": \"") + op + "\""),
              std::string::npos)
        << r.output;
  }
  // The serving modes carry the same field.
  const auto serve = run_cli(
      "--serve --json --requests 2 --batch 1 --tokens 2 --attention flash");
  ASSERT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("\"attention\": \"flash\""), std::string::npos)
      << serve.output;
  const auto batch =
      run_cli("--batch 2 --json --tokens 2 --attention otf");
  ASSERT_EQ(batch.exit_code, 0) << batch.output;
  EXPECT_NE(batch.output.find("\"attention\": \"otf\""), std::string::npos)
      << batch.output;

  // Pinning the operator changes the modeled latency (flash streams K/V
  // through fewer, larger tiles than otf at this length), proving the
  // flag reaches the dispatch rather than just the echo.
  const auto otf = run_cli("--json --seq 512 --attention otf");
  const auto flash = run_cli("--json --seq 512 --attention flash");
  ASSERT_EQ(otf.exit_code, 0) << otf.output;
  ASSERT_EQ(flash.exit_code, 0) << flash.output;
  const auto layer_us = [](const std::string& s) {
    const auto pos = s.find("\"layer_us\": ");
    return s.substr(pos, s.find(',', pos) - pos);
  };
  EXPECT_NE(layer_us(otf.output), layer_us(flash.output))
      << "otf: " << otf.output << "\nflash: " << flash.output;
}

TEST(CliContract, ServeJsonCarriesEveryMetricsRegistryScalar) {
  // The reference field list comes from a real InferenceServer — if the
  // registry gains or renames a metric, this test forces the CLI (and by
  // the same contract, bench/ablation_serving) to carry it.
  et::nn::ModelConfig cfg;
  cfg.num_layers = 1;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  std::vector<et::nn::EncoderWeights> layers = {
      et::nn::make_dense_encoder_weights(cfg, 1)};
  const auto opt =
      et::nn::options_for(et::nn::Pipeline::kET, cfg, 8, /*causal=*/true);
  et::serving::InferenceServer reference(et::nn::Model(&layers, opt, 8),
                                         {2, 4});

  const auto r = run_cli(
      "--serve --json --requests 3 --batch 2 --tokens 2 --queue-cap 4");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const auto& field : reference.metrics().scalars()) {
    EXPECT_NE(r.output.find("\"" + field.name + "\":"), std::string::npos)
        << "--serve --json is missing metrics field '" << field.name << "'";
  }
  // Plus the run-configuration fields the bench rows also carry.
  for (const char* key :
       {"\"requests\":", "\"slots\":", "\"queue_capacity\":",
        "\"offered_per_tick\":", "\"threads\":", "\"time_us\":"}) {
    EXPECT_NE(r.output.find(key), std::string::npos)
        << "--serve --json is missing field " << key;
  }
}

TEST(CliContract, ServeOutputIsByteIdenticalAcrossRunsAndThreadCounts) {
  // The serving runtime's determinism contract, observed end to end
  // through the CLI: same arrival script => byte-identical output, at
  // 1 thread and at 4.
  const std::string flags =
      "--serve --json --requests 5 --batch 2 --tokens 3 --arrive 2 "
      "--queue-cap 8";
  const auto a = run_cli(flags);
  const auto b = run_cli(flags);
  ASSERT_EQ(a.exit_code, 0) << a.output;
  EXPECT_EQ(a.output, b.output);
  const auto threaded = run_cli(flags + " --threads 4");
  ASSERT_EQ(threaded.exit_code, 0) << threaded.output;
  // Thread count appears in the config line; everything below it — the
  // transcript-derived metrics — must match. Compare from the first
  // metrics field onward.
  const auto tail = [](const std::string& s) {
    return s.substr(s.find("\"time_us\""));
  };
  EXPECT_EQ(tail(a.output), tail(threaded.output));
}

TEST(CliContract, ResilienceFlagsValidateAndLandInTheJsonConfigLine) {
  // --preempt takes exactly on|off; junk names the flag and the value.
  const auto bad = run_cli("--preempt banana");
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("--preempt"), std::string::npos) << bad.output;
  EXPECT_NE(bad.output.find("banana"), std::string::npos) << bad.output;

  // A backoff without a retry budget could never fire — conflicting flags
  // exit 2 naming --backoff-ticks rather than silently doing nothing.
  const auto conflict = run_cli("--serve --backoff-ticks 2 --requests 2");
  EXPECT_EQ(conflict.exit_code, 2);
  EXPECT_NE(conflict.output.find("--backoff-ticks"), std::string::npos)
      << conflict.output;

  // The three knobs echo into the --json config line, so a saved JSON
  // blob always records the resilience policy that produced it.
  const auto r = run_cli(
      "--serve --json --requests 2 --batch 1 --tokens 2 --retries 3 "
      "--backoff-ticks 2 --preempt off");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"retries\": 3"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"backoff_ticks\": 2"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"preempt\": false"), std::string::npos)
      << r.output;

  // Defaults: preemption on, no retries.
  const auto d = run_cli("--serve --json --requests 2 --batch 1 --tokens 2");
  ASSERT_EQ(d.exit_code, 0) << d.output;
  EXPECT_NE(d.output.find("\"retries\": 0"), std::string::npos) << d.output;
  EXPECT_NE(d.output.find("\"preempt\": true"), std::string::npos) << d.output;
}

TEST(CliContract, ListenFlagValidatesPortAndDrainTicks) {
  // Junk and out-of-range ports are named and refused, not truncated.
  const auto junk = run_cli("--listen banana");
  EXPECT_EQ(junk.exit_code, 2);
  EXPECT_NE(junk.output.find("banana"), std::string::npos) << junk.output;
  const auto range = run_cli("--listen 70000");
  EXPECT_EQ(range.exit_code, 2);
  EXPECT_NE(range.output.find("65535"), std::string::npos) << range.output;
  const auto ticks = run_cli("--drain-ticks banana");
  EXPECT_EQ(ticks.exit_code, 2);
  EXPECT_NE(ticks.output.find("--drain-ticks"), std::string::npos)
      << ticks.output;
  // And --help documents the whole network flag set.
  const auto help = run_cli("--help");
  ASSERT_EQ(help.exit_code, 0);
  for (const char* flag :
       {"--listen", "--drain-ticks", "--allow-unchecksummed"}) {
    EXPECT_NE(help.output.find(flag), std::string::npos)
        << "--help is missing " << flag;
  }
}

TEST(CliContract, ListenShutsDownGracefullyOnStopSignals) {
  // The readiness line is the handshake: once it appears, a stop signal
  // must take the graceful path — drain, report, exit 0 — never the
  // default action. Both SIGINT and SIGTERM are wired.
  for (const int sig : {SIGINT, SIGTERM}) {
    const auto r = run_until_marker_then_signal(
        "--listen 0 --seq 64 --drain-ticks 8", "listening on 127.0.0.1:",
        sig);
    EXPECT_EQ(r.exit_code, 0) << "signal " << sig << ": " << r.output;
    EXPECT_NE(r.output.find("drained in"), std::string::npos)
        << "signal " << sig << ": " << r.output;
  }
}

TEST(CliContract, ServeRejectsAndExpiresUnderPressureDeterministically) {
  // Over-offered load on a tiny queue: the CLI surfaces backpressure and
  // deadline outcomes in its JSON (typed, countable), exit code stays 0 —
  // rejection is an answer, not an error.
  const auto r = run_cli(
      "--serve --json --requests 8 --batch 1 --tokens 4 --queue-cap 2 "
      "--queue-budget 1");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // 8 arrive at tick 0 into a 2-deep queue: 6 bounce immediately; of the
  // 2 queued, one is admitted at once and the other outlives its 1-tick
  // queue budget while the single slot is busy.
  EXPECT_NE(r.output.find("\"stop_rejected\": 6"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"stop_deadline_exceeded\": 1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"requests_completed\": 1"), std::string::npos)
      << r.output;
}

}  // namespace
