// Seeded chaos soak for the overload-resilient serving runtime
// (docs/robustness.md): hundreds of requests with randomized arrivals,
// priorities, token counts and budgets are driven through an
// InferenceServer while armed gpusim faults, scripted cancels, deadline
// storms and forced preemption churn all fire at once. Every tick the
// harness checks conservation invariants; at drain it checks the books
// balance exactly; and the whole storm — transcripts AND the full
// metrics snapshot — must reproduce bit for bit run-to-run and at every
// thread count, because the only randomness is the script's own seeded
// PRNG and the injector's seeded Bernoulli draws.
//
// Iteration counts are CI-sized on purpose: the point is coverage of
// the preempt/retry/shed/cancel/expire interactions, not wall-clock
// volume. Crank kRequests up locally for a longer soak.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "differential.hpp"
#include "serving/server.hpp"

namespace {

using et::serving::InferenceServer;
using et::serving::Priority;
using et::serving::RequestState;
using et::serving::ServerConfig;

constexpr std::int32_t kVocab = 211;
constexpr std::size_t kTickGuard = 20000;  // livelock tripwire

struct Model {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
  std::size_t max_context = 0;
};

Model make_model(std::size_t max_context, std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  Model m;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    m.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  m.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, max_context,
                              /*causal=*/true);
  m.opt.attn.precision = et::numeric::Precision::kFp32;
  m.max_context = max_context;
  return m;
}

/// Deterministic PRNG over the shared splitmix64 — the script generator.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state = et::diff::splitmix64(state); }
  std::size_t below(std::size_t n) { return next() % n; }
  bool chance(std::size_t one_in) { return below(one_in) == 0; }
};

/// One scripted request: everything the generator decided up front, so
/// two drives of the same plan are byte-for-byte the same workload.
struct PlannedRequest {
  std::size_t arrive_tick = 0;
  std::int32_t first_token = 1;
  std::size_t max_new_tokens = 1;
  std::uint64_t seed = 0;
  Priority priority = Priority::kNormal;
  std::size_t queue_budget = et::serving::kNoBudget;
  std::size_t total_budget = et::serving::kNoBudget;
  std::size_t retry_budget = 0;
  std::size_t retry_backoff = 0;
  std::size_t cancel_tick = et::serving::kNoTick;  // kNoTick = never
};

struct ChaosPlan {
  std::vector<PlannedRequest> requests;  // sorted by arrive_tick
  double fault_fraction = 0.0;
  std::uint64_t fault_seed = 0;
};

/// Script generator: bursty arrivals (every few requests a same-tick
/// interactive flood to force preemption churn), mixed priorities, a
/// deadline storm (tight queue/total budgets on a slice), retry budgets
/// on most, and scripted cancels on a slice.
ChaosPlan make_plan(std::size_t n, std::uint64_t seed, double fault_fraction) {
  Rng rng{seed};
  ChaosPlan plan;
  plan.fault_fraction = fault_fraction;
  plan.fault_seed = seed ^ 0xfau;
  std::size_t tick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    PlannedRequest r;
    const bool flood = rng.chance(7);  // interactive burst, same tick
    if (!flood) tick += rng.below(3);
    r.arrive_tick = tick;
    r.first_token = static_cast<std::int32_t>(1 + rng.below(200));
    r.max_new_tokens = 1 + rng.below(6);
    r.seed = rng.next();
    r.priority = flood ? Priority::kInteractive
                       : static_cast<Priority>(rng.below(3));
    if (rng.chance(4)) r.queue_budget = rng.below(4);          // shed bait
    if (rng.chance(5)) r.total_budget = 2 + rng.below(8);      // deadline
    if (!rng.chance(3)) {                                      // most retry
      r.retry_budget = 1 + rng.below(2);
      r.retry_backoff = rng.below(3);
    }
    if (rng.chance(8)) r.cancel_tick = r.arrive_tick + rng.below(8);
    plan.requests.push_back(r);
  }
  return plan;
}

/// The per-request outcome a run is summarized by (the unit of the
/// determinism comparison).
struct ChaosOutcome {
  std::vector<std::int32_t> tokens;
  et::nn::StopReason stop = et::nn::StopReason::kMaxTokens;
  et::serving::RejectReason reject = et::serving::RejectReason::kNone;
  std::size_t preemptions = 0;
  std::size_t retries = 0;
  std::vector<std::uint64_t> hashes;
};

struct ChaosRun {
  std::vector<ChaosOutcome> outcomes;
  std::string metrics_json;
  std::size_t ticks = 0;
  std::uint64_t cancels_hit = 0;  // cancel() calls that returned true
};

std::uint64_t counter(const et::serving::MetricsRegistry& mx,
                      const std::string& name) {
  const auto* c = mx.find_counter(name);
  EXPECT_NE(c, nullptr) << name;
  return c == nullptr ? 0 : c->value();
}

/// The conservation identities every storm must satisfy at drain:
/// each submission resolves to exactly one terminal state, counted once
/// in the aggregate view and once in the stop-reason view.
void expect_conserved(const et::serving::MetricsRegistry& mx) {
  const std::uint64_t submitted = counter(mx, "requests_submitted");
  EXPECT_EQ(submitted,
            counter(mx, "requests_completed") +
                counter(mx, "requests_rejected") + counter(mx, "shed") +
                counter(mx, "requests_cancelled") +
                counter(mx, "requests_expired") +
                counter(mx, "stop_preemption_limit"));
  std::uint64_t stop_sum = 0;
  for (std::size_t r = 0; r < et::nn::kStopReasonCount; ++r) {
    stop_sum += counter(
        mx, "stop_" + std::string(et::nn::to_string(
                          static_cast<et::nn::StopReason>(r))));
  }
  EXPECT_EQ(stop_sum, submitted);
}

/// Drive one plan to drain, checking per-tick invariants throughout.
ChaosRun run_chaos(const Model& m, const ServerConfig& cfg,
                   const ChaosPlan& plan, std::size_t threads) {
  et::gpusim::Device dev;
  if (plan.fault_fraction > 0.0) {
    dev.fault_injector().arm_random(plan.fault_fraction, plan.fault_seed);
  }
  et::core::ExecContext ctx(dev, threads);
  InferenceServer server(
      et::nn::Model(&m.layers, m.opt, m.max_context), cfg);

  ChaosRun run;
  run.outcomes.resize(plan.requests.size());
  std::vector<et::serving::RequestHandle> handles(plan.requests.size());
  std::vector<bool> submitted(plan.requests.size(), false);
  std::vector<bool> seen_finished(plan.requests.size(), false);
  std::vector<std::size_t> final_tick(plan.requests.size(), 0);
  std::map<std::size_t, std::vector<std::size_t>> cancels;  // tick -> idx
  for (std::size_t i = 0; i < plan.requests.size(); ++i) {
    if (plan.requests[i].cancel_tick != et::serving::kNoTick) {
      cancels[plan.requests[i].cancel_tick].push_back(i);
    }
  }

  std::size_t next = 0;
  while (next < plan.requests.size() || !server.idle()) {
    if (server.now() >= kTickGuard) {  // livelock: fail loudly, stop soaking
      ADD_FAILURE() << "serving loop is not draining after " << kTickGuard
                    << " ticks";
      return run;
    }
    // Scripted cancels due this tick (in request order — deterministic).
    const auto due = cancels.find(server.now());
    if (due != cancels.end()) {
      for (const std::size_t i : due->second) {
        if (submitted[i] && server.cancel(handles[i])) ++run.cancels_hit;
      }
    }
    // Scripted arrivals due this tick.
    while (next < plan.requests.size() &&
           plan.requests[next].arrive_tick <= server.now()) {
      const PlannedRequest& p = plan.requests[next];
      et::serving::Request req;
      req.first_token = p.first_token;
      req.max_new_tokens = p.max_new_tokens;
      req.embed = et::diff::make_embed(m.opt.attn.d_model, p.seed);
      req.select = et::diff::make_select(kVocab, &run.outcomes[next].hashes);
      req.priority = p.priority;
      req.queue_budget_ticks = p.queue_budget;
      req.total_budget_ticks = p.total_budget;
      req.retry_budget = p.retry_budget;
      req.retry_backoff_ticks = p.retry_backoff;
      handles[next] = server.submit(std::move(req));
      submitted[next] = true;
      ++next;
    }
    server.tick(ctx);

    // Per-tick invariants: slot occupancy bounded; terminal states are
    // absorbing (a finished request never un-finishes or mutates).
    EXPECT_LE(server.active_slots(), cfg.max_batch);
    for (std::size_t i = 0; i < next; ++i) {
      const bool fin = server.finished(handles[i]);
      if (seen_finished[i]) {
        EXPECT_TRUE(fin) << "request " << i << " un-finished";
        EXPECT_EQ(server.status(handles[i]).finished_tick, final_tick[i]);
      } else if (fin) {
        seen_finished[i] = true;
        final_tick[i] = server.status(handles[i]).finished_tick;
        EXPECT_LE(server.result(handles[i]).tokens.size(),
                  plan.requests[i].max_new_tokens);
      }
    }
  }

  // Drain invariants: nothing left anywhere, and the KV pool is empty.
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.active_slots(), 0u);
  const auto& mx = server.metrics();
  EXPECT_DOUBLE_EQ(mx.find_gauge("kv_bytes_used")->value(), 0.0);
  EXPECT_DOUBLE_EQ(mx.find_gauge("health")->value(), 0.0);
  EXPECT_EQ(counter(mx, "requests_submitted"), plan.requests.size());
  EXPECT_EQ(counter(mx, "requests_cancelled"), run.cancels_hit);
  expect_conserved(mx);

  for (std::size_t i = 0; i < plan.requests.size(); ++i) {
    EXPECT_TRUE(server.finished(handles[i])) << "request " << i;
    const auto st = server.status(handles[i]);
    const auto& res = server.result(handles[i]);
    run.outcomes[i].tokens = res.tokens;
    run.outcomes[i].stop = res.stop_reason;
    run.outcomes[i].reject = st.reject_reason;
    run.outcomes[i].preemptions = st.preemptions;
    run.outcomes[i].retries = st.retries;
  }
  run.metrics_json = mx.json(0);
  run.ticks = server.now();
  return run;
}

void expect_identical(const ChaosRun& a, const ChaosRun& b,
                      const char* what) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].tokens, b.outcomes[i].tokens)
        << what << ": request " << i;
    EXPECT_EQ(a.outcomes[i].stop, b.outcomes[i].stop)
        << what << ": request " << i;
    EXPECT_EQ(a.outcomes[i].reject, b.outcomes[i].reject)
        << what << ": request " << i;
    EXPECT_EQ(a.outcomes[i].preemptions, b.outcomes[i].preemptions)
        << what << ": request " << i;
    EXPECT_EQ(a.outcomes[i].retries, b.outcomes[i].retries)
        << what << ": request " << i;
    EXPECT_EQ(a.outcomes[i].hashes, b.outcomes[i].hashes)
        << what << ": request " << i << " hidden states diverged";
  }
  EXPECT_EQ(a.ticks, b.ticks) << what;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << what;
}

// ---------------------------------------------------------------------------
// The main soak: everything at once — faults, cancels, deadline storms,
// shed bait and interactive floods over a small batch, so preemption,
// retry and shedding all fire. The per-tick and drain invariants inside
// run_chaos are the test.
// ---------------------------------------------------------------------------
TEST(ChaosSoak, MixedStormConservesEveryRequest) {
  const Model m = make_model(/*max_context=*/8, 0xabc1);
  const ChaosPlan plan = make_plan(/*n=*/160, /*seed=*/0x5eed1,
                                   /*fault_fraction=*/0.01);
  ServerConfig cfg{4, 12};
  cfg.preemption_limit = 1;  // churn hard enough to hit the cap
  const ChaosRun run = run_chaos(m, cfg, plan, /*threads=*/2);

  // The storm must actually have exercised every mechanism — a quiet run
  // would pass the invariants vacuously.
  std::uint64_t preempted = 0, retried = 0, shed = 0, capped = 0;
  for (const auto& o : run.outcomes) {
    preempted += o.preemptions;
    retried += o.retries;
    shed += o.reject == et::serving::RejectReason::kShed ? 1 : 0;
    capped += o.stop == et::nn::StopReason::kPreemptionLimit ? 1 : 0;
  }
  EXPECT_GT(preempted, 0u) << run.metrics_json;
  EXPECT_GT(retried, 0u) << run.metrics_json;
  EXPECT_GT(shed, 0u) << run.metrics_json;
  EXPECT_GT(capped, 0u) << run.metrics_json;
  EXPECT_GT(run.cancels_hit, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the same script reproduces the same storm bit for bit —
// same transcripts, same per-request preemption/retry counts, same tick
// count, same metrics snapshot — run-to-run and across thread counts.
// ---------------------------------------------------------------------------
TEST(ChaosSoak, StormIsBitReproducibleAcrossRunsAndThreads) {
  const Model m = make_model(/*max_context=*/8, 0xabc2);
  const ChaosPlan plan = make_plan(/*n=*/80, /*seed=*/0x5eed2,
                                   /*fault_fraction=*/0.02);
  ServerConfig cfg{3, 10};
  cfg.preemption_limit = 1;

  const ChaosRun base = run_chaos(m, cfg, plan, /*threads=*/1);
  const ChaosRun again = run_chaos(m, cfg, plan, /*threads=*/1);
  expect_identical(base, again, "rerun");
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const ChaosRun other = run_chaos(m, cfg, plan, threads);
    expect_identical(base, other,
                     threads == 2 ? "threads=2" : "threads=8");
  }
}

// ---------------------------------------------------------------------------
// Fault storm: a hot injector against a fleet with retry budgets. Most
// requests recover (retries land), the books still balance, and budget
// exhaustion degrades to the honest terminal kKernelFault.
// ---------------------------------------------------------------------------
TEST(ChaosSoak, FaultStormRetriesRecoverAndAccountHonestly) {
  const Model m = make_model(/*max_context=*/8, 0xabc3);
  ChaosPlan plan = make_plan(/*n=*/100, /*seed=*/0x5eed3,
                             /*fault_fraction=*/0.02);
  for (auto& r : plan.requests) {  // uniform retry policy for this storm
    r.retry_budget = 2;
    r.retry_backoff = 1;
    r.cancel_tick = et::serving::kNoTick;
    // No deadlines: this storm isolates fault->retry->recover, so every
    // terminal is either kMaxTokens (recovered) or kKernelFault
    // (budget exhausted).
    r.queue_budget = et::serving::kNoBudget;
    r.total_budget = et::serving::kNoBudget;
  }
  const ServerConfig cfg{4, 16};
  const ChaosRun run = run_chaos(m, cfg, plan, /*threads=*/2);

  std::uint64_t retried = 0, faulted_out = 0, completed_after_retry = 0;
  for (const auto& o : run.outcomes) {
    retried += o.retries;
    if (o.stop == et::nn::StopReason::kKernelFault) ++faulted_out;
    if (o.retries > 0 && o.stop == et::nn::StopReason::kMaxTokens) {
      ++completed_after_retry;
    }
  }
  EXPECT_GT(retried, 0u) << run.metrics_json;
  // Retry earns its keep: recoveries must outnumber exhausted budgets.
  EXPECT_GT(completed_after_retry, faulted_out) << run.metrics_json;
}

// ---------------------------------------------------------------------------
// Preemption churn: a bulk fleet under a relentless interactive flood.
// Interactive latency stays bounded (every interactive request is
// admitted the tick it becomes admissible) while bulk work survives via
// resume or retires typed at the cap — never silently lost.
// ---------------------------------------------------------------------------
TEST(ChaosSoak, InteractiveFloodPreemptsWithoutLosingBulkWork) {
  const Model m = make_model(/*max_context=*/10, 0xabc4);
  Rng rng{0x5eed4};
  ChaosPlan plan;
  for (std::size_t i = 0; i < 12; ++i) {  // bulk fleet at tick 0
    PlannedRequest r;
    r.arrive_tick = 0;
    r.first_token = static_cast<std::int32_t>(1 + rng.below(200));
    r.max_new_tokens = 6;
    r.seed = rng.next();
    r.priority = Priority::kBulk;
    plan.requests.push_back(r);
  }
  for (std::size_t i = 0; i < 30; ++i) {  // flood: one interactive per tick
    PlannedRequest r;
    r.arrive_tick = 1 + i;
    r.first_token = static_cast<std::int32_t>(1 + rng.below(200));
    r.max_new_tokens = 2;
    r.seed = rng.next();
    r.priority = Priority::kInteractive;
    plan.requests.push_back(r);
  }
  ServerConfig cfg{2, 64};
  cfg.preemption_limit = 2;
  const ChaosRun run = run_chaos(m, cfg, plan, /*threads=*/1);

  std::size_t bulk_done = 0, bulk_capped = 0, preemptions = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto& o = run.outcomes[i];
    preemptions += o.preemptions;
    if (o.stop == et::nn::StopReason::kMaxTokens) {
      EXPECT_EQ(o.tokens.size(), 6u) << "bulk " << i;
      ++bulk_done;
    } else {
      EXPECT_EQ(o.stop, et::nn::StopReason::kPreemptionLimit) << "bulk " << i;
      ++bulk_capped;
    }
  }
  EXPECT_GT(preemptions, 0u) << run.metrics_json;
  EXPECT_EQ(bulk_done + bulk_capped, 12u);
  for (std::size_t i = 12; i < plan.requests.size(); ++i) {
    EXPECT_EQ(run.outcomes[i].stop, et::nn::StopReason::kMaxTokens)
        << "interactive " << i;
    EXPECT_EQ(run.outcomes[i].tokens.size(), 2u) << "interactive " << i;
  }
}

}  // namespace
