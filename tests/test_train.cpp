// Training framework: finite-difference gradient checks on every layer
// type, optimizer behaviour, mask enforcement, loss descent.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "train/attention_layer.hpp"
#include "train/layers.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/param.hpp"

namespace {

using et::tensor::MatrixF;
using et::train::TrainModelConfig;

/// Scalar loss used by the gradient checks: L = Σ y_ij · c_ij with fixed
/// random coefficients, so dL/dy = c.
struct ProbeLoss {
  MatrixF coeffs;
  explicit ProbeLoss(std::size_t r, std::size_t c) : coeffs(r, c) {
    std::mt19937_64 rng(99);
    std::normal_distribution<float> d(0.0f, 1.0f);
    for (auto& v : coeffs.flat()) v = d(rng);
  }
  [[nodiscard]] float value(const MatrixF& y) const {
    float s = 0.0f;
    for (std::size_t i = 0; i < y.size(); ++i) {
      s += y.flat()[i] * coeffs.flat()[i];
    }
    return s;
  }
};

/// Check dL/dw for a few entries of `param` against central differences,
/// where forward() maps the current weights to the output.
template <typename Forward>
void check_param_grad(et::train::Param& param, Forward forward,
                      const ProbeLoss& loss, float eps = 1e-3f,
                      float tol = 2e-2f) {
  const MatrixF y = forward();
  (void)y;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, param.w.size() - 1);
  for (int n = 0; n < 6; ++n) {
    const std::size_t i = pick(rng);
    const float orig = param.w.flat()[i];
    param.w.flat()[i] = orig + eps;
    const float up = loss.value(forward());
    param.w.flat()[i] = orig - eps;
    const float down = loss.value(forward());
    param.w.flat()[i] = orig;
    const float numeric = (up - down) / (2.0f * eps);
    const float analytic = param.g.flat()[i];
    EXPECT_NEAR(analytic, numeric,
                tol * std::max({1.0f, std::abs(numeric), std::abs(analytic)}))
        << "param entry " << i;
  }
}

TEST(GradCheck, Linear) {
  et::train::Linear lin(6, 5, 1);
  MatrixF x(4, 5);
  std::mt19937_64 rng(2);
  std::normal_distribution<float> d(0.0f, 1.0f);
  for (auto& v : x.flat()) v = d(rng);
  const ProbeLoss loss(4, 6);

  lin.zero_grad();
  (void)lin.forward(x);
  const MatrixF dx = lin.backward(loss.coeffs);
  check_param_grad(lin.weight, [&] { return lin.forward(x); }, loss);

  // Also check dL/dx numerically.
  const float eps = 1e-3f;
  for (const std::size_t i : {0u, 7u, 19u}) {
    const float orig = x.flat()[i];
    x.flat()[i] = orig + eps;
    const float up = loss.value(lin.forward(x));
    x.flat()[i] = orig - eps;
    const float down = loss.value(lin.forward(x));
    x.flat()[i] = orig;
    EXPECT_NEAR(dx.flat()[i], (up - down) / (2 * eps), 2e-2f);
  }
}

TEST(GradCheck, LayerNorm) {
  et::train::LayerNorm ln(8);
  // Non-trivial affine parameters.
  for (std::size_t i = 0; i < 8; ++i) {
    ln.gamma[i] = 0.5f + 0.1f * static_cast<float>(i);
    ln.beta[i] = 0.05f * static_cast<float>(i);
  }
  MatrixF x(3, 8);
  std::mt19937_64 rng(3);
  std::normal_distribution<float> d(1.0f, 2.0f);
  for (auto& v : x.flat()) v = d(rng);
  const ProbeLoss loss(3, 8);

  ln.zero_grad();
  (void)ln.forward(x);
  const MatrixF dx = ln.backward(loss.coeffs);

  const float eps = 1e-3f;
  for (const std::size_t i : {0u, 11u, 23u}) {
    const float orig = x.flat()[i];
    x.flat()[i] = orig + eps;
    const float up = loss.value(ln.forward(x));
    x.flat()[i] = orig - eps;
    const float down = loss.value(ln.forward(x));
    x.flat()[i] = orig;
    EXPECT_NEAR(dx.flat()[i], (up - down) / (2 * eps), 3e-2f);
  }
}

TEST(GradCheck, MultiHeadAttention) {
  et::train::MultiHeadAttention mha(16, 2, 4, /*causal=*/true);
  MatrixF x(5, 16);
  std::mt19937_64 rng(5);
  std::normal_distribution<float> d(0.0f, 1.0f);
  for (auto& v : x.flat()) v = d(rng);
  const ProbeLoss loss(5, 16);

  mha.zero_grad();
  (void)mha.forward(x);
  (void)mha.backward(loss.coeffs);
  check_param_grad(mha.wq.weight, [&] { return mha.forward(x); }, loss);
  check_param_grad(mha.wv.weight, [&] { return mha.forward(x); }, loss);
  check_param_grad(mha.wo.weight, [&] { return mha.forward(x); }, loss);
}

TEST(GradCheck, FullEncoderLayer) {
  TrainModelConfig cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.d_ff = 32;
  et::train::EncoderLayer layer(cfg, 6);
  MatrixF x(4, 16);
  std::mt19937_64 rng(7);
  std::normal_distribution<float> d(0.0f, 0.5f);
  for (auto& v : x.flat()) v = d(rng);
  const ProbeLoss loss(4, 16);

  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(loss.coeffs);
  check_param_grad(layer.ff1.weight, [&] { return layer.forward(x); }, loss);
  check_param_grad(layer.mha.wk.weight, [&] { return layer.forward(x); },
                   loss);
}

TEST(Loss, CrossEntropyLmGradient) {
  MatrixF logits(2, 5);
  std::mt19937_64 rng(8);
  std::normal_distribution<float> d(0.0f, 1.0f);
  for (auto& v : logits.flat()) v = d(rng);
  const std::int32_t targets[] = {2, 4};
  MatrixF dlogits;
  const float loss = et::train::cross_entropy_lm(logits, targets, dlogits);
  EXPECT_GT(loss, 0.0f);

  const float eps = 1e-3f;
  for (const std::size_t i : {0u, 4u, 7u}) {
    MatrixF up = logits, down = logits;
    up.flat()[i] += eps;
    down.flat()[i] -= eps;
    MatrixF scratch;
    const float lu = et::train::cross_entropy_lm(up, targets, scratch);
    const float ld = et::train::cross_entropy_lm(down, targets, scratch);
    EXPECT_NEAR(dlogits.flat()[i], (lu - ld) / (2 * eps), 1e-3f);
  }
}

TEST(Loss, MseGradient) {
  MatrixF logits(1, 1);
  logits(0, 0) = 2.0f;
  MatrixF d;
  const float l = et::train::mse(logits, 0.5f, d);
  EXPECT_FLOAT_EQ(l, 2.25f);
  EXPECT_FLOAT_EQ(d(0, 0), 3.0f);
}

TEST(AdamW, MovesAgainstGradient) {
  et::train::Param p(2, 2);
  p.w.fill(1.0f);
  p.g.fill(0.5f);
  et::train::AdamW opt({.lr = 0.1f, .weight_decay = 0.0f});
  opt.step({&p});
  for (float v : p.w.flat()) EXPECT_LT(v, 1.0f);
}

TEST(AdamW, WeightDecayShrinksWeights) {
  et::train::Param p(1, 1);
  p.w(0, 0) = 5.0f;
  p.g(0, 0) = 0.0f;
  et::train::AdamW opt({.lr = 0.1f, .weight_decay = 0.5f});
  opt.step({&p});
  EXPECT_LT(p.w(0, 0), 5.0f);
}

TEST(AdamW, MaskFreezesPrunedEntries) {
  et::train::Param p(2, 2);
  p.w.fill(1.0f);
  et::sparse::Mask mask(2, 2, 1);
  mask(0, 0) = 0;
  p.mask = &mask;
  p.g.fill(1.0f);
  et::train::AdamW opt({.lr = 0.1f});
  opt.step({&p});
  EXPECT_EQ(p.w(0, 0), 0.0f) << "masked entry pinned at zero";
  EXPECT_LT(p.w(1, 1), 1.0f) << "unmasked entries train";
}

TEST(Training, TinyLmLossDecreases) {
  TrainModelConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.d_ff = 32;
  cfg.num_layers = 1;
  et::train::TransformerLM lm(cfg, 11);
  et::train::AdamW opt({.lr = 3e-3f});

  // One repeated sequence; the model must memorize it.
  std::vector<std::int32_t> tokens = {1, 5, 9, 13, 17, 21, 25, 29};
  std::vector<std::int32_t> targets = {5, 9, 13, 17, 21, 25, 29, 1};

  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    lm.zero_grad();
    MatrixF dlogits;
    const MatrixF logits = lm.forward(tokens);
    const float loss = et::train::cross_entropy_lm(logits, targets, dlogits);
    lm.backward(dlogits);
    opt.step(lm.params());
    lm.aux_step(1e-3f, 0.9f, 0.999f, 1e-8f, step + 1);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f)
      << "loss " << first << " -> " << last << " after 30 steps";
}

TEST(Training, ClassifierLearnsSeparableTask) {
  TrainModelConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.d_ff = 32;
  cfg.num_layers = 1;
  cfg.causal = false;
  et::train::TransformerClassifier cls(cfg, 2, 12);
  et::train::AdamW opt({.lr = 3e-3f});

  // Class 0 = token 2 everywhere, class 1 = token 9 everywhere.
  const std::vector<std::int32_t> a(6, 2), b(6, 9);
  for (int step = 0; step < 40; ++step) {
    for (const auto& [seq, label] :
         {std::pair{&a, 0}, std::pair{&b, 1}}) {
      cls.zero_grad();
      MatrixF dlogits;
      const MatrixF logits = cls.forward(*seq);
      (void)et::train::cross_entropy_cls(logits, label, dlogits);
      cls.backward(dlogits);
      opt.step(cls.params());
    }
  }
  EXPECT_EQ(et::train::argmax_row(cls.forward(a)), 0);
  EXPECT_EQ(et::train::argmax_row(cls.forward(b)), 1);
}

}  // namespace
