// The threads axis of the differential spine: every workload must be
// BIT-IDENTICAL across ExecContext thread counts — outputs, token
// streams, hidden-state bit hashes, the device launch log, per-slot
// attribution, and injected-fault indices. threads=1 is the canonical
// serial semantics; threads∈{2,8} must reproduce it exactly
// (docs/threading.md). Runs under the `parallel` ctest label, including
// in the tsan preset.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/exec_context.hpp"
#include "differential.hpp"
#include "nn/encoder.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace {

constexpr std::int32_t kVocab = 29;

struct Model {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

Model make_model(std::size_t num_layers, std::size_t d_model,
                 std::size_t num_heads, std::size_t seq_len,
                 std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = num_layers;
  cfg.d_model = d_model;
  cfg.num_heads = num_heads;
  cfg.d_ff = 2 * d_model;
  Model m;
  for (std::size_t l = 0; l < num_layers; ++l) {
    m.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  m.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, seq_len,
                              /*causal=*/true);
  return m;
}

/// Launch-log fingerprint: every field that the determinism contract
/// promises is thread-count-invariant.
std::vector<std::tuple<std::string, std::size_t, int, std::uint64_t, double>>
log_fingerprint(const et::gpusim::Device& dev) {
  std::vector<std::tuple<std::string, std::size_t, int, std::uint64_t, double>>
      out;
  for (const auto& k : dev.history()) {
    out.emplace_back(k.name, k.ctas, k.slot,
                     k.global_load_bytes + k.global_store_bytes + k.fp_ops +
                         k.tensor_ops,
                     k.time_us);
  }
  return out;
}

// -------------------------------------------------------------------------
// Differential sweep, threads axis: batched decode at threads∈{2,8} vs
// the serial sequential reference AND the serial batched run.
// -------------------------------------------------------------------------

class ThreadsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadsSweep, BatchedDecodeBitIdenticalToSerial) {
  const std::size_t threads = GetParam();
  const std::size_t max_new_tokens = 5;
  const std::size_t max_context = max_new_tokens + 2;
  const Model m = make_model(2, 32, 2, max_context, 11);

  std::vector<et::diff::Request> requests;
  for (std::size_t i = 0; i < 4; ++i) {
    requests.push_back({static_cast<std::int32_t>(i + 1), max_new_tokens,
                        et::nn::kNoEosToken, 70 + i});
  }

  et::gpusim::Device serial_dev, threaded_dev;
  const auto sequential = et::diff::run_sequential(
      serial_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto batched =
      et::diff::run_batched(threaded_dev, m.layers, m.opt, /*max_batch=*/3,
                            max_context, requests, kVocab, threads);
  et::diff::expect_bit_identical(sequential, batched.outcomes);
}

TEST_P(ThreadsSweep, DeviceLogBitIdenticalToSerialBatchedRun) {
  // Beyond the transcripts: the launch log itself (names, order, CTA
  // counts, slot attribution, modeled latency) must not depend on the
  // thread count — the per-chunk sinks merge in chunk order.
  const std::size_t threads = GetParam();
  const std::size_t max_new_tokens = 4;
  const std::size_t max_context = max_new_tokens + 2;
  const Model m = make_model(2, 32, 2, max_context, 13);

  std::vector<et::diff::Request> requests;
  for (std::size_t i = 0; i < 5; ++i) {
    requests.push_back({static_cast<std::int32_t>(i + 1), max_new_tokens,
                        et::nn::kNoEosToken, 80 + i});
  }

  et::gpusim::Device serial_dev, threaded_dev;
  const auto serial = et::diff::run_batched(serial_dev, m.layers, m.opt, 4,
                                            max_context, requests, kVocab, 1);
  const auto threaded =
      et::diff::run_batched(threaded_dev, m.layers, m.opt, 4, max_context,
                            requests, kVocab, threads);

  et::diff::expect_bit_identical(serial.outcomes, threaded.outcomes);
  EXPECT_EQ(serial.ticks, threaded.ticks);
  EXPECT_EQ(serial.batched_ticks, threaded.batched_ticks);
  EXPECT_EQ(log_fingerprint(serial_dev), log_fingerprint(threaded_dev));
  EXPECT_EQ(serial_dev.total_time_us(), threaded_dev.total_time_us());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(serial_dev.time_us_for_slot(s),
              threaded_dev.time_us_for_slot(s))
        << "slot " << s;
  }
}

TEST_P(ThreadsSweep, SequentialGenerateBitIdenticalAcrossThreads) {
  // The non-batched path too: nn::generate through a threads=N context
  // (kernel math row-partitioned over the pool) equals the serial run.
  const std::size_t threads = GetParam();
  const std::size_t max_new_tokens = 6;
  const std::size_t max_context = max_new_tokens + 1;
  const Model m = make_model(2, 48, 3, max_context, 17);
  const std::vector<et::diff::Request> requests = {
      {3, max_new_tokens, et::nn::kNoEosToken, 55}};

  et::gpusim::Device serial_dev, threaded_dev;
  const auto serial = et::diff::run_sequential(serial_dev, m.layers, m.opt,
                                               max_context, requests, kVocab);
  const auto threaded =
      et::diff::run_sequential(threaded_dev, m.layers, m.opt, max_context,
                               requests, kVocab, threads);
  et::diff::expect_bit_identical(serial, threaded);
  EXPECT_EQ(log_fingerprint(serial_dev), log_fingerprint(threaded_dev));
}

TEST_P(ThreadsSweep, EncoderForwardBitIdenticalAcrossThreads) {
  // Dense + GEMM-heavy forward: the row-partitioned gemm math must not
  // reassociate any reduction.
  const std::size_t threads = GetParam();
  const Model m = make_model(2, 64, 4, 48, 23);
  et::tensor::MatrixF x(48, 64);
  et::tensor::fill_normal(x, 29);

  et::gpusim::Device serial_dev, threaded_dev;
  et::core::ExecContext serial_ctx(serial_dev);
  et::core::ExecContext threaded_ctx(threaded_dev, threads);
  const auto a =
      et::nn::encoder_stack_forward(serial_ctx, x, m.layers, m.opt);
  const auto b =
      et::nn::encoder_stack_forward(threaded_ctx, x, m.layers, m.opt);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c), b(r, c)) << "(" << r << "," << c << ")";
    }
  }
  EXPECT_EQ(log_fingerprint(serial_dev), log_fingerprint(threaded_dev));
}

TEST_P(ThreadsSweep, InjectedFaultFiresAtSameLaunchIndex) {
  // With the injector armed, parallel_for degrades to the exact serial
  // loop, so the nth-launch rule kills the same logical launch — same
  // faulted kernel, same retired slot, same recovery — at every thread
  // count.
  const std::size_t threads = GetParam();
  const std::size_t max_new_tokens = 4;
  const std::size_t max_context = max_new_tokens + 2;
  const Model m = make_model(2, 32, 2, max_context, 31);

  std::vector<et::diff::Request> requests;
  for (std::size_t i = 0; i < 3; ++i) {
    requests.push_back({static_cast<std::int32_t>(i + 1), max_new_tokens,
                        et::nn::kNoEosToken, 60 + i});
  }

  const auto run_with = [&](std::size_t t) {
    et::gpusim::Device dev;
    dev.fault_injector().arm_nth_launch(40);
    auto run = et::diff::run_batched(dev, m.layers, m.opt, 3, max_context,
                                     requests, kVocab, t);
    return std::make_tuple(std::move(run), dev.fault_injector().launches_seen(),
                           log_fingerprint(dev), dev.fallback_log().size());
  };

  const auto [serial_run, serial_seen, serial_log, serial_falls] = run_with(1);
  const auto [threaded_run, threaded_seen, threaded_log, threaded_falls] =
      run_with(threads);

  et::diff::expect_bit_identical(serial_run.outcomes, threaded_run.outcomes);
  EXPECT_EQ(serial_seen, threaded_seen);
  EXPECT_EQ(serial_log, threaded_log);
  EXPECT_EQ(serial_falls, threaded_falls);
  EXPECT_EQ(serial_run.per_slot_fallback_ticks,
            threaded_run.per_slot_fallback_ticks);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadsSweep, ::testing::Values(1, 2, 8),
                         [](const auto& param_info) {
                           return "threads" + std::to_string(param_info.param);
                         });

}  // namespace
