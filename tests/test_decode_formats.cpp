// Decode-path weight layouts behind the nn::Model handle: the
// pre-computed W_VO fold (§3.1 / Eq. 5) and the attention-aware pruned
// formats (§4.3) must flow through every decode entry path — sequential
// generate(), the batched scheduler, the serving runtime — and produce
// transcripts BIT-IDENTICAL to their dense references at every thread
// count.
//
// Bit-identity (not allclose) is achievable because the references are
// constructed for exactness:
//   - the fold tests use a signed-selection W_O — each kept row holds
//     exactly one ±1 entry per head column block — so every folded W_VO
//     row is ±(a W_V row) and both paths add the same floats in the same
//     order;
//   - a masked-dense row dot over an all-zero row accumulates exactly +0,
//     which is what the condensed path writes for pruned positions;
//   - the tile-BCSR kernels walk kept tiles in ascending order, visiting
//     the surviving terms in the same order the masked-dense dot does.
// A single-ulp divergence anywhere flips the select() bit-hash, the token
// stream, and the test.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/kv_cache.hpp"
#include "core/weights.hpp"
#include "differential.hpp"
#include "serving/server.hpp"
#include "sparse/formats.hpp"
#include "sparse/mask.hpp"

namespace {

constexpr std::int32_t kVocab = 97;
constexpr std::size_t kDModel = 32;
constexpr std::size_t kHeads = 2;
constexpr std::size_t kDk = kDModel / kHeads;
constexpr std::size_t kMaxContext = 8;
constexpr std::size_t kFoldKept = 4;  // kept W_O rows under the fold

struct Stack {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

Stack make_dense_stack(std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = kDModel;
  cfg.num_heads = kHeads;
  cfg.d_ff = 2 * kDModel;
  Stack s;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    s.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  s.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, kMaxContext,
                              /*causal=*/true);
  s.opt.attn.precision = et::numeric::Precision::kFp32;
  return s;
}

const et::tensor::MatrixF& dense_matrix(const et::sparse::AnyWeight& w) {
  return std::get<et::sparse::DenseWeight>(w).matrix();
}

/// Signed-selection output projection: kept row r carries one ±1 per head
/// column block (at in-head feature r); all other rows are zero.
et::tensor::MatrixF selection_wo() {
  et::tensor::MatrixF wo(kDModel, kDModel);
  for (std::size_t r = 0; r < kFoldKept; ++r) {
    for (std::size_t h = 0; h < kHeads; ++h) {
      wo(r, h * kDk + r) = ((r + h) % 2 == 0) ? 1.0f : -1.0f;
    }
  }
  return wo;
}

/// Dense reference and folded stack sharing every projection; the fold is
/// exact by construction, so their decodes must agree bit for bit.
void make_fold_pair(std::uint64_t seed, Stack& dense, Stack& folded) {
  dense = make_dense_stack(seed);
  const auto wo = selection_wo();
  for (auto& l : dense.layers) l.attn.wo = et::sparse::DenseWeight(wo);
  folded = dense;
  std::vector<std::uint32_t> kept(kFoldKept);
  for (std::size_t r = 0; r < kFoldKept; ++r) {
    kept[r] = static_cast<std::uint32_t>(r);
  }
  for (auto& l : folded.layers) {
    l.attn.vo = et::core::precompute_vo(dense_matrix(l.attn.wv), wo, kHeads,
                                        kept);
  }
}

/// Masked-dense reference and condensable row-pruned stack: W_V keeps the
/// first half of every head's rows.
void make_row_pair(std::uint64_t seed, Stack& masked, Stack& pruned) {
  masked = make_dense_stack(seed);
  pruned = masked;
  std::vector<std::uint32_t> kept;
  for (std::size_t h = 0; h < kHeads; ++h) {
    for (std::size_t r = 0; r < kDk / 2; ++r) {
      kept.push_back(static_cast<std::uint32_t>(h * kDk + r));
    }
  }
  et::sparse::Mask mask(kDModel, kDModel, 1);
  for (std::size_t h = 0; h < kHeads; ++h) {
    for (std::size_t r = kDk / 2; r < kDk; ++r) {
      for (std::size_t c = 0; c < kDModel; ++c) mask(h * kDk + r, c) = 0;
    }
  }
  for (std::size_t l = 0; l < masked.layers.size(); ++l) {
    const auto wv = dense_matrix(masked.layers[l].attn.wv);
    auto wv_masked = wv;
    et::sparse::apply_mask(wv_masked, mask);
    masked.layers[l].attn.wv = et::sparse::DenseWeight(wv_masked);
    pruned.layers[l].attn.wv =
        et::sparse::RowPrunedWeight::from_kept_rows(wv, kept);
  }
}

/// Masked-dense reference and tile-pruned stack: W_Q loses a checkerboard
/// of 16×16 tiles.
void make_tile_pair(std::uint64_t seed, Stack& masked, Stack& pruned) {
  masked = make_dense_stack(seed);
  pruned = masked;
  const std::size_t side = et::sparse::kTileSide;
  et::sparse::Mask mask(kDModel, kDModel, 1);
  for (std::size_t tr = 0; tr < kDModel / side; ++tr) {
    for (std::size_t tc = 0; tc < kDModel / side; ++tc) {
      if ((tr + tc) % 2 == 0) continue;
      for (std::size_t r = 0; r < side; ++r) {
        for (std::size_t c = 0; c < side; ++c) {
          mask(tr * side + r, tc * side + c) = 0;
        }
      }
    }
  }
  for (std::size_t l = 0; l < masked.layers.size(); ++l) {
    const auto wq = dense_matrix(masked.layers[l].attn.wq);
    auto wq_masked = wq;
    et::sparse::apply_mask(wq_masked, mask);
    masked.layers[l].attn.wq = et::sparse::DenseWeight(wq_masked);
    pruned.layers[l].attn.wq =
        et::sparse::TilePrunedWeight::from_masked(wq, mask);
  }
}

std::vector<et::diff::Request> workload() {
  return {{3, 6, et::nn::kNoEosToken, 11},
          {5, 6, et::nn::kNoEosToken, 12},
          {7, 6, et::nn::kNoEosToken, 13}};
}

std::vector<et::diff::Arrival> arrivals_at_tick0() {
  std::vector<et::diff::Arrival> a;
  for (const auto& r : workload()) a.push_back({0, r});
  return a;
}

/// The differential sweep: the `candidate` stack decoded through every
/// entry path at threads {1, 2, 8} must reproduce the single-threaded
/// sequential decode of `reference` bit for bit.
void expect_equivalent_everywhere(const Stack& reference,
                                  const Stack& candidate) {
  const auto requests = workload();
  et::gpusim::Device ref_dev;
  const auto ref = et::diff::run_sequential(
      ref_dev, reference.layers, reference.opt, kMaxContext, requests, kVocab);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    et::gpusim::Device seq_dev, batch_dev, serve_dev;
    const auto seq =
        et::diff::run_sequential(seq_dev, candidate.layers, candidate.opt,
                                 kMaxContext, requests, kVocab, threads);
    et::diff::expect_bit_identical(ref, seq);

    const auto batched =
        et::diff::run_batched(batch_dev, candidate.layers, candidate.opt,
                              /*max_batch=*/2, kMaxContext, requests, kVocab,
                              threads);
    et::diff::expect_bit_identical(ref, batched.outcomes);

    const auto served = et::diff::run_served(
        serve_dev, candidate.layers, candidate.opt, kMaxContext,
        {/*max_batch=*/2, /*queue_capacity=*/8}, arrivals_at_tick0(), kVocab,
        threads);
    et::diff::expect_bit_identical(ref, served.outcomes);
  }
}

// ---------------------------------------------------------------------------
// The nn::Model handle: capability flags, widths, validation.
// ---------------------------------------------------------------------------
TEST(DecodeFormats, ModelHandleReportsLayoutAndWidths) {
  Stack dense, folded;
  make_fold_pair(41, dense, folded);

  const et::nn::Model d(&dense.layers, dense.opt, kMaxContext);
  EXPECT_FALSE(d.has_precomputed());
  EXPECT_EQ(d.weight_layout(), et::nn::WeightFormat::kDense);
  EXPECT_EQ(d.k_width(), kDModel);
  EXPECT_EQ(d.v_widths(), std::vector<std::size_t>({kDModel, kDModel}));
  ASSERT_EQ(d.prune_methods().size(), 1u);
  EXPECT_EQ(d.prune_methods()[0], et::sparse::PruneMethod::kDense);

  const et::nn::Model f(&folded.layers, folded.opt, kMaxContext);
  EXPECT_TRUE(f.has_precomputed());
  EXPECT_EQ(f.weight_layout(), et::nn::WeightFormat::kPrecomputed);
  EXPECT_EQ(f.v_width(0), kHeads * kFoldKept);
  EXPECT_EQ(f.v_width(1), kHeads * kFoldKept);
  EXPECT_EQ(f.num_layers(), 2u);

  Stack masked, row;
  make_row_pair(43, masked, row);
  const et::nn::Model r(&row.layers, row.opt, kMaxContext);
  EXPECT_EQ(r.weight_layout(), et::nn::WeightFormat::kPruned);
  EXPECT_EQ(r.v_width(0), kDModel / 2);  // Σkept across both head blocks

  Stack tmasked, tile;
  make_tile_pair(47, tmasked, tile);
  const et::nn::Model t(&tile.layers, tile.opt, kMaxContext);
  EXPECT_EQ(t.weight_layout(), et::nn::WeightFormat::kPruned);
  EXPECT_EQ(t.v_width(0), kDModel);  // a pruned W_Q leaves the V plane full
}

TEST(DecodeFormats, ModelHandleValidatesItsArguments) {
  Stack dense, folded;
  make_fold_pair(53, dense, folded);
  EXPECT_THROW(et::nn::Model(nullptr, dense.opt, kMaxContext),
               std::invalid_argument);
  EXPECT_THROW(et::nn::Model(&dense.layers, dense.opt, 0),
               std::invalid_argument);

  auto bad_layers = folded.layers;
  bad_layers[0].attn.vo.num_heads = kHeads + 1;
  EXPECT_THROW(et::nn::Model(&bad_layers, folded.opt, kMaxContext),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// KVCache / KVCachePool: independent K and V plane widths.
// ---------------------------------------------------------------------------
TEST(DecodeFormats, KvCacheStoresIndependentPlaneWidths) {
  et::core::KVCache cache(4, 32, 8);
  EXPECT_EQ(cache.k_width(), 32u);
  EXPECT_EQ(cache.v_width(), 8u);
  EXPECT_EQ(cache.memory_bytes(), 4 * (32 + 8) * sizeof(float));

  const std::vector<float> k(32, 1.0f), v(8, 2.0f), wide(32, 3.0f);
  cache.append(k, v);
  EXPECT_EQ(cache.used(), 1u);
  // A full-width V row no longer fits a condensed plane; the failed
  // append must leave both planes untouched.
  EXPECT_THROW(cache.append(k, wide), std::invalid_argument);
  EXPECT_EQ(cache.used(), 1u);
  while (!cache.full()) cache.append(k, v);
  EXPECT_THROW(cache.append(k, v), std::length_error);
}

TEST(DecodeFormats, KvCachePoolSizesEachLayerIndependently) {
  // Layer 0 condensed to 8 floats per V row, layer 1 full width.
  et::core::KVCachePool pool(2, 4, 32, {8, 32});
  EXPECT_EQ(pool.memory_bytes(),
            2 * (4 * (32 + 8) + 4 * (32 + 32)) * sizeof(float));
  const std::size_t slot = pool.acquire();
  ASSERT_EQ(pool.caches(slot).size(), 2u);
  EXPECT_EQ(pool.caches(slot)[0].v_width(), 8u);
  EXPECT_EQ(pool.caches(slot)[1].v_width(), 32u);
  EXPECT_EQ(pool.caches(slot)[0].k_width(), 32u);
  pool.release(slot);
}

// ---------------------------------------------------------------------------
// The differential sweep: every layout, every entry path, threads 1/2/8.
// ---------------------------------------------------------------------------
TEST(DecodeFormats, PrecomputedVoBitIdenticalToDenseUnfused) {
  Stack dense, folded;
  make_fold_pair(61, dense, folded);
  expect_equivalent_everywhere(dense, folded);
}

TEST(DecodeFormats, RowPrunedCondensedVBitIdenticalToMaskedDense) {
  Stack masked, pruned;
  make_row_pair(67, masked, pruned);
  expect_equivalent_everywhere(masked, pruned);
}

TEST(DecodeFormats, TilePrunedBitIdenticalToMaskedDense) {
  Stack masked, pruned;
  make_tile_pair(71, masked, pruned);
  expect_equivalent_everywhere(masked, pruned);
}

// ---------------------------------------------------------------------------
// Regression: the serving stack accepts every layout end to end (the old
// scheduler rejected pre-computed W_VO at construction).
// ---------------------------------------------------------------------------
TEST(DecodeFormats, ServerServesEveryLayoutEndToEnd) {
  Stack dense, folded, masked, row, tmasked, tile;
  make_fold_pair(73, dense, folded);
  make_row_pair(79, masked, row);
  make_tile_pair(83, tmasked, tile);
  for (const Stack* s : {&dense, &folded, &row, &tile}) {
    et::serving::InferenceServer server(
        et::nn::Model(&s->layers, s->opt, kMaxContext), {2, 8});
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    std::vector<et::serving::RequestHandle> handles;
    for (const auto& r : workload()) {
      et::serving::Request req;
      req.first_token = r.first_token;
      req.max_new_tokens = r.max_new_tokens;
      req.embed = et::diff::make_embed(kDModel, r.seed);
      req.select = et::diff::make_select(kVocab);
      handles.push_back(server.submit(std::move(req)));
    }
    server.drain(ctx);
    for (const auto& h : handles) {
      EXPECT_EQ(server.result(h).stop_reason, et::nn::StopReason::kMaxTokens);
      EXPECT_EQ(server.result(h).tokens.size(), 6u);
    }
  }
}

}  // namespace
