// INT8 quantization and batched (TurboTransformer-style) inference.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "kernels/gemm.hpp"
#include "nn/encoder.hpp"
#include "pruning/criteria.hpp"
#include "quant/quantize.hpp"
#include "sparse/formats.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"
#include "tensor/reference_gemm.hpp"

namespace {

using et::tensor::MatrixF;

// ------------------------------------------------------------- quant ----

TEST(Quantize, RoundTripWithinHalfStep) {
  MatrixF w(48, 64);
  et::tensor::fill_normal(w, 1);
  const auto qw = et::quant::quantize_weight(w);
  EXPECT_LE(et::quant::max_quantization_error_steps(w, qw), 0.5 + 1e-6);
}

TEST(Quantize, PerRowScalesTrackRowMagnitude) {
  MatrixF w(2, 4, 0.0f);
  w(0, 0) = 1.27f;   // row 0 max
  w(1, 2) = 12.7f;   // row 1 max, 10x larger
  const auto qw = et::quant::quantize_weight(w);
  EXPECT_FLOAT_EQ(qw.row_scale[0], 0.01f);
  EXPECT_FLOAT_EQ(qw.row_scale[1], 0.1f);
  EXPECT_EQ(qw.q(0, 0), 127);
  EXPECT_EQ(qw.q(1, 2), 127);
}

TEST(Quantize, ZeroRowSafe) {
  MatrixF w(2, 4, 0.0f);
  w(1, 0) = 1.0f;
  const auto qw = et::quant::quantize_weight(w);
  const auto back = et::quant::dequantize(qw);
  EXPECT_EQ(back(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(back(1, 0), 1.0f);
}

TEST(Quantize, Int8LinearCloseToFp32) {
  MatrixF x(16, 64), w(32, 64);
  et::tensor::fill_normal(x, 2);
  et::tensor::fill_normal(w, 3, 0.0f, 0.1f);
  const auto qw = et::quant::quantize_weight(w);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF y = et::quant::int8_linear(ctx, x, qw);
  const MatrixF ref = et::tensor::reference_gemm_nt(x, w);
  // int8 with per-row weight scales keeps ~2 decimal digits here.
  EXPECT_TRUE(allclose(y, ref, 0.12, 0.05))
      << "max diff " << max_abs_diff(y, ref);
}

TEST(Quantize, Int8LinearTrafficIsOneBytePerOperand) {
  MatrixF x(128, 256), w(256, 256);
  et::tensor::fill_normal(x, 4);
  et::tensor::fill_normal(w, 5);
  const auto qw = et::quant::quantize_weight(w);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  (void)et::quant::int8_linear(ctx, x, qw);
  const auto int8_loads = dev.history()[0].global_load_bytes;
  dev.reset();
  (void)et::kernels::gemm_nt(ctx, x, w, et::numeric::Precision::kMixed,
                             &et::kernels::gemm_algos()[3]);
  const auto fp16_loads = dev.history()[0].global_load_bytes;
  EXPECT_LT(int8_loads, fp16_loads)
      << "one byte per element beats two";
}

TEST(Quantize, Int8FasterThanFp16OnModel) {
  MatrixF x(128, 768), w(3072, 768);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::fill_normal(w, 6);
  const auto qw = et::quant::quantize_weight(w);
  (void)et::quant::int8_linear(ctx, x, qw);
  const double int8_us = dev.total_time_us();
  dev.reset();
  (void)et::kernels::gemm_nt(ctx, x, w, et::numeric::Precision::kMixed);
  const double fp16_us = dev.total_time_us();
  EXPECT_LT(int8_us, fp16_us);
}

TEST(Quantize, ComposesWithTilePruning) {
  // Quantize only the surviving tiles: dequantized result must respect
  // the mask exactly.
  MatrixF w(64, 64);
  et::tensor::fill_normal(w, 7);
  const auto mask = et::pruning::tile_mask(w, 0.5);
  MatrixF masked = w;
  et::sparse::apply_mask(masked, mask);
  const auto qw = et::quant::quantize_weight(masked);
  const auto back = et::quant::dequantize(qw);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (mask.flat()[i] == 0) {
      EXPECT_EQ(back.flat()[i], 0.0f) << "pruned weights must stay zero";
    }
  }
}

// ----------------------------------------------------------- batching ----

TEST(Batched, MatchesPerSampleForward) {
  et::nn::ModelConfig model;
  model.d_model = 32;
  model.num_heads = 2;
  model.d_ff = 64;
  const auto w = et::nn::make_dense_encoder_weights(model, 8);

  std::vector<MatrixF> batch;
  for (const std::size_t seq : {8u, 12u, 16u}) {
    MatrixF x(seq, 32);
    et::tensor::fill_normal(x, 80 + seq, 0.0f, 0.5f);
    batch.push_back(std::move(x));
  }

  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 8);
  opt.attn.precision = et::numeric::Precision::kFp32;

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const auto outs = et::nn::batched_encoder_forward(ctx, batch, w, opt);
  ASSERT_EQ(outs.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto single_opt = opt;
    single_opt.attn.seq_len = batch[i].rows();
    et::gpusim::Device single;
    et::core::ExecContext single_ctx(single);
    const MatrixF ref =
        et::nn::encoder_forward(single_ctx, batch[i], w, single_opt);
    EXPECT_TRUE(allclose(outs[i], ref, 1e-4, 1e-4))
        << "sample " << i << " max diff " << max_abs_diff(outs[i], ref);
  }
}

TEST(Batched, AmortizesLinearKernels) {
  et::nn::ModelConfig model;
  model.d_model = 64;
  model.num_heads = 4;
  model.d_ff = 128;
  const auto w = et::nn::make_dense_encoder_weights(model, 9);
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 16);

  std::vector<MatrixF> batch(8, MatrixF(16, 64));

  et::gpusim::Device batched;
  et::core::ExecContext batched_ctx(batched);
  batched.set_traffic_only(true);
  (void)et::nn::batched_encoder_forward(batched_ctx, batch, w, opt);

  et::gpusim::Device sequential;
  et::core::ExecContext sequential_ctx(sequential);
  sequential.set_traffic_only(true);
  for (const auto& x : batch) {
    (void)et::nn::encoder_forward(sequential_ctx, x, w, opt);
  }
  EXPECT_LT(batched.launch_count(), sequential.launch_count());
  EXPECT_LT(batched.total_time_us(), sequential.total_time_us())
      << "throughput mode amortizes weight loads and launches";
}

TEST(Batched, VariableLengthsNoPadding) {
  // The §6 TurboTransformer point: no batch padding. Total processed rows
  // equal the sum of true lengths, not batch × max.
  et::nn::ModelConfig model;
  model.d_model = 32;
  model.num_heads = 2;
  model.d_ff = 64;
  const auto w = et::nn::make_dense_encoder_weights(model, 10);
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 8);

  std::vector<MatrixF> batch;
  batch.emplace_back(8, 32);
  batch.emplace_back(64, 32);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  const auto outs = et::nn::batched_encoder_forward(ctx, batch, w, opt);
  EXPECT_EQ(outs[0].rows(), 8u);
  EXPECT_EQ(outs[1].rows(), 64u);
  const double unpadded_us = dev.total_time_us();

  // A padded batch (both sequences at the max length) must cost more:
  // that extra cost is exactly what padding-free batching avoids.
  std::vector<MatrixF> padded;
  padded.emplace_back(64, 32);
  padded.emplace_back(64, 32);
  et::gpusim::Device padded_dev;
  et::core::ExecContext padded_dev_ctx(padded_dev);
  padded_dev.set_traffic_only(true);
  (void)et::nn::batched_encoder_forward(padded_dev_ctx, padded, w, opt);
  EXPECT_GT(padded_dev.total_time_us(), unpadded_us);
}

}  // namespace
