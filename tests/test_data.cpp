// Synthetic datasets and metrics.
#include <gtest/gtest.h>

#include <map>

#include "data/metrics.hpp"
#include "data/synthetic_glue.hpp"
#include "data/synthetic_text.hpp"

namespace {

using et::data::GlueDataset;
using et::data::GlueDatasetConfig;
using et::data::GlueTask;
using et::data::SyntheticCorpus;
using et::data::TextCorpusConfig;

TEST(Metrics, Accuracy) {
  const std::int32_t p[] = {0, 1, 1, 0};
  const std::int32_t l[] = {0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(et::data::accuracy(p, l), 0.75);
}

TEST(Metrics, F1KnownValue) {
  // tp=2, fp=1, fn=1 -> F1 = 2·2/(4+1+1) = 2/3.
  const std::int32_t p[] = {1, 1, 1, 0, 0};
  const std::int32_t l[] = {1, 1, 0, 1, 0};
  EXPECT_NEAR(et::data::f1_score(p, l), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, F1DegenerateCases) {
  const std::int32_t none_pos_p[] = {0, 0};
  const std::int32_t none_pos_l[] = {0, 0};
  EXPECT_EQ(et::data::f1_score(none_pos_p, none_pos_l), 0.0);
}

TEST(Metrics, SpearmanPerfectAndInverted) {
  const float a[] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float up[] = {10.0f, 20.0f, 25.0f, 100.0f};  // monotone
  const float down[] = {4.0f, 3.0f, 2.0f, 1.0f};
  EXPECT_NEAR(et::data::spearman(a, up), 1.0, 1e-12);
  EXPECT_NEAR(et::data::spearman(a, down), -1.0, 1e-12);
}

TEST(Metrics, SpearmanHandlesTies) {
  const float a[] = {1.0f, 2.0f, 2.0f, 3.0f};
  const float b[] = {1.0f, 2.0f, 2.0f, 3.0f};
  EXPECT_NEAR(et::data::spearman(a, b), 1.0, 1e-12);
}

TEST(Corpus, DeterministicForSeed) {
  TextCorpusConfig cfg;
  const SyntheticCorpus a(cfg), b(cfg);
  ASSERT_EQ(a.train().size(), b.train().size());
  EXPECT_EQ(a.train()[0].tokens, b.train()[0].tokens);
  EXPECT_EQ(a.successor_table(), b.successor_table());
}

TEST(Corpus, TargetsFollowSuccessorTableMostOfTheTime) {
  TextCorpusConfig cfg;
  cfg.determinism = 0.9;
  const SyntheticCorpus corpus(cfg);
  std::size_t follows = 0, total = 0;
  for (const auto& ex : corpus.train()) {
    for (std::size_t i = 0; i < ex.tokens.size(); ++i) {
      follows += (ex.targets[i] == corpus.successor_table()[ex.tokens[i]]);
      ++total;
    }
  }
  const double frac = static_cast<double>(follows) /
                      static_cast<double>(total);
  EXPECT_GT(frac, 0.85);
  EXPECT_LT(frac, 0.97);
}

TEST(Corpus, ChainIsConsistent) {
  const SyntheticCorpus corpus(TextCorpusConfig{});
  for (const auto& ex : corpus.train()) {
    for (std::size_t i = 0; i + 1 < ex.tokens.size(); ++i) {
      EXPECT_EQ(ex.tokens[i + 1], ex.targets[i])
          << "targets are the shifted token stream";
    }
  }
}

TEST(Glue, SevenTasksWithPaperMetrics) {
  using et::data::GlueMetric;
  EXPECT_EQ(et::data::glue_task_spec(GlueTask::kMNLI).num_classes, 3u);
  EXPECT_EQ(et::data::glue_task_spec(GlueTask::kQQP).metric, GlueMetric::kF1);
  EXPECT_EQ(et::data::glue_task_spec(GlueTask::kMRPC).metric, GlueMetric::kF1);
  EXPECT_EQ(et::data::glue_task_spec(GlueTask::kSTSB).metric,
            GlueMetric::kSpearman);
  EXPECT_EQ(et::data::glue_task_spec(GlueTask::kSTSB).num_classes, 1u);
  EXPECT_EQ(et::data::glue_task_spec(GlueTask::kWNLI).signal_strength, 0.0);
}

TEST(Glue, WnliMajorityFractionNear563) {
  GlueDatasetConfig cfg;
  cfg.size_scale = 4.0;  // more samples for a tighter estimate
  const GlueDataset ds(GlueTask::kWNLI, cfg);
  std::size_t zeros = 0;
  for (const auto& ex : ds.train()) zeros += (ex.label == 0);
  const double frac = static_cast<double>(zeros) /
                      static_cast<double>(ds.train().size());
  EXPECT_NEAR(frac, 0.563, 0.08);
}

TEST(Glue, ClassificationTokensCarrySignal) {
  const GlueDataset ds(GlueTask::kSST2, GlueDatasetConfig{});
  // Count marker-region tokens (top of vocab) per class.
  std::map<std::int32_t, std::size_t> marker_hits;
  for (const auto& ex : ds.train()) {
    for (const auto t : ex.tokens) {
      if (t >= 240) ++marker_hits[ex.label];
    }
  }
  EXPECT_GT(marker_hits[0], 0u);
  EXPECT_GT(marker_hits[1], 0u);
}

TEST(Glue, RegressionTargetsInRange) {
  const GlueDataset ds(GlueTask::kSTSB, GlueDatasetConfig{});
  for (const auto& ex : ds.train()) {
    EXPECT_GE(ex.target, 0.0f);
    EXPECT_LE(ex.target, 5.0f);
  }
}

TEST(Glue, SizeScaleShrinks) {
  GlueDatasetConfig small;
  small.size_scale = 0.25;
  const GlueDataset big(GlueTask::kMNLI, GlueDatasetConfig{});
  const GlueDataset tiny(GlueTask::kMNLI, small);
  EXPECT_LT(tiny.train().size(), big.train().size());
  EXPECT_GE(tiny.train().size(), 1u);
}

}  // namespace
