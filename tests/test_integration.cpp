// End-to-end: train a tiny transformer on synthetic data, prune it with
// each strategy, retrain, deploy to the inference stack, and check both
// numerics and the headline performance orderings.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "data/metrics.hpp"
#include "data/synthetic_text.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/param.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::pruning::Strategy;
using et::tensor::MatrixF;

struct TrainedLM {
  et::train::TransformerLM lm;
  et::data::SyntheticCorpus corpus;

  TrainedLM()
      : lm(
            [] {
              et::train::TrainModelConfig cfg;
              cfg.vocab_size = 64;
              cfg.d_model = 64;
              cfg.num_heads = 4;
              cfg.d_ff = 128;
              cfg.num_layers = 1;
              return cfg;
            }(),
            21),
        corpus([] {
          et::data::TextCorpusConfig cfg;
          cfg.vocab_size = 64;
          cfg.num_train_sequences = 24;
          cfg.num_valid_sequences = 8;
          cfg.seq_len = 16;
          return cfg;
        }()) {}

  void train_epochs(int epochs, float lr = 3e-3f) {
    et::train::AdamW opt({.lr = lr});
    long t = 0;
    for (int e = 0; e < epochs; ++e) {
      for (const auto& ex : corpus.train()) {
        lm.zero_grad();
        MatrixF dlogits;
        const MatrixF logits = lm.forward(ex.tokens);
        (void)et::train::cross_entropy_lm(logits, ex.targets, dlogits);
        lm.backward(dlogits);
        opt.step(lm.params());
        lm.aux_step(lr, 0.9f, 0.999f, 1e-8f, ++t);
      }
    }
  }

  [[nodiscard]] double next_token_accuracy() {
    std::size_t correct = 0, total = 0;
    for (const auto& ex : corpus.valid()) {
      const MatrixF logits = lm.forward(ex.tokens);
      for (std::size_t i = 0; i < ex.tokens.size(); ++i) {
        correct += (et::train::argmax_row(logits, i) == ex.targets[i]);
        ++total;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  }
};

TEST(Integration, TrainPruneRetrainKeepsMostAccuracy) {
  TrainedLM t;
  t.train_epochs(8);
  const double dense_acc = t.next_token_accuracy();
  EXPECT_GT(dense_acc, 0.5) << "pre-trained model must beat chance (~1/64)";

  // Tile-prune at 50% and retrain.
  auto masks = et::pruning::compute_model_masks(t.lm.trunk, Strategy::kTile,
                                                0.5);
  et::pruning::attach_masks(t.lm.trunk, masks);
  const double pruned_acc = t.next_token_accuracy();
  t.train_epochs(4);
  const double retrained_acc = t.next_token_accuracy();

  EXPECT_GE(retrained_acc, pruned_acc)
      << "masked retraining recovers accuracy (Fig. 6 step (vi))";
  EXPECT_GT(retrained_acc, 0.70 * dense_acc)
      << "dense " << dense_acc << " -> pruned " << pruned_acc
      << " -> retrained " << retrained_acc;

  // Masks stayed enforced through retraining.
  const auto& p = t.lm.trunk.layers()[0].mha.wq.weight;
  for (std::size_t i = 0; i < p.w.size(); ++i) {
    if (masks.layers[0].wq.flat()[i] == 0) {
      ASSERT_EQ(p.w.flat()[i], 0.0f);
    }
  }
}

TEST(Integration, DeployedEncoderMatchesTrainForward) {
  // The inference-side encoder (dense deploy, FP32) must reproduce the
  // training-side forward pass up to the attention-bias difference — so we
  // zero the attention biases first.
  TrainedLM t;
  t.train_epochs(2);
  auto& layer = t.lm.trunk.layers()[0];
  for (auto* lin : {&layer.mha.wq, &layer.mha.wk, &layer.mha.wv,
                    &layer.mha.wo}) {
    std::fill(lin->bias.begin(), lin->bias.end(), 0.0f);
  }

  const MatrixF x = [&] {
    MatrixF m(16, 64);
    et::tensor::fill_normal(m, 31, 0.0f, 0.5f);
    return m;
  }();
  const MatrixF train_out = layer.forward(x);

  // Deploy densely (ratio 0 tile masks are all-ones).
  const auto masks =
      et::pruning::compute_layer_masks(layer, Strategy::kTile, 0.0);
  const auto weights =
      et::pruning::deploy_layer(layer, masks, Strategy::kTile);

  et::nn::EncoderOptions opt;
  opt.pipeline = et::nn::Pipeline::kET;
  opt.attn.seq_len = 16;
  opt.attn.d_model = 64;
  opt.attn.num_heads = 4;
  opt.attn.precision = et::numeric::Precision::kFp32;
  opt.attn.causal_mask = true;

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF infer_out = et::nn::encoder_forward(ctx, x, weights, opt);
  EXPECT_TRUE(et::tensor::allclose(infer_out, train_out, 5e-3, 5e-3))
      << "max diff " << et::tensor::max_abs_diff(infer_out, train_out);
}

TEST(Integration, AttentionAwareFasterThanTileFasterThanColumn) {
  // §5.3.3: at the same ratio, attention-aware < tile < column in latency.
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.d_ff = 3072;
  cfg.num_layers = 1;
  et::train::TransformerModel model(cfg, 41);

  const auto run = [&](Strategy s) {
    const auto masks =
        et::pruning::compute_layer_masks(model.layers()[0], s, 0.4);
    const auto w = et::pruning::deploy_layer(model.layers()[0], masks, s);
    et::nn::EncoderOptions opt;
    opt.pipeline = et::nn::Pipeline::kET;
    opt.attn.seq_len = 128;
    opt.attn.d_model = 768;
    opt.attn.num_heads = 12;
    opt.attn.precision = et::numeric::Precision::kPureFp16;
    opt.attn.causal_mask = false;
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    MatrixF x(128, 768);
    (void)et::nn::encoder_forward(ctx, x, w, opt);
    return dev.total_time_us();
  };

  const double column = run(Strategy::kColumn);
  const double tile = run(Strategy::kTile);
  const double aware = run(Strategy::kAttentionAware);
  const double irregular = run(Strategy::kIrregular);

  EXPECT_LT(aware, tile) << "attention-aware exploits V/Z sparsity";
  EXPECT_LT(tile, column) << "tile avoids gather/scatter overhead";
  EXPECT_GT(irregular, 5.0 * tile) << "irregular is the slow strawman";
}

TEST(Integration, FullPipelineSweepStaysFinite) {
  // Smoke: every pipeline × every strategy deploys and runs without
  // shared-memory violations at BERT_BASE scale, seq 64–384.
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.d_ff = 3072;
  cfg.num_layers = 1;
  et::train::TransformerModel model(cfg, 51);
  const auto masks = et::pruning::compute_model_masks(
      model, Strategy::kAttentionAware, 0.5);
  const auto layers = et::pruning::deploy_model(model, masks,
                                                Strategy::kAttentionAware);

  for (const std::size_t seq : {64u, 128u, 256u, 384u}) {
    et::nn::EncoderOptions opt;
    opt.pipeline = et::nn::Pipeline::kET;
    opt.attn.seq_len = seq;
    opt.attn.d_model = 768;
    opt.attn.num_heads = 12;
    opt.attn.precision = et::numeric::Precision::kPureFp16;
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    MatrixF x(seq, 768);
    (void)et::nn::encoder_stack_forward(ctx, x, layers, opt);
    EXPECT_GT(dev.total_time_us(), 0.0);
    EXPECT_TRUE(std::isfinite(dev.total_time_us()));
  }
}

}  // namespace
