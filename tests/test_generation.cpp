// KV-cached autoregressive inference: the incremental path must equal the
// full causal forward position by position, and its kernel profile must
// show the generation regime (context-linear attention cost, weight-bound
// linears).
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "core/kv_cache.hpp"
#include "nn/generation.hpp"
#include "pruning/criteria.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"

namespace {

using et::tensor::MatrixF;

et::nn::ModelConfig tiny_model() {
  et::nn::ModelConfig cfg;
  cfg.num_layers = 2;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.d_ff = 64;
  return cfg;
}

MatrixF row_of(const MatrixF& m, std::size_t r) {
  MatrixF out(1, m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) out(0, c) = m(r, c);
  return out;
}

TEST(KVCache, AppendAndPrefix) {
  et::core::KVCache cache(4, 3);
  EXPECT_EQ(cache.used(), 0u);
  const float k1[] = {1, 2, 3};
  const float v1[] = {4, 5, 6};
  cache.append(k1, v1);
  cache.append(v1, k1);
  EXPECT_EQ(cache.used(), 2u);
  const auto k = cache.k_prefix();
  EXPECT_EQ(k.rows(), 2u);
  EXPECT_EQ(k(0, 2), 3.0f);
  EXPECT_EQ(k(1, 0), 4.0f);
  cache.reset();
  EXPECT_EQ(cache.used(), 0u);
}

TEST(KVCache, ThrowsWhenFull) {
  et::core::KVCache cache(1, 2);
  const float r[] = {1, 2};
  cache.append(r, r);
  EXPECT_TRUE(cache.full());
  EXPECT_THROW(cache.append(r, r), std::length_error);
}

TEST(KVCache, RejectedAppendLeavesBothPlanesUntouched) {
  // Regression: every validation must precede the first write, or a
  // rejected append leaves K one row longer than V (or a row half-set).
  et::core::KVCache cache(2, 3);
  const float k1[] = {1, 2, 3};
  const float v1[] = {4, 5, 6};
  const float narrow[] = {7, 8};
  cache.append(k1, v1);

  EXPECT_THROW(cache.append(narrow, v1), std::invalid_argument);
  EXPECT_THROW(cache.append(k1, narrow), std::invalid_argument);
  EXPECT_EQ(cache.used(), 1u);
  const auto k = cache.k_prefix();
  const auto v = cache.v_prefix();
  ASSERT_EQ(k.rows(), 1u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(k(0, c), k1[c]);
    EXPECT_EQ(v(0, c), v1[c]);
  }

  // The capacity check fires before the width check touches anything.
  cache.append(v1, k1);
  EXPECT_THROW(cache.append(k1, narrow), std::length_error);
  EXPECT_EQ(cache.used(), 2u);
  EXPECT_EQ(cache.k_prefix()(1, 0), 4.0f);
  EXPECT_EQ(cache.v_prefix()(1, 0), 1.0f);
}

TEST(KVCachePool, RecyclesSlotsAndValidatesRelease) {
  et::core::KVCachePool pool(2, /*num_layers=*/3, /*capacity=*/4,
                             /*d_model=*/3);
  EXPECT_EQ(pool.num_slots(), 2u);
  EXPECT_EQ(pool.free_slots(), 2u);

  const std::size_t a = pool.acquire();
  const std::size_t b = pool.acquire();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_FALSE(pool.has_free());
  EXPECT_THROW((void)pool.acquire(), std::runtime_error);
  ASSERT_EQ(pool.caches(a).size(), 3u);

  const float r[] = {1, 2, 3};
  pool.caches(a)[0].append(r, r);
  pool.release(a);
  EXPECT_THROW(pool.release(a), std::invalid_argument);
  EXPECT_THROW(pool.release(99), std::invalid_argument);

  // Reacquiring hands back reset caches — stale context must never leak
  // between sequences.
  const std::size_t again = pool.acquire();
  EXPECT_EQ(again, a);
  EXPECT_EQ(pool.caches(again)[0].used(), 0u);
}

TEST(IncrementalAttention, MatchesCausalAttentionPerPosition) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = 12;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.precision = et::numeric::Precision::kFp32;
  cfg.causal_mask = true;
  const auto w = et::core::make_dense_weights(cfg, 1);
  MatrixF x(12, 32);
  et::tensor::fill_normal(x, 2);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF full = et::core::otf_attention(ctx, x, w, cfg);

  et::core::KVCache cache(12, 32);
  for (std::size_t t = 0; t < 12; ++t) {
    const MatrixF step =
        et::core::incremental_attention(ctx, row_of(x, t), w, cfg, cache);
    for (std::size_t c = 0; c < 32; ++c) {
      ASSERT_NEAR(step(0, c), full(t, c), 1e-4f)
          << "position " << t << " col " << c;
    }
  }
}

TEST(IncrementalAttention, RejectsPrecomputedWeights) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = 4;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  auto w = et::core::make_dense_weights(cfg, 3);
  const auto& wv = std::get<et::sparse::DenseWeight>(w.wv).matrix();
  const auto& wo = std::get<et::sparse::DenseWeight>(w.wo).matrix();
  w.vo = et::core::precompute_vo(wv, wo, cfg.num_heads);
  et::core::KVCache cache(4, 32);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  MatrixF x(1, 32);
  EXPECT_THROW(
      (void)et::core::incremental_attention(ctx, x, w, cfg, cache),
      std::invalid_argument);
}

TEST(GenerationSession, MatchesFullCausalForwardPerPosition) {
  const auto model = tiny_model();
  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 10 + l));
  }
  MatrixF x(10, model.d_model);
  et::tensor::fill_normal(x, 4, 0.0f, 0.5f);

  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 10,
                                 /*causal=*/true);
  opt.attn.precision = et::numeric::Precision::kFp32;

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF full = et::nn::encoder_stack_forward(ctx, x, layers, opt);

  et::nn::GenerationSession session(
      et::nn::Model(&layers, opt, /*max_context=*/16));
  for (std::size_t t = 0; t < x.rows(); ++t) {
    const MatrixF h = session.step(ctx, row_of(x, t));
    for (std::size_t c = 0; c < x.cols(); ++c) {
      ASSERT_NEAR(h(0, c), full(t, c), 2e-3f)
          << "position " << t << " col " << c;
    }
  }
  EXPECT_EQ(session.context_length(), 10u);
}

TEST(GenerationSession, PrimeEqualsSteps) {
  const auto model = tiny_model();
  std::vector<et::nn::EncoderWeights> layers = {
      et::nn::make_dense_encoder_weights(model, 20)};
  MatrixF prompt(6, model.d_model);
  et::tensor::fill_normal(prompt, 5, 0.0f, 0.5f);
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 6, true);
  opt.attn.precision = et::numeric::Precision::kFp32;

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const et::nn::Model model_handle(&layers, opt, 8);
  et::nn::GenerationSession a(model_handle), b(model_handle);
  const MatrixF via_prime = a.prime(ctx, prompt);
  MatrixF via_steps;
  for (std::size_t t = 0; t < prompt.rows(); ++t) {
    via_steps = b.step(ctx, row_of(prompt, t));
  }
  EXPECT_TRUE(allclose(via_prime, via_steps, 1e-6, 1e-6));
}

TEST(GenerationSession, StepCostGrowsLinearlyWithContext) {
  // The attention kernel's loads scale with the cache length; the linears
  // stay constant — the classic generation cost profile.
  const auto model = tiny_model();
  std::vector<et::nn::EncoderWeights> layers = {
      et::nn::make_dense_encoder_weights(model, 21)};
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 1, true);

  et::nn::GenerationSession session(et::nn::Model(&layers, opt, 512));
  MatrixF row(1, model.d_model);

  double early = 0.0, late = 0.0;
  for (int t = 0; t < 400; ++t) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    (void)session.step(ctx, row);
    const double us = dev.time_us_matching("incremental_otf_attention");
    if (t == 10) early = us;
    if (t == 390) late = us;
  }
  EXPECT_GT(late, early) << "attention cost must grow with context";
}

TEST(GenerationSession, WorksWithPrunedWeights) {
  const auto model = tiny_model();
  auto w = et::nn::make_dense_encoder_weights(model, 22);
  const auto& wq = std::get<et::sparse::DenseWeight>(w.attn.wq).matrix();
  w.attn.wq = et::sparse::make_weight(et::sparse::PruneMethod::kTile, wq,
                                      et::pruning::tile_mask(wq, 0.5));
  std::vector<et::nn::EncoderWeights> layers = {std::move(w)};
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 1, true);
  opt.attn.precision = et::numeric::Precision::kFp32;

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&layers, opt, 8));
  MatrixF row(1, model.d_model);
  et::tensor::fill_normal(row, 23, 0.0f, 0.5f);
  for (int t = 0; t < 4; ++t) {
    const MatrixF h = session.step(ctx, row);
    for (float v : h.flat()) ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(dev.time_us_matching("bcsr"), 0.0);
}

TEST(Generate, StopsAtEosTokenAndKeepsTheEmission) {
  const auto model = tiny_model();
  std::vector<et::nn::EncoderWeights> layers = {
      et::nn::make_dense_encoder_weights(model, 30)};
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 8, true);
  opt.attn.precision = et::numeric::Precision::kFp32;

  const auto embed = [&](std::int32_t token, std::size_t) {
    MatrixF row(1, model.d_model);
    row(0, 0) = 0.1f * static_cast<float>(token);
    return row;
  };
  const auto select = [](const MatrixF&) { return std::int32_t{5}; };

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(et::nn::Model(&layers, opt, 8));
  const auto r =
      et::nn::generate(ctx, session, 1, 6, embed, select, /*eos_token=*/5);
  EXPECT_EQ(r.stop_reason, et::nn::StopReason::kEos);
  ASSERT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0], 5);

  // A negative eos_token (the default) disables the check entirely.
  session.reset();
  const auto full = et::nn::generate(ctx, session, 1, 6, embed, select);
  EXPECT_EQ(full.stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(full.tokens.size(), 6u);
}

TEST(StopReason, ToStringIsDistinctForEveryEnumerator) {
  // Regression for the serving-layer extension (kCancelled /
  // kDeadlineExceeded / kRejected): every enumerator round-trips to a
  // distinct, non-placeholder string, and kStopReasonCount matches the
  // enum. to_string() is a no-default switch, so adding an enumerator
  // without a case breaks the build; adding one without bumping
  // kStopReasonCount breaks this test.
  std::set<std::string_view> names;
  for (std::size_t r = 0; r < et::nn::kStopReasonCount; ++r) {
    const auto name = et::nn::to_string(static_cast<et::nn::StopReason>(r));
    EXPECT_NE(name, "?") << "enumerator " << r << " missing a switch case";
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate to_string value: " << name;
  }
  EXPECT_EQ(names.size(), et::nn::kStopReasonCount);
  // Spot-check the serving additions by exact spelling — these strings
  // are metric names (`stop_<reason>`) and part of the JSON contract.
  EXPECT_EQ(et::nn::to_string(et::nn::StopReason::kCancelled), "cancelled");
  EXPECT_EQ(et::nn::to_string(et::nn::StopReason::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(et::nn::to_string(et::nn::StopReason::kRejected), "rejected");
}

}  // namespace
