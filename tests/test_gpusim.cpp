// Simulated device: launch logging, shared-memory enforcement, latency
// model shape, profiler aggregation.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/latency_model.hpp"
#include "gpusim/profiler.hpp"

namespace {

using et::gpusim::AccessPattern;
using et::gpusim::Device;
using et::gpusim::DeviceSpec;
using et::gpusim::KernelStats;

TEST(Device, RecordsLaunches) {
  Device dev;
  {
    auto l = dev.launch({.name = "k1", .ctas = 10});
    l.load_bytes(1024);
    l.store_bytes(512);
    l.fp_ops(2048);
  }
  ASSERT_EQ(dev.launch_count(), 1u);
  const auto& k = dev.history()[0];
  EXPECT_EQ(k.name, "k1");
  EXPECT_EQ(k.global_load_bytes, 1024u);
  EXPECT_EQ(k.global_store_bytes, 512u);
  EXPECT_EQ(k.fp_ops, 2048u);
  EXPECT_GT(k.time_us, 0.0);
}

TEST(Device, TransactionsAre32ByteSectors) {
  KernelStats k;
  k.global_load_bytes = 100;  // 4 sectors
  k.global_store_bytes = 32;  // 1 sector
  EXPECT_EQ(k.gld_transactions(), 4u);
  EXPECT_EQ(k.gst_transactions(), 1u);
}

TEST(Device, SharedMemOverflowThrows) {
  Device dev;
  const auto cap = dev.spec().shared_mem_per_cta_bytes;
  EXPECT_TRUE(dev.fits_shared(cap));
  EXPECT_FALSE(dev.fits_shared(cap + 1));
  EXPECT_THROW((void)dev.launch({.name = "too_big",
                                 .ctas = 1,
                                 .shared_bytes_per_cta = cap + 1}),
               et::gpusim::SharedMemOverflow);
}

TEST(Device, MoveLaunchDoesNotDoubleRecord) {
  Device dev;
  {
    auto l = dev.launch({.name = "k"});
    auto l2 = std::move(l);
    l2.load_bytes(64);
  }
  EXPECT_EQ(dev.launch_count(), 1u);
}

TEST(Device, ResetClearsLog) {
  Device dev;
  { auto l = dev.launch({.name = "k"}); }
  dev.reset();
  EXPECT_EQ(dev.launch_count(), 0u);
  EXPECT_EQ(dev.total_time_us(), 0.0);
}

TEST(Device, TimeMatchingFiltersByName) {
  Device dev;
  {
    auto l = dev.launch({.name = "gemm_a"});
    l.load_bytes(1 << 20);
  }
  {
    auto l = dev.launch({.name = "softmax"});
    l.load_bytes(1 << 20);
  }
  EXPECT_GT(dev.time_us_matching("gemm"), 0.0);
  EXPECT_LT(dev.time_us_matching("gemm"), dev.total_time_us());
  EXPECT_EQ(dev.time_us_matching("nothing"), 0.0);
}

TEST(LatencyModel, LaunchOverheadFloor) {
  const DeviceSpec spec;
  KernelStats k;
  k.ctas = 80;
  const auto b = estimate_latency(k, spec);
  EXPECT_GE(b.total_us, spec.kernel_launch_us);
}

TEST(LatencyModel, MoreBytesTakeLonger) {
  const DeviceSpec spec;
  KernelStats small, big;
  small.ctas = big.ctas = 80;
  small.global_load_bytes = 1 << 20;
  big.global_load_bytes = 64 << 20;
  EXPECT_LT(estimate_latency(small, spec).total_us,
            estimate_latency(big, spec).total_us);
}

TEST(LatencyModel, LargerTransfersAchieveHigherBandwidth) {
  const DeviceSpec spec;
  KernelStats small, big;
  small.ctas = big.ctas = 80;
  small.global_load_bytes = 256 << 10;
  big.global_load_bytes = 64 << 20;
  apply_latency_model(small, spec);
  apply_latency_model(big, spec);
  EXPECT_LT(small.achieved_gbps(), big.achieved_gbps())
      << "the bandwidth ramp is what penalizes tiny per-operator kernels";
}

TEST(LatencyModel, LowOccupancyHurts) {
  const DeviceSpec spec;
  KernelStats narrow, wide;
  narrow.ctas = 4;
  wide.ctas = 160;
  narrow.fp_ops = wide.fp_ops = 1ull << 30;
  EXPECT_GT(estimate_latency(narrow, spec).total_us,
            estimate_latency(wide, spec).total_us);
}

TEST(LatencyModel, TensorOpsFasterThanGeneralOps) {
  const DeviceSpec spec;
  KernelStats tensor, general;
  tensor.ctas = general.ctas = 80;
  tensor.tensor_ops = 1ull << 32;
  general.fp_ops = 1ull << 32;
  EXPECT_LT(estimate_latency(tensor, spec).total_us,
            estimate_latency(general, spec).total_us)
      << "tensor cores are ~8x the general-core rate (§2.2)";
}

TEST(LatencyModel, RandomPatternSlowerThanStreaming) {
  const DeviceSpec spec;
  KernelStats streaming, random;
  streaming.ctas = random.ctas = 80;
  streaming.global_load_bytes = random.global_load_bytes = 32 << 20;
  streaming.pattern = AccessPattern::kStreaming;
  random.pattern = AccessPattern::kRandom;
  EXPECT_LT(estimate_latency(streaming, spec).total_us,
            estimate_latency(random, spec).total_us);
}

TEST(Profiler, AggregatesTotalsAndAverages) {
  Device dev;
  {
    auto l = dev.launch({.name = "a", .ctas = 80});
    l.load_bytes(3200);
    l.fp_ops(100);
  }
  {
    auto l = dev.launch({.name = "b", .ctas = 80});
    l.store_bytes(6400);
  }
  const auto rep = et::gpusim::profile(dev);
  ASSERT_EQ(rep.kernels.size(), 2u);
  EXPECT_EQ(rep.gld_transactions, 100u);
  EXPECT_EQ(rep.gst_transactions, 200u);
  EXPECT_NEAR(rep.total_time_us, dev.total_time_us(), 1e-9);
  EXPECT_GT(rep.avg_sm_efficiency, 0.0);
  EXPECT_LE(rep.avg_sm_efficiency, 1.0);
}

TEST(Profiler, MemoryBoundClassification) {
  Device dev;
  {
    auto l = dev.launch({.name = "membound", .ctas = 80});
    l.load_bytes(1 << 20);
    l.fp_ops(1 << 20);  // AI = 1
  }
  {
    auto l = dev.launch({.name = "compbound", .ctas = 80});
    l.load_bytes(1 << 10);
    l.tensor_ops(1ull << 30);  // AI = 2^20
  }
  const auto rep = et::gpusim::profile(dev);
  EXPECT_TRUE(rep.kernels[0].memory_bound);
  EXPECT_FALSE(rep.kernels[1].memory_bound);
}

TEST(Device, TrafficOnlyFlagIsVisible) {
  Device dev;
  EXPECT_FALSE(dev.traffic_only());
  dev.set_traffic_only(true);
  EXPECT_TRUE(dev.traffic_only());
}

TEST(DeviceSpec, A100HasMoreOfEverything) {
  const auto v = et::gpusim::v100s();
  const auto a = et::gpusim::a100();
  EXPECT_GT(a.hbm_bw_gbps, v.hbm_bw_gbps);
  EXPECT_GT(a.fp16_tensor_tflops, v.fp16_tensor_tflops);
  EXPECT_GT(a.shared_mem_per_cta_bytes, v.shared_mem_per_cta_bytes);
}

}  // namespace
