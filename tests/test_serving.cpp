// serving::InferenceServer + serving::MetricsRegistry: the request-level
// runtime must preserve the repo's determinism spine (a scripted arrival
// sequence through the server is BIT-IDENTICAL to the sequential
// reference at any thread count), enforce admission control (bounded
// queue, priorities, deadlines, cancellation) with typed outcomes, and
// account every lifecycle event in the metrics snapshot exactly once.
// See tests/differential.hpp for the harness and docs/serving.md for the
// methodology.
#include <gtest/gtest.h>

#include <algorithm>
#include <clocale>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <tuple>

#include "differential.hpp"
#include "serving/metrics.hpp"
#include "serving/server.hpp"

namespace {

using et::diff::Arrival;
using et::diff::Request;
using et::serving::InferenceServer;
using et::serving::MetricsRegistry;
using et::serving::Priority;
using et::serving::RejectReason;
using et::serving::RequestState;
using et::serving::ServerConfig;

constexpr std::int32_t kVocab = 257;

struct Model {
  std::vector<et::nn::EncoderWeights> layers;
  et::nn::EncoderOptions opt;
};

Model make_model(std::size_t num_layers, std::size_t d_model,
                 std::size_t num_heads, std::size_t max_context,
                 std::uint64_t seed) {
  et::nn::ModelConfig cfg;
  cfg.num_layers = num_layers;
  cfg.d_model = d_model;
  cfg.num_heads = num_heads;
  cfg.d_ff = 2 * d_model;

  Model m;
  for (std::size_t l = 0; l < num_layers; ++l) {
    m.layers.push_back(et::nn::make_dense_encoder_weights(cfg, seed + l));
  }
  m.opt = et::nn::options_for(et::nn::Pipeline::kET, cfg, max_context,
                              /*causal=*/true);
  m.opt.attn.precision = et::numeric::Precision::kFp32;
  return m;
}

/// The validated model handle every server in this file is built from.
et::nn::Model nn_model(const Model& m, std::size_t max_context) {
  return et::nn::Model(&m.layers, m.opt, max_context);
}

/// A plain serving request over the differential harness closures.
et::serving::Request make_request(const Model& m, std::int32_t first_token,
                                  std::size_t max_new_tokens,
                                  std::uint64_t seed) {
  et::serving::Request r;
  r.first_token = first_token;
  r.max_new_tokens = max_new_tokens;
  r.embed = et::diff::make_embed(m.opt.attn.d_model, seed);
  r.select = et::diff::make_select(kVocab);
  return r;
}

// ---------------------------------------------------------------------------
// MetricsRegistry primitives.
// ---------------------------------------------------------------------------
TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  auto& c = reg.counter("requests");
  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(&reg.counter("requests"), &c);  // find-or-create returns same

  auto& g = reg.gauge("depth");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  EXPECT_EQ(reg.find_counter("requests"), &c);
  EXPECT_EQ(reg.find_gauge("depth"), &g);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("absent"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperEdgesPlusOverflow) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1, 2, 4});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow

  h.observe(1.0);  // inclusive: lands in bucket 0
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(5.0);  // overflow
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 11.5);
  EXPECT_DOUBLE_EQ(h.mean(), 11.5 / 4.0);
}

TEST(Metrics, RegistryRejectsKindCollisionsAndBadBounds) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1, 2}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {2, 1}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {1, 1}), std::invalid_argument);
}

TEST(Metrics, ScalarsFollowRegistrationOrderAndCoverHistograms) {
  MetricsRegistry reg;
  reg.counter("b_first").inc(7);
  reg.counter("a_second");
  reg.gauge("depth").set(3);
  reg.histogram("lat", {1, 2}).observe(1.5);

  const auto fields = reg.scalars();
  ASSERT_EQ(fields.size(), 6u);  // 2 counters + 1 gauge + 3 per histogram
  EXPECT_EQ(fields[0].name, "b_first");  // registration order, not sorted
  EXPECT_DOUBLE_EQ(fields[0].value, 7.0);
  EXPECT_EQ(fields[1].name, "a_second");
  EXPECT_EQ(fields[2].name, "depth");
  EXPECT_EQ(fields[3].name, "lat_count");
  EXPECT_DOUBLE_EQ(fields[3].value, 1.0);
  EXPECT_EQ(fields[4].name, "lat_sum");
  EXPECT_DOUBLE_EQ(fields[4].value, 1.5);
  EXPECT_EQ(fields[5].name, "lat_mean");
}

TEST(Metrics, JsonSnapshotIsStableAndContainsEveryFamily) {
  MetricsRegistry reg;
  reg.counter("requests").inc(2);
  reg.gauge("depth").set(1.5);
  reg.histogram("lat", {1, 2}).observe(3.0);

  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  EXPECT_EQ(json, reg.json());  // snapshotting is pure

  // Compact mode stays one line.
  const std::string compact = reg.json(0);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(Metrics, JsonNumbersAreLocaleIndependent) {
  // json() is documented as valid JSON under ANY process locale: a
  // comma decimal separator leaking in from printf-family formatting
  // would corrupt the document. Flip LC_NUMERIC to a comma locale when
  // the image ships one; either way the invariant below must hold.
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  const char* active = nullptr;
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      active = name;
      break;
    }
  }
  MetricsRegistry reg;
  reg.gauge("depth").set(1.5);
  reg.gauge("tiny").set(0.0078125);  // exact binary fraction
  reg.counter("requests").inc(3);
  const std::string json = reg.json();
  std::setlocale(LC_NUMERIC, saved.c_str());
  SCOPED_TRACE(active != nullptr ? std::string("locale ") + active
                                 : std::string("no comma locale installed"));
  EXPECT_NE(json.find("\"depth\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tiny\": 0.0078125"), std::string::npos) << json;
  // Integers print without a decimal point, so counters stay counters.
  EXPECT_NE(json.find("\"requests\": 3"), std::string::npos) << json;
  EXPECT_EQ(json.find("1,5"), std::string::npos) << json;  // never "1,5"
}

TEST(Metrics, JsonEscapesHostileMetricNames) {
  // Metric names are built from tenant and model strings the server does
  // not control — quotes, backslashes and control characters must come
  // out as JSON escapes, not document corruption.
  MetricsRegistry reg;
  reg.counter("a\"b\\c\nd").inc();
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"a\\\"b\\\\c\\u000ad\": 1"), std::string::npos)
      << json;
  // Compact mode carries the same escaping.
  EXPECT_NE(reg.json(0).find("\\u000a"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential: served == sequential == batched, bit for bit, at
// threads 1/2/8 (the serving axis of the determinism spine).
// ---------------------------------------------------------------------------
struct ServeSweepCase {
  std::size_t threads;
  std::size_t max_batch;
  std::size_t queue_capacity;
};

std::ostream& operator<<(std::ostream& os, const ServeSweepCase& c) {
  return os << "threads=" << c.threads << " max_batch=" << c.max_batch
            << " queue_capacity=" << c.queue_capacity;
}

class ServingDifferential : public ::testing::TestWithParam<ServeSweepCase> {};

TEST_P(ServingDifferential, ScriptedArrivalsMatchSequentialBitForBit) {
  const ServeSweepCase& c = GetParam();
  const std::size_t max_context = 12;
  const Model m = make_model(2, 32, 2, max_context, 40);

  // Staggered arrivals: some at tick 0 (beyond the batch, so they queue),
  // stragglers mid-run (continuous batching backfills them).
  std::vector<Request> requests;
  std::vector<Arrival> arrivals;
  const std::size_t script[][2] = {
      {0, 5}, {0, 3}, {0, 6}, {1, 4}, {3, 5}, {3, 2}, {6, 4}};
  for (std::size_t i = 0; i < std::size(script); ++i) {
    Request r{static_cast<std::int32_t>(i + 1), script[i][1],
              et::nn::kNoEosToken, 90 + i};
    requests.push_back(r);
    arrivals.push_back({script[i][0], r});
  }

  et::gpusim::Device seq_dev, serve_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const ServerConfig cfg{c.max_batch, c.queue_capacity};
  const auto served = et::diff::run_served(serve_dev, m.layers, m.opt,
                                           max_context, cfg, arrivals, kVocab,
                                           c.threads);

  et::diff::expect_bit_identical(sequential, served.outcomes);
  for (const auto& o : served.outcomes) {
    EXPECT_EQ(o.result.stop_reason, et::nn::StopReason::kMaxTokens);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ServingDifferential,
                         ::testing::Values(ServeSweepCase{1, 3, 16},
                                           ServeSweepCase{2, 3, 16},
                                           ServeSweepCase{8, 3, 16},
                                           ServeSweepCase{1, 2, 16},
                                           ServeSweepCase{8, 2, 16}));

TEST(ServingDifferentialCross, ThreadCountsAgreeOnTranscriptsAndMetrics) {
  // Same script at threads {1,2,8}: transcripts, tick counts AND the full
  // metrics JSON must be identical — the logical clock makes the whole
  // serving snapshot reproducible, not just the tokens.
  const std::size_t max_context = 10;
  const Model m = make_model(2, 32, 2, max_context, 47);
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < 5; ++i) {
    arrivals.push_back(
        {i / 2, {static_cast<std::int32_t>(i + 3), 3 + i % 3,
                 et::nn::kNoEosToken, 70 + i}});
  }
  const ServerConfig cfg{2, 8};

  et::gpusim::Device d1;
  const auto base = et::diff::run_served(d1, m.layers, m.opt, max_context,
                                         cfg, arrivals, kVocab, /*threads=*/1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    et::gpusim::Device dn;
    const auto other = et::diff::run_served(dn, m.layers, m.opt, max_context,
                                            cfg, arrivals, kVocab, threads);
    et::diff::expect_bit_identical(base.outcomes, other.outcomes);
    EXPECT_EQ(base.ticks, other.ticks) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Sharing differential (docs/serving.md "Paged KV and prefix sharing"):
// the same scripted storm with prefix sharing ON, OFF, and under the
// contiguous reference layout (block_tokens = 0) must produce
// bit-identical transcripts, tick counts, and metrics — every scalar
// except the four sharing-observability gauges. Sharing buys memory,
// never behavior, including under priority preemption and random-fault
// retry storms.
// ---------------------------------------------------------------------------

/// Storm with two prefix groups (same-group arrivals share a prompt AND
/// an embed seed — the sharing soundness contract), staggered so later
/// members arrive inside the window where the first member's prompt
/// blocks are registered and still resident, plus priority mix for
/// preemption churn. `chaos` arms per-arrival fault-retry budgets.
std::vector<Arrival> shared_prefix_storm(bool chaos) {
  std::vector<Arrival> arrivals;
  const auto add = [&](std::size_t tick, std::vector<std::int32_t> prompt,
                       std::uint64_t group, std::uint64_t seed,
                       std::size_t max_new, Priority prio) {
    Request r;
    r.prompt = std::move(prompt);
    r.prefix_group = group;
    r.seed = seed;
    r.max_new_tokens = max_new;
    Arrival a{tick, r};
    a.priority = prio;
    if (chaos) {
      a.retry_budget = 2;
      a.retry_backoff = 1;
    }
    arrivals.push_back(a);
  };
  const std::vector<std::int32_t> sys1{11, 12, 13, 14, 15, 16, 17, 18};
  const std::vector<std::int32_t> sys2{21, 22, 23, 24, 25};
  add(0, sys1, 1, 601, 3, Priority::kBulk);
  add(1, sys2, 2, 602, 3, Priority::kNormal);
  add(2, {}, et::core::kNoPrefixGroup, 31, 4, Priority::kNormal);
  add(6, sys1, 1, 601, 3, Priority::kBulk);
  add(7, sys1, 1, 601, 2, Priority::kInteractive);  // preempts a bulk
  add(8, sys2, 2, 602, 3, Priority::kNormal);
  return arrivals;
}

double scalar_value(const std::vector<et::serving::ScalarField>& scalars,
                    const char* name) {
  for (const auto& f : scalars) {
    if (f.name == name) return f.value;
  }
  ADD_FAILURE() << "scalar " << name << " not in snapshot";
  return 0.0;
}

class SharingDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SharingDifferential, OnOffContiguousAgreeOnEverythingButKvGauges) {
  const std::size_t threads = GetParam();
  const std::size_t max_context = 12;
  const Model m = make_model(2, 32, 2, max_context, 57);
  for (const bool chaos : {false, true}) {
    SCOPED_TRACE(chaos ? "chaos storm" : "calm storm");
    const auto arrivals = shared_prefix_storm(chaos);

    ServerConfig on{2, 16};
    on.kv.block_tokens = 3;
    on.kv.enable_prefix_sharing = true;
    ServerConfig off = on;
    off.kv.enable_prefix_sharing = false;
    ServerConfig contiguous = on;
    contiguous.kv.block_tokens = 0;  // pre-paged reference layout

    et::gpusim::Device d_on, d_off, d_contig;
    if (chaos) {
      d_on.fault_injector().arm_random(0.02, 777);
      d_off.fault_injector().arm_random(0.02, 777);
      d_contig.fault_injector().arm_random(0.02, 777);
    }
    const auto a = et::diff::run_served(d_on, m.layers, m.opt, max_context,
                                        on, arrivals, kVocab, threads);
    const auto b = et::diff::run_served(d_off, m.layers, m.opt, max_context,
                                        off, arrivals, kVocab, threads);
    const auto c = et::diff::run_served(d_contig, m.layers, m.opt,
                                        max_context, contiguous, arrivals,
                                        kVocab, threads);

    et::diff::expect_bit_identical(a.outcomes, b.outcomes);
    et::diff::expect_bit_identical(a.outcomes, c.outcomes);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.ticks, c.ticks);
    et::diff::expect_scalars_identical_except(a.scalars, b.scalars,
                                              et::diff::sharing_only_scalars());
    et::diff::expect_scalars_identical_except(a.scalars, c.scalars,
                                              et::diff::sharing_only_scalars());
    // Sharing can only be off in the other two runs.
    EXPECT_EQ(scalar_value(b.scalars, "prefix_hits"), 0.0);
    EXPECT_EQ(scalar_value(c.scalars, "prefix_hits"), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SharingDifferential,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

TEST(SharingEffectiveness, OverlappingGroupSharesBlocksAndLowersPeakBytes) {
  // Calm overlap: one 8-token-prompt group whose later members arrive
  // after the first member's blocks are registered (rows 3 and 6 flush at
  // ticks 3 and 6) and before it retires — sharing MUST fire, and the
  // peak KV residency must be strictly below the sharing-off run's.
  const std::size_t max_context = 12;
  const Model m = make_model(2, 32, 2, max_context, 58);
  std::vector<Arrival> arrivals;
  const std::vector<std::int32_t> sys{11, 12, 13, 14, 15, 16, 17, 18};
  for (const std::size_t tick : {std::size_t{0}, std::size_t{6},
                                 std::size_t{7}}) {
    Request r;
    r.prompt = sys;
    r.prefix_group = 5;
    r.seed = 900;
    r.max_new_tokens = 3;
    arrivals.push_back({tick, r});
  }
  ServerConfig on{3, 8};
  on.kv.block_tokens = 3;
  ServerConfig off = on;
  off.kv.enable_prefix_sharing = false;

  et::gpusim::Device d_on, d_off;
  const auto a = et::diff::run_served(d_on, m.layers, m.opt, max_context, on,
                                      arrivals, kVocab);
  const auto b = et::diff::run_served(d_off, m.layers, m.opt, max_context,
                                      off, arrivals, kVocab);
  et::diff::expect_bit_identical(a.outcomes, b.outcomes);

  EXPECT_GE(scalar_value(a.scalars, "prefix_hits"), 2.0);
  EXPECT_GE(scalar_value(a.scalars, "prefix_shared_tokens"), 12.0);
  EXPECT_LT(scalar_value(a.scalars, "kv_bytes_used_peak"),
            scalar_value(b.scalars, "kv_bytes_used_peak"));
  // Capacity is a pool constant — identical either way.
  EXPECT_EQ(scalar_value(a.scalars, "kv_bytes"),
            scalar_value(b.scalars, "kv_bytes"));
  // Drained servers hold no blocks (the gauge reads zero at the end).
  EXPECT_EQ(scalar_value(a.scalars, "kv_bytes_used"), 0.0);
}

// ---------------------------------------------------------------------------
// Resilience differential (the PR's acceptance bar): a preempted-then-
// resumed request and a faulted-then-retried request must both produce
// transcripts bit-identical to the undisturbed run, at threads {1,2,8}.
// Recompute-resume replays the emitted prefix through the fused tick
// without calling select(), so even the hidden-state hash streams match.
// ---------------------------------------------------------------------------
class ResilienceDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResilienceDifferential, PreemptedThenResumedMatchesUnpreemptedBitForBit) {
  const std::size_t threads = GetParam();
  const std::size_t max_context = 14;
  const Model m = make_model(2, 32, 2, max_context, 111);

  // One slot: the bulk request holds it until the interactive arrival
  // displaces it mid-decode, then resumes and finishes.
  const std::vector<Request> requests = {{1, 8, et::nn::kNoEosToken, 120},
                                         {2, 2, et::nn::kNoEosToken, 121}};
  std::vector<Arrival> arrivals;
  arrivals.push_back({0, requests[0], Priority::kBulk});
  arrivals.push_back({3, requests[1], Priority::kInteractive});
  const ServerConfig cfg{1, 8};

  et::gpusim::Device seq_dev, serve_dev;
  const auto sequential = et::diff::run_sequential(
      seq_dev, m.layers, m.opt, max_context, requests, kVocab);
  const auto served = et::diff::run_served(serve_dev, m.layers, m.opt,
                                           max_context, cfg, arrivals, kVocab,
                                           threads);
  et::diff::expect_bit_identical(sequential, served.outcomes);
  for (const auto& o : served.outcomes) {
    EXPECT_EQ(o.result.stop_reason, et::nn::StopReason::kMaxTokens);
  }
  // The displacement really happened...
  EXPECT_NE(served.metrics_json.find("\"preemptions\": 1"), std::string::npos)
      << served.metrics_json;

  // ...and a preemption-disabled run of the same script agrees on every
  // transcript and hash: resume is recompute, not approximation.
  ServerConfig off = cfg;
  off.enable_preemption = false;
  et::gpusim::Device off_dev;
  const auto unpreempted = et::diff::run_served(
      off_dev, m.layers, m.opt, max_context, off, arrivals, kVocab, threads);
  et::diff::expect_bit_identical(unpreempted.outcomes, served.outcomes);
  EXPECT_NE(unpreempted.metrics_json.find("\"preemptions\": 0"),
            std::string::npos);
}

TEST_P(ResilienceDifferential, FaultedThenRetriedMatchesFaultFreeBitForBit) {
  const std::size_t threads = GetParam();
  const std::size_t max_context = 12;
  const Model m = make_model(2, 32, 2, max_context, 113);

  std::vector<Request> requests;
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < 3; ++i) {
    Request r{static_cast<std::int32_t>(i + 1), 5, et::nn::kNoEosToken,
              130 + i};
    requests.push_back(r);
    Arrival a{0, r};
    a.retry_budget = 1;
    a.retry_backoff = 1;
    arrivals.push_back(a);
  }
  const ServerConfig cfg{2, 8};

  // Fault-free reference; its launch history locates slot 1's attention
  // kernel in its second tick (mid-stream, so the retry has a prefix to
  // replay).
  et::gpusim::Device clean_dev;
  const auto clean = et::diff::run_served(clean_dev, m.layers, m.opt,
                                          max_context, cfg, arrivals, kVocab);
  std::vector<std::size_t> slot1_attention;
  const auto& history = clean_dev.history();
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].slot == 1 &&
        history[i].name == "incremental_otf_attention") {
      slot1_attention.push_back(i);
    }
  }
  ASSERT_GE(slot1_attention.size(), m.layers.size() + 1);

  et::gpusim::Device fault_dev;
  fault_dev.fault_injector().arm_nth_launch(
      slot1_attention[m.layers.size()]);
  const auto retried = et::diff::run_served(fault_dev, m.layers, m.opt,
                                            max_context, cfg, arrivals, kVocab,
                                            threads);
  et::diff::expect_bit_identical(clean.outcomes, retried.outcomes);
  for (const auto& o : retried.outcomes) {
    EXPECT_EQ(o.result.stop_reason, et::nn::StopReason::kMaxTokens);
  }
  // One fault event, one retry, zero terminal kernel faults.
  EXPECT_NE(retried.metrics_json.find("\"kernel_faults\": 1"),
            std::string::npos)
      << retried.metrics_json;
  EXPECT_NE(retried.metrics_json.find("\"retries\": 1"), std::string::npos);
  EXPECT_NE(retried.metrics_json.find("\"stop_kernel_fault\": 0"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Threads, ResilienceDifferential,
                         ::testing::Values(1, 2, 8));

// ---------------------------------------------------------------------------
// Admission control: backpressure, priorities, deadlines, cancellation.
// ---------------------------------------------------------------------------
TEST(Serving, FullQueueRejectsWithTypedReason) {
  const Model m = make_model(1, 32, 2, 8, 51);
  InferenceServer server(nn_model(m, 8), {/*max_batch=*/1,
                                          /*queue_capacity=*/2});
  const auto a = server.submit(make_request(m, 1, 4, 11));
  const auto b = server.submit(make_request(m, 2, 4, 12));
  const auto c = server.submit(make_request(m, 3, 4, 13));  // queue full

  EXPECT_TRUE(server.finished(c));
  EXPECT_EQ(server.result(c).stop_reason, et::nn::StopReason::kRejected);
  EXPECT_TRUE(server.result(c).tokens.empty());
  EXPECT_EQ(server.status(c).reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(server.status(a).reject_reason, RejectReason::kNone);

  EXPECT_EQ(server.metrics().find_counter("requests_rejected")->value(), 1u);
  EXPECT_EQ(server.metrics().find_counter("stop_rejected")->value(), 1u);

  // The rejection freed nothing: the queued pair still completes.
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  server.drain(ctx);
  EXPECT_EQ(server.result(a).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(b).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.metrics().find_counter("requests_completed")->value(), 2u);
}

TEST(Serving, PriorityClassesAdmitInteractiveBeforeBulk) {
  const Model m = make_model(1, 32, 2, 10, 53);
  InferenceServer server(nn_model(m, 10), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  // Occupy the single slot, then queue bulk BEFORE interactive: class
  // order must beat FIFO order across classes.
  const auto hog = server.submit(make_request(m, 1, 4, 21));
  server.tick(ctx);
  auto bulk_req = make_request(m, 2, 2, 22);
  bulk_req.priority = Priority::kBulk;
  const auto bulk = server.submit(std::move(bulk_req));
  auto inter_req = make_request(m, 3, 2, 23);
  inter_req.priority = Priority::kInteractive;
  const auto inter = server.submit(std::move(inter_req));

  server.drain(ctx);
  EXPECT_EQ(server.result(hog).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(bulk).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(inter).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_LT(server.status(inter).admitted_tick,
            server.status(bulk).admitted_tick);
  EXPECT_EQ(server.status(inter).priority, Priority::kInteractive);
}

TEST(Serving, QueueBudgetExpiresWaitingRequests) {
  const Model m = make_model(1, 32, 2, 10, 59);
  InferenceServer server(nn_model(m, 10), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  const auto hog = server.submit(make_request(m, 1, 6, 31));
  server.tick(ctx);  // hog admitted; slot stays busy for 6 ticks
  auto impatient_req = make_request(m, 2, 3, 32);
  impatient_req.queue_budget_ticks = 2;
  const auto impatient = server.submit(std::move(impatient_req));
  auto patient_req = make_request(m, 3, 3, 33);
  const auto patient = server.submit(std::move(patient_req));

  server.drain(ctx);
  EXPECT_EQ(server.result(impatient).stop_reason,
            et::nn::StopReason::kDeadlineExceeded);
  EXPECT_TRUE(server.result(impatient).tokens.empty());
  EXPECT_EQ(server.status(impatient).admitted_tick, et::serving::kNoTick);
  // The patient request behind it still gets the slot and finishes.
  EXPECT_EQ(server.result(patient).stop_reason,
            et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(hog).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.metrics().find_counter("requests_expired")->value(), 1u);
  EXPECT_EQ(server.metrics().find_counter("stop_deadline_exceeded")->value(),
            1u);
}

TEST(Serving, TotalBudgetTruncatesActiveRequestKeepingThePrefix) {
  const Model m = make_model(1, 32, 2, 16, 61);
  InferenceServer server(nn_model(m, 16), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  auto req = make_request(m, 1, 12, 41);
  req.total_budget_ticks = 3;
  const auto h = server.submit(std::move(req));
  server.drain(ctx);

  EXPECT_EQ(server.result(h).stop_reason,
            et::nn::StopReason::kDeadlineExceeded);
  // Admitted at tick 0, expired at the top of tick 3: ticks 0..2 each
  // produced a token — the kept prefix.
  EXPECT_EQ(server.result(h).tokens.size(), 3u);
  EXPECT_EQ(server.status(h).finished_tick, 3u);
}

TEST(Serving, ZeroTotalBudgetExpiresAtSubmit) {
  const Model m = make_model(1, 32, 2, 8, 67);
  InferenceServer server(nn_model(m, 8), {1, 8});
  auto req = make_request(m, 1, 4, 43);
  req.total_budget_ticks = 0;
  const auto h = server.submit(std::move(req));
  EXPECT_TRUE(server.finished(h));
  EXPECT_EQ(server.result(h).stop_reason,
            et::nn::StopReason::kDeadlineExceeded);
  EXPECT_TRUE(server.idle());
}

TEST(Serving, CancelQueuedAndActiveKeepsEmittedTokens) {
  const Model m = make_model(1, 32, 2, 16, 71);
  InferenceServer server(nn_model(m, 16), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  const auto active = server.submit(make_request(m, 1, 10, 51));
  const auto queued = server.submit(make_request(m, 2, 10, 52));
  server.tick(ctx);
  server.tick(ctx);  // `active` has emitted 2 tokens by now

  EXPECT_TRUE(server.cancel(queued));
  EXPECT_EQ(server.result(queued).stop_reason,
            et::nn::StopReason::kCancelled);
  EXPECT_TRUE(server.result(queued).tokens.empty());

  EXPECT_EQ(server.status(active).state, RequestState::kActive);
  EXPECT_TRUE(server.cancel(active));
  EXPECT_EQ(server.result(active).stop_reason,
            et::nn::StopReason::kCancelled);
  EXPECT_EQ(server.result(active).tokens.size(), 2u);  // prefix kept
  EXPECT_TRUE(server.idle());

  // Cancel after finish loses the race and reports it.
  EXPECT_FALSE(server.cancel(active));
  EXPECT_EQ(server.metrics().find_counter("requests_cancelled")->value(), 2u);
  EXPECT_EQ(server.metrics().find_counter("stop_cancelled")->value(), 2u);

  // The freed slot is reusable: a fresh request still decodes.
  const auto fresh = server.submit(make_request(m, 3, 2, 53));
  server.drain(ctx);
  EXPECT_EQ(server.result(fresh).stop_reason, et::nn::StopReason::kMaxTokens);
}

TEST(Serving, StreamingCallbacksDeliverEveryTokenInOrder) {
  const Model m = make_model(1, 32, 2, 10, 73);
  InferenceServer server(nn_model(m, 10), {2, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  std::vector<std::tuple<std::uint64_t, std::int32_t, std::size_t>> stream;
  et::serving::RequestHandle handles[2];
  for (std::size_t i = 0; i < 2; ++i) {
    auto req = make_request(m, static_cast<std::int32_t>(i + 1), 4, 60 + i);
    req.on_token = [&stream](std::uint64_t id, std::int32_t tok,
                             std::size_t index) {
      stream.emplace_back(id, tok, index);
    };
    handles[i] = server.submit(std::move(req));
  }
  server.drain(ctx);

  // Every token streamed exactly once, indices contiguous per request,
  // and the streamed values equal the final transcript.
  std::vector<std::vector<std::int32_t>> streamed(2);
  for (const auto& [id, tok, index] : stream) {
    ASSERT_LT(id, 2u);
    ASSERT_EQ(index, streamed[id].size());  // in-order, no gaps
    streamed[id].push_back(tok);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(streamed[i], server.result(handles[i]).tokens);
  }
  EXPECT_EQ(server.metrics().find_counter("tokens_emitted")->value(), 8u);
}

// ---------------------------------------------------------------------------
// Serving under fault injection (satellite 4): an armed FaultInjector
// retires only the owning request; queued requests still complete; the
// registry counts the fault exactly once.
// ---------------------------------------------------------------------------
TEST(ServingFaults, SlotFaultRetiresOnlyTheOwnerAndCountsOnce) {
  const std::size_t max_context = 10;
  const Model m = make_model(2, 32, 2, max_context, 79);
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < 4; ++i) {  // 2 slots: requests 2,3 queue
    arrivals.push_back({0, {static_cast<std::int32_t>(i + 1), 5,
                            et::nn::kNoEosToken, 80 + i}});
  }
  const ServerConfig cfg{2, 8};

  // Clean run: reference transcripts + the launch history that locates
  // slot 1's attention kernel in its second tick (faulted launches never
  // reach the history, so launch index == history index).
  et::gpusim::Device clean_dev;
  const auto clean = et::diff::run_served(clean_dev, m.layers, m.opt,
                                          max_context, cfg, arrivals, kVocab);
  std::vector<std::size_t> slot1_attention;
  const auto& history = clean_dev.history();
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i].slot == 1 &&
        history[i].name == "incremental_otf_attention") {
      slot1_attention.push_back(i);
    }
  }
  ASSERT_GE(slot1_attention.size(), m.layers.size() + 1);
  const std::size_t target = slot1_attention[m.layers.size()];

  // Armed run, driven directly so the metrics are inspectable.
  et::gpusim::Device fault_dev;
  fault_dev.fault_injector().arm_nth_launch(target);
  et::core::ExecContext ctx(fault_dev);
  InferenceServer server(nn_model(m, max_context), cfg);
  std::vector<et::serving::RequestHandle> handles;
  std::vector<std::vector<std::uint64_t>> hashes(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    et::serving::Request req;
    req.first_token = arrivals[i].request.first_token;
    req.max_new_tokens = arrivals[i].request.max_new_tokens;
    req.embed = et::diff::make_embed(m.opt.attn.d_model,
                                     arrivals[i].request.seed);
    req.select = et::diff::make_select(kVocab, &hashes[i]);
    handles.push_back(server.submit(req));
  }
  server.drain(ctx);

  // Request 1 (slot 1) faulted after one surviving tick.
  const auto& hit = server.result(handles[1]);
  EXPECT_EQ(hit.stop_reason, et::nn::StopReason::kKernelFault);
  EXPECT_NE(hit.fault_kernel.find("incremental_otf_attention"),
            std::string::npos);
  ASSERT_EQ(hit.tokens.size(), 1u);
  EXPECT_EQ(hit.tokens[0], clean.outcomes[1].result.tokens[0]);

  // Everyone else — including the two that were QUEUED behind the fault —
  // completes with the clean run's exact transcript: the freed slot was
  // recycled and the fault never leaked across slots.
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_EQ(server.result(handles[i]).stop_reason,
              et::nn::StopReason::kMaxTokens)
        << "request " << i;
    EXPECT_EQ(server.result(handles[i]).tokens,
              clean.outcomes[i].result.tokens)
        << "request " << i;
    EXPECT_EQ(hashes[i], clean.outcomes[i].hidden_hashes) << "request " << i;
  }

  // The registry saw the fault exactly once, in both views.
  const auto& metrics = server.metrics();
  EXPECT_EQ(metrics.find_counter("kernel_faults")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("stop_kernel_fault")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("requests_completed")->value(), 4u);
  EXPECT_EQ(metrics.find_counter("requests_submitted")->value(), 4u);
}

// ---------------------------------------------------------------------------
// Server API contract + metrics bookkeeping.
// ---------------------------------------------------------------------------
TEST(ServingApi, ConstructorAndSubmitValidateTheirArguments) {
  const Model m = make_model(1, 32, 2, 8, 83);
  EXPECT_THROW(et::nn::Model(&m.layers, m.opt, /*max_context=*/0),
               std::invalid_argument);
  EXPECT_THROW(InferenceServer(nn_model(m, 8), {/*max_batch=*/0, 8}),
               std::invalid_argument);

  InferenceServer server(nn_model(m, 8), {2, 8});
  et::serving::Request missing;  // no embed/select
  missing.max_new_tokens = 3;
  EXPECT_THROW(server.submit(std::move(missing)), std::invalid_argument);
}

TEST(ServingApi, ZeroTokenRequestCompletesAtSubmit) {
  const Model m = make_model(1, 32, 2, 8, 89);
  InferenceServer server(nn_model(m, 8), {2, 8});
  et::serving::Request req;  // embed/select not needed for 0 tokens
  const auto h = server.submit(std::move(req));
  EXPECT_TRUE(server.finished(h));
  EXPECT_TRUE(server.idle());
  EXPECT_TRUE(server.result(h).tokens.empty());
  EXPECT_EQ(server.result(h).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.metrics().find_counter("requests_completed")->value(), 1u);
}

TEST(ServingApi, ResultThrowsUntilFinishedAndWaitDrivesToCompletion) {
  const Model m = make_model(1, 32, 2, 8, 97);
  InferenceServer server(nn_model(m, 8), {1, 8});
  const auto h = server.submit(make_request(m, 1, 3, 71));
  EXPECT_FALSE(server.finished(h));
  EXPECT_THROW((void)server.result(h), std::logic_error);
  EXPECT_EQ(server.status(h).state, RequestState::kQueued);
  EXPECT_EQ(server.queue_depth(), 1u);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const auto& result = server.wait(h, ctx);
  EXPECT_EQ(result.tokens.size(), 3u);
  EXPECT_EQ(server.status(h).state, RequestState::kFinished);
  EXPECT_EQ(server.active_slots(), 0u);
  EXPECT_TRUE(server.idle());
}

TEST(ServingApi, LifecycleCountersBalanceAfterAMixedWorkload) {
  const Model m = make_model(1, 32, 2, 12, 101);
  InferenceServer server(nn_model(m, 12), {1, 2});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  const auto done = server.submit(make_request(m, 1, 3, 81));    // completes
  const auto victim = server.submit(make_request(m, 2, 3, 82));  // cancelled
  const auto reject = server.submit(make_request(m, 3, 3, 83));  // queue full
  server.cancel(victim);
  auto hurried = make_request(m, 4, 9, 84);
  hurried.total_budget_ticks = 2;  // expires mid-decode
  const auto expired = server.submit(std::move(hurried));
  server.drain(ctx);

  const auto& mx = server.metrics();
  EXPECT_EQ(mx.find_counter("requests_submitted")->value(), 4u);
  EXPECT_EQ(mx.find_counter("requests_completed")->value(), 1u);
  EXPECT_EQ(mx.find_counter("requests_cancelled")->value(), 1u);
  EXPECT_EQ(mx.find_counter("requests_rejected")->value(), 1u);
  EXPECT_EQ(mx.find_counter("requests_expired")->value(), 1u);
  // Every submission resolved to exactly one terminal stop reason.
  EXPECT_EQ(mx.find_counter("stop_max_tokens")->value(), 1u);
  EXPECT_EQ(mx.find_counter("stop_cancelled")->value(), 1u);
  EXPECT_EQ(mx.find_counter("stop_rejected")->value(), 1u);
  EXPECT_EQ(mx.find_counter("stop_deadline_exceeded")->value(), 1u);
  EXPECT_EQ(server.result(done).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(reject).stop_reason,
            et::nn::StopReason::kRejected);
  EXPECT_EQ(server.result(expired).stop_reason,
            et::nn::StopReason::kDeadlineExceeded);
  EXPECT_GT(mx.find_gauge("kv_bytes")->value(), 0.0);
  EXPECT_DOUBLE_EQ(mx.find_gauge("queue_depth")->value(), 0.0);
  EXPECT_DOUBLE_EQ(mx.find_gauge("active_slots")->value(), 0.0);
}

TEST(ServingApi, MetricsJsonIsIdenticalAcrossIdenticalRuns) {
  const Model m = make_model(1, 32, 2, 10, 103);
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < 4; ++i) {
    arrivals.push_back({i, {static_cast<std::int32_t>(i + 1), 3,
                            et::nn::kNoEosToken, 90 + i}});
  }
  const ServerConfig cfg{2, 4};

  std::string snapshots[2];
  for (auto& snapshot : snapshots) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    InferenceServer server(nn_model(m, 10), cfg);
    std::size_t next = 0;
    while (next < arrivals.size() || !server.idle()) {
      while (next < arrivals.size() &&
             arrivals[next].tick <= server.now()) {
        et::serving::Request req;
        req.first_token = arrivals[next].request.first_token;
        req.max_new_tokens = arrivals[next].request.max_new_tokens;
        req.embed = et::diff::make_embed(m.opt.attn.d_model,
                                         arrivals[next].request.seed);
        req.select = et::diff::make_select(kVocab);
        (void)server.submit(std::move(req));
        ++next;
      }
      server.tick(ctx);
    }
    snapshot = server.metrics().json();
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
}

// ---------------------------------------------------------------------------
// Overload resilience: preemption, fault retry, shedding, health — the
// state machine of docs/robustness.md, observed through status() and the
// metrics registry.
// ---------------------------------------------------------------------------
TEST(ServingResilience, PreemptionDisplacesLowestMostRecentAndResumes) {
  const Model m = make_model(1, 32, 2, 16, 117);
  InferenceServer server(nn_model(m, 16), {2, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  auto bulk_a = make_request(m, 1, 6, 141);
  bulk_a.priority = Priority::kBulk;
  auto bulk_b = make_request(m, 2, 6, 142);
  bulk_b.priority = Priority::kBulk;
  const auto a = server.submit(std::move(bulk_a));
  const auto b = server.submit(std::move(bulk_b));
  server.tick(ctx);  // both admitted at tick 0

  auto inter = make_request(m, 3, 2, 143);
  inter.priority = Priority::kInteractive;
  const auto c = server.submit(std::move(inter));
  server.tick(ctx);  // c preempts the most recently admitted bulk (b)

  EXPECT_EQ(server.status(b).state, RequestState::kPreempted);
  EXPECT_EQ(server.status(b).preemptions, 1u);
  EXPECT_EQ(server.status(a).state, RequestState::kActive);
  EXPECT_EQ(server.status(c).admitted_tick, 1u);

  server.drain(ctx);
  for (const auto h : {a, b, c}) {
    EXPECT_EQ(server.result(h).stop_reason, et::nn::StopReason::kMaxTokens);
  }
  EXPECT_EQ(server.result(b).tokens.size(), 6u);  // nothing lost to the gap
  EXPECT_EQ(server.metrics().find_counter("preemptions")->value(), 1u);
  // The re-admission is visible in the admission count: 3 requests, 4
  // slot tenures.
  EXPECT_EQ(server.metrics().find_counter("requests_admitted")->value(), 4u);
}

// A displacement while the victim's own recompute-resume replay is
// still catching up must not shrink the kept transcript: the scheduler
// result holds only the replayed-so-far prefix at that point, and the
// server retains the longer transcript across the gap. The resumed run
// stays bit-identical to the never-interrupted reference, with every
// token streamed exactly once.
TEST(ServingResilience, MidReplayPreemptionKeepsTheFullTranscript) {
  const Model m = make_model(1, 32, 2, 16, 118);

  et::gpusim::Device clean_dev;
  et::core::ExecContext clean_ctx(clean_dev);
  InferenceServer clean(nn_model(m, 16), {1, 8});
  auto ref_req = make_request(m, 1, 6, 144);
  ref_req.priority = Priority::kBulk;
  const auto ref = clean.submit(std::move(ref_req));
  clean.drain(clean_ctx);

  InferenceServer server(nn_model(m, 16), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  std::vector<std::int32_t> streamed;
  auto bulk = make_request(m, 1, 6, 144);
  bulk.priority = Priority::kBulk;
  bulk.on_token = [&streamed](std::uint64_t, std::int32_t tok, std::size_t) {
    streamed.push_back(tok);
  };
  // select() side effects must fire exactly once per emitted token
  // across the request's whole life — a replay that loses part of its
  // prefix would re-select (and re-fire) the lost tail.
  std::size_t select_calls = 0;
  bulk.select = [&select_calls, inner = bulk.select](
                    const et::tensor::MatrixF& hidden) {
    ++select_calls;
    return inner(hidden);
  };
  const auto victim = server.submit(std::move(bulk));
  for (int i = 0; i < 3; ++i) server.tick(ctx);  // three tokens emitted

  auto first = make_request(m, 2, 2, 145);
  first.priority = Priority::kInteractive;
  const auto a = server.submit(std::move(first));
  server.tick(ctx);  // preemption #1: victim carries a 3-token prefix
  EXPECT_EQ(server.status(victim).state, RequestState::kPreempted);
  server.tick(ctx);  // interactive finishes
  ASSERT_TRUE(server.finished(a));
  server.tick(ctx);  // victim re-admitted, replay 1 of 3

  auto second = make_request(m, 3, 2, 146);
  second.priority = Priority::kInteractive;
  const auto b = server.submit(std::move(second));
  server.tick(ctx);  // preemption #2 strikes MID-REPLAY
  EXPECT_EQ(server.status(victim).state, RequestState::kPreempted);
  EXPECT_EQ(server.status(victim).preemptions, 2u);
  // Nothing already delivered may be forgotten across the gap.
  EXPECT_EQ(server.status(victim).tokens_emitted, 3u);
  server.drain(ctx);

  EXPECT_EQ(server.result(victim).stop_reason,
            et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(victim).tokens, clean.result(ref).tokens);
  EXPECT_EQ(streamed, server.result(victim).tokens);  // exactly once each
  EXPECT_EQ(select_calls, 6u);  // never re-selected during any replay
  ASSERT_TRUE(server.finished(b));
}

// Terminating a request mid-replay (here: an explicit cancel) keeps the
// full previously-delivered transcript, not the replayed-so-far prefix —
// the result can never be shorter than what on_token already streamed.
TEST(ServingResilience, CancelDuringReplayKeepsEveryStreamedToken) {
  const Model m = make_model(1, 32, 2, 16, 122);

  et::gpusim::Device clean_dev;
  et::core::ExecContext clean_ctx(clean_dev);
  InferenceServer clean(nn_model(m, 16), {1, 8});
  auto ref_req = make_request(m, 1, 6, 147);
  ref_req.priority = Priority::kBulk;
  const auto ref = clean.submit(std::move(ref_req));
  clean.drain(clean_ctx);

  InferenceServer server(nn_model(m, 16), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  std::vector<std::int32_t> streamed;
  auto bulk = make_request(m, 1, 6, 147);
  bulk.priority = Priority::kBulk;
  bulk.on_token = [&streamed](std::uint64_t, std::int32_t tok, std::size_t) {
    streamed.push_back(tok);
  };
  const auto victim = server.submit(std::move(bulk));
  for (int i = 0; i < 3; ++i) server.tick(ctx);  // three tokens emitted

  auto inter = make_request(m, 2, 2, 148);
  inter.priority = Priority::kInteractive;
  const auto a = server.submit(std::move(inter));
  server.tick(ctx);  // preempt: victim carries a 3-token prefix
  server.tick(ctx);  // interactive finishes
  ASSERT_TRUE(server.finished(a));
  server.tick(ctx);  // victim re-admitted, replay 1 of 3
  EXPECT_EQ(server.status(victim).state, RequestState::kActive);

  ASSERT_TRUE(server.cancel(victim));  // cancel strikes MID-REPLAY
  EXPECT_EQ(server.result(victim).stop_reason,
            et::nn::StopReason::kCancelled);
  ASSERT_EQ(server.result(victim).tokens.size(), 3u);
  const auto& ref_toks = clean.result(ref).tokens;
  EXPECT_TRUE(std::equal(server.result(victim).tokens.begin(),
                         server.result(victim).tokens.end(),
                         ref_toks.begin()));
  EXPECT_EQ(streamed, server.result(victim).tokens);
  EXPECT_EQ(server.status(victim).tokens_emitted, 3u);
}

TEST(ServingResilience, PreemptionLimitFinishesTheVictimTyped) {
  const Model m = make_model(1, 32, 2, 16, 119);
  ServerConfig cfg{1, 8};
  cfg.preemption_limit = 0;  // first displacement is already terminal
  InferenceServer server(nn_model(m, 16), cfg);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  auto bulk = make_request(m, 1, 6, 151);
  bulk.priority = Priority::kBulk;
  const auto victim = server.submit(std::move(bulk));
  server.tick(ctx);
  server.tick(ctx);  // two tokens emitted

  auto inter = make_request(m, 2, 2, 152);
  inter.priority = Priority::kInteractive;
  const auto winner = server.submit(std::move(inter));
  server.drain(ctx);

  EXPECT_EQ(server.result(victim).stop_reason,
            et::nn::StopReason::kPreemptionLimit);
  EXPECT_EQ(server.result(victim).tokens.size(), 2u);  // prefix kept
  EXPECT_EQ(server.result(winner).stop_reason,
            et::nn::StopReason::kMaxTokens);
  const auto& mx = server.metrics();
  EXPECT_EQ(mx.find_counter("stop_preemption_limit")->value(), 1u);
  EXPECT_EQ(mx.find_counter("preemptions")->value(), 0u);  // none resumable
  EXPECT_EQ(mx.find_counter("requests_completed")->value(), 1u);
}

TEST(ServingResilience, PreemptionCanBeDisabled) {
  const Model m = make_model(1, 32, 2, 16, 123);
  ServerConfig cfg{1, 8};
  cfg.enable_preemption = false;
  InferenceServer server(nn_model(m, 16), cfg);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  auto bulk = make_request(m, 1, 4, 153);
  bulk.priority = Priority::kBulk;
  const auto hog = server.submit(std::move(bulk));
  server.tick(ctx);
  auto inter = make_request(m, 2, 2, 154);
  inter.priority = Priority::kInteractive;
  const auto waiter = server.submit(std::move(inter));
  server.drain(ctx);

  EXPECT_EQ(server.status(hog).preemptions, 0u);
  EXPECT_GE(server.status(waiter).admitted_tick, 4u);  // waited out the hog
  EXPECT_EQ(server.metrics().find_counter("preemptions")->value(), 0u);
}

TEST(ServingResilience, FaultRetrySitsOutItsBackoffThenReproducesTheRun) {
  const Model m = make_model(1, 32, 2, 16, 127);

  // Clean reference transcript.
  et::gpusim::Device clean_dev;
  et::core::ExecContext clean_ctx(clean_dev);
  InferenceServer clean(nn_model(m, 16), {1, 8});
  const auto ref = clean.submit(make_request(m, 1, 4, 161));
  clean.drain(clean_ctx);

  // Armed run: the first attention launch faults, the retry succeeds.
  et::gpusim::Device dev;
  dev.fault_injector().arm_kernel("incremental_otf_attention",
                                  /*max_faults=*/1);
  et::core::ExecContext ctx(dev);
  InferenceServer server(nn_model(m, 16), {1, 8});
  auto req = make_request(m, 1, 4, 161);
  req.retry_budget = 1;
  req.retry_backoff_ticks = 2;
  const auto h = server.submit(std::move(req));
  server.drain(ctx);

  EXPECT_EQ(server.result(h).stop_reason, et::nn::StopReason::kMaxTokens);
  EXPECT_EQ(server.result(h).tokens, clean.result(ref).tokens);
  EXPECT_EQ(server.status(h).retries, 1u);
  const auto& mx = server.metrics();
  EXPECT_EQ(mx.find_counter("kernel_faults")->value(), 1u);
  EXPECT_EQ(mx.find_counter("retries")->value(), 1u);
  EXPECT_EQ(mx.find_counter("stop_kernel_fault")->value(), 0u);
  // Timeline pins the backoff: fault at tick 0, eligible again at tick
  // 0+1+2 = 3, four decode ticks (3..6) => drained after tick 7. A zero
  // backoff would have finished two ticks earlier.
  EXPECT_EQ(server.now(), 7u);
}

TEST(ServingResilience, RetryBudgetExhaustionKeepsTheKernelFault) {
  const Model m = make_model(1, 32, 2, 16, 131);
  et::gpusim::Device dev;
  dev.fault_injector().arm_kernel("incremental_otf_attention",
                                  /*max_faults=*/2);
  et::core::ExecContext ctx(dev);
  InferenceServer server(nn_model(m, 16), {1, 8});
  auto req = make_request(m, 1, 4, 163);
  req.retry_budget = 1;
  const auto h = server.submit(std::move(req));
  server.drain(ctx);

  EXPECT_EQ(server.result(h).stop_reason, et::nn::StopReason::kKernelFault);
  EXPECT_EQ(server.status(h).retries, 1u);
  const auto& mx = server.metrics();
  EXPECT_EQ(mx.find_counter("kernel_faults")->value(), 2u);  // both events
  EXPECT_EQ(mx.find_counter("retries")->value(), 1u);
  EXPECT_EQ(mx.find_counter("stop_kernel_fault")->value(), 1u);
}

TEST(ServingResilience, ShedRefusesUnmeetableQueueBudgetsAtSubmit) {
  const Model m = make_model(1, 32, 2, 16, 137);
  InferenceServer server(nn_model(m, 16), {1, 16});
  for (int i = 0; i < 3; ++i) {  // three requests already waiting
    (void)server.submit(make_request(m, i + 1, 3, 170 + i));
  }

  auto doomed = make_request(m, 5, 3, 175);
  doomed.queue_budget_ticks = 2;  // estimated wait is 3 ticks
  const auto shed = server.submit(std::move(doomed));
  EXPECT_TRUE(server.finished(shed));
  EXPECT_EQ(server.status(shed).reject_reason, RejectReason::kShed);
  EXPECT_EQ(server.result(shed).stop_reason, et::nn::StopReason::kRejected);

  auto feasible = make_request(m, 6, 3, 176);
  feasible.queue_budget_ticks = 3;  // exactly meets the estimate
  const auto kept = server.submit(std::move(feasible));
  EXPECT_FALSE(server.finished(kept));

  const auto& mx = server.metrics();
  EXPECT_EQ(mx.find_counter("shed")->value(), 1u);
  EXPECT_EQ(mx.find_counter("requests_rejected")->value(), 0u);

  // Same backlog with shedding disabled: the request queues instead.
  ServerConfig off{1, 16};
  off.enable_shedding = false;
  InferenceServer relaxed(nn_model(m, 16), off);
  for (int i = 0; i < 3; ++i) {
    (void)relaxed.submit(make_request(m, i + 1, 3, 180 + i));
  }
  auto tolerated = make_request(m, 5, 3, 185);
  tolerated.queue_budget_ticks = 2;
  EXPECT_FALSE(relaxed.finished(relaxed.submit(std::move(tolerated))));
  EXPECT_EQ(relaxed.metrics().find_counter("shed")->value(), 0u);
}

// The shed estimate is a LOWER bound: a small backlog that fits the
// free slots is admitted next tick with zero wait, so even a zero
// queue budget must not be shed — shedding it would refuse a request
// that was actually admissible.
TEST(ServingResilience, ShedSparesRequestsTheFreeSlotsCanAbsorb) {
  const Model m = make_model(1, 32, 2, 16, 143);
  InferenceServer server(nn_model(m, 16), {4, 16});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  for (int i = 0; i < 2; ++i) {  // backlog of 2 over 4 free slots
    (void)server.submit(make_request(m, i + 1, 2, 210 + i));
  }
  auto urgent = make_request(m, 3, 2, 212);
  urgent.queue_budget_ticks = 0;  // must be admitted this very tick
  const auto h = server.submit(std::move(urgent));
  EXPECT_FALSE(server.finished(h));  // not shed: 3 <= 4 free slots
  EXPECT_EQ(server.metrics().find_counter("shed")->value(), 0u);

  server.tick(ctx);
  EXPECT_EQ(server.status(h).state, RequestState::kActive);
  EXPECT_EQ(server.status(h).admitted_tick, 0u);  // zero queue wait
  server.drain(ctx);
  EXPECT_EQ(server.result(h).stop_reason, et::nn::StopReason::kMaxTokens);
}

TEST(ServingResilience, HealthTracksTheBacklog) {
  using et::serving::ServerHealth;
  const Model m = make_model(1, 32, 2, 16, 139);
  InferenceServer server(nn_model(m, 16), {1, 2});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  EXPECT_EQ(server.health(), ServerHealth::kHealthy);
  (void)server.submit(make_request(m, 1, 2, 190));
  (void)server.submit(make_request(m, 2, 2, 191));
  EXPECT_EQ(server.health(), ServerHealth::kOverloaded);  // queue at cap
  server.tick(ctx);  // one admitted, one still waiting
  EXPECT_EQ(server.health(), ServerHealth::kDegraded);
  EXPECT_DOUBLE_EQ(server.metrics().find_gauge("health")->value(), 1.0);
  server.drain(ctx);
  EXPECT_EQ(server.health(), ServerHealth::kHealthy);
  EXPECT_DOUBLE_EQ(server.metrics().find_gauge("health")->value(), 0.0);
  EXPECT_DOUBLE_EQ(server.metrics().find_gauge("kv_bytes_used")->value(),
                   0.0);  // every slot's KV returned to the pool
}

TEST(ServingResilience, EnumeratorNamesAreDistinctAndStable) {
  using et::serving::ServerHealth;
  EXPECT_EQ(to_string(RequestState::kPreempted), "preempted");
  EXPECT_EQ(to_string(RejectReason::kShed), "shed");
  EXPECT_EQ(to_string(ServerHealth::kHealthy), "healthy");
  EXPECT_EQ(to_string(ServerHealth::kDegraded), "degraded");
  EXPECT_EQ(to_string(ServerHealth::kOverloaded), "overloaded");
  EXPECT_EQ(to_string(et::nn::StopReason::kPreemptionLimit),
            "preemption_limit");
}

TEST(ServingResilience, ConservationIdentitiesHoldAfterAResilienceStorm) {
  const Model m = make_model(1, 32, 2, 16, 149);
  InferenceServer server(nn_model(m, 16), {1, 8});
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);

  auto bulk = make_request(m, 1, 8, 200);
  bulk.priority = Priority::kBulk;
  (void)server.submit(std::move(bulk));
  server.tick(ctx);  // bulk takes the slot

  for (int i = 0; i < 3; ++i) {  // interactive burst: first one preempts
    auto inter = make_request(m, 2 + i, 2, 201 + i);
    inter.priority = Priority::kInteractive;
    (void)server.submit(std::move(inter));
  }
  auto impatient = make_request(m, 6, 2, 205);
  impatient.queue_budget_ticks = 0;  // backlog of 3 ahead => shed
  (void)server.submit(std::move(impatient));
  const auto doomed = server.submit(make_request(m, 7, 2, 206));
  server.cancel(doomed);
  auto hurried = make_request(m, 8, 2, 207);
  hurried.total_budget_ticks = 1;  // expires while queued behind the burst
  (void)server.submit(std::move(hurried));
  server.drain(ctx);

  const auto& mx = server.metrics();
  const auto c = [&mx](const char* name) {
    return mx.find_counter(name)->value();
  };
  EXPECT_GE(c("preemptions"), 1u);
  EXPECT_EQ(c("shed"), 1u);
  EXPECT_EQ(c("requests_cancelled"), 1u);
  EXPECT_EQ(c("requests_expired"), 1u);

  // Conservation: every submission resolves to exactly one terminal.
  EXPECT_EQ(c("requests_submitted"),
            c("requests_completed") + c("requests_rejected") + c("shed") +
                c("requests_cancelled") + c("requests_expired") +
                c("stop_preemption_limit"));
  std::uint64_t stop_sum = 0;
  for (std::size_t r = 0; r < et::nn::kStopReasonCount; ++r) {
    stop_sum += mx.find_counter(
                      "stop_" + std::string(et::nn::to_string(
                                    static_cast<et::nn::StopReason>(r))))
                    ->value();
  }
  EXPECT_EQ(stop_sum, c("requests_submitted"));
  // And the machine is fully drained: no residual slot or KV occupancy.
  EXPECT_DOUBLE_EQ(mx.find_gauge("active_slots")->value(), 0.0);
  EXPECT_DOUBLE_EQ(mx.find_gauge("queue_depth")->value(), 0.0);
  EXPECT_DOUBLE_EQ(mx.find_gauge("kv_bytes_used")->value(), 0.0);
}

}  // namespace
