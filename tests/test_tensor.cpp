// Matrix container, views, comparisons, reference GEMM.
#include <gtest/gtest.h>

#include "tensor/compare.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"
#include "tensor/reference_gemm.hpp"

namespace {

using et::tensor::Matrix;
using et::tensor::MatrixF;

TEST(Matrix, BasicAccessAndFill) {
  MatrixF m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m(2, 3), 1.5f);
  m(1, 2) = 7.0f;
  EXPECT_EQ(m.row(1)[2], 7.0f);
  m.fill(0.0f);
  EXPECT_EQ(m(1, 2), 0.0f);
}

TEST(Matrix, TransposeInvolution) {
  MatrixF m(5, 3);
  et::tensor::fill_uniform(m, 1);
  const MatrixF tt = transpose(transpose(m));
  EXPECT_TRUE(allclose(m, tt, 0.0, 0.0));
}

TEST(Matrix, SliceAndConcatRoundTrip) {
  MatrixF m(4, 8);
  et::tensor::fill_uniform(m, 2);
  const MatrixF left = slice_cols(m, 0, 4);
  const MatrixF right = slice_cols(m, 4, 4);
  const MatrixF joined = concat_cols(left, right);
  EXPECT_TRUE(allclose(m, joined, 0.0, 0.0));
}

TEST(Matrix, SliceRows) {
  MatrixF m(6, 2);
  et::tensor::fill_uniform(m, 3);
  const MatrixF mid = slice_rows(m, 2, 3);
  EXPECT_EQ(mid.rows(), 3u);
  EXPECT_EQ(mid(0, 0), m(2, 0));
  EXPECT_EQ(mid(2, 1), m(4, 1));
}

TEST(Matrix, PasteCols) {
  MatrixF dst(3, 6, 0.0f);
  MatrixF src(3, 2, 9.0f);
  paste_cols(dst, src, 2);
  EXPECT_EQ(dst(0, 2), 9.0f);
  EXPECT_EQ(dst(2, 3), 9.0f);
  EXPECT_EQ(dst(0, 0), 0.0f);
  EXPECT_EQ(dst(0, 5), 0.0f);
}

TEST(Compare, MaxAbsDiffAndAllclose) {
  MatrixF a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b(1, 1) = 1.01f;
  EXPECT_NEAR(max_abs_diff(a, b), 0.01, 1e-6);
  EXPECT_FALSE(allclose(a, b));
  EXPECT_TRUE(allclose(a, b, 0.02));
}

TEST(Compare, ShapeMismatchNeverClose) {
  MatrixF a(2, 2), b(2, 3);
  EXPECT_FALSE(allclose(a, b));
}

TEST(Compare, TileL2Norm) {
  MatrixF m(4, 4, 0.0f);
  m(2, 2) = 3.0f;
  m(3, 3) = 4.0f;
  EXPECT_NEAR(et::tensor::tile_l2_norm(m, 2, 2, 1, 1), 5.0, 1e-9);
  EXPECT_NEAR(et::tensor::tile_l2_norm(m, 2, 2, 0, 0), 0.0, 1e-9);
}

TEST(ReferenceGemm, KnownProduct) {
  MatrixF a(2, 3);
  MatrixF b(3, 2);
  float va = 1.0f;
  for (auto& v : a.flat()) v = va++;
  float vb = 1.0f;
  for (auto& v : b.flat()) v = vb++;
  const MatrixF c = et::tensor::reference_gemm(a, b);
  // [[1,2,3],[4,5,6]] · [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_EQ(c(0, 0), 22.0f);
  EXPECT_EQ(c(0, 1), 28.0f);
  EXPECT_EQ(c(1, 0), 49.0f);
  EXPECT_EQ(c(1, 1), 64.0f);
}

TEST(ReferenceGemm, NtMatchesNnWithTranspose) {
  MatrixF a(5, 7), b(4, 7);
  et::tensor::fill_normal(a, 10);
  et::tensor::fill_normal(b, 11);
  const MatrixF nt = et::tensor::reference_gemm_nt(a, b);
  const MatrixF nn = et::tensor::reference_gemm(a, transpose(b));
  EXPECT_TRUE(allclose(nt, nn, 1e-6, 1e-6));
}

TEST(Random, Deterministic) {
  MatrixF a(3, 3), b(3, 3);
  et::tensor::fill_normal(a, 42);
  et::tensor::fill_normal(b, 42);
  EXPECT_TRUE(allclose(a, b, 0.0, 0.0));
  et::tensor::fill_normal(b, 43);
  EXPECT_FALSE(allclose(a, b, 0.0, 0.0));
}

TEST(Random, XavierBounds) {
  MatrixF m(64, 64);
  et::tensor::fill_xavier(m, 5);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (float v : m.flat()) {
    EXPECT_LE(std::abs(v), bound);
  }
}

}  // namespace
