// Simulated kernels: numerics against the double-precision oracle and
// traffic/structure sanity.
#include <gtest/gtest.h>

#include <tuple>

#include "gpusim/device.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "tensor/compare.hpp"
#include "tensor/random.hpp"
#include "tensor/reference_gemm.hpp"

namespace {

using et::gpusim::Device;
using et::kernels::gemm_nn;
using et::kernels::gemm_nt;
using et::numeric::Precision;
using et::tensor::MatrixF;

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, NtMatchesReference) {
  const auto [m, n, k] = GetParam();
  MatrixF a(m, k), b(n, k);
  et::tensor::fill_normal(a, 1);
  et::tensor::fill_normal(b, 2);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF c = gemm_nt(ctx, a, b);
  const MatrixF ref = et::tensor::reference_gemm_nt(a, b);
  EXPECT_TRUE(allclose(c, ref, 1e-3, 1e-3))
      << "max diff " << max_abs_diff(c, ref);
  EXPECT_EQ(dev.launch_count(), 1u);
}

TEST_P(GemmSizes, NnMatchesReference) {
  const auto [m, n, k] = GetParam();
  MatrixF a(m, k), b(k, n);
  et::tensor::fill_normal(a, 3);
  et::tensor::fill_normal(b, 4);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF c = gemm_nn(ctx, a, b);
  const MatrixF ref = et::tensor::reference_gemm(a, b);
  EXPECT_TRUE(allclose(c, ref, 1e-3, 1e-3));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                      std::tuple{16, 16, 16}, std::tuple{32, 48, 64},
                      std::tuple{17, 31, 13}, std::tuple{128, 64, 32}));

TEST(Gemm, MixedPrecisionCloseToFp32) {
  MatrixF a(24, 40), b(24, 40);
  et::tensor::fill_normal(a, 5);
  et::tensor::fill_normal(b, 6);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF fp32 = gemm_nt(ctx, a, b, Precision::kFp32);
  const MatrixF mixed = gemm_nt(ctx, a, b, Precision::kMixed);
  EXPECT_TRUE(allclose(mixed, fp32, 0.05, 0.02))
      << "max diff " << max_abs_diff(mixed, fp32);
}

TEST(Gemm, TensorOpsOnlyForFp16Paths) {
  MatrixF a(16, 16), b(16, 16);
  et::tensor::fill_normal(a, 7);
  et::tensor::fill_normal(b, 8);
  Device dev;
  et::core::ExecContext ctx(dev);
  (void)gemm_nt(ctx, a, b, Precision::kFp32);
  (void)gemm_nt(ctx, a, b, Precision::kMixed);
  EXPECT_EQ(dev.history()[0].tensor_ops, 0u);
  EXPECT_GT(dev.history()[0].fp_ops, 0u);
  EXPECT_GT(dev.history()[1].tensor_ops, 0u);
  EXPECT_EQ(dev.history()[1].fp_ops, 0u);
}

TEST(Gemm, AutotunerPrefersBigBlocksForBigProblems) {
  const et::gpusim::DeviceSpec spec;
  const auto& algo =
      et::kernels::autotune_gemm(spec, 4096, 4096, 4096, Precision::kMixed);
  EXPECT_GE(algo.block_m * algo.block_n, 128u * 128u)
      << "picked " << algo.name;
}

TEST(Gemm, TrafficOnlySkipsMath) {
  MatrixF a(8, 8, 1.0f), b(8, 8, 1.0f);
  Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  const MatrixF c = gemm_nt(ctx, a, b);
  EXPECT_EQ(c(0, 0), 0.0f) << "math skipped";
  EXPECT_EQ(dev.launch_count(), 1u);
  EXPECT_GT(dev.history()[0].total_bytes(), 0u);
}

TEST(Elementwise, Scale) {
  MatrixF m(4, 4, 2.0f);
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::scale(dev, m, 0.5f);
  EXPECT_EQ(m(3, 3), 1.0f);
  EXPECT_EQ(dev.history()[0].global_load_bytes,
            dev.history()[0].global_store_bytes);
}

TEST(Elementwise, AddBiasAndResidual) {
  MatrixF m(2, 3, 1.0f);
  const std::vector<float> bias = {1.0f, 2.0f, 3.0f};
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::add_bias(dev, m, bias);
  EXPECT_EQ(m(0, 0), 2.0f);
  EXPECT_EQ(m(1, 2), 4.0f);
  MatrixF other(2, 3, 10.0f);
  et::kernels::residual_add(dev, m, other);
  EXPECT_EQ(m(0, 0), 12.0f);
}

TEST(Elementwise, ReluAndGelu) {
  MatrixF m(1, 4);
  m(0, 0) = -2.0f;
  m(0, 1) = -0.5f;
  m(0, 2) = 0.5f;
  m(0, 3) = 2.0f;
  Device dev;
  et::core::ExecContext ctx(dev);
  MatrixF g = m;
  et::kernels::gelu(dev, g);
  // GELU(-2) ≈ -0.0454, GELU(2) ≈ 1.9546, GELU(0.5) ≈ 0.3457
  EXPECT_NEAR(g(0, 0), -0.0454f, 5e-3f);
  EXPECT_NEAR(g(0, 3), 1.9546f, 5e-3f);
  et::kernels::relu(dev, m);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(0, 3), 2.0f);
}

TEST(Elementwise, CausalMask) {
  MatrixF s(4, 4, 1.0f);
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::causal_mask(dev, s);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_TRUE(std::isinf(s(i, j)) && s(i, j) < 0);
      } else {
        EXPECT_EQ(s(i, j), 1.0f);
      }
    }
  }
}

TEST(Elementwise, SoftmaxRowsSumToOne) {
  MatrixF m(6, 9);
  et::tensor::fill_normal(m, 9, 0.0f, 3.0f);
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::softmax_rows(dev, m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (float v : m.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Elementwise, SoftmaxHandlesMaskedRow) {
  MatrixF m(1, 4, -std::numeric_limits<float>::infinity());
  m(0, 0) = 0.0f;  // only one unmasked entry
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::softmax_rows(dev, m);
  EXPECT_NEAR(m(0, 0), 1.0f, 1e-6f);
  EXPECT_EQ(m(0, 3), 0.0f);
}

TEST(Elementwise, SoftmaxInvariantToShift) {
  MatrixF a(1, 5), b(1, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    a(0, c) = static_cast<float>(c);
    b(0, c) = static_cast<float>(c) + 100.0f;
  }
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::softmax_rows(dev, a);
  et::kernels::softmax_rows(dev, b);
  EXPECT_TRUE(allclose(a, b, 1e-5));
}

TEST(Elementwise, LayerNormZeroMeanUnitVar) {
  MatrixF m(3, 64);
  et::tensor::fill_normal(m, 10, 5.0f, 3.0f);
  std::vector<float> gamma(64, 1.0f), beta(64, 0.0f);
  Device dev;
  et::core::ExecContext ctx(dev);
  et::kernels::layernorm(dev, m, gamma, beta);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (float v : m.row(r)) mean += v;
    mean /= 64.0;
    for (float v : m.row(r)) var += (v - mean) * (v - mean);
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Elementwise, TransposeKernel) {
  MatrixF m(3, 5);
  et::tensor::fill_uniform(m, 11);
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF t = et::kernels::transpose_kernel(dev, m);
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t(4, 2), m(2, 4));
}

TEST(Elementwise, GatherScatterRoundTrip) {
  MatrixF x(4, 8);
  et::tensor::fill_uniform(x, 12);
  const std::vector<std::uint32_t> cols = {1, 3, 6};
  Device dev;
  et::core::ExecContext ctx(dev);
  const MatrixF gathered = et::kernels::gather_cols(dev, x, cols);
  EXPECT_EQ(gathered.cols(), 3u);
  EXPECT_EQ(gathered(2, 1), x(2, 3));
  const MatrixF scattered = et::kernels::scatter_cols(dev, gathered, cols, 8);
  EXPECT_EQ(scattered.cols(), 8u);
  EXPECT_EQ(scattered(2, 3), x(2, 3));
  EXPECT_EQ(scattered(2, 0), 0.0f);
  EXPECT_EQ(scattered(2, 7), 0.0f);
}

}  // namespace
