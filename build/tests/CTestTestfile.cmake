# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_half[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_formats[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_gemm[1]_include.cmake")
include("/root/repo/build/tests/test_attention[1]_include.cmake")
include("/root/repo/build/tests/test_encoder[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_pruning[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_attention_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_latency_properties[1]_include.cmake")
include("/root/repo/build/tests/test_quant_batch[1]_include.cmake")
include("/root/repo/build/tests/test_generation[1]_include.cmake")
include("/root/repo/build/tests/test_cta_engine[1]_include.cmake")
include("/root/repo/build/tests/test_padding_mask[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_train_extras[1]_include.cmake")
