file(REMOVE_RECURSE
  "CMakeFiles/test_attention_sweep.dir/test_attention_sweep.cpp.o"
  "CMakeFiles/test_attention_sweep.dir/test_attention_sweep.cpp.o.d"
  "test_attention_sweep"
  "test_attention_sweep.pdb"
  "test_attention_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
