# Empty compiler generated dependencies file for test_attention_sweep.
# This may be replaced when dependencies are built.
