file(REMOVE_RECURSE
  "CMakeFiles/test_quant_batch.dir/test_quant_batch.cpp.o"
  "CMakeFiles/test_quant_batch.dir/test_quant_batch.cpp.o.d"
  "test_quant_batch"
  "test_quant_batch.pdb"
  "test_quant_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
