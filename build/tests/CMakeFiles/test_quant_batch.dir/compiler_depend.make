# Empty compiler generated dependencies file for test_quant_batch.
# This may be replaced when dependencies are built.
