file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_gemm.dir/test_sparse_gemm.cpp.o"
  "CMakeFiles/test_sparse_gemm.dir/test_sparse_gemm.cpp.o.d"
  "test_sparse_gemm"
  "test_sparse_gemm.pdb"
  "test_sparse_gemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
