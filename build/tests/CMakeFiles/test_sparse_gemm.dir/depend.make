# Empty dependencies file for test_sparse_gemm.
# This may be replaced when dependencies are built.
