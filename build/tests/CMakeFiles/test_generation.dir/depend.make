# Empty dependencies file for test_generation.
# This may be replaced when dependencies are built.
