# Empty compiler generated dependencies file for test_latency_properties.
# This may be replaced when dependencies are built.
