# Empty dependencies file for test_cta_engine.
# This may be replaced when dependencies are built.
