file(REMOVE_RECURSE
  "CMakeFiles/test_cta_engine.dir/test_cta_engine.cpp.o"
  "CMakeFiles/test_cta_engine.dir/test_cta_engine.cpp.o.d"
  "test_cta_engine"
  "test_cta_engine.pdb"
  "test_cta_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cta_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
