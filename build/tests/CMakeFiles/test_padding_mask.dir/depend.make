# Empty dependencies file for test_padding_mask.
# This may be replaced when dependencies are built.
