file(REMOVE_RECURSE
  "CMakeFiles/test_padding_mask.dir/test_padding_mask.cpp.o"
  "CMakeFiles/test_padding_mask.dir/test_padding_mask.cpp.o.d"
  "test_padding_mask"
  "test_padding_mask.pdb"
  "test_padding_mask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_padding_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
