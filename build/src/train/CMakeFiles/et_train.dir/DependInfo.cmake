
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/attention_layer.cpp" "src/train/CMakeFiles/et_train.dir/attention_layer.cpp.o" "gcc" "src/train/CMakeFiles/et_train.dir/attention_layer.cpp.o.d"
  "/root/repo/src/train/folded_attention.cpp" "src/train/CMakeFiles/et_train.dir/folded_attention.cpp.o" "gcc" "src/train/CMakeFiles/et_train.dir/folded_attention.cpp.o.d"
  "/root/repo/src/train/layers.cpp" "src/train/CMakeFiles/et_train.dir/layers.cpp.o" "gcc" "src/train/CMakeFiles/et_train.dir/layers.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/et_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/et_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/model.cpp" "src/train/CMakeFiles/et_train.dir/model.cpp.o" "gcc" "src/train/CMakeFiles/et_train.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/et_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/et_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/et_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/et_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/et_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
