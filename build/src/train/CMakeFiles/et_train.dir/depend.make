# Empty dependencies file for et_train.
# This may be replaced when dependencies are built.
