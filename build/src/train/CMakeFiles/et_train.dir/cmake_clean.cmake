file(REMOVE_RECURSE
  "CMakeFiles/et_train.dir/attention_layer.cpp.o"
  "CMakeFiles/et_train.dir/attention_layer.cpp.o.d"
  "CMakeFiles/et_train.dir/folded_attention.cpp.o"
  "CMakeFiles/et_train.dir/folded_attention.cpp.o.d"
  "CMakeFiles/et_train.dir/layers.cpp.o"
  "CMakeFiles/et_train.dir/layers.cpp.o.d"
  "CMakeFiles/et_train.dir/loss.cpp.o"
  "CMakeFiles/et_train.dir/loss.cpp.o.d"
  "CMakeFiles/et_train.dir/model.cpp.o"
  "CMakeFiles/et_train.dir/model.cpp.o.d"
  "libet_train.a"
  "libet_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
