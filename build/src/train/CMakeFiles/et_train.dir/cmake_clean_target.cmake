file(REMOVE_RECURSE
  "libet_train.a"
)
