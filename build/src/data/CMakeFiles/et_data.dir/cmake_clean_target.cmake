file(REMOVE_RECURSE
  "libet_data.a"
)
