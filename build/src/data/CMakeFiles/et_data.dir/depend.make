# Empty dependencies file for et_data.
# This may be replaced when dependencies are built.
