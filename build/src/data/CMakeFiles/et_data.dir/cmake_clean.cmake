file(REMOVE_RECURSE
  "CMakeFiles/et_data.dir/metrics.cpp.o"
  "CMakeFiles/et_data.dir/metrics.cpp.o.d"
  "CMakeFiles/et_data.dir/synthetic_glue.cpp.o"
  "CMakeFiles/et_data.dir/synthetic_glue.cpp.o.d"
  "CMakeFiles/et_data.dir/synthetic_text.cpp.o"
  "CMakeFiles/et_data.dir/synthetic_text.cpp.o.d"
  "libet_data.a"
  "libet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
