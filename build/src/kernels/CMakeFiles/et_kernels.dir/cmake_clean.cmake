file(REMOVE_RECURSE
  "CMakeFiles/et_kernels.dir/elementwise.cpp.o"
  "CMakeFiles/et_kernels.dir/elementwise.cpp.o.d"
  "CMakeFiles/et_kernels.dir/gemm.cpp.o"
  "CMakeFiles/et_kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/et_kernels.dir/linear.cpp.o"
  "CMakeFiles/et_kernels.dir/linear.cpp.o.d"
  "CMakeFiles/et_kernels.dir/sparse_gemm.cpp.o"
  "CMakeFiles/et_kernels.dir/sparse_gemm.cpp.o.d"
  "libet_kernels.a"
  "libet_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
