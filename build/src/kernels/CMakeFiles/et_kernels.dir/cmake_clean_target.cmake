file(REMOVE_RECURSE
  "libet_kernels.a"
)
