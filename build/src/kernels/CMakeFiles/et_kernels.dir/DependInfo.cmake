
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/elementwise.cpp" "src/kernels/CMakeFiles/et_kernels.dir/elementwise.cpp.o" "gcc" "src/kernels/CMakeFiles/et_kernels.dir/elementwise.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "src/kernels/CMakeFiles/et_kernels.dir/gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/et_kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/kernels/linear.cpp" "src/kernels/CMakeFiles/et_kernels.dir/linear.cpp.o" "gcc" "src/kernels/CMakeFiles/et_kernels.dir/linear.cpp.o.d"
  "/root/repo/src/kernels/sparse_gemm.cpp" "src/kernels/CMakeFiles/et_kernels.dir/sparse_gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/et_kernels.dir/sparse_gemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/et_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/et_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
