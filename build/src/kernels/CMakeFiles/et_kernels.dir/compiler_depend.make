# Empty compiler generated dependencies file for et_kernels.
# This may be replaced when dependencies are built.
