file(REMOVE_RECURSE
  "CMakeFiles/et_core.dir/adaptive.cpp.o"
  "CMakeFiles/et_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/et_core.dir/attention.cpp.o"
  "CMakeFiles/et_core.dir/attention.cpp.o.d"
  "CMakeFiles/et_core.dir/attention_math.cpp.o"
  "CMakeFiles/et_core.dir/attention_math.cpp.o.d"
  "CMakeFiles/et_core.dir/kv_cache.cpp.o"
  "CMakeFiles/et_core.dir/kv_cache.cpp.o.d"
  "CMakeFiles/et_core.dir/otf_measured.cpp.o"
  "CMakeFiles/et_core.dir/otf_measured.cpp.o.d"
  "CMakeFiles/et_core.dir/weights.cpp.o"
  "CMakeFiles/et_core.dir/weights.cpp.o.d"
  "libet_core.a"
  "libet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
