
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/et_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/attention.cpp" "src/core/CMakeFiles/et_core.dir/attention.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/attention.cpp.o.d"
  "/root/repo/src/core/attention_math.cpp" "src/core/CMakeFiles/et_core.dir/attention_math.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/attention_math.cpp.o.d"
  "/root/repo/src/core/kv_cache.cpp" "src/core/CMakeFiles/et_core.dir/kv_cache.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/kv_cache.cpp.o.d"
  "/root/repo/src/core/otf_measured.cpp" "src/core/CMakeFiles/et_core.dir/otf_measured.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/otf_measured.cpp.o.d"
  "/root/repo/src/core/weights.cpp" "src/core/CMakeFiles/et_core.dir/weights.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/et_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/et_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/et_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
