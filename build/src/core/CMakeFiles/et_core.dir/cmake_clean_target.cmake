file(REMOVE_RECURSE
  "libet_core.a"
)
