file(REMOVE_RECURSE
  "CMakeFiles/et_numeric.dir/bfloat16.cpp.o"
  "CMakeFiles/et_numeric.dir/bfloat16.cpp.o.d"
  "CMakeFiles/et_numeric.dir/half.cpp.o"
  "CMakeFiles/et_numeric.dir/half.cpp.o.d"
  "libet_numeric.a"
  "libet_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
