# Empty compiler generated dependencies file for et_numeric.
# This may be replaced when dependencies are built.
