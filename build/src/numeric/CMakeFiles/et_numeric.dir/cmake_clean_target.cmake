file(REMOVE_RECURSE
  "libet_numeric.a"
)
