# Empty compiler generated dependencies file for et_pruning.
# This may be replaced when dependencies are built.
