file(REMOVE_RECURSE
  "libet_pruning.a"
)
