file(REMOVE_RECURSE
  "CMakeFiles/et_pruning.dir/criteria.cpp.o"
  "CMakeFiles/et_pruning.dir/criteria.cpp.o.d"
  "CMakeFiles/et_pruning.dir/reweighted.cpp.o"
  "CMakeFiles/et_pruning.dir/reweighted.cpp.o.d"
  "CMakeFiles/et_pruning.dir/strategy.cpp.o"
  "CMakeFiles/et_pruning.dir/strategy.cpp.o.d"
  "CMakeFiles/et_pruning.dir/svd.cpp.o"
  "CMakeFiles/et_pruning.dir/svd.cpp.o.d"
  "libet_pruning.a"
  "libet_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
