# Empty compiler generated dependencies file for et_nn.
# This may be replaced when dependencies are built.
