file(REMOVE_RECURSE
  "CMakeFiles/et_nn.dir/decoder.cpp.o"
  "CMakeFiles/et_nn.dir/decoder.cpp.o.d"
  "CMakeFiles/et_nn.dir/encoder.cpp.o"
  "CMakeFiles/et_nn.dir/encoder.cpp.o.d"
  "CMakeFiles/et_nn.dir/generation.cpp.o"
  "CMakeFiles/et_nn.dir/generation.cpp.o.d"
  "CMakeFiles/et_nn.dir/positional.cpp.o"
  "CMakeFiles/et_nn.dir/positional.cpp.o.d"
  "CMakeFiles/et_nn.dir/reference.cpp.o"
  "CMakeFiles/et_nn.dir/reference.cpp.o.d"
  "CMakeFiles/et_nn.dir/serialize.cpp.o"
  "CMakeFiles/et_nn.dir/serialize.cpp.o.d"
  "libet_nn.a"
  "libet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
