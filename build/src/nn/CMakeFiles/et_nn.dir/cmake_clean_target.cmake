file(REMOVE_RECURSE
  "libet_nn.a"
)
