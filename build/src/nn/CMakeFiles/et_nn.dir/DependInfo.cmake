
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/decoder.cpp" "src/nn/CMakeFiles/et_nn.dir/decoder.cpp.o" "gcc" "src/nn/CMakeFiles/et_nn.dir/decoder.cpp.o.d"
  "/root/repo/src/nn/encoder.cpp" "src/nn/CMakeFiles/et_nn.dir/encoder.cpp.o" "gcc" "src/nn/CMakeFiles/et_nn.dir/encoder.cpp.o.d"
  "/root/repo/src/nn/generation.cpp" "src/nn/CMakeFiles/et_nn.dir/generation.cpp.o" "gcc" "src/nn/CMakeFiles/et_nn.dir/generation.cpp.o.d"
  "/root/repo/src/nn/positional.cpp" "src/nn/CMakeFiles/et_nn.dir/positional.cpp.o" "gcc" "src/nn/CMakeFiles/et_nn.dir/positional.cpp.o.d"
  "/root/repo/src/nn/reference.cpp" "src/nn/CMakeFiles/et_nn.dir/reference.cpp.o" "gcc" "src/nn/CMakeFiles/et_nn.dir/reference.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/et_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/et_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/et_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/et_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/et_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/et_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
