file(REMOVE_RECURSE
  "CMakeFiles/et_sparse.dir/formats.cpp.o"
  "CMakeFiles/et_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/et_sparse.dir/mask.cpp.o"
  "CMakeFiles/et_sparse.dir/mask.cpp.o.d"
  "libet_sparse.a"
  "libet_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
