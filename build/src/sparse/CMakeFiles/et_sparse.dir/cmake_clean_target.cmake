file(REMOVE_RECURSE
  "libet_sparse.a"
)
