# Empty dependencies file for et_sparse.
# This may be replaced when dependencies are built.
