
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/et_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/et_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/mask.cpp" "src/sparse/CMakeFiles/et_sparse.dir/mask.cpp.o" "gcc" "src/sparse/CMakeFiles/et_sparse.dir/mask.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
