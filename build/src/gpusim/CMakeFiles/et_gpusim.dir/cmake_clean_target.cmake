file(REMOVE_RECURSE
  "libet_gpusim.a"
)
