
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cta_engine.cpp" "src/gpusim/CMakeFiles/et_gpusim.dir/cta_engine.cpp.o" "gcc" "src/gpusim/CMakeFiles/et_gpusim.dir/cta_engine.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/et_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/et_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/latency_model.cpp" "src/gpusim/CMakeFiles/et_gpusim.dir/latency_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/et_gpusim.dir/latency_model.cpp.o.d"
  "/root/repo/src/gpusim/profiler.cpp" "src/gpusim/CMakeFiles/et_gpusim.dir/profiler.cpp.o" "gcc" "src/gpusim/CMakeFiles/et_gpusim.dir/profiler.cpp.o.d"
  "/root/repo/src/gpusim/trace_export.cpp" "src/gpusim/CMakeFiles/et_gpusim.dir/trace_export.cpp.o" "gcc" "src/gpusim/CMakeFiles/et_gpusim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
