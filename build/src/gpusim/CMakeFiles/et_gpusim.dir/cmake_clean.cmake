file(REMOVE_RECURSE
  "CMakeFiles/et_gpusim.dir/cta_engine.cpp.o"
  "CMakeFiles/et_gpusim.dir/cta_engine.cpp.o.d"
  "CMakeFiles/et_gpusim.dir/device.cpp.o"
  "CMakeFiles/et_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/et_gpusim.dir/latency_model.cpp.o"
  "CMakeFiles/et_gpusim.dir/latency_model.cpp.o.d"
  "CMakeFiles/et_gpusim.dir/profiler.cpp.o"
  "CMakeFiles/et_gpusim.dir/profiler.cpp.o.d"
  "CMakeFiles/et_gpusim.dir/trace_export.cpp.o"
  "CMakeFiles/et_gpusim.dir/trace_export.cpp.o.d"
  "libet_gpusim.a"
  "libet_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
