# Empty dependencies file for et_gpusim.
# This may be replaced when dependencies are built.
