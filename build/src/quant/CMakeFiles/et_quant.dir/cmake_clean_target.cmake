file(REMOVE_RECURSE
  "libet_quant.a"
)
