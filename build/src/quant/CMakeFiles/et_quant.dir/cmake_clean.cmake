file(REMOVE_RECURSE
  "CMakeFiles/et_quant.dir/quantize.cpp.o"
  "CMakeFiles/et_quant.dir/quantize.cpp.o.d"
  "libet_quant.a"
  "libet_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
