# Empty dependencies file for et_quant.
# This may be replaced when dependencies are built.
