# Empty compiler generated dependencies file for et_cli.
# This may be replaced when dependencies are built.
