file(REMOVE_RECURSE
  "CMakeFiles/et_cli.dir/et_cli.cpp.o"
  "CMakeFiles/et_cli.dir/et_cli.cpp.o.d"
  "et_cli"
  "et_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
