# Empty compiler generated dependencies file for seq2seq_translation.
# This may be replaced when dependencies are built.
