# Empty dependencies file for glue_finetune.
# This may be replaced when dependencies are built.
