file(REMOVE_RECURSE
  "CMakeFiles/glue_finetune.dir/glue_finetune.cpp.o"
  "CMakeFiles/glue_finetune.dir/glue_finetune.cpp.o.d"
  "glue_finetune"
  "glue_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glue_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
