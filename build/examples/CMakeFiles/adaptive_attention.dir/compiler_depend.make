# Empty compiler generated dependencies file for adaptive_attention.
# This may be replaced when dependencies are built.
