file(REMOVE_RECURSE
  "CMakeFiles/adaptive_attention.dir/adaptive_attention.cpp.o"
  "CMakeFiles/adaptive_attention.dir/adaptive_attention.cpp.o.d"
  "adaptive_attention"
  "adaptive_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
