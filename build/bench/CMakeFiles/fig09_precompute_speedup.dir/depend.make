# Empty dependencies file for fig09_precompute_speedup.
# This may be replaced when dependencies are built.
