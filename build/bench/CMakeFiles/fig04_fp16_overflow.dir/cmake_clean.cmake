file(REMOVE_RECURSE
  "CMakeFiles/fig04_fp16_overflow.dir/fig04_fp16_overflow.cpp.o"
  "CMakeFiles/fig04_fp16_overflow.dir/fig04_fp16_overflow.cpp.o.d"
  "fig04_fp16_overflow"
  "fig04_fp16_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fp16_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
