# Empty dependencies file for fig04_fp16_overflow.
# This may be replaced when dependencies are built.
