# Empty compiler generated dependencies file for fig14_transformer_prune.
# This may be replaced when dependencies are built.
