file(REMOVE_RECURSE
  "CMakeFiles/fig14_transformer_prune.dir/fig14_transformer_prune.cpp.o"
  "CMakeFiles/fig14_transformer_prune.dir/fig14_transformer_prune.cpp.o.d"
  "fig14_transformer_prune"
  "fig14_transformer_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_transformer_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
