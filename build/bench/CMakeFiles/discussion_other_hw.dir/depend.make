# Empty dependencies file for discussion_other_hw.
# This may be replaced when dependencies are built.
