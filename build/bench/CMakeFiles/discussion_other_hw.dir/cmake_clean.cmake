file(REMOVE_RECURSE
  "CMakeFiles/discussion_other_hw.dir/discussion_other_hw.cpp.o"
  "CMakeFiles/discussion_other_hw.dir/discussion_other_hw.cpp.o.d"
  "discussion_other_hw"
  "discussion_other_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_other_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
