# Empty compiler generated dependencies file for fig08_otf_vs_seqlen.
# This may be replaced when dependencies are built.
