file(REMOVE_RECURSE
  "CMakeFiles/fig08_otf_vs_seqlen.dir/fig08_otf_vs_seqlen.cpp.o"
  "CMakeFiles/fig08_otf_vs_seqlen.dir/fig08_otf_vs_seqlen.cpp.o.d"
  "fig08_otf_vs_seqlen"
  "fig08_otf_vs_seqlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_otf_vs_seqlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
