# Empty compiler generated dependencies file for fig11_profiling.
# This may be replaced when dependencies are built.
