file(REMOVE_RECURSE
  "CMakeFiles/fig11_profiling.dir/fig11_profiling.cpp.o"
  "CMakeFiles/fig11_profiling.dir/fig11_profiling.cpp.o.d"
  "fig11_profiling"
  "fig11_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
