file(REMOVE_RECURSE
  "CMakeFiles/fig07_encoder_latency.dir/fig07_encoder_latency.cpp.o"
  "CMakeFiles/fig07_encoder_latency.dir/fig07_encoder_latency.cpp.o.d"
  "fig07_encoder_latency"
  "fig07_encoder_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_encoder_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
