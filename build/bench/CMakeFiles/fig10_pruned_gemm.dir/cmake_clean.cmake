file(REMOVE_RECURSE
  "CMakeFiles/fig10_pruned_gemm.dir/fig10_pruned_gemm.cpp.o"
  "CMakeFiles/fig10_pruned_gemm.dir/fig10_pruned_gemm.cpp.o.d"
  "fig10_pruned_gemm"
  "fig10_pruned_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pruned_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
