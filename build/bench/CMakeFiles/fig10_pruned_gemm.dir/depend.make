# Empty dependencies file for fig10_pruned_gemm.
# This may be replaced when dependencies are built.
