file(REMOVE_RECURSE
  "CMakeFiles/ablation_scale_reorder.dir/ablation_scale_reorder.cpp.o"
  "CMakeFiles/ablation_scale_reorder.dir/ablation_scale_reorder.cpp.o.d"
  "ablation_scale_reorder"
  "ablation_scale_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scale_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
