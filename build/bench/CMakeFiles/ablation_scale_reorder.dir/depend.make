# Empty dependencies file for ablation_scale_reorder.
# This may be replaced when dependencies are built.
