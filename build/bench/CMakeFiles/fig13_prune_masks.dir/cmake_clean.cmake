file(REMOVE_RECURSE
  "CMakeFiles/fig13_prune_masks.dir/fig13_prune_masks.cpp.o"
  "CMakeFiles/fig13_prune_masks.dir/fig13_prune_masks.cpp.o.d"
  "fig13_prune_masks"
  "fig13_prune_masks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_prune_masks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
