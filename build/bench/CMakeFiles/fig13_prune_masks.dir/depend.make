# Empty dependencies file for fig13_prune_masks.
# This may be replaced when dependencies are built.
