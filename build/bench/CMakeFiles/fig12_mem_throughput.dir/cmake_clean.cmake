file(REMOVE_RECURSE
  "CMakeFiles/fig12_mem_throughput.dir/fig12_mem_throughput.cpp.o"
  "CMakeFiles/fig12_mem_throughput.dir/fig12_mem_throughput.cpp.o.d"
  "fig12_mem_throughput"
  "fig12_mem_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mem_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
