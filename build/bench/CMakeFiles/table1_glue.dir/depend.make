# Empty dependencies file for table1_glue.
# This may be replaced when dependencies are built.
