file(REMOVE_RECURSE
  "CMakeFiles/table1_glue.dir/table1_glue.cpp.o"
  "CMakeFiles/table1_glue.dir/table1_glue.cpp.o.d"
  "table1_glue"
  "table1_glue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_glue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
