
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_glue.cpp" "bench/CMakeFiles/table1_glue.dir/table1_glue.cpp.o" "gcc" "bench/CMakeFiles/table1_glue.dir/table1_glue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pruning/CMakeFiles/et_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/et_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/et_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/et_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/et_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/et_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/et_data.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/et_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/et_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/et_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
