file(REMOVE_RECURSE
  "CMakeFiles/ablation_generation.dir/ablation_generation.cpp.o"
  "CMakeFiles/ablation_generation.dir/ablation_generation.cpp.o.d"
  "ablation_generation"
  "ablation_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
