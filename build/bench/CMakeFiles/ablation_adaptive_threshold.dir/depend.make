# Empty dependencies file for ablation_adaptive_threshold.
# This may be replaced when dependencies are built.
