file(REMOVE_RECURSE
  "CMakeFiles/ablation_int8.dir/ablation_int8.cpp.o"
  "CMakeFiles/ablation_int8.dir/ablation_int8.cpp.o.d"
  "ablation_int8"
  "ablation_int8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_int8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
