# Empty compiler generated dependencies file for ablation_int8.
# This may be replaced when dependencies are built.
