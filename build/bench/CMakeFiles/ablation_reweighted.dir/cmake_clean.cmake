file(REMOVE_RECURSE
  "CMakeFiles/ablation_reweighted.dir/ablation_reweighted.cpp.o"
  "CMakeFiles/ablation_reweighted.dir/ablation_reweighted.cpp.o.d"
  "ablation_reweighted"
  "ablation_reweighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
