# Empty dependencies file for ablation_reweighted.
# This may be replaced when dependencies are built.
