// Shared helpers for the paper-reproduction bench binaries: aligned table
// printing, optional CSV output (--csv), and env-var workload scaling.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace et::bench {

inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

/// Scale factor for training-heavy benches: ET_EPOCH_SCALE=4 trains 4×
/// longer (closer to the paper's schedules), default 1 finishes in seconds.
inline double epoch_scale() {
  const char* v = std::getenv("ET_EPOCH_SCALE");
  return v != nullptr ? std::max(0.25, std::atof(v)) : 1.0;
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers, bool csv = false)
      : headers_(std::move(headers)), csv_(csv) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    if (csv_) {
      print_delimited(",");
      return;
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_aligned(width, headers_);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_aligned(width, row);
  }

 private:
  void print_aligned(const std::vector<std::size_t>& width,
                     const std::vector<std::string>& row) const {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  c + 1 < row.size() ? "  " : "");
    }
    std::printf("\n");
  }
  void print_delimited(const char* sep) const {
    const auto line = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", row[c].c_str(), c + 1 < row.size() ? sep : "");
      }
      std::printf("\n");
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_ = false;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_ratio(double v) { return fmt(v, 2) + "x"; }

}  // namespace et::bench
