// Shared helpers for the paper-reproduction bench binaries: aligned table
// printing, optional CSV (--csv) or JSON (--json) output, and env-var
// workload scaling.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace et::bench {

inline bool flag_set(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline bool csv_mode(int argc, char** argv) {
  return flag_set(argc, argv, "--csv");
}

/// The standard bench JSON shape: the table becomes an array of row
/// objects keyed by header, numeric cells emitted as JSON numbers —
/// machine-readable for ablation plots and CI trend tracking.
inline bool json_mode(int argc, char** argv) {
  return flag_set(argc, argv, "--json");
}

/// Scale factor for training-heavy benches: ET_EPOCH_SCALE=4 trains 4×
/// longer (closer to the paper's schedules), default 1 finishes in seconds.
inline double epoch_scale() {
  const char* v = std::getenv("ET_EPOCH_SCALE");
  return v != nullptr ? std::max(0.25, std::atof(v)) : 1.0;
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers, bool csv = false,
                 bool json = false)
      : headers_(std::move(headers)), csv_(csv), json_(json) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    if (json_) {
      print_json();
      return;
    }
    if (csv_) {
      print_delimited(",");
      return;
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_aligned(width, headers_);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_aligned(width, row);
  }

 private:
  void print_aligned(const std::vector<std::size_t>& width,
                     const std::vector<std::string>& row) const {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                  c + 1 < row.size() ? "  " : "");
    }
    std::printf("\n");
  }
  static bool is_number(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    (void)std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  static void print_json_string(const std::string& s) {
    std::printf("\"");
    for (char ch : s) {
      if (ch == '"' || ch == '\\') std::printf("\\%c", ch);
      else if (ch == '\n') std::printf("\\n");
      else std::printf("%c", ch);
    }
    std::printf("\"");
  }

  void print_json() const {
    std::printf("[\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::printf("  {");
      const auto& row = rows_[r];
      for (std::size_t c = 0; c < row.size() && c < headers_.size(); ++c) {
        print_json_string(headers_[c]);
        std::printf(": ");
        if (is_number(row[c])) {
          std::printf("%s", row[c].c_str());
        } else {
          print_json_string(row[c]);
        }
        if (c + 1 < row.size() && c + 1 < headers_.size()) std::printf(", ");
      }
      std::printf("}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::printf("]\n");
  }

  void print_delimited(const char* sep) const {
    const auto line = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", row[c].c_str(), c + 1 < row.size() ? sep : "");
      }
      std::printf("\n");
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_ = false;
  bool json_ = false;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_ratio(double v) { return fmt(v, 2) + "x"; }

}  // namespace et::bench
