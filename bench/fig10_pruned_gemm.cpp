// Figure 10: latency of one pruned linear transformation (seq=128 input,
// d_model × d_model weight) by pruning algorithm and sparsity, for
// d_model ∈ {768, 1024}. The unpruned baseline is the fastest dense
// cuBLAS-style routine (ALGO5 on the paper's server).
//
// Expected shape: tile pruning best at equal sparsity, ~3.5×/3.2× at 95%;
// row/column top out around 1.2–1.7×; irregular far slower than dense.
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "kernels/linear.hpp"
#include "pruning/criteria.hpp"
#include "tensor/random.hpp"

namespace {

using et::sparse::PruneMethod;
using et::tensor::MatrixF;

double linear_us(const MatrixF& x, const et::sparse::AnyWeight& w) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::kernels::LinearOptions opt;
  opt.precision = et::numeric::Precision::kMixed;
  (void)et::kernels::linear(ctx, x, w, opt);
  return dev.total_time_us();
}

void sweep(std::size_t d, bool csv) {
  MatrixF weight(d, d);
  et::tensor::fill_normal(weight, 77, 0.0f, 0.02f);
  MatrixF x(128, d);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  // Dense baseline pinned to the ALGO5 analogue, as in §5.2.4.
  (void)et::kernels::gemm_nt(ctx, x, weight, et::numeric::Precision::kMixed,
                             &et::kernels::gemm_algo5(), "dense_algo5");
  const double dense = dev.total_time_us();
  dev.reset();
  (void)et::kernels::gemm_nt(ctx, x, weight, et::numeric::Precision::kMixed,
                             nullptr, "dense_auto");
  const double dense_auto = dev.total_time_us();

  et::bench::Table table({"sparsity", "algo5_us", "auto_us", "row_us",
                          "col_us", "tile_us", "irregular_us",
                          "tile_vs_algo5", "tile_vs_auto"},
                         csv);
  for (const double ratio : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const double row = linear_us(
        x, et::sparse::make_weight(PruneMethod::kRow, weight,
                                   et::pruning::row_mask(weight, ratio)));
    const double col = linear_us(
        x, et::sparse::make_weight(PruneMethod::kColumn, weight,
                                   et::pruning::column_mask(weight, ratio)));
    const double tile = linear_us(
        x, et::sparse::make_weight(PruneMethod::kTile, weight,
                                   et::pruning::tile_mask(weight, ratio)));
    const double irr = linear_us(
        x,
        et::sparse::make_weight(PruneMethod::kIrregular, weight,
                                et::pruning::magnitude_mask(weight, ratio)));
    table.add_row({et::bench::fmt(ratio, 2), et::bench::fmt(dense, 1),
                   et::bench::fmt(dense_auto, 1), et::bench::fmt(row, 1),
                   et::bench::fmt(col, 1), et::bench::fmt(tile, 1),
                   et::bench::fmt(irr, 1),
                   et::bench::fmt_ratio(dense / tile),
                   et::bench::fmt_ratio(dense_auto / tile)});
  }
  std::printf("\nd_model = %zu (dense ALGO5 = %.1f us, best autotuned = "
              "%.1f us)\n\n",
              d, dense, dense_auto);
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  std::printf("Figure 10 — pruned linear transformation latency, seq=128 "
              "(paper: tile reaches 3.5x/3.2x at 95%% sparsity)\n");
  sweep(768, csv);
  sweep(1024, csv);
  return 0;
}
