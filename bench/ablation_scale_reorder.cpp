// Ablation (§3.3): precision policy × scale-reordering for the on-the-fly
// attention operator — overflow counts, shared-memory footprint (Eq. 6)
// and modeled latency. Shows why E.T. runs pure FP16 *with* the reorder:
// it is the only configuration that is both safe and minimal-footprint.
#include "bench_common.hpp"
#include "core/attention.hpp"
#include "gpusim/device.hpp"
#include "tensor/random.hpp"

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  using et::numeric::Precision;

  et::core::AttentionConfig base;
  base.seq_len = 128;
  base.d_model = 768;
  base.num_heads = 12;
  base.causal_mask = false;
  const auto w = [&] {
    auto weights = et::core::make_dense_weights(base, 5);
    // Trained-scale Q/K weights so unscaled pure-FP16 actually overflows.
    for (auto* any : {&weights.wq, &weights.wk}) {
      auto big = std::get<et::sparse::DenseWeight>(*any).matrix();
      for (auto& v : big.flat()) v *= 14.0f;
      *any = et::sparse::DenseWeight(std::move(big));
    }
    return weights;
  }();
  et::tensor::MatrixF x(base.seq_len, base.d_model);
  et::tensor::fill_normal(x, 6, 0.0f, 3.5f);

  struct Config {
    const char* name;
    Precision precision;
    bool reorder;
  };
  const Config configs[] = {
      {"fp32", Precision::kFp32, false},
      {"mixed (fp16 x fp16 -> fp32)", Precision::kMixed, false},
      {"pure fp16, scale after", Precision::kPureFp16, false},
      {"pure fp16, scale before (E.T.)", Precision::kPureFp16, true},
      {"bf16 mixed", Precision::kBf16Mixed, false},
  };

  std::printf("Ablation — precision policy x scale reordering, BERT_BASE "
              "attention, seq=128\n\n");
  et::bench::Table table({"config", "overflows", "shared_bytes_per_cta",
                          "latency_us"},
                         csv);
  for (const auto& c : configs) {
    auto cfg = base;
    cfg.precision = c.precision;
    cfg.scale_before_multiply = c.reorder;
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    et::numeric::reset_overflow_count();
    (void)et::core::otf_attention(ctx, x, w, cfg);
    table.add_row({c.name, std::to_string(et::numeric::overflow_count()),
                   std::to_string(et::core::otf_shared_bytes(cfg)),
                   et::bench::fmt(dev.total_time_us(), 1)});
  }
  et::numeric::reset_overflow_count();
  table.print();
  std::printf("\nPure FP16 with the reorder is overflow-free at the mixed-"
              "precision latency or better, with the smallest Eq. 6 "
              "footprint.\n");
  return 0;
}
