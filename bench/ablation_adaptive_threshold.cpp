// Ablation (§3.2): where should the full→partial on-the-fly switch sit?
// Sweeps the fixed threshold against an oracle (per-length best) and the
// latency-model auto-tuner, at BERT_BASE width.
#include <limits>

#include "bench_common.hpp"
#include "core/adaptive.hpp"
#include "gpusim/device.hpp"

namespace {

double run_us(const et::core::AttentionWeights& w,
              et::core::AttentionConfig cfg, bool partial) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(cfg.seq_len, cfg.d_model);
  if (partial) {
    (void)et::core::partial_otf_attention(ctx, x, w, cfg);
  } else {
    (void)et::core::otf_attention(ctx, x, w, cfg);
  }
  return dev.total_time_us();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  et::core::AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 8);

  // Per-length latencies of both variants.
  std::vector<std::size_t> lens;
  std::vector<double> full_us, partial_us;
  for (std::size_t seq = 64; seq <= 512; seq += 32) {
    cfg.seq_len = seq;
    lens.push_back(seq);
    full_us.push_back(run_us(w, cfg, false));
    partial_us.push_back(run_us(w, cfg, true));
  }
  const auto oracle = [&] {
    double total = 0.0;
    for (std::size_t i = 0; i < lens.size(); ++i) {
      total += std::min(full_us[i], partial_us[i]);
    }
    return total;
  }();

  std::printf("Ablation — adaptive full/partial OTF threshold, BERT_BASE "
              "width (paper threshold: 224)\n\n");
  et::bench::Table table({"threshold", "total_us_over_sweep", "vs_oracle"},
                         csv);
  double best_total = std::numeric_limits<double>::infinity();
  std::size_t best_threshold = 0;
  for (const std::size_t threshold :
       {96u, 128u, 160u, 192u, 224u, 256u, 288u, 320u, 512u}) {
    double total = 0.0;
    for (std::size_t i = 0; i < lens.size(); ++i) {
      total += lens[i] > threshold ? partial_us[i] : full_us[i];
    }
    if (total < best_total) {
      best_total = total;
      best_threshold = threshold;
    }
    table.add_row({std::to_string(threshold), et::bench::fmt(total, 1),
                   et::bench::fmt(100.0 * (total / oracle - 1.0), 2) + "%"});
  }
  table.print();
  std::printf("\nbest fixed threshold: %zu (oracle total %.1f us)\n",
              best_threshold, oracle);

  // The auto-tuner should match the oracle by construction.
  double auto_total = 0.0;
  et::gpusim::Device probe;
  et::core::AdaptivePolicy policy;
  policy.auto_tune = true;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    cfg.seq_len = lens[i];
    et::tensor::MatrixF x(lens[i], cfg.d_model);
    const auto impl =
        et::core::choose_attention_impl(probe, x, w, cfg, policy);
    auto_total += impl == et::core::AttentionImpl::kPartialOtf
                      ? partial_us[i]
                      : full_us[i];
  }
  std::printf("latency-model auto-tune total: %.1f us (%.2f%% over "
              "oracle)\n",
              auto_total, 100.0 * (auto_total / oracle - 1.0));
  return 0;
}
