// Figure 4: the FP16 overflow heatmap of Q·Kᵀ (Transformer-like setup,
// seq = 16, d_model = 256) when computed in pure FP16 *without* the §3.3
// scale reordering, vs. the same computation with scaling moved before
// the multiplication.
//
// Expected shape: the unreordered map is mostly overflowed ("the majority
// of the entries are shadow ones"); the reordered map is clean.
#include <cmath>

#include "bench_common.hpp"
#include "numeric/half.hpp"
#include "numeric/precision.hpp"
#include "tensor/matrix.hpp"
#include "tensor/random.hpp"

namespace {

using et::numeric::Precision;
using et::tensor::MatrixF;

/// Compute one head's Q·Kᵀ in pure FP16 and mark the entries whose
/// accumulation left the binary16 range (including transient partial-sum
/// overflow, which is what the tensor-core tile accumulator suffers).
et::tensor::Matrix<std::uint8_t> overflow_map(const MatrixF& q,
                                              const MatrixF& k, float scale,
                                              bool scale_before) {
  const std::size_t s = q.rows();
  const std::size_t dk = q.cols();
  et::tensor::Matrix<std::uint8_t> map(s, s);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      et::numeric::reset_overflow_count();
      float acc = 0.0f;
      for (std::size_t c = 0; c < dk; ++c) {
        const float qv = scale_before ? et::numeric::round_to_storage(
                                            Precision::kPureFp16,
                                            q(i, c) * scale)
                                      : q(i, c);
        acc = et::numeric::fma_step(Precision::kPureFp16, qv, k(j, c), acc);
      }
      if (!scale_before) {
        acc = et::numeric::round_to_storage(Precision::kPureFp16,
                                            acc * scale);
      }
      map(i, j) = (et::numeric::overflow_count() > 0 || std::isinf(acc) ||
                   std::isnan(acc))
                      ? 1
                      : 0;
    }
  }
  et::numeric::reset_overflow_count();
  return map;
}

void print_map(const char* title,
               const et::tensor::Matrix<std::uint8_t>& map) {
  std::size_t overflowed = 0;
  for (auto v : map.flat()) overflowed += v;
  std::printf("\n%s — %zu / %zu entries overflow (%.0f%%)\n", title,
              overflowed, map.size(),
              100.0 * static_cast<double>(overflowed) /
                  static_cast<double>(map.size()));
  for (std::size_t i = 0; i < map.rows(); ++i) {
    for (std::size_t j = 0; j < map.cols(); ++j) {
      std::printf("%c", map(i, j) ? '#' : '.');
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int, char**) {
  const std::size_t seq = 16, d = 256, heads = 2;
  const std::size_t dk = d / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  // Trained-model magnitudes: embeddings and Q/K activations in trained
  // transformers run far from unit scale, which is what pushes the
  // unscaled tile products past 65504.
  MatrixF q(seq, dk), k(seq, dk);
  et::tensor::fill_normal(q, 1, 0.0f, 55.0f);
  et::tensor::fill_normal(k, 2, 0.0f, 55.0f);

  std::printf("Figure 4 — pure-FP16 Q·K^T overflow heatmap, one head "
              "(seq=16, d_model=256, d_k=%zu). '#' = overflow.\n", dk);
  print_map("(a) scaling AFTER Q·K^T (PyTorch/TensorRT order)",
            overflow_map(q, k, scale, /*scale_before=*/false));
  print_map("(b) scaling BEFORE Q·K^T (E.T.'s reordering, §3.3)",
            overflow_map(q, k, scale, /*scale_before=*/true));
  std::printf("\nThe reordering makes pure-FP16 attention safe, halving the "
              "shared-memory accumulator footprint and skipping the "
              "FP32->FP16 conversions mixed precision needs.\n");
  return 0;
}
