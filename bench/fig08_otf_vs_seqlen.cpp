// Figure 8: attention-computation latency (steps ②–⑥ of Fig. 3) vs
// sequence length for full on-the-fly, partial on-the-fly, and the
// TensorRT-like attention, on the Transformer (d=800, H=4) and BERT_BASE
// (d=768, H=12) configurations.
//
// Expected shape: both E.T. variants beat TensorRT at every length; full
// OTF wins at short sequences, partial OTF takes over past a crossover in
// the low-200s (the paper reports 224 and sets the adaptive threshold
// there).
#include <functional>

#include "bench_common.hpp"
#include "core/attention.hpp"
#include "gpusim/device.hpp"

namespace {

using et::core::AttentionConfig;
using et::core::AttentionWeights;

/// Time of the attention-region kernels only (projection / output linears
/// excluded — they are identical across the three implementations).
double attention_region_us(
    const std::function<void(et::gpusim::Device&)>& run) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  run(dev);
  double us = 0.0;
  for (const auto& k : dev.history()) {
    if (k.name.find("linear") != std::string::npos) continue;
    us += k.time_us;
  }
  return us;
}

void sweep(const char* name, std::size_t d_model, std::size_t heads,
           bool csv) {
  AttentionConfig cfg;
  cfg.d_model = d_model;
  cfg.num_heads = heads;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const AttentionWeights w = et::core::make_dense_weights(cfg, 11);

  et::bench::Table table({"seq_len", "TensorRT_us", "full_OTF_us",
                          "partial_OTF_us", "OTF_vs_TRT", "winner"},
                         csv);
  double sum_speedup = 0.0;
  int count = 0;
  std::size_t crossover = 0;
  for (std::size_t seq = 64; seq <= 512; seq += 32) {
    cfg.seq_len = seq;
    et::tensor::MatrixF x(seq, d_model);
    AttentionConfig trt_cfg = cfg;
    trt_cfg.precision = et::numeric::Precision::kMixed;
    trt_cfg.scale_before_multiply = false;
    const double trt = attention_region_us([&](et::gpusim::Device& dev) {
      et::core::ExecContext ctx(dev);
      (void)et::core::fused_attention(ctx, x, w, trt_cfg);
    });
    const double full = attention_region_us([&](et::gpusim::Device& dev) {
      et::core::ExecContext ctx(dev);
      (void)et::core::otf_attention(ctx, x, w, cfg);
    });
    const double partial = attention_region_us([&](et::gpusim::Device& dev) {
      et::core::ExecContext ctx(dev);
      (void)et::core::partial_otf_attention(ctx, x, w, cfg);
    });
    const double best = std::min(full, partial);
    if (seq >= 64 && seq <= 256) {
      sum_speedup += trt / best;
      ++count;
    }
    if (crossover == 0 && partial < full) crossover = seq;
    table.add_row({std::to_string(seq), et::bench::fmt(trt, 1),
                   et::bench::fmt(full, 1), et::bench::fmt(partial, 1),
                   et::bench::fmt_ratio(trt / best),
                   full <= partial ? "full" : "partial"});
  }
  std::printf("\n%s (d_model=%zu, H=%zu)\n\n", name, d_model, heads);
  table.print();
  std::printf("\navg speedup over TensorRT (seq 64-256): %.1fx; "
              "full->partial crossover at seq=%zu (paper: ~224)\n",
              sum_speedup / count, crossover);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  std::printf("Figure 8 — attention implementations vs sequence length "
              "(paper: avg 2.5x Transformer / 3.3x BERT over TensorRT)\n");
  sweep("Transformer", 800, 4, csv);
  sweep("BERT_BASE", 768, 12, csv);
  return 0;
}
