// Figure 8, grown into the operator ablation: attention-computation
// latency (steps ②–⑥ of Fig. 3) AND score-matrix traffic vs sequence
// length for full on-the-fly, partial on-the-fly, and the streaming flash
// operator, with the TensorRT-like attention as the paper's baseline — on
// the Transformer (d=800, H=4) and BERT_BASE (d=768, H=12) configurations.
//
// Expected shape: every E.T. variant beats TensorRT at every length; full
// OTF wins only within one 16-row tile, flash takes over past seq 16 and
// keeps winning (its Br-row tiles re-read K/V 4x less than OTF's 16-row
// tiles). The score-bytes columns are the asymptotic story: OTF never
// touches global memory with scores (0), partial-OTF materializes the
// full S = Q·Kᵀ once (O(N²)), flash spills only the per-row (m, ℓ)
// softmax statistics (O(N)). Every operator runs through
// adaptive_attention with a forced policy — the same dispatch path
// et_cli --attention uses.
//
// --smoke: small sweep with hard gates on the asymptotics (flash strictly
// below partial-OTF at the longest length, linear vs quadratic growth);
// exits nonzero on violation so ctest can pin the property.
#include <cstdint>
#include <functional>

#include "bench_common.hpp"
#include "core/adaptive.hpp"
#include "gpusim/device.hpp"

namespace {

using et::core::AttentionConfig;
using et::core::AttentionImpl;
using et::core::AttentionWeights;

struct RegionCost {
  double us = 0.0;                 ///< attention-region kernel time
  std::uint64_t score_bytes = 0;   ///< global-memory score-matrix traffic
};

/// Cost of the attention-region kernels only (projection / output linears
/// excluded — they are identical across the implementations). Each run
/// gets a fresh traffic-only device so launches never mix; the operator
/// is pinned through AdaptivePolicy::forced, exactly like et_cli
/// --attention, so the bench exercises the real dispatch path.
RegionCost attention_region(AttentionImpl impl, const et::tensor::MatrixF& x,
                            const AttentionWeights& w,
                            const AttentionConfig& cfg) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::core::AdaptivePolicy policy;
  policy.forced = impl;
  (void)et::core::adaptive_attention(ctx, x, w, cfg, policy);
  RegionCost cost;
  for (const auto& k : dev.history()) {
    if (k.name.find("linear") != std::string::npos) continue;
    cost.us += k.time_us;
    cost.score_bytes += k.score_bytes;
  }
  return cost;
}

struct SweepResult {
  // score-bytes at the two longest swept lengths, for the asymptotic
  // gates (the longest is 2x the second-longest by construction).
  std::uint64_t flash_half = 0, flash_max = 0;
  std::uint64_t partial_half = 0, partial_max = 0;
  std::size_t max_seq = 0;
};

SweepResult sweep(const char* name, std::size_t d_model, std::size_t heads,
                  bool csv, bool json, std::size_t seq_step,
                  std::size_t seq_max) {
  AttentionConfig cfg;
  cfg.d_model = d_model;
  cfg.num_heads = heads;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const AttentionWeights w = et::core::make_dense_weights(cfg, 11);

  et::bench::Table table(
      {"seq_len", "TensorRT_us", "full_OTF_us", "partial_OTF_us", "flash_us",
       "OTF_scoreB", "partial_scoreB", "flash_scoreB", "ET_vs_TRT", "winner"},
      csv, json);
  double sum_speedup = 0.0;
  int count = 0;
  std::size_t flash_crossover = 0;
  SweepResult result;
  for (std::size_t seq = seq_step; seq <= seq_max; seq += seq_step) {
    cfg.seq_len = seq;
    et::tensor::MatrixF x(seq, d_model);
    AttentionConfig trt_cfg = cfg;
    trt_cfg.precision = et::numeric::Precision::kMixed;
    trt_cfg.scale_before_multiply = false;
    const RegionCost trt = attention_region(AttentionImpl::kFused, x, w,
                                            trt_cfg);
    const RegionCost full = attention_region(AttentionImpl::kOtf, x, w, cfg);
    const RegionCost partial = attention_region(AttentionImpl::kPartialOtf,
                                                x, w, cfg);
    const RegionCost flash = attention_region(AttentionImpl::kFlash, x, w,
                                              cfg);
    const double best =
        std::min(flash.us, std::min(full.us, partial.us));
    if (seq >= 64 && seq <= 256) {
      sum_speedup += trt.us / best;
      ++count;
    }
    if (flash_crossover == 0 && flash.us < full.us &&
        flash.us < partial.us) {
      flash_crossover = seq;
    }
    const char* winner = flash.us <= full.us && flash.us <= partial.us
                             ? "flash"
                             : (full.us <= partial.us ? "full" : "partial");
    table.add_row({std::to_string(seq), et::bench::fmt(trt.us, 1),
                   et::bench::fmt(full.us, 1), et::bench::fmt(partial.us, 1),
                   et::bench::fmt(flash.us, 1),
                   std::to_string(full.score_bytes),
                   std::to_string(partial.score_bytes),
                   std::to_string(flash.score_bytes),
                   et::bench::fmt_ratio(trt.us / best), winner});
    if (seq == seq_max / 2) {
      result.flash_half = flash.score_bytes;
      result.partial_half = partial.score_bytes;
    }
    if (seq == seq_max) {
      result.flash_max = flash.score_bytes;
      result.partial_max = partial.score_bytes;
      result.max_seq = seq;
    }
  }
  if (!json) {
    std::printf("\n%s (d_model=%zu, H=%zu)\n\n", name, d_model, heads);
  }
  table.print();
  if (!json) {
    std::printf("\navg speedup over TensorRT (seq 64-256): %.1fx; flash "
                "takes over from seq=%zu (threshold: one 16-row OTF tile); "
                "score traffic at seq=%zu: partial %llu B (O(N^2)) vs "
                "flash %llu B (O(N))\n",
                sum_speedup / count, flash_crossover, result.max_seq,
                static_cast<unsigned long long>(result.partial_max),
                static_cast<unsigned long long>(result.flash_max));
  }
  return result;
}

/// The --smoke gates: hard-fail (exit 1) if the asymptotics the flash
/// operator exists for do not hold in the traffic model.
bool check_asymptotics(const SweepResult& r) {
  bool ok = true;
  if (r.flash_max >= r.partial_max) {
    std::fprintf(stderr,
                 "FAIL: flash score bytes (%llu) not strictly below "
                 "partial-OTF's (%llu) at seq_len=%zu\n",
                 static_cast<unsigned long long>(r.flash_max),
                 static_cast<unsigned long long>(r.partial_max), r.max_seq);
    ok = false;
  }
  // Doubling the sequence must exactly double flash's score traffic (the
  // per-row (m, ℓ) statistics are linear in N)...
  if (r.flash_max != 2 * r.flash_half) {
    std::fprintf(stderr,
                 "FAIL: flash score bytes not linear: %llu at seq/2 vs "
                 "%llu at seq (want exactly 2x)\n",
                 static_cast<unsigned long long>(r.flash_half),
                 static_cast<unsigned long long>(r.flash_max));
    ok = false;
  }
  // ...and exactly quadruple partial-OTF's (the materialized S is N×N).
  if (r.partial_max != 4 * r.partial_half) {
    std::fprintf(stderr,
                 "FAIL: partial-OTF score bytes not quadratic: %llu at "
                 "seq/2 vs %llu at seq (want exactly 4x)\n",
                 static_cast<unsigned long long>(r.partial_half),
                 static_cast<unsigned long long>(r.partial_max));
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);
  const bool smoke = et::bench::flag_set(argc, argv, "--smoke");
  if (smoke) {
    // Small sweep whose two longest lengths are 256 and 512 — enough to
    // pin the O(N) vs O(N^2) contract under ctest in milliseconds.
    const SweepResult r =
        sweep("BERT_BASE", 768, 12, csv, json, /*seq_step=*/128,
              /*seq_max=*/512);
    if (!check_asymptotics(r)) return 1;
    std::printf("smoke OK: flash %llu B < partial %llu B at seq %zu; "
                "linear vs quadratic growth verified\n",
                static_cast<unsigned long long>(r.flash_max),
                static_cast<unsigned long long>(r.partial_max), r.max_seq);
    return 0;
  }
  if (!json) {
    std::printf("Figure 8 — attention implementations vs sequence length "
                "(paper: avg 2.5x Transformer / 3.3x BERT over TensorRT)\n");
  }
  const SweepResult tr = sweep("Transformer", 800, 4, csv, json,
                               /*seq_step=*/32, /*seq_max=*/512);
  const SweepResult bb = sweep("BERT_BASE", 768, 12, csv, json,
                               /*seq_step=*/32, /*seq_max=*/512);
  // The asymptotic contract holds in every mode, not just --smoke; a
  // bench that prints numbers contradicting the paper should not pass.
  return check_asymptotics(tr) && check_asymptotics(bb) ? 0 : 1;
}
