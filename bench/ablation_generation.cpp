// Ablation: autoregressive generation cost on the E.T. stack — prefill
// vs decode, context-length scaling, and what pruning buys in the
// generation regime (where skinny GEMMs make everything weight-bound).
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/generation.hpp"
#include "pruning/strategy.hpp"
#include "train/model.hpp"

namespace {

std::vector<et::nn::EncoderWeights> build_layers(
    const et::nn::ModelConfig& model, double ratio) {
  if (ratio <= 0.0) {
    std::vector<et::nn::EncoderWeights> layers;
    for (std::size_t l = 0; l < model.num_layers; ++l) {
      layers.push_back(et::nn::make_dense_encoder_weights(model, 1 + l));
    }
    return layers;
  }
  et::train::TrainModelConfig tcfg;
  tcfg.vocab_size = 64;
  tcfg.d_model = model.d_model;
  tcfg.num_heads = model.num_heads;
  tcfg.d_ff = model.d_ff;
  tcfg.num_layers = 1;
  et::train::TransformerModel shapes(tcfg, 9);
  const auto masks = et::pruning::compute_layer_masks(
      shapes.layers()[0], et::pruning::Strategy::kAttentionAware, ratio);
  const auto w = et::pruning::deploy_layer(
      shapes.layers()[0], masks, et::pruning::Strategy::kAttentionAware);
  return std::vector<et::nn::EncoderWeights>(model.num_layers, w);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  // DistilBERT-sized decoder-only model (6 causal layers).
  const auto model = et::nn::distilbert();
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 1,
                                 /*causal=*/true);

  std::printf("Ablation — KV-cached generation on the E.T. stack "
              "(6 layers, d=768)\n\n");
  et::bench::Table table({"config", "prefill_128_us", "per_token_at_128",
                          "per_token_at_512", "tokens_per_s_at_512"},
                         csv);
  for (const double ratio : {0.0, 0.7}) {
    const auto layers = build_layers(model, ratio);
    et::nn::GenerationSession session(et::nn::Model(&layers, opt, 600));
    et::tensor::MatrixF row(1, model.d_model);

    // Prefill a 128-token prompt (token-by-token through the cache).
    et::gpusim::Device prefill_dev;
    et::core::ExecContext prefill_dev_ctx(prefill_dev);
    prefill_dev.set_traffic_only(true);
    for (int t = 0; t < 128; ++t) (void)session.step(prefill_dev_ctx, row);
    const double prefill = prefill_dev.total_time_us();

    const auto step_cost = [&] {
      et::gpusim::Device dev;
      et::core::ExecContext ctx(dev);
      dev.set_traffic_only(true);
      (void)session.step(ctx, row);
      return dev.total_time_us();
    };
    const double at_128 = step_cost();
    while (session.context_length() < 512) {
      et::gpusim::Device dev;
      et::core::ExecContext ctx(dev);
      dev.set_traffic_only(true);
      (void)session.step(ctx, row);
    }
    const double at_512 = step_cost();

    table.add_row({ratio > 0 ? "attention-aware 70%" : "dense",
                   et::bench::fmt(prefill, 1), et::bench::fmt(at_128, 1),
                   et::bench::fmt(at_512, 1),
                   et::bench::fmt(1e6 / at_512, 0)});
  }
  table.print();
  std::printf("\nGeneration is launch/weight-bound: per-token cost grows "
              "only mildly with context (the cache read), and pruning's "
              "weight-traffic savings carry over.\n");
  return 0;
}
