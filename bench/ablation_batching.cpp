// Ablation: latency-optimized (one sequence at a time, the paper's
// metric) vs throughput-optimized batched inference (the TurboTransformer
// regime the §6 discussion positions E.T. as a backend for). Batched
// execution amortizes weight loads and kernel launches across sequences;
// per-sequence latency rises slightly while aggregate throughput climbs.
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "tensor/random.hpp"

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const auto model = et::nn::bert_base();
  const auto w = et::nn::make_dense_encoder_weights(model, 1);
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 128);

  std::printf("Ablation — batched E.T. inference, BERT_BASE encoder layer, "
              "seq=128\n\n");
  et::bench::Table table({"batch", "sequential_us", "batched_us",
                          "per_seq_us", "throughput_seq_per_ms",
                          "amortization"},
                         csv);
  for (const std::size_t batch_size : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<et::tensor::MatrixF> batch(
        batch_size, et::tensor::MatrixF(128, model.d_model));

    et::gpusim::Device seq_dev;
    seq_dev.set_traffic_only(true);
    for (const auto& x : batch) {
      (void)et::nn::encoder_forward(seq_dev, x, w, opt);
    }
    const double sequential = seq_dev.total_time_us();

    et::gpusim::Device bat_dev;
    bat_dev.set_traffic_only(true);
    (void)et::nn::batched_encoder_forward(bat_dev, batch, w, opt);
    const double batched = bat_dev.total_time_us();

    table.add_row({std::to_string(batch_size),
                   et::bench::fmt(sequential, 1), et::bench::fmt(batched, 1),
                   et::bench::fmt(batched / batch_size, 1),
                   et::bench::fmt(1000.0 * batch_size / batched, 1),
                   et::bench::fmt_ratio(sequential / batched)});
  }
  table.print();
  std::printf("\nVariable-length batch (no padding): ");
  std::vector<et::tensor::MatrixF> varlen;
  for (const std::size_t s : {32u, 64u, 96u, 128u}) {
    varlen.emplace_back(s, model.d_model);
  }
  et::gpusim::Device var_dev;
  var_dev.set_traffic_only(true);
  (void)et::nn::batched_encoder_forward(var_dev, varlen, w, opt);
  const double unpadded = var_dev.total_time_us();
  std::vector<et::tensor::MatrixF> padded(
      4, et::tensor::MatrixF(128, model.d_model));
  et::gpusim::Device pad_dev;
  pad_dev.set_traffic_only(true);
  (void)et::nn::batched_encoder_forward(pad_dev, padded, w, opt);
  std::printf("%.1f us vs %.1f us padded -> %.0f%% saved\n", unpadded,
              pad_dev.total_time_us(),
              100.0 * (1.0 - unpadded / pad_dev.total_time_us()));
  return 0;
}
