// Ablation: decode throughput vs batch size through the slot-based
// BatchedGenerationScheduler (docs/serving.md). Autoregressive decode is
// weight-load-bound — every step re-reads the projection and FFN weights
// for ONE row of activations — so batching B sequences into one fused
// tick amortizes those loads ~B× (the batched q/k/v GEMM stages its
// weight panels once, the stacked MLP likewise) while each sequence still
// attends over its own KV cache. Tokens/sec should therefore scale
// strongly with batch size; per-sequence latency is the price.
//
// --json emits the standard bench JSON shape; --csv the usual CSV.
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/batched_generation.hpp"
#include "nn/generation.hpp"

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);

  // BERT_BASE-width decoder, 4 layers: big enough that weight traffic
  // dominates, small enough to build in seconds.
  et::nn::ModelConfig model;
  model.num_layers = 4;
  model.d_model = 768;
  model.num_heads = 12;
  model.d_ff = 3072;

  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 1 + l));
  }
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 128,
                                 /*causal=*/true);

  constexpr std::size_t kTokensPerSeq = 32;
  constexpr std::size_t kMaxContext = 64;
  const auto embed = [&](std::int32_t, std::size_t) {
    return et::tensor::MatrixF(1, model.d_model);
  };
  const auto select = [](const et::tensor::MatrixF&) {
    return std::int32_t{1};
  };

  if (!csv && !json) {
    std::printf("Ablation — batched decode throughput, %zux d=%zu decoder, "
                "%zu tokens/sequence\n\n",
                model.num_layers, model.d_model, kTokensPerSeq);
  }
  et::bench::Table table({"batch", "total_tokens", "ticks", "batched_ticks",
                          "time_us", "tokens_per_sec", "per_token_us",
                          "speedup_vs_b1"},
                         csv, json);

  double base_tps = 0.0;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    et::nn::BatchedGenerationScheduler sched(&layers, opt, batch,
                                             kMaxContext);
    for (std::size_t i = 0; i < batch; ++i) {
      et::nn::GenerationRequest req;
      req.first_token = static_cast<std::int32_t>(i);
      req.max_new_tokens = kTokensPerSeq;
      req.embed = embed;
      req.select = select;
      (void)sched.submit(std::move(req));
    }

    et::gpusim::Device dev;
    dev.set_traffic_only(true);
    const auto results = sched.run(dev);

    std::size_t total_tokens = 0;
    for (const auto& r : results) total_tokens += r.tokens.size();
    const double time_us = dev.total_time_us();
    const double tps = 1e6 * static_cast<double>(total_tokens) / time_us;
    if (batch == 1) base_tps = tps;

    table.add_row({std::to_string(batch), std::to_string(total_tokens),
                   std::to_string(sched.ticks()),
                   std::to_string(sched.batched_ticks()),
                   et::bench::fmt(time_us, 1), et::bench::fmt(tps, 1),
                   et::bench::fmt(time_us / static_cast<double>(total_tokens),
                                  2),
                   et::bench::fmt(tps / base_tps, 2)});
  }
  table.print();

  if (!csv && !json) {
    std::printf(
        "\nThe same model through sequential nn::generate (the batch=1 "
        "API): ");
    et::gpusim::Device dev;
    dev.set_traffic_only(true);
    et::nn::GenerationSession session(&layers, opt, kMaxContext);
    const auto r =
        et::nn::generate(dev, session, 0, kTokensPerSeq, embed, select);
    std::printf("%.1f us for %zu tokens (%.1f tokens/sec)\n",
                dev.total_time_us(), r.tokens.size(),
                1e6 * static_cast<double>(r.tokens.size()) /
                    dev.total_time_us());
  }
  return 0;
}
