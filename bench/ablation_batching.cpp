// Ablation: decode throughput vs batch size AND thread count through the
// slot-based BatchedGenerationScheduler (docs/serving.md).
//
// Batch axis (modeled time, traffic-only): autoregressive decode is
// weight-load-bound — every step re-reads the projection and FFN weights
// for ONE row of activations — so batching B sequences into one fused
// tick amortizes those loads ~B× (the batched q/k/v GEMM stages its
// weight panels once, the stacked MLP likewise) while each sequence still
// attends over its own KV cache. Tokens/sec should therefore scale
// strongly with batch size; per-sequence latency is the price.
//
// Threads axis (wall clock, real math): the same batch-8 decode through
// ExecContext pools of 1/2/4/8 threads. The per-slot attention segment
// and the kernel row loops partition across the pool with fixed
// thread-count-independent chunks (docs/threading.md), so the transcripts
// and the modeled time_us stay bit-identical while host wall time drops
// with cores. The bench verifies the bit-identity and exits nonzero on
// any divergence. On a single-core host the wall_ms column will not show
// a speedup — the determinism columns still must hold.
//
// --json emits the standard bench JSON shape (one array; the `sweep`
// column tags each row "batch" or "threads"); --csv the usual CSV.
// Field names match `et_cli --batch N --json`.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/exec_context.hpp"
#include "gpusim/device.hpp"
#include "nn/batched_generation.hpp"
#include "nn/generation.hpp"

namespace {

struct RunOutcome {
  std::vector<et::nn::GenerationResult> results;
  std::size_t ticks = 0;
  std::size_t batched_ticks = 0;
  std::size_t per_slot_fallback_ticks = 0;
  double time_us = 0.0;  // modeled device time
  double wall_ms = 0.0;  // host wall clock around run()
};

RunOutcome run_batched(const std::vector<et::nn::EncoderWeights>& layers,
                       const et::nn::EncoderOptions& opt, std::size_t batch,
                       std::size_t tokens_per_seq, std::size_t max_context,
                       std::size_t d_model, std::size_t threads,
                       bool traffic_only) {
  et::nn::BatchedGenerationScheduler sched(
      et::nn::Model(&layers, opt, max_context), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    et::nn::GenerationRequest req;
    req.first_token = static_cast<std::int32_t>(i);
    req.max_new_tokens = tokens_per_seq;
    req.embed = [d_model](std::int32_t, std::size_t) {
      return et::tensor::MatrixF(1, d_model);
    };
    req.select = [](const et::tensor::MatrixF&) { return std::int32_t{1}; };
    (void)sched.submit(std::move(req));
  }

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev, threads);
  dev.set_traffic_only(traffic_only);
  const auto t0 = std::chrono::steady_clock::now();
  RunOutcome out;
  out.results = sched.run(ctx);
  const auto t1 = std::chrono::steady_clock::now();
  out.ticks = sched.ticks();
  out.batched_ticks = sched.batched_ticks();
  out.per_slot_fallback_ticks = sched.per_slot_fallback_ticks();
  out.time_us = dev.total_time_us();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

std::size_t token_count(const RunOutcome& r) {
  std::size_t total = 0;
  for (const auto& g : r.results) total += g.tokens.size();
  return total;
}

bool same_transcripts(const RunOutcome& a, const RunOutcome& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].tokens != b.results[i].tokens) return false;
    if (a.results[i].stop_reason != b.results[i].stop_reason) return false;
  }
  return a.ticks == b.ticks && a.batched_ticks == b.batched_ticks;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);

  // BERT_BASE-width decoder, 4 layers: big enough that weight traffic
  // dominates, small enough to build in seconds. Used for the modeled
  // batch-axis sweep only.
  et::nn::ModelConfig model;
  model.num_layers = 4;
  model.d_model = 768;
  model.num_heads = 12;
  model.d_ff = 3072;

  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 1 + l));
  }
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 128,
                                       /*causal=*/true);

  constexpr std::size_t kTokensPerSeq = 32;
  constexpr std::size_t kMaxContext = 64;

  if (!csv && !json) {
    std::printf("Ablation — batched decode throughput, %zux d=%zu decoder, "
                "%zu tokens/sequence\n\n",
                model.num_layers, model.d_model, kTokensPerSeq);
  }
  et::bench::Table table({"sweep", "batch", "threads", "total_tokens",
                          "ticks", "batched_ticks", "per_slot_fallback_ticks",
                          "time_us", "wall_ms", "tokens_per_sec",
                          "per_token_us", "speedup"},
                         csv, json);

  // ---- Batch axis: modeled device time, traffic-only (instant math). ----
  double base_tps = 0.0;
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    const RunOutcome r =
        run_batched(layers, opt, batch, kTokensPerSeq, kMaxContext,
                    model.d_model, /*threads=*/1, /*traffic_only=*/true);
    const std::size_t total_tokens = token_count(r);
    const double tps = 1e6 * static_cast<double>(total_tokens) / r.time_us;
    if (batch == 1) base_tps = tps;
    table.add_row({"batch", std::to_string(batch), "1",
                   std::to_string(total_tokens), std::to_string(r.ticks),
                   std::to_string(r.batched_ticks),
                   std::to_string(r.per_slot_fallback_ticks),
                   et::bench::fmt(r.time_us, 1), et::bench::fmt(r.wall_ms, 2),
                   et::bench::fmt(tps, 1),
                   et::bench::fmt(r.time_us /
                                      static_cast<double>(total_tokens),
                                  2),
                   et::bench::fmt(tps / base_tps, 2)});
  }

  // ---- Threads axis: real math, wall clock, fixed batch 8. ----
  // A slimmer decoder keeps the scalar math tractable; the point is the
  // host-side scaling shape, not the absolute numbers.
  et::nn::ModelConfig small;
  small.num_layers = 2;
  small.d_model = 256;
  small.num_heads = 4;
  small.d_ff = 512;
  std::vector<et::nn::EncoderWeights> small_layers;
  for (std::size_t l = 0; l < small.num_layers; ++l) {
    small_layers.push_back(et::nn::make_dense_encoder_weights(small, 11 + l));
  }
  const auto small_opt = et::nn::options_for(et::nn::Pipeline::kET, small, 64,
                                             /*causal=*/true);
  constexpr std::size_t kThreadBatch = 8;
  constexpr std::size_t kThreadTokens = 8;

  RunOutcome serial_ref;
  double base_wall = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const RunOutcome r =
        run_batched(small_layers, small_opt, kThreadBatch, kThreadTokens,
                    kThreadTokens + 2, small.d_model, threads,
                    /*traffic_only=*/false);
    if (threads == 1) {
      serial_ref = r;
      base_wall = r.wall_ms;
    } else if (!same_transcripts(serial_ref, r) ||
               serial_ref.time_us != r.time_us) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: threads=%zu diverged from the "
                   "serial run\n",
                   threads);
      return 1;
    }
    const std::size_t total_tokens = token_count(r);
    const double wall_tps =
        1e3 * static_cast<double>(total_tokens) / r.wall_ms;
    table.add_row({"threads", std::to_string(kThreadBatch),
                   std::to_string(threads), std::to_string(total_tokens),
                   std::to_string(r.ticks), std::to_string(r.batched_ticks),
                   std::to_string(r.per_slot_fallback_ticks),
                   et::bench::fmt(r.time_us, 1), et::bench::fmt(r.wall_ms, 2),
                   et::bench::fmt(wall_tps, 1),
                   et::bench::fmt(1e3 * r.wall_ms /
                                      static_cast<double>(total_tokens),
                                  2),
                   et::bench::fmt(base_wall / r.wall_ms, 2)});
  }
  table.print();

  if (!csv && !json) {
    std::printf(
        "\nbatch rows: modeled device time (traffic-only), speedup vs "
        "batch=1.\nthreads rows: REAL math on a %zux d=%zu decoder, wall "
        "clock, speedup vs threads=1;\ntime_us is the modeled time and is "
        "identical at every thread count (verified).\n",
        small.num_layers, small.d_model);
    std::printf(
        "\nThe same model through sequential nn::generate (the batch=1 "
        "API): ");
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    et::nn::GenerationSession session(et::nn::Model(&layers, opt, kMaxContext));
    const auto embed = [&model](std::int32_t, std::size_t) {
      return et::tensor::MatrixF(1, model.d_model);
    };
    const auto select = [](const et::tensor::MatrixF&) {
      return std::int32_t{1};
    };
    const auto r =
        et::nn::generate(ctx, session, 0, kTokensPerSeq, embed, select);
    std::printf("%.1f us for %zu tokens (%.1f tokens/sec)\n",
                dev.total_time_us(), r.tokens.size(),
                1e6 * static_cast<double>(r.tokens.size()) /
                    dev.total_time_us());
  }
  return 0;
}
