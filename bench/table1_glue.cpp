// Table 1: prediction quality and inference latency of BERT_BASE and
// DistilBERT on the (synthetic) GLUE suite under the four pruning methods,
// using the paper's own per-task pruning ratios.
//
// Quality comes from scaled-down classifiers trained on the synthetic
// tasks; latency comes from the simulator at the paper's model
// configurations (d=768, L=12 / L=6, seq=128). Expected shape:
//   - WNLI flat at ~56.3 for every method and ratio;
//   - attention-aware ≈ tile ≥ column in score, best in latency;
//   - irregular scores well but is 1–2 orders of magnitude slower.
#include <map>

#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "train_harness.hpp"

namespace {

using et::data::GlueTask;
using et::pruning::Strategy;

struct MethodRatios {
  Strategy strategy;
  const char* name;
  // Paper's per-task pruning ratios (MNLI QQP QNLI SST2 STSB MRPC WNLI).
  double bert[7];
  double distil[7];
};

const MethodRatios kMethods[] = {
    {Strategy::kIrregular, "irregular",
     {0.7, 0.9, 0.7, 0.7, 0.6, 0.7, 0.9},
     {0.4, 0.8, 0.8, 0.8, 0.6, 0.7, 0.9}},
    {Strategy::kColumn, "column",
     {0.3, 0.5, 0.4, 0.3, 0.2, 0.1, 0.9},
     {0.4, 0.4, 0.3, 0.5, 0.2, 0.4, 0.9}},
    {Strategy::kTile, "tile",
     {0.3, 0.5, 0.4, 0.5, 0.3, 0.2, 0.9},
     {0.4, 0.4, 0.3, 0.6, 0.2, 0.5, 0.9}},
    {Strategy::kAttentionAware, "attention-aware",
     {0.3, 0.8, 0.4, 0.7, 0.3, 0.2, 0.9},
     {0.4, 0.4, 0.3, 0.9, 0.2, 0.9, 0.9}},
};

et::train::TrainModelConfig small_cls_model() {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 256;
  cfg.d_model = 64;
  cfg.num_heads = 4;
  cfg.d_ff = 128;
  cfg.num_layers = 2;
  cfg.causal = false;
  return cfg;
}

/// Full-model latency (ms) at the paper's configuration.
double model_latency_ms(const et::nn::ModelConfig& model, Strategy strategy,
                        double ratio) {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = model.d_model;
  cfg.num_heads = model.num_heads;
  cfg.d_ff = model.d_ff;
  cfg.num_layers = 1;
  static std::map<std::size_t, et::train::TransformerModel> cache;
  auto it = cache.find(model.d_model);
  if (it == cache.end()) {
    it = cache.emplace(model.d_model,
                       et::train::TransformerModel(cfg, 777)).first;
  }
  const auto masks = et::pruning::compute_layer_masks(
      it->second.layers()[0], strategy, ratio);
  const auto weights = et::pruning::deploy_layer(it->second.layers()[0],
                                                 masks, strategy);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(128, model.d_model);
  const auto opt =
      et::nn::options_for(et::nn::Pipeline::kET, model, 128, false);
  (void)et::nn::encoder_forward(ctx, x, weights, opt);
  return dev.total_time_us() * static_cast<double>(model.num_layers) / 1e3;
}

void run_model(const char* name, const et::nn::ModelConfig& model,
               bool distil, bool csv) {
  const double scale = et::bench::epoch_scale();
  const int pre_epochs = static_cast<int>(8 * scale);
  const int reweight_epochs = static_cast<int>(2 * scale);
  const int retrain_epochs = static_cast<int>(3 * scale);
  const float lr = 2e-3f;

  std::printf("\n===== %s (latency at d=%zu, L=%zu, seq=128) =====\n\n",
              name, model.d_model, model.num_layers);
  et::bench::Table table({"method", "task", "metric", "score", "baseline",
                          "retention", "ratio", "latency_ms"},
                         csv);
  struct Avg {
    double score = 0, base = 0, ratio = 0, lat = 0;
    int n = 0;
  };
  std::map<std::string, Avg> averages;

  for (std::size_t ti = 0; ti < std::size(et::data::kAllGlueTasks); ++ti) {
    const GlueTask task = et::data::kAllGlueTasks[ti];
    et::data::GlueDatasetConfig dcfg;
    dcfg.size_scale = scale >= 1.0 ? 1.0 : scale;
    const et::data::GlueDataset ds(task, dcfg);

    // Fine-tuned dense baseline (the "ours" row of Table 1). The pruned
    // runs branch off after pre_epochs; the baseline then continues for
    // the same number of additional epochs the pruned runs get, so the
    // comparison is epoch-for-epoch fair.
    et::train::TransformerClassifier baseline(
        small_cls_model(),
        std::max<std::size_t>(ds.spec().num_classes, 1), 1000 + ti);
    et::bench::train_cls_epochs(baseline, ds, pre_epochs, lr);
    const et::train::TransformerClassifier checkpoint = baseline;
    et::bench::train_cls_epochs(baseline, ds,
                                reweight_epochs + retrain_epochs, lr);
    const double base_score = et::bench::eval_glue(baseline, ds);

    for (const auto& method : kMethods) {
      const double ratio = distil ? method.distil[ti] : method.bert[ti];
      et::train::TransformerClassifier cls = checkpoint;
      const auto masks = et::bench::prune_classifier(
          cls, ds, method.strategy, ratio, reweight_epochs, retrain_epochs,
          lr);
      (void)masks;
      const double score = et::bench::eval_glue(cls, ds);
      const double lat = model_latency_ms(model, method.strategy, ratio);
      const char* metric =
          ds.spec().metric == et::data::GlueMetric::kF1        ? "F1"
          : ds.spec().metric == et::data::GlueMetric::kSpearman ? "Spearman"
                                                                : "acc";
      table.add_row({method.name, ds.spec().name, metric,
                     et::bench::fmt(score, 1), et::bench::fmt(base_score, 1),
                     et::bench::fmt(100.0 * score /
                                        std::max(base_score, 1.0), 0) +
                         "%",
                     et::bench::fmt(ratio, 2), et::bench::fmt(lat, 2)});
      auto& avg = averages[method.name];
      avg.score += score;
      avg.base += base_score;
      avg.ratio += ratio;
      avg.lat += lat;
      ++avg.n;
    }
  }
  // The paper's AVG column, one row per method.
  for (const auto& method : kMethods) {
    const auto& avg = averages[method.name];
    if (avg.n == 0) continue;
    table.add_row({method.name, "AVG", "",
                   et::bench::fmt(avg.score / avg.n, 1),
                   et::bench::fmt(avg.base / avg.n, 1),
                   et::bench::fmt(100.0 * avg.score / avg.base, 0) + "%",
                   et::bench::fmt(avg.ratio / avg.n, 2),
                   et::bench::fmt(avg.lat / avg.n, 2)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  std::printf("Table 1 — synthetic-GLUE quality and modeled latency "
              "(paper: ~95%% retention; attention-aware fastest; irregular "
              "39-44x slower; WNLI pinned at 56.3)\n");
  run_model("BERT_BASE", et::nn::bert_base(), /*distil=*/false, csv);
  run_model("DistilBERT", et::nn::distilbert(), /*distil=*/true, csv);
  return 0;
}
