// Figure 11: nvprof-style hardware counters for the attention region —
// E.T.'s on-the-fly operator vs the TensorRT-like sequence at BERT_BASE,
// seq = 128.
//
// Expected shape (paper): OTF loads ~1.8× *more* (gld_transactions) but
// stores ~5× *less* (gst_transactions), with ~30% higher sm_efficiency
// and ~22% higher IPC — the extra loads stay off the critical path while
// the avoided intermediate stores were on it (§5.2.5).
#include "bench_common.hpp"
#include "core/attention.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"

namespace {

struct RegionStats {
  std::uint64_t gld = 0, gst = 0;
  double sm_eff = 0.0, ipc = 0.0, time_us = 0.0;
};

RegionStats attention_region(const et::gpusim::Device& dev) {
  RegionStats out;
  double weight = 0.0;
  for (const auto& k : dev.history()) {
    if (k.name.find("linear") != std::string::npos) continue;
    out.gld += k.gld_transactions();
    out.gst += k.gst_transactions();
    out.sm_eff += k.sm_efficiency * k.time_us;
    out.ipc += k.ipc * k.time_us;
    out.time_us += k.time_us;
    weight += k.time_us;
  }
  if (weight > 0) {
    out.sm_eff /= weight;
    out.ipc /= weight;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  et::core::AttentionConfig cfg;
  cfg.seq_len = 128;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 3);
  et::tensor::MatrixF x(cfg.seq_len, cfg.d_model);

  et::gpusim::Device trt_dev, otf_dev;
  trt_dev.set_traffic_only(true);
  otf_dev.set_traffic_only(true);

  auto trt_cfg = cfg;
  trt_cfg.precision = et::numeric::Precision::kMixed;
  trt_cfg.scale_before_multiply = false;
  et::core::ExecContext trt_ctx(trt_dev);
  (void)et::core::fused_attention(trt_ctx, x, w, trt_cfg);

  auto et_cfg = cfg;
  et_cfg.precision = et::numeric::Precision::kPureFp16;
  et::core::ExecContext otf_ctx(otf_dev);
  (void)et::core::otf_attention(otf_ctx, x, w, et_cfg);

  const RegionStats trt = attention_region(trt_dev);
  const RegionStats otf = attention_region(otf_dev);

  std::printf("Figure 11 — attention-region hardware profile, BERT_BASE "
              "seq=128 (paper: gld 1.8x more, gst 5x less, sm_eff +30%%, "
              "IPC +22%%)\n\n");
  et::bench::Table table(
      {"metric", "TensorRT", "ET_OTF", "OTF/TRT"}, csv);
  table.add_row({"gld_transactions", std::to_string(trt.gld),
                 std::to_string(otf.gld),
                 et::bench::fmt_ratio(static_cast<double>(otf.gld) /
                                      static_cast<double>(trt.gld))});
  table.add_row({"gst_transactions", std::to_string(trt.gst),
                 std::to_string(otf.gst),
                 et::bench::fmt_ratio(static_cast<double>(otf.gst) /
                                      static_cast<double>(trt.gst))});
  table.add_row({"sm_efficiency", et::bench::fmt(trt.sm_eff, 3),
                 et::bench::fmt(otf.sm_eff, 3),
                 et::bench::fmt_ratio(otf.sm_eff / trt.sm_eff)});
  table.add_row({"IPC", et::bench::fmt(trt.ipc, 2),
                 et::bench::fmt(otf.ipc, 2),
                 et::bench::fmt_ratio(otf.ipc / trt.ipc)});
  table.add_row({"time_us", et::bench::fmt(trt.time_us, 1),
                 et::bench::fmt(otf.time_us, 1),
                 et::bench::fmt_ratio(otf.time_us / trt.time_us)});
  table.print();
  return 0;
}
