// Ablation: INT8 quantization vs the FP16 pruning story. Quantization
// halves the weight bytes and doubles tensor throughput; tile pruning
// removes computation outright. The two compose — a quantized *and*
// tile-pruned linear layer is the fastest of all.
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "kernels/linear.hpp"
#include "pruning/criteria.hpp"
#include "quant/quantize.hpp"
#include "tensor/random.hpp"

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  std::printf("Ablation — INT8 quantization vs/with tile pruning, "
              "BERT_BASE ff1 layer (128 x 768 -> 3072)\n\n");

  et::tensor::MatrixF x(128, 768);
  et::tensor::MatrixF w(3072, 768);
  et::tensor::fill_normal(w, 1, 0.0f, 0.02f);
  et::tensor::fill_normal(x, 2);

  et::bench::Table table({"config", "latency_us", "weight_MB", "speedup"},
                         csv);
  const auto mb = [](double bytes) { return bytes / 1024.0 / 1024.0; };

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  (void)et::kernels::gemm_nt(ctx, x, w, et::numeric::Precision::kMixed);
  const double fp16 = dev.total_time_us();
  table.add_row({"fp16 dense", et::bench::fmt(fp16, 1),
                 et::bench::fmt(mb(w.size() * 2.0), 1), "1.00x"});

  dev.reset();
  const auto qw = et::quant::quantize_weight(w);
  (void)et::quant::int8_linear(dev, x, qw);
  const double int8 = dev.total_time_us();
  table.add_row({"int8 dense", et::bench::fmt(int8, 1),
                 et::bench::fmt(mb(w.size() * 1.0), 1),
                 et::bench::fmt_ratio(fp16 / int8)});

  for (const double ratio : {0.5, 0.8}) {
    const auto mask = et::pruning::tile_mask(w, ratio);
    const auto tp = et::sparse::TilePrunedWeight::from_masked(w, mask);
    dev.reset();
    (void)et::kernels::bcsr_gemm_nt(ctx, x, tp,
                                    et::numeric::Precision::kMixed);
    const double tile = dev.total_time_us();
    table.add_row({"fp16 tile-pruned " + et::bench::fmt(ratio, 1),
                   et::bench::fmt(tile, 1),
                   et::bench::fmt(mb(tp.nnz_tiles() * 256 * 2.0), 1),
                   et::bench::fmt_ratio(fp16 / tile)});

    // Composition: quantize the condensed tiles (latency modeled as the
    // BCSR kernel with halved weight bytes and doubled tensor rate).
    et::tensor::MatrixF masked = w;
    et::sparse::apply_mask(masked, mask);
    dev.reset();
    {
      auto launch = dev.launch(
          {.name = "int8_bcsr_gemm",
           .ctas = (128 / 64) * (tp.tile_rows() / 2),
           .shared_bytes_per_cta = 8 * 1024,
           .pattern = et::gpusim::AccessPattern::kTiled});
      launch.load_bytes(tp.nnz_tiles() * 256 * 1 + 128ull * 768 * 1);
      launch.store_bytes(128ull * 3072 * 2);
      launch.tensor_ops(2ull * 128 * 256 * tp.nnz_tiles() / 2);
    }
    const double both = dev.total_time_us();
    table.add_row({"int8 tile-pruned " + et::bench::fmt(ratio, 1),
                   et::bench::fmt(both, 1),
                   et::bench::fmt(mb(tp.nnz_tiles() * 256 * 1.0), 1),
                   et::bench::fmt_ratio(fp16 / both)});
  }
  table.print();
  std::printf("\nQuantization-only accuracy cost (per-row symmetric int8): "
              "max %.3f quantization steps of error.\n",
              et::quant::max_quantization_error_steps(w, qw));
  return 0;
}
