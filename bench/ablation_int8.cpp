// Ablation: the INT8 decode path (docs/quantization.md).
//
// Two sections:
//   1. Kernel-level composition — INT8 quantization vs the FP16 pruning
//      story on a BERT_BASE ff1 layer. Quantization halves the weight
//      bytes and doubles tensor throughput; tile pruning removes
//      computation outright; the two compose.
//   2. Served int8-vs-fp — the same serving workload decoded through
//      fp32 weights + fp32 paged KV and through INT8 weights + INT8
//      paged KV (nn::WeightFormat::kInt8 + core::KvPrecision::kInt8).
//      HARD GATES (nonzero exit): the int8 run must re-run bit for bit,
//      and both kv_bytes_used_peak and modeled serve time must STRICTLY
//      drop under int8 — the row exists to pin the quantized path's
//      memory win, not to decorate it.
//
// --csv / --json emit the standard machine-readable table; --smoke runs
// only the served gates (the ctest wiring, label "quant").
#include <bit>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/exec_context.hpp"
#include "gpusim/device.hpp"
#include "kernels/linear.hpp"
#include "pruning/criteria.hpp"
#include "quant/quantize.hpp"
#include "serving/server.hpp"
#include "tensor/random.hpp"

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Content-bearing embedding / bit-sensitive selection — the same
/// closures the differential tests and ablation_serving use, so a
/// single-ulp decode divergence flips the transcripts.
et::nn::EmbedFn make_embed(std::size_t d_model, std::uint64_t seed) {
  return [d_model, seed](std::int32_t token, std::size_t position) {
    et::tensor::MatrixF row(1, d_model);
    const std::uint64_t base =
        splitmix64(seed ^ (static_cast<std::uint64_t>(token) << 32) ^
                   static_cast<std::uint64_t>(position));
    for (std::size_t c = 0; c < d_model; ++c) {
      const std::uint64_t h = splitmix64(base + c);
      row(0, c) =
          static_cast<float>(h >> 40) / static_cast<float>(1ull << 24) - 0.5f;
    }
    return row;
  };
}

et::nn::SelectFn make_select(std::int32_t vocab) {
  return [vocab](const et::tensor::MatrixF& hidden) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (float v : hidden.flat()) {
      h = splitmix64(h ^ std::bit_cast<std::uint32_t>(v));
    }
    return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  };
}

struct ServedRow {
  double time_us = 0.0;
  double kv_bytes = 0.0;
  double kv_bytes_used_peak = 0.0;
  std::string metrics_json;
  std::vector<std::vector<std::int32_t>> transcripts;
};

ServedRow run_served(const std::vector<et::nn::EncoderWeights>& layers,
                     const et::nn::EncoderOptions& opt,
                     std::optional<et::nn::WeightFormat> weights,
                     et::core::KvPrecision kv_precision) {
  constexpr std::size_t kRequests = 16;
  constexpr std::size_t kTokens = 6;
  const et::nn::Model model(&layers, opt, kTokens + 1, weights);
  et::serving::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.queue_capacity = 16;
  scfg.kv.precision = kv_precision;
  et::serving::InferenceServer server(model, scfg);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);

  std::vector<et::serving::RequestHandle> handles;
  std::size_t submitted = 0;
  const auto submit_some = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && submitted < kRequests; ++k) {
      et::serving::Request req;
      req.max_new_tokens = kTokens;
      req.first_token = static_cast<std::int32_t>(submitted);
      req.embed = make_embed(model.d_model(), 31 + submitted);
      req.select = make_select(96);
      handles.push_back(server.submit(std::move(req)));
      ++submitted;
    }
  };
  submit_some(2);
  while (submitted < kRequests || !server.idle()) {
    server.tick(ctx);
    submit_some(2);
  }

  ServedRow out;
  out.time_us = dev.total_time_us();
  out.metrics_json = server.metrics().json(0);
  for (const auto& f : server.metrics().scalars()) {
    if (f.name == "kv_bytes") out.kv_bytes = f.value;
    if (f.name == "kv_bytes_used_peak") out.kv_bytes_used_peak = f.value;
  }
  for (const auto& h : handles) {
    out.transcripts.push_back(server.result(h).tokens);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);
  const bool smoke = et::bench::flag_set(argc, argv, "--smoke");

  // ---- Section 1: kernel-level composition (skipped under --smoke).
  if (!smoke) {
    if (!csv && !json) {
      std::printf("Ablation — INT8 quantization vs/with tile pruning, "
                  "BERT_BASE ff1 layer (128 x 768 -> 3072)\n\n");
    }
    et::tensor::MatrixF x(128, 768);
    et::tensor::MatrixF w(3072, 768);
    et::tensor::fill_normal(w, 1, 0.0f, 0.02f);
    et::tensor::fill_normal(x, 2);

    et::bench::Table table({"config", "latency_us", "weight_MB", "speedup"},
                           csv, json);
    const auto mb = [](double bytes) { return bytes / 1024.0 / 1024.0; };

    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    (void)et::kernels::gemm_nt(ctx, x, w, et::numeric::Precision::kMixed);
    const double fp16 = dev.total_time_us();
    table.add_row({"fp16 dense", et::bench::fmt(fp16, 1),
                   et::bench::fmt(mb(w.size() * 2.0), 1), "1.00x"});

    dev.reset();
    const auto qw = et::quant::quantize_weight(w);
    (void)et::quant::int8_linear(ctx, x, qw);
    const double int8 = dev.total_time_us();
    table.add_row({"int8 dense", et::bench::fmt(int8, 1),
                   et::bench::fmt(mb(w.size() * 1.0), 1),
                   et::bench::fmt_ratio(fp16 / int8)});

    for (const double ratio : {0.5, 0.8}) {
      const auto mask = et::pruning::tile_mask(w, ratio);
      const auto tp = et::sparse::TilePrunedWeight::from_masked(w, mask);
      dev.reset();
      (void)et::kernels::bcsr_gemm_nt(ctx, x, tp,
                                      et::numeric::Precision::kMixed);
      const double tile = dev.total_time_us();
      table.add_row({"fp16 tile-pruned " + et::bench::fmt(ratio, 1),
                     et::bench::fmt(tile, 1),
                     et::bench::fmt(mb(tp.nnz_tiles() * 256 * 2.0), 1),
                     et::bench::fmt_ratio(fp16 / tile)});

      // Composition: quantize the condensed tiles (latency modeled as the
      // BCSR kernel with halved weight bytes and doubled tensor rate).
      dev.reset();
      {
        auto launch = dev.launch(
            {.name = "int8_bcsr_gemm",
             .ctas = (128 / 64) * (tp.tile_rows() / 2),
             .shared_bytes_per_cta = 8 * 1024,
             .pattern = et::gpusim::AccessPattern::kTiled});
        launch.load_bytes(tp.nnz_tiles() * 256 * 1 + 128ull * 768 * 1);
        launch.store_bytes(128ull * 3072 * 2);
        launch.tensor_ops(2ull * 128 * 256 * tp.nnz_tiles() / 2);
      }
      const double both = dev.total_time_us();
      table.add_row({"int8 tile-pruned " + et::bench::fmt(ratio, 1),
                     et::bench::fmt(both, 1),
                     et::bench::fmt(mb(tp.nnz_tiles() * 256 * 1.0), 1),
                     et::bench::fmt_ratio(fp16 / both)});
    }
    table.print();
    if (!csv && !json) {
      std::printf(
          "\nQuantization-only accuracy cost (per-row symmetric int8): "
          "max %.3f quantization steps of error.\n\n",
          et::quant::max_quantization_error_steps(w, qw));
    }
  }

  // ---- Section 2: served int8-vs-fp (always runs; the --smoke payload).
  et::nn::ModelConfig model;
  model.num_layers = 2;
  model.d_model = 128;
  model.num_heads = 4;
  model.d_ff = 256;
  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 5 + l));
  }
  const auto opt =
      et::nn::options_for(et::nn::Pipeline::kET, model, 16, /*causal=*/true);

  const auto fp = run_served(layers, opt, std::nullopt,
                             et::core::KvPrecision::kFp32);
  const auto i8 = run_served(layers, opt, et::nn::WeightFormat::kInt8,
                             et::core::KvPrecision::kInt8);
  const auto i8_re = run_served(layers, opt, et::nn::WeightFormat::kInt8,
                                et::core::KvPrecision::kInt8);
  if (i8.metrics_json != i8_re.metrics_json ||
      i8.transcripts != i8_re.transcripts) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: the int8 serve diverged across "
                 "identical re-runs\n");
    return 1;
  }
  if (!(i8.kv_bytes_used_peak < fp.kv_bytes_used_peak)) {
    std::fprintf(stderr,
                 "INT8 SERVE VIOLATION: peak KV residency %.0f under int8 "
                 "KV is not strictly below the fp32 baseline %.0f\n",
                 i8.kv_bytes_used_peak, fp.kv_bytes_used_peak);
    return 1;
  }
  if (!(i8.time_us < fp.time_us)) {
    std::fprintf(stderr,
                 "INT8 SERVE VIOLATION: modeled serve time %.1f us under "
                 "int8 is not strictly below the fp baseline %.1f us\n",
                 i8.time_us, fp.time_us);
    return 1;
  }

  et::bench::Table served({"weights", "kv_precision", "time_us", "kv_bytes",
                           "kv_bytes_used_peak", "kv_peak_vs_fp"},
                          csv, json);
  served.add_row({"dense", "fp32", et::bench::fmt(fp.time_us, 1),
                  et::bench::fmt(fp.kv_bytes, 0),
                  et::bench::fmt(fp.kv_bytes_used_peak, 0), "1.00x"});
  served.add_row({"int8", "int8", et::bench::fmt(i8.time_us, 1),
                  et::bench::fmt(i8.kv_bytes, 0),
                  et::bench::fmt(i8.kv_bytes_used_peak, 0),
                  et::bench::fmt_ratio(i8.kv_bytes_used_peak /
                                       fp.kv_bytes_used_peak)});
  served.print();
  if (!csv && !json) {
    std::printf(
        "\nServed int8-vs-fp: INT8 weights halve every projection/FF\n"
        "operand and INT8 paged KV stores one byte per element plus two\n"
        "fp32 scales per row, so the peak KV residency (gated strictly\n"
        "lower, measured ~27%% of fp32) holds about twice the resident\n"
        "batch in the same physical bytes. INT8 KV rounds the cached\n"
        "rows, so transcripts are compared across re-runs (bit-identical,\n"
        "gated), not across precisions — docs/quantization.md.\n");
  }
  return 0;
}
