// Shared training/pruning harness for the accuracy-side benches (Fig. 14,
// Table 1) and the examples: pre-train -> reweighted regularization ->
// percentile pruning -> masked retraining, following Fig. 6 and §5.1's
// schedules (epoch counts scaled down by default; ET_EPOCH_SCALE raises
// them toward the paper's).
#pragma once

#include <cmath>
#include <optional>

#include "data/metrics.hpp"
#include "data/synthetic_glue.hpp"
#include "data/synthetic_text.hpp"
#include "pruning/reweighted.hpp"
#include "pruning/strategy.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/param.hpp"

namespace et::bench {

// ----------------------------------------------------------- LM side ----

inline void train_lm_epochs(train::TransformerLM& lm,
                            const data::SyntheticCorpus& corpus, int epochs,
                            float lr,
                            pruning::GroupLassoRegularizer* reg = nullptr,
                            int milestone_every = 2) {
  train::AdamW opt({.lr = lr});
  long t = 0;
  for (int e = 0; e < epochs; ++e) {
    if (reg != nullptr && e % milestone_every == 0) {
      reg->update_penalties();  // Fig. 6 step (ii): milestone epochs
    }
    for (const auto& ex : corpus.train()) {
      lm.zero_grad();
      tensor::MatrixF dlogits;
      const tensor::MatrixF logits = lm.forward(ex.tokens);
      (void)train::cross_entropy_lm(logits, ex.targets, dlogits);
      lm.backward(dlogits);
      if (reg != nullptr) reg->add_gradients();
      opt.step(lm.params());
      lm.aux_step(lr, 0.9f, 0.999f, 1e-8f, ++t);
    }
  }
}

/// Validation perplexity (the customary WikiText-2 metric).
inline double lm_perplexity(train::TransformerLM& lm,
                            const data::SyntheticCorpus& corpus) {
  double total_nll = 0.0;
  std::size_t tokens = 0;
  for (const auto& ex : corpus.valid()) {
    tensor::MatrixF dlogits;
    const tensor::MatrixF logits = lm.forward(ex.tokens);
    // cross_entropy_lm returns the mean NLL over the sequence.
    total_nll += static_cast<double>(
                     train::cross_entropy_lm(logits, ex.targets, dlogits)) *
                 static_cast<double>(ex.tokens.size());
    tokens += ex.tokens.size();
  }
  return data::perplexity(total_nll, tokens);
}

inline double lm_accuracy(train::TransformerLM& lm,
                          const data::SyntheticCorpus& corpus) {
  std::size_t correct = 0, total = 0;
  for (const auto& ex : corpus.valid()) {
    const tensor::MatrixF logits = lm.forward(ex.tokens);
    for (std::size_t i = 0; i < ex.tokens.size(); ++i) {
      correct += (train::argmax_row(logits, i) == ex.targets[i]);
      ++total;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

/// Full Fig. 6 pipeline on a language model. Returns the attached masks
/// (whose storage the caller must keep alive while training continues).
inline pruning::ModelMasks prune_lm(
    train::TransformerLM& lm, const data::SyntheticCorpus& corpus,
    pruning::Strategy strategy, double ratio, int reweight_epochs,
    int retrain_epochs, float lr,
    const pruning::StrategyOptions& opt = {}) {
  // (ii)-(iv): reweighted group-lasso training (tile-based strategies only;
  // magnitude/column criteria prune the trained weights directly).
  if ((strategy == pruning::Strategy::kTile ||
       strategy == pruning::Strategy::kAttentionAware) &&
      reweight_epochs > 0) {
    std::vector<train::Param*> weights;
    for (auto& layer : lm.trunk.layers()) layer.collect(weights);
    pruning::ReweightedConfig rw;
    rw.lambda = 1e-4f;  // the paper's λ for BERT-style models
    pruning::GroupLassoRegularizer reg(weights, rw);
    train_lm_epochs(lm, corpus, reweight_epochs, lr, &reg);
  }
  // (v): percentile pruning.
  auto masks = pruning::compute_model_masks(lm.trunk, strategy, ratio, opt);
  pruning::attach_masks(lm.trunk, masks);
  // (vi): masked retraining.
  train_lm_epochs(lm, corpus, retrain_epochs, lr);
  return masks;
}

// --------------------------------------------------- classifier side ----

inline void train_cls_epochs(train::TransformerClassifier& cls,
                             const data::GlueDataset& ds, int epochs,
                             float lr,
                             pruning::GroupLassoRegularizer* reg = nullptr) {
  train::AdamW opt({.lr = lr});
  long t = 0;
  const bool regression = ds.spec().num_classes == 1;
  for (int e = 0; e < epochs; ++e) {
    if (reg != nullptr && e % 2 == 0) reg->update_penalties();
    for (const auto& ex : ds.train()) {
      cls.zero_grad();
      tensor::MatrixF dlogits;
      const tensor::MatrixF logits = cls.forward(ex.tokens);
      if (regression) {
        (void)train::mse(logits, ex.target, dlogits);
      } else {
        (void)train::cross_entropy_cls(logits, ex.label, dlogits);
      }
      cls.backward(dlogits);
      if (reg != nullptr) reg->add_gradients();
      opt.step(cls.params());
      cls.aux_step(lr, 0.9f, 0.999f, 1e-8f, ++t);
    }
  }
}

/// Evaluate with the task's own metric (accuracy / F1 / Spearman), scaled
/// ×100 like the paper's Table 1 numbers.
inline double eval_glue(train::TransformerClassifier& cls,
                        const data::GlueDataset& ds) {
  const auto& spec = ds.spec();
  if (spec.metric == data::GlueMetric::kSpearman) {
    std::vector<float> pred, truth;
    for (const auto& ex : ds.test()) {
      pred.push_back(cls.forward(ex.tokens)(0, 0));
      truth.push_back(ex.target);
    }
    return 100.0 * data::spearman(pred, truth);
  }
  std::vector<std::int32_t> pred, truth;
  for (const auto& ex : ds.test()) {
    pred.push_back(train::argmax_row(cls.forward(ex.tokens)));
    truth.push_back(ex.label);
  }
  if (spec.metric == data::GlueMetric::kF1) {
    return 100.0 * data::f1_score(pred, truth);
  }
  return 100.0 * data::accuracy(pred, truth);
}

inline pruning::ModelMasks prune_classifier(
    train::TransformerClassifier& cls, const data::GlueDataset& ds,
    pruning::Strategy strategy, double ratio, int reweight_epochs,
    int retrain_epochs, float lr,
    const pruning::StrategyOptions& opt = {}) {
  if ((strategy == pruning::Strategy::kTile ||
       strategy == pruning::Strategy::kAttentionAware) &&
      reweight_epochs > 0) {
    std::vector<train::Param*> weights;
    for (auto& layer : cls.trunk.layers()) layer.collect(weights);
    pruning::ReweightedConfig rw;
    rw.lambda = 1e-4f;
    pruning::GroupLassoRegularizer reg(weights, rw);
    train_cls_epochs(cls, ds, reweight_epochs, lr, &reg);
  }
  auto masks = pruning::compute_model_masks(cls.trunk, strategy, ratio, opt);
  pruning::attach_masks(cls.trunk, masks);
  train_cls_epochs(cls, ds, retrain_epochs, lr);
  return masks;
}

}  // namespace et::bench
