// Google-benchmark microbenchmarks of the host-side kernel math itself
// (wall-clock, not modeled latency): useful when optimizing the simulator
// and as a regression guard on the numerical kernels' CPU cost.
#include <benchmark/benchmark.h>

#include "core/attention.hpp"
#include "gpusim/device.hpp"
#include "kernels/elementwise.hpp"
#include "kernels/gemm.hpp"
#include "kernels/sparse_gemm.hpp"
#include "pruning/criteria.hpp"
#include "tensor/random.hpp"

namespace {

using et::tensor::MatrixF;

void BM_GemmNtFp32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF a(n, n), b(n, n);
  et::tensor::fill_normal(a, 1);
  et::tensor::fill_normal(b, 2);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(et::kernels::gemm_nt(ctx, a, b));
    dev.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_GemmNtFp32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNtPureFp16(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatrixF a(n, n), b(n, n);
  et::tensor::fill_normal(a, 1);
  et::tensor::fill_normal(b, 2);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        et::kernels::gemm_nt(ctx, a, b, et::numeric::Precision::kPureFp16));
    dev.reset();
  }
}
BENCHMARK(BM_GemmNtPureFp16)->Arg(64)->Arg(128);

void BM_BcsrGemm(benchmark::State& state) {
  const auto ratio = static_cast<double>(state.range(0)) / 100.0;
  MatrixF x(128, 256), w(256, 256);
  et::tensor::fill_normal(x, 3);
  et::tensor::fill_normal(w, 4);
  const auto tp = et::sparse::TilePrunedWeight::from_masked(
      w, et::pruning::tile_mask(w, ratio));
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(et::kernels::bcsr_gemm_nt(ctx, x, tp));
    dev.reset();
  }
}
BENCHMARK(BM_BcsrGemm)->Arg(0)->Arg(50)->Arg(90);

void BM_Softmax(benchmark::State& state) {
  MatrixF m(256, 256);
  et::tensor::fill_normal(m, 5);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  for (auto _ : state) {
    MatrixF copy = m;
    et::kernels::softmax_rows(dev, copy);
    benchmark::DoNotOptimize(copy);
    dev.reset();
  }
}
BENCHMARK(BM_Softmax);

void BM_OtfAttentionMath(benchmark::State& state) {
  et::core::AttentionConfig cfg;
  cfg.seq_len = static_cast<std::size_t>(state.range(0));
  cfg.d_model = 256;
  cfg.num_heads = 4;
  const auto w = et::core::make_dense_weights(cfg, 6);
  MatrixF x(cfg.seq_len, cfg.d_model);
  et::tensor::fill_normal(x, 7);
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(et::core::otf_attention(ctx, x, w, cfg));
    dev.reset();
  }
}
BENCHMARK(BM_OtfAttentionMath)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
