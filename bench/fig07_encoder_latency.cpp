// Figure 7: latency of one BERT_BASE encoder layer (seq = 128) vs pruning
// ratio, for PyTorch-like, TensorRT-like, FasterTransformer-like and E.T.
//
// The baselines cannot exploit pruning, so their rows are flat; E.T. runs
// the best dense cuBLAS-style routine below 40% sparsity and switches to
// attention-aware pruned execution above (§5.2.1). Expected shape: E.T.
// fastest everywhere, with max speedups ~13.7× (PyTorch), ~3.4× (TensorRT)
// and ~2.5× (FasterTransformer) at the highest ratio.
#include <chrono>

#include "bench_common.hpp"
#include "core/exec_context.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "tensor/random.hpp"
#include "train/model.hpp"

namespace {

using et::nn::Pipeline;

double encoder_us(Pipeline p, const et::nn::EncoderWeights& w,
                  const et::nn::ModelConfig& model, std::size_t seq) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(seq, model.d_model);
  (void)et::nn::encoder_forward(ctx, x, w,
                                et::nn::options_for(p, model, seq));
  return dev.total_time_us();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const auto model = et::nn::bert_base();
  const std::size_t seq = 128;

  // A single random-initialized layer at BERT_BASE dimensions provides the
  // weight matrices every strategy prunes.
  et::train::TrainModelConfig tcfg;
  tcfg.vocab_size = 64;
  tcfg.d_model = model.d_model;
  tcfg.num_heads = model.num_heads;
  tcfg.d_ff = model.d_ff;
  tcfg.num_layers = 1;
  et::train::TransformerModel trainable(tcfg, 2024);

  const auto dense = et::nn::make_dense_encoder_weights(model, 7);
  const double pytorch = encoder_us(Pipeline::kModular, dense, model, seq);
  const double trt = encoder_us(Pipeline::kTensorRT, dense, model, seq);
  const double ft =
      encoder_us(Pipeline::kFasterTransformer, dense, model, seq);

  et::bench::Table table({"sparsity", "PyTorch_us", "TensorRT_us",
                          "FasterTransformer_us", "ET_us", "vs_PyTorch",
                          "vs_TensorRT", "vs_FT"},
                         csv);

  double max_vs_pt = 0, max_vs_trt = 0, max_vs_ft = 0;
  for (const double ratio :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    double et_us = 0;
    if (ratio < 0.4) {
      // Below 40% sparsity E.T. stays on the dense autotuned GEMMs.
      et_us = encoder_us(Pipeline::kET, dense, model, seq);
    } else {
      const auto masks = et::pruning::compute_layer_masks(
          trainable.layers()[0], et::pruning::Strategy::kAttentionAware,
          ratio);
      const auto pruned = et::pruning::deploy_layer(
          trainable.layers()[0], masks,
          et::pruning::Strategy::kAttentionAware);
      et_us = encoder_us(Pipeline::kET, pruned, model, seq);
    }
    max_vs_pt = std::max(max_vs_pt, pytorch / et_us);
    max_vs_trt = std::max(max_vs_trt, trt / et_us);
    max_vs_ft = std::max(max_vs_ft, ft / et_us);
    table.add_row({et::bench::fmt(ratio, 2), et::bench::fmt(pytorch, 1),
                   et::bench::fmt(trt, 1), et::bench::fmt(ft, 1),
                   et::bench::fmt(et_us, 1),
                   et::bench::fmt_ratio(pytorch / et_us),
                   et::bench::fmt_ratio(trt / et_us),
                   et::bench::fmt_ratio(ft / et_us)});
  }

  std::printf("Figure 7 — one BERT_BASE encoder layer, seq=128 "
              "(paper: TensorRT ~160 us dense; max speedups 13.7x / 3.4x / "
              "2.5x)\n\n");
  table.print();
  std::printf("\nmax speedup: %.1fx vs PyTorch, %.1fx vs TensorRT, %.1fx vs "
              "FasterTransformer\n",
              max_vs_pt, max_vs_trt, max_vs_ft);

  // Host-side wall-clock scaling: the same E.T. forward with REAL math
  // through ExecContext pools of 1/2/4/8 threads. The kernel row loops
  // partition across the pool with fixed chunks (docs/threading.md), so
  // outputs and the modeled time_us are bit-identical at every thread
  // count (verified below — the bench exits nonzero on divergence) while
  // wall time drops with available cores.
  et::nn::ModelConfig half;
  half.num_layers = 1;
  half.d_model = 256;
  half.num_heads = 4;
  half.d_ff = 1024;
  const std::size_t half_seq = 48;
  const auto half_w = et::nn::make_dense_encoder_weights(half, 9);
  et::tensor::MatrixF hx(half_seq, half.d_model);
  et::tensor::fill_normal(hx, 10);
  const auto half_opt = et::nn::options_for(Pipeline::kET, half, half_seq);

  et::bench::Table scaling({"threads", "wall_ms", "time_us", "speedup"},
                           csv);
  et::tensor::MatrixF ref_out;
  double ref_time_us = 0.0, base_wall = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev, threads);
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = et::nn::encoder_forward(ctx, hx, half_w, half_opt);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (threads == 1) {
      ref_out = out;
      ref_time_us = dev.total_time_us();
      base_wall = wall_ms;
    } else {
      bool same = dev.total_time_us() == ref_time_us &&
                  out.rows() == ref_out.rows() && out.cols() == ref_out.cols();
      for (std::size_t r = 0; same && r < out.rows(); ++r) {
        for (std::size_t c = 0; same && c < out.cols(); ++c) {
          same = out(r, c) == ref_out(r, c);
        }
      }
      if (!same) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: threads=%zu diverged from the "
                     "serial forward\n",
                     threads);
        return 1;
      }
    }
    scaling.add_row({std::to_string(threads), et::bench::fmt(wall_ms, 2),
                     et::bench::fmt(dev.total_time_us(), 1),
                     et::bench::fmt(base_wall / wall_ms, 2)});
  }
  std::printf("\nwall-clock scaling — d=%zu E.T. layer, seq=%zu, real math, "
              "bit-identical at every thread count:\n\n",
              half.d_model, half_seq);
  scaling.print();
  return 0;
}
