// Figure 12: achieved global-memory throughput of each step of the
// TensorRT-like attention pipeline at BERT_BASE / seq=128, vs the fused
// on-the-fly operator.
//
// Expected shape (paper): the per-operator kernels average ~98 GB/s —
// only 8.6% of the V100S peak of 1,134 GB/s — because each moves too few
// bytes to fill the memory pipeline; the single OTF kernel reaches
// ~311 GB/s (27.5%). All of these operators are memory-bound (their
// arithmetic intensity is far below the 138 FLOP/B balance point).
#include "bench_common.hpp"
#include "core/attention.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  et::core::AttentionConfig cfg;
  cfg.seq_len = 128;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.causal_mask = false;
  cfg.precision = et::numeric::Precision::kMixed;
  cfg.scale_before_multiply = false;
  const auto w = et::core::make_dense_weights(cfg, 4);
  et::tensor::MatrixF x(cfg.seq_len, cfg.d_model);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  (void)et::core::fused_attention(ctx, x, w, cfg);
  const auto rep = et::gpusim::profile(dev);

  const double peak = dev.spec().hbm_bw_gbps;
  std::printf("Figure 12 — achieved memory throughput per TensorRT step, "
              "BERT_BASE seq=128 (peak %.0f GB/s; paper avg ~98 GB/s = "
              "8.6%% of peak)\n\n",
              peak);
  et::bench::Table table({"step_kernel", "GB/s", "pct_of_peak", "AI",
                          "memory_bound"},
                         csv);
  for (const auto& k : rep.kernels) {
    table.add_row({k.name, et::bench::fmt(k.achieved_gbps, 1),
                   et::bench::fmt(100.0 * k.achieved_gbps / peak, 1) + "%",
                   et::bench::fmt(k.arithmetic_intensity, 1),
                   k.memory_bound ? "yes" : "no"});
  }
  table.add_row({"AVG (bytes-weighted)",
                 et::bench::fmt(rep.avg_achieved_gbps, 1),
                 et::bench::fmt(100.0 * rep.avg_achieved_gbps / peak, 1) +
                     "%",
                 "", ""});
  table.print();

  // The fused OTF kernel for comparison.
  et::gpusim::Device otf_dev;
  et::core::ExecContext otf_dev_ctx(otf_dev);
  otf_dev.set_traffic_only(true);
  auto et_cfg = cfg;
  et_cfg.precision = et::numeric::Precision::kPureFp16;
  et_cfg.scale_before_multiply = true;
  (void)et::core::otf_attention(otf_dev_ctx, x, w, et_cfg);
  for (const auto& k : otf_dev.history()) {
    if (k.name != "otf_attention") continue;
    std::printf("\nE.T. on-the-fly kernel: %.1f GB/s (%.1f%% of peak; paper "
                "~311 GB/s = 27.5%%)\n",
                k.achieved_gbps(), 100.0 * k.achieved_gbps() / peak);
  }
  return 0;
}
