// Figure 1: per-component time of one encoder layer — the TensorRT-like
// baseline vs E.T. with attention-aware pruning at 80% — on the
// WikiText-2 Transformer configuration (d=800, H=4) at seq = 128.
//
// Expected shape (paper): E.T. cuts the whole encoder ~2.5× and the
// self-attention block ~2.9×.
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "train/model.hpp"

namespace {

struct Breakdown {
  double attention = 0.0;  // projections + attention kernels + output
  double mlp = 0.0;        // ff1/ff2 + activation
  double norm = 0.0;       // residual + layernorm
  [[nodiscard]] double total() const { return attention + mlp + norm; }
};

Breakdown run(et::nn::Pipeline p, const et::nn::EncoderWeights& w,
              const et::nn::ModelConfig& model) {
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(128, model.d_model);
  (void)et::nn::encoder_forward(ctx, x, w,
                                et::nn::options_for(p, model, 128));
  Breakdown b;
  for (const auto& k : dev.history()) {
    if (k.name.find("ff") != std::string::npos ||
        k.name.find("gelu") != std::string::npos) {
      b.mlp += k.time_us;
    } else if (k.name.find("residual") != std::string::npos ||
               k.name.find("layernorm") != std::string::npos) {
      b.norm += k.time_us;
    } else {
      b.attention += k.time_us;
    }
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  et::nn::ModelConfig model = et::nn::transformer_wikitext();

  // Baseline: dense TensorRT-like encoder.
  const auto dense = et::nn::make_dense_encoder_weights(model, 1);
  const Breakdown trt = run(et::nn::Pipeline::kTensorRT, dense, model);

  // E.T.: attention-aware pruning at 80%.
  et::train::TrainModelConfig tcfg;
  tcfg.vocab_size = 64;
  tcfg.d_model = model.d_model;
  tcfg.num_heads = model.num_heads;
  tcfg.d_ff = model.d_ff;
  tcfg.num_layers = 1;
  et::train::TransformerModel trainable(tcfg, 99);
  const auto masks = et::pruning::compute_layer_masks(
      trainable.layers()[0], et::pruning::Strategy::kAttentionAware, 0.8);
  const auto pruned = et::pruning::deploy_layer(
      trainable.layers()[0], masks, et::pruning::Strategy::kAttentionAware);
  const Breakdown ours = run(et::nn::Pipeline::kET, pruned, model);

  std::printf("Figure 1 — encoder component breakdown, Transformer "
              "(d=800, H=4), seq=128, E.T. pruned 80%% "
              "(paper: encoder 2.5x, attention 2.9x)\n\n");
  et::bench::Table table(
      {"component", "TensorRT_us", "ET_us", "speedup"}, csv);
  table.add_row({"self-attention", et::bench::fmt(trt.attention, 1),
                 et::bench::fmt(ours.attention, 1),
                 et::bench::fmt_ratio(trt.attention / ours.attention)});
  table.add_row({"MLP", et::bench::fmt(trt.mlp, 1),
                 et::bench::fmt(ours.mlp, 1),
                 et::bench::fmt_ratio(trt.mlp / ours.mlp)});
  table.add_row({"residual+layernorm", et::bench::fmt(trt.norm, 1),
                 et::bench::fmt(ours.norm, 1),
                 et::bench::fmt_ratio(trt.norm / ours.norm)});
  table.add_row({"TOTAL", et::bench::fmt(trt.total(), 1),
                 et::bench::fmt(ours.total(), 1),
                 et::bench::fmt_ratio(trt.total() / ours.total())});
  table.print();
  return 0;
}
