// Figure 9: encoder speedup of the pre-computed linear transformation
// (Fig. 3(b), Eq. 5) over the plain attention-aware layout (Fig. 3(a)),
// sweeping the head count for d_model ∈ {768, 1024, 2048} at seq = 128.
//
// Following §5.2.3, the non-precomputed configuration prunes at 50% while
// the pre-computed one reaches 80% on W_O (pre-computation "lowers the
// required pruning ratio"). Expected shape: speedup ≥ 1 nearly everywhere
// and growing with d_model (paper: 1.1× / 1.3× / 1.6× on average).
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/criteria.hpp"
#include "tensor/random.hpp"

namespace {

using et::core::AttentionWeights;
using et::sparse::PruneMethod;
using et::tensor::MatrixF;

MatrixF random_square(std::size_t d, std::uint64_t seed) {
  MatrixF w(d, d);
  et::tensor::fill_normal(w, seed, 0.0f, 0.02f);
  return w;
}

/// Attention weights in the Fig. 3(a) layout at `ratio`: W_Q/W_K tile
/// pruned, W_V column pruned (§4.3's preference without pre-computation),
/// W_O tile pruned.
AttentionWeights plain_weights(std::size_t d, std::size_t heads,
                               double ratio) {
  AttentionWeights w;
  const MatrixF wq = random_square(d, 1), wk = random_square(d, 2),
                wv = random_square(d, 3), wo = random_square(d, 4);
  w.wq = et::sparse::make_weight(PruneMethod::kTile, wq,
                                 et::pruning::tile_mask(wq, ratio));
  w.wk = et::sparse::make_weight(PruneMethod::kTile, wk,
                                 et::pruning::tile_mask(wk, ratio));
  w.wv = et::sparse::make_weight(PruneMethod::kColumn, wv,
                                 et::pruning::column_mask(wv, ratio));
  w.wo = et::sparse::make_weight(PruneMethod::kTile, wo,
                                 et::pruning::tile_mask(wo, ratio));
  (void)heads;
  return w;
}

/// Fig. 3(b) layout: W_Q/W_K tile-pruned, W_V dense, W_O row-pruned at
/// `wo_ratio` and folded into the pre-computed W_VO. The fold happens
/// before inference, so for this latency sweep only the *shape* of W_VO
/// matters (the bench runs traffic-only).
AttentionWeights precomputed_weights(std::size_t d, std::size_t heads,
                                     double qk_ratio, double wo_ratio) {
  AttentionWeights w;
  const MatrixF wq = random_square(d, 5), wk = random_square(d, 6);
  w.wq = et::sparse::make_weight(PruneMethod::kTile, wq,
                                 et::pruning::tile_mask(wq, qk_ratio));
  w.wk = et::sparse::make_weight(PruneMethod::kTile, wk,
                                 et::pruning::tile_mask(wk, qk_ratio));
  w.wv = et::sparse::DenseWeight(random_square(d, 7));
  const MatrixF wo = random_square(d, 8);
  const auto wo_mask = et::pruning::row_mask(wo, wo_ratio);
  auto wo_row = et::sparse::RowPrunedWeight::from_masked(wo, wo_mask);

  w.vo.num_heads = heads;
  w.vo.kept_cols = wo_row.kept_rows();
  w.vo.weight = MatrixF(heads * w.vo.kept_cols.size(), d);
  w.wo = std::move(wo_row);
  return w;
}

double encoder_us(const AttentionWeights& attn, std::size_t d,
                  std::size_t heads, std::size_t d_ff) {
  et::nn::EncoderWeights w;
  w.attn = attn;
  const MatrixF ff1 = [&] {
    MatrixF m(d_ff, d);
    et::tensor::fill_normal(m, 9, 0.0f, 0.02f);
    return m;
  }();
  const MatrixF ff2 = [&] {
    MatrixF m(d, d_ff);
    et::tensor::fill_normal(m, 10, 0.0f, 0.02f);
    return m;
  }();
  w.w_ff1 = et::sparse::make_weight(PruneMethod::kTile, ff1,
                                    et::pruning::tile_mask(ff1, 0.5));
  w.w_ff2 = et::sparse::make_weight(PruneMethod::kTile, ff2,
                                    et::pruning::tile_mask(ff2, 0.5));
  w.b_ff1.assign(d_ff, 0.0f);
  w.b_ff2.assign(d, 0.0f);
  w.ln1_gamma.assign(d, 1.0f);
  w.ln1_beta.assign(d, 0.0f);
  w.ln2_gamma.assign(d, 1.0f);
  w.ln2_beta.assign(d, 0.0f);

  et::nn::ModelConfig model;
  model.d_model = d;
  model.num_heads = heads;
  model.d_ff = d_ff;
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  MatrixF x(128, d);
  (void)et::nn::encoder_forward(
      ctx, x, w, et::nn::options_for(et::nn::Pipeline::kET, model, 128));
  return dev.total_time_us();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  std::printf("Figure 9 — speedup of pre-computed linear transformation, "
              "seq=128 (paper: avg 1.1x/1.3x/1.6x for d=768/1024/2048)\n\n");

  et::bench::Table table(
      {"d_model", "heads", "without_us", "with_us", "speedup"}, csv);
  for (const std::size_t d : {768u, 1024u, 2048u}) {
    double sum = 0.0;
    int count = 0;
    for (const std::size_t heads : {2u, 4u, 8u, 16u}) {
      if (d % heads != 0) continue;
      const std::size_t d_ff = 4 * d;
      const double without =
          encoder_us(plain_weights(d, heads, 0.5), d, heads, d_ff);
      const double with_pre =
          encoder_us(precomputed_weights(d, heads, 0.5, 0.8), d, heads, d_ff);
      sum += without / with_pre;
      ++count;
      table.add_row({std::to_string(d), std::to_string(heads),
                     et::bench::fmt(without, 1), et::bench::fmt(with_pre, 1),
                     et::bench::fmt_ratio(without / with_pre)});
    }
    table.add_row({std::to_string(d), "avg", "", "",
                   et::bench::fmt_ratio(sum / count)});
  }
  table.print();
  return 0;
}
