// Ablation (§6): reweighted group lasso vs a fixed penalty vs no
// regularization at all, ahead of tensor-tile pruning. The paper claims
// the reweighting "achieve[s] a high compression rate under the same
// accuracy requirement than using a fixed penalty parameter": at high
// ratios the reweighted variant should retain the most accuracy (and the
// lowest perplexity), because it concentrates the shrinkage on tiles
// that were going to be pruned anyway.
#include "bench_common.hpp"
#include "pruning/reweighted.hpp"
#include "train_harness.hpp"

namespace {

struct Variant {
  const char* name;
  int reg_epochs;
  bool reweighted;
};

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const double scale = et::bench::epoch_scale();
  const float lr = 1e-3f;

  et::train::TrainModelConfig mcfg;
  mcfg.vocab_size = 96;
  mcfg.d_model = 128;
  mcfg.num_heads = 4;
  mcfg.d_ff = 256;
  mcfg.num_layers = 2;
  et::data::TextCorpusConfig ccfg;
  ccfg.vocab_size = 96;
  ccfg.num_train_sequences = 48;
  ccfg.num_valid_sequences = 16;
  ccfg.seq_len = 24;
  const et::data::SyntheticCorpus corpus(ccfg);

  et::train::TransformerLM pretrained(mcfg, 55);
  et::bench::train_lm_epochs(pretrained, corpus,
                             static_cast<int>(12 * scale), lr);
  std::printf("Ablation — reweighted vs fixed-penalty group lasso before "
              "tile pruning (paper §6 claim)\n");
  std::printf("pre-trained: accuracy %.3f, perplexity %.2f\n\n",
              et::bench::lm_accuracy(pretrained, corpus),
              et::bench::lm_perplexity(pretrained, corpus));

  const Variant variants[] = {
      {"no regularization", 0, false},
      {"fixed-penalty group lasso", static_cast<int>(6 * scale), false},
      {"reweighted group lasso", static_cast<int>(6 * scale), true},
  };

  et::bench::Table table({"ratio", "variant", "norm_removed",
                          "acc_at_prune", "acc_retrained", "perplexity"},
                         csv);
  for (const double ratio : {0.8, 0.9}) {
    for (const auto& v : variants) {
      et::train::TransformerLM lm = pretrained;
      if (v.reg_epochs > 0) {
        std::vector<et::train::Param*> weights;
        for (auto& layer : lm.trunk.layers()) layer.collect(weights);
        et::pruning::ReweightedConfig rw;
        rw.lambda = 1e-3f;
        rw.reweighted = v.reweighted;
        et::pruning::GroupLassoRegularizer reg(weights, rw);
        // Fig. 6 step (iv): ramp λ each milestone, and stop increasing it
        // (back off) when the training accuracy drops more than slightly.
        const double ref_acc = et::bench::lm_accuracy(lm, corpus);
        for (int e = 0; e < v.reg_epochs; ++e) {
          reg.update_penalties();
          et::bench::train_lm_epochs(lm, corpus, 1, lr, &reg, 1);
          const double acc = et::bench::lm_accuracy(lm, corpus);
          if (acc >= ref_acc - 0.03) {
            reg.set_lambda(reg.lambda() * 1.6f);
          } else {
            reg.set_lambda(reg.lambda() * 0.5f);
          }
        }
      }
      // The mechanism metric: how much of the model's weight norm does
      // the mask remove? Reweighted training drives the to-be-pruned
      // tiles toward zero, so pruning cuts *less* of what the model
      // actually uses.
      auto masks = et::pruning::compute_model_masks(
          lm.trunk, et::pruning::Strategy::kTile, ratio);
      double removed = 0.0, total = 0.0;
      {
        std::vector<et::train::Param*> weights;
        for (auto& layer : lm.trunk.layers()) layer.collect(weights);
        std::size_t wi = 0;
        for (auto& l : masks.layers) {
          for (const et::sparse::Mask* m :
               {&l.wq, &l.wk, &l.wv, &l.wo, &l.ff1, &l.ff2}) {
            const auto& w = weights[wi++]->w;
            for (std::size_t i = 0; i < w.size(); ++i) {
              const double sq = static_cast<double>(w.flat()[i]) *
                                static_cast<double>(w.flat()[i]);
              total += sq;
              if (m->flat()[i] == 0) removed += sq;
            }
          }
        }
      }
      et::pruning::attach_masks(lm.trunk, masks);
      const double acc_at_prune = et::bench::lm_accuracy(lm, corpus);
      et::bench::train_lm_epochs(lm, corpus, static_cast<int>(4 * scale),
                                 lr);
      table.add_row(
          {et::bench::fmt(ratio, 2), v.name,
           et::bench::fmt(100.0 * removed / total, 1) + "%",
           et::bench::fmt(acc_at_prune, 3),
           et::bench::fmt(et::bench::lm_accuracy(lm, corpus), 3),
           et::bench::fmt(et::bench::lm_perplexity(lm, corpus), 2)});
    }
  }
  table.print();
  std::printf("\nObserved: group-lasso regularization before pruning is "
              "what matters at high ratios (90%%: 0.69 -> ~0.73 retrained "
              "accuracy, lower perplexity); at this toy schedule the "
              "fixed-penalty and reweighted variants are within noise of "
              "each other. The reweighting-specific mechanism — weak "
              "tiles shrinking orders of magnitude faster than strong "
              "ones — is verified directly in tests/test_pruning.cpp and "
              "tests/test_train_extras.cpp; converting it into the §6 "
              "end-to-end compression advantage takes the paper's "
              "50-epoch schedules (raise ET_EPOCH_SCALE to approach "
              "them).\n");
  return 0;
}
