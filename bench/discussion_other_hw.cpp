// §7 "E.T. on other hardware platforms": replay the headline experiments
// on a simulated A100 (more SMs, 164 KB shared memory, 1.55 TB/s HBM,
// 312 TFLOP/s tensor) and on a hypothetical small-scratchpad accelerator.
// The claims that should transfer: E.T. still beats the fused baseline,
// the full/partial OTF crossover moves with the bandwidth/capacity
// balance, and hardware-friendly pruning keeps paying off.
#include "bench_common.hpp"
#include "core/adaptive.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "train/model.hpp"

namespace {

double encoder_us(const et::gpusim::DeviceSpec& spec, et::nn::Pipeline p,
                  const et::nn::EncoderWeights& w,
                  const et::nn::ModelConfig& model) {
  et::gpusim::Device dev(spec);
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(128, model.d_model);
  (void)et::nn::encoder_forward(ctx, x, w,
                                et::nn::options_for(p, model, 128));
  return dev.total_time_us();
}

std::size_t crossover_seq(const et::gpusim::DeviceSpec& spec) {
  et::gpusim::Device dev(spec);
  et::core::ExecContext ctx(dev);
  et::core::AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 3);
  et::core::AdaptivePolicy policy;
  policy.auto_tune = true;
  for (std::size_t seq = 64; seq <= 1024; seq += 32) {
    cfg.seq_len = seq;
    et::tensor::MatrixF x(seq, 768);
    if (et::core::choose_attention_impl(dev, x, w, cfg, policy) ==
        et::core::AttentionImpl::kPartialOtf) {
      return seq;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const auto model = et::nn::bert_base();
  const auto dense = et::nn::make_dense_encoder_weights(model, 5);

  // Attention-aware pruned weights at 70%.
  et::train::TrainModelConfig tcfg;
  tcfg.vocab_size = 64;
  tcfg.d_model = model.d_model;
  tcfg.num_heads = model.num_heads;
  tcfg.d_ff = model.d_ff;
  tcfg.num_layers = 1;
  et::train::TransformerModel trainable(tcfg, 11);
  const auto masks = et::pruning::compute_layer_masks(
      trainable.layers()[0], et::pruning::Strategy::kAttentionAware, 0.7);
  const auto pruned = et::pruning::deploy_layer(
      trainable.layers()[0], masks, et::pruning::Strategy::kAttentionAware);

  const et::gpusim::DeviceSpec devices[] = {et::gpusim::v100s(),
                                            et::gpusim::a100()};

  std::printf("Discussion (§7) — E.T. on other hardware, BERT_BASE encoder, "
              "seq=128\n\n");
  et::bench::Table table({"device", "TensorRT_dense_us", "ET_dense_us",
                          "ET_pruned70_us", "ET_speedup",
                          "otf_crossover_seq"},
                         csv);
  for (const auto& spec : devices) {
    const double trt = encoder_us(spec, et::nn::Pipeline::kTensorRT, dense,
                                  model);
    const double et_dense =
        encoder_us(spec, et::nn::Pipeline::kET, dense, model);
    const double et_pruned =
        encoder_us(spec, et::nn::Pipeline::kET, pruned, model);
    table.add_row({spec.name, et::bench::fmt(trt, 1),
                   et::bench::fmt(et_dense, 1), et::bench::fmt(et_pruned, 1),
                   et::bench::fmt_ratio(trt / et_pruned),
                   std::to_string(crossover_seq(spec))});
  }
  table.print();
  std::printf("\nThe ranking survives the hardware change; the crossover "
              "shifts with the compute/bandwidth balance, exactly the "
              "hyper-parameter adjustment §7 describes.\n");
  return 0;
}
