// Ablation: request-level serving under an offered-load sweep through
// serving::InferenceServer (docs/serving.md).
//
// The scheduler benches (ablation_batching) measure raw decode
// throughput with every slot pre-filled; this one measures the SERVING
// runtime — requests arriving over time, a bounded admission queue, and
// continuous batching keeping the slots busy. Every rate in the sweep
// over-subscribes the slots (8-tick requests through 4 slots = 0.5
// requests/tick of capacity), so what the rows show is how ARRIVAL SHAPE
// moves loss vs latency at fixed capacity: the tick-0 burst bounces off
// the bounded queue hardest (max rejections, short queue waits), while
// steadier arrivals admit more requests at the price of longer queue
// waits — the serving loss/latency trade, fully deterministic (modeled
// device time, logical tick clock).
//
// Row fields are the run configuration plus EVERY
// serving::MetricsRegistry scalar, pulled from metrics().scalars() — the
// same list `et_cli --serve --json` emits, so the two outputs share one
// field-name contract by construction. --json / --csv as usual.
//
// The bench also re-runs one configuration twice and at a different
// thread count and exits nonzero if any metric differs — the serving
// determinism contract, enforced at bench level too.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/exec_context.hpp"
#include "gpusim/device.hpp"
#include "serving/server.hpp"

namespace {

struct ServeOutcome {
  double time_us = 0.0;
  std::vector<et::serving::ScalarField> scalars;
  std::string metrics_json;
};

struct ServeParams {
  std::size_t requests = 24;
  std::size_t slots = 4;
  std::size_t queue_capacity = 8;
  std::size_t tokens = 8;
  std::size_t arrive = 0;  // requests per tick; 0 = all at tick 0
  std::size_t threads = 1;
};

ServeOutcome run_served(const std::vector<et::nn::EncoderWeights>& layers,
                        const et::nn::EncoderOptions& opt, std::size_t d_model,
                        const ServeParams& p) {
  et::serving::ServerConfig cfg;
  cfg.max_batch = p.slots;
  cfg.max_context = p.tokens + 1;
  cfg.queue_capacity = p.queue_capacity;
  et::serving::InferenceServer server(&layers, opt, cfg);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev, p.threads);
  dev.set_traffic_only(true);

  std::size_t submitted = 0;
  const auto submit_some = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && submitted < p.requests; ++k) {
      et::serving::Request req;
      req.first_token = static_cast<std::int32_t>(submitted);
      req.max_new_tokens = p.tokens;
      req.embed = [d_model](std::int32_t, std::size_t) {
        return et::tensor::MatrixF(1, d_model);
      };
      req.select = [](const et::tensor::MatrixF&) { return std::int32_t{1}; };
      (void)server.submit(std::move(req));
      ++submitted;
    }
  };
  if (p.arrive == 0) submit_some(p.requests);
  while (submitted < p.requests || !server.idle()) {
    server.tick(ctx);
    submit_some(p.arrive);
  }

  ServeOutcome out;
  out.time_us = dev.total_time_us();
  out.scalars = server.metrics().scalars();
  out.metrics_json = server.metrics().json(0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);

  // Slim decoder: the serving dynamics (admission, queueing, rejection)
  // are what's measured; model width only scales the per-tick cost.
  et::nn::ModelConfig model;
  model.num_layers = 2;
  model.d_model = 256;
  model.num_heads = 4;
  model.d_ff = 512;
  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 5 + l));
  }
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 64,
                                       /*causal=*/true);

  // Headers: run configuration + every registry scalar, in registration
  // order. Taken from a real (empty) server so a renamed or added metric
  // propagates here and to et_cli automatically.
  std::vector<std::string> headers = {"offered_per_tick", "requests", "slots",
                                      "queue_capacity", "threads", "time_us"};
  {
    et::serving::ServerConfig probe{2, 4, 4};
    et::serving::InferenceServer server(&layers, opt, probe);
    for (const auto& f : server.metrics().scalars()) {
      headers.push_back(f.name);
    }
  }

  if (!csv && !json) {
    std::printf("Ablation — serving under offered load, %zux d=%zu decoder, "
                "%zu tokens/request\n"
                "(offered_per_tick 0 = every request arrives at tick 0)\n\n",
                model.num_layers, model.d_model, std::size_t{8});
  }
  et::bench::Table table(headers, csv, json);

  const auto add_row = [&](const ServeParams& p, const ServeOutcome& r) {
    std::vector<std::string> row = {
        std::to_string(p.arrive),     std::to_string(p.requests),
        std::to_string(p.slots),      std::to_string(p.queue_capacity),
        std::to_string(p.threads),    et::bench::fmt(r.time_us, 1)};
    for (const auto& f : r.scalars) row.push_back(et::bench::fmt(f.value, 3));
    table.add_row(std::move(row));
  };

  // ---- Arrival-shape sweep: all-at-once, then 1/2/4/8 per tick. The
  // queue is deliberately smaller than the offered total so every row
  // shows backpressure (requests_rejected > 0); burstier arrivals reject
  // more and wait less, steadier arrivals admit more and wait longer.
  for (const std::size_t arrive : {0u, 1u, 2u, 4u, 8u}) {
    ServeParams p;
    p.arrive = arrive;
    add_row(p, run_served(layers, opt, model.d_model, p));
  }

  // ---- Determinism spine: one mid-load configuration re-run and run
  // again at 4 threads must reproduce the identical snapshot.
  {
    ServeParams p;
    p.arrive = 2;
    const auto a = run_served(layers, opt, model.d_model, p);
    const auto b = run_served(layers, opt, model.d_model, p);
    ServeParams pt = p;
    pt.threads = 4;
    const auto c = run_served(layers, opt, model.d_model, pt);
    if (a.metrics_json != b.metrics_json || a.metrics_json != c.metrics_json ||
        a.time_us != b.time_us || a.time_us != c.time_us) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: serving metrics diverged across "
                   "identical runs / thread counts\n");
      return 1;
    }
    add_row(pt, c);
  }

  table.print();

  if (!csv && !json) {
    std::printf(
        "\nReading the sweep: the tick-0 burst bounces off the bounded\n"
        "queue (max rejections, short waits); steadier arrivals admit\n"
        "more requests but wait longer — loss vs latency at fixed\n"
        "capacity. The final row repeats a config at 4 threads with a\n"
        "bit-identical snapshot (the serving determinism contract).\n");
  }
  return 0;
}
