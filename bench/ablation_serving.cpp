// Ablation: request-level serving under an offered-load sweep through
// serving::InferenceServer (docs/serving.md).
//
// The scheduler benches (ablation_batching) measure raw decode
// throughput with every slot pre-filled; this one measures the SERVING
// runtime — requests arriving over time, a bounded admission queue, and
// continuous batching keeping the slots busy. Every rate in the sweep
// over-subscribes the slots (8-tick requests through 4 slots = 0.5
// requests/tick of capacity), so what the rows show is how ARRIVAL SHAPE
// moves loss vs latency at fixed capacity: the tick-0 burst bounces off
// the bounded queue hardest (max rejections, short queue waits), while
// steadier arrivals admit more requests at the price of longer queue
// waits — the serving loss/latency trade, fully deterministic (modeled
// device time, logical tick clock).
//
// Row fields are the run configuration (including the nn::Model weight
// layout) plus EVERY serving::MetricsRegistry scalar, pulled from
// metrics().scalars() — the same list `et_cli --serve --json` emits, so
// the two outputs share one field-name contract by construction.
// --json / --csv as usual.
//
// Two hard determinism/equivalence gates (exit nonzero on violation):
//   1. one configuration re-run and run at 4 threads must reproduce the
//      identical metrics snapshot (the serving determinism contract);
//   2. the weight-layout rows decode the same workload through dense
//      weights and through the pre-computed W_VO fold (§3.1) built so
//      the fold is EXACT (each kept W_O row holds one ±1 per head
//      block), and the transcripts must match token for token while the
//      folded rows carry strictly less KV storage and device traffic.
#include <bit>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/exec_context.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"
#include "serving/server.hpp"
#include "sparse/formats.hpp"

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic content-bearing embedding: every entry depends on
/// (seed, token, position, column), so transcripts are bit-sensitive to
/// the decode math — the same closures the differential tests use.
et::nn::EmbedFn make_embed(std::size_t d_model, std::uint64_t seed) {
  return [d_model, seed](std::int32_t token, std::size_t position) {
    et::tensor::MatrixF row(1, d_model);
    const std::uint64_t base =
        splitmix64(seed ^ (static_cast<std::uint64_t>(token) << 32) ^
                   static_cast<std::uint64_t>(position));
    for (std::size_t c = 0; c < d_model; ++c) {
      const std::uint64_t h = splitmix64(base + c);
      row(0, c) =
          static_cast<float>(h >> 40) / static_cast<float>(1ull << 24) - 0.5f;
    }
    return row;
  };
}

/// Bit-sensitive token selection: folds the raw IEEE-754 bits of the
/// hidden state into the next token, so a single-ulp divergence between
/// two runs flips their transcripts.
et::nn::SelectFn make_select(std::int32_t vocab) {
  return [vocab](const et::tensor::MatrixF& hidden) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (float v : hidden.flat()) {
      h = splitmix64(h ^ std::bit_cast<std::uint32_t>(v));
    }
    return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  };
}

struct ServeOutcome {
  double time_us = 0.0;
  std::string weights;  // nn::Model::weight_layout()
  std::vector<et::serving::ScalarField> scalars;
  std::string metrics_json;
  std::vector<std::vector<std::int32_t>> transcripts;  // submission order
  double kv_bytes = 0.0;
  double p99_queue_wait = 0.0;  // Histogram::quantile_bound(0.99)

  double scalar(const std::string& name) const {
    for (const auto& f : scalars) {
      if (f.name == name) return f.value;
    }
    return 0.0;
  }
};

struct ServeParams {
  std::size_t requests = 24;
  std::size_t slots = 4;
  std::size_t queue_capacity = 8;
  std::size_t tokens = 8;
  std::size_t arrive = 0;  // requests per tick; 0 = all at tick 0
  std::size_t threads = 1;
  std::int32_t vocab = 96;
  // Resilience knobs (docs/robustness.md): a per-request queue budget
  // (applied to every request when set), kernel-fault retry policy, the
  // server-side shedding switch, and a seeded random fault storm.
  std::size_t queue_budget = et::serving::kNoBudget;
  std::size_t retry_budget = 0;
  std::size_t retry_backoff = 0;
  bool shedding = true;
  double fault_fraction = 0.0;  // > 0: arm_random over every kernel launch
  std::uint64_t fault_seed = 0;
  // Paged-KV shape (docs/serving.md "Paged KV and prefix sharing").
  // prompt_len > 0 gives every request a prompt whose first
  // prompt_len - 1 tokens are common to its prefix group (consecutive
  // runs of `group_size` requests, sharing one embed seed) with a unique
  // final token — the shared-system-prompt workload.
  std::size_t prompt_len = 0;
  std::size_t group_size = 0;
  et::core::PagedKVOptions kv;
  // Weight-format descriptor handed to nn::Model (nullopt = derive from
  // the weights, the historical behavior); kInt8 serves the quantized
  // decode path.
  std::optional<et::nn::WeightFormat> weights;
};

ServeOutcome run_served(const std::vector<et::nn::EncoderWeights>& layers,
                        const et::nn::EncoderOptions& opt,
                        const ServeParams& p) {
  const et::nn::Model model(
      &layers, opt, p.tokens + (p.prompt_len > 0 ? p.prompt_len : 1),
      p.weights);
  et::serving::ServerConfig scfg;
  scfg.max_batch = p.slots;
  scfg.queue_capacity = p.queue_capacity;
  scfg.enable_shedding = p.shedding;
  scfg.kv = p.kv;
  et::serving::InferenceServer server(model, scfg);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev, p.threads);
  dev.set_traffic_only(true);
  if (p.fault_fraction > 0.0) {
    dev.fault_injector().arm_random(p.fault_fraction, p.fault_seed);
  }

  std::vector<et::serving::RequestHandle> handles;
  std::size_t submitted = 0;
  const auto submit_some = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && submitted < p.requests; ++k) {
      et::serving::Request req;
      req.max_new_tokens = p.tokens;
      if (p.prompt_len > 0) {
        const std::uint64_t group =
            1 + (p.group_size > 0 ? submitted / p.group_size : submitted);
        std::vector<std::int32_t> prompt(p.prompt_len);
        for (std::size_t j = 0; j + 1 < p.prompt_len; ++j) {
          prompt[j] = static_cast<std::int32_t>(100 * group + j);
        }
        prompt[p.prompt_len - 1] = static_cast<std::int32_t>(submitted);
        req.prompt_tokens = std::move(prompt);
        req.prefix_group = group;
        // One embedding identity per group — the contract that makes
        // aliasing another member's KV rows sound.
        req.embed = make_embed(model.d_model(), /*seed=*/31 + group);
      } else {
        req.first_token = static_cast<std::int32_t>(submitted);
        req.embed = make_embed(model.d_model(), /*seed=*/31 + submitted);
      }
      req.select = make_select(p.vocab);
      if (p.queue_budget != et::serving::kNoBudget) {
        req.queue_budget_ticks = p.queue_budget;
      }
      req.retry_budget = p.retry_budget;
      req.retry_backoff_ticks = p.retry_backoff;
      handles.push_back(server.submit(std::move(req)));
      ++submitted;
    }
  };
  if (p.arrive == 0) submit_some(p.requests);
  while (submitted < p.requests || !server.idle()) {
    server.tick(ctx);
    submit_some(p.arrive);
  }

  ServeOutcome out;
  out.time_us = dev.total_time_us();
  out.weights = std::string(et::nn::to_string(model.weight_layout()));
  out.scalars = server.metrics().scalars();
  out.metrics_json = server.metrics().json(0);
  for (const auto& h : handles) {
    out.transcripts.push_back(server.result(h).tokens);
  }
  for (const auto& f : out.scalars) {
    if (f.name == "kv_bytes") out.kv_bytes = f.value;
  }
  if (const auto* h = server.metrics().find_histogram("queue_wait_ticks")) {
    out.p99_queue_wait = h->quantile_bound(0.99);
  }
  return out;
}

/// A signed-selection output projection: kept row r carries exactly one
/// ±1 entry in every head's column block (at in-head feature r), all
/// other rows are zero. Folding it with precompute_vo is then EXACT —
/// every folded row is ±(a W_V row) and the scattered head-sum adds the
/// same floats in the same order the dense out-projection dot product
/// does — so dense and folded decodes must agree bit for bit.
et::tensor::MatrixF selection_wo(std::size_t d_model, std::size_t num_heads,
                                 std::size_t kept) {
  const std::size_t dk = d_model / num_heads;
  et::tensor::MatrixF wo(d_model, d_model);
  for (std::size_t r = 0; r < kept; ++r) {
    for (std::size_t h = 0; h < num_heads; ++h) {
      wo(r, h * dk + r) = ((r + h) % 2 == 0) ? 1.0f : -1.0f;
    }
  }
  return wo;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);
  // Fast path for the paged-kv smoke test: only the shared-prefix rows
  // (and their hard gates) run.
  bool shared_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--shared-prefix-only") shared_only = true;
  }

  // Slim decoder: the serving dynamics (admission, queueing, rejection)
  // are what's measured; model width only scales the per-tick cost.
  et::nn::ModelConfig model;
  model.num_layers = 2;
  model.d_model = 256;
  model.num_heads = 4;
  model.d_ff = 512;
  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 5 + l));
  }
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 64,
                                       /*causal=*/true);

  // Headers: run configuration + every registry scalar, in registration
  // order. Taken from a real (empty) server so a renamed or added metric
  // propagates here and to et_cli automatically.
  std::vector<std::string> headers = {
      "offered_per_tick", "requests",       "slots",
      "queue_capacity",   "threads",        "weights",
      "shedding",         "queue_budget",   "retry_budget",
      "fault_fraction",   "block_tokens",   "sharing",
      "kv_precision",     "time_us",        "p99_queue_wait",
      "retry_success"};
  {
    et::serving::InferenceServer server(et::nn::Model(&layers, opt, 4),
                                        {2, 4});
    for (const auto& f : server.metrics().scalars()) {
      headers.push_back(f.name);
    }
  }

  if (!csv && !json) {
    std::printf("Ablation — serving under offered load, %zux d=%zu decoder, "
                "%zu tokens/request\n"
                "(offered_per_tick 0 = every request arrives at tick 0)\n\n",
                model.num_layers, model.d_model, std::size_t{8});
  }
  et::bench::Table table(headers, csv, json);

  const auto add_row = [&](const ServeParams& p, const ServeOutcome& r) {
    // Retry success: the fraction of kernel-fault EVENTS that a
    // requeue-with-recompute turned into a non-fault retirement.
    const double faults = r.scalar("kernel_faults");
    const double success =
        faults > 0.0 ? (faults - r.scalar("stop_kernel_fault")) / faults : 0.0;
    std::vector<std::string> row = {
        std::to_string(p.arrive),
        std::to_string(p.requests),
        std::to_string(p.slots),
        std::to_string(p.queue_capacity),
        std::to_string(p.threads),
        r.weights,
        p.shedding ? "on" : "off",
        p.queue_budget == et::serving::kNoBudget
            ? "none"
            : std::to_string(p.queue_budget),
        std::to_string(p.retry_budget),
        et::bench::fmt(p.fault_fraction, 3),
        p.kv.block_tokens == 0 ? std::string("ctx")
                               : std::to_string(p.kv.block_tokens),
        p.kv.enable_prefix_sharing ? "on" : "off",
        std::string(et::core::to_string(p.kv.precision)),
        et::bench::fmt(r.time_us, 1),
        et::bench::fmt(r.p99_queue_wait, 1),
        et::bench::fmt(success, 3)};
    for (const auto& f : r.scalars) row.push_back(et::bench::fmt(f.value, 3));
    table.add_row(std::move(row));
  };

  // ---- Arrival-shape sweep: all-at-once, then 1/2/4/8 per tick. The
  // queue is deliberately smaller than the offered total so every row
  // shows backpressure (requests_rejected > 0); burstier arrivals reject
  // more and wait less, steadier arrivals admit more and wait longer.
  if (!shared_only) {
    for (const std::size_t arrive : {0u, 1u, 2u, 4u, 8u}) {
      ServeParams p;
      p.arrive = arrive;
      add_row(p, run_served(layers, opt, p));
    }
  }

  // ---- Determinism spine: one mid-load configuration re-run and run
  // again at 4 threads must reproduce the identical snapshot.
  if (!shared_only) {
    ServeParams p;
    p.arrive = 2;
    const auto a = run_served(layers, opt, p);
    const auto b = run_served(layers, opt, p);
    ServeParams pt = p;
    pt.threads = 4;
    const auto c = run_served(layers, opt, pt);
    if (a.metrics_json != b.metrics_json || a.metrics_json != c.metrics_json ||
        a.time_us != b.time_us || a.time_us != c.time_us) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: serving metrics diverged across "
                   "identical runs / thread counts\n");
      return 1;
    }
    add_row(pt, c);
  }

  // ---- Weight-layout rows: the same mid-load workload decoded through
  // dense weights and through the pre-computed W_VO fold, sharing every
  // projection. The fold condenses the cached V plane from d_model to
  // H·kept floats per token and drops the out-projection entirely, so
  // its row must show strictly lower kv_bytes AND device traffic — while
  // the exact-fold construction makes any transcript divergence a bug,
  // not noise.
  if (!shared_only) {
    constexpr std::size_t kKept = 16;  // per head; d_k = 64 stays condensable
    std::vector<std::uint32_t> kept_cols(kKept);
    for (std::size_t r = 0; r < kKept; ++r) {
      kept_cols[r] = static_cast<std::uint32_t>(r);
    }
    std::vector<et::nn::EncoderWeights> dense_layers = layers;
    std::vector<et::nn::EncoderWeights> folded_layers = layers;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const auto& wv =
          std::get<et::sparse::DenseWeight>(layers[l].attn.wv).matrix();
      auto wo = selection_wo(model.d_model, model.num_heads, kKept);
      dense_layers[l].attn.wo = et::sparse::DenseWeight(wo);
      folded_layers[l].attn.wo = et::sparse::DenseWeight(wo);
      folded_layers[l].attn.vo = et::core::precompute_vo(
          wv, wo, model.num_heads, kept_cols);
    }

    ServeParams p;
    p.arrive = 2;
    const auto dense = run_served(dense_layers, opt, p);
    const auto folded = run_served(folded_layers, opt, p);
    if (dense.transcripts != folded.transcripts) {
      std::fprintf(stderr,
                   "EQUIVALENCE VIOLATION: pre-computed W_VO transcripts "
                   "diverged from the dense decode\n");
      return 1;
    }
    if (!(folded.kv_bytes < dense.kv_bytes) ||
        !(folded.time_us < dense.time_us)) {
      std::fprintf(stderr,
                   "TRAFFIC VIOLATION: folded layout not cheaper "
                   "(kv_bytes %.0f vs %.0f, time_us %.1f vs %.1f)\n",
                   folded.kv_bytes, dense.kv_bytes, folded.time_us,
                   dense.time_us);
      return 1;
    }
    add_row(p, dense);
    add_row(p, folded);
  }

  // ---- Overload rows: 4x the slot capacity offered for the whole run.
  // The unprotected row has no admission control at all (no queue
  // budgets, shedding off): every request eventually decodes, and the
  // queue wait of the late arrivals grows with the backlog — the p99 is
  // the whole overload, visible in one number. The protected row gives
  // every request a 2-tick queue budget with shedding on: unmeetable
  // submits bounce instantly (shed > 0) and the p99 queue wait of what
  // IS admitted stays within the budget. Both configurations re-run and
  // must reproduce their metrics snapshot bit for bit (hard gate), and
  // the protected tail must be strictly shorter than the unprotected one.
  if (!shared_only) {
    ServeParams shed;
    shed.requests = 64;
    shed.slots = 4;
    shed.queue_capacity = 64;
    shed.tokens = 4;
    shed.arrive = 4;  // ~4x the drain rate of 4 slots x 4 ticks/request
    shed.queue_budget = 2;
    ServeParams raw = shed;
    raw.shedding = false;
    raw.queue_budget = et::serving::kNoBudget;
    const auto shed_a = run_served(layers, opt, shed);
    const auto shed_b = run_served(layers, opt, shed);
    const auto raw_a = run_served(layers, opt, raw);
    const auto raw_b = run_served(layers, opt, raw);
    if (shed_a.metrics_json != shed_b.metrics_json ||
        raw_a.metrics_json != raw_b.metrics_json) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: overload rows diverged across "
                   "identical re-runs\n");
      return 1;
    }
    if (shed_a.scalar("shed") <= 0.0 ||
        !(shed_a.p99_queue_wait < raw_a.p99_queue_wait)) {
      std::fprintf(stderr,
                   "OVERLOAD ROW VIOLATION: shedding shed %.0f submit(s) and "
                   "p99 queue wait is %.1f vs %.1f unprotected — the row no "
                   "longer shows load shedding protecting the tail\n",
                   shed_a.scalar("shed"), shed_a.p99_queue_wait,
                   raw_a.p99_queue_wait);
      return 1;
    }
    add_row(raw, raw_a);
    add_row(shed, shed_a);
  }

  // ---- Fault-storm row: a seeded random fraction of every kernel launch
  // faults, every request carries a retry budget with one backoff tick.
  // retry_success is the fraction of fault events that requeue +
  // recompute converted into a clean retirement. Re-run must reproduce
  // the snapshot bit for bit — faulted launches never reach the device,
  // so the fault script is part of the deterministic transcript.
  if (!shared_only) {
    ServeParams p;
    p.requests = 24;
    p.slots = 4;
    p.queue_capacity = 32;
    p.tokens = 4;
    p.arrive = 1;
    p.retry_budget = 2;
    p.retry_backoff = 1;
    p.fault_fraction = 0.02;
    p.fault_seed = 0xe7;
    const auto a = run_served(layers, opt, p);
    const auto b = run_served(layers, opt, p);
    if (a.metrics_json != b.metrics_json || a.transcripts != b.transcripts) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: fault-storm row diverged across "
                   "identical re-runs\n");
      return 1;
    }
    if (a.scalar("kernel_faults") <= 0.0 || a.scalar("retries") <= 0.0) {
      std::fprintf(stderr,
                   "FAULT-STORM ROW VIOLATION: no faults fired or no retries "
                   "ran — the row no longer measures fault recovery\n");
      return 1;
    }
    add_row(p, a);
  }

  // ---- Shared-prefix rows (docs/serving.md "Paged KV and prefix
  // sharing"): a staggered storm of 12 requests in consecutive groups of
  // 4, each group sharing a 7-token system prefix plus a unique final
  // token, decoded with prefix sharing ON and OFF over 2-token blocks.
  // Later group members arrive while earlier ones still hold registered
  // blocks, so admission aliases their prompt rows and the unique tail
  // CoW-splits the last shared block. Hard gates (nonzero exit):
  // transcripts identical sharing on vs off (sharing is memory-only),
  // the on-run re-runs bit for bit, sharing actually fired
  // (prefix_hits > 0), and kv_bytes_used_peak is STRICTLY lower with
  // sharing on.
  {
    ServeParams p;
    p.requests = 12;
    p.slots = 4;
    p.queue_capacity = 16;
    p.tokens = 4;
    p.arrive = 1;
    p.prompt_len = 8;
    p.group_size = 4;
    p.kv.block_tokens = 2;
    ServeParams off = p;
    off.kv.enable_prefix_sharing = false;
    const auto a = run_served(layers, opt, p);
    const auto a2 = run_served(layers, opt, p);
    const auto b = run_served(layers, opt, off);
    if (a.metrics_json != a2.metrics_json || a.transcripts != a2.transcripts) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: shared-prefix row diverged across "
                   "identical re-runs\n");
      return 1;
    }
    if (a.transcripts != b.transcripts) {
      std::fprintf(stderr,
                   "EQUIVALENCE VIOLATION: prefix sharing changed the "
                   "transcripts — sharing must be memory-only\n");
      return 1;
    }
    if (a.scalar("prefix_hits") <= 0.0) {
      std::fprintf(stderr,
                   "SHARED-PREFIX ROW VIOLATION: no admission aliased a "
                   "prefix — the row no longer measures sharing\n");
      return 1;
    }
    if (!(a.scalar("kv_bytes_used_peak") < b.scalar("kv_bytes_used_peak"))) {
      std::fprintf(stderr,
                   "SHARED-PREFIX ROW VIOLATION: peak KV residency %.0f with "
                   "sharing on is not strictly below %.0f with it off\n",
                   a.scalar("kv_bytes_used_peak"),
                   b.scalar("kv_bytes_used_peak"));
      return 1;
    }
    add_row(off, b);
    add_row(p, a);
  }

  // ---- INT8-KV rows (docs/quantization.md): the same mid-load INT8-weight
  // workload served over an fp32 and an int8 paged-KV pool. Quantized KV
  // stores one byte per element plus two fp32 scales per row, so at equal
  // offered load the peak KV residency must drop to ≤ 55% of the fp32
  // baseline — at a fixed physical byte budget that is ≥ 2× the resident
  // batch. INT8 KV rounds the cached rows (documented, lossy), so the
  // cross-precision gate is on bytes and shape, not transcripts; the int8
  // run itself must still reproduce bit for bit across a re-run and at 4
  // threads (the serving determinism contract is precision-independent).
  if (!shared_only) {
    ServeParams p;
    p.arrive = 2;
    p.weights = et::nn::WeightFormat::kInt8;
    ServeParams pi = p;
    pi.kv.precision = et::core::KvPrecision::kInt8;
    const auto fp = run_served(layers, opt, p);
    const auto i8 = run_served(layers, opt, pi);
    const auto i8_re = run_served(layers, opt, pi);
    ServeParams pit = pi;
    pit.threads = 4;
    const auto i8_t = run_served(layers, opt, pit);
    if (i8.metrics_json != i8_re.metrics_json ||
        i8.metrics_json != i8_t.metrics_json ||
        i8.transcripts != i8_re.transcripts ||
        i8.transcripts != i8_t.transcripts) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: int8-KV row diverged across "
                   "identical re-runs / thread counts\n");
      return 1;
    }
    if (!(i8.scalar("kv_bytes_used_peak") <=
          0.55 * fp.scalar("kv_bytes_used_peak"))) {
      std::fprintf(stderr,
                   "INT8-KV ROW VIOLATION: peak KV residency %.0f is not "
                   "<= 55%% of the fp32 baseline %.0f\n",
                   i8.scalar("kv_bytes_used_peak"),
                   fp.scalar("kv_bytes_used_peak"));
      return 1;
    }
    bool same_shape = fp.transcripts.size() == i8.transcripts.size();
    for (std::size_t r = 0; same_shape && r < fp.transcripts.size(); ++r) {
      same_shape = fp.transcripts[r].size() == i8.transcripts[r].size();
    }
    if (!same_shape) {
      std::fprintf(stderr,
                   "INT8-KV ROW VIOLATION: KV precision changed the shape "
                   "of the serve (per-request token counts) — it must only "
                   "round values, never scheduling\n");
      return 1;
    }
    add_row(p, fp);
    add_row(pi, i8);
  }

  table.print();

  if (!csv && !json) {
    std::printf(
        "\nReading the sweep: the tick-0 burst bounces off the bounded\n"
        "queue (max rejections, short waits); steadier arrivals admit\n"
        "more requests but wait longer — loss vs latency at fixed\n"
        "capacity. The threads=4 row repeats a config with a\n"
        "bit-identical snapshot (the serving determinism contract), and\n"
        "the dense/precomputed pair decodes one workload through both\n"
        "layouts: identical transcripts, smaller KV plane and less\n"
        "device traffic under the fold (verified; nonzero exit on any\n"
        "divergence). The overload pair offers 4x capacity: unprotected\n"
        "(no budgets, no shedding) the backlog stretches p99_queue_wait\n"
        "to the whole overload; protected (2-tick budgets + shedding)\n"
        "unmeetable submits bounce at the door and the admitted tail\n"
        "stays within budget — verified strictly shorter.\n"
        "The fault-storm row faults a seeded 2%% of kernel launches;\n"
        "retry_success is the fraction of fault events that requeue +\n"
        "recompute retired cleanly. Every resilience row re-runs and must\n"
        "reproduce its metrics snapshot bit for bit.\n");
  }
  return 0;
}
