// Ablation: request-level serving under an offered-load sweep through
// serving::InferenceServer (docs/serving.md).
//
// The scheduler benches (ablation_batching) measure raw decode
// throughput with every slot pre-filled; this one measures the SERVING
// runtime — requests arriving over time, a bounded admission queue, and
// continuous batching keeping the slots busy. Every rate in the sweep
// over-subscribes the slots (8-tick requests through 4 slots = 0.5
// requests/tick of capacity), so what the rows show is how ARRIVAL SHAPE
// moves loss vs latency at fixed capacity: the tick-0 burst bounces off
// the bounded queue hardest (max rejections, short queue waits), while
// steadier arrivals admit more requests at the price of longer queue
// waits — the serving loss/latency trade, fully deterministic (modeled
// device time, logical tick clock).
//
// Row fields are the run configuration (including the nn::Model weight
// layout) plus EVERY serving::MetricsRegistry scalar, pulled from
// metrics().scalars() — the same list `et_cli --serve --json` emits, so
// the two outputs share one field-name contract by construction.
// --json / --csv as usual.
//
// Two hard determinism/equivalence gates (exit nonzero on violation):
//   1. one configuration re-run and run at 4 threads must reproduce the
//      identical metrics snapshot (the serving determinism contract);
//   2. the weight-layout rows decode the same workload through dense
//      weights and through the pre-computed W_VO fold (§3.1) built so
//      the fold is EXACT (each kept W_O row holds one ±1 per head
//      block), and the transcripts must match token for token while the
//      folded rows carry strictly less KV storage and device traffic.
#include <bit>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/exec_context.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"
#include "serving/server.hpp"
#include "sparse/formats.hpp"

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic content-bearing embedding: every entry depends on
/// (seed, token, position, column), so transcripts are bit-sensitive to
/// the decode math — the same closures the differential tests use.
et::nn::EmbedFn make_embed(std::size_t d_model, std::uint64_t seed) {
  return [d_model, seed](std::int32_t token, std::size_t position) {
    et::tensor::MatrixF row(1, d_model);
    const std::uint64_t base =
        splitmix64(seed ^ (static_cast<std::uint64_t>(token) << 32) ^
                   static_cast<std::uint64_t>(position));
    for (std::size_t c = 0; c < d_model; ++c) {
      const std::uint64_t h = splitmix64(base + c);
      row(0, c) =
          static_cast<float>(h >> 40) / static_cast<float>(1ull << 24) - 0.5f;
    }
    return row;
  };
}

/// Bit-sensitive token selection: folds the raw IEEE-754 bits of the
/// hidden state into the next token, so a single-ulp divergence between
/// two runs flips their transcripts.
et::nn::SelectFn make_select(std::int32_t vocab) {
  return [vocab](const et::tensor::MatrixF& hidden) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (float v : hidden.flat()) {
      h = splitmix64(h ^ std::bit_cast<std::uint32_t>(v));
    }
    return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(vocab));
  };
}

struct ServeOutcome {
  double time_us = 0.0;
  std::string weights;  // nn::Model::weight_layout()
  std::vector<et::serving::ScalarField> scalars;
  std::string metrics_json;
  std::vector<std::vector<std::int32_t>> transcripts;  // submission order
  double kv_bytes = 0.0;
};

struct ServeParams {
  std::size_t requests = 24;
  std::size_t slots = 4;
  std::size_t queue_capacity = 8;
  std::size_t tokens = 8;
  std::size_t arrive = 0;  // requests per tick; 0 = all at tick 0
  std::size_t threads = 1;
  std::int32_t vocab = 96;
};

ServeOutcome run_served(const std::vector<et::nn::EncoderWeights>& layers,
                        const et::nn::EncoderOptions& opt,
                        const ServeParams& p) {
  const et::nn::Model model(&layers, opt, p.tokens + 1);
  et::serving::InferenceServer server(model,
                                      {p.slots, p.queue_capacity});

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev, p.threads);
  dev.set_traffic_only(true);

  std::vector<et::serving::RequestHandle> handles;
  std::size_t submitted = 0;
  const auto submit_some = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && submitted < p.requests; ++k) {
      et::serving::Request req;
      req.first_token = static_cast<std::int32_t>(submitted);
      req.max_new_tokens = p.tokens;
      req.embed = make_embed(model.d_model(), /*seed=*/31 + submitted);
      req.select = make_select(p.vocab);
      handles.push_back(server.submit(std::move(req)));
      ++submitted;
    }
  };
  if (p.arrive == 0) submit_some(p.requests);
  while (submitted < p.requests || !server.idle()) {
    server.tick(ctx);
    submit_some(p.arrive);
  }

  ServeOutcome out;
  out.time_us = dev.total_time_us();
  out.weights = std::string(model.weight_layout());
  out.scalars = server.metrics().scalars();
  out.metrics_json = server.metrics().json(0);
  for (const auto& h : handles) {
    out.transcripts.push_back(server.result(h).tokens);
  }
  for (const auto& f : out.scalars) {
    if (f.name == "kv_bytes") out.kv_bytes = f.value;
  }
  return out;
}

/// A signed-selection output projection: kept row r carries exactly one
/// ±1 entry in every head's column block (at in-head feature r), all
/// other rows are zero. Folding it with precompute_vo is then EXACT —
/// every folded row is ±(a W_V row) and the scattered head-sum adds the
/// same floats in the same order the dense out-projection dot product
/// does — so dense and folded decodes must agree bit for bit.
et::tensor::MatrixF selection_wo(std::size_t d_model, std::size_t num_heads,
                                 std::size_t kept) {
  const std::size_t dk = d_model / num_heads;
  et::tensor::MatrixF wo(d_model, d_model);
  for (std::size_t r = 0; r < kept; ++r) {
    for (std::size_t h = 0; h < num_heads; ++h) {
      wo(r, h * dk + r) = ((r + h) % 2 == 0) ? 1.0f : -1.0f;
    }
  }
  return wo;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const bool json = et::bench::json_mode(argc, argv);

  // Slim decoder: the serving dynamics (admission, queueing, rejection)
  // are what's measured; model width only scales the per-tick cost.
  et::nn::ModelConfig model;
  model.num_layers = 2;
  model.d_model = 256;
  model.num_heads = 4;
  model.d_ff = 512;
  std::vector<et::nn::EncoderWeights> layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    layers.push_back(et::nn::make_dense_encoder_weights(model, 5 + l));
  }
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 64,
                                       /*causal=*/true);

  // Headers: run configuration + every registry scalar, in registration
  // order. Taken from a real (empty) server so a renamed or added metric
  // propagates here and to et_cli automatically.
  std::vector<std::string> headers = {"offered_per_tick", "requests",
                                      "slots",            "queue_capacity",
                                      "threads",          "weights",
                                      "time_us"};
  {
    et::serving::InferenceServer server(et::nn::Model(&layers, opt, 4),
                                        {2, 4});
    for (const auto& f : server.metrics().scalars()) {
      headers.push_back(f.name);
    }
  }

  if (!csv && !json) {
    std::printf("Ablation — serving under offered load, %zux d=%zu decoder, "
                "%zu tokens/request\n"
                "(offered_per_tick 0 = every request arrives at tick 0)\n\n",
                model.num_layers, model.d_model, std::size_t{8});
  }
  et::bench::Table table(headers, csv, json);

  const auto add_row = [&](const ServeParams& p, const ServeOutcome& r) {
    std::vector<std::string> row = {
        std::to_string(p.arrive),  std::to_string(p.requests),
        std::to_string(p.slots),   std::to_string(p.queue_capacity),
        std::to_string(p.threads), r.weights,
        et::bench::fmt(r.time_us, 1)};
    for (const auto& f : r.scalars) row.push_back(et::bench::fmt(f.value, 3));
    table.add_row(std::move(row));
  };

  // ---- Arrival-shape sweep: all-at-once, then 1/2/4/8 per tick. The
  // queue is deliberately smaller than the offered total so every row
  // shows backpressure (requests_rejected > 0); burstier arrivals reject
  // more and wait less, steadier arrivals admit more and wait longer.
  for (const std::size_t arrive : {0u, 1u, 2u, 4u, 8u}) {
    ServeParams p;
    p.arrive = arrive;
    add_row(p, run_served(layers, opt, p));
  }

  // ---- Determinism spine: one mid-load configuration re-run and run
  // again at 4 threads must reproduce the identical snapshot.
  {
    ServeParams p;
    p.arrive = 2;
    const auto a = run_served(layers, opt, p);
    const auto b = run_served(layers, opt, p);
    ServeParams pt = p;
    pt.threads = 4;
    const auto c = run_served(layers, opt, pt);
    if (a.metrics_json != b.metrics_json || a.metrics_json != c.metrics_json ||
        a.time_us != b.time_us || a.time_us != c.time_us) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: serving metrics diverged across "
                   "identical runs / thread counts\n");
      return 1;
    }
    add_row(pt, c);
  }

  // ---- Weight-layout rows: the same mid-load workload decoded through
  // dense weights and through the pre-computed W_VO fold, sharing every
  // projection. The fold condenses the cached V plane from d_model to
  // H·kept floats per token and drops the out-projection entirely, so
  // its row must show strictly lower kv_bytes AND device traffic — while
  // the exact-fold construction makes any transcript divergence a bug,
  // not noise.
  {
    constexpr std::size_t kKept = 16;  // per head; d_k = 64 stays condensable
    std::vector<std::uint32_t> kept_cols(kKept);
    for (std::size_t r = 0; r < kKept; ++r) {
      kept_cols[r] = static_cast<std::uint32_t>(r);
    }
    std::vector<et::nn::EncoderWeights> dense_layers = layers;
    std::vector<et::nn::EncoderWeights> folded_layers = layers;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const auto& wv =
          std::get<et::sparse::DenseWeight>(layers[l].attn.wv).matrix();
      auto wo = selection_wo(model.d_model, model.num_heads, kKept);
      dense_layers[l].attn.wo = et::sparse::DenseWeight(wo);
      folded_layers[l].attn.wo = et::sparse::DenseWeight(wo);
      folded_layers[l].attn.vo = et::core::precompute_vo(
          wv, wo, model.num_heads, kept_cols);
    }

    ServeParams p;
    p.arrive = 2;
    const auto dense = run_served(dense_layers, opt, p);
    const auto folded = run_served(folded_layers, opt, p);
    if (dense.transcripts != folded.transcripts) {
      std::fprintf(stderr,
                   "EQUIVALENCE VIOLATION: pre-computed W_VO transcripts "
                   "diverged from the dense decode\n");
      return 1;
    }
    if (!(folded.kv_bytes < dense.kv_bytes) ||
        !(folded.time_us < dense.time_us)) {
      std::fprintf(stderr,
                   "TRAFFIC VIOLATION: folded layout not cheaper "
                   "(kv_bytes %.0f vs %.0f, time_us %.1f vs %.1f)\n",
                   folded.kv_bytes, dense.kv_bytes, folded.time_us,
                   dense.time_us);
      return 1;
    }
    add_row(p, dense);
    add_row(p, folded);
  }

  table.print();

  if (!csv && !json) {
    std::printf(
        "\nReading the sweep: the tick-0 burst bounces off the bounded\n"
        "queue (max rejections, short waits); steadier arrivals admit\n"
        "more requests but wait longer — loss vs latency at fixed\n"
        "capacity. The threads=4 row repeats a config with a\n"
        "bit-identical snapshot (the serving determinism contract), and\n"
        "the dense/precomputed pair decodes one workload through both\n"
        "layouts: identical transcripts, smaller KV plane and less\n"
        "device traffic under the fold (verified; nonzero exit on any\n"
        "divergence).\n");
  }
  return 0;
}
