// Figure 14: the WikiText-2 Transformer study — (a) next-token accuracy
// and (b) single-inference latency versus pruning ratio, for the four
// pruning methods plus the SVD low-rank baseline (§6).
//
// Accuracy is measured on a scaled-down Transformer trained on the
// synthetic corpus (the algorithms are dimension-agnostic); latency is
// measured on the simulator at the paper's Transformer configuration
// (d=800, H=4, L=2, seq=128). Expected shape: little accuracy loss below
// ~85% for every method; attention-aware ≈ tile ≈ column in accuracy;
// irregular ~19× slower than the others.
#include "bench_common.hpp"
#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/svd.hpp"
#include "train_harness.hpp"

namespace {

using et::pruning::Strategy;

et::train::TrainModelConfig small_transformer() {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 96;
  cfg.d_model = 128;
  cfg.num_heads = 4;
  cfg.d_ff = 256;
  cfg.num_layers = 2;
  cfg.causal = true;
  return cfg;
}

/// Latency of the full 2-layer encoder stack at the paper's Transformer
/// dimensions under a strategy/ratio.
double latency_us(Strategy strategy, double ratio) {
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 800;
  cfg.num_heads = 4;
  cfg.d_ff = 3200;
  cfg.num_layers = 1;
  static et::train::TransformerModel shapes(cfg, 1234);
  const auto masks =
      et::pruning::compute_layer_masks(shapes.layers()[0], strategy, ratio);
  const auto weights =
      et::pruning::deploy_layer(shapes.layers()[0], masks, strategy);

  et::nn::ModelConfig model = et::nn::transformer_wikitext();
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(128, model.d_model);
  const auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 128,
                                       /*causal=*/true);
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    (void)et::nn::encoder_forward(ctx, x, weights, opt);
  }
  return dev.total_time_us();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = et::bench::csv_mode(argc, argv);
  const double scale = et::bench::epoch_scale();
  const int pre_epochs = static_cast<int>(12 * scale);
  const int reweight_epochs = static_cast<int>(3 * scale);
  const int retrain_epochs = static_cast<int>(4 * scale);
  const float lr = 1e-3f;

  et::data::TextCorpusConfig ccfg;
  ccfg.vocab_size = 96;
  ccfg.num_train_sequences = 48;
  ccfg.num_valid_sequences = 16;
  ccfg.seq_len = 24;
  const et::data::SyntheticCorpus corpus(ccfg);

  // Pre-train once; each method restarts from a copy of this model
  // (mirroring the paper, which prunes from one pre-trained checkpoint).
  et::train::TransformerLM pretrained(small_transformer(), 321);
  et::bench::train_lm_epochs(pretrained, corpus, pre_epochs, lr);
  const double base_acc = et::bench::lm_accuracy(pretrained, corpus);
  std::printf("Figure 14 — Transformer pruning study (paper shape: flat "
              "accuracy below ~85%% ratio; irregular ~19x slower)\n");
  std::printf("pre-trained accuracy: %.3f (epochs scaled by "
              "ET_EPOCH_SCALE=%.2g)\n\n",
              base_acc, scale);

  et::bench::Table acc_table({"ratio", "irregular", "column", "tile",
                              "attention_aware", "svd"},
                             csv);
  et::bench::Table lat_table({"ratio", "irregular_us", "column_us",
                              "tile_us", "attention_aware_us",
                              "irr_vs_tile"},
                             csv);

  for (const double ratio : {0.5, 0.7, 0.8, 0.9, 0.95}) {
    std::vector<std::string> acc_row = {et::bench::fmt(ratio, 2)};
    for (const Strategy s :
         {Strategy::kIrregular, Strategy::kColumn, Strategy::kTile,
          Strategy::kAttentionAware}) {
      et::train::TransformerLM lm = pretrained;  // copy of the checkpoint
      const auto masks = et::bench::prune_lm(lm, corpus, s, ratio,
                                             reweight_epochs, retrain_epochs,
                                             lr);
      (void)masks;
      acc_row.push_back(et::bench::fmt(et::bench::lm_accuracy(lm, corpus), 3));
    }
    // SVD baseline: replace every weight with its budget-matched low-rank
    // approximation, fine-tune briefly, and re-project — the weights must
    // stay on the low-rank manifold or fine-tuning silently restores full
    // rank and the comparison is meaningless.
    {
      et::train::TransformerLM lm = pretrained;
      const auto project = [&] {
        for (auto& layer : lm.trunk.layers()) {
          std::vector<et::train::Param*> ps;
          layer.collect(ps);
          for (auto* p : ps) {
            p->w = et::pruning::low_rank_approx(
                p->w,
                et::pruning::rank_for_ratio(p->w.rows(), p->w.cols(), ratio));
          }
        }
      };
      project();
      et::bench::train_lm_epochs(lm, corpus, retrain_epochs, lr);
      project();
      acc_row.push_back(et::bench::fmt(et::bench::lm_accuracy(lm, corpus), 3));
    }
    acc_table.add_row(acc_row);

    const double irr = latency_us(Strategy::kIrregular, ratio);
    const double col = latency_us(Strategy::kColumn, ratio);
    const double tile = latency_us(Strategy::kTile, ratio);
    const double aware = latency_us(Strategy::kAttentionAware, ratio);
    lat_table.add_row({et::bench::fmt(ratio, 2), et::bench::fmt(irr, 1),
                       et::bench::fmt(col, 1), et::bench::fmt(tile, 1),
                       et::bench::fmt(aware, 1),
                       et::bench::fmt_ratio(irr / tile)});
  }

  std::printf("(a) validation next-token accuracy after prune + retrain\n\n");
  acc_table.print();
  std::printf("\n(b) latency at the paper's Transformer config (d=800, H=4, "
              "L=2, seq=128)\n\n");
  lat_table.print();
  return 0;
}
