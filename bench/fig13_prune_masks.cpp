// Figure 13: visualization of the in_proj_weight masks (the stacked
// W_Q / W_K / W_V of the Transformer, 2400×800) under the four pruning
// methods at a 50% ratio. Writes one PGM image per method plus an ASCII
// thumbnail to stdout.
#include <fstream>

#include "bench_common.hpp"
#include "pruning/criteria.hpp"
#include "pruning/strategy.hpp"
#include "tensor/random.hpp"
#include "train/model.hpp"

namespace {

using et::sparse::Mask;
using et::tensor::MatrixF;

/// Stack the three attention projections the way PyTorch's in_proj_weight
/// does: W_Q on top, then W_K, then W_V.
Mask stack_masks(const Mask& q, const Mask& k, const Mask& v) {
  Mask out(q.rows() + k.rows() + v.rows(), q.cols());
  const auto paste = [&](const Mask& m, std::size_t row0) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        out(row0 + r, c) = m(r, c);
      }
    }
  };
  paste(q, 0);
  paste(k, q.rows());
  paste(v, q.rows() + k.rows());
  return out;
}

void write_pgm(const std::string& path, const Mask& mask) {
  std::ofstream f(path, std::ios::binary);
  f << "P5\n" << mask.cols() << ' ' << mask.rows() << "\n255\n";
  for (auto v : mask.flat()) {
    f.put(v ? static_cast<char>(255) : static_cast<char>(0));
  }
}

void ascii_thumbnail(const Mask& mask, std::size_t out_rows = 30,
                     std::size_t out_cols = 60) {
  for (std::size_t r = 0; r < out_rows; ++r) {
    for (std::size_t c = 0; c < out_cols; ++c) {
      // Average occupancy of the source block this character covers.
      const std::size_t r0 = r * mask.rows() / out_rows;
      const std::size_t r1 = (r + 1) * mask.rows() / out_rows;
      const std::size_t c0 = c * mask.cols() / out_cols;
      const std::size_t c1 = (c + 1) * mask.cols() / out_cols;
      std::size_t ones = 0, total = 0;
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = c0; j < c1; ++j) {
          ones += mask(i, j);
          ++total;
        }
      }
      const double frac =
          static_cast<double>(ones) / static_cast<double>(total);
      std::printf("%c", frac > 0.75   ? '#'
                        : frac > 0.5  ? '+'
                        : frac > 0.25 ? '.'
                                      : ' ');
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int, char**) {
  // A briefly-trained Transformer provides realistically-structured
  // weights; the mask *pattern* is what the figure shows.
  et::train::TrainModelConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 800;
  cfg.num_heads = 4;
  cfg.d_ff = 3200;
  cfg.num_layers = 1;
  et::train::TransformerModel model(cfg, 13);
  const auto& layer = model.layers()[0];
  const double ratio = 0.5;

  struct Entry {
    const char* name;
    Mask mask;
  };
  const auto aa = et::pruning::compute_layer_masks(
      layer, et::pruning::Strategy::kAttentionAware, ratio);
  const auto irr = et::pruning::compute_layer_masks(
      layer, et::pruning::Strategy::kIrregular, ratio);
  const auto col = et::pruning::compute_layer_masks(
      layer, et::pruning::Strategy::kColumn, ratio);
  const auto tile = et::pruning::compute_layer_masks(
      layer, et::pruning::Strategy::kTile, ratio);

  const Entry entries[] = {
      {"attention_aware", stack_masks(aa.wq, aa.wk, aa.wv)},
      {"irregular", stack_masks(irr.wq, irr.wk, irr.wv)},
      {"column", stack_masks(col.wq, col.wk, col.wv)},
      {"tile", stack_masks(tile.wq, tile.wk, tile.wv)},
  };

  std::printf("Figure 13 — in_proj_weight (2400x800 = stacked W_Q/W_K/W_V) "
              "masks at 50%% pruning. White (#) = kept.\n");
  for (const auto& e : entries) {
    const std::string path =
        std::string("fig13_mask_") + e.name + ".pgm";
    write_pgm(path, e.mask);
    std::printf("\n--- %s (ratio %.2f; image: %s) ---\n", e.name,
                et::sparse::pruning_ratio(e.mask), path.c_str());
    ascii_thumbnail(e.mask);
  }
  std::printf("\nNote the attention-aware map: W_Q/W_K tiles, and row "
              "stripes confined to the W_V block (bottom third), balanced "
              "across the four heads.\n");
  return 0;
}
