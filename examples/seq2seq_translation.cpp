// Sequence-to-sequence inference with E.T. operators end to end: a full
// encoder-decoder Transformer (the original architecture the paper's §2.1
// describes) where every attention block — encoder self-attention, decoder
// masked self-attention, decoder cross-attention — runs on E.T.'s
// on-the-fly kernels, with optional attention-aware pruning.
//
//   $ ./examples/seq2seq_translation [src_len] [tgt_len]
#include <cstdio>
#include <cstdlib>

#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "nn/decoder.hpp"
#include "nn/positional.hpp"
#include "pruning/strategy.hpp"
#include "tensor/random.hpp"
#include "train/model.hpp"

int main(int argc, char** argv) {
  const std::size_t src_len =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  const std::size_t tgt_len =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 48;

  // The paper's WikiText Transformer shape, as a 2+2 encoder-decoder.
  et::nn::ModelConfig model = et::nn::transformer_wikitext();
  std::vector<et::nn::EncoderWeights> encoder;
  std::vector<et::nn::DecoderWeights> decoder;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    encoder.push_back(et::nn::make_dense_encoder_weights(model, 100 + l));
    decoder.push_back(et::nn::make_dense_decoder_weights(model, 200 + l));
  }

  // Source/target embeddings with sinusoidal position information (Eq. 1-2).
  et::tensor::MatrixF source(src_len, model.d_model);
  et::tensor::MatrixF target(tgt_len, model.d_model);
  et::tensor::fill_normal(source, 1, 0.0f, 0.5f);
  et::tensor::fill_normal(target, 2, 0.0f, 0.5f);
  et::nn::add_positional_encoding(source);
  et::nn::add_positional_encoding(target);

  auto enc_opt =
      et::nn::options_for(et::nn::Pipeline::kET, model, src_len, false);
  auto dec_opt =
      et::nn::options_for(et::nn::Pipeline::kET, model, tgt_len, true);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  const auto out = et::nn::seq2seq_forward(ctx, source, target, encoder,
                                           decoder, enc_opt, dec_opt);
  std::printf("seq2seq %s: %zu source tokens -> %zu target positions "
              "(%zu x %zu output)\n",
              model.name.c_str(), src_len, tgt_len, out.rows(), out.cols());
  std::printf("dense pipeline: %.1f us over %zu kernels "
              "(cross-attention: %.1f us)\n",
              dev.total_time_us(), dev.launch_count(),
              dev.time_us_matching("otf_cross_attention"));

  // Attention-aware prune everything at 70% and rerun.
  et::train::TrainModelConfig tcfg;
  tcfg.vocab_size = 64;
  tcfg.d_model = model.d_model;
  tcfg.num_heads = model.num_heads;
  tcfg.d_ff = model.d_ff;
  tcfg.num_layers = 1;
  et::train::TransformerModel shapes(tcfg, 7);
  const auto masks = et::pruning::compute_layer_masks(
      shapes.layers()[0], et::pruning::Strategy::kAttentionAware, 0.7);
  const auto pruned_enc = et::pruning::deploy_layer(
      shapes.layers()[0], masks, et::pruning::Strategy::kAttentionAware);
  std::vector<et::nn::EncoderWeights> enc_p(model.num_layers, pruned_enc);
  std::vector<et::nn::DecoderWeights> dec_p;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    et::nn::DecoderWeights d = decoder[l];
    d.self_attn = pruned_enc.attn;
    d.cross_attn = pruned_enc.attn;
    d.w_ff1 = pruned_enc.w_ff1;
    d.w_ff2 = pruned_enc.w_ff2;
    dec_p.push_back(std::move(d));
  }

  et::gpusim::Device pruned_dev;
  et::core::ExecContext pruned_dev_ctx(pruned_dev);
  pruned_dev.set_traffic_only(true);
  (void)et::nn::seq2seq_forward(pruned_dev_ctx, source, target, enc_p, dec_p,
                                enc_opt, dec_opt);
  std::printf("attention-aware pruned at 70%%: %.1f us -> %.2fx\n",
              pruned_dev.total_time_us(),
              dev.total_time_us() / pruned_dev.total_time_us());
  return 0;
}
