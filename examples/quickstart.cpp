// Quickstart: build a BERT_BASE-shaped encoder, run it through all four
// pipelines on the simulated V100S, and print what E.T.'s operators save.
//
//   $ ./examples/quickstart [seq_len]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "nn/encoder.hpp"
#include "tensor/random.hpp"

int main(int argc, char** argv) {
  const std::size_t seq = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;

  // 1. A model configuration and dense random weights.
  const et::nn::ModelConfig model = et::nn::bert_base();
  const et::nn::EncoderWeights weights =
      et::nn::make_dense_encoder_weights(model, /*seed=*/42);

  // 2. An input: seq_len token embeddings of width d_model.
  et::tensor::MatrixF x(seq, model.d_model);
  et::tensor::fill_normal(x, 7);

  std::printf("one %s encoder layer, seq_len=%zu, on a simulated %s\n\n",
              model.name.c_str(), seq, et::gpusim::v100s().name.c_str());

  // 3. Run each pipeline and report modeled latency + kernel counts.
  for (const auto pipeline :
       {et::nn::Pipeline::kModular, et::nn::Pipeline::kTensorRT,
        et::nn::Pipeline::kFasterTransformer, et::nn::Pipeline::kET}) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    const auto opt = et::nn::options_for(pipeline, model, seq);
    const et::tensor::MatrixF y = et::nn::encoder_forward(ctx, x, weights, opt);
    std::printf("%-18s %7.1f us  %2zu kernel launches   (output[0][0] = %+.4f)\n",
                std::string(to_string(pipeline)).c_str(),
                dev.total_time_us(), dev.launch_count(),
                static_cast<double>(y(0, 0)));
  }

  // 4. Peek inside E.T.'s launch log with the nvprof-style profiler.
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  (void)et::nn::encoder_forward(
      ctx, x, weights, et::nn::options_for(et::nn::Pipeline::kET, model, seq));
  std::printf("\nE.T. kernel-by-kernel profile:\n");
  print_report(std::cout, et::gpusim::profile(dev));
  return 0;
}
