// Sequence-length-aware dispatch (§3.2) in action: watch E.T. choose
// between the streaming flash operator and the full/partial on-the-fly
// operators as the sequence grows, and see the shared-memory constraints
// (Eq. 6 for OTF, the Br×Bc tile for flash) force degraded variants on a
// hypothetical device with a small scratchpad. A final section shows the
// forced override — the mechanism behind et_cli --attention — pinning
// each of the five operators regardless of shape.
//
//   $ ./examples/adaptive_attention
#include <cstdio>

#include "core/adaptive.hpp"
#include "gpusim/device.hpp"
#include "tensor/random.hpp"

namespace {

void sweep(et::gpusim::Device& dev, const char* title) {
  et::core::AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 3);

  std::printf("\n%s (shared memory per CTA: %zu KB)\n", title,
              dev.spec().shared_mem_per_cta_bytes / 1024);
  std::printf("%8s  %14s  %6s  %13s  %6s  %12s\n", "seq_len", "Eq.6 bytes",
              "fits?", "flash bytes", "fits?", "chosen impl");
  et::core::AdaptivePolicy policy;
  policy.auto_tune = true;  // decide by replaying the latency model
  for (std::size_t seq = 64; seq <= 512; seq += 64) {
    cfg.seq_len = seq;
    et::tensor::MatrixF x(seq, cfg.d_model);
    const std::size_t otf_bytes = et::core::otf_shared_bytes(cfg);
    // Seq-independent by design: the Br×Bc tile never grows with seq_len.
    const std::size_t flash_bytes = et::core::flash_shared_bytes(cfg);
    const auto impl = et::core::choose_attention_impl(dev, x, w, cfg, policy);
    std::printf("%8zu  %14zu  %6s  %13zu  %6s  %12s\n", seq, otf_bytes,
                dev.fits_shared(otf_bytes) ? "yes" : "NO", flash_bytes,
                dev.fits_shared(flash_bytes) ? "yes" : "NO",
                std::string(to_string(impl)).c_str());
  }
}

// The forced override: pin every operator in turn on one shape. This is
// what et_cli --attention and the bench ablations go through — selection
// is bypassed, but the degradation chain still guards the launch.
void forced_demo(et::gpusim::Device& dev) {
  et::core::AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.seq_len = 256;
  cfg.precision = et::numeric::Precision::kPureFp16;
  const auto w = et::core::make_dense_weights(cfg, 3);
  et::tensor::MatrixF x(cfg.seq_len, cfg.d_model);

  std::printf("\nforced override (seq_len 256 on %s)\n",
              dev.spec().name.c_str());
  constexpr et::core::AttentionImpl kAll[] = {
      et::core::AttentionImpl::kModular, et::core::AttentionImpl::kFused,
      et::core::AttentionImpl::kOtf, et::core::AttentionImpl::kPartialOtf,
      et::core::AttentionImpl::kFlash};
  for (const auto impl : kAll) {
    et::core::AdaptivePolicy policy;
    policy.forced = impl;
    const auto chosen = et::core::choose_attention_impl(dev, x, w, cfg,
                                                        policy);
    std::printf("  forced=%-11s -> runs %s\n",
                std::string(to_string(impl)).c_str(),
                std::string(to_string(chosen)).c_str());
  }
}

}  // namespace

int main(int, char**) {
  std::printf("E.T. adaptive attention dispatch\n");

  et::gpusim::Device v100(et::gpusim::v100s());
  sweep(v100, "V100S (96 KB shared memory)");

  // A hypothetical accelerator with a tiny scratchpad: neither the Eq. 6
  // score row nor the flash Br×Bc tile can be staged, so the dispatcher
  // must fall back to the partial variant even at short sequences.
  et::gpusim::DeviceSpec tiny = et::gpusim::v100s();
  tiny.name = "tiny-scratchpad accelerator";
  tiny.shared_mem_per_cta_bytes = 4 * 1024;
  et::gpusim::Device small(tiny);
  sweep(small, "hypothetical 4 KB scratchpad");

  // An A100 for the §7 discussion: more shared memory and bandwidth shift
  // the crossover.
  et::gpusim::Device a100(et::gpusim::a100());
  sweep(a100, "A100 (164 KB shared memory)");

  forced_demo(v100);
  return 0;
}
