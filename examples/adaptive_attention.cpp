// Sequence-length-aware dispatch (§3.2) in action: watch E.T. choose
// between the full and partial on-the-fly operators as the sequence grows,
// and see the Eq. 6 shared-memory constraint force the partial variant on
// a hypothetical device with a small scratchpad.
//
//   $ ./examples/adaptive_attention
#include <cstdio>

#include "core/adaptive.hpp"
#include "gpusim/device.hpp"
#include "tensor/random.hpp"

namespace {

void sweep(et::gpusim::Device& dev, const char* title) {
  et::core::AttentionConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.precision = et::numeric::Precision::kPureFp16;
  cfg.causal_mask = false;
  const auto w = et::core::make_dense_weights(cfg, 3);

  std::printf("\n%s (shared memory per CTA: %zu KB)\n", title,
              dev.spec().shared_mem_per_cta_bytes / 1024);
  std::printf("%8s  %14s  %10s  %12s\n", "seq_len", "Eq.6 bytes", "fits?",
              "chosen impl");
  et::core::AdaptivePolicy policy;
  policy.auto_tune = true;  // decide by replaying the latency model
  for (std::size_t seq = 64; seq <= 512; seq += 64) {
    cfg.seq_len = seq;
    et::tensor::MatrixF x(seq, cfg.d_model);
    const std::size_t bytes = et::core::otf_shared_bytes(cfg);
    const auto impl = et::core::choose_attention_impl(dev, x, w, cfg, policy);
    std::printf("%8zu  %14zu  %10s  %12s\n", seq, bytes,
                dev.fits_shared(bytes) ? "yes" : "NO",
                std::string(to_string(impl)).c_str());
  }
}

}  // namespace

int main(int, char**) {
  std::printf("E.T. adaptive attention dispatch\n");

  et::gpusim::Device v100(et::gpusim::v100s());
  sweep(v100, "V100S (96 KB shared memory)");

  // A hypothetical accelerator with a tiny scratchpad: the full OTF
  // operator cannot stage its score row, so the dispatcher must fall back
  // to the partial variant even at short sequences.
  et::gpusim::DeviceSpec tiny = et::gpusim::v100s();
  tiny.name = "tiny-scratchpad accelerator";
  tiny.shared_mem_per_cta_bytes = 4 * 1024;
  et::gpusim::Device small(tiny);
  sweep(small, "hypothetical 4 KB scratchpad");

  // An A100 for the §7 discussion: more shared memory and bandwidth shift
  // the crossover.
  et::gpusim::Device a100(et::gpusim::a100());
  sweep(a100, "A100 (164 KB shared memory)");
  return 0;
}
