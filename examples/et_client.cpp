// Minimal client for the et_cli --listen API server (docs/api.md):
// authenticate with a tenant key, submit one generation, stream the
// tokens to stdout.
//
//   $ ./examples/et_cli --listen 0 &          # prints the bound port
//   $ ./examples/et_client --port 40123 --key demo-interactive --prompt 3,7
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/client.hpp"

namespace {

void usage() {
  std::printf(
      "et_client — demo client for the et_cli --listen API server\n\n"
      "  --port P    server port on 127.0.0.1 (required)\n"
      "  --key K     tenant API key (default demo-interactive)\n"
      "  --model M   served model name (default: server default)\n"
      "  --prompt L  comma-separated prompt token ids (default 0)\n"
      "  --tokens N  tokens to generate (default 8)\n");
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool parse_prompt(const std::string& s, std::vector<std::int32_t>& out) {
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    std::uint64_t v = 0;
    if (!parse_u64(tok, v)) return false;
    out.push_back(static_cast<std::int32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t port = 0;
  std::string key = "demo-interactive";
  std::string model;
  std::vector<std::int32_t> prompt;
  std::uint64_t tokens = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, port) || port == 0 || port > 65535) {
        std::fprintf(stderr, "bad --port value\n");
        return 2;
      }
    } else if (arg == "--key") {
      const char* v = next();
      if (v == nullptr) return 2;
      key = v;
    } else if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return 2;
      model = v;
    } else if (arg == "--prompt") {
      const char* v = next();
      if (v == nullptr || !parse_prompt(v, prompt)) {
        std::fprintf(stderr, "bad --prompt value (want t1,t2,...)\n");
        return 2;
      }
    } else if (arg == "--tokens") {
      const char* v = next();
      if (v == nullptr || !parse_u64(v, tokens)) {
        std::fprintf(stderr, "bad --tokens value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "--port is required (see --help)\n");
    return 2;
  }
  if (prompt.empty()) prompt.push_back(0);

  try {
    et::net::Client client;
    client.connect(static_cast<std::uint16_t>(port));
    const auto hello = client.hello(key);
    if (!hello || hello->type != et::net::FrameType::kHelloOk) {
      std::fprintf(stderr, "auth failed: %s\n",
                   hello ? hello->text.c_str()
                         : client.error_detail().c_str());
      return 1;
    }
    std::printf("authenticated as tenant '%s'\n", hello->text.c_str());

    client.submit(1, model, prompt, static_cast<std::uint32_t>(tokens));
    for (;;) {
      const auto f = client.next();
      if (!f) {
        std::fprintf(stderr, "connection lost: %s\n",
                     client.error_detail().c_str());
        return 1;
      }
      switch (f->type) {
        case et::net::FrameType::kToken:
          std::printf("token[%u] = %d\n", f->index, f->token);
          break;
        case et::net::FrameType::kDone:
          std::printf("done: %u token(s), stop=%s\n", f->index,
                      std::string(to_string(
                          static_cast<et::nn::StopReason>(f->code)))
                          .c_str());
          return 0;
        case et::net::FrameType::kReject:
          std::fprintf(stderr, "rejected: %s (%s)\n",
                       std::string(to_string(
                           static_cast<et::net::NetStatus>(f->code)))
                           .c_str(),
                       f->text.c_str());
          return 1;
        case et::net::FrameType::kError:
          std::fprintf(stderr, "protocol error: %s\n", f->text.c_str());
          return 1;
        default:
          break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
