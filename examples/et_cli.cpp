// Command-line latency explorer: query any (model, pipeline, sequence
// length, pruning strategy/ratio, device) combination and get the modeled
// latency and an optional kernel profile — the tool a performance engineer
// would reach for before committing to a deployment configuration.
//
//   $ ./examples/et_cli --model bert_base --pipeline et --seq 128 \
//       --strategy attention-aware --ratio 0.7 --device a100 --profile
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "core/adaptive.hpp"
#include "core/block_allocator.hpp"
#include "core/weights.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/trace_export.hpp"
#include "net/server.hpp"
#include "nn/batched_generation.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"
#include "sparse/formats.hpp"
#include "sparse/mask.hpp"
#include "train/model.hpp"

namespace {

// SIGINT/SIGTERM request a graceful drain (finish in-flight work within
// the --drain-ticks budget, then exit 0) instead of aborting mid-tick.
volatile std::sig_atomic_t g_signal = 0;
extern "C" void handle_stop_signal(int) { g_signal = 1; }

void install_stop_signals() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

struct Args {
  std::string model = "bert_base";
  std::string pipeline = "et";
  std::string strategy = "none";
  // E.T. attention operator: a name core::from_string accepts pins
  // adaptive.forced; "auto" leaves selection to choose_attention_impl.
  // Distinct from --strategy, which picks the *pruning* strategy.
  std::string attention = "auto";
  std::string device = "v100s";
  std::size_t seq = 128;
  std::size_t batch = 0;    // > 0: batched-generation serving demo
  std::size_t tokens = 16;  // tokens per sequence in serving modes
  // Decode-path weight layout for --serve/--batch/--listen: the cached
  // dense path, the pre-computed W_VO fold (§3.1), attention-aware pruned
  // formats (condensed-V row-pruned W_V + tile-pruned W_Q), or per-channel
  // INT8 GEMMs over the dense materialization (docs/quantization.md).
  et::nn::WeightFormat weights_layout = et::nn::WeightFormat::kDense;
  // Paged-KV storage precision for the serving modes: fp32 (lossless) or
  // int8 with per-row scales (~4× smaller KV blocks, bounded decode
  // error — docs/quantization.md).
  et::core::KvPrecision kv_precision = et::core::KvPrecision::kFp32;
  bool kv_precision_given = false;  // flag only applies to serving modes
  std::size_t threads = 1;  // ExecContext thread-pool size
  double ratio = 0.0;
  bool profile = false;
  bool json = false;
  bool help = false;
  std::string trace;         // chrome-trace output path
  bool inject_given = false;
  std::string inject_fault;  // fault-injection spec (see usage)

  // --serve: request-level serving runtime (docs/serving.md).
  bool serve = false;
  std::size_t requests = 8;      // total requests in the arrival script
  std::size_t queue_cap = 16;    // bounded admission queue
  std::size_t arrive = 0;        // requests arriving per tick; 0 = all at t0
  std::size_t deadline = 0;      // per-request total budget (ticks); 0 = none
  std::size_t queue_budget = 0;  // per-request queue budget (ticks); 0 = none
  std::size_t retries = 0;       // per-request kernel-fault retry budget
  std::size_t backoff_ticks = 0; // ticks between a fault and re-admission
  bool backoff_given = false;    // --backoff-ticks without --retries is an error
  bool preempt = true;           // priority preemption with recompute-resume

  // --listen: the network API server (docs/api.md).
  bool listen_given = false;
  std::size_t listen_port = 0;       // 0 = ephemeral, printed at startup
  std::size_t drain_ticks = 64;      // graceful-shutdown drain budget
  bool allow_unchecksummed = false;  // accept legacy ETW1 checkpoints
};

/// Arm the device's fault injector from a CLI spec:
///   kernel=<substr>   fault every launch whose name contains <substr>
///   nth=<N>           fault the Nth launch (0-based)
///   alloc=<bytes>     fault launches requesting > <bytes> shared mem/CTA
///   random=<frac>[:seed]  fault a seeded random fraction of launches
/// Returns false (after printing an error) on a malformed spec.
/// Whole-string unsigned parse; returns false on empty or trailing junk
/// so "alloc=abc" is rejected instead of silently arming threshold 0.
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool parse_fraction(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && out >= 0.0 && out <= 1.0;
}

bool arm_from_spec(et::gpusim::FaultInjector& inj, const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    std::fprintf(stderr, "bad --inject-fault spec '%s' (want key=value)\n",
                 spec.c_str());
    return false;
  }
  const std::string key = spec.substr(0, eq);
  const std::string val = spec.substr(eq + 1);
  std::uint64_t n = 0;
  if (key == "kernel") {
    inj.arm_kernel(val);
  } else if (key == "nth") {
    if (!parse_u64(val, n)) {
      std::fprintf(stderr, "bad --inject-fault nth '%s' (want a number)\n",
                   val.c_str());
      return false;
    }
    inj.arm_nth_launch(n);
  } else if (key == "alloc") {
    if (!parse_u64(val, n)) {
      std::fprintf(stderr, "bad --inject-fault alloc '%s' (want bytes)\n",
                   val.c_str());
      return false;
    }
    inj.arm_alloc_above(n);
  } else if (key == "random") {
    const auto colon = val.find(':');
    double frac = 0.0;
    if (!parse_fraction(val.substr(0, colon), frac)) {
      std::fprintf(stderr,
                   "bad --inject-fault random '%s' (want a fraction in "
                   "[0, 1])\n",
                   val.c_str());
      return false;
    }
    std::uint64_t seed = 0;
    if (colon != std::string::npos &&
        !parse_u64(val.substr(colon + 1), seed)) {
      std::fprintf(stderr, "bad --inject-fault seed in '%s'\n", val.c_str());
      return false;
    }
    inj.arm_random(frac, seed);
  } else {
    std::fprintf(stderr, "unknown --inject-fault kind '%s'\n", key.c_str());
    return false;
  }
  return true;
}

/// Strict CLI parsing: every error names the offending token on stderr
/// and fails the parse (main exits 2) — a typo'd flag or a junk value
/// must never be silently dropped or read as zero.
bool parse(int argc, char** argv, Args& a) {
  bool ok = true;
  int i = 1;
  // Value fetch for flags that require one; missing value = parse error.
  const auto next = [&](const std::string& flag, std::string& out) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      ok = false;
      return false;
    }
    out = argv[++i];
    return true;
  };
  const auto next_size = [&](const std::string& flag, std::size_t& out) {
    std::string v;
    if (!next(flag, v)) return;
    std::uint64_t n = 0;
    if (!parse_u64(v, n)) {
      std::fprintf(stderr, "bad value for %s: '%s' (want an unsigned integer)\n",
                   flag.c_str(), v.c_str());
      ok = false;
      return;
    }
    out = static_cast<std::size_t>(n);
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (arg == "--model") { if (next(arg, v)) a.model = v; }
    else if (arg == "--pipeline") { if (next(arg, v)) a.pipeline = v; }
    else if (arg == "--strategy") { if (next(arg, v)) a.strategy = v; }
    else if (arg == "--attention") {
      if (next(arg, v)) {
        if (v != "auto" && !et::core::from_string(v)) {
          std::fprintf(stderr,
                       "bad value for --attention: '%s' (want modular | "
                       "fused | otf | partial_otf | flash | auto)\n",
                       v.c_str());
          ok = false;
        } else {
          a.attention = v;
        }
      }
    }
    else if (arg == "--device") { if (next(arg, v)) a.device = v; }
    else if (arg == "--seq") next_size(arg, a.seq);
    else if (arg == "--batch") next_size(arg, a.batch);
    else if (arg == "--tokens") next_size(arg, a.tokens);
    else if (arg == "--threads") next_size(arg, a.threads);
    else if (arg == "--requests") next_size(arg, a.requests);
    else if (arg == "--queue-cap") next_size(arg, a.queue_cap);
    else if (arg == "--arrive") next_size(arg, a.arrive);
    else if (arg == "--deadline") next_size(arg, a.deadline);
    else if (arg == "--queue-budget") next_size(arg, a.queue_budget);
    else if (arg == "--retries") next_size(arg, a.retries);
    else if (arg == "--backoff-ticks") {
      a.backoff_given = true;
      next_size(arg, a.backoff_ticks);
    }
    else if (arg == "--preempt") {
      if (next(arg, v)) {
        if (v != "on" && v != "off") {
          std::fprintf(stderr,
                       "bad value for --preempt: '%s' (want on | off)\n",
                       v.c_str());
          ok = false;
        } else {
          a.preempt = v == "on";
        }
      }
    }
    else if (arg == "--ratio") {
      if (next(arg, v)) {
        char* end = nullptr;
        a.ratio = std::strtod(v.c_str(), &end);
        if (v.empty() || end != v.c_str() + v.size() || a.ratio < 0.0 ||
            a.ratio >= 1.0) {
          std::fprintf(stderr,
                       "bad value for --ratio: '%s' (want a number in [0, 1))\n",
                       v.c_str());
          ok = false;
        }
      }
    }
    else if (arg == "--weights") {
      if (next(arg, v)) {
        const auto f = et::nn::from_string(v);
        if (!f) {
          std::fprintf(stderr,
                       "bad value for --weights: '%s' (want dense | "
                       "precomputed | pruned | int8)\n",
                       v.c_str());
          ok = false;
        } else {
          a.weights_layout = *f;
        }
      }
    }
    else if (arg == "--kv-precision") {
      if (next(arg, v)) {
        const auto p = et::core::kv_precision_from_string(v);
        if (!p) {
          std::fprintf(stderr,
                       "bad value for --kv-precision: '%s' (want fp32 | "
                       "int8)\n",
                       v.c_str());
          ok = false;
        } else {
          a.kv_precision = *p;
          a.kv_precision_given = true;
        }
      }
    }
    else if (arg == "--serve") a.serve = true;
    else if (arg == "--listen") {
      a.listen_given = true;
      next_size(arg, a.listen_port);
      if (ok && a.listen_port > 65535) {
        std::fprintf(stderr, "bad value for --listen: port %zu > 65535\n",
                     a.listen_port);
        ok = false;
      }
    }
    else if (arg == "--drain-ticks") next_size(arg, a.drain_ticks);
    else if (arg == "--allow-unchecksummed") a.allow_unchecksummed = true;
    else if (arg == "--profile") a.profile = true;
    else if (arg == "--json") a.json = true;
    else if (arg == "--trace") { if (next(arg, v)) a.trace = v; }
    else if (arg == "--inject-fault") {
      if (next(arg, v)) {
        a.inject_given = true;
        a.inject_fault = v;
      }
    }
    else if (arg == "--help" || arg == "-h") a.help = true;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      ok = false;
    }
  }
  // Cross-flag validation: a backoff without a retry budget would never
  // apply (no fault is ever requeued), so reject it loudly instead of
  // letting the flag silently do nothing.
  if (ok && a.backoff_given && a.retries == 0) {
    std::fprintf(stderr,
                 "--backoff-ticks requires --retries N with N > 0\n");
    ok = false;
  }
  // --kv-precision selects the paged KV pool's storage precision, which
  // only the serving modes own — outside them the flag would silently do
  // nothing.
  if (ok && a.kv_precision_given && !a.serve && a.batch == 0 &&
      !a.listen_given) {
    std::fprintf(stderr,
                 "--kv-precision requires a serving mode (--serve, --batch N "
                 "or --listen)\n");
    ok = false;
  }
  return ok;
}

void usage() {
  std::printf(
      "et_cli — modeled-latency explorer for the E.T. reproduction\n\n"
      "  --model     transformer | bert_base | distilbert | bert_large\n"
      "  --pipeline  pytorch | tensorrt | fastertransformer | et\n"
      "  --strategy  none | irregular | column | tile | attention-aware\n"
      "  --attention modular | fused | otf | partial_otf | flash | auto\n"
      "              pin the E.T. attention operator (default auto: the\n"
      "              adaptive dispatch picks; docs/attention.md). Distinct\n"
      "              from --strategy, which selects the pruning strategy.\n"
      "              Launch-time faults still degrade down the chain\n"
      "  --ratio     pruning ratio in [0, 1)          (default 0)\n"
      "  --seq       sequence length                  (default 128)\n"
      "  --batch N   serving demo: decode N sequences through the\n"
      "              slot-based batched scheduler (see docs/serving.md);\n"
      "              under --serve, N is the slot count (default 4, cap 8)\n"
      "  --tokens T  tokens per sequence in serving modes (default 16)\n"
      "  --weights   dense | precomputed | pruned | int8  (default dense)\n"
      "              decode-path weight layout for --serve/--batch/--listen:\n"
      "              'precomputed' folds W_V·W_O into the condensed W_VO\n"
      "              block (smaller KV V-plane, no out-projection);\n"
      "              'pruned' deploys a condensable row-pruned W_V plus a\n"
      "              tile-pruned W_Q; both need dense base projections\n"
      "              (drop --strategy/--ratio). 'int8' runs every decode\n"
      "              GEMM as a per-channel INT8 kernel over the dense\n"
      "              materialization (docs/quantization.md)\n"
      "  --kv-precision fp32 | int8               (default fp32)\n"
      "              paged-KV storage precision for the serving modes:\n"
      "              'int8' stores K/V rows quantized with per-row scales\n"
      "              (~4x smaller blocks, bounded decode error); needs\n"
      "              --serve, --batch or --listen\n"
      "  --threads N run kernels on an N-thread ExecContext pool; output\n"
      "              is bit-identical at every N (docs/threading.md)\n"
      "  --device    v100s | a100                     (default v100s)\n"
      "  --json      machine-readable output; serving-demo field names\n"
      "              match bench/ablation_batching --json\n"
      "  --serve     request-level serving runtime: scripted arrivals\n"
      "              through the continuous-batching InferenceServer with\n"
      "              admission control and a metrics snapshot; --json field\n"
      "              names match bench/ablation_serving rows\n"
      "  --listen PORT     network API server on 127.0.0.1:PORT (0 picks an\n"
      "                    ephemeral port, printed at startup); demo tenants\n"
      "                    demo-interactive / demo-normal / demo-bulk, model\n"
      "                    'demo' v1 from the registry (docs/api.md). SIGINT/\n"
      "                    SIGTERM drains in flight work and exits 0\n"
      "  --drain-ticks N   graceful-shutdown drain budget for --serve and\n"
      "                    --listen: ticks to let in-flight requests finish\n"
      "                    before cancelling the rest (default 64)\n"
      "  --allow-unchecksummed\n"
      "                    let the model registry load legacy ETW1 (no\n"
      "                    per-section CRC) checkpoints\n"
      "  --requests N      total requests in the arrival script (default 8);\n"
      "                    0 = unbounded, serve until SIGINT/SIGTERM\n"
      "  --queue-cap N     bounded admission queue; overflow is rejected\n"
      "                    with backpressure (default 16)\n"
      "  --arrive R        R requests arrive per tick; 0 = all at tick 0\n"
      "                    (default 0)\n"
      "  --deadline T      per-request end-to-end budget in ticks; 0 = none\n"
      "  --queue-budget T  per-request queue-wait budget in ticks; 0 = none\n"
      "  --retries N       per-request kernel-fault retry budget; a faulted\n"
      "                    request is requeued and recomputed up to N times\n"
      "                    before retiring as kernel_fault (default 0)\n"
      "  --backoff-ticks T ticks a faulted request sits out before it is\n"
      "                    eligible for re-admission (needs --retries > 0)\n"
      "  --preempt on|off  priority preemption with recompute-resume\n"
      "                    (docs/robustness.md; default on)\n"
      "  --profile   print the per-kernel nvprof-style table\n"
      "  --trace F   write a chrome://tracing JSON timeline to F\n"
      "  --inject-fault SPEC\n"
      "              arm deterministic fault injection and show recovery.\n"
      "              SPEC: kernel=<substr> | nth=<N> | alloc=<bytes> |\n"
      "                    random=<frac>[:seed]\n"
      "              e.g. --inject-fault kernel=flash_attention with the et\n"
      "              pipeline demos the flash->otf fallback chain\n");
}

/// Build the two-layer decode stack --serve/--batch run, in the layout
/// --weights selects. kDense strips any fold the strategy path left
/// behind (the cached dense decode). kPrecomputed folds W_V·W_O into a
/// per-head condensed W_VO block keeping d/(2H) output columns per head;
/// kPruned deploys a balanced row-pruned W_V (half of each head's rows,
/// so the KV cache stores the condensed V) plus a checkerboard
/// tile-pruned W_Q. Those two rebuild from the dense projection matrices,
/// so they refuse (with an error naming the flag) when --strategy/--ratio
/// already replaced those with pruned formats. kInt8 keeps whatever
/// layout the strategy path deployed — the nn::Model handle quantizes
/// each weight's dense materialization at construction.
bool build_serving_layers(const Args& args, const et::nn::ModelConfig& model,
                          const et::nn::EncoderWeights& weights,
                          std::vector<et::nn::EncoderWeights>& layers) {
  layers.assign(2, weights);
  for (auto& l : layers) l.attn.vo = {};
  if (args.weights_layout == et::nn::WeightFormat::kDense ||
      args.weights_layout == et::nn::WeightFormat::kInt8) {
    return true;
  }

  const auto* wq = std::get_if<et::sparse::DenseWeight>(&weights.attn.wq);
  const auto* wv = std::get_if<et::sparse::DenseWeight>(&weights.attn.wv);
  const auto* wo = std::get_if<et::sparse::DenseWeight>(&weights.attn.wo);
  const std::size_t d = model.d_model;
  const std::size_t dk = d / model.num_heads;

  if (args.weights_layout == et::nn::WeightFormat::kPrecomputed) {
    if (wv == nullptr || wo == nullptr) {
      std::fprintf(stderr,
                   "--weights precomputed needs dense W_V/W_O to fold; drop "
                   "--strategy/--ratio\n");
      return false;
    }
    const std::size_t kept = dk / 2 > 0 ? dk / 2 : 1;
    std::vector<std::uint32_t> kept_cols(kept);
    for (std::size_t r = 0; r < kept; ++r) {
      kept_cols[r] = static_cast<std::uint32_t>(r);
    }
    for (auto& l : layers) {
      l.attn.vo = et::core::precompute_vo(wv->matrix(), wo->matrix(),
                                          model.num_heads, kept_cols);
    }
    return true;
  }

  // "pruned"
  if (wq == nullptr || wv == nullptr) {
    std::fprintf(stderr,
                 "--weights pruned needs dense W_Q/W_V to prune; drop "
                 "--strategy/--ratio\n");
    return false;
  }
  // Balanced per-head row pruning of W_V: keep the first half of every
  // head's d_k rows — the condensable shape the KV cache stores condensed.
  std::vector<std::uint32_t> kept_rows;
  for (std::size_t h = 0; h < model.num_heads; ++h) {
    for (std::size_t r = 0; r < dk / 2; ++r) {
      kept_rows.push_back(static_cast<std::uint32_t>(h * dk + r));
    }
  }
  // Checkerboard tile mask over W_Q (50% of the 16×16 tiles).
  et::sparse::Mask mask(d, d, 1);
  const std::size_t side = et::sparse::kTileSide;
  for (std::size_t tr = 0; tr < d / side; ++tr) {
    for (std::size_t tc = 0; tc < d / side; ++tc) {
      if ((tr + tc) % 2 == 0) continue;
      for (std::size_t r = 0; r < side; ++r) {
        for (std::size_t c = 0; c < side; ++c) {
          mask(tr * side + r, tc * side + c) = 0;
        }
      }
    }
  }
  for (auto& l : layers) {
    l.attn.wv =
        et::sparse::RowPrunedWeight::from_kept_rows(wv->matrix(), kept_rows);
    l.attn.wq = et::sparse::TilePrunedWeight::from_masked(wq->matrix(), mask);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr, "run with --help for usage\n");
    return 2;
  }
  if (args.help) {
    usage();
    return 0;
  }

  const et::nn::ModelConfig model =
      args.model == "transformer"   ? et::nn::transformer_wikitext()
      : args.model == "distilbert"  ? et::nn::distilbert()
      : args.model == "bert_large"  ? et::nn::bert_large()
                                    : et::nn::bert_base();
  const et::nn::Pipeline pipeline =
      args.pipeline == "pytorch"             ? et::nn::Pipeline::kModular
      : args.pipeline == "tensorrt"          ? et::nn::Pipeline::kTensorRT
      : args.pipeline == "fastertransformer" ? et::nn::Pipeline::kFasterTransformer
                                             : et::nn::Pipeline::kET;
  const et::gpusim::DeviceSpec spec =
      args.device == "a100" ? et::gpusim::a100() : et::gpusim::v100s();
  // "auto" keeps adaptive selection; anything else was validated by parse()
  // and pins the operator through AdaptivePolicy::forced (only the E.T.
  // pipeline consults the policy — baselines model fixed engines).
  const std::optional<et::core::AttentionImpl> forced_attention =
      args.attention == "auto" ? std::optional<et::core::AttentionImpl>{}
                               : et::core::from_string(args.attention);

  // Build weights: dense, or pruned through the requested strategy.
  et::nn::EncoderWeights weights;
  if (args.strategy == "none" || args.ratio <= 0.0) {
    weights = et::nn::make_dense_encoder_weights(model, 1);
  } else {
    const et::pruning::Strategy strategy =
        args.strategy == "irregular" ? et::pruning::Strategy::kIrregular
        : args.strategy == "column"  ? et::pruning::Strategy::kColumn
        : args.strategy == "tile"    ? et::pruning::Strategy::kTile
                                     : et::pruning::Strategy::kAttentionAware;
    et::train::TrainModelConfig tcfg;
    tcfg.vocab_size = 64;
    tcfg.d_model = model.d_model;
    tcfg.num_heads = model.num_heads;
    tcfg.d_ff = model.d_ff;
    tcfg.num_layers = 1;
    et::train::TransformerModel shapes(tcfg, 2);
    const auto masks = et::pruning::compute_layer_masks(shapes.layers()[0],
                                                        strategy, args.ratio);
    weights = et::pruning::deploy_layer(shapes.layers()[0], masks, strategy);
  }

  et::gpusim::Device dev(spec);
  et::core::ExecContext ctx(dev, args.threads == 0 ? 1 : args.threads);
  dev.set_traffic_only(true);
  if (args.inject_given &&
      !arm_from_spec(dev.fault_injector(), args.inject_fault)) {
    return 2;
  }
  // Explicit non-dense formats are validated (or, for int8, applied) by
  // the nn::Model handle against the deployed weights. kDense stays
  // nullopt-derived: under --strategy the "dense" layout legitimately
  // carries pruned formats, and an explicit kDense request would refuse
  // them.
  const std::optional<et::nn::WeightFormat> weight_format =
      args.weights_layout == et::nn::WeightFormat::kDense
          ? std::optional<et::nn::WeightFormat>{}
          : std::optional<et::nn::WeightFormat>(args.weights_layout);
  if (args.listen_given) {
    // Network API server (docs/api.md): the demo model registered as
    // ("demo", v1) in a ModelRegistry, served to the three demo tenants
    // over the frame protocol. Runs until SIGINT/SIGTERM, then drains.
    std::vector<et::nn::EncoderWeights> layers;
    if (!build_serving_layers(args, model, weights, layers)) return 2;
    auto gopt =
        et::nn::options_for(pipeline, model, args.seq, /*causal=*/true);
    gopt.adaptive.forced = forced_attention;

    et::serving::ModelRegistry registry(args.allow_unchecksummed);
    registry.add("demo", 1, std::move(layers), gopt, args.seq, 257,
                 weight_format);

    et::net::ApiServerConfig ncfg;
    ncfg.port = static_cast<std::uint16_t>(args.listen_port);
    ncfg.default_model = "demo";
    const std::size_t requested = args.batch == 0 ? 4 : args.batch;
    ncfg.engine.max_batch = requested < 8 ? requested : 8;
    ncfg.engine.queue_capacity = args.queue_cap;
    ncfg.engine.enable_preemption = args.preempt;
    ncfg.engine.kv.precision = args.kv_precision;

    et::net::ApiServer api(ncfg, et::net::TenantTable::demo(), registry);
    api.serve_model("demo");
    // Handlers go in before the readiness line is printed: a script
    // that reads the line and immediately signals must hit the graceful
    // path, never the default-action window.
    install_stop_signals();
    api.start(ctx);
    // The startup line is the readiness handshake scripts wait for.
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(api.port()));
    std::fflush(stdout);
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const et::net::DrainResult dr = api.shutdown(args.drain_ticks);
    if (args.json) {
      // Config echo first (the same weights/kv_precision keys the other
      // serving modes carry), then the metrics snapshot.
      std::printf("{\n  \"weights\": \"%s\", \"kv_precision\": \"%s\",\n"
                  "  \"metrics\": %s\n}\n",
                  std::string(et::nn::to_string(args.weights_layout)).c_str(),
                  std::string(et::core::to_string(args.kv_precision)).c_str(),
                  api.metrics_json(2).c_str());
    } else {
      std::printf("drained in %zu tick(s), %zu request(s) cancelled\n",
                  dr.drain_ticks_used, dr.cancelled);
    }
    return 0;
  }

  if (args.serve) {
    // Request-level serving: a scripted arrival sequence through the
    // continuous-batching InferenceServer (docs/serving.md) — two decoder
    // layers at the chosen model's width, --batch slots (default 4, cap
    // 8), bounded queue, optional per-request deadlines.
    std::vector<et::nn::EncoderWeights> layers;
    if (!build_serving_layers(args, model, weights, layers)) return 2;
    auto gopt =
        et::nn::options_for(pipeline, model, args.seq, /*causal=*/true);
    gopt.adaptive.forced = forced_attention;
    const std::size_t requested = args.batch == 0 ? 4 : args.batch;
    const std::size_t slots = requested < 8 ? requested : 8;
    const et::nn::Model handle(&layers, gopt, args.tokens + 1, weight_format);
    et::serving::ServerConfig scfg;
    scfg.max_batch = slots;
    scfg.queue_capacity = args.queue_cap;
    scfg.enable_preemption = args.preempt;
    scfg.kv.precision = args.kv_precision;
    et::serving::InferenceServer server(handle, scfg);

    std::vector<et::serving::RequestHandle> handles;
    std::size_t submitted = 0;
    const auto submit_some = [&](std::size_t n) {
      for (std::size_t k = 0;
           k < n && (args.requests == 0 || submitted < args.requests); ++k) {
        et::serving::Request req;
        req.first_token = static_cast<std::int32_t>(submitted);
        req.max_new_tokens = args.tokens;
        req.embed = [&model](std::int32_t, std::size_t) {
          return et::tensor::MatrixF(1, model.d_model);
        };
        req.select = [](const et::tensor::MatrixF&) {
          return std::int32_t{1};
        };
        if (args.deadline > 0) req.total_budget_ticks = args.deadline;
        if (args.queue_budget > 0) req.queue_budget_ticks = args.queue_budget;
        req.retry_budget = args.retries;
        req.retry_backoff_ticks = args.backoff_ticks;
        handles.push_back(server.submit(std::move(req)));
        ++submitted;
      }
    };
    // Arrival script: everything at tick 0, or --arrive per tick — the
    // offered-load knob bench/ablation_serving sweeps. --requests 0 keeps
    // serving until a signal. On SIGINT/SIGTERM arrivals stop and the
    // server drains: in-flight requests get --drain-ticks more ticks to
    // finish, then the remainder is cancelled — never an abort mid-tick.
    install_stop_signals();
    if (args.arrive == 0) submit_some(args.requests);
    const bool unbounded = args.requests == 0;
    std::size_t drain_used = 0;
    bool draining = false;
    for (;;) {
      if (g_signal != 0) draining = true;
      const bool more_arrivals =
          !draining && (unbounded || submitted < args.requests);
      if (!more_arrivals && server.idle()) break;
      if (draining) {
        if (drain_used >= args.drain_ticks) {
          for (const auto& h : handles) (void)server.cancel(h);
        }
        ++drain_used;
      }
      server.tick(ctx);
      if (more_arrivals) submit_some(args.arrive);
    }

    const auto fields = server.metrics().scalars();
    if (args.json) {
      // Config fields first, then every MetricsRegistry scalar — the
      // exact name/value list bench/ablation_serving rows use, so the
      // two outputs can never drift apart — then the full snapshot with
      // histogram buckets.
      std::printf("{\n");
      std::printf("  \"model\": \"%s\", \"pipeline\": \"%s\", \"device\": "
                  "\"%s\",\n",
                  model.name.c_str(), args.pipeline.c_str(),
                  spec.name.c_str());
      std::printf("  \"requests\": %zu, \"slots\": %zu, \"queue_capacity\": "
                  "%zu, \"offered_per_tick\": %zu, \"threads\": %zu, "
                  "\"weights\": \"%s\", \"kv_precision\": \"%s\", "
                  "\"attention\": \"%s\",\n",
                  args.requests, slots, args.queue_cap, args.arrive,
                  ctx.threads(),
                  std::string(et::nn::to_string(handle.weight_layout())).c_str(),
                  std::string(et::core::to_string(args.kv_precision)).c_str(),
                  args.attention.c_str());
      std::printf("  \"retries\": %zu, \"backoff_ticks\": %zu, "
                  "\"preempt\": %s,\n",
                  args.retries, args.backoff_ticks,
                  args.preempt ? "true" : "false");
      std::printf("  \"time_us\": %.1f,\n", dev.total_time_us());
      for (const auto& f : fields) {
        std::printf("  \"%s\": %g,\n", f.name.c_str(), f.value);
      }
      std::printf("  \"metrics\": %s\n", server.metrics().json(0).c_str());
      std::printf("}\n");
      if (!args.trace.empty()) {
        et::gpusim::write_chrome_trace(args.trace, dev);
      }
      return 0;
    }
    std::printf("%s · %s · serving %zu request(s) on %zu slot(s), queue %zu "
                "· %s weights · %s kv · %s\n",
                model.name.c_str(), args.pipeline.c_str(), args.requests,
                slots, args.queue_cap,
                std::string(et::nn::to_string(handle.weight_layout())).c_str(),
                std::string(et::core::to_string(args.kv_precision)).c_str(),
                spec.name.c_str());
    if (args.arrive > 0) {
      std::printf("  offered load: %zu request(s)/tick\n", args.arrive);
    }
    const auto counter = [&](const char* name) {
      const auto* c = server.metrics().find_counter(name);
      return c != nullptr ? c->value() : 0;
    };
    std::printf("  %llu completed, %llu rejected, %llu expired over %zu "
                "ticks\n",
                static_cast<unsigned long long>(counter("requests_completed")),
                static_cast<unsigned long long>(counter("requests_rejected")),
                static_cast<unsigned long long>(counter("requests_expired")),
                server.now());
    std::printf("  %llu tokens in %.1f us (%.1f tokens/sec)\n",
                static_cast<unsigned long long>(counter("tokens_emitted")),
                dev.total_time_us(),
                dev.total_time_us() > 0.0
                    ? 1e6 * static_cast<double>(counter("tokens_emitted")) /
                          dev.total_time_us()
                    : 0.0);
    const auto hist_mean = [&](const char* name) {
      const auto* h = server.metrics().find_histogram(name);
      return h != nullptr ? h->mean() : 0.0;
    };
    std::printf("  mean queue wait %.1f ticks, ttft %.1f ticks, e2e %.1f "
                "ticks\n",
                hist_mean("queue_wait_ticks"), hist_mean("ttft_ticks"),
                hist_mean("e2e_ticks"));
    for (const auto& f : dev.fallback_log()) {
      std::printf("  recovered: %s -> %s after fault in '%s' (%s)\n",
                  f.from_impl.c_str(), f.to_impl.c_str(), f.kernel.c_str(),
                  f.cause.c_str());
    }
    if (args.profile) {
      std::printf("\n");
      print_report(std::cout, et::gpusim::profile(dev));
    }
    if (!args.trace.empty()) {
      et::gpusim::write_chrome_trace(args.trace, dev);
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  args.trace.c_str());
    }
    return 0;
  }

  if (args.batch > 0) {
    // Serving demo: decode N sequences through the slot-based batched
    // scheduler (docs/serving.md) — two decoder layers at the chosen
    // model's width, up to 8 slots, queue + backfill beyond that.
    std::vector<et::nn::EncoderWeights> layers;
    if (!build_serving_layers(args, model, weights, layers)) return 2;
    auto gopt =
        et::nn::options_for(pipeline, model, args.seq, /*causal=*/true);
    gopt.adaptive.forced = forced_attention;
    const std::size_t max_batch = args.batch < 8 ? args.batch : 8;
    const et::nn::Model handle(&layers, gopt, args.tokens + 1, weight_format);
    et::core::PagedKVOptions kv;
    kv.precision = args.kv_precision;
    et::nn::BatchedGenerationScheduler sched(handle, max_batch, kv);
    for (std::size_t i = 0; i < args.batch; ++i) {
      et::nn::GenerationRequest req;
      req.first_token = static_cast<std::int32_t>(i);
      req.max_new_tokens = args.tokens;
      req.embed = [&model](std::int32_t, std::size_t) {
        return et::tensor::MatrixF(1, model.d_model);
      };
      req.select = [](const et::tensor::MatrixF&) { return std::int32_t{1}; };
      (void)sched.submit(std::move(req));
    }
    const auto results = sched.run(ctx);

    std::size_t total_tokens = 0;
    for (const auto& r : results) total_tokens += r.tokens.size();
    if (args.json) {
      // One JSON object per run; scalar field names are identical to the
      // bench/ablation_batching --json row keys so serving dashboards can
      // consume either source unchanged.
      std::printf("{\n");
      std::printf("  \"model\": \"%s\", \"pipeline\": \"%s\", \"device\": "
                  "\"%s\",\n",
                  model.name.c_str(), args.pipeline.c_str(),
                  spec.name.c_str());
      std::printf("  \"batch\": %zu, \"threads\": %zu, \"slots\": %zu, "
                  "\"weights\": \"%s\", \"kv_precision\": \"%s\", "
                  "\"attention\": \"%s\",\n",
                  args.batch, ctx.threads(), max_batch,
                  std::string(et::nn::to_string(handle.weight_layout())).c_str(),
                  std::string(et::core::to_string(args.kv_precision)).c_str(),
                  args.attention.c_str());
      std::printf("  \"total_tokens\": %zu, \"ticks\": %zu, "
                  "\"batched_ticks\": %zu, \"per_slot_fallback_ticks\": "
                  "%zu,\n",
                  total_tokens, sched.ticks(), sched.batched_ticks(),
                  sched.per_slot_fallback_ticks());
      std::printf("  \"time_us\": %.1f, \"tokens_per_sec\": %.1f,\n",
                  dev.total_time_us(),
                  1e6 * static_cast<double>(total_tokens) /
                      dev.total_time_us());
      std::printf("  \"results\": [\n");
      for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("    {\"id\": %zu, \"tokens\": %zu, \"stop_reason\": "
                    "\"%s\", \"fault_kernel\": \"%s\"}%s\n",
                    i, results[i].tokens.size(),
                    std::string(to_string(results[i].stop_reason)).c_str(),
                    results[i].fault_kernel.c_str(),
                    i + 1 < results.size() ? "," : "");
      }
      std::printf("  ],\n");
      std::printf("  \"slot_time_us\": [");
      for (std::size_t s = 0; s < max_batch; ++s) {
        std::printf("%.1f%s", dev.time_us_for_slot(static_cast<int>(s)),
                    s + 1 < max_batch ? ", " : "");
      }
      std::printf("],\n");
      std::printf("  \"fallbacks\": %zu\n", dev.fallback_log().size());
      std::printf("}\n");
      if (!args.trace.empty()) {
        et::gpusim::write_chrome_trace(args.trace, dev);
      }
      return 0;
    }
    std::printf("%s · %s · serving %zu sequences on %zu slot(s) · %s "
                "weights · %s kv · %s\n",
                model.name.c_str(), args.pipeline.c_str(), args.batch,
                max_batch, std::string(et::nn::to_string(handle.weight_layout())).c_str(),
                std::string(et::core::to_string(args.kv_precision)).c_str(),
                spec.name.c_str());
    std::printf("  %zu tokens in %.1f us (%.1f tokens/sec), %zu ticks "
                "(%zu batched, %zu degraded to per-slot)\n",
                total_tokens, dev.total_time_us(),
                1e6 * static_cast<double>(total_tokens) / dev.total_time_us(),
                sched.ticks(), sched.batched_ticks(),
                sched.per_slot_fallback_ticks());
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("  seq %zu: %zu token(s), stop=%s", i,
                  results[i].tokens.size(),
                  std::string(to_string(results[i].stop_reason)).c_str());
      if (!results[i].fault_kernel.empty()) {
        std::printf(" (kernel '%s')", results[i].fault_kernel.c_str());
      }
      std::printf("\n");
    }
    for (std::size_t s = 0; s < max_batch; ++s) {
      std::printf("  slot %zu attention time: %.1f us\n", s,
                  dev.time_us_for_slot(static_cast<int>(s)));
    }
    for (const auto& f : dev.fallback_log()) {
      std::printf("  recovered: %s -> %s after fault in '%s' (%s)\n",
                  f.from_impl.c_str(), f.to_impl.c_str(), f.kernel.c_str(),
                  f.cause.c_str());
    }
    if (args.profile) {
      std::printf("\n");
      print_report(std::cout, et::gpusim::profile(dev));
    }
    if (!args.trace.empty()) {
      et::gpusim::write_chrome_trace(args.trace, dev);
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  args.trace.c_str());
    }
    return 0;
  }

  et::tensor::MatrixF x(args.seq, model.d_model);
  auto opt = et::nn::options_for(pipeline, model, args.seq);
  opt.adaptive.forced = forced_attention;
  try {
    (void)et::nn::encoder_forward(ctx, x, weights, opt);
  } catch (const et::gpusim::KernelFault& f) {
    // Only the E.T. pipeline routes attention through the resilient
    // adaptive dispatch; the baselines die on the first fault — which is
    // exactly the contrast this flag exists to demonstrate. E.T. itself
    // can still die when the rule also matches the modular baseline or a
    // kernel outside the attention operator (FFN, layernorm).
    if (pipeline == et::nn::Pipeline::kET) {
      std::fprintf(stderr,
                   "unrecovered kernel fault in '%s' (degradation chain "
                   "exhausted, or the fault is outside the attention "
                   "operator)\n",
                   f.kernel().c_str());
    } else {
      std::fprintf(stderr,
                   "unrecovered kernel fault in '%s' (pipeline '%s' has no "
                   "fallback chain)\n",
                   f.kernel().c_str(), args.pipeline.c_str());
    }
    return 1;
  }

  const double layer_us = dev.total_time_us();
  if (args.json) {
    std::printf("{\"model\": \"%s\", \"pipeline\": \"%s\", \"seq\": %zu, "
                "\"device\": \"%s\", \"threads\": %zu, \"ratio\": %.2f, "
                "\"attention\": \"%s\", \"layer_us\": %.1f, "
                "\"model_ms\": %.2f, \"kernels\": %zu}\n",
                model.name.c_str(), args.pipeline.c_str(), args.seq,
                spec.name.c_str(), ctx.threads(), args.ratio,
                args.attention.c_str(), layer_us,
                layer_us * static_cast<double>(model.num_layers) / 1e3,
                dev.launch_count());
    if (!args.trace.empty()) {
      et::gpusim::write_chrome_trace(args.trace, dev);
    }
    return 0;
  }
  std::printf("%s · %s · seq %zu · %s", model.name.c_str(),
              args.pipeline.c_str(), args.seq, spec.name.c_str());
  if (args.ratio > 0.0) {
    std::printf(" · %s @ %.0f%%", args.strategy.c_str(), 100 * args.ratio);
  }
  if (args.attention != "auto") {
    std::printf(" · %s attention", args.attention.c_str());
  }
  std::printf("\n  %.1f us / layer,  %.2f ms for the %zu-layer model,  "
              "%zu kernels\n",
              layer_us, layer_us * static_cast<double>(model.num_layers) / 1e3,
              model.num_layers, dev.launch_count());
  if (args.inject_given) {
    const auto& inj = dev.fault_injector();
    std::printf("  injected %zu fault(s) over %zu launch attempts\n",
                inj.faults_injected(), inj.launches_seen());
    for (const auto& f : dev.fallback_log()) {
      std::printf("  recovered: %s -> %s after fault in '%s' (%s)\n",
                  f.from_impl.c_str(), f.to_impl.c_str(), f.kernel.c_str(),
                  f.cause.c_str());
    }
    if (dev.fallback_log().empty() && inj.faults_injected() == 0) {
      std::printf("  no launch matched the armed fault rule\n");
    }
  }
  if (args.profile) {
    std::printf("\n");
    print_report(std::cout, et::gpusim::profile(dev));
  }
  if (!args.trace.empty()) {
    et::gpusim::write_chrome_trace(args.trace, dev);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                args.trace.c_str());
  }
  return 0;
}
