// Command-line latency explorer: query any (model, pipeline, sequence
// length, pruning strategy/ratio, device) combination and get the modeled
// latency and an optional kernel profile — the tool a performance engineer
// would reach for before committing to a deployment configuration.
//
//   $ ./examples/et_cli --model bert_base --pipeline et --seq 128 \
//       --strategy attention-aware --ratio 0.7 --device a100 --profile
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/trace_export.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "train/model.hpp"

namespace {

struct Args {
  std::string model = "bert_base";
  std::string pipeline = "et";
  std::string strategy = "none";
  std::string device = "v100s";
  std::size_t seq = 128;
  double ratio = 0.0;
  bool profile = false;
  bool help = false;
  std::string trace;  // chrome-trace output path
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--model") a.model = next();
    else if (arg == "--pipeline") a.pipeline = next();
    else if (arg == "--strategy") a.strategy = next();
    else if (arg == "--device") a.device = next();
    else if (arg == "--seq") a.seq = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ratio") a.ratio = std::atof(next());
    else if (arg == "--profile") a.profile = true;
    else if (arg == "--trace") a.trace = next();
    else if (arg == "--help" || arg == "-h") a.help = true;
    else std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
  }
  return a;
}

void usage() {
  std::printf(
      "et_cli — modeled-latency explorer for the E.T. reproduction\n\n"
      "  --model     transformer | bert_base | distilbert | bert_large\n"
      "  --pipeline  pytorch | tensorrt | fastertransformer | et\n"
      "  --strategy  none | irregular | column | tile | attention-aware\n"
      "  --ratio     pruning ratio in [0, 1)          (default 0)\n"
      "  --seq       sequence length                  (default 128)\n"
      "  --device    v100s | a100                     (default v100s)\n"
      "  --profile   print the per-kernel nvprof-style table\n"
      "  --trace F   write a chrome://tracing JSON timeline to F\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.help) {
    usage();
    return 0;
  }

  const et::nn::ModelConfig model =
      args.model == "transformer"   ? et::nn::transformer_wikitext()
      : args.model == "distilbert"  ? et::nn::distilbert()
      : args.model == "bert_large"  ? et::nn::bert_large()
                                    : et::nn::bert_base();
  const et::nn::Pipeline pipeline =
      args.pipeline == "pytorch"             ? et::nn::Pipeline::kModular
      : args.pipeline == "tensorrt"          ? et::nn::Pipeline::kTensorRT
      : args.pipeline == "fastertransformer" ? et::nn::Pipeline::kFasterTransformer
                                             : et::nn::Pipeline::kET;
  const et::gpusim::DeviceSpec spec =
      args.device == "a100" ? et::gpusim::a100() : et::gpusim::v100s();

  // Build weights: dense, or pruned through the requested strategy.
  et::nn::EncoderWeights weights;
  if (args.strategy == "none" || args.ratio <= 0.0) {
    weights = et::nn::make_dense_encoder_weights(model, 1);
  } else {
    const et::pruning::Strategy strategy =
        args.strategy == "irregular" ? et::pruning::Strategy::kIrregular
        : args.strategy == "column"  ? et::pruning::Strategy::kColumn
        : args.strategy == "tile"    ? et::pruning::Strategy::kTile
                                     : et::pruning::Strategy::kAttentionAware;
    et::train::TrainModelConfig tcfg;
    tcfg.vocab_size = 64;
    tcfg.d_model = model.d_model;
    tcfg.num_heads = model.num_heads;
    tcfg.d_ff = model.d_ff;
    tcfg.num_layers = 1;
    et::train::TransformerModel shapes(tcfg, 2);
    const auto masks = et::pruning::compute_layer_masks(shapes.layers()[0],
                                                        strategy, args.ratio);
    weights = et::pruning::deploy_layer(shapes.layers()[0], masks, strategy);
  }

  et::gpusim::Device dev(spec);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(args.seq, model.d_model);
  (void)et::nn::encoder_forward(
      dev, x, weights, et::nn::options_for(pipeline, model, args.seq));

  const double layer_us = dev.total_time_us();
  std::printf("%s · %s · seq %zu · %s", model.name.c_str(),
              args.pipeline.c_str(), args.seq, spec.name.c_str());
  if (args.ratio > 0.0) {
    std::printf(" · %s @ %.0f%%", args.strategy.c_str(), 100 * args.ratio);
  }
  std::printf("\n  %.1f us / layer,  %.2f ms for the %zu-layer model,  "
              "%zu kernels\n",
              layer_us, layer_us * static_cast<double>(model.num_layers) / 1e3,
              model.num_layers, dev.launch_count());
  if (args.profile) {
    std::printf("\n");
    print_report(std::cout, et::gpusim::profile(dev));
  }
  if (!args.trace.empty()) {
    et::gpusim::write_chrome_trace(args.trace, dev);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                args.trace.c_str());
  }
  return 0;
}
