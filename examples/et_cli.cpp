// Command-line latency explorer: query any (model, pipeline, sequence
// length, pruning strategy/ratio, device) combination and get the modeled
// latency and an optional kernel profile — the tool a performance engineer
// would reach for before committing to a deployment configuration.
//
//   $ ./examples/et_cli --model bert_base --pipeline et --seq 128 \
//       --strategy attention-aware --ratio 0.7 --device a100 --profile
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/trace_export.hpp"
#include "nn/batched_generation.hpp"
#include "nn/encoder.hpp"
#include "pruning/strategy.hpp"
#include "train/model.hpp"

namespace {

struct Args {
  std::string model = "bert_base";
  std::string pipeline = "et";
  std::string strategy = "none";
  std::string device = "v100s";
  std::size_t seq = 128;
  std::size_t batch = 0;    // > 0: batched-generation serving demo
  std::size_t tokens = 16;  // tokens per sequence in the serving demo
  std::size_t threads = 1;  // ExecContext thread-pool size
  double ratio = 0.0;
  bool profile = false;
  bool json = false;
  bool help = false;
  std::string trace;         // chrome-trace output path
  bool inject_given = false;
  std::string inject_fault;  // fault-injection spec (see usage)
};

/// Arm the device's fault injector from a CLI spec:
///   kernel=<substr>   fault every launch whose name contains <substr>
///   nth=<N>           fault the Nth launch (0-based)
///   alloc=<bytes>     fault launches requesting > <bytes> shared mem/CTA
///   random=<frac>[:seed]  fault a seeded random fraction of launches
/// Returns false (after printing an error) on a malformed spec.
/// Whole-string unsigned parse; returns false on empty or trailing junk
/// so "alloc=abc" is rejected instead of silently arming threshold 0.
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool parse_fraction(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && out >= 0.0 && out <= 1.0;
}

bool arm_from_spec(et::gpusim::FaultInjector& inj, const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    std::fprintf(stderr, "bad --inject-fault spec '%s' (want key=value)\n",
                 spec.c_str());
    return false;
  }
  const std::string key = spec.substr(0, eq);
  const std::string val = spec.substr(eq + 1);
  std::uint64_t n = 0;
  if (key == "kernel") {
    inj.arm_kernel(val);
  } else if (key == "nth") {
    if (!parse_u64(val, n)) {
      std::fprintf(stderr, "bad --inject-fault nth '%s' (want a number)\n",
                   val.c_str());
      return false;
    }
    inj.arm_nth_launch(n);
  } else if (key == "alloc") {
    if (!parse_u64(val, n)) {
      std::fprintf(stderr, "bad --inject-fault alloc '%s' (want bytes)\n",
                   val.c_str());
      return false;
    }
    inj.arm_alloc_above(n);
  } else if (key == "random") {
    const auto colon = val.find(':');
    double frac = 0.0;
    if (!parse_fraction(val.substr(0, colon), frac)) {
      std::fprintf(stderr,
                   "bad --inject-fault random '%s' (want a fraction in "
                   "[0, 1])\n",
                   val.c_str());
      return false;
    }
    std::uint64_t seed = 0;
    if (colon != std::string::npos &&
        !parse_u64(val.substr(colon + 1), seed)) {
      std::fprintf(stderr, "bad --inject-fault seed in '%s'\n", val.c_str());
      return false;
    }
    inj.arm_random(frac, seed);
  } else {
    std::fprintf(stderr, "unknown --inject-fault kind '%s'\n", key.c_str());
    return false;
  }
  return true;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--model") a.model = next();
    else if (arg == "--pipeline") a.pipeline = next();
    else if (arg == "--strategy") a.strategy = next();
    else if (arg == "--device") a.device = next();
    else if (arg == "--seq") a.seq = std::strtoul(next(), nullptr, 10);
    else if (arg == "--batch") a.batch = std::strtoul(next(), nullptr, 10);
    else if (arg == "--tokens") a.tokens = std::strtoul(next(), nullptr, 10);
    else if (arg == "--threads") a.threads = std::strtoul(next(), nullptr, 10);
    else if (arg == "--ratio") a.ratio = std::atof(next());
    else if (arg == "--profile") a.profile = true;
    else if (arg == "--json") a.json = true;
    else if (arg == "--trace") a.trace = next();
    else if (arg == "--inject-fault") {
      a.inject_given = true;
      a.inject_fault = next();
    }
    else if (arg == "--help" || arg == "-h") a.help = true;
    else std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
  }
  return a;
}

void usage() {
  std::printf(
      "et_cli — modeled-latency explorer for the E.T. reproduction\n\n"
      "  --model     transformer | bert_base | distilbert | bert_large\n"
      "  --pipeline  pytorch | tensorrt | fastertransformer | et\n"
      "  --strategy  none | irregular | column | tile | attention-aware\n"
      "  --ratio     pruning ratio in [0, 1)          (default 0)\n"
      "  --seq       sequence length                  (default 128)\n"
      "  --batch N   serving demo: decode N sequences through the\n"
      "              slot-based batched scheduler (see docs/serving.md)\n"
      "  --tokens T  tokens per sequence in the serving demo (default 16)\n"
      "  --threads N run kernels on an N-thread ExecContext pool; output\n"
      "              is bit-identical at every N (docs/threading.md)\n"
      "  --device    v100s | a100                     (default v100s)\n"
      "  --json      machine-readable output; serving-demo field names\n"
      "              match bench/ablation_batching --json\n"
      "  --profile   print the per-kernel nvprof-style table\n"
      "  --trace F   write a chrome://tracing JSON timeline to F\n"
      "  --inject-fault SPEC\n"
      "              arm deterministic fault injection and show recovery.\n"
      "              SPEC: kernel=<substr> | nth=<N> | alloc=<bytes> |\n"
      "                    random=<frac>[:seed]\n"
      "              e.g. --inject-fault kernel=otf_attention with the et\n"
      "              pipeline demos the otf->partial_otf fallback chain\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.help) {
    usage();
    return 0;
  }

  const et::nn::ModelConfig model =
      args.model == "transformer"   ? et::nn::transformer_wikitext()
      : args.model == "distilbert"  ? et::nn::distilbert()
      : args.model == "bert_large"  ? et::nn::bert_large()
                                    : et::nn::bert_base();
  const et::nn::Pipeline pipeline =
      args.pipeline == "pytorch"             ? et::nn::Pipeline::kModular
      : args.pipeline == "tensorrt"          ? et::nn::Pipeline::kTensorRT
      : args.pipeline == "fastertransformer" ? et::nn::Pipeline::kFasterTransformer
                                             : et::nn::Pipeline::kET;
  const et::gpusim::DeviceSpec spec =
      args.device == "a100" ? et::gpusim::a100() : et::gpusim::v100s();

  // Build weights: dense, or pruned through the requested strategy.
  et::nn::EncoderWeights weights;
  if (args.strategy == "none" || args.ratio <= 0.0) {
    weights = et::nn::make_dense_encoder_weights(model, 1);
  } else {
    const et::pruning::Strategy strategy =
        args.strategy == "irregular" ? et::pruning::Strategy::kIrregular
        : args.strategy == "column"  ? et::pruning::Strategy::kColumn
        : args.strategy == "tile"    ? et::pruning::Strategy::kTile
                                     : et::pruning::Strategy::kAttentionAware;
    et::train::TrainModelConfig tcfg;
    tcfg.vocab_size = 64;
    tcfg.d_model = model.d_model;
    tcfg.num_heads = model.num_heads;
    tcfg.d_ff = model.d_ff;
    tcfg.num_layers = 1;
    et::train::TransformerModel shapes(tcfg, 2);
    const auto masks = et::pruning::compute_layer_masks(shapes.layers()[0],
                                                        strategy, args.ratio);
    weights = et::pruning::deploy_layer(shapes.layers()[0], masks, strategy);
  }

  et::gpusim::Device dev(spec);
  et::core::ExecContext ctx(dev, args.threads == 0 ? 1 : args.threads);
  dev.set_traffic_only(true);
  if (args.inject_given &&
      !arm_from_spec(dev.fault_injector(), args.inject_fault)) {
    return 2;
  }
  if (args.batch > 0) {
    // Serving demo: decode N sequences through the slot-based batched
    // scheduler (docs/serving.md) — two decoder layers at the chosen
    // model's width, up to 8 slots, queue + backfill beyond that.
    std::vector<et::nn::EncoderWeights> layers(2, weights);
    for (auto& l : layers) l.attn.vo = {};  // cached decode path only
    const auto gopt =
        et::nn::options_for(pipeline, model, args.seq, /*causal=*/true);
    const std::size_t max_batch = args.batch < 8 ? args.batch : 8;
    et::nn::BatchedGenerationScheduler sched(&layers, gopt, max_batch,
                                             args.tokens + 1);
    for (std::size_t i = 0; i < args.batch; ++i) {
      et::nn::GenerationRequest req;
      req.first_token = static_cast<std::int32_t>(i);
      req.max_new_tokens = args.tokens;
      req.embed = [&model](std::int32_t, std::size_t) {
        return et::tensor::MatrixF(1, model.d_model);
      };
      req.select = [](const et::tensor::MatrixF&) { return std::int32_t{1}; };
      (void)sched.submit(std::move(req));
    }
    const auto results = sched.run(ctx);

    std::size_t total_tokens = 0;
    for (const auto& r : results) total_tokens += r.tokens.size();
    if (args.json) {
      // One JSON object per run; scalar field names are identical to the
      // bench/ablation_batching --json row keys so serving dashboards can
      // consume either source unchanged.
      std::printf("{\n");
      std::printf("  \"model\": \"%s\", \"pipeline\": \"%s\", \"device\": "
                  "\"%s\",\n",
                  model.name.c_str(), args.pipeline.c_str(),
                  spec.name.c_str());
      std::printf("  \"batch\": %zu, \"threads\": %zu, \"slots\": %zu,\n",
                  args.batch, ctx.threads(), max_batch);
      std::printf("  \"total_tokens\": %zu, \"ticks\": %zu, "
                  "\"batched_ticks\": %zu, \"per_slot_fallback_ticks\": "
                  "%zu,\n",
                  total_tokens, sched.ticks(), sched.batched_ticks(),
                  sched.per_slot_fallback_ticks());
      std::printf("  \"time_us\": %.1f, \"tokens_per_sec\": %.1f,\n",
                  dev.total_time_us(),
                  1e6 * static_cast<double>(total_tokens) /
                      dev.total_time_us());
      std::printf("  \"results\": [\n");
      for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("    {\"id\": %zu, \"tokens\": %zu, \"stop_reason\": "
                    "\"%s\", \"fault_kernel\": \"%s\"}%s\n",
                    i, results[i].tokens.size(),
                    std::string(to_string(results[i].stop_reason)).c_str(),
                    results[i].fault_kernel.c_str(),
                    i + 1 < results.size() ? "," : "");
      }
      std::printf("  ],\n");
      std::printf("  \"slot_time_us\": [");
      for (std::size_t s = 0; s < max_batch; ++s) {
        std::printf("%.1f%s", dev.time_us_for_slot(static_cast<int>(s)),
                    s + 1 < max_batch ? ", " : "");
      }
      std::printf("],\n");
      std::printf("  \"fallbacks\": %zu\n", dev.fallback_log().size());
      std::printf("}\n");
      if (!args.trace.empty()) {
        et::gpusim::write_chrome_trace(args.trace, dev);
      }
      return 0;
    }
    std::printf("%s · %s · serving %zu sequences on %zu slot(s) · %s\n",
                model.name.c_str(), args.pipeline.c_str(), args.batch,
                max_batch, spec.name.c_str());
    std::printf("  %zu tokens in %.1f us (%.1f tokens/sec), %zu ticks "
                "(%zu batched, %zu degraded to per-slot)\n",
                total_tokens, dev.total_time_us(),
                1e6 * static_cast<double>(total_tokens) / dev.total_time_us(),
                sched.ticks(), sched.batched_ticks(),
                sched.per_slot_fallback_ticks());
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("  seq %zu: %zu token(s), stop=%s", i,
                  results[i].tokens.size(),
                  std::string(to_string(results[i].stop_reason)).c_str());
      if (!results[i].fault_kernel.empty()) {
        std::printf(" (kernel '%s')", results[i].fault_kernel.c_str());
      }
      std::printf("\n");
    }
    for (std::size_t s = 0; s < max_batch; ++s) {
      std::printf("  slot %zu attention time: %.1f us\n", s,
                  dev.time_us_for_slot(static_cast<int>(s)));
    }
    for (const auto& f : dev.fallback_log()) {
      std::printf("  recovered: %s -> %s after fault in '%s' (%s)\n",
                  f.from_impl.c_str(), f.to_impl.c_str(), f.kernel.c_str(),
                  f.cause.c_str());
    }
    if (args.profile) {
      std::printf("\n");
      print_report(std::cout, et::gpusim::profile(dev));
    }
    if (!args.trace.empty()) {
      et::gpusim::write_chrome_trace(args.trace, dev);
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  args.trace.c_str());
    }
    return 0;
  }

  et::tensor::MatrixF x(args.seq, model.d_model);
  try {
    (void)et::nn::encoder_forward(
        ctx, x, weights, et::nn::options_for(pipeline, model, args.seq));
  } catch (const et::gpusim::KernelFault& f) {
    // Only the E.T. pipeline routes attention through the resilient
    // adaptive dispatch; the baselines die on the first fault — which is
    // exactly the contrast this flag exists to demonstrate. E.T. itself
    // can still die when the rule also matches the modular baseline or a
    // kernel outside the attention operator (FFN, layernorm).
    if (pipeline == et::nn::Pipeline::kET) {
      std::fprintf(stderr,
                   "unrecovered kernel fault in '%s' (degradation chain "
                   "exhausted, or the fault is outside the attention "
                   "operator)\n",
                   f.kernel().c_str());
    } else {
      std::fprintf(stderr,
                   "unrecovered kernel fault in '%s' (pipeline '%s' has no "
                   "fallback chain)\n",
                   f.kernel().c_str(), args.pipeline.c_str());
    }
    return 1;
  }

  const double layer_us = dev.total_time_us();
  if (args.json) {
    std::printf("{\"model\": \"%s\", \"pipeline\": \"%s\", \"seq\": %zu, "
                "\"device\": \"%s\", \"threads\": %zu, \"ratio\": %.2f, "
                "\"layer_us\": %.1f, \"model_ms\": %.2f, \"kernels\": %zu}\n",
                model.name.c_str(), args.pipeline.c_str(), args.seq,
                spec.name.c_str(), ctx.threads(), args.ratio, layer_us,
                layer_us * static_cast<double>(model.num_layers) / 1e3,
                dev.launch_count());
    if (!args.trace.empty()) {
      et::gpusim::write_chrome_trace(args.trace, dev);
    }
    return 0;
  }
  std::printf("%s · %s · seq %zu · %s", model.name.c_str(),
              args.pipeline.c_str(), args.seq, spec.name.c_str());
  if (args.ratio > 0.0) {
    std::printf(" · %s @ %.0f%%", args.strategy.c_str(), 100 * args.ratio);
  }
  std::printf("\n  %.1f us / layer,  %.2f ms for the %zu-layer model,  "
              "%zu kernels\n",
              layer_us, layer_us * static_cast<double>(model.num_layers) / 1e3,
              model.num_layers, dev.launch_count());
  if (args.inject_given) {
    const auto& inj = dev.fault_injector();
    std::printf("  injected %zu fault(s) over %zu launch attempts\n",
                inj.faults_injected(), inj.launches_seen());
    for (const auto& f : dev.fallback_log()) {
      std::printf("  recovered: %s -> %s after fault in '%s' (%s)\n",
                  f.from_impl.c_str(), f.to_impl.c_str(), f.kernel.c_str(),
                  f.cause.c_str());
    }
    if (dev.fallback_log().empty() && inj.faults_injected() == 0) {
      std::printf("  no launch matched the armed fault rule\n");
    }
  }
  if (args.profile) {
    std::printf("\n");
    print_report(std::cout, et::gpusim::profile(dev));
  }
  if (!args.trace.empty()) {
    et::gpusim::write_chrome_trace(args.trace, dev);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                args.trace.c_str());
  }
  return 0;
}
