// Autoregressive generation end to end: train a small causal LM on the
// synthetic corpus, deploy it to the inference stack (optionally pruned),
// and generate greedily through the KV-cached incremental path. Because
// the corpus follows a successor table, a well-trained model should emit
// long stretches of the deterministic chain — easy to verify by eye.
//
//   $ ./examples/generate_text [num_tokens] [prune_ratio]
#include <cstdio>
#include <cstdlib>

#include "gpusim/device.hpp"
#include "nn/embedding.hpp"
#include "nn/generation.hpp"
#include "nn/positional.hpp"
#include "pruning/strategy.hpp"
#include "train_harness.hpp"

int main(int argc, char** argv) {
  const std::size_t num_tokens =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const double ratio = argc > 2 ? std::atof(argv[2]) : 0.0;

  // Train the LM.
  et::train::TrainModelConfig mcfg;
  mcfg.vocab_size = 96;
  mcfg.d_model = 128;
  mcfg.num_heads = 4;
  mcfg.d_ff = 256;
  mcfg.num_layers = 2;
  et::data::TextCorpusConfig ccfg;
  ccfg.vocab_size = 96;
  ccfg.num_train_sequences = 48;
  ccfg.num_valid_sequences = 8;
  ccfg.seq_len = 24;
  const et::data::SyntheticCorpus corpus(ccfg);
  et::train::TransformerLM lm(mcfg, 17);
  std::printf("training the LM (12 epochs)...\n");
  et::bench::train_lm_epochs(lm, corpus, 12, 1e-3f);
  std::printf("validation next-token accuracy: %.3f\n",
              et::bench::lm_accuracy(lm, corpus));

  // Deploy to the inference stack (tile masks; ratio 0 = dense).
  auto masks = et::pruning::compute_model_masks(
      lm.trunk, et::pruning::Strategy::kTile, ratio);
  if (ratio > 0.0) {
    et::pruning::attach_masks(lm.trunk, masks);
    et::bench::train_lm_epochs(lm, corpus, 4, 1e-3f);  // masked retrain
    std::printf("pruned at %.0f%%, retrained: accuracy %.3f\n", 100 * ratio,
                et::bench::lm_accuracy(lm, corpus));
  }
  const auto layers = et::pruning::deploy_model(lm.trunk, masks,
                                                et::pruning::Strategy::kTile);

  et::nn::ModelConfig model;
  model.num_layers = mcfg.num_layers;
  model.d_model = mcfg.d_model;
  model.num_heads = mcfg.num_heads;
  model.d_ff = mcfg.d_ff;
  auto opt = et::nn::options_for(et::nn::Pipeline::kET, model, 1, true);
  opt.attn.precision = et::numeric::Precision::kFp32;

  // Greedy generation through the KV-cached path. Note the deployed
  // inference stack has no attention biases, so logits differ slightly
  // from the training-side forward; greedy argmax is robust to that.
  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  et::nn::GenerationSession session(
      et::nn::Model(&layers, opt, num_tokens + 2));
  std::int32_t token = corpus.train()[0].tokens[0];
  std::printf("\ngenerated: %d", token);
  std::size_t followed_chain = 0;
  const et::tensor::MatrixF pe =
      et::nn::positional_encoding(num_tokens + 1, mcfg.d_model);
  for (std::size_t t = 0; t < num_tokens; ++t) {
    // Embed + positional encoding (matching the training-side pipeline).
    et::tensor::MatrixF row(1, mcfg.d_model);
    for (std::size_t c = 0; c < row.cols(); ++c) {
      row(0, c) = lm.trunk.embedding.table.w(token, c) + pe(t, c);
    }
    const et::tensor::MatrixF h = session.step(ctx, row);
    // LM head from the trained model.
    std::int32_t best = 0;
    float best_logit = -1e30f;
    for (std::size_t v = 0; v < mcfg.vocab_size; ++v) {
      float logit = lm.head.bias[v];
      for (std::size_t c = 0; c < h.cols(); ++c) {
        logit += h(0, c) * lm.head.weight.w(v, c);
      }
      if (logit > best_logit) {
        best_logit = logit;
        best = static_cast<std::int32_t>(v);
      }
    }
    followed_chain += (best == corpus.successor_table()[token]);
    token = best;
    std::printf(" -> %d", token);
  }
  std::printf("\n\n%zu / %zu transitions follow the corpus successor table "
              "(determinism %.2f)\n",
              followed_chain, num_tokens, ccfg.determinism);
  std::printf("generation cost: %.1f us total, %.2f us per token "
              "(%zu kernels)\n",
              dev.total_time_us(),
              dev.total_time_us() / static_cast<double>(num_tokens),
              dev.launch_count());
  return 0;
}
