// GLUE-style fine-tune + attention-aware prune on one task, end to end:
// train a classifier on the synthetic task, prune it, and report both the
// task metric and the modeled full-model latency at BERT_BASE scale.
//
//   $ ./examples/glue_finetune [task]   task ∈ mnli qqp qnli sst2 stsb mrpc wnli
#include <cstdio>
#include <cstring>

#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "train_harness.hpp"

namespace {

et::data::GlueTask parse_task(const char* name) {
  using et::data::GlueTask;
  const std::pair<const char*, GlueTask> table[] = {
      {"mnli", GlueTask::kMNLI}, {"qqp", GlueTask::kQQP},
      {"qnli", GlueTask::kQNLI}, {"sst2", GlueTask::kSST2},
      {"stsb", GlueTask::kSTSB}, {"mrpc", GlueTask::kMRPC},
      {"wnli", GlueTask::kWNLI}};
  for (const auto& [key, task] : table) {
    if (std::strcmp(name, key) == 0) return task;
  }
  std::fprintf(stderr, "unknown task '%s', using sst2\n", name);
  return GlueTask::kSST2;
}

}  // namespace

int main(int argc, char** argv) {
  const et::data::GlueTask task =
      parse_task(argc > 1 ? argv[1] : "sst2");
  const et::data::GlueDataset ds(task, {});
  std::printf("task %s: %zu train / %zu test, metric %s\n",
              ds.spec().name.c_str(), ds.train().size(), ds.test().size(),
              ds.spec().metric == et::data::GlueMetric::kF1 ? "F1"
              : ds.spec().metric == et::data::GlueMetric::kSpearman
                  ? "Spearman"
                  : "accuracy");

  et::train::TrainModelConfig mcfg;
  mcfg.vocab_size = 256;
  mcfg.d_model = 64;
  mcfg.num_heads = 4;
  mcfg.d_ff = 128;
  mcfg.num_layers = 2;
  mcfg.causal = false;
  et::train::TransformerClassifier cls(
      mcfg, std::max<std::size_t>(ds.spec().num_classes, 1), 11);

  std::printf("fine-tuning...\n");
  et::bench::train_cls_epochs(cls, ds, 8, 2e-3f);
  std::printf("  dense score: %.1f\n", et::bench::eval_glue(cls, ds));

  const double ratio = 0.6;
  const auto masks = et::bench::prune_classifier(
      cls, ds, et::pruning::Strategy::kAttentionAware, ratio, 2, 3, 2e-3f);
  std::printf("attention-aware pruned at %.0f%% (overall %.2f): score %.1f\n",
              100.0 * ratio, masks.overall_ratio(),
              et::bench::eval_glue(cls, ds));

  // Latency at the real BERT_BASE configuration, per layer and full model.
  const auto model = et::nn::bert_base();
  et::train::TrainModelConfig shape_cfg;
  shape_cfg.vocab_size = 64;
  shape_cfg.d_model = model.d_model;
  shape_cfg.num_heads = model.num_heads;
  shape_cfg.d_ff = model.d_ff;
  shape_cfg.num_layers = 1;
  et::train::TransformerModel shapes(shape_cfg, 23);
  const auto layer_masks = et::pruning::compute_layer_masks(
      shapes.layers()[0], et::pruning::Strategy::kAttentionAware, ratio);
  const auto weights = et::pruning::deploy_layer(
      shapes.layers()[0], layer_masks, et::pruning::Strategy::kAttentionAware);

  et::gpusim::Device dev;
  et::core::ExecContext ctx(dev);
  dev.set_traffic_only(true);
  et::tensor::MatrixF x(128, model.d_model);
  (void)et::nn::encoder_forward(
      ctx, x, weights,
      et::nn::options_for(et::nn::Pipeline::kET, model, 128, false));
  const double per_layer = dev.total_time_us();
  std::printf("modeled latency at BERT_BASE scale: %.1f us/layer, %.2f ms "
              "for %zu layers\n",
              per_layer, per_layer * static_cast<double>(model.num_layers) / 1e3,
              model.num_layers);
  return 0;
}
