// End-to-end pruning workflow (the Fig. 6 pipeline on a small LM):
//
//   pre-train -> reweighted group-lasso -> tensor-tile / attention-aware
//   pruning -> masked retraining -> deploy to the inference stack ->
//   measure modeled latency on the simulated GPU.
//
//   $ ./examples/prune_and_deploy [ratio]      (default 0.7)
#include <cstdio>
#include <cstdlib>

#include "gpusim/device.hpp"
#include "nn/encoder.hpp"
#include "pruning/reweighted.hpp"
#include "pruning/strategy.hpp"
#include "train_harness.hpp"

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 0.7;

  // A small causal LM and a synthetic WikiText-like corpus.
  et::train::TrainModelConfig mcfg;
  mcfg.vocab_size = 96;
  mcfg.d_model = 128;
  mcfg.num_heads = 4;
  mcfg.d_ff = 256;
  mcfg.num_layers = 2;
  et::data::TextCorpusConfig ccfg;
  ccfg.vocab_size = 96;
  ccfg.num_train_sequences = 48;
  ccfg.num_valid_sequences = 16;
  ccfg.seq_len = 24;
  const et::data::SyntheticCorpus corpus(ccfg);
  et::train::TransformerLM lm(mcfg, 17);

  // (i) pre-train.
  std::printf("pre-training (12 epochs)...\n");
  et::bench::train_lm_epochs(lm, corpus, 12, 1e-3f);
  std::printf("  dense accuracy: %.3f\n", et::bench::lm_accuracy(lm, corpus));

  // (ii)-(iv) reweighted group-lasso epochs drive weak tiles toward zero.
  {
    std::vector<et::train::Param*> weights;
    for (auto& layer : lm.trunk.layers()) layer.collect(weights);
    et::pruning::GroupLassoRegularizer reg(weights, {.lambda = 1e-4f});
    et::bench::train_lm_epochs(lm, corpus, 3, 1e-3f, &reg);
  }

  // (v) percentile pruning at the requested ratio, attention-aware layout.
  auto masks = et::pruning::compute_model_masks(
      lm.trunk, et::pruning::Strategy::kAttentionAware, ratio);
  et::pruning::attach_masks(lm.trunk, masks);
  std::printf("pruned (attention-aware, overall ratio %.2f): accuracy %.3f\n",
              masks.overall_ratio(), et::bench::lm_accuracy(lm, corpus));

  // (vi) masked retraining recovers accuracy; masks stay enforced.
  et::bench::train_lm_epochs(lm, corpus, 4, 1e-3f);
  std::printf("after masked retraining: accuracy %.3f\n",
              et::bench::lm_accuracy(lm, corpus));

  // Deploy to the inference formats and compare modeled latency against
  // the dense TensorRT-like baseline.
  const auto layers = et::pruning::deploy_model(
      lm.trunk, masks, et::pruning::Strategy::kAttentionAware);
  et::nn::ModelConfig model;
  model.name = "toy-transformer";
  model.num_layers = mcfg.num_layers;
  model.d_model = mcfg.d_model;
  model.num_heads = mcfg.num_heads;
  model.d_ff = mcfg.d_ff;

  et::tensor::MatrixF x(32, model.d_model);
  const auto time_for = [&](et::nn::Pipeline p,
                            const std::vector<et::nn::EncoderWeights>& w) {
    et::gpusim::Device dev;
    et::core::ExecContext ctx(dev);
    dev.set_traffic_only(true);
    (void)et::nn::encoder_stack_forward(
        ctx, x, w, et::nn::options_for(p, model, 32, /*causal=*/true));
    return dev.total_time_us();
  };
  std::vector<et::nn::EncoderWeights> dense_layers;
  for (std::size_t l = 0; l < model.num_layers; ++l) {
    dense_layers.push_back(et::nn::make_dense_encoder_weights(model, 50 + l));
  }
  const double dense_us = time_for(et::nn::Pipeline::kTensorRT, dense_layers);
  const double et_us = time_for(et::nn::Pipeline::kET, layers);
  std::printf("\nmodeled latency (seq=32): TensorRT dense %.1f us, "
              "E.T. pruned %.1f us -> %.2fx\n",
              dense_us, et_us, dense_us / et_us);
  return 0;
}
