#include "sparse/mask.hpp"

#include <cassert>

namespace et::sparse {

double pruning_ratio(const Mask& mask) {
  if (mask.empty()) return 0.0;
  std::size_t zeros = 0;
  for (auto v : mask.flat()) zeros += (v == 0);
  return static_cast<double>(zeros) / static_cast<double>(mask.size());
}

void apply_mask(tensor::MatrixF& w, const Mask& mask) {
  assert(w.rows() == mask.rows() && w.cols() == mask.cols());
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (mask.flat()[i] == 0) w.flat()[i] = 0.0f;
  }
}

bool is_row_structured(const Mask& mask) {
  for (std::size_t r = 0; r < mask.rows(); ++r) {
    const auto first = mask(r, 0);
    for (std::size_t c = 1; c < mask.cols(); ++c) {
      if (mask(r, c) != first) return false;
    }
  }
  return true;
}

bool is_col_structured(const Mask& mask) {
  for (std::size_t c = 0; c < mask.cols(); ++c) {
    const auto first = mask(0, c);
    for (std::size_t r = 1; r < mask.rows(); ++r) {
      if (mask(r, c) != first) return false;
    }
  }
  return true;
}

bool is_tile_structured(const Mask& mask, std::size_t tile_r,
                        std::size_t tile_c) {
  if (mask.rows() % tile_r != 0 || mask.cols() % tile_c != 0) return false;
  for (std::size_t tr = 0; tr < mask.rows() / tile_r; ++tr) {
    for (std::size_t tc = 0; tc < mask.cols() / tile_c; ++tc) {
      const auto first = mask(tr * tile_r, tc * tile_c);
      for (std::size_t i = 0; i < tile_r; ++i) {
        for (std::size_t j = 0; j < tile_c; ++j) {
          if (mask(tr * tile_r + i, tc * tile_c + j) != first) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace et::sparse
