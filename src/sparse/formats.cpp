#include "sparse/formats.hpp"

#include <cassert>
#include <stdexcept>

namespace et::sparse {

namespace {
void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}
}  // namespace

// ---------------------------------------------------------------- row ----

RowPrunedWeight RowPrunedWeight::from_masked(const tensor::MatrixF& w,
                                             const Mask& mask) {
  require(w.rows() == mask.rows() && w.cols() == mask.cols(),
          "row pruning: weight/mask shape mismatch");
  require(is_row_structured(mask), "row pruning: mask is not row-structured");
  std::vector<std::uint32_t> kept;
  for (std::size_t r = 0; r < mask.rows(); ++r) {
    if (mask(r, 0) != 0) kept.push_back(static_cast<std::uint32_t>(r));
  }
  return from_kept_rows(w, std::move(kept));
}

RowPrunedWeight RowPrunedWeight::from_kept_rows(
    const tensor::MatrixF& w, std::vector<std::uint32_t> kept) {
  RowPrunedWeight out;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  out.kept_ = std::move(kept);
  out.condensed_ = tensor::MatrixF(out.kept_.size(), w.cols());
  for (std::size_t i = 0; i < out.kept_.size(); ++i) {
    require(out.kept_[i] < w.rows(), "row pruning: kept row out of range");
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out.condensed_(i, c) = w(out.kept_[i], c);
    }
  }
  return out;
}

tensor::MatrixF RowPrunedWeight::to_dense() const {
  tensor::MatrixF d(rows_, cols_);
  for (std::size_t i = 0; i < kept_.size(); ++i) {
    for (std::size_t c = 0; c < cols_; ++c) d(kept_[i], c) = condensed_(i, c);
  }
  return d;
}

// ------------------------------------------------------------- column ----

ColPrunedWeight ColPrunedWeight::from_masked(const tensor::MatrixF& w,
                                             const Mask& mask) {
  require(w.rows() == mask.rows() && w.cols() == mask.cols(),
          "column pruning: weight/mask shape mismatch");
  require(is_col_structured(mask),
          "column pruning: mask is not column-structured");
  std::vector<std::uint32_t> kept;
  for (std::size_t c = 0; c < mask.cols(); ++c) {
    if (mask(0, c) != 0) kept.push_back(static_cast<std::uint32_t>(c));
  }
  return from_kept_cols(w, std::move(kept));
}

ColPrunedWeight ColPrunedWeight::from_kept_cols(
    const tensor::MatrixF& w, std::vector<std::uint32_t> kept) {
  ColPrunedWeight out;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  out.kept_ = std::move(kept);
  out.condensed_ = tensor::MatrixF(w.rows(), out.kept_.size());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t i = 0; i < out.kept_.size(); ++i) {
      require(out.kept_[i] < w.cols(), "column pruning: kept col out of range");
      out.condensed_(r, i) = w(r, out.kept_[i]);
    }
  }
  return out;
}

tensor::MatrixF ColPrunedWeight::to_dense() const {
  tensor::MatrixF d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < kept_.size(); ++i) {
      d(r, kept_[i]) = condensed_(r, i);
    }
  }
  return d;
}

// --------------------------------------------------------------- tile ----

TilePrunedWeight TilePrunedWeight::from_masked(const tensor::MatrixF& w,
                                               const Mask& mask) {
  require(w.rows() == mask.rows() && w.cols() == mask.cols(),
          "tile pruning: weight/mask shape mismatch");
  require(w.rows() % kTileSide == 0 && w.cols() % kTileSide == 0,
          "tile pruning: dimensions must be multiples of the tile size");
  require(is_tile_structured(mask, kTileSide, kTileSide),
          "tile pruning: mask is not tile-structured");

  TilePrunedWeight out;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  out.row_ptr_.assign(out.tile_rows() + 1, 0);

  for (std::size_t tr = 0; tr < out.tile_rows(); ++tr) {
    for (std::size_t tc = 0; tc < out.tile_cols(); ++tc) {
      if (mask(tr * kTileSide, tc * kTileSide) == 0) continue;
      out.col_idx_.push_back(static_cast<std::uint32_t>(tc));
      const std::size_t base = out.values_.size();
      out.values_.resize(base + kTileSide * kTileSide);
      for (std::size_t i = 0; i < kTileSide; ++i) {
        for (std::size_t j = 0; j < kTileSide; ++j) {
          out.values_[base + i * kTileSide + j] = w(tr * kTileSide + i, tc * kTileSide + j);
        }
      }
    }
    out.row_ptr_[tr + 1] = static_cast<std::uint32_t>(out.col_idx_.size());
  }
  return out;
}

tensor::MatrixF TilePrunedWeight::to_dense() const {
  tensor::MatrixF d(rows_, cols_);
  for (std::size_t tr = 0; tr < tile_rows(); ++tr) {
    for (std::uint32_t t = row_ptr_[tr]; t < row_ptr_[tr + 1]; ++t) {
      const std::size_t tc = col_idx_[t];
      const float* vals = tile_values(t);
      for (std::size_t i = 0; i < kTileSide; ++i) {
        for (std::size_t j = 0; j < kTileSide; ++j) {
          d(tr * kTileSide + i, tc * kTileSide + j) = vals[i * kTileSide + j];
        }
      }
    }
  }
  return d;
}

// ---------------------------------------------------------- irregular ----

IrregularWeight IrregularWeight::from_masked(const tensor::MatrixF& w,
                                             const Mask& mask) {
  require(w.rows() == mask.rows() && w.cols() == mask.cols(),
          "irregular pruning: weight/mask shape mismatch");
  require(w.rows() % kTileSide == 0 && w.cols() % kTileSide == 0,
          "irregular pruning: dimensions must be multiples of the tile size");

  IrregularWeight out;
  out.rows_ = w.rows();
  out.cols_ = w.cols();
  const std::size_t trows = w.rows() / kTileSide;
  const std::size_t tcols = w.cols() / kTileSide;
  out.row_ptr_.assign(trows + 1, 0);

  for (std::size_t tr = 0; tr < trows; ++tr) {
    for (std::size_t tc = 0; tc < tcols; ++tc) {
      Tile tile;
      tile.col = static_cast<std::uint32_t>(tc);
      tile.value_offset = static_cast<std::uint32_t>(out.values_.size());
      for (std::size_t i = 0; i < kTileSide; ++i) {
        for (std::size_t j = 0; j < kTileSide; ++j) {
          if (mask(tr * kTileSide + i, tc * kTileSide + j) == 0) continue;
          const std::size_t bit = i * kTileSide + j;
          tile.bitmap[bit / 64] |= (std::uint64_t{1} << (bit % 64));
          out.values_.push_back(w(tr * kTileSide + i, tc * kTileSide + j));
          ++tile.value_count;
        }
      }
      if (tile.value_count > 0) out.tiles_.push_back(tile);
    }
    out.row_ptr_[tr + 1] = static_cast<std::uint32_t>(out.tiles_.size());
  }
  return out;
}

std::size_t IrregularWeight::storage_bytes() const noexcept {
  return row_ptr_.size() * sizeof(std::uint32_t) +
         tiles_.size() * sizeof(Tile) + values_.size() * sizeof(float);
}

tensor::MatrixF IrregularWeight::to_dense() const {
  tensor::MatrixF d(rows_, cols_);
  const std::size_t trows = rows_ / kTileSide;
  for (std::size_t tr = 0; tr < trows; ++tr) {
    for (std::uint32_t t = row_ptr_[tr]; t < row_ptr_[tr + 1]; ++t) {
      const Tile& tile = tiles_[t];
      std::size_t v = tile.value_offset;
      for (std::size_t bit = 0; bit < kTileSide * kTileSide; ++bit) {
        if ((tile.bitmap[bit / 64] >> (bit % 64)) & 1u) {
          d(tr * kTileSide + bit / kTileSide, tile.col * kTileSide + bit % kTileSide) =
              values_[v++];
        }
      }
    }
  }
  return d;
}

// ------------------------------------------------------------ variant ----

PruneMethod method_of(const AnyWeight& w) noexcept {
  return std::visit(
      [](const auto& v) -> PruneMethod {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, DenseWeight>) {
          return PruneMethod::kDense;
        } else if constexpr (std::is_same_v<T, RowPrunedWeight>) {
          return PruneMethod::kRow;
        } else if constexpr (std::is_same_v<T, ColPrunedWeight>) {
          return PruneMethod::kColumn;
        } else if constexpr (std::is_same_v<T, TilePrunedWeight>) {
          return PruneMethod::kTile;
        } else {
          return PruneMethod::kIrregular;
        }
      },
      w);
}

double pruning_ratio(const AnyWeight& w) noexcept {
  return std::visit([](const auto& v) { return v.pruning_ratio(); }, w);
}

tensor::MatrixF to_dense(const AnyWeight& w) {
  return std::visit([](const auto& v) { return v.to_dense(); }, w);
}

AnyWeight make_weight(PruneMethod method, const tensor::MatrixF& w,
                      const Mask& mask) {
  switch (method) {
    case PruneMethod::kDense: {
      tensor::MatrixF masked = w;
      apply_mask(masked, mask);
      return DenseWeight(std::move(masked));
    }
    case PruneMethod::kRow:
      return RowPrunedWeight::from_masked(w, mask);
    case PruneMethod::kColumn:
      return ColPrunedWeight::from_masked(w, mask);
    case PruneMethod::kTile:
      return TilePrunedWeight::from_masked(w, mask);
    case PruneMethod::kIrregular:
      return IrregularWeight::from_masked(w, mask);
  }
  throw std::invalid_argument("unknown prune method");
}

}  // namespace et::sparse
