// Pruning masks: 0/1 matrices the training side produces and the format
// converters consume. A mask has the same shape as its weight matrix; a 0
// entry means the weight is pruned.
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace et::sparse {

using Mask = tensor::Matrix<std::uint8_t>;

/// Fraction of entries pruned (the paper's "pruning ratio").
[[nodiscard]] double pruning_ratio(const Mask& mask);

/// Zero out the weights the mask prunes (element-wise multiply, Fig. 6
/// step (v)-4).
void apply_mask(tensor::MatrixF& w, const Mask& mask);

/// Is every row of the mask either all-ones or all-zeros?
[[nodiscard]] bool is_row_structured(const Mask& mask);

/// Is every column of the mask either all-ones or all-zeros?
[[nodiscard]] bool is_col_structured(const Mask& mask);

/// Is the mask constant within every tile_r × tile_c tile? (Requires the
/// mask dimensions to be divisible by the tile dimensions.)
[[nodiscard]] bool is_tile_structured(const Mask& mask, std::size_t tile_r,
                                      std::size_t tile_c);

}  // namespace et::sparse
