// Tensor-core-friendly pruned weight representations (§4.1 of the paper).
//
// All weights are stored in (out_features × in_features) orientation, so a
// linear transformation is Y = X · Wᵀ (§2.1).
//
//   RowPrunedWeight   — pruned rows physically removed; the condensed
//                       matrix is dense, so plain tensor-core GEMM runs on
//                       it; the *output* has zero columns exactly at the
//                       pruned row positions (Fig. 5a).
//   ColPrunedWeight   — pruned columns removed; the *input* X must be
//                       gathered down to the kept columns first
//                       ("X_adjusted", Fig. 5b).
//   TilePrunedWeight  — 16×16 tiles in Block-Compressed-Sparse-Row order;
//                       each surviving tile is dense and feeds a
//                       tensor-core tile FMA directly (§4.2).
//   IrregularWeight   — the two-level hierarchical format of [59]: BCSR
//                       over tiles that contain ≥1 nonzero, plus a 256-bit
//                       bitmap + packed nonzeros inside each tile. Kept as
//                       the paper's slow-but-accurate strawman.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "sparse/mask.hpp"
#include "tensor/matrix.hpp"

namespace et::sparse {

/// Side of the square tensor tile (the FMA granularity of §2.2).
inline constexpr std::size_t kTileSide = 16;

enum class PruneMethod { kDense, kRow, kColumn, kTile, kIrregular };

[[nodiscard]] constexpr std::string_view to_string(PruneMethod m) noexcept {
  switch (m) {
    case PruneMethod::kDense: return "dense";
    case PruneMethod::kRow: return "row";
    case PruneMethod::kColumn: return "column";
    case PruneMethod::kTile: return "tile";
    case PruneMethod::kIrregular: return "irregular";
  }
  return "?";
}

class DenseWeight {
 public:
  DenseWeight() = default;
  explicit DenseWeight(tensor::MatrixF w) : w_(std::move(w)) {}

  [[nodiscard]] std::size_t rows() const noexcept { return w_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return w_.cols(); }
  [[nodiscard]] const tensor::MatrixF& matrix() const noexcept { return w_; }
  [[nodiscard]] tensor::MatrixF to_dense() const { return w_; }
  [[nodiscard]] double pruning_ratio() const noexcept { return 0.0; }

 private:
  tensor::MatrixF w_;
};

class RowPrunedWeight {
 public:
  RowPrunedWeight() = default;

  /// Build from a masked weight; requires a row-structured mask.
  static RowPrunedWeight from_masked(const tensor::MatrixF& w,
                                     const Mask& mask);
  /// Build by keeping exactly the listed (sorted, unique) rows.
  static RowPrunedWeight from_kept_rows(const tensor::MatrixF& w,
                                        std::vector<std::uint32_t> kept);

  [[nodiscard]] std::size_t original_rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t original_cols() const noexcept { return cols_; }
  [[nodiscard]] const tensor::MatrixF& condensed() const noexcept {
    return condensed_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& kept_rows() const noexcept {
    return kept_;
  }
  [[nodiscard]] double pruning_ratio() const noexcept {
    return rows_ == 0 ? 0.0
                      : 1.0 - static_cast<double>(kept_.size()) /
                                  static_cast<double>(rows_);
  }
  /// Scatter the condensed rows back into the original shape (zeros where
  /// pruned) — used by tests and the accuracy-side comparisons.
  [[nodiscard]] tensor::MatrixF to_dense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  tensor::MatrixF condensed_;          // kept × cols
  std::vector<std::uint32_t> kept_;    // original row index per kept row
};

class ColPrunedWeight {
 public:
  ColPrunedWeight() = default;

  /// Build from a masked weight; requires a column-structured mask.
  static ColPrunedWeight from_masked(const tensor::MatrixF& w,
                                     const Mask& mask);
  static ColPrunedWeight from_kept_cols(const tensor::MatrixF& w,
                                        std::vector<std::uint32_t> kept);

  [[nodiscard]] std::size_t original_rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t original_cols() const noexcept { return cols_; }
  [[nodiscard]] const tensor::MatrixF& condensed() const noexcept {
    return condensed_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& kept_cols() const noexcept {
    return kept_;
  }
  [[nodiscard]] double pruning_ratio() const noexcept {
    return cols_ == 0 ? 0.0
                      : 1.0 - static_cast<double>(kept_.size()) /
                                  static_cast<double>(cols_);
  }
  [[nodiscard]] tensor::MatrixF to_dense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  tensor::MatrixF condensed_;        // rows × kept
  std::vector<std::uint32_t> kept_;  // original column index per kept col
};

class TilePrunedWeight {
 public:
  TilePrunedWeight() = default;

  /// Build from a masked weight; requires a tile-structured mask and
  /// dimensions divisible by kTileSide.
  static TilePrunedWeight from_masked(const tensor::MatrixF& w,
                                      const Mask& mask);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t tile_rows() const noexcept { return rows_ / kTileSide; }
  [[nodiscard]] std::size_t tile_cols() const noexcept { return cols_ / kTileSide; }
  [[nodiscard]] std::size_t nnz_tiles() const noexcept {
    return col_idx_.size();
  }
  [[nodiscard]] double pruning_ratio() const noexcept {
    const auto total = tile_rows() * tile_cols();
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(nnz_tiles()) /
                                  static_cast<double>(total);
  }

  /// BCSR accessors: tiles of tile-row tr are [row_ptr[tr], row_ptr[tr+1]).
  [[nodiscard]] const std::vector<std::uint32_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_idx() const noexcept {
    return col_idx_;
  }
  /// Dense values of tile t (kTileSide×kTileSide, row-major).
  [[nodiscard]] const float* tile_values(std::size_t t) const noexcept {
    return values_.data() + t * kTileSide * kTileSide;
  }

  [[nodiscard]] tensor::MatrixF to_dense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<float> values_;  // nnz_tiles × (kTileSide*kTileSide)
};

class IrregularWeight {
 public:
  /// One surviving tile: its tile-column, a 256-bit occupancy bitmap and
  /// the packed nonzeros in bitmap order.
  struct Tile {
    std::uint32_t col = 0;
    std::array<std::uint64_t, 4> bitmap{};
    std::uint32_t value_offset = 0;  ///< index into values_
    std::uint32_t value_count = 0;
  };

  IrregularWeight() = default;

  /// Build from any masked weight (dimensions divisible by kTileSide).
  static IrregularWeight from_masked(const tensor::MatrixF& w,
                                     const Mask& mask);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t occupied_tiles() const noexcept {
    return tiles_.size();
  }
  [[nodiscard]] double pruning_ratio() const noexcept {
    const auto total = rows_ * cols_;
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(nnz()) /
                                  static_cast<double>(total);
  }
  [[nodiscard]] const std::vector<std::uint32_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<Tile>& tiles() const noexcept {
    return tiles_;
  }
  [[nodiscard]] const std::vector<float>& values() const noexcept {
    return values_;
  }
  /// Bytes the format occupies on the simulated device.
  [[nodiscard]] std::size_t storage_bytes() const noexcept;

  [[nodiscard]] tensor::MatrixF to_dense() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // per tile-row, into tiles_
  std::vector<Tile> tiles_;
  std::vector<float> values_;
};

/// Any weight format a linear layer can carry.
using AnyWeight = std::variant<DenseWeight, RowPrunedWeight, ColPrunedWeight,
                               TilePrunedWeight, IrregularWeight>;

[[nodiscard]] PruneMethod method_of(const AnyWeight& w) noexcept;
[[nodiscard]] double pruning_ratio(const AnyWeight& w) noexcept;
[[nodiscard]] tensor::MatrixF to_dense(const AnyWeight& w);

/// Convert a masked dense weight into the format `method` asks for;
/// validates the mask structure matches the method.
[[nodiscard]] AnyWeight make_weight(PruneMethod method,
                                    const tensor::MatrixF& w, const Mask& mask);

}  // namespace et::sparse
