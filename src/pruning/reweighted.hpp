// Reweighted group-lasso regularization for tensor-tile pruning (§4.2,
// Eq. 8, Fig. 6 steps (ii)–(iv)).
//
// At every milestone epoch the per-tile penalty factors are recomputed as
//   β_ij = 1 / (‖W_ij‖₂ + ε)
// so tiles that are already small get pushed harder toward zero, while
// large (useful) tiles are barely penalized — the reweighting idea of [4].
// Between milestones the regularizer contributes
//   λ Σ_ij β_ij ‖W_ij‖₂
// to the loss, i.e. gradient λ·β_ij·W/‖W_ij‖₂ on every weight.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"
#include "train/param.hpp"

namespace et::pruning {

struct ReweightedConfig {
  float lambda = 1e-4f;  ///< paper: 1e-4 (BERT), 1e-4/3e-4 (DistilBERT)
  std::size_t tile_rows = 16;
  std::size_t tile_cols = 16;
  float epsilon = 1e-6f;  ///< division-by-zero guard in the β update
  /// When false, β stays at its initial 1 forever — the *fixed-penalty*
  /// group lasso the paper's §6 compares against (reweighting is claimed
  /// to reach higher compression at the same accuracy).
  bool reweighted = true;
};

class GroupLassoRegularizer {
 public:
  GroupLassoRegularizer(std::vector<train::Param*> params,
                        ReweightedConfig cfg);

  /// Fig. 6 step (ii): recompute β from the current tile norms. Call at
  /// milestone epochs. No-op when config().reweighted is false (the
  /// fixed-penalty baseline).
  void update_penalties();

  /// The regularization term's current value (for loss logging).
  [[nodiscard]] double penalty() const;

  /// Fig. 6 step (iii)/(iv): add λ·β_ij·W/‖W_ij‖₂ to every Param's
  /// gradient. Call once per optimizer step, after the data gradient.
  void add_gradients();

  [[nodiscard]] const ReweightedConfig& config() const noexcept {
    return cfg_;
  }

  /// Fig. 6 step (iv) ramps λ during reweighted training and "stops
  /// increasing λ when the reweighted training accuracy drops slightly".
  void set_lambda(float lambda) noexcept { cfg_.lambda = lambda; }
  [[nodiscard]] float lambda() const noexcept { return cfg_.lambda; }

 private:
  std::vector<train::Param*> params_;
  /// β for each param, as a (tile_rows_count × tile_cols_count) matrix.
  std::vector<tensor::MatrixF> betas_;
  ReweightedConfig cfg_;
};

}  // namespace et::pruning
