#include "pruning/criteria.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "tensor/compare.hpp"

namespace et::pruning {

namespace {

/// Number of groups to prune for `total` groups at `ratio`, clamped so at
/// least one group always survives a ratio < 1.
std::size_t prune_count(std::size_t total, double ratio) {
  const auto k = static_cast<std::size_t>(
      std::floor(static_cast<double>(total) * ratio + 0.5));
  return std::min(k, total == 0 ? 0 : total - (ratio < 1.0 ? 1 : 0));
}

/// Threshold below which groups die: the k-th smallest score.
double kth_smallest(std::vector<double> scores, std::size_t k) {
  if (k == 0) return -1.0;  // nothing pruned
  assert(k <= scores.size());
  std::nth_element(scores.begin(), scores.begin() + (k - 1), scores.end());
  return scores[k - 1];
}

}  // namespace

sparse::Mask magnitude_mask(const tensor::MatrixF& w, double ratio) {
  std::vector<double> scores(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    scores[i] = std::abs(static_cast<double>(w.flat()[i]));
  }
  const std::size_t k = prune_count(w.size(), ratio);
  const double thresh = kth_smallest(scores, k);

  sparse::Mask mask(w.rows(), w.cols(), 1);
  std::size_t pruned = 0;
  for (std::size_t i = 0; i < w.size() && pruned < k; ++i) {
    if (std::abs(static_cast<double>(w.flat()[i])) <= thresh) {
      mask.flat()[i] = 0;
      ++pruned;
    }
  }
  return mask;
}

sparse::Mask row_mask(const tensor::MatrixF& w, double ratio) {
  std::vector<double> scores(w.rows());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < w.cols(); ++c) {
      s += static_cast<double>(w(r, c)) * static_cast<double>(w(r, c));
    }
    scores[r] = std::sqrt(s);
  }
  const std::size_t k = prune_count(w.rows(), ratio);
  const double thresh = kth_smallest(scores, k);

  sparse::Mask mask(w.rows(), w.cols(), 1);
  std::size_t pruned = 0;
  for (std::size_t r = 0; r < w.rows() && pruned < k; ++r) {
    if (scores[r] <= thresh) {
      for (std::size_t c = 0; c < w.cols(); ++c) mask(r, c) = 0;
      ++pruned;
    }
  }
  return mask;
}

sparse::Mask column_mask(const tensor::MatrixF& w, double ratio) {
  std::vector<double> scores(w.cols());
  for (std::size_t c = 0; c < w.cols(); ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) {
      s += static_cast<double>(w(r, c)) * static_cast<double>(w(r, c));
    }
    scores[c] = std::sqrt(s);
  }
  const std::size_t k = prune_count(w.cols(), ratio);
  const double thresh = kth_smallest(scores, k);

  sparse::Mask mask(w.rows(), w.cols(), 1);
  std::size_t pruned = 0;
  for (std::size_t c = 0; c < w.cols() && pruned < k; ++c) {
    if (scores[c] <= thresh) {
      for (std::size_t r = 0; r < w.rows(); ++r) mask(r, c) = 0;
      ++pruned;
    }
  }
  return mask;
}

sparse::Mask tile_mask(const tensor::MatrixF& w, double ratio,
                       std::size_t tile_r, std::size_t tile_c) {
  assert(w.rows() % tile_r == 0 && w.cols() % tile_c == 0);
  const std::size_t p = w.rows() / tile_r;
  const std::size_t q = w.cols() / tile_c;
  std::vector<double> scores(p * q);
  for (std::size_t tr = 0; tr < p; ++tr) {
    for (std::size_t tc = 0; tc < q; ++tc) {
      scores[tr * q + tc] = tensor::tile_l2_norm(w, tile_r, tile_c, tr, tc);
    }
  }
  const std::size_t k = prune_count(p * q, ratio);
  const double thresh = kth_smallest(scores, k);

  sparse::Mask mask(w.rows(), w.cols(), 1);
  std::size_t pruned = 0;
  for (std::size_t tr = 0; tr < p; ++tr) {
    for (std::size_t tc = 0; tc < q; ++tc) {
      if (pruned >= k) break;
      if (scores[tr * q + tc] <= thresh) {
        for (std::size_t i = 0; i < tile_r; ++i) {
          for (std::size_t j = 0; j < tile_c; ++j) {
            mask(tr * tile_r + i, tc * tile_c + j) = 0;
          }
        }
        ++pruned;
      }
    }
  }
  return mask;
}

}  // namespace et::pruning
