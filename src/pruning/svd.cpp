#include "pruning/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <vector>

namespace et::pruning {

namespace {

/// Thin QR (modified Gram-Schmidt) of the columns of a, in place.
void orthonormalize(tensor::MatrixF& a) {
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.rows(); ++i) {
        dot += static_cast<double>(a(i, k)) * static_cast<double>(a(i, j));
      }
      for (std::size_t i = 0; i < a.rows(); ++i) {
        a(i, j) -= static_cast<float>(dot) * a(i, k);
      }
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      norm += static_cast<double>(a(i, j)) * static_cast<double>(a(i, j));
    }
    norm = std::sqrt(norm);
    const float inv = norm > 1e-12 ? static_cast<float>(1.0 / norm) : 0.0f;
    for (std::size_t i = 0; i < a.rows(); ++i) a(i, j) *= inv;
  }
}

}  // namespace

std::size_t rank_for_ratio(std::size_t m, std::size_t n, double ratio) {
  const double budget = (1.0 - ratio) * static_cast<double>(m) *
                        static_cast<double>(n) /
                        static_cast<double>(m + n);
  return std::max<std::size_t>(1, static_cast<std::size_t>(budget));
}

tensor::MatrixF low_rank_approx(const tensor::MatrixF& w, std::size_t rank,
                                std::uint64_t seed, std::size_t power_iters) {
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  rank = std::min({rank, m, n});

  // Randomized range finder: Y = (W Wᵀ)^p W Ω, Ω ~ N(0,1)^{n×rank}.
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  tensor::MatrixF y(m, rank);
  {
    tensor::MatrixF omega(n, rank);
    for (auto& v : omega.flat()) v = dist(rng);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < rank; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          acc += static_cast<double>(w(i, k)) *
                 static_cast<double>(omega(k, j));
        }
        y(i, j) = static_cast<float>(acc);
      }
    }
  }
  for (std::size_t it = 0; it < power_iters; ++it) {
    orthonormalize(y);
    // z = Wᵀ y ; y = W z
    tensor::MatrixF z(n, rank);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < rank; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < m; ++k) {
          acc += static_cast<double>(w(k, i)) * static_cast<double>(y(k, j));
        }
        z(i, j) = static_cast<float>(acc);
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < rank; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          acc += static_cast<double>(w(i, k)) * static_cast<double>(z(k, j));
        }
        y(i, j) = static_cast<float>(acc);
      }
    }
  }
  orthonormalize(y);  // y = Q, m×rank orthonormal

  // Projection: B = Qᵀ W (rank × n); reconstruction Q·B is the rank-k
  // approximation (no need to diagonalize B for reconstruction purposes).
  tensor::MatrixF b(rank, n);
  for (std::size_t i = 0; i < rank; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        acc += static_cast<double>(y(k, i)) * static_cast<double>(w(k, j));
      }
      b(i, j) = static_cast<float>(acc);
    }
  }
  tensor::MatrixF out(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < rank; ++k) {
        acc += static_cast<double>(y(i, k)) * static_cast<double>(b(k, j));
      }
      out(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace et::pruning
