// Mask generators for the four pruning patterns (§4.1–4.2).
//
// Each takes a weight matrix and a target pruning ratio and returns a 0/1
// mask selecting the survivors by an l2/magnitude criterion at the
// pattern's granularity (element / row / column / tensor tile). The
// percentile-threshold step matches Fig. 6 step (v): score every group,
// zero the groups below the ratio-quantile.
#pragma once

#include "sparse/mask.hpp"
#include "tensor/matrix.hpp"

namespace et::pruning {

/// Irregular magnitude pruning [23]: per-element |w| criterion.
[[nodiscard]] sparse::Mask magnitude_mask(const tensor::MatrixF& w,
                                          double ratio);

/// Row pruning: per-row l2 norm criterion; whole rows survive or die.
[[nodiscard]] sparse::Mask row_mask(const tensor::MatrixF& w, double ratio);

/// Column pruning: per-column l2 norm criterion.
[[nodiscard]] sparse::Mask column_mask(const tensor::MatrixF& w, double ratio);

/// Tensor-tile pruning (§4.2): per-tile l2 norm criterion over
/// tile_r × tile_c tiles (16×16 by default, the tensor-core granularity).
[[nodiscard]] sparse::Mask tile_mask(const tensor::MatrixF& w, double ratio,
                                     std::size_t tile_r = 16,
                                     std::size_t tile_c = 16);

}  // namespace et::pruning
