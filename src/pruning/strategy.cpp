#include "pruning/strategy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/weights.hpp"
#include "pruning/criteria.hpp"

namespace et::pruning {

namespace {

/// Attention-aware W_V mask: prune whole `group`-row blocks, the same
/// number in every head, chosen by block l2 norm. Balanced head blocks are
/// what let the inference side consume the condensed V (head slicing
/// requires equal widths).
sparse::Mask balanced_v_row_mask(const tensor::MatrixF& w, double ratio,
                                 std::size_t heads, std::size_t group) {
  const std::size_t d = w.rows();
  assert(d % heads == 0);
  const std::size_t dk = d / heads;
  const std::size_t full_groups = dk / group;  // partial tail never pruned
  const auto prune_per_head = static_cast<std::size_t>(
      std::floor(static_cast<double>(full_groups) * ratio + 0.5));

  sparse::Mask mask(w.rows(), w.cols(), 1);
  if (prune_per_head == 0 || full_groups == 0) return mask;

  for (std::size_t h = 0; h < heads; ++h) {
    // Score each group in this head.
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(full_groups);
    for (std::size_t g = 0; g < full_groups; ++g) {
      double s = 0.0;
      for (std::size_t i = 0; i < group; ++i) {
        const std::size_t r = h * dk + g * group + i;
        for (std::size_t c = 0; c < w.cols(); ++c) {
          s += static_cast<double>(w(r, c)) * static_cast<double>(w(r, c));
        }
      }
      scored.emplace_back(s, g);
    }
    std::sort(scored.begin(), scored.end());
    const std::size_t kill =
        std::min(prune_per_head,
                 full_groups > 0 ? full_groups - 1 : std::size_t{0});
    for (std::size_t n = 0; n < kill; ++n) {
      const std::size_t g = scored[n].second;
      for (std::size_t i = 0; i < group; ++i) {
        const std::size_t r = h * dk + g * group + i;
        for (std::size_t c = 0; c < w.cols(); ++c) mask(r, c) = 0;
      }
    }
  }
  return mask;
}

/// Kill W_O tiles whose entire input (column) strip corresponds to pruned
/// Z columns. Only valid when the dead V rows are globally 16-aligned.
void intersect_wo_with_dead_v(sparse::Mask& wo_mask,
                              const sparse::Mask& v_mask) {
  const std::size_t d = v_mask.rows();
  for (std::size_t tc = 0; tc < d / 16; ++tc) {
    bool all_dead = true;
    for (std::size_t i = 0; i < 16 && all_dead; ++i) {
      all_dead = v_mask(tc * 16 + i, 0) == 0;
    }
    if (!all_dead) continue;
    for (std::size_t r = 0; r < wo_mask.rows(); ++r) {
      for (std::size_t i = 0; i < 16; ++i) wo_mask(r, tc * 16 + i) = 0;
    }
  }
}

sparse::Mask full_mask(const tensor::MatrixF& w) {
  return sparse::Mask(w.rows(), w.cols(), 1);
}

}  // namespace

double ModelMasks::overall_ratio() const {
  std::size_t zeros = 0, total = 0;
  const auto count = [&](const sparse::Mask& m) {
    for (auto v : m.flat()) zeros += (v == 0);
    total += m.size();
  };
  for (const auto& l : layers) {
    count(l.wq);
    count(l.wk);
    count(l.wv);
    count(l.wo);
    count(l.ff1);
    count(l.ff2);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(zeros) / static_cast<double>(total);
}

LayerMasks compute_layer_masks(const train::EncoderLayer& layer,
                               Strategy strategy, double ratio,
                               const StrategyOptions& opt) {
  const auto& wq = layer.mha.wq.weight.w;
  const auto& wk = layer.mha.wk.weight.w;
  const auto& wv = layer.mha.wv.weight.w;
  const auto& wo = layer.mha.wo.weight.w;
  const auto& ff1 = layer.ff1.weight.w;
  const auto& ff2 = layer.ff2.weight.w;

  LayerMasks m;
  switch (strategy) {
    case Strategy::kIrregular:
      m = {magnitude_mask(wq, ratio), magnitude_mask(wk, ratio),
           magnitude_mask(wv, ratio), magnitude_mask(wo, ratio),
           magnitude_mask(ff1, ratio), magnitude_mask(ff2, ratio)};
      break;
    case Strategy::kColumn:
      m = {column_mask(wq, ratio), column_mask(wk, ratio),
           column_mask(wv, ratio), column_mask(wo, ratio),
           column_mask(ff1, ratio), column_mask(ff2, ratio)};
      break;
    case Strategy::kTile:
      m = {tile_mask(wq, ratio), tile_mask(wk, ratio), tile_mask(wv, ratio),
           tile_mask(wo, ratio), tile_mask(ff1, ratio), tile_mask(ff2, ratio)};
      break;
    case Strategy::kAttentionAware: {
      const std::size_t heads = layer.mha.num_heads();
      m.wq = tile_mask(wq, ratio);
      m.wk = tile_mask(wk, ratio);
      m.ff1 = tile_mask(ff1, ratio);
      m.ff2 = tile_mask(ff2, ratio);
      if (opt.precompute_vo) {
        // Fig. 3(b): W_V dense, W_O row-pruned, folded at deploy time.
        m.wv = full_mask(wv);
        m.wo = row_mask(wo, ratio);
      } else {
        // Table 1 / Fig. 13(a): W_V row-pruned, W_O tile-pruned; kill the
        // W_O tiles fed only by dead Z columns when alignment permits.
        m.wv = balanced_v_row_mask(wv, ratio, heads, opt.v_group);
        m.wo = tile_mask(wo, ratio);
        const std::size_t dk = wv.rows() / heads;
        if (opt.v_group == 16 && dk % 16 == 0) {
          intersect_wo_with_dead_v(m.wo, m.wv);
        }
      }
      break;
    }
  }
  return m;
}

ModelMasks compute_model_masks(train::TransformerModel& model,
                               Strategy strategy, double ratio,
                               const StrategyOptions& opt) {
  ModelMasks masks;
  masks.layers.reserve(model.layers().size());
  for (const auto& layer : model.layers()) {
    masks.layers.push_back(compute_layer_masks(layer, strategy, ratio, opt));
  }
  return masks;
}

void attach_masks(train::TransformerModel& model, ModelMasks& masks) {
  if (masks.layers.size() != model.layers().size()) {
    throw std::invalid_argument("attach_masks: layer count mismatch");
  }
  for (std::size_t l = 0; l < masks.layers.size(); ++l) {
    auto& layer = model.layers()[l];
    auto& m = masks.layers[l];
    layer.mha.wq.weight.mask = &m.wq;
    layer.mha.wk.weight.mask = &m.wk;
    layer.mha.wv.weight.mask = &m.wv;
    layer.mha.wo.weight.mask = &m.wo;
    layer.ff1.weight.mask = &m.ff1;
    layer.ff2.weight.mask = &m.ff2;
    layer.mha.wq.weight.enforce_mask();
    layer.mha.wk.weight.enforce_mask();
    layer.mha.wv.weight.enforce_mask();
    layer.mha.wo.weight.enforce_mask();
    layer.ff1.weight.enforce_mask();
    layer.ff2.weight.enforce_mask();
  }
}

nn::EncoderWeights deploy_layer(const train::EncoderLayer& layer,
                                const LayerMasks& masks, Strategy strategy,
                                const StrategyOptions& opt) {
  const auto& mha = layer.mha;
  nn::EncoderWeights w;

  const auto method = [&]() -> sparse::PruneMethod {
    switch (strategy) {
      case Strategy::kIrregular: return sparse::PruneMethod::kIrregular;
      case Strategy::kColumn: return sparse::PruneMethod::kColumn;
      case Strategy::kTile:
      case Strategy::kAttentionAware: return sparse::PruneMethod::kTile;
    }
    return sparse::PruneMethod::kDense;
  }();

  w.attn.wq = sparse::make_weight(method, mha.wq.weight.w, masks.wq);
  w.attn.wk = sparse::make_weight(method, mha.wk.weight.w, masks.wk);
  w.w_ff1 = sparse::make_weight(method, layer.ff1.weight.w, masks.ff1);
  w.w_ff2 = sparse::make_weight(method, layer.ff2.weight.w, masks.ff2);

  if (strategy == Strategy::kAttentionAware && opt.precompute_vo) {
    w.attn.wv = sparse::DenseWeight(mha.wv.weight.w);
    auto wo_row = sparse::RowPrunedWeight::from_masked(mha.wo.weight.w,
                                                       masks.wo);
    w.attn.vo = core::precompute_vo(mha.wv.weight.w, mha.wo.weight.w,
                                    mha.num_heads(), wo_row.kept_rows());
    w.attn.wo = std::move(wo_row);
  } else if (strategy == Strategy::kAttentionAware) {
    w.attn.wv = sparse::RowPrunedWeight::from_masked(mha.wv.weight.w,
                                                     masks.wv);
    w.attn.wo = sparse::make_weight(method, mha.wo.weight.w, masks.wo);
  } else {
    w.attn.wv = sparse::make_weight(method, mha.wv.weight.w, masks.wv);
    w.attn.wo = sparse::make_weight(method, mha.wo.weight.w, masks.wo);
  }

  w.b_ff1 = layer.ff1.bias;
  w.b_ff2 = layer.ff2.bias;
  w.ln1_gamma = layer.ln1.gamma;
  w.ln1_beta = layer.ln1.beta;
  w.ln2_gamma = layer.ln2.gamma;
  w.ln2_beta = layer.ln2.beta;
  return w;
}

std::vector<nn::EncoderWeights> deploy_model(train::TransformerModel& model,
                                             const ModelMasks& masks,
                                             Strategy strategy,
                                             const StrategyOptions& opt) {
  std::vector<nn::EncoderWeights> out;
  out.reserve(model.layers().size());
  for (std::size_t l = 0; l < model.layers().size(); ++l) {
    out.push_back(
        deploy_layer(model.layers()[l], masks.layers[l], strategy, opt));
  }
  return out;
}

}  // namespace et::pruning
