#include "pruning/reweighted.hpp"

#include <cassert>
#include <cmath>

#include "tensor/compare.hpp"

namespace et::pruning {

GroupLassoRegularizer::GroupLassoRegularizer(
    std::vector<train::Param*> params, ReweightedConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  betas_.reserve(params_.size());
  for (const train::Param* p : params_) {
    assert(p->w.rows() % cfg_.tile_rows == 0);
    assert(p->w.cols() % cfg_.tile_cols == 0);
    betas_.emplace_back(p->w.rows() / cfg_.tile_rows,
                        p->w.cols() / cfg_.tile_cols, 1.0f);
  }
}

void GroupLassoRegularizer::update_penalties() {
  if (!cfg_.reweighted) return;  // fixed-penalty baseline: β stays 1
  for (std::size_t n = 0; n < params_.size(); ++n) {
    const auto& w = params_[n]->w;
    auto& beta = betas_[n];
    for (std::size_t tr = 0; tr < beta.rows(); ++tr) {
      for (std::size_t tc = 0; tc < beta.cols(); ++tc) {
        const double norm =
            tensor::tile_l2_norm(w, cfg_.tile_rows, cfg_.tile_cols, tr, tc);
        beta(tr, tc) =
            1.0f / (static_cast<float>(norm) + cfg_.epsilon);
      }
    }
  }
}

double GroupLassoRegularizer::penalty() const {
  double total = 0.0;
  for (std::size_t n = 0; n < params_.size(); ++n) {
    const auto& w = params_[n]->w;
    const auto& beta = betas_[n];
    for (std::size_t tr = 0; tr < beta.rows(); ++tr) {
      for (std::size_t tc = 0; tc < beta.cols(); ++tc) {
        total += static_cast<double>(beta(tr, tc)) *
                 tensor::tile_l2_norm(w, cfg_.tile_rows, cfg_.tile_cols, tr,
                                      tc);
      }
    }
  }
  return cfg_.lambda * total;
}

void GroupLassoRegularizer::add_gradients() {
  for (std::size_t n = 0; n < params_.size(); ++n) {
    auto& p = *params_[n];
    const auto& beta = betas_[n];
    for (std::size_t tr = 0; tr < beta.rows(); ++tr) {
      for (std::size_t tc = 0; tc < beta.cols(); ++tc) {
        const double norm = tensor::tile_l2_norm(p.w, cfg_.tile_rows,
                                                 cfg_.tile_cols, tr, tc);
        if (norm < 1e-12) continue;  // ∂‖0‖₂ subgradient: leave at 0
        const float coef =
            cfg_.lambda * beta(tr, tc) / static_cast<float>(norm);
        for (std::size_t i = 0; i < cfg_.tile_rows; ++i) {
          for (std::size_t j = 0; j < cfg_.tile_cols; ++j) {
            const std::size_t r = tr * cfg_.tile_rows + i;
            const std::size_t c = tc * cfg_.tile_cols + j;
            p.g(r, c) += coef * p.w(r, c);
          }
        }
      }
    }
  }
}

}  // namespace et::pruning
