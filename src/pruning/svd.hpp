// Low-rank (SVD) compression baseline (§6 "E.T. tensor tile pruning vs
// existing pruning methods", item (ii)): the paper compares against a
// truncated-SVD compressed Transformer and finds it underperforms all
// four pruning methods (Fig. 14 discussion).
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace et::pruning {

/// Rank-k approximation of W via randomized subspace iteration: returns
/// the reconstructed (full-shape) matrix U·Σ·Vᵀ truncated to `rank`.
[[nodiscard]] tensor::MatrixF low_rank_approx(const tensor::MatrixF& w,
                                              std::size_t rank,
                                              std::uint64_t seed = 42,
                                              std::size_t power_iters = 4);

/// Rank that matches a parameter budget: a rank-k factorization of an
/// m×n matrix stores k(m+n) values, so compressing by `ratio` keeps
/// k = (1-ratio)·m·n / (m+n).
[[nodiscard]] std::size_t rank_for_ratio(std::size_t m, std::size_t n,
                                         double ratio);

}  // namespace et::pruning
