// The four whole-model pruning strategies compared in Table 1 / Fig. 13,
// and the deployment step that turns a trained (and masked) model into
// inference-side pruned weight formats.
//
//   kIrregular       — magnitude pruning on every matrix → IrregularWeight.
//   kColumn          — column pruning on every matrix → ColPrunedWeight.
//   kTile            — tensor-tile pruning on every matrix → TilePruned.
//   kAttentionAware  — §4.3 / Table 1: W_V row-pruned (16-row groups,
//                      balanced per head so E.T. can consume the condensed
//                      V), everything else tensor-tile pruned. When W_V's
//                      head blocks are 16-aligned, W_O's mask is
//                      additionally intersected with the dead Z columns,
//                      which is the "attention-aware pruning can further
//                      increase sparsity" effect of §5.3.3.
//
// A separate flag selects the pre-computed linear transformation variant
// of §4.3 / Fig. 3(b): W_V dense, W_O row-pruned, W_VO folded at deploy.
#pragma once

#include <string_view>
#include <vector>

#include "nn/encoder.hpp"
#include "sparse/mask.hpp"
#include "train/model.hpp"

namespace et::pruning {

enum class Strategy { kIrregular, kColumn, kTile, kAttentionAware };

[[nodiscard]] constexpr std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kIrregular: return "irregular";
    case Strategy::kColumn: return "column";
    case Strategy::kTile: return "tile";
    case Strategy::kAttentionAware: return "attention-aware";
  }
  return "?";
}

struct StrategyOptions {
  /// Use the Fig. 3(b) pre-computed W_V·W_O variant of attention-aware
  /// pruning (W_V dense, W_O row-pruned) instead of the Table 1 variant
  /// (W_V row-pruned, W_O tile-pruned).
  bool precompute_vo = false;
  /// Row-group granularity of attention-aware W_V pruning.
  std::size_t v_group = 16;
};

struct LayerMasks {
  sparse::Mask wq, wk, wv, wo, ff1, ff2;
};

struct ModelMasks {
  std::vector<LayerMasks> layers;
  /// Weighted fraction of pruned weight entries across all masks.
  [[nodiscard]] double overall_ratio() const;
};

/// Compute masks for one encoder layer's six weight matrices.
[[nodiscard]] LayerMasks compute_layer_masks(const train::EncoderLayer& layer,
                                             Strategy strategy, double ratio,
                                             const StrategyOptions& opt = {});

/// Compute masks for every layer of a model.
[[nodiscard]] ModelMasks compute_model_masks(train::TransformerModel& model,
                                             Strategy strategy, double ratio,
                                             const StrategyOptions& opt = {});

/// Zero the pruned weights and attach the masks to the Params so masked
/// retraining keeps them at zero (Fig. 6 steps (v)–(vi)). `masks` must
/// outlive the model's training.
void attach_masks(train::TransformerModel& model, ModelMasks& masks);

/// Convert one trained+masked layer into inference weights in the formats
/// the strategy prescribes.
[[nodiscard]] nn::EncoderWeights deploy_layer(const train::EncoderLayer& layer,
                                              const LayerMasks& masks,
                                              Strategy strategy,
                                              const StrategyOptions& opt = {});

/// Deploy every layer of a model.
[[nodiscard]] std::vector<nn::EncoderWeights> deploy_model(
    train::TransformerModel& model, const ModelMasks& masks, Strategy strategy,
    const StrategyOptions& opt = {});

}  // namespace et::pruning
