// Accumulator-precision policies for the simulated tensor-core GEMMs.
//
// V100S tensor cores multiply FP16×FP16 and accumulate in either FP16
// ("pure FP16") or FP32 ("mixed precision") — §2.2 of the paper. Pure
// FP16 halves the shared-memory footprint of an intermediate row and
// skips FP32->FP16 conversion before masking/softmax (§3.3), but
// overflows on unscaled Q·K^T; E.T.'s scale-reordering fixes that.
#pragma once

#include <string_view>

#include "numeric/bfloat16.hpp"
#include "numeric/half.hpp"

namespace et::numeric {

enum class Precision {
  kFp32,       ///< plain float math (general cores; no tensor core)
  kPureFp16,   ///< FP16 multiply, FP16 accumulate
  kMixed,      ///< FP16 multiply, FP32 accumulate (tensor-core default)
  kBf16Mixed,  ///< BF16 multiply, FP32 accumulate (A100/TPU style)
};

[[nodiscard]] constexpr std::string_view to_string(Precision p) noexcept {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kPureFp16: return "fp16";
    case Precision::kMixed: return "mixed";
    case Precision::kBf16Mixed: return "bf16";
  }
  return "?";
}

/// Bytes per element of the *storage* type under a policy.
[[nodiscard]] constexpr std::size_t storage_bytes(Precision p) noexcept {
  return p == Precision::kFp32 ? 4 : 2;
}

/// Bytes per element of the *accumulator* under a policy (what an
/// intermediate row of Q·K^T occupies in shared memory — §3.3 overhead (i)).
[[nodiscard]] constexpr std::size_t accumulator_bytes(Precision p) noexcept {
  return p == Precision::kPureFp16 ? 2 : 4;
}

/// One simulated tensor-core FMA step: d = a*b + c with the policy's
/// rounding applied at each accumulation, which is what produces the
/// Fig. 4 overflow pattern for kPureFp16.
[[nodiscard]] inline float fma_step(Precision p, float a, float b, float c) {
  switch (p) {
    case Precision::kFp32:
      return a * b + c;
    case Precision::kPureFp16: {
      const half prod = half(a) * half(b);
      return static_cast<float>(half(static_cast<float>(prod) +
                                     static_cast<float>(half(c))));
    }
    case Precision::kMixed:
      return static_cast<float>(half(a)) * static_cast<float>(half(b)) + c;
    case Precision::kBf16Mixed:
      return static_cast<float>(bfloat16(a)) * static_cast<float>(bfloat16(b)) +
             c;
  }
  return a * b + c;
}

/// Round a finished accumulator back to the storage type of the policy
/// (the "convert FP32 back to FP16 for masking/softmax" step of §3.3).
[[nodiscard]] inline float round_to_storage(Precision p, float x) {
  switch (p) {
    case Precision::kFp32:
      return x;
    case Precision::kPureFp16:
    case Precision::kMixed:
      return static_cast<float>(half(x));
    case Precision::kBf16Mixed:
      return static_cast<float>(bfloat16(x));
  }
  return x;
}

}  // namespace et::numeric
