#include "numeric/half.hpp"

#include <atomic>
#include <bit>
#include <ostream>

namespace et::numeric {

namespace {
std::atomic<std::uint64_t> g_overflow_events{0};
}  // namespace

std::uint64_t overflow_count() noexcept {
  return g_overflow_events.load(std::memory_order_relaxed);
}

void reset_overflow_count() noexcept {
  g_overflow_events.store(0, std::memory_order_relaxed);
}

namespace detail {

// Round-to-nearest-even float -> binary16, matching the behaviour of
// hardware FP16 conversion (e.g. CUDA __float2half_rn). A finite input
// that rounds to ±inf is recorded as an overflow event.
std::uint16_t f32_to_f16_bits(float f) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t exp32 = (x >> 23) & 0xffu;
  const std::uint32_t mant = x & 0x7fffffu;

  if (exp32 == 0xffu) {  // inf or NaN: propagate, never counts as overflow
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7c00u);
    // Keep NaN payload top bits; force a quiet NaN if payload truncates to 0.
    std::uint16_t payload = static_cast<std::uint16_t>(mant >> 13);
    if (payload == 0) payload = 0x200u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
  }

  const std::int32_t exp = static_cast<std::int32_t>(exp32) - 127 + 15;

  if (exp >= 0x1f) {  // overflow to inf
    g_overflow_events.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return sign;  // rounds to (signed) zero
    const std::uint32_t full = mant | 0x800000u;  // implicit leading 1
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);  // 14..24
    std::uint16_t sub = static_cast<std::uint16_t>(full >> shift);
    const std::uint32_t rem = full & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (sub & 1u))) ++sub;
    // Rounding a subnormal up may legitimately carry into the smallest
    // normal (exponent field becomes 1); the bit pattern is already right.
    return static_cast<std::uint16_t>(sign | sub);
  }

  std::uint16_t h = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13));
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) {
    // Carry may ripple into the exponent; 0x7bff + 1 == 0x7c00 == inf,
    // which is the 65520-and-above overflow case.
    ++h;
    if ((h & 0x7fffu) == 0x7c00u) {
      g_overflow_events.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return h;
}

float f16_bits_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;

  if (exp == 0x1fu) {  // inf / NaN
    return std::bit_cast<float>(sign | 0x7f800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);  // ±0
    // Normalize the subnormal.
    int e = -1;
    do {
      ++e;
      mant <<= 1;
    } while ((mant & 0x400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return std::bit_cast<float>(sign | (exp32 << 23) | ((mant & 0x3ffu) << 13));
  }
  const std::uint32_t exp32 = exp - 15 + 127;
  return std::bit_cast<float>(sign | (exp32 << 23) | (mant << 13));
}

}  // namespace detail

std::ostream& operator<<(std::ostream& os, half h) {
  return os << static_cast<float>(h);
}

}  // namespace et::numeric
