#include "numeric/bfloat16.hpp"

#include <bit>
#include <ostream>

namespace et::numeric::detail {

// Round-to-nearest-even truncation of the low 16 mantissa bits.
std::uint16_t f32_to_bf16_bits(float f) noexcept {
  std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  if ((x & 0x7f800000u) == 0x7f800000u && (x & 0x7fffffu) != 0) {
    // NaN: keep it a NaN after truncation.
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  const std::uint32_t lsb = (x >> 16) & 1u;
  x += 0x7fffu + lsb;  // RNE rounding bias
  return static_cast<std::uint16_t>(x >> 16);
}

float bf16_bits_to_f32(std::uint16_t b) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

}  // namespace et::numeric::detail

namespace et::numeric {
std::ostream& operator<<(std::ostream& os, bfloat16 v) {
  return os << static_cast<float>(v);
}
}  // namespace et::numeric
