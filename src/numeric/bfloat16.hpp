// Brain floating point (bfloat16): same exponent range as float32 with an
// 8-bit mantissa. The paper (§2.2) notes A100/TPU support it; E.T. itself
// runs on V100S FP16, so bf16 is provided for the precision-policy sweep
// ablation (it does not overflow where FP16 does, but loses precision).
#pragma once

#include <cstdint>
#include <iosfwd>

namespace et::numeric {

namespace detail {
std::uint16_t f32_to_bf16_bits(float f) noexcept;
float bf16_bits_to_f32(std::uint16_t b) noexcept;
}  // namespace detail

class bfloat16 {
 public:
  constexpr bfloat16() = default;
  explicit bfloat16(float f) : bits_(detail::f32_to_bf16_bits(f)) {}
  explicit bfloat16(double d) : bfloat16(static_cast<float>(d)) {}

  static constexpr bfloat16 from_bits(std::uint16_t b) noexcept {
    bfloat16 v;
    v.bits_ = b;
    return v;
  }
  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  operator float() const noexcept { return detail::bf16_bits_to_f32(bits_); }

  [[nodiscard]] constexpr bool is_finite() const noexcept {
    return (bits_ & 0x7f80u) != 0x7f80u;
  }

  friend bfloat16 operator+(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) + static_cast<float>(b));
  }
  friend bfloat16 operator-(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) - static_cast<float>(b));
  }
  friend bfloat16 operator*(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) * static_cast<float>(b));
  }
  friend bfloat16 operator/(bfloat16 a, bfloat16 b) {
    return bfloat16(static_cast<float>(a) / static_cast<float>(b));
  }
  friend bool operator==(bfloat16 a, bfloat16 b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator!=(bfloat16 a, bfloat16 b) { return !(a == b); }

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, bfloat16 v);

static_assert(sizeof(bfloat16) == 2, "bfloat16 must occupy two bytes");

}  // namespace et::numeric
