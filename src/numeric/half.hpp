// IEEE-754 binary16 ("half") emulated in software, bit-accurate.
//
// The paper (§3.3, Fig. 4) shows that computing Q·K^T in *pure* FP16 on
// tensor cores overflows (|x| > 65504 -> ±inf) unless the 1/sqrt(d_k)
// scaling is reordered to happen before the multiplication. To reproduce
// that claim without tensor-core hardware we need a half type whose
// rounding and overflow semantics match the hardware exactly, plus a way
// to observe overflow events. Every float->half conversion that turns a
// finite value into ±inf bumps a process-wide counter readable through
// overflow_count().
#pragma once

#include <cstdint>
#include <iosfwd>

namespace et::numeric {

/// Number of finite->inf overflow events since the last reset.
/// Counted across all threads (relaxed atomic).
std::uint64_t overflow_count() noexcept;

/// Reset the overflow counter to zero (e.g. at the start of a kernel).
void reset_overflow_count() noexcept;

namespace detail {
std::uint16_t f32_to_f16_bits(float f) noexcept;
float f16_bits_to_f32(std::uint16_t h) noexcept;
}  // namespace detail

/// IEEE-754 binary16. Arithmetic converts to float, operates, and rounds
/// back — which is exactly what "pure FP16" tensor-core accumulation does
/// per fused-multiply-add step at tile granularity.
class half {
 public:
  constexpr half() = default;
  explicit half(float f) : bits_(detail::f32_to_f16_bits(f)) {}
  explicit half(double d) : half(static_cast<float>(d)) {}
  explicit half(int i) : half(static_cast<float>(i)) {}

  static constexpr half from_bits(std::uint16_t b) noexcept {
    half h;
    h.bits_ = b;
    return h;
  }
  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  /// Widening is exact, hence implicit.
  operator float() const noexcept { return detail::f16_bits_to_f32(bits_); }

  [[nodiscard]] constexpr bool is_inf() const noexcept {
    return (bits_ & 0x7fffu) == 0x7c00u;
  }
  [[nodiscard]] constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  [[nodiscard]] constexpr bool is_finite() const noexcept {
    return (bits_ & 0x7c00u) != 0x7c00u;
  }
  [[nodiscard]] constexpr bool signbit() const noexcept {
    return (bits_ & 0x8000u) != 0;
  }

  /// Largest finite binary16 value (65504).
  static constexpr float max() noexcept { return 65504.0f; }
  /// Smallest positive normal (2^-14).
  static constexpr float min_normal() noexcept { return 6.103515625e-05f; }
  /// Machine epsilon (2^-10).
  static constexpr float epsilon() noexcept { return 9.765625e-04f; }

  friend half operator+(half a, half b) {
    return half(static_cast<float>(a) + static_cast<float>(b));
  }
  friend half operator-(half a, half b) {
    return half(static_cast<float>(a) - static_cast<float>(b));
  }
  friend half operator*(half a, half b) {
    return half(static_cast<float>(a) * static_cast<float>(b));
  }
  friend half operator/(half a, half b) {
    return half(static_cast<float>(a) / static_cast<float>(b));
  }
  friend half operator-(half a) { return from_bits(a.bits_ ^ 0x8000u); }
  half& operator+=(half b) { return *this = *this + b; }
  half& operator-=(half b) { return *this = *this - b; }
  half& operator*=(half b) { return *this = *this * b; }
  half& operator/=(half b) { return *this = *this / b; }

  friend bool operator==(half a, half b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend bool operator!=(half a, half b) { return !(a == b); }
  friend bool operator<(half a, half b) {
    return static_cast<float>(a) < static_cast<float>(b);
  }
  friend bool operator>(half a, half b) { return b < a; }
  friend bool operator<=(half a, half b) { return !(b < a); }
  friend bool operator>=(half a, half b) { return !(a < b); }

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, half h);

static_assert(sizeof(half) == 2, "binary16 must occupy two bytes");

}  // namespace et::numeric
