// Deterministic random initialization. Everything in the repo seeds
// explicitly so every experiment is bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/matrix.hpp"

namespace et::tensor {

/// Fill with U(lo, hi).
template <typename T>
void fill_uniform(Matrix<T>& m, std::uint64_t seed, float lo = -1.0f,
                  float hi = 1.0f) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (auto& v : m.flat()) v = T(dist(rng));
}

/// Fill with N(mean, stddev).
template <typename T>
void fill_normal(Matrix<T>& m, std::uint64_t seed, float mean = 0.0f,
                 float stddev = 1.0f) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(mean, stddev);
  for (auto& v : m.flat()) v = T(dist(rng));
}

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
template <typename T>
void fill_xavier(Matrix<T>& m, std::uint64_t seed) {
  const float a =
      std::sqrt(6.0f / (static_cast<float>(m.rows()) + static_cast<float>(m.cols())));
  fill_uniform(m, seed, -a, a);
}

/// Embedding-scale init used by the paper's models: N(0, 1/sqrt(d)).
template <typename T>
void fill_embedding(Matrix<T>& m, std::uint64_t seed) {
  fill_normal(m, seed, 0.0f,
              1.0f / std::sqrt(static_cast<float>(m.cols())));
}

}  // namespace et::tensor
