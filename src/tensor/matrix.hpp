// Dense row-major matrix container used throughout E.T.
//
// Kept deliberately small: owning storage, checked element access in
// debug builds, row spans, and head-slicing views (a "head" in the paper
// is a contiguous block of columns of width d_model / H — the ‖ operator
// in Fig. 3 concatenates heads along columns).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace et::tensor {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<T> flat() noexcept { return {data_}; }
  [[nodiscard]] std::span<const T> flat() const noexcept { return {data_}; }

  void fill(T v) { data_.assign(data_.size(), v); }

  /// Bytes this matrix would occupy in (simulated) device global memory.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(T);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Transpose (out-of-place).
template <typename T>
[[nodiscard]] Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      t(c, r) = a(r, c);
    }
  }
  return t;
}

/// Copy the column block [col0, col0+width) — e.g. one attention head.
template <typename T>
[[nodiscard]] Matrix<T> slice_cols(const Matrix<T>& a, std::size_t col0,
                                   std::size_t width) {
  assert(col0 + width <= a.cols());
  Matrix<T> s(a.rows(), width);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      s(r, c) = a(r, col0 + c);
    }
  }
  return s;
}

/// Copy the row block [row0, row0+height).
template <typename T>
[[nodiscard]] Matrix<T> slice_rows(const Matrix<T>& a, std::size_t row0,
                                   std::size_t height) {
  assert(row0 + height <= a.rows());
  Matrix<T> s(height, a.cols());
  for (std::size_t r = 0; r < height; ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      s(r, c) = a(row0 + r, c);
    }
  }
  return s;
}

/// Concatenate along columns — the paper's ‖ operator over heads.
template <typename T>
[[nodiscard]] Matrix<T> concat_cols(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.rows() == b.rows());
  Matrix<T> c(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(r, j) = a(r, j);
    for (std::size_t j = 0; j < b.cols(); ++j) c(r, a.cols() + j) = b(r, j);
  }
  return c;
}

/// Write the column block of `dst` starting at col0 from `src`.
template <typename T>
void paste_cols(Matrix<T>& dst, const Matrix<T>& src, std::size_t col0) {
  assert(col0 + src.cols() <= dst.cols());
  assert(src.rows() == dst.rows());
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < src.cols(); ++c) {
      dst(r, col0 + c) = src(r, c);
    }
  }
}

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

}  // namespace et::tensor
