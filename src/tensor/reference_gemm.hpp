// Double-precision reference GEMM — the oracle every simulated kernel is
// tested against. Never used on a hot path.
#pragma once

#include <cassert>

#include "tensor/matrix.hpp"

namespace et::tensor {

/// C = A (m×k) · B (k×n), accumulated in double, emitted as float.
template <typename TA, typename TB>
[[nodiscard]] MatrixF reference_gemm(const Matrix<TA>& a, const Matrix<TB>& b) {
  assert(a.cols() == b.rows());
  MatrixF c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a(i, k)) * static_cast<double>(b(k, j));
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

/// C = A (m×k) · Bᵀ where B is (n×k) — the X·Wᵀ shape of every linear
/// transformation in the paper (§2.1).
template <typename TA, typename TB>
[[nodiscard]] MatrixF reference_gemm_nt(const Matrix<TA>& a,
                                        const Matrix<TB>& b) {
  assert(a.cols() == b.cols());
  MatrixF c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a(i, k)) * static_cast<double>(b(j, k));
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

}  // namespace et::tensor
