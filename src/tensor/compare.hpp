// Numerical comparison helpers for cross-implementation equivalence tests
// (the paper verifies, e.g., that the pre-computed linear transformation
// "yields the same results as the original design" — §3.1).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/matrix.hpp"

namespace et::tensor {

template <typename T>
[[nodiscard]] double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a.flat()[i]) -
                             static_cast<double>(b.flat()[i])));
  }
  return m;
}

template <typename T>
[[nodiscard]] bool allclose(const Matrix<T>& a, const Matrix<T>& b,
                            double atol = 1e-6, double rtol = 1e-5) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(a.flat()[i]);
    const double y = static_cast<double>(b.flat()[i]);
    if (std::isnan(x) != std::isnan(y)) return false;
    if (std::isnan(x)) continue;
    if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
  }
  return true;
}

template <typename T>
[[nodiscard]] double frobenius_norm(const Matrix<T>& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = static_cast<double>(a.flat()[i]);
    s += v * v;
  }
  return std::sqrt(s);
}

/// l2 norm of the r×c tile whose top-left corner is (tr*r, tc*c) — the
/// quantity ‖W_ij‖₂ that drives tile pruning (§4.2).
template <typename T>
[[nodiscard]] double tile_l2_norm(const Matrix<T>& w, std::size_t tile_rows,
                                  std::size_t tile_cols, std::size_t tr,
                                  std::size_t tc) {
  double s = 0.0;
  for (std::size_t i = 0; i < tile_rows; ++i) {
    for (std::size_t j = 0; j < tile_cols; ++j) {
      const double v =
          static_cast<double>(w(tr * tile_rows + i, tc * tile_cols + j));
      s += v * v;
    }
  }
  return std::sqrt(s);
}

}  // namespace et::tensor
