#include "net/frame.hpp"

#include <cstring>

namespace et::net {

namespace {

// ------------------------------------------------------ payload writers ----

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

void put_i32(std::string& out, std::int32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// ------------------------------------------------------ payload readers ----
// Bounds-checked cursor over one frame's payload; any read past the end
// flags the frame malformed instead of reading garbage.

struct Cursor {
  const char* p = nullptr;
  std::size_t left = 0;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    left -= n;
    return s;
  }
};

}  // namespace

std::string encode_frame(const Frame& f) {
  std::string payload;
  payload.push_back(static_cast<char>(f.type));
  switch (f.type) {
    case FrameType::kHello:
      put_string(payload, f.text);
      break;
    case FrameType::kHelloOk:
      put_string(payload, f.text);
      put_u8(payload, f.code);
      break;
    case FrameType::kSubmit:
      put_u64(payload, f.stream_id);
      put_string(payload, f.text);
      put_u32(payload, f.max_new_tokens);
      put_i32(payload, f.eos_token);
      put_u32(payload, static_cast<std::uint32_t>(f.prompt.size()));
      for (std::int32_t t : f.prompt) put_i32(payload, t);
      break;
    case FrameType::kToken:
      put_u64(payload, f.stream_id);
      put_u32(payload, f.index);
      put_i32(payload, f.token);
      break;
    case FrameType::kDone:
      put_u64(payload, f.stream_id);
      put_u8(payload, f.code);
      put_u32(payload, f.index);
      break;
    case FrameType::kReject:
      put_u64(payload, f.stream_id);
      put_u8(payload, f.code);
      put_string(payload, f.text);
      break;
    case FrameType::kCancel:
      put_u64(payload, f.stream_id);
      break;
    case FrameType::kError:
      put_string(payload, f.text);
      break;
  }
  std::string out;
  out.reserve(4 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

Frame make_hello(std::string_view api_key) {
  Frame f;
  f.type = FrameType::kHello;
  f.text = api_key;
  return f;
}

Frame make_hello_ok(std::string_view tenant, serving::Priority tier) {
  Frame f;
  f.type = FrameType::kHelloOk;
  f.text = tenant;
  f.code = static_cast<std::uint8_t>(tier);
  return f;
}

Frame make_submit(std::uint64_t stream_id, std::string_view model,
                  std::vector<std::int32_t> prompt,
                  std::uint32_t max_new_tokens, std::int32_t eos_token) {
  Frame f;
  f.type = FrameType::kSubmit;
  f.stream_id = stream_id;
  f.text = model;
  f.prompt = std::move(prompt);
  f.max_new_tokens = max_new_tokens;
  f.eos_token = eos_token;
  return f;
}

Frame make_token(std::uint64_t stream_id, std::uint32_t index,
                 std::int32_t token) {
  Frame f;
  f.type = FrameType::kToken;
  f.stream_id = stream_id;
  f.index = index;
  f.token = token;
  return f;
}

Frame make_done(std::uint64_t stream_id, nn::StopReason reason,
                std::uint32_t token_count) {
  Frame f;
  f.type = FrameType::kDone;
  f.stream_id = stream_id;
  f.code = static_cast<std::uint8_t>(reason);
  f.index = token_count;
  return f;
}

Frame make_reject(std::uint64_t stream_id, NetStatus status,
                  std::string_view detail) {
  Frame f;
  f.type = FrameType::kReject;
  f.stream_id = stream_id;
  f.code = static_cast<std::uint8_t>(status);
  f.text = detail;
  return f;
}

Frame make_cancel(std::uint64_t stream_id) {
  Frame f;
  f.type = FrameType::kCancel;
  f.stream_id = stream_id;
  return f;
}

Frame make_error(std::string_view detail) {
  Frame f;
  f.type = FrameType::kError;
  f.text = detail;
  return f;
}

void FrameReader::feed(const char* data, std::size_t n) {
  if (!error_.empty()) return;
  buf_.append(data, n);
}

std::optional<Frame> FrameReader::next() {
  if (!error_.empty()) return std::nullopt;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof len);
  if (len > kMaxFramePayload) {
    error_ = "frame payload length " + std::to_string(len) +
             " exceeds the protocol cap";
    return std::nullopt;
  }
  if (len == 0) {
    error_ = "empty frame payload (missing type byte)";
    return std::nullopt;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;

  Cursor c{buf_.data() + pos_ + 4, len, true};
  pos_ += 4 + static_cast<std::size_t>(len);

  Frame f;
  const std::uint8_t type = c.u8();
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
      f.type = FrameType::kHello;
      f.text = c.str();
      break;
    case FrameType::kHelloOk:
      f.type = FrameType::kHelloOk;
      f.text = c.str();
      f.code = c.u8();
      break;
    case FrameType::kSubmit: {
      f.type = FrameType::kSubmit;
      f.stream_id = c.u64();
      f.text = c.str();
      f.max_new_tokens = c.u32();
      f.eos_token = c.i32();
      const std::uint32_t n = c.u32();
      // The prompt must actually fit the payload that framed it.
      if (c.ok && static_cast<std::size_t>(n) * 4 <= c.left) {
        f.prompt.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) f.prompt.push_back(c.i32());
      } else {
        c.ok = false;
      }
      break;
    }
    case FrameType::kToken:
      f.type = FrameType::kToken;
      f.stream_id = c.u64();
      f.index = c.u32();
      f.token = c.i32();
      break;
    case FrameType::kDone:
      f.type = FrameType::kDone;
      f.stream_id = c.u64();
      f.code = c.u8();
      f.index = c.u32();
      break;
    case FrameType::kReject:
      f.type = FrameType::kReject;
      f.stream_id = c.u64();
      f.code = c.u8();
      f.text = c.str();
      break;
    case FrameType::kCancel:
      f.type = FrameType::kCancel;
      f.stream_id = c.u64();
      break;
    case FrameType::kError:
      f.type = FrameType::kError;
      f.text = c.str();
      break;
    default:
      error_ = "unknown frame type " + std::to_string(type);
      return std::nullopt;
  }
  if (!c.ok) {
    error_ = std::string("truncated ") + std::string(to_string(f.type)) +
             " frame payload";
    return std::nullopt;
  }
  return f;
}

}  // namespace et::net
