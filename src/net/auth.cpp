#include "net/auth.hpp"

#include <stdexcept>

namespace et::net {

TenantTable::TenantTable(std::vector<Tenant> tenants)
    : tenants_(std::move(tenants)) {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name.empty() || tenants_[i].api_key.empty()) {
      throw std::invalid_argument(
          "TenantTable: tenant name and api_key must be non-empty");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (tenants_[j].api_key == tenants_[i].api_key) {
        throw std::invalid_argument("TenantTable: duplicate api_key for '" +
                                    tenants_[j].name + "' and '" +
                                    tenants_[i].name + "'");
      }
    }
  }
}

std::size_t TenantTable::find_by_key(std::string_view api_key) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].api_key == api_key) return i;
  }
  return npos;
}

TenantTable TenantTable::demo() {
  return TenantTable({
      {"interactive", "demo-interactive", serving::Priority::kInteractive,
       /*bucket_capacity=*/64, /*refill_per_tick=*/4, /*max_inflight=*/16},
      {"normal", "demo-normal", serving::Priority::kNormal,
       /*bucket_capacity=*/64, /*refill_per_tick=*/2, /*max_inflight=*/16},
      {"bulk", "demo-bulk", serving::Priority::kBulk,
       /*bucket_capacity=*/32, /*refill_per_tick=*/1, /*max_inflight=*/8},
  });
}

void refill_bucket(const Tenant& t, TenantState& s) {
  if (t.bucket_capacity == kUnlimited) return;
  const std::size_t room = t.bucket_capacity - s.bucket;
  s.bucket += t.refill_per_tick < room ? t.refill_per_tick : room;
}

bool try_consume(const Tenant& t, TenantState& s) {
  if (t.bucket_capacity == kUnlimited) return true;
  if (s.bucket == 0) return false;
  --s.bucket;
  return true;
}

}  // namespace et::net
