// net::TenantTable — per-tenant API keys, priority tiers, rate limits
// and quotas for the network front-end (docs/api.md "Auth and tenants").
//
// A tenant is an API key bound to a serving tier: the tier maps directly
// onto the serving runtime's priority classes (interactive / normal /
// bulk), so what a key is worth on the wire is exactly what it is worth
// in the admission queue. On top of the tier each tenant carries:
//
//   - a token-bucket rate limit on the server's logical tick clock:
//     `bucket_capacity` submissions of burst, refilled `refill_per_tick`
//     per drive tick — deterministic, like every other budget in the
//     serving stack (no wall-clock in the admission path);
//   - an in-flight quota (`max_inflight`): concurrent generations above
//     it are refused with NetStatus::kQuotaExceeded before touching the
//     inference queue.
//
// The table itself is immutable after construction (connection threads
// may look keys up concurrently); the mutable bucket/in-flight state
// lives in TenantState and is owned by the server's drive thread alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serving/server.hpp"

namespace et::net {

/// "No limit" sentinel for bucket capacity / quota fields.
inline constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

struct Tenant {
  std::string name;
  std::string api_key;
  serving::Priority tier = serving::Priority::kNormal;
  /// Token bucket: burst size. kUnlimited disables rate limiting.
  std::size_t bucket_capacity = kUnlimited;
  /// Tokens added back per drive tick (whole submissions).
  std::size_t refill_per_tick = 1;
  /// Max concurrent in-flight generations. kUnlimited disables the quota.
  std::size_t max_inflight = kUnlimited;
};

/// Mutable per-tenant serving state, owned by the drive thread.
struct TenantState {
  std::size_t bucket = 0;    ///< tokens available now
  std::size_t inflight = 0;  ///< generations submitted and not yet done
};

class TenantTable {
 public:
  TenantTable() = default;
  /// Throws std::invalid_argument on an empty name/key or a duplicate
  /// key — an ambiguous key would make auth order-dependent.
  explicit TenantTable(std::vector<Tenant> tenants);

  /// Index of the tenant owning `api_key`, or npos. Safe to call from
  /// any thread (the table is immutable).
  [[nodiscard]] std::size_t find_by_key(std::string_view api_key) const;

  [[nodiscard]] const Tenant& tenant(std::size_t idx) const {
    return tenants_.at(idx);
  }
  [[nodiscard]] std::size_t size() const noexcept { return tenants_.size(); }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The three-tenant demo table et_cli --listen serves: keys
  /// "demo-interactive" / "demo-normal" / "demo-bulk", one per tier,
  /// generous buckets, documented in docs/api.md.
  [[nodiscard]] static TenantTable demo();

 private:
  std::vector<Tenant> tenants_;
};

/// Deterministic token-bucket step: refill then clamp to capacity.
/// (Free function so the arithmetic is unit-testable without a server.)
void refill_bucket(const Tenant& t, TenantState& s);

/// Consume one submission from the bucket; false when empty (rate
/// limited). An unlimited bucket always grants.
[[nodiscard]] bool try_consume(const Tenant& t, TenantState& s);

}  // namespace et::net
