#include "net/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace et::net {

namespace {

// Write the whole buffer, riding out partial sends and EINTR.
// MSG_NOSIGNAL: a peer that vanished mid-stream must surface as an
// error return, not a process-killing SIGPIPE.
bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- types ----

// One accepted connection. The acceptor creates it and spawns its reader;
// the drive thread owns its auth state and tears it down (shutdown fd ->
// join reader -> close). `dead` is the only field crossing threads after
// publication, hence atomic.
struct ApiServer::Conn {
  std::uint64_t id = 0;
  int fd = -1;
  std::thread reader;
  std::atomic<bool> dead{false};  ///< no more frames in or out
  bool cleaned = false;  ///< drive thread cancelled its streams (drive-only)
  bool authed = false;                   // drive-thread-only
  std::size_t tenant = TenantTable::npos;  // drive-thread-only
};

// One serving engine bound to one pinned model version. The pin is
// declared before the server so destruction releases the engine (and any
// Model copies borrowing the weights) first, the pin last.
struct ApiServer::EngineSlot {
  std::string model_name;
  std::uint64_t version = 0;
  serving::ModelPin pin;
  std::unique_ptr<serving::InferenceServer> server;
};

// One in-flight generation: which connection/stream it answers to and
// which engine is decoding it. Engines are heap-stable (unique_ptr), and
// a slot is destroyed only when idle, so the pointer outlives the stream.
struct ApiServer::StreamRef {
  std::uint64_t conn_id = 0;
  Conn* conn = nullptr;
  std::uint64_t stream_id = 0;
  EngineSlot* engine = nullptr;
  serving::RequestHandle handle;
  std::size_t tenant = TenantTable::npos;
};

// A unit of work for the drive thread; readers and the acceptor only
// ever enqueue these.
struct ApiServer::Cmd {
  enum class Kind : std::uint8_t {
    kFrame,         ///< a parsed client frame (conn_id + frame)
    kDisconnect,    ///< reader saw EOF / reset
    kProtoError,    ///< reader hit a framing error (detail set)
    kAccepted,      ///< acceptor admitted a connection (count it)
    kRejectedConn,  ///< acceptor turned one away (pool full)
    kSwap,          ///< repoint model_name at the pinned version
  };
  Kind kind = Kind::kFrame;
  std::uint64_t conn_id = 0;
  Frame frame;
  std::string detail;
  std::string model_name;
  std::uint64_t version = 0;
  serving::ModelPin pin;
};

// ---------------------------------------------------------- construction ----

ApiServer::ApiServer(ApiServerConfig cfg, TenantTable tenants,
                     serving::ModelRegistry& registry)
    : cfg_(std::move(cfg)),
      tenants_(std::move(tenants)),
      registry_(registry),
      tenant_state_(tenants_.size()) {
  // Buckets start full: a fresh tenant gets its whole burst.
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    tenant_state_[i].bucket = tenants_.tenant(i).bucket_capacity == kUnlimited
                                  ? 0
                                  : tenants_.tenant(i).bucket_capacity;
  }

  connections_accepted_ = &metrics_.counter("net_connections_accepted");
  connections_rejected_ = &metrics_.counter("net_connections_rejected");
  auth_failures_ = &metrics_.counter("net_auth_failures");
  protocol_errors_ = &metrics_.counter("net_protocol_errors");
  submitted_ = &metrics_.counter("net_requests_submitted");
  completed_ = &metrics_.counter("net_requests_completed");
  rejected_ = &metrics_.counter("net_requests_rejected");
  rate_limited_ = &metrics_.counter("net_rate_limited");
  quota_rejected_ = &metrics_.counter("net_quota_rejected");
  cancelled_ = &metrics_.counter("net_requests_cancelled");
  disconnect_cancels_ = &metrics_.counter("net_disconnect_cancels");
  tokens_streamed_ = &metrics_.counter("net_tokens_streamed");
  connections_open_ = &metrics_.gauge("net_connections_open");
  engines_active_ = &metrics_.gauge("net_engines_active");
  engines_draining_ = &metrics_.gauge("net_engines_draining");
  streams_live_ = &metrics_.gauge("net_streams_live");
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const std::string base = "tenant_" + tenants_.tenant(i).name + "_";
    TenantMetrics tm;
    tm.submitted = &metrics_.counter(base + "submitted");
    tm.completed = &metrics_.counter(base + "completed");
    tm.rejected = &metrics_.counter(base + "rejected");
    tm.tokens = &metrics_.counter(base + "tokens");
    tenant_metrics_.push_back(tm);
  }
  // Registry gauges last, so snapshots taken before this PR's registry
  // existed remain a prefix of the new field list.
  registry_.bind_metrics(metrics_);
}

ApiServer::~ApiServer() {
  if (started_.load() && !stopped_.load()) shutdown(0);
}

// ---------------------------------------------------------------- engines ----

ApiServer::EngineSlot* ApiServer::find_engine(const std::string& name) {
  for (auto& e : engines_) {
    if (e->model_name == name) return e.get();
  }
  return nullptr;
}

std::unique_ptr<ApiServer::EngineSlot> ApiServer::make_engine(
    const std::string& name, serving::ModelPin pin) {
  auto slot = std::make_unique<EngineSlot>();
  slot->model_name = name;
  slot->version = pin->version();
  slot->pin = std::move(pin);
  slot->server = std::make_unique<serving::InferenceServer>(slot->pin->model(),
                                                            cfg_.engine);
  return slot;
}

void ApiServer::serve_model(const std::string& name) {
  serving::ModelPin pin = registry_.acquire(name);
  if (!pin) {
    throw std::invalid_argument("serve_model: registry has no model named '" +
                                name + "'");
  }
  std::lock_guard<std::mutex> lk(state_mu_);
  if (find_engine(name) != nullptr) {
    throw std::invalid_argument("serve_model: '" + name +
                                "' is already served; use swap_model");
  }
  engines_.push_back(make_engine(name, std::move(pin)));
}

void ApiServer::swap_model(const std::string& name, std::uint64_t version) {
  serving::ModelPin pin = registry_.acquire(name, version);
  if (!pin) {
    throw std::invalid_argument("swap_model: registry has no '" + name +
                                "' version " + std::to_string(version));
  }
  if (!started_.load()) {
    // No drive thread yet: apply synchronously.
    std::lock_guard<std::mutex> lk(state_mu_);
    apply_swap(name, version, std::move(pin));
    return;
  }
  Cmd cmd;
  cmd.kind = Cmd::Kind::kSwap;
  cmd.model_name = name;
  cmd.version = version;
  cmd.pin = std::move(pin);
  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    cmds_.push_back(std::move(cmd));
  }
  cmd_cv_.notify_one();
}

void ApiServer::apply_swap(const std::string& name, std::uint64_t version,
                           serving::ModelPin pin) {
  for (auto it = engines_.begin(); it != engines_.end(); ++it) {
    if ((*it)->model_name == name) {
      if ((*it)->version == version) return;  // already there; drop the pin
      // The old engine keeps ticking on the draining list until every
      // in-flight request retires; only then is it destroyed and its pin
      // (possibly the model's last) released.
      draining_.push_back(std::move(*it));
      engines_.erase(it);
      engines_.push_back(make_engine(name, std::move(pin)));
      registry_.note_swap();
      return;
    }
  }
  engines_.push_back(make_engine(name, std::move(pin)));
}

// ----------------------------------------------------------------- start ----

void ApiServer::start(core::ExecContext& ctx) {
  if (started_.exchange(true)) {
    throw std::runtime_error("ApiServer::start called twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("bind(127.0.0.1:") +
                             std::to_string(cfg_.port) +
                             "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("listen(): ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { acceptor_loop(); });
  driver_ = std::thread([this, &ctx] { drive_loop(ctx); });
}

bool ApiServer::running() const noexcept {
  return started_.load() && !stopped_.load();
}

// -------------------------------------------------------------- acceptor ----

void ApiServer::acceptor_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down: server is stopping
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      if (conns_.size() < cfg_.max_connections) {
        auto conn = std::make_unique<Conn>();
        conn->id = next_conn_id_++;
        conn->fd = fd;
        Conn* raw = conn.get();
        conn->reader = std::thread([this, raw] { reader_loop(raw); });
        conns_.push_back(std::move(conn));
        admitted = true;
      }
    }
    Cmd cmd;
    if (admitted) {
      cmd.kind = Cmd::Kind::kAccepted;
    } else {
      // Bounded pool: over-capacity peers get a typed error then the
      // door. Sent from this thread — the connection never existed as
      // far as the drive thread is concerned.
      const std::string wire =
          encode_frame(make_error("server at max_connections"));
      send_all(fd, wire.data(), wire.size());
      ::close(fd);
      cmd.kind = Cmd::Kind::kRejectedConn;
    }
    {
      std::lock_guard<std::mutex> lk(cmd_mu_);
      cmds_.push_back(std::move(cmd));
    }
    cmd_cv_.notify_one();
  }
}

// ---------------------------------------------------------------- reader ----

void ApiServer::reader_loop(Conn* conn) {
  FrameReader reader;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Cmd cmd;
      cmd.kind = Cmd::Kind::kDisconnect;
      cmd.conn_id = conn->id;
      std::lock_guard<std::mutex> lk(cmd_mu_);
      cmds_.push_back(std::move(cmd));
      cmd_cv_.notify_one();
      return;
    }
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto f = reader.next()) {
      Cmd cmd;
      cmd.kind = Cmd::Kind::kFrame;
      cmd.conn_id = conn->id;
      cmd.frame = std::move(*f);
      std::lock_guard<std::mutex> lk(cmd_mu_);
      cmds_.push_back(std::move(cmd));
      cmd_cv_.notify_one();
    }
    if (reader.error()) {
      Cmd cmd;
      cmd.kind = Cmd::Kind::kProtoError;
      cmd.conn_id = conn->id;
      cmd.detail = reader.error_detail();
      std::lock_guard<std::mutex> lk(cmd_mu_);
      cmds_.push_back(std::move(cmd));
      cmd_cv_.notify_one();
      return;
    }
  }
}

// ----------------------------------------------------------------- drive ----

void ApiServer::drive_loop(core::ExecContext& ctx) {
  bool busy = false;
  for (;;) {
    std::vector<Cmd> batch;
    bool draining_now = false;
    std::size_t budget = 0;
    {
      std::unique_lock<std::mutex> lk(cmd_mu_);
      if (cmds_.empty() && !shutdown_requested_ && !busy) {
        cmd_cv_.wait_for(lk, std::chrono::milliseconds(1));
      }
      batch.swap(cmds_);
      draining_now = shutdown_requested_;
      budget = drain_budget_;
    }

    std::lock_guard<std::mutex> st(state_mu_);
    for (auto& cmd : batch) process_cmd(cmd);

    // One deterministic bucket refill per drive iteration — the network
    // layer's tick clock, matching the engines' logical time.
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      refill_bucket(tenants_.tenant(i), tenant_state_[i]);
    }

    busy = drive_engines(ctx);

    connections_open_->set(static_cast<double>([this] {
      std::lock_guard<std::mutex> lk(conns_mu_);
      return conns_.size();
    }()));
    engines_active_->set(static_cast<double>(engines_.size()));
    engines_draining_->set(static_cast<double>(draining_.size()));
    streams_live_->set(static_cast<double>(live_.size()));
    registry_.refresh_gauges();

    if (!draining_now) continue;

    if (!busy) break;  // drained clean
    ++drain_result_.drain_ticks_used;
    if (drain_result_.drain_ticks_used < budget) continue;

    // Budget exhausted: cancel what remains so clients get a terminal
    // kDone (cancelled) rather than silence, then stop.
    for (auto& s : live_) {
      if (s.engine->server->cancel(s.handle)) {
        cancelled_->inc();
        ++drain_result_.cancelled;
      }
    }
    harvest_finished();
    streams_live_->set(static_cast<double>(live_.size()));
    break;
  }
}

void ApiServer::process_cmd(Cmd& cmd) {
  switch (cmd.kind) {
    case Cmd::Kind::kAccepted:
      connections_accepted_->inc();
      return;
    case Cmd::Kind::kRejectedConn:
      connections_rejected_->inc();
      return;
    case Cmd::Kind::kSwap:
      apply_swap(cmd.model_name, cmd.version, std::move(cmd.pin));
      return;
    default:
      break;
  }

  Conn* conn = nullptr;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (c->id == cmd.conn_id) {
        conn = c.get();
        break;
      }
    }
  }
  if (conn == nullptr || conn->cleaned) return;  // already torn down

  switch (cmd.kind) {
    case Cmd::Kind::kDisconnect:
      drop_conn(*conn);
      return;
    case Cmd::Kind::kProtoError:
      protocol_errors_->inc();
      send_frame(*conn, make_error(cmd.detail));
      drop_conn(*conn);
      return;
    case Cmd::Kind::kFrame:
      switch (cmd.frame.type) {
        case FrameType::kHello:
          handle_hello(*conn, cmd.frame);
          return;
        case FrameType::kSubmit:
          handle_submit(*conn, cmd.frame);
          return;
        case FrameType::kCancel:
          handle_cancel(*conn, cmd.frame);
          return;
        default:
          // Server-to-client frame types are protocol violations when
          // they arrive inbound.
          protocol_errors_->inc();
          send_frame(*conn, make_error(std::string("unexpected ") +
                                       std::string(to_string(cmd.frame.type)) +
                                       " frame from client"));
          drop_conn(*conn);
          return;
      }
    default:
      return;
  }
}

void ApiServer::handle_hello(Conn& conn, const Frame& f) {
  if (conn.authed) {
    protocol_errors_->inc();
    send_frame(conn, make_error("duplicate hello"));
    drop_conn(conn);
    return;
  }
  const std::size_t idx = tenants_.find_by_key(f.text);
  if (idx == TenantTable::npos) {
    auth_failures_->inc();
    send_frame(conn, make_reject(0, NetStatus::kBadKey, "unknown API key"));
    drop_conn(conn);
    return;
  }
  conn.authed = true;
  conn.tenant = idx;
  send_frame(conn, make_hello_ok(tenants_.tenant(idx).name,
                                 tenants_.tenant(idx).tier));
}

void ApiServer::handle_submit(Conn& conn, const Frame& f) {
  if (!conn.authed) {
    auth_failures_->inc();
    send_frame(conn, make_reject(f.stream_id, NetStatus::kNotAuthed,
                                 "submit before hello"));
    drop_conn(conn);
    return;
  }
  for (const StreamRef& s : live_) {
    if (s.conn_id == conn.id && s.stream_id == f.stream_id) {
      protocol_errors_->inc();
      send_frame(conn, make_error("duplicate stream_id " +
                                  std::to_string(f.stream_id)));
      drop_conn(conn);
      return;
    }
  }
  const Tenant& tenant = tenants_.tenant(conn.tenant);
  TenantState& tstate = tenant_state_[conn.tenant];
  TenantMetrics& tm = tenant_metrics_[conn.tenant];

  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    if (shutdown_requested_) {
      rejected_->inc();
      tm.rejected->inc();
      send_frame(conn, make_reject(f.stream_id, NetStatus::kDraining,
                                   "server is draining"));
      return;
    }
  }
  const std::string& model_name =
      f.text.empty() ? cfg_.default_model : f.text;
  EngineSlot* engine = find_engine(model_name);
  if (engine == nullptr) {
    rejected_->inc();
    tm.rejected->inc();
    send_frame(conn, make_reject(f.stream_id, NetStatus::kUnknownModel,
                                 "no served model named '" + model_name + "'"));
    return;
  }
  if (tenant.max_inflight != kUnlimited &&
      tstate.inflight >= tenant.max_inflight) {
    quota_rejected_->inc();
    rejected_->inc();
    tm.rejected->inc();
    send_frame(conn,
               make_reject(f.stream_id, NetStatus::kQuotaExceeded,
                           "tenant at max_inflight=" +
                               std::to_string(tenant.max_inflight)));
    return;
  }
  if (!try_consume(tenant, tstate)) {
    rate_limited_->inc();
    rejected_->inc();
    tm.rejected->inc();
    send_frame(conn, make_reject(f.stream_id, NetStatus::kRateLimited,
                                 "tenant token bucket empty"));
    return;
  }

  serving::Request req;
  req.priority = tenant.tier;
  req.max_new_tokens = f.max_new_tokens;
  req.eos_token = f.eos_token;
  if (!f.prompt.empty()) {
    req.first_token = f.prompt.front();
    req.prompt_tokens = f.prompt;
  }
  req.embed = engine->pin->embed_fn();
  req.select = engine->pin->select_fn();
  Conn* conn_ptr = &conn;
  const std::uint64_t sid = f.stream_id;
  serving::Counter* tenant_tokens = tm.tokens;
  req.on_token = [this, conn_ptr, sid, tenant_tokens](
                     std::uint64_t, std::int32_t token, std::size_t index) {
    tokens_streamed_->inc();
    tenant_tokens->inc();
    if (!conn_ptr->dead.load()) {
      send_frame(*conn_ptr,
                 make_token(sid, static_cast<std::uint32_t>(index), token));
    }
  };

  const serving::RequestHandle h = engine->server->submit(std::move(req));
  submitted_->inc();
  tm.submitted->inc();

  if (engine->server->finished(h)) {
    // Decided at the door: either an engine-level reject (typed, reusing
    // RejectReason) or a degenerate instant completion (max_new_tokens
    // == 0).
    const serving::RequestStatus st = engine->server->status(h);
    if (st.reject_reason != serving::RejectReason::kNone) {
      rejected_->inc();
      tm.rejected->inc();
      send_frame(conn,
                 make_reject(f.stream_id, to_net_status(st.reject_reason),
                             std::string(to_string(st.reject_reason))));
    } else {
      const nn::GenerationResult& r = engine->server->result(h);
      completed_->inc();
      tm.completed->inc();
      send_frame(conn,
                 make_done(f.stream_id, r.stop_reason,
                           static_cast<std::uint32_t>(r.tokens.size())));
    }
    return;
  }

  ++tstate.inflight;
  live_.push_back(
      StreamRef{conn.id, &conn, f.stream_id, engine, h, conn.tenant});
}

void ApiServer::handle_cancel(Conn& conn, const Frame& f) {
  if (!conn.authed) {
    auth_failures_->inc();
    send_frame(conn, make_reject(f.stream_id, NetStatus::kNotAuthed,
                                 "cancel before hello"));
    drop_conn(conn);
    return;
  }
  for (StreamRef& s : live_) {
    if (s.conn_id == conn.id && s.stream_id == f.stream_id) {
      if (s.engine->server->cancel(s.handle)) cancelled_->inc();
      // The stream retires through harvest_finished() like any other
      // finish, so the client still gets its kDone (cancelled).
      return;
    }
  }
  // Unknown stream: already finished or never existed — a no-op, like
  // cancelling a finished request on the engine.
}

bool ApiServer::drive_engines(core::ExecContext& ctx) {
  for (auto& e : engines_) {
    if (!e->server->idle()) e->server->tick(ctx);
  }
  for (auto& e : draining_) {
    if (!e->server->idle()) e->server->tick(ctx);
  }

  // A send that failed inside a token callback marked its connection
  // dead mid-tick; cancelling from inside the tick would re-enter the
  // engine, so the cleanup pass runs here, after every tick returned.
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (c->dead.load() && !c->cleaned) drop_conn(*c);
    }
  }

  harvest_finished();

  // Destroy drained engines: idle means no queued or active requests,
  // and harvest above cleared any finished-but-undelivered streams.
  for (auto it = draining_.begin(); it != draining_.end();) {
    if ((*it)->server->idle()) {
      it = draining_.erase(it);  // releases the engine's model pin
    } else {
      ++it;
    }
  }

  reap_dead_conns();

  bool busy = false;
  for (auto& e : engines_) busy = busy || !e->server->idle();
  busy = busy || !draining_.empty();
  return busy;
}

void ApiServer::harvest_finished() {
  for (auto it = live_.begin(); it != live_.end();) {
    if (!it->engine->server->finished(it->handle)) {
      ++it;
      continue;
    }
    const nn::GenerationResult& r = it->engine->server->result(it->handle);
    if (r.stop_reason == nn::StopReason::kCancelled) {
      // counted by whoever cancelled (client frame, disconnect, drain)
    } else {
      completed_->inc();
      tenant_metrics_[it->tenant].completed->inc();
    }
    if (!it->conn->dead.load()) {
      send_frame(*it->conn,
                 make_done(it->stream_id, r.stop_reason,
                           static_cast<std::uint32_t>(r.tokens.size())));
    }
    --tenant_state_[it->tenant].inflight;
    it = live_.erase(it);
  }
}

// ----------------------------------------------------------- connections ----

void ApiServer::send_frame(Conn& conn, const Frame& f) {
  if (conn.dead.load()) return;
  const std::string wire = encode_frame(f);
  if (!send_all(conn.fd, wire.data(), wire.size())) {
    conn.dead.store(true);  // streams cancelled by the next cleanup pass
  }
}

void ApiServer::drop_conn(Conn& conn) {
  if (conn.cleaned) return;
  conn.cleaned = true;
  conn.dead.store(true);
  // Break the reader out of recv(); the fd itself is closed at reap time,
  // after the reader thread has been joined.
  ::shutdown(conn.fd, SHUT_RDWR);
  for (StreamRef& s : live_) {
    if (s.conn_id != conn.id) continue;
    if (s.engine->server->cancel(s.handle)) {
      disconnect_cancels_->inc();
      cancelled_->inc();
    }
  }
  // The cancelled streams retire through the next harvest_finished();
  // kDone frames are suppressed because the connection is dead.
}

void ApiServer::reap_dead_conns() {
  std::lock_guard<std::mutex> lk(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& c = **it;
    if (!c.dead.load() || !c.cleaned) {
      ++it;
      continue;
    }
    // No live stream may still point at this Conn (harvest runs first).
    bool referenced = false;
    for (const StreamRef& s : live_) referenced = referenced || s.conn == &c;
    if (referenced) {
      ++it;
      continue;
    }
    if (c.reader.joinable()) c.reader.join();
    ::close(c.fd);
    it = conns_.erase(it);
  }
}

// -------------------------------------------------------------- shutdown ----

DrainResult ApiServer::shutdown(std::size_t drain_ticks) {
  if (!started_.load() || stopped_.exchange(true)) {
    std::lock_guard<std::mutex> lk(state_mu_);
    return drain_result_;
  }
  stopping_.store(true);
  // Wake the acceptor out of accept(). shutdown() on a LISTENING socket
  // is ENOTCONN on Linux and does not interrupt accept(), so connect to
  // ourselves instead: accept() returns our wake-up connection (or a
  // racing real one), sees stopping_, and exits.
  {
    const int wake = ::socket(AF_INET, SOCK_STREAM, 0);
    if (wake >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port_);
      (void)::connect(wake, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr);
      ::close(wake);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();

  {
    std::lock_guard<std::mutex> lk(cmd_mu_);
    shutdown_requested_ = true;
    drain_budget_ = drain_ticks;
  }
  cmd_cv_.notify_one();
  if (driver_.joinable()) driver_.join();

  // Tear down every surviving connection: shutdown fds to break readers,
  // join, close.
  std::vector<std::unique_ptr<Conn>> doomed;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    doomed.swap(conns_);
  }
  for (auto& c : doomed) {
    c->dead.store(true);
    ::shutdown(c->fd, SHUT_RDWR);
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::lock_guard<std::mutex> lk(state_mu_);
  connections_open_->set(0.0);
  registry_.refresh_gauges();
  return drain_result_;
}

// --------------------------------------------------------------- metrics ----

std::string ApiServer::metrics_json(int indent) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return metrics_.json(indent);
}

std::vector<serving::ScalarField> ApiServer::metrics_scalars() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return metrics_.scalars();
}

double ApiServer::scalar_value(const std::string& name) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  for (const auto& f : metrics_.scalars()) {
    if (f.name == name) return f.value;
  }
  throw std::invalid_argument("no metric named '" + name + "'");
}

}  // namespace et::net
