// net::Client — a small blocking client for the API server's frame
// protocol (docs/api.md), used by the loopback integration tests and the
// examples/et_client demo.
//
// Deliberately synchronous: connect, hello, submit, then pull frames one
// at a time with next(). One client drives one connection; concurrency in
// tests comes from multiple clients (or multiple streams multiplexed on
// one, since stream ids are client-chosen).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.hpp"

namespace et::net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to 127.0.0.1:port. Throws std::runtime_error on failure.
  void connect(std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send any frame. Throws std::runtime_error on a send failure.
  void send(const Frame& f);

  /// Block until the next complete frame (or EOF / protocol error →
  /// nullopt; error_detail() says which).
  [[nodiscard]] std::optional<Frame> next();

  /// hello + wait for the response frame (kHelloOk or kReject).
  /// nullopt when the server hung up first.
  std::optional<Frame> hello(std::string_view api_key);

  /// Convenience submit; the response stream is read via next().
  void submit(std::uint64_t stream_id, std::string_view model,
              std::vector<std::int32_t> prompt, std::uint32_t max_new_tokens,
              std::int32_t eos_token = nn::kNoEosToken);

  void cancel(std::uint64_t stream_id);

  /// Close the socket (abruptly, from the server's point of view — the
  /// disconnect-cancels path in the tests is exactly this).
  void close();

  [[nodiscard]] const std::string& error_detail() const noexcept {
    return error_;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::string error_;
};

}  // namespace et::net
