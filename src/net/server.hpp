// net::ApiServer — the network front-end on serving::InferenceServer
// (docs/api.md).
//
// A TCP socket server speaking the length-prefixed binary frame protocol
// (net/frame.hpp) on the loopback interface: thread-per-connection
// readers on a bounded accept pool, one drive thread that owns every
// serving engine, and per-tenant auth/rate/quota enforcement at the
// door. The shape mirrors the repo's serving threading model: the
// InferenceServer drive loop is single-threaded by contract
// (docs/serving.md), so connection threads never touch an engine — they
// parse frames and enqueue commands, and the drive thread applies them
// between ticks. All socket WRITES also happen on the drive thread, so
// token streams interleave deterministically with the ticks that
// produced them.
//
//   reader threads ──commands──▶ drive thread ──frames──▶ client sockets
//                                   │ tick()
//                                   ▼
//                  engines: one InferenceServer per served model
//                  instance, each holding a ModelPin on its weights
//
// Hot swap: swap_model(name, v2) moves the current
// engine onto the draining list — it accepts no new submissions but
// keeps ticking until every in-flight request retires — and points new
// submissions at a fresh engine pinned to v2. The old LoadedModel is
// destroyed when the drained engine releases the last pin. Zero requests
// are dropped, and transcripts admitted pre-swap are bit-identical to an
// uninterrupted run on the old version.
//
// Tenancy: every connection authenticates with an API key (kHello); the
// tenant's tier IS its serving priority class, and submissions pass a
// deterministic token-bucket rate limit plus an in-flight quota before
// they reach the admission queue. Engine-level rejects (queue full,
// shed) surface as typed kReject frames reusing serving::RejectReason.
//
// Disconnect propagates cancel: when a client vanishes (EOF, reset, or a
// failed send), every live stream it owned is cancelled on its engine —
// a dead client must not hold decode slots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/exec_context.hpp"
#include "net/auth.hpp"
#include "net/frame.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

namespace et::net {

struct ApiServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Bounded accept pool: connections beyond this are sent a kError
  /// frame and closed without a reader thread.
  std::size_t max_connections = 16;
  /// Default model name for kSubmit frames with an empty model field.
  std::string default_model;
  /// Per-engine serving runtime shape (slots, queue, preemption, paged
  /// KV) — every engine, including post-swap ones, is built from this.
  serving::ServerConfig engine;
};

/// What shutdown() did with the work that was still in flight.
struct DrainResult {
  std::size_t drain_ticks_used = 0;  ///< drive iterations spent draining
  std::size_t cancelled = 0;  ///< requests cancelled when the budget ran out
};

class ApiServer {
 public:
  /// The registry must outlive the server (engines pin models from it).
  /// Registers the server's metrics, the per-tenant counters, and — last,
  /// so existing snapshots stay a prefix — the registry gauges.
  ApiServer(ApiServerConfig cfg, TenantTable tenants,
            serving::ModelRegistry& registry);
  ~ApiServer();
  ApiServer(const ApiServer&) = delete;
  ApiServer& operator=(const ApiServer&) = delete;

  /// Create a serving engine for the newest loaded version of `name`.
  /// Throws std::invalid_argument when the registry has no such model.
  /// Callable before or after start().
  void serve_model(const std::string& name);

  /// Hot-swap: drain the current engine for `name` (in-flight requests
  /// finish on the old version) and point new submissions at `version`.
  /// If `name` is not currently served this behaves like serve_model.
  /// Asynchronous: the swap is applied by the drive thread; the `swaps`
  /// gauge records completion. Throws std::invalid_argument when the
  /// registry has no (name, version).
  void swap_model(const std::string& name, std::uint64_t version);

  /// Bind, listen, and spawn the acceptor + drive threads. Throws
  /// std::runtime_error on socket failures.
  void start(core::ExecContext& ctx);

  /// Graceful stop: refuse new connections and submissions, keep ticking
  /// until every in-flight request retires or `drain_ticks` drive
  /// iterations elapse, cancel whatever remains (clients get kDone with
  /// stop_reason cancelled), then tear every thread down. Idempotent.
  DrainResult shutdown(std::size_t drain_ticks);

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept;

  /// Thread-safe metrics access (serialized against the drive loop).
  [[nodiscard]] std::string metrics_json(int indent = 2) const;
  [[nodiscard]] std::vector<serving::ScalarField> metrics_scalars() const;
  [[nodiscard]] double scalar_value(const std::string& name) const;

 private:
  struct Conn;
  struct EngineSlot;
  struct StreamRef;
  struct Cmd;

  void acceptor_loop();
  void reader_loop(Conn* conn);
  void drive_loop(core::ExecContext& ctx);

  void process_cmd(Cmd& cmd);
  void handle_hello(Conn& conn, const Frame& f);
  void handle_submit(Conn& conn, const Frame& f);
  void handle_cancel(Conn& conn, const Frame& f);
  void apply_swap(const std::string& name, std::uint64_t version,
                  serving::ModelPin pin);

  /// Tick every non-idle engine once, deliver DONE frames for retired
  /// streams, destroy drained engines. Returns true when any engine
  /// still has work.
  bool drive_engines(core::ExecContext& ctx);
  void harvest_finished();

  [[nodiscard]] EngineSlot* find_engine(const std::string& name);
  [[nodiscard]] std::unique_ptr<EngineSlot> make_engine(
      const std::string& name, serving::ModelPin pin);

  /// Send a frame on a connection (drive/acceptor threads only). On a
  /// send failure the connection is marked dead; its streams are
  /// cancelled by the caller's next cleanup pass.
  void send_frame(Conn& conn, const Frame& f);
  /// Cancel every live stream owned by `conn` and schedule the socket
  /// for teardown.
  void drop_conn(Conn& conn);
  /// Join and erase every connection marked dead (drive thread).
  void reap_dead_conns();

  ApiServerConfig cfg_;
  TenantTable tenants_;
  serving::ModelRegistry& registry_;

  // ---- immutable-after-construction metric handles -------------------
  serving::MetricsRegistry metrics_;
  serving::Counter* connections_accepted_ = nullptr;
  serving::Counter* connections_rejected_ = nullptr;
  serving::Counter* auth_failures_ = nullptr;
  serving::Counter* protocol_errors_ = nullptr;
  serving::Counter* submitted_ = nullptr;
  serving::Counter* completed_ = nullptr;
  serving::Counter* rejected_ = nullptr;
  serving::Counter* rate_limited_ = nullptr;
  serving::Counter* quota_rejected_ = nullptr;
  serving::Counter* cancelled_ = nullptr;
  serving::Counter* disconnect_cancels_ = nullptr;
  serving::Counter* tokens_streamed_ = nullptr;
  serving::Gauge* connections_open_ = nullptr;
  serving::Gauge* engines_active_ = nullptr;
  serving::Gauge* engines_draining_ = nullptr;
  serving::Gauge* streams_live_ = nullptr;
  struct TenantMetrics {
    serving::Counter* submitted = nullptr;
    serving::Counter* completed = nullptr;
    serving::Counter* rejected = nullptr;
    serving::Counter* tokens = nullptr;
  };
  std::vector<TenantMetrics> tenant_metrics_;  // index == tenant index

  // ---- command queue (reader threads -> drive thread) ----------------
  mutable std::mutex cmd_mu_;
  std::condition_variable cmd_cv_;
  std::vector<Cmd> cmds_;
  bool shutdown_requested_ = false;
  std::size_t drain_budget_ = 0;

  // ---- drive-thread state (guarded by state_mu_) ---------------------
  mutable std::mutex state_mu_;
  std::vector<std::unique_ptr<EngineSlot>> engines_;    // currently served
  std::vector<std::unique_ptr<EngineSlot>> draining_;   // swap leftovers
  std::vector<StreamRef> live_;                         // in-flight streams
  std::vector<TenantState> tenant_state_;               // index == tenant
  DrainResult drain_result_;

  // ---- connections ---------------------------------------------------
  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread driver_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace et::net
