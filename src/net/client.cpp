#include "net/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace et::net {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      reader_(std::move(other.reader_)),
      error_(std::move(other.error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
    error_ = std::move(other.error_);
  }
  return *this;
}

void Client::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("connect(127.0.0.1:") +
                             std::to_string(port) +
                             "): " + std::strerror(err));
  }
}

void Client::send(const Frame& f) {
  if (fd_ < 0) throw std::runtime_error("Client::send: not connected");
  const std::string wire = encode_frame(f);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t w =
        ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

std::optional<Frame> Client::next() {
  if (fd_ < 0) return std::nullopt;
  char buf[4096];
  for (;;) {
    if (auto f = reader_.next()) return f;
    if (reader_.error()) {
      error_ = reader_.error_detail();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      error_ = n == 0 ? "connection closed by server"
                      : std::string("recv(): ") + std::strerror(errno);
      return std::nullopt;
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<Frame> Client::hello(std::string_view api_key) {
  send(make_hello(api_key));
  return next();
}

void Client::submit(std::uint64_t stream_id, std::string_view model,
                    std::vector<std::int32_t> prompt,
                    std::uint32_t max_new_tokens, std::int32_t eos_token) {
  send(make_submit(stream_id, model, std::move(prompt), max_new_tokens,
                   eos_token));
}

void Client::cancel(std::uint64_t stream_id) { send(make_cancel(stream_id)); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace et::net
