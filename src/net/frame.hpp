// net::Frame — the length-prefixed binary wire protocol of the API
// server (docs/api.md "Frame format").
//
// Every frame is `u32 payload_length | u8 type | payload`, little-endian
// throughout (the same convention as the ETW checkpoint format; not
// designed for cross-endian portability). The codec is pure byte-buffer
// work — encode_frame() produces the exact bytes a socket write sends,
// and FrameReader incrementally consumes whatever chunk boundaries TCP
// delivers — so the whole protocol is unit-testable without a socket.
//
// Client → server: kHello (authenticate), kSubmit (start a generation
// stream), kCancel (stop one). Server → client: kHelloOk, kToken (one
// streamed token), kDone (stream finished, typed stop reason), kReject
// (stream refused, typed NetStatus — admission rejects reuse
// serving::RejectReason verbatim), kError (protocol violation; the
// connection closes after).
//
// Streams are client-numbered: the client picks a stream_id per submit
// and every server frame for that request carries it, so one connection
// multiplexes any number of concurrent generations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nn/generation.hpp"
#include "serving/server.hpp"

namespace et::net {

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kSubmit = 3,
  kToken = 4,
  kDone = 5,
  kReject = 6,
  kCancel = 7,
  kError = 8,
};

[[nodiscard]] constexpr std::string_view to_string(FrameType t) noexcept {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloOk: return "hello_ok";
    case FrameType::kSubmit: return "submit";
    case FrameType::kToken: return "token";
    case FrameType::kDone: return "done";
    case FrameType::kReject: return "reject";
    case FrameType::kCancel: return "cancel";
    case FrameType::kError: return "error";
  }
  return "?";
}

/// Why a stream (or connection) was refused. The first two reuse
/// serving::RejectReason's semantics verbatim — a kReject frame carrying
/// them is the wire image of an InferenceServer admission reject; the
/// rest are the network layer's own door checks.
enum class NetStatus : std::uint8_t {
  kQueueFull = 0,      ///< serving::RejectReason::kQueueFull
  kShed = 1,           ///< serving::RejectReason::kShed
  kBadKey = 2,         ///< kHello carried an unknown API key
  kNotAuthed = 3,      ///< kSubmit/kCancel before a successful kHello
  kRateLimited = 4,    ///< tenant token bucket empty
  kQuotaExceeded = 5,  ///< tenant at its in-flight cap
  kUnknownModel = 6,   ///< submit named a model the server does not serve
  kDraining = 7,       ///< server is shutting down; no new work
};

[[nodiscard]] constexpr std::string_view to_string(NetStatus s) noexcept {
  switch (s) {
    case NetStatus::kQueueFull: return "queue_full";
    case NetStatus::kShed: return "shed";
    case NetStatus::kBadKey: return "bad_key";
    case NetStatus::kNotAuthed: return "not_authed";
    case NetStatus::kRateLimited: return "rate_limited";
    case NetStatus::kQuotaExceeded: return "quota_exceeded";
    case NetStatus::kUnknownModel: return "unknown_model";
    case NetStatus::kDraining: return "draining";
  }
  return "?";
}

/// The wire image of a serving::RejectReason (kNone never reaches the
/// wire — an admitted request streams instead of rejecting).
[[nodiscard]] constexpr NetStatus to_net_status(
    serving::RejectReason r) noexcept {
  return r == serving::RejectReason::kShed ? NetStatus::kShed
                                           : NetStatus::kQueueFull;
}

/// One decoded frame: type plus its already-parsed payload fields. Only
/// the fields a type carries are meaningful (see docs/api.md).
struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t stream_id = 0;            // submit/token/done/reject/cancel
  std::string text;                        // hello: api key; hello_ok:
                                           // tenant; error/reject: detail;
                                           // submit: model name
  std::uint8_t code = 0;                   // hello_ok: tier; done: stop
                                           // reason; reject: NetStatus
  std::uint32_t index = 0;                 // token: position; done: count
  std::int32_t token = 0;                  // token: value
  std::uint32_t max_new_tokens = 0;        // submit
  std::int32_t eos_token = nn::kNoEosToken;  // submit
  std::vector<std::int32_t> prompt;        // submit
};

/// Hard cap on a frame payload; a length prefix beyond it is a protocol
/// error, not an allocation (a garbage or hostile peer must not OOM the
/// server).
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Serialize a frame to its exact wire bytes.
[[nodiscard]] std::string encode_frame(const Frame& f);

// Typed convenience constructors for the frames each side sends.
[[nodiscard]] Frame make_hello(std::string_view api_key);
[[nodiscard]] Frame make_hello_ok(std::string_view tenant,
                                  serving::Priority tier);
[[nodiscard]] Frame make_submit(std::uint64_t stream_id,
                                std::string_view model,
                                std::vector<std::int32_t> prompt,
                                std::uint32_t max_new_tokens,
                                std::int32_t eos_token = nn::kNoEosToken);
[[nodiscard]] Frame make_token(std::uint64_t stream_id, std::uint32_t index,
                               std::int32_t token);
[[nodiscard]] Frame make_done(std::uint64_t stream_id, nn::StopReason reason,
                              std::uint32_t token_count);
[[nodiscard]] Frame make_reject(std::uint64_t stream_id, NetStatus status,
                                std::string_view detail);
[[nodiscard]] Frame make_cancel(std::uint64_t stream_id);
[[nodiscard]] Frame make_error(std::string_view detail);

/// Incremental frame parser: feed() whatever bytes arrived, next() pops
/// complete frames in order. A malformed frame (oversized length, unknown
/// type, truncated payload) sets error() permanently — the connection
/// must be torn down, there is no resynchronization in a length-prefixed
/// stream.
class FrameReader {
 public:
  void feed(const char* data, std::size_t n);
  /// The next complete frame, or nullopt when more bytes are needed (or
  /// the stream is in error).
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] bool error() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error_detail() const noexcept {
    return error_;
  }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::string error_;
};

}  // namespace et::net
