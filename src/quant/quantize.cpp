#include "quant/quantize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace et::quant {

QuantizedWeight quantize_weight(const tensor::MatrixF& w) {
  QuantizedWeight out;
  out.q = tensor::Matrix<std::int8_t>(w.rows(), w.cols());
  out.row_scale.resize(w.rows());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    float amax = 0.0f;
    for (std::size_t c = 0; c < w.cols(); ++c) {
      amax = std::max(amax, std::abs(w(r, c)));
    }
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    out.row_scale[r] = scale;
    for (std::size_t c = 0; c < w.cols(); ++c) {
      const float q = std::round(w(r, c) / scale);
      out.q(r, c) = static_cast<std::int8_t>(
          std::clamp(q, -127.0f, 127.0f));
    }
  }
  return out;
}

tensor::MatrixF dequantize(const QuantizedWeight& w) {
  tensor::MatrixF out(w.rows(), w.cols());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out(r, c) = static_cast<float>(w.q(r, c)) * w.row_scale[r];
    }
  }
  return out;
}

double max_quantization_error_steps(const tensor::MatrixF& w,
                                    const QuantizedWeight& qw) {
  assert(w.rows() == qw.rows() && w.cols() == qw.cols());
  double worst = 0.0;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double scale = qw.row_scale[r];
    for (std::size_t c = 0; c < w.cols(); ++c) {
      const double err =
          std::abs(w(r, c) - static_cast<double>(qw.q(r, c)) * scale);
      worst = std::max(worst, err / scale);
    }
  }
  return worst;
}

tensor::MatrixF int8_linear(gpusim::Device& dev, const tensor::MatrixF& x,
                            const QuantizedWeight& w, std::string_view name) {
  assert(x.cols() == w.cols());
  const std::size_t m = x.rows();
  const std::size_t n = w.rows();
  const std::size_t k = x.cols();

  const std::size_t block = 128;
  const std::size_t blocks_m = (m + block - 1) / block;
  const std::size_t blocks_n = (n + block - 1) / block;

  auto launch = dev.launch({.name = std::string(name),
                            .ctas = blocks_m * blocks_n,
                            .shared_bytes_per_cta = std::min<std::size_t>(
                                2 * (block + block) * 16,
                                dev.spec().shared_mem_per_cta_bytes),
                            .pattern = gpusim::AccessPattern::kTiled});
  // INT8 operands: one byte per element.
  launch.load_bytes(blocks_n * m * k + blocks_m * n * k +
                    w.row_scale.size() * sizeof(float));
  launch.store_bytes(m * n * 2);  // fp16 output
  // INT8 tensor cores run at 2× the FP16 rate: account the ops as tensor
  // ops and half again (the model divides by the FP16 peak).
  launch.tensor_ops(2ull * m * n * k / 2);
  launch.fp_ops(m * n);  // epilogue rescale
  launch.finish();

  tensor::MatrixF y(m, n);
  if (dev.traffic_only()) return y;

  // Per-tensor activation scale.
  float amax = 0.0f;
  for (float v : x.flat()) amax = std::max(amax, std::abs(v));
  const float xscale = amax > 0.0f ? amax / 127.0f : 1.0f;

  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::int8_t> xq(k);
    for (std::size_t c = 0; c < k; ++c) {
      xq[c] = static_cast<std::int8_t>(
          std::clamp(std::round(x(i, c) / xscale), -127.0f, 127.0f));
    }
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t c = 0; c < k; ++c) {
        acc += static_cast<std::int32_t>(xq[c]) *
               static_cast<std::int32_t>(w.q(j, c));
      }
      y(i, j) = static_cast<float>(acc) * xscale * w.row_scale[j];
    }
  }
  return y;
}

}  // namespace et::quant
