#include "quant/quantize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace et::quant {

QuantizedWeight quantize_weight(const tensor::MatrixF& w) {
  QuantizedWeight out;
  out.q = tensor::Matrix<std::int8_t>(w.rows(), w.cols());
  out.row_scale.resize(w.rows());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    float amax = 0.0f;
    for (std::size_t c = 0; c < w.cols(); ++c) {
      amax = std::max(amax, std::abs(w(r, c)));
    }
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    out.row_scale[r] = scale;
    for (std::size_t c = 0; c < w.cols(); ++c) {
      const float q = std::round(w(r, c) / scale);
      out.q(r, c) = static_cast<std::int8_t>(
          std::clamp(q, -127.0f, 127.0f));
    }
  }
  return out;
}

tensor::MatrixF dequantize(const QuantizedWeight& w) {
  tensor::MatrixF out(w.rows(), w.cols());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      out(r, c) = static_cast<float>(w.q(r, c)) * w.row_scale[r];
    }
  }
  return out;
}

double max_quantization_error_steps(const tensor::MatrixF& w,
                                    const QuantizedWeight& qw) {
  assert(w.rows() == qw.rows() && w.cols() == qw.cols());
  double worst = 0.0;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double scale = qw.row_scale[r];
    for (std::size_t c = 0; c < w.cols(); ++c) {
      const double err =
          std::abs(w(r, c) - static_cast<double>(qw.q(r, c)) * scale);
      worst = std::max(worst, err / scale);
    }
  }
  return worst;
}

tensor::MatrixF int8_linear(core::ExecContext& ctx, const tensor::MatrixF& x,
                            const QuantizedWeight& w, std::string_view name) {
  assert(x.cols() == w.cols());
  gpusim::Device& dev = ctx.device();
  const std::size_t m = x.rows();
  const std::size_t n = w.rows();
  const std::size_t k = x.cols();

  const std::size_t block = 128;
  const std::size_t blocks_m = (m + block - 1) / block;
  const std::size_t blocks_n = (n + block - 1) / block;

  auto launch = dev.launch({.name = std::string(name),
                            .ctas = blocks_m * blocks_n,
                            .shared_bytes_per_cta = std::min<std::size_t>(
                                2 * (block + block) * 16,
                                dev.spec().shared_mem_per_cta_bytes),
                            .pattern = gpusim::AccessPattern::kTiled});
  // INT8 operands: one byte per element; the per-row weight and
  // activation scales ride along in FP32.
  launch.load_bytes(blocks_n * m * k + blocks_m * n * k +
                    (w.row_scale.size() + m) * sizeof(float));
  launch.store_bytes(m * n * 2);  // fp16 output
  // INT8 tensor cores run at 2× the FP16 rate: account the ops as tensor
  // ops and half again (the model divides by the FP16 peak).
  launch.tensor_ops(2ull * m * n * k / 2);
  launch.fp_ops(m * n);  // epilogue rescale
  launch.finish();

  tensor::MatrixF y(m, n);
  if (dev.traffic_only()) return y;

  std::vector<std::int8_t> xq(k);
  for (std::size_t i = 0; i < m; ++i) {
    // Per-row activation scale: row i quantizes against its own amax, so
    // its result is independent of what else is stacked in the batch.
    float amax = 0.0f;
    for (std::size_t c = 0; c < k; ++c) amax = std::max(amax, std::abs(x(i, c)));
    const float xscale = amax > 0.0f ? amax / 127.0f : 1.0f;
    for (std::size_t c = 0; c < k; ++c) {
      xq[c] = static_cast<std::int8_t>(
          std::clamp(std::round(x(i, c) / xscale), -127.0f, 127.0f));
    }
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t c = 0; c < k; ++c) {
        acc += static_cast<std::int32_t>(xq[c]) *
               static_cast<std::int32_t>(w.q(j, c));
      }
      y(i, j) = static_cast<float>(acc) * xscale * w.row_scale[j];
    }
  }
  return y;
}

std::vector<tensor::MatrixF> int8_batched_linear(
    core::ExecContext& ctx, const tensor::MatrixF& x,
    const std::vector<const QuantizedWeight*>& ws, std::string_view name) {
  assert(!ws.empty());
  gpusim::Device& dev = ctx.device();
  const std::size_t m = x.rows();
  const std::size_t k = x.cols();

  const std::size_t block = 128;
  const std::size_t blocks_m = (m + block - 1) / block;
  std::uint64_t ctas = 0, a_loads = 0, b_loads = 0, scale_loads = 0;
  std::uint64_t n_total = 0;
  for (const QuantizedWeight* w : ws) {
    assert(w != nullptr && w->cols() == k);
    const std::size_t n = w->rows();
    const std::size_t blocks_n = (n + block - 1) / block;
    ctas += blocks_m * blocks_n;
    // A strips staged once and reused by every panel: charge only the
    // widest panel's re-read factor (the batched_gemm_nt accounting).
    a_loads = std::max(a_loads, static_cast<std::uint64_t>(blocks_n) * m * k);
    b_loads += static_cast<std::uint64_t>(blocks_m) * n * k;
    scale_loads += n * sizeof(float);
    n_total += n;
  }
  auto launch = dev.launch(
      {.name = std::string(name) + "[x" + std::to_string(ws.size()) + "]",
       .ctas = static_cast<std::size_t>(ctas),
       .shared_bytes_per_cta = std::min<std::size_t>(
           2 * (block + block) * 16, dev.spec().shared_mem_per_cta_bytes),
       .pattern = gpusim::AccessPattern::kTiled});
  launch.load_bytes(a_loads + b_loads + scale_loads + m * sizeof(float));
  launch.store_bytes(m * n_total * 2);  // fp16 outputs
  launch.tensor_ops(2ull * m * n_total * k / 2);
  launch.fp_ops(m * n_total);  // epilogue rescale
  launch.finish();

  std::vector<tensor::MatrixF> out;
  out.reserve(ws.size());
  for (const QuantizedWeight* w : ws) {
    out.emplace_back(m, w->rows());
  }
  if (dev.traffic_only()) return out;

  std::vector<std::int8_t> xq(k);
  for (std::size_t i = 0; i < m; ++i) {
    // One activation quantization per row, shared by every panel — the
    // same xq/xscale each separate int8_linear call would derive, so the
    // fused results match those calls bit for bit.
    float amax = 0.0f;
    for (std::size_t c = 0; c < k; ++c) amax = std::max(amax, std::abs(x(i, c)));
    const float xscale = amax > 0.0f ? amax / 127.0f : 1.0f;
    for (std::size_t c = 0; c < k; ++c) {
      xq[c] = static_cast<std::int8_t>(
          std::clamp(std::round(x(i, c) / xscale), -127.0f, 127.0f));
    }
    for (std::size_t p = 0; p < ws.size(); ++p) {
      const QuantizedWeight& w = *ws[p];
      for (std::size_t j = 0; j < w.rows(); ++j) {
        std::int32_t acc = 0;
        for (std::size_t c = 0; c < k; ++c) {
          acc += static_cast<std::int32_t>(xq[c]) *
                 static_cast<std::int32_t>(w.q(j, c));
        }
        out[p](i, j) = static_cast<float>(acc) * xscale * w.row_scale[j];
      }
    }
  }
  return out;
}

}  // namespace et::quant
