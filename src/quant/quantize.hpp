// INT8 post-training quantization — the §2.2/§6 extension point (A100
// tensor cores run INT8 at 2× the FP16 rate; GOBO [60] quantizes
// attention models for latency/energy). E.T.'s pruning composes with
// quantization: a tile-pruned weight quantizes tile by tile.
//
// Scheme: symmetric per-row (per output channel) int8 with an FP scale,
//   w ≈ scale_r · q,  q ∈ [-127, 127],
// activations quantized per-tensor on the fly inside the kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "tensor/matrix.hpp"

namespace et::quant {

struct QuantizedWeight {
  tensor::Matrix<std::int8_t> q;   ///< (out × in)
  std::vector<float> row_scale;    ///< per output row
  [[nodiscard]] std::size_t rows() const noexcept { return q.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return q.cols(); }
};

/// Symmetric per-row quantization of a weight matrix.
[[nodiscard]] QuantizedWeight quantize_weight(const tensor::MatrixF& w);

/// Reconstruct the FP32 view (for error measurement / tests).
[[nodiscard]] tensor::MatrixF dequantize(const QuantizedWeight& w);

/// Largest |w - dequantize(quantize(w))| relative to the row scale — the
/// quantization step is scale/1, so this is ≤ 0.5 for a correct rounding.
[[nodiscard]] double max_quantization_error_steps(const tensor::MatrixF& w,
                                                  const QuantizedWeight& qw);

/// Y = X · Wᵀ with an INT8 tensor-core kernel: X is quantized per-tensor
/// on the fly, the int32 accumulators are rescaled to float in the
/// epilogue. Traffic: 1-byte operands; compute: 2× the FP16 tensor rate.
[[nodiscard]] tensor::MatrixF int8_linear(gpusim::Device& dev,
                                          const tensor::MatrixF& x,
                                          const QuantizedWeight& w,
                                          std::string_view name = "int8_linear");

}  // namespace et::quant
