// INT8 post-training quantization — the §2.2/§6 extension point (A100
// tensor cores run INT8 at 2× the FP16 rate; GOBO [60] quantizes
// attention models for latency/energy). E.T.'s pruning composes with
// quantization: a pruned weight quantizes its dense materialization and
// zeros survive exactly (0 / scale rounds to 0), so the mask is preserved
// bit for bit.
//
// Scheme: symmetric per-channel int8 with an FP scale,
//   w ≈ scale_r · q,  q ∈ [-127, 127],
// per output row for weights and per input row for activations. Per-ROW
// activation scales (not per-tensor) are what make the batched decode
// tick bit-identical to the sequential one: row i of a stacked batch
// quantizes exactly as it would alone, so stacking rows never perturbs
// another sequence's math (the differential-harness contract,
// docs/quantization.md).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/exec_context.hpp"
#include "tensor/matrix.hpp"

namespace et::quant {

struct QuantizedWeight {
  tensor::Matrix<std::int8_t> q;   ///< (out × in)
  std::vector<float> row_scale;    ///< per output row
  [[nodiscard]] std::size_t rows() const noexcept { return q.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return q.cols(); }
  [[nodiscard]] bool empty() const noexcept { return q.rows() == 0; }
};

/// Symmetric per-row quantization of a weight matrix.
[[nodiscard]] QuantizedWeight quantize_weight(const tensor::MatrixF& w);

/// Reconstruct the FP32 view (for error measurement / tests).
[[nodiscard]] tensor::MatrixF dequantize(const QuantizedWeight& w);

/// Largest |w - dequantize(quantize(w))| relative to the row scale — the
/// quantization step is scale/1, so this is ≤ 0.5 for a correct rounding.
[[nodiscard]] double max_quantization_error_steps(const tensor::MatrixF& w,
                                                  const QuantizedWeight& qw);

/// Y = X · Wᵀ with an INT8 tensor-core kernel: each row of X is quantized
/// with its own on-the-fly scale, the int32 accumulators are rescaled to
/// float in the epilogue (acc · xscale_i · row_scale_j). Traffic: 1-byte
/// operands; compute: 2× the FP16 tensor rate. Row-wise independent math
/// — row i's result depends only on row i of X — so the batched decode
/// tick and a per-sequence call produce bit-identical rows.
[[nodiscard]] tensor::MatrixF int8_linear(core::ExecContext& ctx,
                                          const tensor::MatrixF& x,
                                          const QuantizedWeight& w,
                                          std::string_view name =
                                              "int8_linear");

/// The batched-panel variant (mirrors kernels::batched_gemm_nt): one
/// fused launch computes X · Wᵀ for every weight panel, staging the
/// quantized A strips once — decode is launch- and weight-load-bound, so
/// the fused q/k/v projection is what keeps the INT8 tick ahead of the
/// fp16 one. Each output is numerically IDENTICAL to the corresponding
/// int8_linear call (same per-row scales, same accumulation order); only
/// the device accounting is fused.
[[nodiscard]] std::vector<tensor::MatrixF> int8_batched_linear(
    core::ExecContext& ctx, const tensor::MatrixF& x,
    const std::vector<const QuantizedWeight*>& ws,
    std::string_view name = "int8_batched_linear");

}  // namespace et::quant
