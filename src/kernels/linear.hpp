// Linear transformation Y = X·Wᵀ over any pruned weight format, including
// the pre/post-processing kernels each format needs (§4.1):
//
//   dense      — autotuned tensor-core GEMM (the paper's cuBLAS path);
//   row        — GEMM on the condensed weight; the result has values only
//                in the kept columns. The caller chooses whether to pay
//                the scatter kernel for a full-width output or to consume
//                the condensed output + column map directly (the latter is
//                what makes attention-aware pruning fast, §4.3);
//   column     — gather kernel builds X_adjusted, then dense GEMM; the
//                output is fully dense (no downstream sparsity — §4.3's
//                argument against column pruning for W_Q/W_K);
//   tile       — BCSR tensor-tile GEMM, no pre/post-processing;
//   irregular  — two-level bitmap format on general cores (slow).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "kernels/gemm.hpp"
#include "kernels/sparse_gemm.hpp"
#include "numeric/precision.hpp"
#include "sparse/formats.hpp"

namespace et::kernels {

struct LinearResult {
  tensor::MatrixF y;
  /// When `condensed` is true, y has one column per entry of
  /// `nonzero_cols` (the original output indices); otherwise y is
  /// full-width and nonzero_cols is empty.
  bool condensed = false;
  std::vector<std::uint32_t> nonzero_cols;

  /// Materialize the full-width view (pure host-side helper for tests —
  /// does not model a kernel).
  [[nodiscard]] tensor::MatrixF full_width(std::size_t out_cols) const;
};

struct LinearOptions {
  numeric::Precision precision = numeric::Precision::kFp32;
  /// For row-pruned weights: emit the scatter kernel and return a
  /// full-width output instead of the condensed one.
  bool scatter_row_pruned_output = true;
  const GemmAlgo* algo = nullptr;  ///< nullptr = autotune
};

[[nodiscard]] LinearResult linear(core::ExecContext& ctx,
                                  const tensor::MatrixF& x,
                                  const sparse::AnyWeight& w,
                                  const LinearOptions& opt = {},
                                  std::string_view name = "linear");

}  // namespace et::kernels
