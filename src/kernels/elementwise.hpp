// Pointwise and row-wise kernels of the modular encoder pipeline.
//
// In the baseline ("modular") implementation each of these is its own
// kernel launch that round-trips its operand through global memory —
// exactly the overhead E.T.'s on-the-fly operator removes (§1 issues
// (i)/(ii)). They are also used by the TensorRT-like baseline after
// vertical fusion (fewer launches, same global traffic for GEMM outputs).
#pragma once

#include <span>
#include <string_view>

#include "gpusim/device.hpp"
#include "numeric/precision.hpp"
#include "tensor/matrix.hpp"

namespace et::kernels {

/// M *= factor (the 1/sqrt(d_k) scaling operator, step ② of Fig. 3).
void scale(gpusim::Device& dev, tensor::MatrixF& m, float factor,
           numeric::Precision p = numeric::Precision::kFp32,
           std::string_view name = "scale");

/// M(r, :) += bias.
void add_bias(gpusim::Device& dev, tensor::MatrixF& m,
              std::span<const float> bias,
              numeric::Precision p = numeric::Precision::kFp32,
              std::string_view name = "add_bias");

/// A += B (residual connection).
void residual_add(gpusim::Device& dev, tensor::MatrixF& a,
                  const tensor::MatrixF& b,
                  numeric::Precision p = numeric::Precision::kFp32,
                  std::string_view name = "residual_add");

/// ReLU in place.
void relu(gpusim::Device& dev, tensor::MatrixF& m,
          numeric::Precision p = numeric::Precision::kFp32,
          std::string_view name = "relu");

/// GELU (tanh approximation) in place.
void gelu(gpusim::Device& dev, tensor::MatrixF& m,
          numeric::Precision p = numeric::Precision::kFp32,
          std::string_view name = "gelu");

/// Set entries above the diagonal to -inf (the §2.1 causal mask applied
/// to one head's seq×seq score matrix, step ④ of Fig. 3).
void causal_mask(gpusim::Device& dev, tensor::MatrixF& scores,
                 std::string_view name = "mask");

/// Row-wise softmax (max-subtracted), step ⑤ of Fig. 3. Storage rounding
/// per `p` is applied to the result.
void softmax_rows(gpusim::Device& dev, tensor::MatrixF& m,
                  numeric::Precision p = numeric::Precision::kFp32,
                  std::string_view name = "softmax");

/// Fused residual-add + layer normalization in ONE kernel (the
/// FasterTransformer addBiasResidualLayerNorm pattern, also used by
/// E.T.'s pipeline): a single global round trip instead of two.
void fused_residual_layernorm(gpusim::Device& dev, tensor::MatrixF& a,
                              const tensor::MatrixF& residual,
                              std::span<const float> gamma,
                              std::span<const float> beta,
                              numeric::Precision p = numeric::Precision::kFp32,
                              std::string_view name = "residual_layernorm");

/// Row-wise layer normalization with affine parameters.
void layernorm(gpusim::Device& dev, tensor::MatrixF& m,
               std::span<const float> gamma, std::span<const float> beta,
               float eps = 1e-5f,
               numeric::Precision p = numeric::Precision::kFp32,
               std::string_view name = "layernorm");

/// Out-of-place transpose kernel (column-strided global traffic).
[[nodiscard]] tensor::MatrixF transpose_kernel(
    gpusim::Device& dev, const tensor::MatrixF& m,
    numeric::Precision p = numeric::Precision::kFp32,
    std::string_view name = "transpose");

/// Gather the listed columns of X into a condensed matrix — the
/// "X_adjusted" pre-processing of column pruning (Fig. 5b).
[[nodiscard]] tensor::MatrixF gather_cols(
    gpusim::Device& dev, const tensor::MatrixF& x,
    std::span<const std::uint32_t> cols,
    numeric::Precision p = numeric::Precision::kFp32,
    std::string_view name = "gather_cols");

/// Scatter a condensed matrix back to `out_cols` columns, zero elsewhere —
/// the post-processing a row-pruned linear needs when its consumer expects
/// the full width (Fig. 5a).
[[nodiscard]] tensor::MatrixF scatter_cols(
    gpusim::Device& dev, const tensor::MatrixF& condensed,
    std::span<const std::uint32_t> cols, std::size_t out_cols,
    numeric::Precision p = numeric::Precision::kFp32,
    std::string_view name = "scatter_cols");

}  // namespace et::kernels
