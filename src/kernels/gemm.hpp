// Dense tiled GEMM on the simulated tensor cores.
//
// The multiplication is decomposed into 16×16×16 tile FMAs (§2.2, Fig. 2a)
// grouped into CTA blocks of block_m × block_n output elements. The block
// shape is the "algorithm" — E.T. auto-searches cuBLAS algorithms and
// settles on CUBLAS_GEMM_ALGO5_TENSOR_OP on the paper's server (§5.2.1);
// here the same search runs over the block-shape variants below and the
// analytic latency model picks the winner.
//
// Math executes on the CPU with the requested accumulator-precision policy
// so numerical claims (overflow, rounding) are real; traffic/FLOP counters
// and the modeled latency describe the equivalent GPU kernel. Row loops
// run on the context's ThreadPool with a thread-count-invariant partition,
// so results are bit-identical at any thread count (docs/threading.md).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/exec_context.hpp"
#include "gpusim/device.hpp"
#include "numeric/precision.hpp"
#include "tensor/matrix.hpp"

namespace et::kernels {

struct GemmAlgo {
  std::string name;
  std::size_t block_m = 128;
  std::size_t block_n = 128;
  /// Split-K factor: the k dimension is partitioned across split_k CTA
  /// groups whose partial results are reduced through global memory —
  /// how cuBLAS keeps small-m/n problems from starving the SMs.
  std::size_t split_k = 1;
};

/// The algorithm menu the autotuner searches (analogous to
/// cublasGemmAlgo_t's tensor-op entries).
[[nodiscard]] const std::vector<GemmAlgo>& gemm_algos();

/// ALGO5 analogue — 256×128 blocks, the paper's reported winner.
[[nodiscard]] const GemmAlgo& gemm_algo5();

/// Pick the algorithm with the lowest modeled latency for an m×n×k
/// problem under `p` on `spec` (no kernel is launched).
[[nodiscard]] const GemmAlgo& autotune_gemm(const gpusim::DeviceSpec& spec,
                                            std::size_t m, std::size_t n,
                                            std::size_t k,
                                            numeric::Precision p);

/// C = A (m×k) · Bᵀ (B is n×k) — the X·Wᵀ orientation of every linear
/// transformation in the paper.
[[nodiscard]] tensor::MatrixF gemm_nt(
    core::ExecContext& ctx, const tensor::MatrixF& a, const tensor::MatrixF& b,
    numeric::Precision p = numeric::Precision::kFp32,
    const GemmAlgo* algo = nullptr, std::string_view name = "gemm_nt");

/// C = A (m×k) · B (k×n).
[[nodiscard]] tensor::MatrixF gemm_nn(
    core::ExecContext& ctx, const tensor::MatrixF& a, const tensor::MatrixF& b,
    numeric::Precision p = numeric::Precision::kFp32,
    const GemmAlgo* algo = nullptr, std::string_view name = "gemm_nn");

/// Batched C_i = A · B_iᵀ over one shared input panel: the whole batch
/// executes in ONE launch (the cublasGemmStridedBatchedEx analogue) with
/// the A strips staged in shared memory once and every B panel streamed
/// against them — so the A traffic is paid once for the batch instead of
/// once per multiplication. The decode scheduler uses this to fuse the
/// q/k/v projections of a whole batch of sequences.
///
/// Per-element math is exactly gemm_nt's accumulation loop, so each C_i
/// is bit-identical to an unbatched gemm_nt(a, *bs[i]) call.
[[nodiscard]] std::vector<tensor::MatrixF> batched_gemm_nt(
    core::ExecContext& ctx, const tensor::MatrixF& a,
    const std::vector<const tensor::MatrixF*>& bs,
    numeric::Precision p = numeric::Precision::kFp32,
    const GemmAlgo* algo = nullptr, std::string_view name = "batched_gemm_nt");

}  // namespace et::kernels
