#include "kernels/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "core/thread_pool.hpp"
#include "gpusim/latency_model.hpp"

namespace et::kernels {

namespace {

using numeric::Precision;

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Build the traffic/FLOP record a blocked GEMM kernel incurs without
/// running it. Shared by the launch path and the autotuner.
gpusim::KernelStats gemm_counters(std::string name, std::size_t m,
                                  std::size_t n, std::size_t k, Precision p,
                                  const GemmAlgo& algo) {
  const std::size_t sb = numeric::storage_bytes(p);
  const std::size_t blocks_m = ceil_div(m, algo.block_m);
  const std::size_t blocks_n = ceil_div(n, algo.block_n);

  gpusim::KernelStats st;
  st.name = std::move(name);
  st.ctas = blocks_m * blocks_n * algo.split_k;
  st.pattern = gpusim::AccessPattern::kTiled;
  // Each CTA stages one block_m×16 A-tile strip and one block_n×16 B-tile
  // strip, double-buffered, plus nothing for C (accumulated in registers).
  st.shared_bytes_per_cta = 2 * (algo.block_m + algo.block_n) * 16 * sb;
  // Every block column of C re-reads the whole A panel; every block row of
  // C re-reads the whole B panel. This is the classic blocked-GEMM traffic
  // m*k*(n/block_n) + n*k*(m/block_m). Split-K writes (and re-reads) one
  // partial C per split before the reduction.
  st.global_load_bytes =
      static_cast<std::uint64_t>(blocks_n) * m * k * sb +
      static_cast<std::uint64_t>(blocks_m) * n * k * sb +
      (algo.split_k > 1
           ? static_cast<std::uint64_t>(algo.split_k) * m * n * sb
           : 0);
  st.global_store_bytes =
      static_cast<std::uint64_t>(algo.split_k) * m * n * sb;
  const std::uint64_t flops = 2ull * m * n * k;
  if (p == Precision::kFp32) {
    st.fp_ops = flops;
  } else {
    st.tensor_ops = flops;
  }
  return st;
}

/// Run the actual math: C(i,j) = Σ_k a(i,k)·b_row(j)(k), with rounding per
/// the precision policy applied at each accumulate step (tile-granularity
/// rounding is what real tensor cores do; per-step rounding is the
/// conservative software equivalent and reproduces the Fig. 4 overflow).
///
/// Rows are independent, so the pool partitions over i. No device calls
/// happen inside, so this is a pure-math region: it may run parallel even
/// while the fault injector is armed, and needs no LaunchSink.
template <bool Transposed>
void gemm_math(const tensor::MatrixF& a, const tensor::MatrixF& b,
               tensor::MatrixF& c, Precision p, core::ThreadPool& pool) {
  const std::size_t m = a.rows();
  const std::size_t n = Transposed ? b.rows() : b.cols();
  const std::size_t kk = a.cols();

  if (p == Precision::kFp32) {
    pool.parallel_for(m, [&](std::size_t i) {
      for (std::size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < kk; ++k) {
          acc += a(i, k) * (Transposed ? b(j, k) : b(k, j));
        }
        c(i, j) = acc;
      }
    });
    return;
  }

  pool.parallel_for(m, [&](std::size_t i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < kk; ++k) {
        acc = numeric::fma_step(p, a(i, k), Transposed ? b(j, k) : b(k, j),
                                acc);
      }
      c(i, j) = numeric::round_to_storage(p, acc);
    }
  });
}

template <bool Transposed>
tensor::MatrixF gemm_impl(core::ExecContext& ctx, const tensor::MatrixF& a,
                          const tensor::MatrixF& b, Precision p,
                          const GemmAlgo* algo, std::string_view name) {
  gpusim::Device& dev = ctx.device();
  const std::size_t m = a.rows();
  const std::size_t n = Transposed ? b.rows() : b.cols();
  const std::size_t kk = a.cols();
  assert(Transposed ? b.cols() == kk : b.rows() == kk);

  if (algo == nullptr) algo = &autotune_gemm(dev.spec(), m, n, kk, p);

  auto st = gemm_counters(std::string(name) + "[" + algo->name + "]", m, n,
                          kk, p, *algo);
  auto launch = dev.launch({.name = st.name,
                            .ctas = st.ctas,
                            .shared_bytes_per_cta = st.shared_bytes_per_cta,
                            .pattern = st.pattern});
  launch.load_bytes(st.global_load_bytes);
  launch.store_bytes(st.global_store_bytes);
  launch.fp_ops(st.fp_ops);
  launch.tensor_ops(st.tensor_ops);

  tensor::MatrixF c(m, n);
  if (!dev.traffic_only()) gemm_math<Transposed>(a, b, c, p, ctx.pool());
  return c;
}

}  // namespace

const std::vector<GemmAlgo>& gemm_algos() {
  static const std::vector<GemmAlgo> algos = {
      {"algo0_64x64", 64, 64, 1},      {"algo1_64x128", 64, 128, 1},
      {"algo2_128x64", 128, 64, 1},    {"algo3_128x128", 128, 128, 1},
      {"algo4_128x256", 128, 256, 1},  {"algo5_256x128", 256, 128, 1},
      {"algo6_128x128_sk4", 128, 128, 4},
      {"algo7_64x64_sk8", 64, 64, 8},
      {"algo8_64x128_sk4", 64, 128, 4},
      // Small-tile fallbacks for scratchpad-constrained devices (§7's
      // "adjusting the hyper-parameters" for other accelerators).
      {"algo9_32x32", 32, 32, 1},
      {"algo10_16x16", 16, 16, 1},
  };
  return algos;
}

const GemmAlgo& gemm_algo5() { return gemm_algos()[5]; }

const GemmAlgo& autotune_gemm(const gpusim::DeviceSpec& spec, std::size_t m,
                              std::size_t n, std::size_t k,
                              numeric::Precision p) {
  const GemmAlgo* best = nullptr;
  double best_us = 0.0;
  for (const auto& algo : gemm_algos()) {
    if (2 * (algo.block_m + algo.block_n) * 16 * numeric::storage_bytes(p) >
        spec.shared_mem_per_cta_bytes) {
      continue;
    }
    const auto st = gemm_counters("autotune", m, n, k, p, algo);
    const double us = gpusim::estimate_latency(st, spec).total_us;
    if (best == nullptr || us < best_us) {
      best = &algo;
      best_us = us;
    }
  }
  if (best == nullptr) {
    throw std::runtime_error(
        "autotune_gemm: no GEMM algorithm fits in " +
        std::to_string(spec.shared_mem_per_cta_bytes) +
        " B of shared memory");
  }
  return *best;
}

tensor::MatrixF gemm_nt(core::ExecContext& ctx, const tensor::MatrixF& a,
                        const tensor::MatrixF& b, numeric::Precision p,
                        const GemmAlgo* algo, std::string_view name) {
  return gemm_impl<true>(ctx, a, b, p, algo, name);
}

tensor::MatrixF gemm_nn(core::ExecContext& ctx, const tensor::MatrixF& a,
                        const tensor::MatrixF& b, numeric::Precision p,
                        const GemmAlgo* algo, std::string_view name) {
  return gemm_impl<false>(ctx, a, b, p, algo, name);
}

std::vector<tensor::MatrixF> batched_gemm_nt(
    core::ExecContext& ctx, const tensor::MatrixF& a,
    const std::vector<const tensor::MatrixF*>& bs, numeric::Precision p,
    const GemmAlgo* algo, std::string_view name) {
  gpusim::Device& dev = ctx.device();
  assert(!bs.empty());
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t sb = numeric::storage_bytes(p);

  // Autotune once for the widest problem in the batch; one fused kernel
  // must run a single block shape for every panel.
  std::size_t n_max = 0;
  std::uint64_t n_total = 0;
  for (const auto* b : bs) {
    assert(b != nullptr && b->cols() == kk);
    n_max = std::max(n_max, b->rows());
    n_total += b->rows();
  }
  if (algo == nullptr) algo = &autotune_gemm(dev.spec(), m, n_max, kk, p);

  const std::size_t blocks_m = ceil_div(m, algo->block_m);
  gpusim::KernelStats st;
  std::uint64_t ctas = 0;
  std::uint64_t b_loads = 0;
  std::uint64_t a_loads = 0;
  for (const auto* b : bs) {
    const std::size_t blocks_n = ceil_div(b->rows(), algo->block_n);
    ctas += blocks_m * blocks_n * algo->split_k;
    b_loads += static_cast<std::uint64_t>(blocks_m) * b->rows() * kk * sb;
    // The A strips are staged once and reused by every panel, so only the
    // widest panel's re-read factor is charged (vs once per gemm_nt call).
    a_loads = std::max(
        a_loads, static_cast<std::uint64_t>(blocks_n) * m * kk * sb);
  }
  auto launch = dev.launch(
      {.name = std::string(name) + "[" + algo->name + "x" +
                   std::to_string(bs.size()) + "]",
       .ctas = static_cast<std::size_t>(ctas),
       .shared_bytes_per_cta = 2 * (algo->block_m + algo->block_n) * 16 * sb,
       .pattern = gpusim::AccessPattern::kTiled});
  launch.load_bytes(a_loads + b_loads);
  launch.store_bytes(static_cast<std::uint64_t>(algo->split_k) * m * n_total *
                     sb);
  const std::uint64_t flops = 2ull * m * n_total * kk;
  if (p == Precision::kFp32) {
    launch.fp_ops(flops);
  } else {
    launch.tensor_ops(flops);
  }

  std::vector<tensor::MatrixF> out;
  out.reserve(bs.size());
  for (const auto* b : bs) {
    tensor::MatrixF c(m, b->rows());
    if (!dev.traffic_only()) gemm_math<true>(a, *b, c, p, ctx.pool());
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace et::kernels
