// Sparse linear-transformation kernels for the pruned weight formats.
//
//   bcsr_gemm_nt     — Y = X·Wᵀ with a tensor-tile-pruned W (§4.2): every
//                      surviving 16×16 tile feeds one tensor-core tile FMA;
//                      no pre/post-processing of X or Y is needed, which is
//                      the structural advantage the paper claims for tile
//                      pruning over column pruning.
//   irregular_gemm_nt — Y = X·Wᵀ with the two-level bitmap+BCSR format
//                      ([59], §4.1): bitmap decode runs on general cores
//                      with data-dependent access, so it is dramatically
//                      slower despite touching fewer weights — the Table 1
//                      "39×/44× latency" strawman.
#pragma once

#include <string_view>

#include "core/exec_context.hpp"
#include "gpusim/device.hpp"
#include "numeric/precision.hpp"
#include "sparse/formats.hpp"
#include "tensor/matrix.hpp"

namespace et::kernels {

[[nodiscard]] tensor::MatrixF bcsr_gemm_nt(
    core::ExecContext& ctx, const tensor::MatrixF& x,
    const sparse::TilePrunedWeight& w,
    numeric::Precision p = numeric::Precision::kFp32,
    std::string_view name = "bcsr_gemm_nt");

[[nodiscard]] tensor::MatrixF irregular_gemm_nt(
    core::ExecContext& ctx, const tensor::MatrixF& x,
    const sparse::IrregularWeight& w,
    numeric::Precision p = numeric::Precision::kFp32,
    std::string_view name = "irregular_gemm_nt");

}  // namespace et::kernels
