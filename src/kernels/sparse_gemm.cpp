#include "kernels/sparse_gemm.hpp"

#include <cassert>
#include <set>

namespace et::kernels {

namespace {

using numeric::Precision;
using sparse::kTileSide;

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Tile-rows are processed in groups of kGroup (8 × 16 = 128 output
/// columns per CTA); X columns are staged once per group, so tiles in
/// different rows of a group that share a tile-column share the load.
constexpr std::size_t kGroup = 8;

/// Total distinct (group, tile-column) pairs = how many 16-column strips
/// of X each 128-row block of the grid must load.
std::size_t union_col_strips(const sparse::TilePrunedWeight& w) {
  std::size_t strips = 0;
  for (std::size_t g0 = 0; g0 < w.tile_rows(); g0 += kGroup) {
    std::set<std::uint32_t> cols;
    const std::size_t g1 = std::min(g0 + kGroup, w.tile_rows());
    for (std::size_t tr = g0; tr < g1; ++tr) {
      for (std::uint32_t t = w.row_ptr()[tr]; t < w.row_ptr()[tr + 1]; ++t) {
        cols.insert(w.col_idx()[t]);
      }
    }
    strips += cols.size();
  }
  return strips;
}

}  // namespace

tensor::MatrixF bcsr_gemm_nt(core::ExecContext& ctx, const tensor::MatrixF& x,
                             const sparse::TilePrunedWeight& w,
                             numeric::Precision p, std::string_view name) {
  gpusim::Device& dev = ctx.device();
  assert(x.cols() == w.cols());
  const std::size_t m = x.rows();
  const std::size_t n = w.rows();
  const std::size_t sb = numeric::storage_bytes(p);
  const std::size_t row_blocks = ceil_div(m, std::size_t{128});

  // Grid: 64-row × 2-tile-row CTAs (fine enough to fill the SMs at the
  // paper's sizes); the X-strip reuse accounting below still assumes
  // kGroup tile rows share strips, which neighbouring CTAs get through L2.
  auto launch = dev.launch(
      {.name = std::string(name),
       .ctas = ceil_div(m, std::size_t{64}) * ceil_div(w.tile_rows(), 2),
       .shared_bytes_per_cta = 2 * (64 + 2 * kTileSide) * kTileSide * sb,
       .pattern = gpusim::AccessPattern::kTiled});

  // W tiles and the needed X strips are re-read once per 128-row block.
  launch.load_bytes(row_blocks *
                    (w.nnz_tiles() * kTileSide * kTileSide * sb +
                     w.col_idx().size() * sizeof(std::uint32_t) +
                     w.row_ptr().size() * sizeof(std::uint32_t)));
  launch.load_bytes(union_col_strips(w) * kTileSide * m * sb);
  launch.store_bytes(static_cast<std::uint64_t>(m) * n * sb);
  const std::uint64_t flops =
      2ull * m * kTileSide * kTileSide * w.nnz_tiles();
  if (p == Precision::kFp32) {
    launch.fp_ops(flops);
  } else {
    launch.tensor_ops(flops);
  }

  tensor::MatrixF y(m, n);
  if (dev.traffic_only()) return y;

  // Pure-math region: each X row accumulates its own Y row, no device
  // calls, so the pool partitions over i without sink machinery.
  ctx.pool().parallel_for(m, [&](std::size_t i) {
    for (std::size_t tr = 0; tr < w.tile_rows(); ++tr) {
      for (std::uint32_t t = w.row_ptr()[tr]; t < w.row_ptr()[tr + 1]; ++t) {
        const std::size_t tc = w.col_idx()[t];
        const float* tile = w.tile_values(t);
        for (std::size_t jj = 0; jj < kTileSide; ++jj) {
          float acc = y(i, tr * kTileSide + jj);
          if (p == Precision::kFp32) {
            for (std::size_t kk = 0; kk < kTileSide; ++kk) {
              acc += x(i, tc * kTileSide + kk) * tile[jj * kTileSide + kk];
            }
          } else {
            for (std::size_t kk = 0; kk < kTileSide; ++kk) {
              acc = numeric::fma_step(p, x(i, tc * kTileSide + kk),
                                      tile[jj * kTileSide + kk], acc);
            }
          }
          y(i, tr * kTileSide + jj) = acc;
        }
      }
    }
    if (p != Precision::kFp32) {
      for (std::size_t j = 0; j < n; ++j) {
        y(i, j) = numeric::round_to_storage(p, y(i, j));
      }
    }
  });
  return y;
}

tensor::MatrixF irregular_gemm_nt(core::ExecContext& ctx,
                                  const tensor::MatrixF& x,
                                  const sparse::IrregularWeight& w,
                                  numeric::Precision p,
                                  std::string_view name) {
  gpusim::Device& dev = ctx.device();
  assert(x.cols() == w.cols());
  const std::size_t m = x.rows();
  const std::size_t n = w.rows();
  const std::size_t sb = numeric::storage_bytes(p);
  const std::size_t row_blocks = ceil_div(m, std::size_t{128});
  const std::size_t trows = n / kTileSide;

  auto launch = dev.launch(
      {.name = std::string(name),
       .ctas = row_blocks * trows,
       .shared_bytes_per_cta = 2 * 128 * kTileSide * sb + kTileSide * kTileSide * sb,
       // Bitmap-directed gathers are data-dependent: poor coalescing.
       .pattern = gpusim::AccessPattern::kRandom});

  // Format metadata + packed values re-read per row block; X strips loaded
  // per occupied tile with no cross-row sharing (each tile-row is its own
  // CTA and decodes independently).
  launch.load_bytes(row_blocks * w.storage_bytes());
  launch.load_bytes(w.occupied_tiles() * kTileSide * m * sb);
  launch.store_bytes(static_cast<std::uint64_t>(m) * n * sb);
  // Useful math on *general* cores (tensor cores cannot consume the
  // decoded irregular layout) plus bitmap-decode overhead per tile visit.
  launch.fp_ops(2ull * m * w.nnz() +
                row_blocks * w.occupied_tiles() * kTileSide * kTileSide);

  tensor::MatrixF y(m, n);
  if (dev.traffic_only()) return y;

  // Decode each tile once into a dense scratch, then accumulate.
  std::vector<float> scratch(kTileSide * kTileSide);
  for (std::size_t tr = 0; tr < trows; ++tr) {
    for (std::uint32_t t = w.row_ptr()[tr]; t < w.row_ptr()[tr + 1]; ++t) {
      const auto& tile = w.tiles()[t];
      std::fill(scratch.begin(), scratch.end(), 0.0f);
      std::size_t v = tile.value_offset;
      for (std::size_t bit = 0; bit < kTileSide * kTileSide; ++bit) {
        if ((tile.bitmap[bit / 64] >> (bit % 64)) & 1u) {
          scratch[bit] = w.values()[v++];
        }
      }
      ctx.pool().parallel_for(m, [&](std::size_t i) {
        for (std::size_t jj = 0; jj < kTileSide; ++jj) {
          float acc = y(i, tr * kTileSide + jj);
          for (std::size_t kk = 0; kk < kTileSide; ++kk) {
            acc += x(i, tile.col * kTileSide + kk) * scratch[jj * kTileSide + kk];
          }
          y(i, tr * kTileSide + jj) = acc;
        }
      });
    }
  }
  if (p != Precision::kFp32) {
    for (auto& v : y.flat()) v = numeric::round_to_storage(p, v);
  }
  return y;
}

}  // namespace et::kernels
