#include "kernels/elementwise.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace et::kernels {

namespace {

using numeric::Precision;

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// A streaming elementwise kernel over `elems` elements with `reads`
/// input streams and `writes` output streams.
gpusim::Launch stream_launch(gpusim::Device& dev, std::string_view name,
                             std::size_t elems, Precision p,
                             std::size_t reads, std::size_t writes,
                             std::uint64_t flops) {
  const std::size_t sb = numeric::storage_bytes(p);
  auto launch = dev.launch({.name = std::string(name),
                            .ctas = std::max<std::size_t>(
                                1, ceil_div(elems, std::size_t{4096})),
                            .shared_bytes_per_cta = 0,
                            .pattern = gpusim::AccessPattern::kStreaming});
  launch.load_bytes(elems * sb * reads);
  launch.store_bytes(elems * sb * writes);
  launch.fp_ops(flops);
  return launch;
}

float storage_round(Precision p, float x) {
  return numeric::round_to_storage(p, x);
}

}  // namespace

void scale(gpusim::Device& dev, tensor::MatrixF& m, float factor,
           numeric::Precision p, std::string_view name) {
  auto launch = stream_launch(dev, name, m.size(), p, 1, 1, m.size());
  if (dev.traffic_only()) return;
  for (auto& v : m.flat()) v = storage_round(p, v * factor);
}

void add_bias(gpusim::Device& dev, tensor::MatrixF& m,
              std::span<const float> bias, numeric::Precision p,
              std::string_view name) {
  assert(bias.size() == m.cols());
  auto launch = stream_launch(dev, name, m.size(), p, 1, 1, m.size());
  launch.load_bytes(bias.size() * numeric::storage_bytes(p));
  if (dev.traffic_only()) return;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) = storage_round(p, m(r, c) + bias[c]);
    }
  }
}

void residual_add(gpusim::Device& dev, tensor::MatrixF& a,
                  const tensor::MatrixF& b, numeric::Precision p,
                  std::string_view name) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  auto launch = stream_launch(dev, name, a.size(), p, 2, 1, a.size());
  if (dev.traffic_only()) return;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.flat()[i] = storage_round(p, a.flat()[i] + b.flat()[i]);
  }
}

void relu(gpusim::Device& dev, tensor::MatrixF& m, numeric::Precision p,
          std::string_view name) {
  auto launch = stream_launch(dev, name, m.size(), p, 1, 1, m.size());
  if (dev.traffic_only()) return;
  for (auto& v : m.flat()) v = std::max(v, 0.0f);
}

void gelu(gpusim::Device& dev, tensor::MatrixF& m, numeric::Precision p,
          std::string_view name) {
  auto launch = stream_launch(dev, name, m.size(), p, 1, 1, 8 * m.size());
  if (dev.traffic_only()) return;
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (auto& v : m.flat()) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = storage_round(p, 0.5f * v * (1.0f + std::tanh(inner)));
  }
}

void causal_mask(gpusim::Device& dev, tensor::MatrixF& scores,
                 std::string_view name) {
  // Only the strict upper triangle is touched; model half the matrix as
  // store traffic (the mask itself is generated, not loaded).
  const std::size_t touched = scores.size() / 2;
  auto launch = stream_launch(dev, name, touched,
                              numeric::Precision::kPureFp16, 0, 1, 0);
  if (dev.traffic_only()) return;
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    for (std::size_t c = r + 1; c < scores.cols(); ++c) {
      scores(r, c) = -std::numeric_limits<float>::infinity();
    }
  }
}

void softmax_rows(gpusim::Device& dev, tensor::MatrixF& m,
                  numeric::Precision p, std::string_view name) {
  // Row-parallel reduction: one CTA per row group; load + store each
  // element once, ~5 flops per element (max, sub, exp, sum, div).
  auto launch = stream_launch(dev, name, m.size(), p, 1, 1, 5 * m.size());
  if (dev.traffic_only()) return;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (float v : row) mx = std::max(mx, v);
    float sum = 0.0f;
    for (auto& v : row) {
      // exp(-inf - mx) = 0 handles fully-masked positions.
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
    for (auto& v : row) v = storage_round(p, v * inv);
  }
}

void layernorm(gpusim::Device& dev, tensor::MatrixF& m,
               std::span<const float> gamma, std::span<const float> beta,
               float eps, numeric::Precision p, std::string_view name) {
  assert(gamma.size() == m.cols() && beta.size() == m.cols());
  auto launch = stream_launch(dev, name, m.size(), p, 1, 1, 10 * m.size());
  launch.load_bytes(2 * m.cols() * numeric::storage_bytes(p));
  if (dev.traffic_only()) return;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    double mean = 0.0;
    for (float v : row) mean += v;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (float v : row) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = storage_round(
          p, (static_cast<float>(row[c] - mean)) * inv_std * gamma[c] +
                 beta[c]);
    }
  }
}

void fused_residual_layernorm(gpusim::Device& dev, tensor::MatrixF& a,
                              const tensor::MatrixF& residual,
                              std::span<const float> gamma,
                              std::span<const float> beta,
                              numeric::Precision p, std::string_view name) {
  assert(a.rows() == residual.rows() && a.cols() == residual.cols());
  assert(gamma.size() == a.cols() && beta.size() == a.cols());
  const std::size_t sb = numeric::storage_bytes(p);
  auto launch = dev.launch({.name = std::string(name),
                            .ctas = std::max<std::size_t>(1, a.size() / 4096),
                            .shared_bytes_per_cta = 0,
                            .pattern = gpusim::AccessPattern::kStreaming});
  launch.load_bytes(2 * a.size() * sb + 2 * a.cols() * sb);
  launch.store_bytes(a.size() * sb);
  launch.fp_ops(12 * a.size());
  launch.finish();
  if (dev.traffic_only()) return;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.flat()[i] += residual.flat()[i];
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    double mean = 0.0;
    for (float v : row) mean += v;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (float v : row) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + 1e-5f);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = storage_round(
          p, static_cast<float>(row[c] - mean) * inv_std * gamma[c] + beta[c]);
    }
  }
}

tensor::MatrixF transpose_kernel(gpusim::Device& dev, const tensor::MatrixF& m,
                                 numeric::Precision p, std::string_view name) {
  auto launch = dev.launch({.name = std::string(name),
                            .ctas = ceil_div(m.size(), std::size_t{4096}),
                            .shared_bytes_per_cta = 32 * 32 * 4,
                            .pattern = gpusim::AccessPattern::kStrided});
  const std::size_t sb = numeric::storage_bytes(p);
  launch.load_bytes(m.size() * sb);
  launch.store_bytes(m.size() * sb);
  if (dev.traffic_only()) return tensor::MatrixF(m.cols(), m.rows());
  return tensor::transpose(m);
}

tensor::MatrixF gather_cols(gpusim::Device& dev, const tensor::MatrixF& x,
                            std::span<const std::uint32_t> cols,
                            numeric::Precision p, std::string_view name) {
  const std::size_t sb = numeric::storage_bytes(p);
  auto launch =
      dev.launch({.name = std::string(name),
                  .ctas = std::max<std::size_t>(1, x.rows() / 16),
                  .shared_bytes_per_cta = 0,
                  .pattern = gpusim::AccessPattern::kStrided});
  // Index list + the gathered elements; the strided pattern models the
  // uncoalesced column accesses.
  launch.load_bytes(cols.size() * sizeof(std::uint32_t) +
                    x.rows() * cols.size() * sb);
  launch.store_bytes(x.rows() * cols.size() * sb);

  tensor::MatrixF out(x.rows(), cols.size());
  if (dev.traffic_only()) return out;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      assert(cols[i] < x.cols());
      out(r, i) = x(r, cols[i]);
    }
  }
  return out;
}

tensor::MatrixF scatter_cols(gpusim::Device& dev,
                             const tensor::MatrixF& condensed,
                             std::span<const std::uint32_t> cols,
                             std::size_t out_cols, numeric::Precision p,
                             std::string_view name) {
  assert(condensed.cols() == cols.size());
  const std::size_t sb = numeric::storage_bytes(p);
  auto launch =
      dev.launch({.name = std::string(name),
                  .ctas = std::max<std::size_t>(1, condensed.rows() / 16),
                  .shared_bytes_per_cta = 0,
                  .pattern = gpusim::AccessPattern::kStrided});
  launch.load_bytes(cols.size() * sizeof(std::uint32_t) +
                    condensed.size() * sb);
  // The full-width output must be written (zero-fill included).
  launch.store_bytes(condensed.rows() * out_cols * sb);

  tensor::MatrixF out(condensed.rows(), out_cols);
  if (dev.traffic_only()) return out;
  for (std::size_t r = 0; r < condensed.rows(); ++r) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      assert(cols[i] < out_cols);
      out(r, cols[i]) = condensed(r, i);
    }
  }
  return out;
}

}  // namespace et::kernels
