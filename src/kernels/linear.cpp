#include "kernels/linear.hpp"

#include <cassert>
#include <string>

#include "kernels/elementwise.hpp"

namespace et::kernels {

tensor::MatrixF LinearResult::full_width(std::size_t out_cols) const {
  if (!condensed) return y;
  tensor::MatrixF full(y.rows(), out_cols);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t i = 0; i < nonzero_cols.size(); ++i) {
      full(r, nonzero_cols[i]) = y(r, i);
    }
  }
  return full;
}

LinearResult linear(core::ExecContext& ctx, const tensor::MatrixF& x,
                    const sparse::AnyWeight& w, const LinearOptions& opt,
                    std::string_view name) {
  gpusim::Device& dev = ctx.device();
  const std::string base(name);
  LinearResult out;

  if (const auto* dense = std::get_if<sparse::DenseWeight>(&w)) {
    out.y = gemm_nt(ctx, x, dense->matrix(), opt.precision, opt.algo,
                    base + ".dense");
    return out;
  }

  if (const auto* row = std::get_if<sparse::RowPrunedWeight>(&w)) {
    tensor::MatrixF cond = gemm_nt(ctx, x, row->condensed(), opt.precision,
                                   opt.algo, base + ".row_gemm");
    if (opt.scatter_row_pruned_output) {
      out.y = scatter_cols(dev, cond, row->kept_rows(), row->original_rows(),
                           opt.precision, base + ".scatter");
    } else {
      out.y = std::move(cond);
      out.condensed = true;
      out.nonzero_cols = row->kept_rows();
    }
    return out;
  }

  if (const auto* col = std::get_if<sparse::ColPrunedWeight>(&w)) {
    tensor::MatrixF adjusted = gather_cols(dev, x, col->kept_cols(),
                                           opt.precision, base + ".gather");
    out.y = gemm_nt(ctx, adjusted, col->condensed(), opt.precision, opt.algo,
                    base + ".col_gemm");
    return out;
  }

  if (const auto* tile = std::get_if<sparse::TilePrunedWeight>(&w)) {
    out.y = bcsr_gemm_nt(ctx, x, *tile, opt.precision, base + ".bcsr_gemm");
    return out;
  }

  const auto& irr = std::get<sparse::IrregularWeight>(w);
  out.y = irregular_gemm_nt(ctx, x, irr, opt.precision, base + ".irr_gemm");
  return out;
}

}  // namespace et::kernels
