// Deterministic fault injection for the simulated device.
//
// Production inference stacks treat operator failure as routine: a kernel
// that aborts (illegal address, watchdog timeout, ECC error) is retried on
// a slower-but-safe implementation rather than taking the whole server
// down. To test that behaviour we need faults on demand — reproducibly.
// The injector is owned by Device and consulted on every launch attempt;
// an armed rule turns the launch into a typed KernelFault carrying the
// kernel name and the cause, which the resilient layers above
// (core::adaptive_attention's degradation chain, nn::generate's graceful
// stop) catch and recover from. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace et::gpusim {

/// Why an injected launch failed.
enum class FaultCause {
  kLaunchIndex,  ///< armed to fail the Nth launch attempt
  kKernelName,   ///< armed to fail launches matching a name substring
  kAllocation,   ///< shared-memory request above the armed threshold
  kRandom,       ///< seeded Bernoulli draw per launch
};

[[nodiscard]] constexpr std::string_view to_string(FaultCause c) noexcept {
  switch (c) {
    case FaultCause::kLaunchIndex: return "launch_index";
    case FaultCause::kKernelName: return "kernel_name";
    case FaultCause::kAllocation: return "allocation";
    case FaultCause::kRandom: return "random";
  }
  return "?";
}

/// Thrown by Device::launch when an armed fault rule trips. Carries the
/// kernel name and cause so recovery layers can log *what* failed and
/// *why* instead of parsing a message string.
class KernelFault : public std::runtime_error {
 public:
  KernelFault(std::string kernel, FaultCause cause)
      : std::runtime_error("injected fault in kernel '" + kernel +
                           "' (cause: " + std::string(to_string(cause)) +
                           ")"),
        kernel_(std::move(kernel)),
        cause_(cause) {}

  [[nodiscard]] const std::string& kernel() const noexcept { return kernel_; }
  [[nodiscard]] FaultCause cause() const noexcept { return cause_; }

 private:
  std::string kernel_;
  FaultCause cause_;
};

/// One injected fault, for post-mortem inspection in tests and the CLI.
struct FaultRecord {
  std::string kernel;
  FaultCause cause = FaultCause::kLaunchIndex;
  std::size_t launch_index = 0;  ///< 0-based launch-attempt counter
};

/// Armable, deterministic fault source. Rules are cumulative until
/// disarm(); every launch attempt (faulted or not) advances the internal
/// counter, so a given arm configuration always faults the same launches
/// for the same workload — tests stay reproducible.
class FaultInjector {
 public:
  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();

  /// Fail the nth launch attempt from now (0-based: n = 0 fails the next
  /// launch). One-shot — the rule clears after it fires.
  void arm_nth_launch(std::size_t n);

  /// Fail launches whose kernel name contains `substring`, at most
  /// `max_faults` times.
  void arm_kernel(std::string substring, std::size_t max_faults = kUnlimited);

  /// Fail launches requesting more than `bytes` of shared memory per CTA
  /// (models allocation failure under memory pressure).
  void arm_alloc_above(std::size_t bytes);

  /// Fail a seeded Bernoulli fraction of launches. Deterministic: the
  /// per-launch draw depends only on (seed, launch index).
  void arm_random(double fraction, std::uint64_t seed);

  /// Clear every armed rule (the log and counters are kept).
  void disarm() noexcept;

  [[nodiscard]] bool armed() const noexcept;
  [[nodiscard]] std::size_t launches_seen() const noexcept {
    return launches_seen_;
  }
  [[nodiscard]] std::size_t faults_injected() const noexcept {
    return log_.size();
  }
  [[nodiscard]] const std::vector<FaultRecord>& fault_log() const noexcept {
    return log_;
  }

  /// Called by Device on every launch attempt; throws KernelFault when an
  /// armed rule trips (the attempt still counts toward the launch index).
  void on_launch(const std::string& kernel, std::size_t shared_bytes_per_cta);

  /// Account for `n` launch attempts staged off-thread: Device::merge
  /// advances the launch index by each parallel chunk's attempt count, in
  /// chunk order, so rules armed after a parallel region see the same
  /// logical indices a serial run would have produced. Parallel regions
  /// never execute with rules armed (ExecContext serializes then), so
  /// advancing never needs to fire a fault.
  void advance(std::size_t n) noexcept { launches_seen_ += n; }

 private:
  struct NameRule {
    std::string substring;
    std::size_t remaining = kUnlimited;
  };

  bool nth_armed_ = false;
  std::size_t nth_target_ = 0;
  std::vector<NameRule> name_rules_;
  bool alloc_armed_ = false;
  std::size_t alloc_threshold_ = 0;
  bool random_armed_ = false;
  double random_fraction_ = 0.0;
  std::uint64_t random_seed_ = 0;

  std::size_t launches_seen_ = 0;
  std::vector<FaultRecord> log_;
};

}  // namespace et::gpusim
