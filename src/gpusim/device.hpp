// The simulated device: a log of kernel launches with enforced
// shared-memory budgets and a latency model applied to each launch.
//
// Kernels in src/kernels execute their real math on the CPU while calling
// into a Launch handle to record the global-memory traffic, FLOP counts
// and shared-memory footprint the equivalent CUDA kernel would incur.
// This gives us (a) checkable numerics and (b) nvprof-comparable counters
// to reproduce Figures 11 and 12 and the latency studies.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/kernel_stats.hpp"

namespace et::gpusim {

/// Thrown when a kernel requests more shared memory per CTA than the
/// device offers — the §3.2 capacity limit (Eq. 6) made tangible.
class SharedMemOverflow : public std::runtime_error {
 public:
  SharedMemOverflow(const std::string& kernel, std::size_t requested,
                    std::size_t capacity)
      : std::runtime_error("kernel '" + kernel + "' requests " +
                           std::to_string(requested) +
                           " B of shared memory per CTA; device offers " +
                           std::to_string(capacity) + " B"),
        kernel_(kernel),
        requested_(requested),
        capacity_(capacity) {}

  [[nodiscard]] const std::string& kernel() const noexcept { return kernel_; }
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::string kernel_;
  std::size_t requested_;
  std::size_t capacity_;
};

/// One recovery step taken by a resilient execution layer (e.g. the
/// core::adaptive_attention degradation chain): implementation `from`
/// failed in kernel `kernel` for `cause`, and `to` was tried instead.
struct FallbackEvent {
  std::string from_impl;
  std::string to_impl;
  std::string kernel;
  std::string cause;
  /// Serving slot the recovery applied to (kNoSlot = whole device, e.g.
  /// a batched tick degrading to per-slot stepping).
  int slot = kNoSlot;
};

struct LaunchConfig {
  std::string name;
  std::size_t ctas = 1;
  std::size_t shared_bytes_per_cta = 0;
  AccessPattern pattern = AccessPattern::kStreaming;
};

/// Per-chunk staging buffer for one chunk of a core::ExecContext parallel
/// region. While a SinkScope binds a sink on a thread, everything that
/// thread records against the device — launches, fallback events, slot
/// changes, launch-attempt counts — lands here instead of in the shared
/// device state. The region owner then calls Device::merge on the sinks
/// in chunk order, so the device log ends up byte-for-byte the order a
/// 1-thread run would have produced. See docs/threading.md.
struct LaunchSink {
  std::vector<KernelStats> log;
  std::vector<FallbackEvent> fallbacks;
  /// Launch attempts staged here; merge advances the fault injector's
  /// launch index by this count so post-region arming sees the same
  /// logical indices as a serial run.
  std::size_t launches_attempted = 0;
  /// The thread-local current slot within this chunk (SlotScope routes
  /// here while the sink is bound). Seeded from the device's slot at
  /// bind time so chunks inherit the region's outer attribution.
  int slot = kNoSlot;
};

class Device;

/// RAII handle for one simulated kernel launch. Counters accumulate while
/// the handle lives; `finish()` (or destruction) runs the latency model
/// and appends the record to the device log.
class Launch {
 public:
  Launch(Launch&& other) noexcept;
  Launch(const Launch&) = delete;
  Launch& operator=(const Launch&) = delete;
  Launch& operator=(Launch&&) = delete;
  ~Launch();

  void load_bytes(std::uint64_t b) noexcept { stats_.global_load_bytes += b; }
  void store_bytes(std::uint64_t b) noexcept {
    stats_.global_store_bytes += b;
  }
  /// Tag `b` of the bytes already (or about to be) counted above as
  /// score-matrix traffic (see KernelStats::score_bytes). Attribution
  /// only: call IN ADDITION to load_bytes/store_bytes, never instead.
  void score_bytes(std::uint64_t b) noexcept { stats_.score_bytes += b; }
  void fp_ops(std::uint64_t n) noexcept { stats_.fp_ops += n; }
  void tensor_ops(std::uint64_t n) noexcept { stats_.tensor_ops += n; }

  /// Record the launch; idempotent.
  void finish();

 private:
  friend class Device;
  Launch(Device& dev, LaunchConfig cfg);

  Device* dev_;
  KernelStats stats_;
  bool finished_ = false;
};

class Device {
 public:
  explicit Device(DeviceSpec spec = v100s()) : spec_(std::move(spec)) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Begin a kernel launch. Throws SharedMemOverflow if the requested
  /// per-CTA shared memory exceeds the device capacity, or KernelFault if
  /// an armed fault-injection rule trips.
  [[nodiscard]] Launch launch(LaunchConfig cfg);

  /// Deterministic fault source consulted on every launch attempt. Arm it
  /// to rehearse failure: `dev.fault_injector().arm_kernel("otf")`.
  [[nodiscard]] FaultInjector& fault_injector() noexcept { return injector_; }
  [[nodiscard]] const FaultInjector& fault_injector() const noexcept {
    return injector_;
  }

  /// Resilient layers report each degradation step here so recovery is
  /// observable in the profiler rather than silent. Routed to the bound
  /// LaunchSink inside a parallel-region chunk.
  void note_fallback(FallbackEvent event);
  [[nodiscard]] const std::vector<FallbackEvent>& fallback_log()
      const noexcept {
    return fallbacks_;
  }

  /// Would a kernel with this per-CTA footprint fit? Used by the
  /// sequence-length-aware dispatch (§3.2) before committing to the
  /// fully-fused on-the-fly operator.
  [[nodiscard]] bool fits_shared(std::size_t bytes_per_cta) const noexcept {
    return bytes_per_cta <= spec_.shared_mem_per_cta_bytes;
  }

  [[nodiscard]] const std::vector<KernelStats>& history() const noexcept {
    return log_;
  }
  [[nodiscard]] std::size_t launch_count() const noexcept {
    return log_.size();
  }

  [[nodiscard]] double total_time_us() const noexcept;
  [[nodiscard]] std::uint64_t total_load_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_store_bytes() const noexcept;
  /// Global-memory bytes attributed to the score matrix across the log —
  /// the instrument behind the fig08 O(N²) vs O(N) score-traffic claim.
  [[nodiscard]] std::uint64_t total_score_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_ops() const noexcept;

  /// Time spent in kernels whose name contains `substr`.
  [[nodiscard]] double time_us_matching(const std::string& substr) const;

  void reset() noexcept {
    log_.clear();
    fallbacks_.clear();
  }

  /// When set, kernels record traffic/FLOP counters and modeled latency
  /// but skip the actual CPU arithmetic. Used by latency sweeps at the
  /// paper's full model sizes (e.g. BERT_BASE d=768, L=12), where the
  /// modeled time is the output and the numerics are already covered by
  /// the test suite at smaller sizes.
  void set_traffic_only(bool v) noexcept { traffic_only_ = v; }
  [[nodiscard]] bool traffic_only() const noexcept { return traffic_only_; }

  /// Serving slot stamped onto every launch recorded while set (kNoSlot =
  /// unattributed). Prefer the RAII SlotScope below. Thread-safe inside a
  /// parallel-region chunk: the slot lives in the bound LaunchSink, so
  /// concurrent chunks attribute their launches independently.
  void set_current_slot(int slot) noexcept;
  [[nodiscard]] int current_slot() const noexcept;

  /// Time spent in launches attributed to `slot` (see SlotScope).
  [[nodiscard]] double time_us_for_slot(int slot) const;

  /// Fold one parallel-region chunk's staged records into the device.
  /// Called by core::ExecContext in chunk order after the region joins —
  /// the single point where worker-side state re-enters shared state, and
  /// the reason the merged log is deterministic.
  void merge(LaunchSink&& sink);

 private:
  friend class Launch;
  friend class SinkScope;
  void record(KernelStats stats);

  /// The LaunchSink bound to the calling thread for THIS device, or
  /// nullptr outside parallel-region chunks (thread-local storage keyed
  /// on the device identity, so scratch devices inside a region are
  /// unaffected).
  [[nodiscard]] LaunchSink* bound_sink() const noexcept;

  DeviceSpec spec_;
  std::vector<KernelStats> log_;
  std::vector<FallbackEvent> fallbacks_;
  FaultInjector injector_;
  bool traffic_only_ = false;
  int current_slot_ = kNoSlot;
};

/// RAII binding of a LaunchSink to (this thread, one device): everything
/// the thread records against `dev` while the scope lives is staged in
/// `sink` for a later ordered Device::merge. Restores the previous
/// binding on destruction so scopes nest.
class SinkScope {
 public:
  SinkScope(Device& dev, LaunchSink& sink) noexcept;
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;
  ~SinkScope();

 private:
  Device* prev_dev_;
  LaunchSink* prev_sink_;
};

/// RAII slot attribution: every launch recorded while the scope lives is
/// stamped with `slot`, so profiler reports can split a batched decode
/// tick's per-sequence work (each slot's attention over its own cache)
/// from the shared batched kernels. Scopes restore the previous slot on
/// destruction, so nesting behaves.
class SlotScope {
 public:
  SlotScope(Device& dev, int slot) noexcept
      : dev_(&dev), previous_(dev.current_slot()) {
    dev_->set_current_slot(slot);
  }
  SlotScope(const SlotScope&) = delete;
  SlotScope& operator=(const SlotScope&) = delete;
  ~SlotScope() { dev_->set_current_slot(previous_); }

 private:
  Device* dev_;
  int previous_;
};

}  // namespace et::gpusim
