// nvprof-style aggregation over a Device's launch history.
//
// Reproduces the metrics the paper reports in §5.2.5–5.2.6:
//   gld_transactions / gst_transactions  (Fig. 11a/b)
//   sm_efficiency                        (Fig. 11c)
//   IPC                                  (Fig. 11d)
//   achieved memory throughput per step  (Fig. 12)
// plus the arithmetic-intensity classification ("memory bound when AI<138"
// on V100S, citing [36]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gpusim/device.hpp"

namespace et::gpusim {

struct KernelReport {
  std::string name;
  double time_us = 0.0;
  std::uint64_t gld_transactions = 0;
  std::uint64_t gst_transactions = 0;
  double achieved_gbps = 0.0;
  double arithmetic_intensity = 0.0;
  bool memory_bound = false;
  double sm_efficiency = 0.0;
  double ipc = 0.0;
};

/// Aggregate over the launches attributed to one serving slot via
/// gpusim::SlotScope (batched decode: each sequence's attention kernels).
struct SlotReport {
  int slot = kNoSlot;
  std::size_t launches = 0;
  double time_us = 0.0;
  std::uint64_t load_bytes = 0;
  std::uint64_t store_bytes = 0;
  /// Recovery steps attributed to this slot (FallbackEvent::slot) — e.g.
  /// a batched tick retiring exactly this sequence after a fault. The
  /// kNoSlot row carries whole-device recoveries.
  std::size_t fallbacks = 0;
};

struct DeviceReport {
  std::vector<KernelReport> kernels;
  /// Per-slot attribution of the launch history, ordered by slot id.
  /// Includes a kNoSlot row for shared/unattributed work when any launch
  /// carried a slot; empty when nothing was slot-scoped.
  std::vector<SlotReport> slots;
  /// Degradation steps the resilient execution layer took during the run
  /// (e.g. otf → partial_otf after an injected kernel fault). Empty on a
  /// healthy run.
  std::vector<FallbackEvent> fallbacks;
  double total_time_us = 0.0;
  std::uint64_t gld_transactions = 0;
  std::uint64_t gst_transactions = 0;
  /// Time-weighted averages over all kernels.
  double avg_sm_efficiency = 0.0;
  double avg_ipc = 0.0;
  /// Bytes-weighted mean achieved throughput.
  double avg_achieved_gbps = 0.0;
};

/// Arithmetic-intensity threshold below which an op is memory-bound on the
/// simulated V100S (FLOP:byte balance point, per the paper's §5.2.6).
inline constexpr double kMemoryBoundAiThreshold = 138.0;

[[nodiscard]] DeviceReport profile(const Device& dev);

/// Pretty-print the per-kernel table (aligned columns).
void print_report(std::ostream& os, const DeviceReport& report);

}  // namespace et::gpusim
