#include "gpusim/latency_model.hpp"

#include <algorithm>
#include <cmath>

namespace et::gpusim {

LatencyBreakdown estimate_latency(const KernelStats& k,
                                  const DeviceSpec& spec) {
  LatencyBreakdown b;
  b.launch_us = spec.kernel_launch_us;

  // --- memory time ---
  const double bytes = static_cast<double>(k.total_bytes());
  const double size_factor = bytes / (bytes + spec.bw_ramp_bytes);
  const double achieved_bw =
      spec.hbm_bw_gbps * spec.pattern_efficiency(k.pattern) * size_factor;
  b.memory_us = achieved_bw > 0.0 ? bytes / 1e3 / achieved_bw : 0.0;

  // --- compute time ---
  const double t_tensor =
      static_cast<double>(k.tensor_ops) /
      (spec.fp16_tensor_tflops * spec.tensor_compute_eff * 1e6);
  const double t_general =
      static_cast<double>(k.fp_ops) /
      (spec.fp32_tflops * spec.general_compute_eff * 1e6);
  b.compute_us = t_tensor + t_general;

  // --- occupancy ---
  const double ctas = static_cast<double>(std::max<std::size_t>(k.ctas, 1));
  b.occupancy = std::min(1.0, ctas / static_cast<double>(spec.sm_count));
  // Only the compute term is derated by grid occupancy: HBM bandwidth
  // saturates with a handful of CTAs, and the size-dependent ramp in
  // achieved_bw above already models the underfilled-pipeline cost of
  // small transfers (deriving it again from the grid would double-count).
  const double busy = std::max(b.memory_us, b.compute_us / b.occupancy);
  b.total_us = b.launch_us + busy;

  // sm_efficiency saturation mirrors the memory system: waves of CTAs
  // keep SMs warm well below a full grid.
  const double mem_parallelism =
      std::min(1.0, ctas / (static_cast<double>(spec.sm_count) / 4.0));

  // sm_efficiency proxy: fraction of the kernel's wall time during which
  // SMs actually host work — launch/drain overhead and a sparse grid both
  // reduce it. Like the memory system, the metric saturates well below a
  // full grid (waves of CTAs keep SMs warm).
  b.sm_efficiency = (busy / b.total_us) * mem_parallelism;

  // IPC proxy: issued work per SM-cycle over the kernel lifetime. Memory
  // instructions are approximated as one issue slot per 2 bytes touched
  // (a 32-bit LDG covers 4 bytes across a half-spaced access mix).
  const double cycles =
      b.total_us * spec.core_clock_ghz * 1e3 * static_cast<double>(spec.sm_count);
  const double issued = static_cast<double>(k.total_ops()) +
                        static_cast<double>(k.total_bytes()) / 2.0;
  const double raw_ipc = cycles > 0.0 ? issued / cycles : 0.0;
  // Saturate at the 4-scheduler issue width of a Volta SM.
  b.ipc = 4.0 * raw_ipc / (raw_ipc + 4.0);

  return b;
}

void apply_latency_model(KernelStats& k, const DeviceSpec& spec) {
  const LatencyBreakdown b = estimate_latency(k, spec);
  k.time_us = b.total_us;
  k.sm_efficiency = b.sm_efficiency;
  k.ipc = b.ipc;
}

}  // namespace et::gpusim
