// CTA-level execution engine: the *measured* counterpart of the analytic
// traffic accounting in src/kernels.
//
// A kernel is a functor executed once per CTA. Inside it, global memory is
// touched only through the counted accessors of CtaContext, and on-chip
// buffers come from a SharedArena whose capacity is enforced exactly like
// the device budget. When the grid finishes, the engine aggregates the
// per-CTA counters into a KernelStats record and pushes it through the
// same latency model as every analytic kernel.
//
// The point is auditability: for any kernel whose traffic we claim
// analytically (e.g. the on-the-fly attention operator and its Fig. 11
// load/store story), a CTA-level implementation can be written against
// this engine and the two accountings compared in a test.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "gpusim/device.hpp"
#include "tensor/matrix.hpp"

namespace et::gpusim {

/// Per-CTA scratchpad. Allocations are bump-pointer (freed wholesale when
/// the CTA retires); exceeding the device capacity throws
/// SharedMemOverflow, as a real launch would fail.
class SharedArena {
 public:
  SharedArena(std::string kernel_name, std::size_t capacity_bytes)
      : kernel_(std::move(kernel_name)), capacity_(capacity_bytes) {}

  /// Allocate n floats of shared memory.
  std::span<float> alloc_floats(std::size_t n) {
    return {alloc_raw(n * sizeof(float)), n};
  }

  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_;
  }

 private:
  float* alloc_raw(std::size_t bytes);

  std::string kernel_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::vector<std::vector<float>> blocks_;
};

/// Handle a CTA body uses to touch memory and record work. Loads/stores
/// count `element_bytes` per access (set it to the storage width of the
/// precision policy in use, 2 for FP16).
class CtaContext {
 public:
  CtaContext(std::size_t cta_id, std::string kernel_name,
             std::size_t shared_capacity, std::size_t element_bytes)
      : cta_id_(cta_id),
        element_bytes_(element_bytes),
        arena_(std::move(kernel_name), shared_capacity) {}

  [[nodiscard]] std::size_t cta_id() const noexcept { return cta_id_; }
  [[nodiscard]] SharedArena& shared() noexcept { return arena_; }

  /// Counted global-memory read.
  [[nodiscard]] float load(const tensor::MatrixF& m, std::size_t r,
                           std::size_t c) {
    load_bytes_ += element_bytes_;
    return m(r, c);
  }
  /// Counted global-memory write.
  void store(tensor::MatrixF& m, std::size_t r, std::size_t c, float v) {
    store_bytes_ += element_bytes_;
    m(r, c) = v;
  }
  /// Atomic-add style write (counts a read-modify-write).
  void atomic_add(tensor::MatrixF& m, std::size_t r, std::size_t c,
                  float v) {
    load_bytes_ += element_bytes_;
    store_bytes_ += element_bytes_;
    m(r, c) += v;
  }

  void count_fp_ops(std::uint64_t n) noexcept { fp_ops_ += n; }
  void count_tensor_ops(std::uint64_t n) noexcept { tensor_ops_ += n; }

  [[nodiscard]] std::uint64_t load_bytes() const noexcept {
    return load_bytes_;
  }
  [[nodiscard]] std::uint64_t store_bytes() const noexcept {
    return store_bytes_;
  }
  [[nodiscard]] std::uint64_t fp_ops() const noexcept { return fp_ops_; }
  [[nodiscard]] std::uint64_t tensor_ops() const noexcept {
    return tensor_ops_;
  }

 private:
  std::size_t cta_id_;
  std::size_t element_bytes_;
  SharedArena arena_;
  std::uint64_t load_bytes_ = 0;
  std::uint64_t store_bytes_ = 0;
  std::uint64_t fp_ops_ = 0;
  std::uint64_t tensor_ops_ = 0;
};

struct CtaLaunchConfig {
  std::string name;
  std::size_t num_ctas = 1;
  std::size_t element_bytes = 4;  ///< storage width counted per access
  AccessPattern pattern = AccessPattern::kTiled;
};

/// Execute `body` once per CTA and record the aggregated launch on `dev`.
/// The recorded shared-memory footprint is the high-water mark across
/// CTAs; traffic and FLOPs are summed. Returns the recorded stats.
KernelStats run_cta_kernel(Device& dev, const CtaLaunchConfig& cfg,
                           const std::function<void(CtaContext&)>& body);

}  // namespace et::gpusim
