#include "gpusim/fault_injector.hpp"

namespace et::gpusim {

namespace {

/// splitmix64 — a stateless mix of (seed, index) so the per-launch random
/// draw never depends on how many rules were armed before it.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void FaultInjector::arm_nth_launch(std::size_t n) {
  nth_armed_ = true;
  nth_target_ = launches_seen_ + n;
}

void FaultInjector::arm_kernel(std::string substring, std::size_t max_faults) {
  name_rules_.push_back({std::move(substring), max_faults});
}

void FaultInjector::arm_alloc_above(std::size_t bytes) {
  alloc_armed_ = true;
  alloc_threshold_ = bytes;
}

void FaultInjector::arm_random(double fraction, std::uint64_t seed) {
  random_armed_ = true;
  random_fraction_ = fraction;
  random_seed_ = seed;
}

void FaultInjector::disarm() noexcept {
  nth_armed_ = false;
  name_rules_.clear();
  alloc_armed_ = false;
  random_armed_ = false;
}

bool FaultInjector::armed() const noexcept {
  return nth_armed_ || !name_rules_.empty() || alloc_armed_ || random_armed_;
}

void FaultInjector::on_launch(const std::string& kernel,
                              std::size_t shared_bytes_per_cta) {
  const std::size_t index = launches_seen_++;
  const auto fault = [&](FaultCause cause) {
    log_.push_back({kernel, cause, index});
    throw KernelFault(kernel, cause);
  };

  if (nth_armed_ && index == nth_target_) {
    nth_armed_ = false;  // one-shot
    fault(FaultCause::kLaunchIndex);
  }
  for (auto& rule : name_rules_) {
    if (rule.remaining > 0 &&
        kernel.find(rule.substring) != std::string::npos) {
      if (rule.remaining != kUnlimited) --rule.remaining;
      fault(FaultCause::kKernelName);
    }
  }
  if (alloc_armed_ && shared_bytes_per_cta > alloc_threshold_) {
    fault(FaultCause::kAllocation);
  }
  if (random_armed_) {
    const std::uint64_t draw = mix64(random_seed_ ^ mix64(index));
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u < random_fraction_) fault(FaultCause::kRandom);
  }
}

}  // namespace et::gpusim
