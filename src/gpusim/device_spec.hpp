// Parameters of the simulated GPU.
//
// The paper's testbed is an NVIDIA V100S; the defaults below are that
// card's public specification (§2.2 and [34] of the paper) plus a handful
// of latency-model constants calibrated so that the TensorRT-like encoder
// at BERT_BASE / seqLen=128 lands near the ~160 µs the paper quotes in §1.
// Every constant is a plain struct field so tests and ablations can build
// hypothetical devices (more shared memory, slower HBM, ...).
#pragma once

#include <cstddef>
#include <string>

namespace et::gpusim {

/// How a kernel touches global memory; selects the achievable fraction of
/// peak bandwidth (perfectly coalesced streaming loads reach a much larger
/// fraction of peak than gather/scatter traffic).
enum class AccessPattern {
  kStreaming,  ///< unit-stride, fully coalesced (elementwise ops)
  kTiled,      ///< 16×16 tile loads of a tiled GEMM
  kStrided,    ///< column-strided access (transposes, gathers over rows)
  kRandom,     ///< data-dependent gather/scatter (irregular sparse formats)
};

struct DeviceSpec {
  std::string name = "V100S (simulated)";

  // --- architecture ---
  int sm_count = 80;
  /// Opt-in maximum shared memory usable by one CTA (96 KB on Volta).
  std::size_t shared_mem_per_cta_bytes = 96 * 1024;
  double core_clock_ghz = 1.245;
  /// nvprof counts global memory transactions in 32-byte sectors.
  std::size_t transaction_bytes = 32;

  // --- peaks ---
  double hbm_bw_gbps = 1134.0;        ///< GB/s
  double fp16_tensor_tflops = 130.0;  ///< tensor-core peak
  double fp32_tflops = 16.4;          ///< general-core peak
  double fp16_tflops = 32.8;          ///< general-core FP16 (2× FP32 rate)

  // --- latency-model calibration ---
  /// Fixed cost of a kernel launch + the implicit global synchronization
  /// between dependent kernels (the paper's issue (ii) in §1: on/off-chip
  /// movement at every kernel boundary sits on the critical path).
  double kernel_launch_us = 1.5;
  /// Achieved-bandwidth ramp: small transfers cannot fill the memory
  /// pipeline, so achieved BW = peak * pattern_eff * B/(B + bw_ramp_bytes).
  /// This is what makes the many tiny kernels of the modular pipeline
  /// reach only ~8.6% of peak (Fig. 12) while one large fused kernel
  /// approaches ~27.5%.
  double bw_ramp_bytes = 2.0 * 1024 * 1024;
  /// Sustained fraction of compute peak for well-formed kernels.
  double tensor_compute_eff = 0.55;
  double general_compute_eff = 0.45;

  [[nodiscard]] double pattern_efficiency(AccessPattern p) const {
    switch (p) {
      case AccessPattern::kStreaming: return 0.85;
      case AccessPattern::kTiled: return 0.65;
      case AccessPattern::kStrided: return 0.30;
      case AccessPattern::kRandom: return 0.10;
    }
    return 0.5;
  }
};

/// The card the paper evaluates on.
[[nodiscard]] inline DeviceSpec v100s() { return DeviceSpec{}; }

/// An A100-like device for the §7 "other hardware" discussion benches.
[[nodiscard]] inline DeviceSpec a100() {
  DeviceSpec s;
  s.name = "A100 (simulated)";
  s.sm_count = 108;
  s.shared_mem_per_cta_bytes = 164 * 1024;
  s.hbm_bw_gbps = 1555.0;
  s.fp16_tensor_tflops = 312.0;
  s.fp32_tflops = 19.5;
  s.fp16_tflops = 39.0;
  s.core_clock_ghz = 1.41;
  return s;
}

}  // namespace et::gpusim
