// Roofline-with-overheads latency model for one simulated kernel launch.
//
// time = launch_overhead + max(t_memory, t_compute) / occupancy
//
//   t_memory  = bytes / achieved_bw, where achieved_bw ramps with the
//               transfer size (small kernels never fill the pipeline —
//               this is the mechanism behind the paper's Fig. 12, where
//               TensorRT's per-operator kernels average only 8.6% of peak
//               HBM bandwidth while the fused OTF kernel reaches ~27%);
//   t_compute = tensor_ops / tensor_peak + fp_ops / general_peak, each
//               derated by a sustained-efficiency factor;
//   occupancy = min(1, ctas / sm_count): a grid smaller than the SM count
//               leaves processors idle.
//
// The model is intentionally analytic and monotone in its inputs so the
// comparative claims of the paper (who wins, where the crossover falls)
// follow from the same traffic/structure arguments the paper makes,
// rather than from machine noise.
#pragma once

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"

namespace et::gpusim {

struct LatencyBreakdown {
  double launch_us = 0.0;
  double memory_us = 0.0;
  double compute_us = 0.0;
  double occupancy = 1.0;
  double total_us = 0.0;
  double sm_efficiency = 0.0;
  double ipc = 0.0;
};

[[nodiscard]] LatencyBreakdown estimate_latency(const KernelStats& k,
                                                const DeviceSpec& spec);

/// Convenience: fill k.time_us / k.sm_efficiency / k.ipc in place.
void apply_latency_model(KernelStats& k, const DeviceSpec& spec);

}  // namespace et::gpusim
