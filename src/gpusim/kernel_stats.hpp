// Per-kernel-launch counters — the simulated analogue of one nvprof row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "gpusim/device_spec.hpp"

namespace et::gpusim {

/// Sentinel for KernelStats::slot — launch not attributed to any slot.
inline constexpr int kNoSlot = -1;

struct KernelStats {
  std::string name;
  std::size_t ctas = 0;                  ///< grid size in CTAs
  std::size_t shared_bytes_per_cta = 0;  ///< shared-memory footprint
  AccessPattern pattern = AccessPattern::kStreaming;
  /// Serving-slot attribution (kNoSlot = whole-device / shared work).
  /// Stamped by Device::record from the active SlotScope so batched-decode
  /// profiles can be broken down per sequence.
  int slot = kNoSlot;

  std::uint64_t global_load_bytes = 0;
  std::uint64_t global_store_bytes = 0;
  /// Subset of the global traffic above attributable to the score matrix
  /// S = Q·Kᵀ (or per-row softmax statistics derived from it). Purely an
  /// attribution tag — always also counted in load/store bytes — so the
  /// FlashAttention O(N²) → O(N) score-traffic claim is measurable per
  /// operator without string-matching kernel names.
  std::uint64_t score_bytes = 0;
  std::uint64_t fp_ops = 0;      ///< general-core floating-point ops
  std::uint64_t tensor_ops = 0;  ///< tensor-core ops (1 FMA = 2 ops)

  /// Filled in by the latency model when the launch completes.
  double time_us = 0.0;
  /// Fraction of the kernel's lifetime SMs had resident work (proxy for
  /// nvprof sm_efficiency).
  double sm_efficiency = 0.0;
  /// Instructions-per-cycle proxy (ops per SM-cycle).
  double ipc = 0.0;

  [[nodiscard]] std::uint64_t gld_transactions(
      std::size_t txn_bytes = 32) const {
    return (global_load_bytes + txn_bytes - 1) / txn_bytes;
  }
  [[nodiscard]] std::uint64_t gst_transactions(
      std::size_t txn_bytes = 32) const {
    return (global_store_bytes + txn_bytes - 1) / txn_bytes;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return global_load_bytes + global_store_bytes;
  }
  [[nodiscard]] std::uint64_t total_ops() const { return fp_ops + tensor_ops; }

  /// FLOPs per byte of global traffic; the paper (§5.2.6, citing [36])
  /// calls an operator memory-bound when this is below 138 on V100S.
  [[nodiscard]] double arithmetic_intensity() const {
    const auto bytes = total_bytes();
    return bytes == 0 ? 0.0
                      : static_cast<double>(total_ops()) /
                            static_cast<double>(bytes);
  }

  /// Achieved global-memory throughput in GB/s.
  [[nodiscard]] double achieved_gbps() const {
    return time_us <= 0.0 ? 0.0
                          : static_cast<double>(total_bytes()) / 1e3 / time_us;
  }
};

}  // namespace et::gpusim
