#include "gpusim/device.hpp"

#include <numeric>
#include <utility>

#include "gpusim/latency_model.hpp"

namespace et::gpusim {

Launch::Launch(Device& dev, LaunchConfig cfg) : dev_(&dev) {
  stats_.name = std::move(cfg.name);
  stats_.ctas = cfg.ctas;
  stats_.shared_bytes_per_cta = cfg.shared_bytes_per_cta;
  stats_.pattern = cfg.pattern;
}

Launch::Launch(Launch&& other) noexcept
    : dev_(other.dev_), stats_(std::move(other.stats_)),
      finished_(other.finished_) {
  other.finished_ = true;  // moved-from handle must not double-record
}

void Launch::finish() {
  if (finished_) return;
  finished_ = true;
  dev_->record(std::move(stats_));
}

Launch::~Launch() { finish(); }

Launch Device::launch(LaunchConfig cfg) {
  injector_.on_launch(cfg.name, cfg.shared_bytes_per_cta);
  if (cfg.shared_bytes_per_cta > spec_.shared_mem_per_cta_bytes) {
    throw SharedMemOverflow(cfg.name, cfg.shared_bytes_per_cta,
                            spec_.shared_mem_per_cta_bytes);
  }
  return Launch(*this, std::move(cfg));
}

void Device::record(KernelStats stats) {
  stats.slot = current_slot_;
  apply_latency_model(stats, spec_);
  log_.push_back(std::move(stats));
}

double Device::time_us_for_slot(int slot) const {
  double t = 0.0;
  for (const auto& k : log_) {
    if (k.slot == slot) t += k.time_us;
  }
  return t;
}

double Device::total_time_us() const noexcept {
  double t = 0.0;
  for (const auto& k : log_) t += k.time_us;
  return t;
}

std::uint64_t Device::total_load_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const auto& k : log_) b += k.global_load_bytes;
  return b;
}

std::uint64_t Device::total_store_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const auto& k : log_) b += k.global_store_bytes;
  return b;
}

std::uint64_t Device::total_ops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& k : log_) n += k.total_ops();
  return n;
}

double Device::time_us_matching(const std::string& substr) const {
  double t = 0.0;
  for (const auto& k : log_) {
    if (k.name.find(substr) != std::string::npos) t += k.time_us;
  }
  return t;
}

}  // namespace et::gpusim
