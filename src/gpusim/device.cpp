#include "gpusim/device.hpp"

#include <numeric>
#include <utility>

#include "gpusim/latency_model.hpp"

namespace et::gpusim {

namespace {
/// The (device, sink) pair bound to this thread by a live SinkScope.
/// Keyed on the device pointer: a scratch Device used inside a chunk
/// (e.g. the adaptive auto-tune replay) records normally.
thread_local Device* tl_sink_device = nullptr;
thread_local LaunchSink* tl_sink = nullptr;
}  // namespace

SinkScope::SinkScope(Device& dev, LaunchSink& sink) noexcept
    : prev_dev_(tl_sink_device), prev_sink_(tl_sink) {
  sink.slot = dev.current_slot();  // inherit the region's outer slot
  tl_sink_device = &dev;
  tl_sink = &sink;
}

SinkScope::~SinkScope() {
  tl_sink_device = prev_dev_;
  tl_sink = prev_sink_;
}

LaunchSink* Device::bound_sink() const noexcept {
  return tl_sink_device == this ? tl_sink : nullptr;
}

Launch::Launch(Device& dev, LaunchConfig cfg) : dev_(&dev) {
  stats_.name = std::move(cfg.name);
  stats_.ctas = cfg.ctas;
  stats_.shared_bytes_per_cta = cfg.shared_bytes_per_cta;
  stats_.pattern = cfg.pattern;
}

Launch::Launch(Launch&& other) noexcept
    : dev_(other.dev_), stats_(std::move(other.stats_)),
      finished_(other.finished_) {
  other.finished_ = true;  // moved-from handle must not double-record
}

void Launch::finish() {
  if (finished_) return;
  finished_ = true;
  dev_->record(std::move(stats_));
}

Launch::~Launch() { finish(); }

Launch Device::launch(LaunchConfig cfg) {
  if (LaunchSink* sink = bound_sink()) {
    // Inside a parallel-region chunk: attempts are counted in the sink
    // and folded into the injector's launch index at merge time. The
    // injector itself is never consulted here — ExecContext::parallel_for
    // serializes whenever rules are armed, precisely so fault indices
    // stay thread-count-independent (docs/threading.md).
    ++sink->launches_attempted;
    if (cfg.shared_bytes_per_cta > spec_.shared_mem_per_cta_bytes) {
      throw SharedMemOverflow(cfg.name, cfg.shared_bytes_per_cta,
                              spec_.shared_mem_per_cta_bytes);
    }
    return Launch(*this, std::move(cfg));
  }
  injector_.on_launch(cfg.name, cfg.shared_bytes_per_cta);
  if (cfg.shared_bytes_per_cta > spec_.shared_mem_per_cta_bytes) {
    throw SharedMemOverflow(cfg.name, cfg.shared_bytes_per_cta,
                            spec_.shared_mem_per_cta_bytes);
  }
  return Launch(*this, std::move(cfg));
}

void Device::record(KernelStats stats) {
  if (LaunchSink* sink = bound_sink()) {
    stats.slot = sink->slot;
    apply_latency_model(stats, spec_);  // pure function of (stats, spec)
    sink->log.push_back(std::move(stats));
    return;
  }
  stats.slot = current_slot_;
  apply_latency_model(stats, spec_);
  log_.push_back(std::move(stats));
}

void Device::note_fallback(FallbackEvent event) {
  if (LaunchSink* sink = bound_sink()) {
    sink->fallbacks.push_back(std::move(event));
    return;
  }
  fallbacks_.push_back(std::move(event));
}

void Device::set_current_slot(int slot) noexcept {
  if (LaunchSink* sink = bound_sink()) {
    sink->slot = slot;
    return;
  }
  current_slot_ = slot;
}

int Device::current_slot() const noexcept {
  if (const LaunchSink* sink = bound_sink()) return sink->slot;
  return current_slot_;
}

void Device::merge(LaunchSink&& sink) {
  injector_.advance(sink.launches_attempted);
  for (auto& stats : sink.log) log_.push_back(std::move(stats));
  for (auto& event : sink.fallbacks) fallbacks_.push_back(std::move(event));
}

double Device::time_us_for_slot(int slot) const {
  double t = 0.0;
  for (const auto& k : log_) {
    if (k.slot == slot) t += k.time_us;
  }
  return t;
}

double Device::total_time_us() const noexcept {
  double t = 0.0;
  for (const auto& k : log_) t += k.time_us;
  return t;
}

std::uint64_t Device::total_load_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const auto& k : log_) b += k.global_load_bytes;
  return b;
}

std::uint64_t Device::total_store_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const auto& k : log_) b += k.global_store_bytes;
  return b;
}

std::uint64_t Device::total_score_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const auto& k : log_) b += k.score_bytes;
  return b;
}

std::uint64_t Device::total_ops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& k : log_) n += k.total_ops();
  return n;
}

double Device::time_us_matching(const std::string& substr) const {
  double t = 0.0;
  for (const auto& k : log_) {
    if (k.name.find(substr) != std::string::npos) t += k.time_us;
  }
  return t;
}

}  // namespace et::gpusim
