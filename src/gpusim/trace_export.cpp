#include "gpusim/trace_export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace et::gpusim {

namespace {
/// Minimal JSON string escaping (kernel names are ASCII identifiers, but
/// be safe about quotes/backslashes).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}
}  // namespace

void write_chrome_trace(std::ostream& os, const Device& dev,
                        const std::string& process_name) {
  os << "[\n";
  os << R"({"name":"process_name","ph":"M","pid":1,"args":{"name":")"
     << escape(process_name) << "\"}},\n";
  os << R"({"name":"thread_name","ph":"M","pid":1,"tid":1,)"
     << R"("args":{"name":"stream 0"}})";

  double t = 0.0;
  const std::size_t txn = dev.spec().transaction_bytes;
  for (const auto& k : dev.history()) {
    os << ",\n";
    os << R"({"name":")" << escape(k.name) << R"(","cat":"kernel","ph":"X",)"
       << R"("pid":1,"tid":1,"ts":)" << t << R"(,"dur":)" << k.time_us
       << R"(,"args":{)"
       << R"("ctas":)" << k.ctas << R"(,"shared_bytes":)"
       << k.shared_bytes_per_cta << R"(,"gld_transactions":)"
       << k.gld_transactions(txn) << R"(,"gst_transactions":)"
       << k.gst_transactions(txn) << R"(,"tensor_ops":)" << k.tensor_ops
       << R"(,"fp_ops":)" << k.fp_ops << R"(,"achieved_GBps":)"
       << k.achieved_gbps() << R"(,"sm_efficiency":)" << k.sm_efficiency
       << "}}";
    t += k.time_us;
  }
  os << "\n]\n";
}

void write_chrome_trace(const std::string& path, const Device& dev,
                        const std::string& process_name) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  write_chrome_trace(f, dev, process_name);
  if (!f) throw std::runtime_error("trace write failed: " + path);
}

}  // namespace et::gpusim
