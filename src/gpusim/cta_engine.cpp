#include "gpusim/cta_engine.hpp"

#include <algorithm>

namespace et::gpusim {

float* SharedArena::alloc_raw(std::size_t bytes) {
  if (used_ + bytes > capacity_) {
    throw SharedMemOverflow(kernel_, used_ + bytes, capacity_);
  }
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  blocks_.emplace_back((bytes + sizeof(float) - 1) / sizeof(float));
  return blocks_.back().data();
}

KernelStats run_cta_kernel(Device& dev, const CtaLaunchConfig& cfg,
                           const std::function<void(CtaContext&)>& body) {
  std::uint64_t load_bytes = 0, store_bytes = 0, fp_ops = 0, tensor_ops = 0;
  std::size_t shared_high_water = 0;

  for (std::size_t cta = 0; cta < cfg.num_ctas; ++cta) {
    CtaContext ctx(cta, cfg.name, dev.spec().shared_mem_per_cta_bytes,
                   cfg.element_bytes);
    body(ctx);
    load_bytes += ctx.load_bytes();
    store_bytes += ctx.store_bytes();
    fp_ops += ctx.fp_ops();
    tensor_ops += ctx.tensor_ops();
    shared_high_water =
        std::max(shared_high_water, ctx.shared().high_water_bytes());
  }

  auto launch = dev.launch({.name = cfg.name,
                            .ctas = cfg.num_ctas,
                            .shared_bytes_per_cta = shared_high_water,
                            .pattern = cfg.pattern});
  launch.load_bytes(load_bytes);
  launch.store_bytes(store_bytes);
  launch.fp_ops(fp_ops);
  launch.tensor_ops(tensor_ops);
  launch.finish();
  return dev.history().back();
}

}  // namespace et::gpusim
